#!/usr/bin/env bash
#===- scripts/serve_common.sh - Shared opd_serve process helpers ------------===#
#
# Part of the OPD project: a reproduction of "Online Phase Detection
# Algorithms" (CGO 2006).
#
# Sourced (not executed) by ci.sh and serve_differential.sh: one copy of
# the opd_serve start/port-discovery/drain dance instead of one per smoke
# test. Callers run under `set -euo pipefail`.
#
#   start_opd_serve <serve-binary> <log> [serve flags...]
#       Launches the daemon on --port 0, polls the log for the
#       "listening on port N" line, and exports SERVE_PID/SERVE_PORT.
#       Fails (status 1, log dumped) if the daemon dies or never
#       reports a port.
#   stop_opd_serve
#       Graceful drain: SIGTERM then wait. Propagates the daemon's exit
#       status, which is 0 only on a clean drain — sanitizer reports and
#       unclean shutdowns fail the caller.
#   kill_opd_serve
#       Best-effort kill for cleanup/trap paths; never fails.
#   wait_for_established <port> <min-sessions> [timeout-sec]
#       Blocks until the server has at least <min-sessions> ESTABLISHED
#       connections (server-side sockets in /proc/net/tcp{,6}), so a
#       mid-stream SIGTERM cannot race the clients' connects — the old
#       fixed-sleep version of this dance was a flake on single-core
#       hosts where the scheduler could starve every connect for the
#       whole sleep. Degrades to a fixed sleep where /proc/net/tcp does
#       not exist; on timeout it returns 0 (best effort) and lets the
#       caller's own verification decide.
#
#===----------------------------------------------------------------------===#

SERVE_PID=""
SERVE_PORT=""

start_opd_serve() {
  local serve="$1" log="$2"
  shift 2
  "$serve" --port 0 "$@" >"$log" 2>&1 &
  SERVE_PID=$!
  SERVE_PORT=""
  for _ in $(seq 1 100); do
    SERVE_PORT="$(sed -n 's/^listening on port \([0-9][0-9]*\)$/\1/p' \
      "$log" 2>/dev/null || true)"
    [ -n "$SERVE_PORT" ] && break
    kill -0 "$SERVE_PID" 2>/dev/null || break
    sleep 0.1
  done
  if [ -z "$SERVE_PORT" ]; then
    echo "serve_common: opd_serve never reported a port"
    cat "$log" || true
    kill "$SERVE_PID" 2>/dev/null || true
    SERVE_PID=""
    return 1
  fi
}

stop_opd_serve() {
  [ -n "$SERVE_PID" ] || return 0
  kill -TERM "$SERVE_PID"
  wait "$SERVE_PID" # exit 0 only on a clean graceful drain
  SERVE_PID=""
}

kill_opd_serve() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
  SERVE_PID=""
}

wait_for_established() {
  local port="$1" want="$2" timeout="${3:-10}"
  if [ ! -r /proc/net/tcp ]; then
    sleep 0.5
    return 0
  fi
  local hex count
  hex="$(printf '%04X' "$port")"
  for _ in $(seq 1 $((timeout * 20))); do
    # Server-side sockets only (local_address field 2 carries the listen
    # port): one ESTABLISHED entry per accepted session.
    count="$(cat /proc/net/tcp /proc/net/tcp6 2>/dev/null |
      awk -v p=":${hex}" '$2 ~ p"$" && $4 == "01" { n++ } END { print n+0 }')"
    [ "$count" -ge "$want" ] && return 0
    sleep 0.05
  done
  return 0
}
