#!/usr/bin/env bash
#===- scripts/ci.sh - Full verification pipeline ----------------------------===#
#
# Part of the OPD project: a reproduction of "Online Phase Detection
# Algorithms" (CGO 2006).
#
# Runs the complete CI matrix from a clean tree:
#
#   1. plain:     configure + build (warnings-as-errors) + ctest
#   2. sanitized: the same under AddressSanitizer + UndefinedBehaviorSanitizer
#   3. tsan:      ThreadSanitizer over the concurrency-exercising tests
#                 (sweep harness, parallel helpers, observers, config
#                 analysis), with OPD_THREADS=4 so single-core runners
#                 still run real threads
#
# All configurations include the jp_lint_* / config_check_* ctests, which
# lint the bundled .jp workloads and the shipped sweep specs. When
# clang-tidy is on PATH, the plain configuration also runs it over src/
# with the repo .clang-tidy profile (including the concurrency-* checks).
# When clang++ is on PATH, an additional configuration builds under it so
# -Wthread-safety verifies the locking annotations in support/Parallel.h.
#
# Usage: scripts/ci.sh [build-dir-prefix]
#
#===----------------------------------------------------------------------===#

set -euo pipefail

cd "$(dirname "$0")/.."
PREFIX="${1:-build-ci}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

run_config() {
  local name="$1"; shift
  local tests=""
  if [ "${1:-}" = "--tests" ]; then
    tests="$2"; shift 2
  fi
  local dir="${PREFIX}-${name}"
  echo "=== [$name] configure ($*) ==="
  cmake -B "$dir" -S . -DOPD_WERROR=ON "$@"
  echo "=== [$name] build ==="
  cmake --build "$dir" -j "$JOBS"
  echo "=== [$name] ctest ==="
  if [ -n "$tests" ]; then
    ctest --test-dir "$dir" --output-on-failure -j "$JOBS" -R "$tests"
  else
    ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
  fi
}

run_config plain

if command -v clang-tidy >/dev/null 2>&1; then
  echo "=== [plain] clang-tidy ==="
  cmake -B "${PREFIX}-plain" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  find src -name '*.cpp' -print0 |
    xargs -0 -P "$JOBS" -n 4 clang-tidy -p "${PREFIX}-plain" --quiet
else
  echo "=== clang-tidy not found; skipping (config: .clang-tidy) ==="
fi

if command -v clang++ >/dev/null 2>&1; then
  run_config clang -DCMAKE_CXX_COMPILER=clang++
else
  echo "=== clang++ not found; skipping -Wthread-safety configuration ==="
fi

run_config asan-ubsan -DOPD_SANITIZE="address;undefined"

OPD_THREADS=4 run_config tsan --tests 'Parallel|Sweep|Observ|Config' \
  -DOPD_SANITIZE=thread

# Release perf smoke: the fast detector path must stay within 25% of the
# committed fast-over-reference throughput ratios (scripts/check_perf.py
# compares ratios, which are stable under host frequency scaling).
echo "=== [perf] Release perf smoke (vs BENCH_PERF.json) ==="
PERF_DIR="${PREFIX}-perf"
cmake -B "$PERF_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$PERF_DIR" -j "$JOBS" --target bench_perf
"$PERF_DIR/bench/bench_perf" \
  --benchmark_filter='BM_Detector/|BM_FastDetector/' \
  --benchmark_min_time=0.5 \
  --benchmark_format=json > "$PERF_DIR/bench_smoke.json"
python3 scripts/check_perf.py "$PERF_DIR/bench_smoke.json" BENCH_PERF.json

echo "=== CI passed ==="
