#!/usr/bin/env bash
#===- scripts/ci.sh - Full verification pipeline ----------------------------===#
#
# Part of the OPD project: a reproduction of "Online Phase Detection
# Algorithms" (CGO 2006).
#
# Runs the complete CI matrix from a clean tree as named stages:
#
#   plain:        configure + build (warnings-as-errors) + full ctest
#   kernel-check: the shipped sweep specs certify wraparound-free at the
#                 evaluation's 62M-element trace scale, with the full
#                 18-shape SIMD lane plan (and its per-shape batch-kernel
#                 admission verdicts) printed into the CI log
#   serve-check:  wire-protocol model checker vs the real ServeSession vs
#                 docs/SERVING.md, plus a fixed-seed model-guided fuzz run
#   tidy:         clang-tidy over src/ when it is on PATH (skips otherwise)
#   clang:        a clang++ configuration so -Wthread-safety verifies the
#                 locking annotations (skips when clang++ is absent)
#   simd-matrix:  the SIMD/portable batch-kernel matrix — the kernel
#                 differential, batch-kernel, KernelBounds, and
#                 shared-scan suites run (a) on the AVX2-enabled plain
#                 build with OPD_SIMD=off forcing the portable dispatch
#                 fallback, and (b) on a separate -DOPD_DISABLE_SIMD=ON
#                 build with the AVX2 code compiled out entirely; the
#                 default-dispatch leg is the plain stage's full ctest
#   asan-ubsan:   full ctest under Address + UndefinedBehaviorSanitizer
#   ubsan-int:    the kernel/detector/batch arithmetic suites under
#                 clang's -fsanitize=undefined,integer (gcc fallback:
#                 undefined only) — the gain/loss kernel deltas and the
#                 batch min-sum/anchor kernels must hold their
#                 no-wraparound certificates at runtime, not just in the
#                 KernelBounds abstract interpretation; the same suites
#                 repeat with OPD_SIMD=off so the portable blocks are
#                 sanitized too
#   serve-smoke:  a real opd_serve daemon under ASan/UBSan takes a few
#                 hundred opd_loadgen --verify sessions, then drains
#                 cleanly on SIGTERM
#   tsan:         ThreadSanitizer over the concurrency-exercising tests,
#                 with OPD_THREADS=4 so single-core runners still run
#                 real threads
#   sweep-shared: the shared-scan engine's bit-identity differential
#                 (tests/SharedScanTest.cpp) on the default and portable
#                 dispatches, then a Release pruned paper sweep under
#                 both engines timed against the BENCH_PERF.json sweep
#                 entries (scripts/check_perf.py --sweep-*)
#   perf:         Release perf smoke vs BENCH_PERF.json — the fast and
#                 batch-backend detector ratios within 25%, the serving
#                 ratio within 50%, and the committed per-config/shared
#                 sweep ratio at or above 1.8x (scripts/check_perf.py)
#
# All ctest configurations include the jp_lint_* / config_check_* tests,
# which lint the bundled .jp workloads and the shipped sweep specs. The
# opd_serve process handling is shared with serve_differential.sh via
# scripts/serve_common.sh. A per-stage wall-clock summary is printed on
# exit (also when a stage fails).
#
# Usage: scripts/ci.sh [--list-stages] [--stage NAME]... [build-dir-prefix]
#
#   scripts/ci.sh                      # every stage, in order
#   scripts/ci.sh --stage tsan         # just the tsan stage
#   scripts/ci.sh --stage plain --stage simd-matrix my-prefix
#
#===----------------------------------------------------------------------===#

set -euo pipefail

cd "$(dirname "$0")/.."
# shellcheck source=scripts/serve_common.sh
. scripts/serve_common.sh

ALL_STAGES=(plain kernel-check serve-check tidy clang simd-matrix
  asan-ubsan ubsan-int serve-smoke tsan sweep-shared perf)
SIMD_TESTS='BatchKernel|FastDetector|KernelBounds|SharedScan'

SELECTED=()
PREFIX=""
while [ $# -gt 0 ]; do
  case "$1" in
  --list-stages)
    printf '%s\n' "${ALL_STAGES[@]}"
    exit 0
    ;;
  --stage)
    [ $# -ge 2 ] || { echo "ci.sh: --stage needs a name" >&2; exit 2; }
    case " ${ALL_STAGES[*]} " in
    *" $2 "*) SELECTED+=("$2") ;;
    *)
      echo "ci.sh: unknown stage '$2' (see --list-stages)" >&2
      exit 2
      ;;
    esac
    shift 2
    ;;
  -*)
    echo "ci.sh: unknown option '$1'" >&2
    exit 2
    ;;
  *)
    PREFIX="$1"
    shift
    ;;
  esac
done
PREFIX="${PREFIX:-build-ci}"
[ ${#SELECTED[@]} -gt 0 ] || SELECTED=("${ALL_STAGES[@]}")

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

# Configures and (incrementally) builds one named tree; stages that share
# a tree (plain / kernel-check / serve-check, asan-ubsan / serve-smoke)
# get a no-op rebuild when run in one invocation.
configure_build() {
  local name="$1"
  shift
  local dir="${PREFIX}-${name}"
  echo "=== [$name] configure ($*) ==="
  cmake -B "$dir" -S . -DOPD_WERROR=ON "$@"
  echo "=== [$name] build ==="
  cmake --build "$dir" -j "$JOBS"
}

run_ctest() {
  local name="$1"
  shift
  echo "=== [$name] ctest ($*) ==="
  ctest --test-dir "${PREFIX}-${name}" --output-on-failure -j "$JOBS" "$@"
}

stage_plain() {
  configure_build plain
  run_ctest plain
}

stage_kernel_check() {
  configure_build plain
  "${PREFIX}-plain/examples/kernel_check" --preset paper --trace-len 62M \
    --lane-plan
}

stage_serve_check() {
  configure_build plain
  "${PREFIX}-plain/examples/serve_check" --impl --doc docs/SERVING.md \
    --fuzz 500 --seed 7 --stats
}

stage_tidy() {
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "=== clang-tidy not found; skipping (config: .clang-tidy) ==="
    return 0
  fi
  configure_build plain -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
  find src -name '*.cpp' -print0 |
    xargs -0 -P "$JOBS" -n 4 clang-tidy -p "${PREFIX}-plain" --quiet
}

stage_clang() {
  if ! command -v clang++ >/dev/null 2>&1; then
    echo "=== clang++ not found; skipping -Wthread-safety configuration ==="
    return 0
  fi
  configure_build clang -DCMAKE_CXX_COMPILER=clang++
  run_ctest clang
}

stage_simd_matrix() {
  # Leg (a): AVX2 compiled in, dispatch forced onto the portable scalar
  # blocks. The differential suites must be bit-identical here exactly as
  # under the default dispatch (the plain stage's full ctest).
  configure_build plain
  echo "=== [simd-matrix] portable dispatch (OPD_SIMD=off) ==="
  OPD_SIMD=off ctest --test-dir "${PREFIX}-plain" --output-on-failure \
    -j "$JOBS" -R "$SIMD_TESTS"
  # Leg (b): AVX2 compiled out — the build the portable-only targets get.
  configure_build nosimd -DOPD_DISABLE_SIMD=ON
  run_ctest nosimd -R "$SIMD_TESTS"
}

stage_asan_ubsan() {
  configure_build asan-ubsan -DOPD_SANITIZE="address;undefined"
  run_ctest asan-ubsan
}

stage_ubsan_int() {
  # clang's integer sanitizer traps unsigned wraparound too, which the
  # gain/loss delta forms and the batch min-sum accumulators are
  # certified never to need (analysis/KernelBounds.h). gcc has no
  # -fsanitize=integer, so the fallback rides the plain undefined
  # sanitizer there.
  local tests='KernelBounds|CoreKernel|FastDetector|BatchKernel'
  if command -v clang++ >/dev/null 2>&1; then
    configure_build ubsan-int -DCMAKE_CXX_COMPILER=clang++ \
      -DOPD_SANITIZE="undefined;integer"
  else
    echo "=== clang++ not found; running the integer leg under gcc ubsan ==="
    configure_build ubsan-int -DOPD_SANITIZE=undefined
  fi
  run_ctest ubsan-int -R "$tests"
  echo "=== [ubsan-int] portable dispatch (OPD_SIMD=off) ==="
  OPD_SIMD=off ctest --test-dir "${PREFIX}-ubsan-int" --output-on-failure \
    -j "$JOBS" -R 'BatchKernel|FastDetector'
}

stage_serve_smoke() {
  # A real opd_serve daemon under ASan/UBSan takes a few hundred loadgen
  # sessions with --verify (every streamed transition sequence is rebuilt
  # and compared against offline runDetector), then drains cleanly on
  # SIGTERM. Any sanitizer report, session failure, equivalence mismatch,
  # or unclean shutdown fails CI.
  configure_build asan-ubsan -DOPD_SANITIZE="address;undefined"
  local dir="${PREFIX}-asan-ubsan"
  start_opd_serve "$dir/examples/opd_serve" "$dir/serve_smoke.log"
  "$dir/examples/opd_loadgen" --port "$SERVE_PORT" \
    --sessions 64 --total 300 --workload db --scale 0.05 --verify
  stop_opd_serve
}

stage_tsan() {
  configure_build tsan -DOPD_SANITIZE=thread
  OPD_THREADS=4 ctest --test-dir "${PREFIX}-tsan" --output-on-failure \
    -j "$JOBS" -R 'Parallel|Sweep|Observ|Config|Serve'
}

stage_sweep_shared() {
  # The shared-scan engine ships on a bit-identity contract
  # (core/SharedScan.h): the differential suite must hold under both the
  # default and the forced-portable dispatch, and the engine's wall-clock
  # win over the per-config path must not regress. The Release tree is
  # shared with the perf stage.
  local dir="${PREFIX}-perf"
  echo "=== [sweep-shared] configure + build (Release) ==="
  cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build "$dir" -j "$JOBS" --target shared_scan_test sweep_tool
  echo "=== [sweep-shared] differential (default dispatch) ==="
  "$dir/tests/shared_scan_test"
  echo "=== [sweep-shared] differential (OPD_SIMD=off) ==="
  OPD_SIMD=off "$dir/tests/shared_scan_test"
  echo "=== [sweep-shared] pruned paper sweep, both engines ==="
  # Best of 2 per engine: the timings are checked against a ceiling, and
  # the minimum is robust to a run landing in a host throttle window
  # (it can only err in the optimistic direction, which the committed
  # ratio floor still guards).
  time_engine() {
    local best="" s t0 t1
    for _ in 1 2; do
      t0=$(date +%s.%N)
      "$dir/examples/sweep_tool" --preset paper --prune --engine "$1" \
        --workloads jess --mpls 10K > /dev/null
      t1=$(date +%s.%N)
      s=$(python3 -c "print($t1 - $t0)")
      best=$(python3 -c "print(min($s, ${best:-$s}))")
    done
    echo "$best"
  }
  local shared_s per_config_s
  shared_s=$(time_engine shared)
  per_config_s=$(time_engine per-config)
  python3 scripts/check_perf.py --sweep-shared "$shared_s" \
    --sweep-per-config "$per_config_s" - BENCH_PERF.json
}

stage_perf() {
  local dir="${PREFIX}-perf"
  echo "=== [perf] configure + build (Release) ==="
  cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build "$dir" -j "$JOBS" --target bench_perf opd_serve opd_loadgen
  "$dir/bench/bench_perf" \
    --benchmark_filter='BM_Detector/|BM_FastDetector/|BM_BatchSimdDetector/|BM_BatchPortableDetector/' \
    --benchmark_min_time=0.5 \
    --benchmark_format=json > "$dir/bench_smoke.json"
  start_opd_serve "$dir/examples/opd_serve" "$dir/serve_smoke.log"
  "$dir/examples/opd_loadgen" --port "$SERVE_PORT" \
    --sessions 128 --total 256 --json > "$dir/serving_smoke.json"
  stop_opd_serve
  python3 scripts/check_perf.py "$dir/bench_smoke.json" BENCH_PERF.json \
    0.25 "$dir/serving_smoke.json"
}

STAGE_TIMES=""
print_summary() {
  local status=$?
  kill_opd_serve
  if [ -n "$STAGE_TIMES" ]; then
    echo "=== stage timing ==="
    printf '%s' "$STAGE_TIMES"
  fi
  if [ "$status" -eq 0 ]; then
    echo "=== CI passed (${SELECTED[*]}) ==="
  else
    echo "=== CI FAILED (exit $status) ==="
  fi
}
trap print_summary EXIT

for stage in "${SELECTED[@]}"; do
  echo "=== stage: $stage ==="
  stage_t0=$SECONDS
  "stage_${stage//-/_}"
  STAGE_TIMES="${STAGE_TIMES}$(printf '%-12s %5ss' "$stage" \
    "$((SECONDS - stage_t0))")"$'\n'
done
