#!/usr/bin/env bash
#===- scripts/ci.sh - Full verification pipeline ----------------------------===#
#
# Part of the OPD project: a reproduction of "Online Phase Detection
# Algorithms" (CGO 2006).
#
# Runs the complete CI matrix from a clean tree:
#
#   1. plain:     configure + build (warnings-as-errors) + ctest
#   2. sanitized: the same under AddressSanitizer + UndefinedBehaviorSanitizer
#   3. ubsan-int: the kernel/detector arithmetic suites under clang's
#                 -fsanitize=undefined,integer (gcc fallback: undefined
#                 only) — the gain/loss kernel deltas must hold their
#                 no-wraparound certificates at runtime, not just in the
#                 KernelBounds abstract interpretation
#   4. tsan:      ThreadSanitizer over the concurrency-exercising tests
#                 (sweep harness, parallel helpers, observers, config
#                 analysis), with OPD_THREADS=4 so single-core runners
#                 still run real threads
#
# All configurations include the jp_lint_* / config_check_* ctests, which
# lint the bundled .jp workloads and the shipped sweep specs. When
# clang-tidy is on PATH, the plain configuration also runs it over src/
# with the repo .clang-tidy profile (including the concurrency-* checks).
# When clang++ is on PATH, an additional configuration builds under it so
# -Wthread-safety verifies the locking annotations in support/Parallel.h.
#
# Usage: scripts/ci.sh [build-dir-prefix]
#
#===----------------------------------------------------------------------===#

set -euo pipefail

cd "$(dirname "$0")/.."
PREFIX="${1:-build-ci}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

run_config() {
  local name="$1"; shift
  local tests=""
  if [ "${1:-}" = "--tests" ]; then
    tests="$2"; shift 2
  fi
  local dir="${PREFIX}-${name}"
  echo "=== [$name] configure ($*) ==="
  cmake -B "$dir" -S . -DOPD_WERROR=ON "$@"
  echo "=== [$name] build ==="
  cmake --build "$dir" -j "$JOBS"
  echo "=== [$name] ctest ==="
  if [ -n "$tests" ]; then
    ctest --test-dir "$dir" --output-on-failure -j "$JOBS" -R "$tests"
  else
    ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
  fi
}

run_config plain

# Kernel value-range certification leg: every shipped sweep spec must
# certify wraparound-free at the evaluation's 62M-element trace scale,
# with the full 18-shape lane plan emitted (kernel_check exits non-zero
# on any warning-or-worse diagnostic; the kernel_check_* ctests above
# already cover the per-preset and adversarial cases, this run prints
# the lane plan into the CI log for the SIMD work to consume).
echo "=== [plain] kernel_check (paper sweep value-range certificates) ==="
"${PREFIX}-plain/examples/kernel_check" --preset paper --trace-len 62M \
  --lane-plan

# Protocol verification leg: the wire-protocol model checker must prove
# its invariants, the real ServeSession must conform to the model edge
# by edge, docs/SERVING.md must match the model's catalogues and frame
# legality, and a fixed-seed model-guided fuzz budget (with the offline
# detector as data-plane oracle) must come back clean. serve_check exits
# non-zero on any warning-or-worse diagnostic.
echo "=== [plain] serve_check (protocol model vs impl vs docs/SERVING.md) ==="
"${PREFIX}-plain/examples/serve_check" --impl --doc docs/SERVING.md \
  --fuzz 500 --seed 7 --stats

if command -v clang-tidy >/dev/null 2>&1; then
  echo "=== [plain] clang-tidy ==="
  cmake -B "${PREFIX}-plain" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  find src -name '*.cpp' -print0 |
    xargs -0 -P "$JOBS" -n 4 clang-tidy -p "${PREFIX}-plain" --quiet
else
  echo "=== clang-tidy not found; skipping (config: .clang-tidy) ==="
fi

if command -v clang++ >/dev/null 2>&1; then
  run_config clang -DCMAKE_CXX_COMPILER=clang++
else
  echo "=== clang++ not found; skipping -Wthread-safety configuration ==="
fi

run_config asan-ubsan -DOPD_SANITIZE="address;undefined"

# Integer-overflow leg over the kernel arithmetic: clang's integer
# sanitizer traps unsigned wraparound too, which the gain/loss delta
# forms in SimilarityKernel/FastDetector are certified never to need
# (analysis/KernelBounds.h). gcc has no -fsanitize=integer, so the
# fallback rides the plain undefined sanitizer there.
if command -v clang++ >/dev/null 2>&1; then
  run_config ubsan-int --tests 'KernelBounds|CoreKernel|FastDetector' \
    -DCMAKE_CXX_COMPILER=clang++ -DOPD_SANITIZE="undefined;integer"
else
  echo "=== clang++ not found; running the integer leg under gcc ubsan ==="
  run_config ubsan-int --tests 'KernelBounds|CoreKernel|FastDetector' \
    -DOPD_SANITIZE=undefined
fi

# Serving smoke under ASan/UBSan: a real opd_serve daemon takes a few
# hundred loadgen sessions with --verify (every streamed transition
# sequence is rebuilt and compared against offline runDetector), then
# drains cleanly on SIGTERM. Any sanitizer report, session failure,
# equivalence mismatch, or unclean shutdown fails CI.
echo "=== [serve] ASan serving smoke (opd_serve + opd_loadgen) ==="
SERVE_DIR="${PREFIX}-asan-ubsan"
SERVE_LOG="$SERVE_DIR/serve_smoke.log"
"$SERVE_DIR/examples/opd_serve" --port 0 >"$SERVE_LOG" 2>&1 &
SERVE_PID=$!
SERVE_PORT=""
for _ in $(seq 1 100); do
  SERVE_PORT="$(sed -n 's/^listening on port \([0-9][0-9]*\)$/\1/p' \
    "$SERVE_LOG" 2>/dev/null || true)"
  [ -n "$SERVE_PORT" ] && break
  kill -0 "$SERVE_PID" 2>/dev/null || break
  sleep 0.1
done
if [ -z "$SERVE_PORT" ]; then
  echo "=== [serve] opd_serve never reported a port ==="
  cat "$SERVE_LOG" || true
  kill "$SERVE_PID" 2>/dev/null || true
  exit 1
fi
"$SERVE_DIR/examples/opd_loadgen" --port "$SERVE_PORT" \
  --sessions 64 --total 300 --workload db --scale 0.05 --verify
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" # exit 0 only on a clean graceful drain

OPD_THREADS=4 run_config tsan --tests 'Parallel|Sweep|Observ|Config|Serve' \
  -DOPD_SANITIZE=thread

# Release perf smoke: the fast detector path must stay within 25% of the
# committed fast-over-reference throughput ratios, and the serving path
# within 50% of the committed serving-over-offline ratio
# (scripts/check_perf.py compares ratios, which are stable under host
# frequency scaling).
echo "=== [perf] Release perf smoke (vs BENCH_PERF.json) ==="
PERF_DIR="${PREFIX}-perf"
cmake -B "$PERF_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$PERF_DIR" -j "$JOBS" --target bench_perf opd_serve opd_loadgen
"$PERF_DIR/bench/bench_perf" \
  --benchmark_filter='BM_Detector/|BM_FastDetector/' \
  --benchmark_min_time=0.5 \
  --benchmark_format=json > "$PERF_DIR/bench_smoke.json"
PERF_SERVE_LOG="$PERF_DIR/serve_smoke.log"
"$PERF_DIR/examples/opd_serve" --port 0 >"$PERF_SERVE_LOG" 2>&1 &
PERF_SERVE_PID=$!
PERF_SERVE_PORT=""
for _ in $(seq 1 100); do
  PERF_SERVE_PORT="$(sed -n 's/^listening on port \([0-9][0-9]*\)$/\1/p' \
    "$PERF_SERVE_LOG" 2>/dev/null || true)"
  [ -n "$PERF_SERVE_PORT" ] && break
  kill -0 "$PERF_SERVE_PID" 2>/dev/null || break
  sleep 0.1
done
if [ -z "$PERF_SERVE_PORT" ]; then
  echo "=== [perf] opd_serve never reported a port ==="
  cat "$PERF_SERVE_LOG" || true
  kill "$PERF_SERVE_PID" 2>/dev/null || true
  exit 1
fi
"$PERF_DIR/examples/opd_loadgen" --port "$PERF_SERVE_PORT" \
  --sessions 128 --total 256 --json > "$PERF_DIR/serving_smoke.json"
kill -TERM "$PERF_SERVE_PID"
wait "$PERF_SERVE_PID"
python3 scripts/check_perf.py "$PERF_DIR/bench_smoke.json" BENCH_PERF.json \
  0.25 "$PERF_DIR/serving_smoke.json"

echo "=== CI passed ==="
