#!/usr/bin/env bash
#===- scripts/ci.sh - Full verification pipeline ----------------------------===#
#
# Part of the OPD project: a reproduction of "Online Phase Detection
# Algorithms" (CGO 2006).
#
# Runs the complete CI matrix from a clean tree:
#
#   1. plain:     configure + build (warnings-as-errors) + ctest
#   2. sanitized: the same under AddressSanitizer + UndefinedBehaviorSanitizer
#
# Both configurations include the jp_lint_* ctests, which lint every .jp
# workload bundled under examples/. When clang-tidy is on PATH, the plain
# configuration also runs it over src/ with the repo .clang-tidy profile.
#
# Usage: scripts/ci.sh [build-dir-prefix]
#
#===----------------------------------------------------------------------===#

set -euo pipefail

cd "$(dirname "$0")/.."
PREFIX="${1:-build-ci}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

run_config() {
  local name="$1"; shift
  local dir="${PREFIX}-${name}"
  echo "=== [$name] configure ($*) ==="
  cmake -B "$dir" -S . -DOPD_WERROR=ON "$@"
  echo "=== [$name] build ==="
  cmake --build "$dir" -j "$JOBS"
  echo "=== [$name] ctest ==="
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

run_config plain

if command -v clang-tidy >/dev/null 2>&1; then
  echo "=== [plain] clang-tidy ==="
  cmake -B "${PREFIX}-plain" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  find src -name '*.cpp' -print0 |
    xargs -0 -P "$JOBS" -n 4 clang-tidy -p "${PREFIX}-plain" --quiet
else
  echo "=== clang-tidy not found; skipping (config: .clang-tidy) ==="
fi

run_config asan-ubsan -DOPD_SANITIZE="address;undefined"

echo "=== CI passed ==="
