#!/usr/bin/env bash
#===- scripts/serve_differential.sh - Serving equivalence under stress ------===#
#
# Part of the OPD project: a reproduction of "Online Phase Detection
# Algorithms" (CGO 2006).
#
# Differential serving test: the opd_loadgen --verify equivalence contract
# (streamed transitions rebuilt and compared state-run-exact against
# offline runDetector) must hold under control-plane stress, not just on
# the happy path:
#
#   1. backpressure: a tiny ingress watermark (opd_serve --max-pending)
#      forces the read-pause/resume hysteresis on every session, so the
#      decided element sequence is squeezed through repeated pause cycles
#   2. mid-stream drain: SIGTERM hits the server while sessions are
#      streaming; cut sessions (opd_loadgen --tolerate-shutdown) must
#      have received a clean prefix of the reference transition sequence,
#      and completed sessions must still match exactly
#
# Usage: scripts/serve_differential.sh [build-dir]
#
#===----------------------------------------------------------------------===#

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
SERVE="$BUILD/examples/opd_serve"
LOADGEN="$BUILD/examples/opd_loadgen"

for bin in "$SERVE" "$LOADGEN"; do
  if [ ! -x "$bin" ]; then
    echo "serve_differential: missing $bin (build opd_serve/opd_loadgen first)"
    exit 1
  fi
done

# shellcheck source=scripts/serve_common.sh
. scripts/serve_common.sh
trap kill_opd_serve EXIT

echo "=== [1/2] equivalence under forced backpressure ==="
# Watermark 64 with 48-element frames: the second in-flight frame
# saturates ingress, so every session streams through repeated
# pause/pump/resume cycles. The batch size (--skip) must stay below the
# watermark or a sub-batch backlog could never be relieved.
start_opd_serve "$SERVE" "$BUILD/serve_diff_bp.log" --max-pending 64
"$LOADGEN" --port "$SERVE_PORT" \
  --sessions 16 --total 48 --workload db --scale 0.05 \
  --chunk 48 --cw 200 --tw 200 --skip 25 --verify
stop_opd_serve

echo "=== [2/2] equivalence under mid-stream drain ==="
# All sessions launch upfront (total == sessions: no backfill races the
# closed listener), then SIGTERM cuts the server from under them — but
# only after every session is ESTABLISHED server-side, so the cut hits
# mid-stream instead of racing the connects on a loaded single-core box.
start_opd_serve "$SERVE" "$BUILD/serve_diff_drain.log"
"$LOADGEN" --port "$SERVE_PORT" \
  --sessions 16 --total 16 --workload db --scale 6.0 \
  --chunk 1024 --verify --tolerate-shutdown &
LOADGEN_PID=$!
wait_for_established "$SERVE_PORT" 16
stop_opd_serve
wait "$LOADGEN_PID"

echo "=== serve_differential passed ==="
