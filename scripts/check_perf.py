#!/usr/bin/env python3
"""Compare a bench_perf smoke run against the committed BENCH_PERF.json.

Part of the OPD project: a reproduction of "Online Phase Detection
Algorithms" (CGO 2006).

The comparison is on fast-over-reference throughput ratios, not absolute
throughput: both paths run in the same process seconds apart, so their
ratio is stable across machines and CPU frequency states, while absolute
M/s on a throttling host can swing far more than any real regression.
A case fails when its ratio drops more than the tolerance (default 25%)
below the committed baseline.

By default a case named <c> compares BM_FastDetector/<c> against
BM_Detector/<c>. A case may override any part of that pairing with
optional fields: "fast_bench" / "ref_bench" select the benchmark
function names, "bench_case" the shared capture suffix. The batch-kernel
cases use this to pin the SIMD and portable dispatch backends against
the same reference run (e.g. "batch_simd_weighted_adaptive" compares
BM_BatchSimdDetector/weighted_adaptive to BM_Detector/weighted_adaptive).
Every baseline case is required: a case whose benchmarks are missing
from the smoke run (including a skipped SIMD benchmark on a host
without AVX2) fails the check.

When a serving smoke file (opd_loadgen --json output) is given and the
baseline carries a "serving" entry, serving_vs_offline_ratio — served
elements/sec over the single-thread offline fast detector, another
machine-relative ratio — is checked the same way, with a wider default
tolerance (50%) because it folds in scheduler and loopback variance.

The sweep wall-clock entries are guarded the same way. Whenever the
baseline carries both pruned_paper_sweep_seconds (per-config engine)
and sweep_shared_seconds (shared-scan engine), their ratio must stay at
or above SWEEP_RATIO_FLOOR — the committed baseline itself proves the
shared-scan win. --sweep-shared / --sweep-per-config feed freshly
measured timings in (seconds); each is held to the same >25% regression
rule as the per-case entries (against its baseline entry, and on the
machine-relative measured ratio when both are given). Pass "-" as the
smoke file to run only the sweep checks.

Usage: check_perf.py [--sweep-shared S] [--sweep-per-config S]
                     <smoke.json|-> <baseline.json> [tolerance] [serving.json]
"""

import json
import sys

SERVING_TOLERANCE = 0.5
# The shared-scan engine's reason to exist: the committed baseline must
# show at least this per-config/shared sweep wall-clock ratio.
SWEEP_RATIO_FLOOR = 1.8


def check_sweep(baseline, shared_s, per_config_s, tolerance):
    """Returns True when a sweep-timing check failed."""
    base_pc = baseline.get("pruned_paper_sweep_seconds")
    base_sh = baseline.get("sweep_shared_seconds")
    if base_pc is None or base_sh is None:
        if shared_s is not None or per_config_s is not None:
            print("perf: sweep: baseline lacks sweep entries "
                  "(rerun scripts/bench.sh): FAILED")
            return True
        print("perf: sweep: no baseline entries; skipping")
        return False

    failed = False
    base_ratio = base_pc / base_sh
    verdict = "ok" if base_ratio >= SWEEP_RATIO_FLOOR else "REGRESSION"
    print(f"perf: sweep: baseline per-config/shared {base_ratio:.2f}x "
          f"(floor {SWEEP_RATIO_FLOOR:.2f}x) {verdict}")
    failed |= base_ratio < SWEEP_RATIO_FLOOR

    for name, measured, base in (
            ("sweep_shared_seconds", shared_s, base_sh),
            ("pruned_paper_sweep_seconds", per_config_s, base_pc)):
        if measured is None:
            continue
        ceiling = base * (1.0 + tolerance)
        verdict = "ok" if measured <= ceiling else "REGRESSION"
        print(f"perf: sweep: {name} {measured:.1f}s "
              f"(baseline {base:.1f}s, ceiling {ceiling:.1f}s) {verdict}")
        failed |= measured > ceiling

    if shared_s is not None and per_config_s is not None:
        # Machine-relative, like the throughput ratios: both engines just
        # ran on the same host.
        ratio = per_config_s / shared_s
        floor = base_ratio * (1.0 - tolerance)
        verdict = "ok" if ratio >= floor else "REGRESSION"
        print(f"perf: sweep: measured per-config/shared {ratio:.2f}x "
              f"(baseline {base_ratio:.2f}x, floor {floor:.2f}x) {verdict}")
        failed |= ratio < floor
    return failed


def check_serving(serving_path, baseline):
    """Returns True when the serving ratio regressed."""
    expected = baseline.get("serving")
    if expected is None:
        print("perf: serving: no baseline entry; skipping")
        return False
    smoke = json.load(open(serving_path))
    if smoke.get("failed", 0) or smoke.get("mismatches", 0):
        print(f"perf: serving: smoke run had {smoke.get('failed', 0)} failed "
              f"sessions, {smoke.get('mismatches', 0)} mismatches: FAILED")
        return True
    ratio = smoke["serving_vs_offline_ratio"]
    floor = expected["serving_vs_offline_ratio"] * (1.0 - SERVING_TOLERANCE)
    verdict = "ok" if ratio >= floor else "REGRESSION"
    print(f"perf: serving: serving/offline {ratio:.4f} "
          f"(baseline {expected['serving_vs_offline_ratio']:.4f}, "
          f"floor {floor:.4f}) {verdict}")
    return ratio < floor


def main():
    argv = sys.argv[1:]
    sweep_shared = sweep_per_config = None
    positional = []
    i = 0
    while i < len(argv):
        if argv[i] == "--sweep-shared":
            sweep_shared = float(argv[i + 1])
            i += 2
        elif argv[i] == "--sweep-per-config":
            sweep_per_config = float(argv[i + 1])
            i += 2
        else:
            positional.append(argv[i])
            i += 1
    smoke_path, baseline_path = positional[0], positional[1]
    tolerance = float(positional[2]) if len(positional) > 2 else 0.25
    serving_path = positional[3] if len(positional) > 3 else None

    baseline_all = json.load(open(baseline_path))
    baseline = baseline_all["cases"]

    failed = False
    if smoke_path != "-":
        raw = json.load(open(smoke_path))
        rates = {}
        for bench in raw["benchmarks"]:
            if "items_per_second" not in bench:  # skipped (error_occurred)
                continue
            path, case = bench["name"].split("/", 1)
            rates.setdefault(case, {})[path] = bench["items_per_second"]

        for case, expected in sorted(baseline.items()):
            fast_bench = expected.get("fast_bench", "BM_FastDetector")
            ref_bench = expected.get("ref_bench", "BM_Detector")
            bench_case = expected.get("bench_case", case)
            pair = rates.get(bench_case, {})
            if fast_bench not in pair or ref_bench not in pair:
                print(f"perf: {case}: MISSING from smoke run "
                      f"(needs {fast_bench}/{bench_case} and "
                      f"{ref_bench}/{bench_case})")
                failed = True
                continue
            ratio = pair[fast_bench] / pair[ref_bench]
            floor = expected["ratio"] * (1.0 - tolerance)
            verdict = "ok" if ratio >= floor else "REGRESSION"
            print(f"perf: {case}: fast/ref {ratio:.2f}x "
                  f"(baseline {expected['ratio']:.2f}x, floor {floor:.2f}x) "
                  f"{verdict}")
            failed |= ratio < floor

    failed |= check_sweep(baseline_all, sweep_shared, sweep_per_config,
                          tolerance)

    if serving_path is not None:
        failed |= check_serving(serving_path, baseline_all)

    if failed:
        print("perf: regression against BENCH_PERF.json "
              "(rebaseline with scripts/bench.sh if intentional)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
