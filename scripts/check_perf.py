#!/usr/bin/env python3
"""Compare a bench_perf smoke run against the committed BENCH_PERF.json.

Part of the OPD project: a reproduction of "Online Phase Detection
Algorithms" (CGO 2006).

The comparison is on fast-over-reference throughput ratios, not absolute
throughput: both paths run in the same process seconds apart, so their
ratio is stable across machines and CPU frequency states, while absolute
M/s on a throttling host can swing far more than any real regression.
A case fails when its ratio drops more than the tolerance (default 25%)
below the committed baseline.

When a serving smoke file (opd_loadgen --json output) is given and the
baseline carries a "serving" entry, serving_vs_offline_ratio — served
elements/sec over the single-thread offline fast detector, another
machine-relative ratio — is checked the same way, with a wider default
tolerance (50%) because it folds in scheduler and loopback variance.

Usage: check_perf.py <smoke.json> <baseline.json> [tolerance] [serving.json]
"""

import json
import sys

SERVING_TOLERANCE = 0.5


def check_serving(serving_path, baseline):
    """Returns True when the serving ratio regressed."""
    expected = baseline.get("serving")
    if expected is None:
        print("perf: serving: no baseline entry; skipping")
        return False
    smoke = json.load(open(serving_path))
    if smoke.get("failed", 0) or smoke.get("mismatches", 0):
        print(f"perf: serving: smoke run had {smoke.get('failed', 0)} failed "
              f"sessions, {smoke.get('mismatches', 0)} mismatches: FAILED")
        return True
    ratio = smoke["serving_vs_offline_ratio"]
    floor = expected["serving_vs_offline_ratio"] * (1.0 - SERVING_TOLERANCE)
    verdict = "ok" if ratio >= floor else "REGRESSION"
    print(f"perf: serving: serving/offline {ratio:.4f} "
          f"(baseline {expected['serving_vs_offline_ratio']:.4f}, "
          f"floor {floor:.4f}) {verdict}")
    return ratio < floor


def main():
    smoke_path, baseline_path = sys.argv[1], sys.argv[2]
    tolerance = float(sys.argv[3]) if len(sys.argv) > 3 else 0.25
    serving_path = sys.argv[4] if len(sys.argv) > 4 else None

    raw = json.load(open(smoke_path))
    rates = {}
    for bench in raw["benchmarks"]:
        path, case = bench["name"].split("/", 1)
        rates.setdefault(case, {})[path] = bench["items_per_second"]

    baseline_all = json.load(open(baseline_path))
    baseline = baseline_all["cases"]

    failed = False
    for case, expected in sorted(baseline.items()):
        if case not in rates or len(rates[case]) != 2:
            print(f"perf: {case}: MISSING from smoke run")
            failed = True
            continue
        ratio = rates[case]["BM_FastDetector"] / rates[case]["BM_Detector"]
        floor = expected["ratio"] * (1.0 - tolerance)
        verdict = "ok" if ratio >= floor else "REGRESSION"
        print(f"perf: {case}: fast/ref {ratio:.2f}x "
              f"(baseline {expected['ratio']:.2f}x, floor {floor:.2f}x) "
              f"{verdict}")
        failed |= ratio < floor

    if serving_path is not None:
        failed |= check_serving(serving_path, baseline_all)

    if failed:
        print("perf: regression against BENCH_PERF.json "
              "(rebaseline with scripts/bench.sh if intentional)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
