#!/usr/bin/env bash
#===- scripts/bench.sh - Performance baseline capture -----------------------===#
#
# Part of the OPD project: a reproduction of "Online Phase Detection
# Algorithms" (CGO 2006).
#
# Builds the Release tree, runs the detector benchmarks, times the
# pruned paper sweep under both execution engines (per-config and
# shared-scan, median of 3 runs each), and assembles BENCH_PERF.json
# at the repo root:
# per-element throughput for the reference and fast detector paths,
# their ratios, and the sweep wall time. The committed BENCH_PERF.json
# is the baseline scripts/ci.sh checks regressions against (on ratios,
# which survive machine-speed differences; absolute M/s numbers are
# recorded for context only).
#
# Usage: scripts/bench.sh [--skip-sweep] [build-dir]
#
#===----------------------------------------------------------------------===#

set -euo pipefail

cd "$(dirname "$0")/.."
# shellcheck source=scripts/serve_common.sh
. scripts/serve_common.sh

SKIP_SWEEP=0
if [ "${1:-}" = "--skip-sweep" ]; then
  SKIP_SWEEP=1; shift
fi
DIR="${1:-build-perf}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "=== [bench] configure + build (Release) ==="
cmake -B "$DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$DIR" -j "$JOBS"

echo "=== [bench] detector benchmarks ==="
RAW="$DIR/bench_perf_raw.json"
# 3 repetitions with the median aggregate recorded, randomly
# interleaved: bench hosts throttle in multi-minute windows, and three
# back-to-back repetitions (or a single measurement) all land inside
# the same window, writing a phantom regression into the baseline.
# Interleaving spreads each benchmark's repetitions across the whole
# run so its median samples different thermal states.
"$DIR/bench/bench_perf" \
  --benchmark_filter='BM_Detector/|BM_FastDetector/|BM_BatchSimdDetector/|BM_BatchPortableDetector/' \
  --benchmark_min_time=2 \
  --benchmark_repetitions=3 --benchmark_report_aggregates_only \
  --benchmark_enable_random_interleaving=true \
  --benchmark_format=json > "$RAW"

# Times one pruned paper sweep run under the given engine and prints
# the seconds. Like every other entry, the recorded value is the median
# of 3 runs: a single sample is hostage to whatever else the machine
# was doing that minute.
time_sweep() {
  local ENGINE="$1"
  local START END
  START=$(date +%s.%N)
  "$DIR/examples/sweep_tool" --preset paper --prune --engine "$ENGINE" \
    --workloads jess --mpls 10K > /dev/null
  END=$(date +%s.%N)
  python3 -c "print($END - $START)"
}

median_of_3() {
  python3 -c "import sys; print(round(sorted(float(a) for a in sys.argv[1:])[1], 1))" "$@"
}

SWEEP_SECONDS=null
SWEEP_SHARED_SECONDS=null
if [ "$SKIP_SWEEP" = 0 ]; then
  echo "=== [bench] pruned paper sweep, per-config engine (jess, MPL 10K, median of 3) ==="
  SWEEP_SECONDS=$(median_of_3 \
    "$(time_sweep per-config)" "$(time_sweep per-config)" "$(time_sweep per-config)")
  echo "=== [bench] pruned paper sweep, shared-scan engine (median of 3) ==="
  SWEEP_SHARED_SECONDS=$(median_of_3 \
    "$(time_sweep shared)" "$(time_sweep shared)" "$(time_sweep shared)")
fi

# Serving throughput: a Release opd_serve takes a loadgen fleet and the
# ratio of served elements/sec over the single-thread offline fast
# detector goes into the baseline (machine-relative, like the detector
# ratios above).
echo "=== [bench] serving throughput (opd_serve + opd_loadgen) ==="
SERVE_JSON="$DIR/bench_serving.json"
start_opd_serve "$DIR/examples/opd_serve" "$DIR/bench_serve.log"
"$DIR/examples/opd_loadgen" --port "$SERVE_PORT" \
  --sessions 128 --total 512 --json > "$SERVE_JSON"
stop_opd_serve

python3 - "$RAW" "$SWEEP_SECONDS" "$SERVE_JSON" "$SWEEP_SHARED_SECONDS" <<'EOF'
import json, sys

raw = json.load(open(sys.argv[1]))
sweep = None if sys.argv[2] == "null" else float(sys.argv[2])
serving = json.load(open(sys.argv[3]))
sweep_shared = None if sys.argv[4] == "null" else float(sys.argv[4])

rates = {}
for b in raw["benchmarks"]:
    if "items_per_second" not in b:  # skipped (e.g. SIMD without AVX2)
        continue
    if b.get("aggregate_name", "median") != "median":
        continue  # keep the median of the 3 repetitions
    path, case = b.get("run_name", b["name"]).split("/", 1)
    rates.setdefault(case, {})[path] = round(
        b["items_per_second"] / 1e6, 2)

cases = {}
for case, r in sorted(rates.items()):
    ref, fast = r["BM_Detector"], r["BM_FastDetector"]
    cases[case] = {
        "reference_mps": ref,
        "fast_mps": fast,
        "ratio": round(fast / ref, 2),
    }
    # Pinned batch-backend cases (check_perf.py resolves the extra
    # fields back to the benchmark names): SIMD vs portable dispatch
    # over the same reference run.
    for prefix, bench in (("batch_simd", "BM_BatchSimdDetector"),
                          ("batch_portable", "BM_BatchPortableDetector")):
        if bench not in r:
            continue
        cases[f"{prefix}_{case}"] = {
            "fast_bench": bench,
            "bench_case": case,
            "reference_mps": ref,
            "fast_mps": r[bench],
            "ratio": round(r[bench] / ref, 2),
        }

out = {
    "description": "Detector per-element throughput (M elements/s) on "
                   "jess scale 0.25 MPL 10K, CW=TW=5000, threshold 0.6, "
                   "skip 1; every entry (throughput and sweep seconds) "
                   "is a median of 3 runs; batch_* cases pin the "
                   "BatchKernel dispatch backend (see "
                   "scripts/check_perf.py); see docs/PERFORMANCE.md",
    "cases": cases,
    "pruned_paper_sweep_seconds": sweep,
    "sweep_shared_seconds": sweep_shared,
    "serving": {
        "sessions": serving["sessions"],
        "total_sessions": serving["total_sessions"],
        "served_eps": serving["eps"],
        "offline_eps": serving["offline_eps"],
        "serving_vs_offline_ratio": serving["serving_vs_offline_ratio"],
        "batch_us_p99": serving["batch_us"]["p99"],
        "session_ms_p99": serving["session_ms"]["p99"],
    },
}
json.dump(out, open("BENCH_PERF.json", "w"), indent=2)
print(open("BENCH_PERF.json").read())
EOF

echo "=== [bench] wrote BENCH_PERF.json ==="
