//===- bench/BenchFig8.cpp - Reproduce Figure 8 -------------------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 8: Constant vs Adaptive TW scored with the
/// anchor-corrected technique for locating the beginning of a phase.
/// Once a detector flags a phase it knows (via the anchor policy) where
/// the phase actually began; scoring uses those corrected start
/// boundaries. Average of best scores across benchmarks, models,
/// analyzers, and CW sizes at most half the MPL, for MPL in
/// {1K, 10K, 50K, 100K, 200K}.
///
/// Paper shape to reproduce: with anchor-corrected starts, Adaptive TW
/// is consistently and significantly more accurate than Constant TW.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace opd;

int main(int Argc, char **Argv) {
  BenchOptions Options;
  int ExitCode = 0;
  if (!parseBenchArgs(Argc, Argv, "bench_fig8",
                      "Reproduces Figure 8 (anchor-corrected phase-start "
                      "scoring).",
                      Options, ExitCode))
    return ExitCode;

  const std::vector<uint64_t> MPLs = {1000, 10000, 50000, 100000, 200000};
  SweepSpec Spec = benchSweepSpec("fig8", analyzersFor(Options));

  std::vector<BenchmarkData> Benchmarks =
      prepareBenchmarks(MPLs, Options.Scale);
  std::vector<DetectorConfig> Configs = enumerateConfigs(Spec);
  std::fprintf(stderr, "fig8: %zu configs x %zu benchmarks\n",
               Configs.size(), Benchmarks.size());

  SweepOptions RunOptions;
  RunOptions.ScoreAnchored = true;

  std::vector<std::vector<double>> ConstBest(MPLs.size()),
      AdaptBest(MPLs.size());

  for (const BenchmarkData &B : Benchmarks) {
    std::vector<RunScores> Runs =
        runSweep(B.Trace, B.Baselines, Configs, RunOptions);
    for (size_t MPLIdx = 0; MPLIdx != MPLs.size(); ++MPLIdx) {
      uint64_t MPL = MPLs[MPLIdx];
      auto best = [&](TWPolicyKind Policy) {
        return bestScore(
            Runs, MPLIdx,
            [&](const DetectorConfig &C) {
              return C.Window.TWPolicy == Policy &&
                     C.Window.CWSize * 2 <= MPL;
            },
            /*Anchored=*/true);
      };
      double Const = best(TWPolicyKind::Constant);
      double Adapt = best(TWPolicyKind::Adaptive);
      if (Const >= 0.0)
        ConstBest[MPLIdx].push_back(Const);
      if (Adapt >= 0.0)
        AdaptBest[MPLIdx].push_back(Adapt);
    }
  }

  Table T("Figure 8: average of best scores with anchor-corrected phase "
          "starts");
  T.setHeader({"MPL", "Constant TW", "Adaptive TW"});
  for (size_t I = 0; I != MPLs.size(); ++I)
    T.addRow({formatAbbrev(MPLs[I]),
              formatDouble(average(ConstBest[I]), 3),
              formatDouble(average(AdaptBest[I]), 3)});
  printTable(T, Options);
  return 0;
}
