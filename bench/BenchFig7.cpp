//===- bench/BenchFig7.cpp - Reproduce Figure 7 -------------------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 7: the Adaptive TW anchoring/resizing parameters.
///
///  (a) Percent improvement in best score of Slide over Move resizing
///      (RN anchoring), per MPL, averaged across benchmarks.
///  (b) Percent improvement of RN over LNN anchoring (Slide resizing).
///
/// Paper shape to reproduce: both improvements are positive on average
/// (a few MPLs may dip slightly negative).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace opd;

int main(int Argc, char **Argv) {
  BenchOptions Options;
  int ExitCode = 0;
  if (!parseBenchArgs(Argc, Argv, "bench_fig7",
                      "Reproduces Figure 7 (anchor and resize policies).",
                      Options, ExitCode))
    return ExitCode;

  SweepSpec Spec = benchSweepSpec("fig7", analyzersFor(Options));

  std::vector<BenchmarkData> Benchmarks =
      prepareBenchmarks(StandardMPLs, Options.Scale);
  std::vector<DetectorConfig> Configs = enumerateConfigs(Spec);
  std::fprintf(stderr, "fig7: %zu configs x %zu benchmarks\n",
               Configs.size(), Benchmarks.size());

  std::vector<std::vector<double>> SlideVsMove(StandardMPLs.size()),
      RNVsLNN(StandardMPLs.size());

  for (const BenchmarkData &B : Benchmarks) {
    std::vector<RunScores> Runs = runSweep(B.Trace, B.Baselines, Configs);
    for (size_t MPLIdx = 0; MPLIdx != StandardMPLs.size(); ++MPLIdx) {
      uint64_t MPL = StandardMPLs[MPLIdx];
      auto best = [&](AnchorKind Anchor, ResizeKind Resize) {
        return bestScore(Runs, MPLIdx, [&](const DetectorConfig &C) {
          return C.Window.CWSize * 2 == MPL &&
                 C.Window.Anchor == Anchor && C.Window.Resize == Resize;
        });
      };
      double SlideRN = best(AnchorKind::RightmostNoisy, ResizeKind::Slide);
      double MoveRN = best(AnchorKind::RightmostNoisy, ResizeKind::Move);
      double SlideLNN =
          best(AnchorKind::LeftmostNonNoisy, ResizeKind::Slide);
      if (SlideRN >= 0.0 && MoveRN > 0.0)
        SlideVsMove[MPLIdx].push_back(
            percentImprovement(SlideRN, MoveRN));
      if (SlideRN >= 0.0 && SlideLNN > 0.0)
        RNVsLNN[MPLIdx].push_back(percentImprovement(SlideRN, SlideLNN));
    }
  }

  Table A("Figure 7(a): % improvement of Slide over Move resizing (RN "
          "anchoring)");
  A.setHeader({"MPL", "% improvement"});
  for (size_t I = 0; I != StandardMPLs.size(); ++I)
    A.addRow({formatAbbrev(StandardMPLs[I]),
              formatDouble(average(SlideVsMove[I]), 2)});
  printTable(A, Options);

  Table B("Figure 7(b): % improvement of RN over LNN anchoring (Slide "
          "resizing)");
  B.setHeader({"MPL", "% improvement"});
  for (size_t I = 0; I != StandardMPLs.size(); ++I)
    B.addRow({formatAbbrev(StandardMPLs[I]),
              formatDouble(average(RNVsLNN[I]), 2)});
  printTable(B, Options);
  return 0;
}
