//===- bench/BenchTable2.cpp - Reproduce Table 2 ------------------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 2: the current-window-size comparison.
///
///  (a) Per benchmark and TW policy (Adaptive skip=1, Constant skip=1,
///      Fixed Interval): average percent improvement in best score when
///      the CW is smaller than / equal to the MPL, over a CW larger than
///      the MPL.
///  (b) Average of best scores across all benchmarks for CW smaller than,
///      equal to, and at most half the MPL.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace opd;

namespace {

/// The three policy groups Table 2 compares.
enum class PolicyGroup { Adaptive, Constant, FixedInterval };

bool inGroup(const DetectorConfig &C, PolicyGroup G) {
  switch (G) {
  case PolicyGroup::Adaptive:
    return C.Window.TWPolicy == TWPolicyKind::Adaptive &&
           C.Window.SkipFactor == 1;
  case PolicyGroup::Constant:
    return C.Window.TWPolicy == TWPolicyKind::Constant &&
           C.Window.SkipFactor == 1;
  case PolicyGroup::FixedInterval:
    return C.isFixedInterval();
  }
  return false;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchOptions Options;
  int ExitCode = 0;
  if (!parseBenchArgs(Argc, Argv, "bench_table2",
                      "Reproduces Table 2 (CW size vs MPL comparison).",
                      Options, ExitCode))
    return ExitCode;

  SweepSpec Spec = benchSweepSpec("table2", analyzersFor(Options));

  std::vector<BenchmarkData> Benchmarks =
      prepareBenchmarks(StandardMPLs, Options.Scale);
  std::vector<DetectorConfig> Configs = enumerateConfigs(Spec);
  std::fprintf(stderr, "table2: %zu configs x %zu benchmarks\n",
               Configs.size(), Benchmarks.size());

  const PolicyGroup Groups[] = {PolicyGroup::Adaptive, PolicyGroup::Constant,
                                PolicyGroup::FixedInterval};

  Table A("Table 2(a): avg % improvement in best score, CW smaller/equal "
          "vs larger than MPL");
  A.setHeader({"Benchmark", "Adapt smaller", "Adapt equal", "Const smaller",
               "Const equal", "Fixed smaller", "Fixed equal"});

  // Accumulators for Table 2(b): best scores per (group, relation).
  std::vector<double> BSmaller[3], BEqual[3], BHalf[3];
  // Column accumulators for the "Average" row of (a).
  std::vector<double> ColAverages[6];

  for (const BenchmarkData &B : Benchmarks) {
    std::vector<RunScores> Runs = runSweep(B.Trace, B.Baselines, Configs);
    std::vector<std::string> Row = {B.Name};
    unsigned Col = 0;
    for (PolicyGroup G : Groups) {
      std::vector<double> ImpSmaller, ImpEqual;
      for (size_t MPLIdx = 0; MPLIdx != B.MPLs.size(); ++MPLIdx) {
        uint64_t MPL = B.MPLs[MPLIdx];
        auto bestWhere = [&](auto Rel) {
          return bestScore(Runs, MPLIdx, [&](const DetectorConfig &C) {
            return inGroup(C, G) && Rel(C.Window.CWSize);
          });
        };
        double Smaller =
            bestWhere([&](uint32_t CW) { return CW < MPL; });
        double Equal = bestWhere([&](uint32_t CW) { return CW == MPL; });
        double Larger = bestWhere([&](uint32_t CW) { return CW > MPL; });
        double Half =
            bestWhere([&](uint32_t CW) { return CW * 2 <= MPL; });
        if (Larger >= 0.0 && Smaller >= 0.0)
          ImpSmaller.push_back(percentImprovement(Smaller, Larger));
        if (Larger >= 0.0 && Equal >= 0.0)
          ImpEqual.push_back(percentImprovement(Equal, Larger));
        if (Smaller >= 0.0)
          BSmaller[static_cast<int>(G)].push_back(Smaller);
        if (Equal >= 0.0)
          BEqual[static_cast<int>(G)].push_back(Equal);
        if (Half >= 0.0)
          BHalf[static_cast<int>(G)].push_back(Half);
      }
      double AvgSmaller = average(ImpSmaller);
      double AvgEqual = average(ImpEqual);
      Row.push_back(formatDouble(AvgSmaller, 2));
      Row.push_back(formatDouble(AvgEqual, 2));
      ColAverages[Col++].push_back(AvgSmaller);
      ColAverages[Col++].push_back(AvgEqual);
    }
    A.addRow(Row);
  }
  std::vector<std::string> AvgRow = {"Average"};
  for (unsigned Col = 0; Col != 6; ++Col)
    AvgRow.push_back(formatDouble(average(ColAverages[Col]), 2));
  A.addSeparator();
  A.addRow(AvgRow);
  printTable(A, Options);

  Table Bt("Table 2(b): average of best scores across benchmarks");
  Bt.setHeader({"TW policy", "Smaller", "Equal", "<= 1/2 MPL"});
  const char *GroupNames[] = {"Adaptive TW", "Constant TW",
                              "Fixed Interval"};
  for (int G = 0; G != 3; ++G)
    Bt.addRow({GroupNames[G], formatDouble(average(BSmaller[G]), 3),
               formatDouble(average(BEqual[G]), 3),
               formatDouble(average(BHalf[G]), 3)});
  printTable(Bt, Options);
  return 0;
}
