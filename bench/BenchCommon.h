//===- bench/BenchCommon.h - Shared reproduction-bench helpers --*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the per-table/figure reproduction binaries: flag
/// handling (--scale shrinks workloads for smoke runs, --full widens the
/// analyzer sweep to the paper's complete set, --csv switches the output
/// format) and small aggregation helpers.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_BENCH_BENCHCOMMON_H
#define OPD_BENCH_BENCHCOMMON_H

#include "harness/Experiment.h"
#include "harness/Sweep.h"
#include "support/ArgParser.h"
#include "support/Format.h"
#include "support/Table.h"

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

namespace opd {

/// Parsed common flags.
struct BenchOptions {
  double Scale = 1.0;
  bool Full = false;
  bool CSV = false;
};

/// Registers and parses the common flags; returns false (after printing
/// usage or a diagnostic) when the program should exit. \p ExitCode is
/// set accordingly.
inline bool parseBenchArgs(int Argc, char **Argv, const char *Name,
                           const char *Description, BenchOptions &Options,
                           int &ExitCode) {
  ArgParser Args(Name, Description);
  Args.addOption("scale", "workload scale factor (0.1 = smoke run)", "1.0");
  Args.addFlag("full", "use the paper's full analyzer set (slower)");
  Args.addFlag("csv", "emit CSV instead of aligned tables");
  if (!Args.parse(Argc, Argv)) {
    ExitCode = Args.helpRequested() ? 0 : 1;
    return false;
  }
  Options.Scale = Args.getDouble("scale", 1.0);
  Options.Full = Args.getFlag("full");
  Options.CSV = Args.getFlag("csv");
  return true;
}

/// The analyzer set selected by --full.
inline std::vector<AnalyzerSpec> analyzersFor(const BenchOptions &Options) {
  return Options.Full ? paperAnalyzers() : reducedAnalyzers();
}

/// Prints a table in the format the options request.
inline void printTable(const Table &T, const BenchOptions &Options) {
  std::fputs((Options.CSV ? T.renderCSV() : T.render()).c_str(), stdout);
  std::fputs("\n", stdout);
}

/// Average of a vector; 0 when empty.
inline double average(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double Sum = 0.0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}

/// Percent improvement of \p New over \p Base ((new-base)/base * 100);
/// 0 when the base is non-positive.
inline double percentImprovement(double New, double Base) {
  if (Base <= 0.0)
    return 0.0;
  return (New - Base) / Base * 100.0;
}

} // namespace opd

#endif // OPD_BENCH_BENCHCOMMON_H
