//===- bench/BenchFig6.cpp - Reproduce Figure 6 -------------------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 6: the analyzer comparison. For the Constant TW (a)
/// and Adaptive TW (b) policies, MPL in {1K, 10K, 50K, 100K}, and the
/// unweighted model with CW = 1/2 MPL: the average score across all
/// benchmarks of each of the ten analyzers (Threshold .5/.6/.7/.8 and
/// Average .01/.05/.1/.2/.3/.4).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace opd;

int main(int Argc, char **Argv) {
  BenchOptions Options;
  int ExitCode = 0;
  if (!parseBenchArgs(Argc, Argv, "bench_fig6",
                      "Reproduces Figure 6 (analyzer comparison).", Options,
                      ExitCode))
    return ExitCode;

  const std::vector<uint64_t> MPLs = {1000, 10000, 50000, 100000};
  // The full analyzer set IS the figure.
  SweepSpec Spec = benchSweepSpec("fig6", paperAnalyzers());

  std::vector<BenchmarkData> Benchmarks =
      prepareBenchmarks(MPLs, Options.Scale);
  std::vector<DetectorConfig> Configs = enumerateConfigs(Spec);
  std::fprintf(stderr, "fig6: %zu configs x %zu benchmarks\n",
               Configs.size(), Benchmarks.size());

  // Scores[policy][MPL][analyzer] = per-benchmark scores.
  std::vector<AnalyzerSpec> Analyzers = paperAnalyzers();
  using ScoreList = std::vector<double>;
  std::vector<std::vector<std::vector<ScoreList>>> Scores(
      2, std::vector<std::vector<ScoreList>>(
             MPLs.size(), std::vector<ScoreList>(Analyzers.size())));

  for (const BenchmarkData &B : Benchmarks) {
    std::vector<RunScores> Runs = runSweep(B.Trace, B.Baselines, Configs);
    for (size_t MPLIdx = 0; MPLIdx != MPLs.size(); ++MPLIdx) {
      for (int P = 0; P != 2; ++P) {
        TWPolicyKind Policy =
            P == 0 ? TWPolicyKind::Constant : TWPolicyKind::Adaptive;
        for (size_t AIdx = 0; AIdx != Analyzers.size(); ++AIdx) {
          const AnalyzerSpec &A = Analyzers[AIdx];
          double Best =
              bestScore(Runs, MPLIdx, [&](const DetectorConfig &C) {
                return C.Window.TWPolicy == Policy &&
                       C.TheAnalyzer == A.Kind &&
                       C.AnalyzerParam == A.Param &&
                       C.Window.CWSize * 2 == MPLs[MPLIdx];
              });
          if (Best >= 0.0)
            Scores[P][MPLIdx][AIdx].push_back(Best);
        }
      }
    }
  }

  for (int P = 0; P != 2; ++P) {
    Table T(std::string("Figure 6(") + (P == 0 ? "a" : "b") + "): " +
            (P == 0 ? "Constant" : "Adaptive") +
            " TW, average score per analyzer (unweighted, CW = 1/2 MPL)");
    std::vector<std::string> Header = {"MPL"};
    for (const AnalyzerSpec &A : Analyzers)
      Header.push_back(
          (A.Kind == AnalyzerKind::Threshold ? "T " : "A ") +
          formatDouble(A.Param, 2));
    T.setHeader(Header);
    for (size_t MPLIdx = 0; MPLIdx != MPLs.size(); ++MPLIdx) {
      std::vector<std::string> Row = {formatAbbrev(MPLs[MPLIdx])};
      for (size_t AIdx = 0; AIdx != Analyzers.size(); ++AIdx)
        Row.push_back(formatDouble(average(Scores[P][MPLIdx][AIdx]), 3));
      T.addRow(Row);
    }
    printTable(T, Options);
  }
  return 0;
}
