//===- bench/BenchControlled.cpp - Controlled factor studies -------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Controlled studies on synthetic traces with ground truth by
/// construction (workloads/Synthetic.h), sweeping one factor at a time:
///
///  (a) noise probability inside phases, per similarity model;
///  (b) phase length relative to the detector's window span;
///  (c) transition length between phases;
///  (d) vocabulary overlap between adjacent phases (where the weighted
///      and Manhattan models must beat the unweighted working set).
///
/// These isolate *why* the paper's aggregate results look the way they
/// do: which factor each policy is sensitive to.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/DetectorRunner.h"
#include "metrics/Scoring.h"
#include "workloads/Synthetic.h"

using namespace opd;

namespace {

double scoreConfig(const DetectorConfig &Config, const SyntheticTrace &T) {
  std::unique_ptr<PhaseDetector> D =
      makeDetector(Config, T.Trace.numSites());
  DetectorRun Run = runDetector(*D, T.Trace);
  return scoreDetection(Run.States, T.Truth).Score;
}

DetectorConfig baseConfig(uint32_t CW, ModelKind Model) {
  DetectorConfig C;
  C.Window.CWSize = CW;
  C.Window.TWSize = CW;
  C.Window.TWPolicy = TWPolicyKind::Adaptive;
  C.Model = Model;
  C.TheAnalyzer = AnalyzerKind::Threshold;
  C.AnalyzerParam = 0.6;
  return C;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchOptions Options;
  int ExitCode = 0;
  if (!parseBenchArgs(Argc, Argv, "bench_controlled",
                      "Controlled factor studies on synthetic traces.",
                      Options, ExitCode))
    return ExitCode;
  // Scale shrinks phase counts.
  unsigned Phases = std::max(4u, static_cast<unsigned>(12 * Options.Scale));

  //===------------------------------------------------------------------===//
  // (a) Noise sensitivity by model.
  //===------------------------------------------------------------------===//
  {
    Table T("Controlled (a): score vs in-phase noise probability "
            "(CW=250, phases 20K, transitions 2K, noise pool 32)");
    T.setHeader({"Noise", "unweighted", "weighted", "manhattan"});
    for (double Noise : {0.0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5}) {
      SyntheticSpec Spec;
      Spec.NumPhases = Phases;
      Spec.NoiseProbability = Noise;
      Spec.NoiseVocab = 32; // wide pool: small windows subsample it
      Spec.Seed = 11;
      SyntheticTrace Trace = generateSynthetic(Spec);
      std::vector<std::string> Row = {formatDouble(Noise, 2)};
      for (ModelKind Model :
           {ModelKind::UnweightedSet, ModelKind::WeightedSet,
            ModelKind::ManhattanBBV})
        Row.push_back(
            formatDouble(scoreConfig(baseConfig(250, Model), Trace), 3));
      T.addRow(Row);
    }
    printTable(T, Options);
  }

  //===------------------------------------------------------------------===//
  // (b) Phase length relative to the window span.
  //===------------------------------------------------------------------===//
  {
    Table T("Controlled (b): score vs phase length (CW=TW=2K, i.e. span "
            "4K; transitions 2K; unweighted)");
    T.setHeader({"Phase length", "span ratio", "score"});
    for (uint64_t Len : {2000ull, 4000ull, 8000ull, 16000ull, 32000ull,
                         64000ull, 128000ull}) {
      SyntheticSpec Spec;
      Spec.NumPhases = Phases;
      Spec.PhaseLength = Len;
      Spec.Seed = 22;
      SyntheticTrace Trace = generateSynthetic(Spec);
      T.addRow({formatAbbrev(Len),
                formatDouble(static_cast<double>(Len) / 4000.0, 1) + "x",
                formatDouble(
                    scoreConfig(baseConfig(2000, ModelKind::UnweightedSet),
                                Trace),
                    3)});
    }
    printTable(T, Options);
  }

  //===------------------------------------------------------------------===//
  // (c) Transition length.
  //===------------------------------------------------------------------===//
  {
    Table T("Controlled (c): score vs transition length (phases 20K, "
            "CW=2K, unweighted)");
    T.setHeader({"Transition", "score"});
    for (uint64_t Len : {0ull, 250ull, 1000ull, 4000ull, 16000ull}) {
      SyntheticSpec Spec;
      Spec.NumPhases = Phases;
      Spec.TransitionLength = Len;
      Spec.Seed = 33;
      SyntheticTrace Trace = generateSynthetic(Spec);
      T.addRow({formatAbbrev(Len),
                formatDouble(
                    scoreConfig(baseConfig(2000, ModelKind::UnweightedSet),
                                Trace),
                    3)});
    }
    printTable(T, Options);
  }

  //===------------------------------------------------------------------===//
  // (d) Vocabulary overlap between adjacent phases.
  //===------------------------------------------------------------------===//
  {
    Table T("Controlled (d): score vs adjacent-phase vocabulary overlap "
            "(stationary transitions, CW=2K, phases 20K; phase-vs-phase "
            "discrimination is where model choice matters)");
    T.setHeader({"Overlap", "unweighted", "weighted", "manhattan"});
    for (double Overlap : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      SyntheticSpec Spec;
      Spec.NumPhases = Phases;
      Spec.VocabOverlap = Overlap;
      Spec.VocabPerBehavior = 8;
      Spec.StationaryTransitions = true;
      Spec.Seed = 44;
      SyntheticTrace Trace = generateSynthetic(Spec);
      std::vector<std::string> Row = {formatDouble(Overlap, 2)};
      for (ModelKind Model :
           {ModelKind::UnweightedSet, ModelKind::WeightedSet,
            ModelKind::ManhattanBBV})
        Row.push_back(
            formatDouble(scoreConfig(baseConfig(2000, Model), Trace), 3));
      T.addRow(Row);
    }
    printTable(T, Options);
  }
  return 0;
}
