//===- bench/BenchTable1.cpp - Reproduce Table 1 -----------------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 1: (a) the dynamic execution characteristics of the
/// eight benchmarks and (b) the baseline solution's phase counts and
/// branch coverage for MPL in {1K, 5K, 10K, 25K, 50K, 100K}.
///
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "support/ArgParser.h"
#include "support/Format.h"
#include "support/Table.h"

#include <cstdio>

using namespace opd;

int main(int Argc, char **Argv) {
  ArgParser Args("bench_table1", "Reproduces Table 1 (benchmark "
                                 "characteristics and baseline phases).");
  Args.addOption("scale", "workload scale factor", "1.0");
  Args.addFlag("csv", "emit CSV instead of aligned tables");
  if (!Args.parse(Argc, Argv))
    return Args.helpRequested() ? 0 : 1;
  double Scale = Args.getDouble("scale", 1.0);

  std::vector<BenchmarkData> Benchmarks =
      prepareBenchmarks(StandardMPLs, Scale);

  Table A("Table 1(a): Benchmark Characteristics");
  A.setHeader({"Benchmark", "Dynamic Branches", "Loop Executions",
               "Method Invocations", "Recursion Roots", "Distinct Sites"});
  for (const BenchmarkData &B : Benchmarks)
    A.addRow({B.Name, formatCount(B.Stats.DynamicBranches),
              formatCount(B.Stats.LoopExecutions),
              formatCount(B.Stats.MethodInvocations),
              formatCount(B.Stats.RecursionRoots),
              formatCount(B.Trace.numSites())});

  Table T1B("Table 1(b): Baseline phases per MPL (# Phases / % in Phase)");
  std::vector<std::string> Header = {"Benchmark"};
  for (uint64_t MPL : StandardMPLs) {
    Header.push_back("#P@" + formatAbbrev(MPL));
    Header.push_back("%inP@" + formatAbbrev(MPL));
  }
  T1B.setHeader(Header);
  for (const BenchmarkData &B : Benchmarks) {
    std::vector<std::string> Row = {B.Name};
    for (const BaselineSolution &Baseline : B.Baselines) {
      Row.push_back(std::to_string(Baseline.numPhases()));
      Row.push_back(formatPercent(Baseline.fractionInPhase()));
    }
    T1B.addRow(Row);
  }

  bool CSV = Args.getFlag("csv");
  std::fputs((CSV ? A.renderCSV() : A.render()).c_str(), stdout);
  std::fputs("\n", stdout);
  std::fputs((CSV ? T1B.renderCSV() : T1B.render()).c_str(), stdout);
  return 0;
}
