//===- bench/BenchAblation.cpp - Design-choice ablations -----------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablations beyond the paper's tables, for the design choices DESIGN.md
/// calls out:
///
///  1. Framework detectors vs the related-work detectors of Section 6
///     (Lu et al. mean-interval, Das et al. Pearson), scored with the
///     same oracle/metric.
///  2. Skip-factor sensitivity between the paper's two extremes (1 and
///     CW size).
///  3. Trailing-window size factor (TW = CW vs TW = 2x CW).
///  4. The Average analyzer's optional entry threshold (our extension to
///     the paper's under-specified phase-entry rule).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/DetectorRunner.h"
#include "core/MultiScale.h"
#include "core/OfflineClustering.h"
#include "core/PhasePredictor.h"
#include "core/RecurringPhases.h"
#include "core/RelatedWork.h"
#include "metrics/Latency.h"
#include "metrics/Scoring.h"
#include "metrics/Stability.h"
#include "trace/Sampling.h"
#include "vm/Interleave.h"

using namespace opd;

namespace {

double scoreDetector(OnlineDetector &D, const BenchmarkData &B,
                     size_t MPLIdx) {
  DetectorRun Run = runDetector(D, B.Trace);
  return scoreDetection(Run.States, B.Baselines[MPLIdx].states()).Score;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchOptions Options;
  int ExitCode = 0;
  if (!parseBenchArgs(Argc, Argv, "bench_ablation",
                      "Ablations: related-work detectors, skip factor, TW "
                      "size, analyzer entry threshold.",
                      Options, ExitCode))
    return ExitCode;

  const std::vector<uint64_t> MPLs = {10000};
  std::vector<BenchmarkData> Benchmarks =
      prepareBenchmarks(MPLs, Options.Scale);

  //===------------------------------------------------------------------===//
  // 1. Framework vs related-work detectors (MPL 10K).
  //===------------------------------------------------------------------===//
  {
    Table T("Ablation 1: framework vs related-work detectors (score at "
            "MPL 10K)");
    T.setHeader({"Benchmark", "Framework (unw/adaptive/T.6)",
                 "Lu mean-interval", "Das pearson"});
    std::vector<double> Fw, Lu, Das;
    for (const BenchmarkData &B : Benchmarks) {
      DetectorConfig C;
      C.Window.CWSize = 5000;
      C.Window.TWSize = 5000;
      C.Window.TWPolicy = TWPolicyKind::Adaptive;
      C.Model = ModelKind::UnweightedSet;
      C.TheAnalyzer = AnalyzerKind::Threshold;
      C.AnalyzerParam = 0.6;
      std::unique_ptr<PhaseDetector> D =
          makeDetector(C, B.Trace.numSites());
      LuDetector LuD({/*SampleSize=*/4096});
      DasDetector DasD({/*SampleSize=*/4096, /*Threshold=*/0.9},
                       B.Trace.numSites());
      double SFw = scoreDetector(*D, B, 0);
      double SLu = scoreDetector(LuD, B, 0);
      double SDas = scoreDetector(DasD, B, 0);
      Fw.push_back(SFw);
      Lu.push_back(SLu);
      Das.push_back(SDas);
      T.addRow({B.Name, formatDouble(SFw, 3), formatDouble(SLu, 3),
                formatDouble(SDas, 3)});
    }
    T.addSeparator();
    T.addRow({"Average", formatDouble(average(Fw), 3),
              formatDouble(average(Lu), 3), formatDouble(average(Das), 3)});
    printTable(T, Options);
  }

  //===------------------------------------------------------------------===//
  // 2. Skip-factor sensitivity (Constant TW, CW 5K, MPL 10K).
  //===------------------------------------------------------------------===//
  {
    Table T("Ablation 2: skip-factor sensitivity (Constant TW, unweighted, "
            "CW=5K, threshold 0.6, MPL 10K)");
    std::vector<uint32_t> Skips = {1, 4, 16, 64, 256, 1024, 5000};
    std::vector<std::string> Header = {"Benchmark"};
    for (uint32_t S : Skips)
      Header.push_back("skip " + formatAbbrev(S));
    T.setHeader(Header);
    std::vector<std::vector<double>> PerSkip(Skips.size());
    for (const BenchmarkData &B : Benchmarks) {
      std::vector<std::string> Row = {B.Name};
      for (size_t I = 0; I != Skips.size(); ++I) {
        DetectorConfig C;
        C.Window.CWSize = 5000;
        C.Window.TWSize = 5000;
        C.Window.SkipFactor = Skips[I];
        C.Model = ModelKind::UnweightedSet;
        C.TheAnalyzer = AnalyzerKind::Threshold;
        C.AnalyzerParam = 0.6;
        std::unique_ptr<PhaseDetector> D =
            makeDetector(C, B.Trace.numSites());
        double S = scoreDetector(*D, B, 0);
        PerSkip[I].push_back(S);
        Row.push_back(formatDouble(S, 3));
      }
      T.addRow(Row);
    }
    std::vector<std::string> AvgRow = {"Average"};
    for (const std::vector<double> &Scores : PerSkip)
      AvgRow.push_back(formatDouble(average(Scores), 3));
    T.addSeparator();
    T.addRow(AvgRow);
    printTable(T, Options);
  }

  //===------------------------------------------------------------------===//
  // 3. Trailing-window size factor.
  //===------------------------------------------------------------------===//
  {
    Table T("Ablation 3: TW size factor (Constant TW, unweighted, CW=5K, "
            "threshold 0.6, MPL 10K)");
    T.setHeader({"Benchmark", "TW = CW", "TW = 2x CW", "TW = 4x CW"});
    std::vector<std::vector<double>> PerFactor(3);
    for (const BenchmarkData &B : Benchmarks) {
      std::vector<std::string> Row = {B.Name};
      uint32_t Factors[] = {1, 2, 4};
      for (size_t I = 0; I != 3; ++I) {
        DetectorConfig C;
        C.Window.CWSize = 5000;
        C.Window.TWSize = 5000 * Factors[I];
        C.Model = ModelKind::UnweightedSet;
        C.TheAnalyzer = AnalyzerKind::Threshold;
        C.AnalyzerParam = 0.6;
        std::unique_ptr<PhaseDetector> D =
            makeDetector(C, B.Trace.numSites());
        double S = scoreDetector(*D, B, 0);
        PerFactor[I].push_back(S);
        Row.push_back(formatDouble(S, 3));
      }
      T.addRow(Row);
    }
    T.addSeparator();
    T.addRow({"Average", formatDouble(average(PerFactor[0]), 3),
              formatDouble(average(PerFactor[1]), 3),
              formatDouble(average(PerFactor[2]), 3)});
    printTable(T, Options);
  }

  //===------------------------------------------------------------------===//
  // 4. Average analyzer entry-threshold extension.
  //===------------------------------------------------------------------===//
  {
    Table T("Ablation 4: Average analyzer entry threshold (Adaptive TW, "
            "unweighted, CW=5K, delta 0.05, MPL 10K)");
    T.setHeader({"Benchmark", "pure (optimistic entry)", "entry >= 0.5",
                 "entry >= 0.7"});
    std::vector<std::vector<double>> PerVariant(3);
    double Entries[] = {-1.0, 0.5, 0.7};
    for (const BenchmarkData &B : Benchmarks) {
      std::vector<std::string> Row = {B.Name};
      for (size_t I = 0; I != 3; ++I) {
        WindowConfig W;
        W.CWSize = 5000;
        W.TWSize = 5000;
        W.TWPolicy = TWPolicyKind::Adaptive;
        PhaseDetector D(W, ModelKind::UnweightedSet,
                        std::make_unique<AverageAnalyzer>(0.05, Entries[I]),
                        B.Trace.numSites());
        double S = scoreDetector(D, B, 0);
        PerVariant[I].push_back(S);
        Row.push_back(formatDouble(S, 3));
      }
      T.addRow(Row);
    }
    T.addSeparator();
    T.addRow({"Average", formatDouble(average(PerVariant[0]), 3),
              formatDouble(average(PerVariant[1]), 3),
              formatDouble(average(PerVariant[2]), 3)});
    printTable(T, Options);
  }

  //===------------------------------------------------------------------===//
  // 5. Hysteresis analyzer (extension) vs single threshold.
  //===------------------------------------------------------------------===//
  {
    Table T("Ablation 5: hysteresis analyzer vs plain threshold (Adaptive "
            "TW, unweighted, CW=5K, MPL 10K)");
    T.setHeader({"Benchmark", "threshold 0.7", "hysteresis 0.7/0.55"});
    std::vector<double> Plain, Hyst;
    for (const BenchmarkData &B : Benchmarks) {
      DetectorConfig C;
      C.Window.CWSize = 5000;
      C.Window.TWSize = 5000;
      C.Window.TWPolicy = TWPolicyKind::Adaptive;
      C.Model = ModelKind::UnweightedSet;
      C.TheAnalyzer = AnalyzerKind::Threshold;
      C.AnalyzerParam = 0.7;
      std::unique_ptr<PhaseDetector> DPlain =
          makeDetector(C, B.Trace.numSites());
      C.TheAnalyzer = AnalyzerKind::Hysteresis;
      std::unique_ptr<PhaseDetector> DHyst =
          makeDetector(C, B.Trace.numSites());
      double SPlain = scoreDetector(*DPlain, B, 0);
      double SHyst = scoreDetector(*DHyst, B, 0);
      Plain.push_back(SPlain);
      Hyst.push_back(SHyst);
      T.addRow({B.Name, formatDouble(SPlain, 3), formatDouble(SHyst, 3)});
    }
    T.addSeparator();
    T.addRow({"Average", formatDouble(average(Plain), 3),
              formatDouble(average(Hyst), 3)});
    printTable(T, Options);
  }

  //===------------------------------------------------------------------===//
  // 6. Detection latency: how late are matched boundaries?
  //===------------------------------------------------------------------===//
  {
    Table T("Ablation 6: detection latency in elements (Adaptive TW, "
            "unweighted, threshold 0.6, MPL 10K) by CW size");
    T.setHeader({"Benchmark", "CW=1K start", "CW=1K end", "CW=5K start",
                 "CW=5K end"});
    for (const BenchmarkData &B : Benchmarks) {
      std::vector<std::string> Row = {B.Name};
      for (uint32_t CW : {1000u, 5000u}) {
        DetectorConfig C;
        C.Window.CWSize = CW;
        C.Window.TWSize = CW;
        C.Window.TWPolicy = TWPolicyKind::Adaptive;
        C.Model = ModelKind::UnweightedSet;
        C.TheAnalyzer = AnalyzerKind::Threshold;
        C.AnalyzerParam = 0.6;
        std::unique_ptr<PhaseDetector> D =
            makeDetector(C, B.Trace.numSites());
        DetectorRun Run = runDetector(*D, B.Trace);
        LatencyStats L = computeLatency(
            Run.DetectedPhases, B.Baselines[0].phases(), B.Trace.size());
        Row.push_back(L.StartDelay.empty()
                          ? "-"
                          : formatCount(static_cast<uint64_t>(
                                L.StartDelay.mean())));
        Row.push_back(L.EndDelay.empty()
                          ? "-"
                          : formatCount(static_cast<uint64_t>(
                                L.EndDelay.mean())));
      }
      T.addRow(Row);
    }
    printTable(T, Options);
  }

  //===------------------------------------------------------------------===//
  // 7. Recurring-phase identification (the paper's future-work feature).
  //===------------------------------------------------------------------===//
  {
    Table T("Ablation 7: recurring-phase identification (Adaptive TW, "
            "unweighted, threshold 0.6, CW=5K; signature match 0.7)");
    T.setHeader({"Benchmark", "completed phases", "distinct phases",
                 "recurrences", "recurrence rate"});
    std::vector<RecurringPhaseTracker> Trackers;
    for (const BenchmarkData &B : Benchmarks) {
      DetectorConfig C;
      C.Window.CWSize = 5000;
      C.Window.TWSize = 5000;
      C.Window.TWPolicy = TWPolicyKind::Adaptive;
      C.Model = ModelKind::UnweightedSet;
      C.TheAnalyzer = AnalyzerKind::Threshold;
      C.AnalyzerParam = 0.6;
      std::unique_ptr<PhaseDetector> D =
          makeDetector(C, B.Trace.numSites());
      D->reset();
      RecurringPhaseTracker Tracker(B.Trace.numSites(), 0.7);
      const std::vector<SiteIndex> &Elements = B.Trace.elements();
      for (uint64_t I = 0; I != Elements.size(); ++I) {
        PhaseState S = D->processBatch(&Elements[I], 1);
        Tracker.observe(&Elements[I], 1, S);
      }
      Tracker.finish();
      size_t Completed = Tracker.completedPhases().size();
      unsigned Recur = 0;
      for (const RecurringPhaseTracker::CompletedPhase &P :
           Tracker.completedPhases())
        Recur += P.Recurrence ? 1 : 0;
      T.addRow({B.Name, std::to_string(Completed),
                std::to_string(Tracker.numDistinctPhases()),
                std::to_string(Recur),
                Completed == 0
                    ? "-"
                    : formatPercent(static_cast<double>(Recur) /
                                    static_cast<double>(Completed)) +
                          "%"});
      Trackers.push_back(std::move(Tracker));
    }
    printTable(T, Options);

    //===----------------------------------------------------------------===//
    // 8. Next-phase prediction on top of the recurring-phase ids.
    //===----------------------------------------------------------------===//
    Table TP("Ablation 8: next-phase prediction accuracy over the "
             "recurring-phase id stream");
    TP.setHeader({"Benchmark", "phases", "last-value", "markov"});
    std::vector<double> LastRates, MarkovRates;
    for (size_t I = 0; I != Benchmarks.size(); ++I) {
      const std::vector<RecurringPhaseTracker::CompletedPhase> &Phases =
          Trackers[I].completedPhases();
      LastPhasePredictor Last;
      MarkovPhasePredictor Markov;
      PredictionAccuracy AL = evaluatePredictor(Last, Phases);
      PredictionAccuracy AM = evaluatePredictor(Markov, Phases);
      if (AL.Predictions >= 4) {
        LastRates.push_back(AL.rate());
        MarkovRates.push_back(AM.rate());
      }
      TP.addRow({Benchmarks[I].Name, std::to_string(Phases.size()),
                 AL.Predictions ? formatPercent(AL.rate()) + "%" : "-",
                 AM.Predictions ? formatPercent(AM.rate()) + "%" : "-"});
    }
    TP.addSeparator();
    TP.addRow({"Average (>=5 phases)", "",
               formatPercent(average(LastRates)) + "%",
               formatPercent(average(MarkovRates)) + "%"});
    printTable(TP, Options);
  }

  //===------------------------------------------------------------------===//
  // 9. Multi-threaded interleaving: per-thread vs merged-stream
  //    detection (the paper's noted single-thread limitation).
  //===------------------------------------------------------------------===//
  {
    Table T("Ablation 9: multi-threaded interleaving (jess + db threads, "
            "unweighted/constant/T.6, CW=5K, MPL 10K)");
    T.setHeader({"Quantum", "per-thread score", "merged-stream score"});
    const BenchmarkData *T1 = nullptr, *T2 = nullptr;
    for (const BenchmarkData &B : Benchmarks) {
      if (B.Name == "jess")
        T1 = &B;
      if (B.Name == "db")
        T2 = &B;
    }
    if (T1 && T2) {
      DetectorConfig C;
      C.Window.CWSize = 5000;
      C.Window.TWSize = 5000;
      C.Model = ModelKind::UnweightedSet;
      C.TheAnalyzer = AnalyzerKind::Threshold;
      C.AnalyzerParam = 0.6;

      // Per-thread detection does not depend on the quantum.
      std::unique_ptr<PhaseDetector> D1 =
          makeDetector(C, T1->Trace.numSites());
      std::unique_ptr<PhaseDetector> D2 =
          makeDetector(C, T2->Trace.numSites());
      double PerThread =
          (scoreDetection(runDetector(*D1, T1->Trace).States,
                          T1->Baselines[0].states())
               .Score +
           scoreDetection(runDetector(*D2, T2->Trace).States,
                          T2->Baselines[0].states())
               .Score) /
          2.0;

      for (uint64_t Quantum : {100ull, 1000ull, 10000ull, 100000ull}) {
        InterleavedTrace Merged =
            interleaveTraces({&T1->Trace, &T2->Trace}, Quantum, 1234);
        std::unique_ptr<PhaseDetector> DM =
            makeDetector(C, Merged.Merged.numSites());
        DetectorRun MergedRun = runDetector(*DM, Merged.Merged);
        std::vector<StateSequence> Projected =
            demuxStates(Merged, MergedRun.States);
        double MergedScore =
            (scoreDetection(Projected[0], T1->Baselines[0].states())
                 .Score +
             scoreDetection(Projected[1], T2->Baselines[0].states())
                 .Score) /
            2.0;
        T.addRow({formatAbbrev(Quantum), formatDouble(PerThread, 3),
                  formatDouble(MergedScore, 3)});
      }
    }
    printTable(T, Options);
  }

  //===------------------------------------------------------------------===//
  // 10. Sampled profiles: accuracy vs sampling period.
  //===------------------------------------------------------------------===//
  {
    Table T("Ablation 10: sampled profiles (unweighted/adaptive/T.6; CW "
            "scaled with the period so the window spans ~10K raw "
            "branches; MPL 10K)");
    std::vector<uint64_t> Periods = {1, 2, 4, 8, 16, 32};
    std::vector<std::string> Header = {"Benchmark"};
    for (uint64_t P : Periods)
      Header.push_back("1/" + std::to_string(P));
    T.setHeader(Header);
    std::vector<std::vector<double>> PerPeriod(Periods.size());
    for (const BenchmarkData &B : Benchmarks) {
      std::vector<std::string> Row = {B.Name};
      for (size_t I = 0; I != Periods.size(); ++I) {
        uint64_t Period = Periods[I];
        BranchTrace Sampled = sampleTrace(B.Trace, Period);
        StateSequence SampledOracle =
            sampleStates(B.Baselines[0].states(), Period);
        DetectorConfig C;
        C.Window.CWSize =
            std::max<uint32_t>(16, static_cast<uint32_t>(5000 / Period));
        C.Window.TWSize = C.Window.CWSize;
        C.Window.TWPolicy = TWPolicyKind::Adaptive;
        C.Model = ModelKind::UnweightedSet;
        C.TheAnalyzer = AnalyzerKind::Threshold;
        C.AnalyzerParam = 0.6;
        std::unique_ptr<PhaseDetector> D =
            makeDetector(C, Sampled.numSites());
        DetectorRun Run = runDetector(*D, Sampled);
        double Score = scoreDetection(Run.States, SampledOracle).Score;
        PerPeriod[I].push_back(Score);
        Row.push_back(formatDouble(Score, 3));
      }
      T.addRow(Row);
    }
    std::vector<std::string> AvgRow = {"Average"};
    for (const std::vector<double> &Scores : PerPeriod)
      AvgRow.push_back(formatDouble(average(Scores), 3));
    T.addSeparator();
    T.addRow(AvgRow);
    printTable(T, Options);
  }

  //===------------------------------------------------------------------===//
  // 11. Multi-scale detection: one bank scored against several MPLs.
  //===------------------------------------------------------------------===//
  {
    std::vector<BenchmarkData> MultiMPL = prepareBenchmarks(
        {"jess", "db", "mpegaudio", "jlex"}, {1000, 10000, 100000},
        Options.Scale);
    Table T("Ablation 11: multi-scale bank (CW 500/5K/50K) vs single "
            "detectors, score at each MPL");
    T.setHeader({"Benchmark", "lvl0@1K", "lvl1@10K", "lvl2@100K",
                 "single@1K", "single@10K", "single@100K"});
    for (const BenchmarkData &B : MultiMPL) {
      MultiScaleDetector::Options MS;
      MS.BaseCWSize = 500;
      MS.ScaleFactor = 10;
      MS.NumLevels = 3;
      MultiScaleDetector Bank(MS, B.Trace.numSites());
      MultiScaleRun Run = runMultiScale(Bank, B.Trace);
      std::vector<std::string> Row = {B.Name};
      for (unsigned L = 0; L != 3; ++L)
        Row.push_back(formatDouble(
            scoreDetection(Run.LevelStates[L], B.Baselines[L].states())
                .Score,
            3));
      // Single detectors with the matching window per MPL.
      for (unsigned L = 0; L != 3; ++L) {
        DetectorConfig C;
        C.Window.CWSize = Bank.levelCWSize(L);
        C.Window.TWSize = C.Window.CWSize;
        C.Window.TWPolicy = TWPolicyKind::Adaptive;
        C.Model = ModelKind::UnweightedSet;
        C.TheAnalyzer = AnalyzerKind::Threshold;
        C.AnalyzerParam = 0.6;
        std::unique_ptr<PhaseDetector> D =
            makeDetector(C, B.Trace.numSites());
        DetectorRun SingleRun = runDetector(*D, B.Trace);
        Row.push_back(formatDouble(
            scoreDetection(SingleRun.States, B.Baselines[L].states())
                .Score,
            3));
      }
      T.addRow(Row);
    }
    printTable(T, Options);
  }

  //===------------------------------------------------------------------===//
  // 12. Offline interval clustering (full-trace hindsight) vs online.
  //===------------------------------------------------------------------===//
  {
    Table T("Ablation 12: offline k-means interval clustering vs the "
            "online detector (intervals 5K, k=8; MPL 10K)");
    T.setHeader({"Benchmark", "offline score", "offline clusters",
                 "online score (unw/adaptive/T.6, CW=5K)"});
    std::vector<double> Offline, Online;
    for (const BenchmarkData &B : Benchmarks) {
      OfflineClusteringOptions OC;
      OC.IntervalLength = 5000;
      OC.NumClusters = 8;
      OfflineClusteringResult R = clusterTrace(B.Trace, OC);
      double SOffline =
          scoreDetection(R.Phases, B.Baselines[0].states()).Score;

      DetectorConfig C;
      C.Window.CWSize = 5000;
      C.Window.TWSize = 5000;
      C.Window.TWPolicy = TWPolicyKind::Adaptive;
      C.Model = ModelKind::UnweightedSet;
      C.TheAnalyzer = AnalyzerKind::Threshold;
      C.AnalyzerParam = 0.6;
      std::unique_ptr<PhaseDetector> D =
          makeDetector(C, B.Trace.numSites());
      double SOnline = scoreDetector(*D, B, 0);

      Offline.push_back(SOffline);
      Online.push_back(SOnline);
      T.addRow({B.Name, formatDouble(SOffline, 3),
                std::to_string(R.NumClusters),
                formatDouble(SOnline, 3)});
    }
    T.addSeparator();
    T.addRow({"Average", formatDouble(average(Offline), 3), "",
              formatDouble(average(Online), 3)});
    printTable(T, Options);
  }

  //===------------------------------------------------------------------===//
  // 13. Best overall configuration per benchmark (the paper-style
  //     conclusion, stated concretely).
  //===------------------------------------------------------------------===//
  {
    Table T("Ablation 13: best configuration per benchmark (sweep over "
            "CW/policy/model/analyzer; MPL 10K)");
    T.setHeader({"Benchmark", "best score", "configuration"});
    SweepSpec Spec = benchSweepSpec("ablation13", analyzersFor(Options));
    std::vector<DetectorConfig> Configs = enumerateConfigs(Spec);
    for (const BenchmarkData &B : Benchmarks) {
      std::vector<RunScores> Runs =
          runSweep(B.Trace, B.Baselines, Configs);
      double Best = -1.0;
      const DetectorConfig *BestConfig = nullptr;
      for (const RunScores &R : Runs) {
        if (R.PerMPL[0].Score > Best) {
          Best = R.PerMPL[0].Score;
          BestConfig = &R.Config;
        }
      }
      T.addRow({B.Name, formatDouble(Best, 3),
                BestConfig ? BestConfig->describe() : "-"});
    }
    printTable(T, Options);
  }

  //===------------------------------------------------------------------===//
  // 14. Oracle-free stability characterization of detector output
  //     (Dhodapkar & Smith-style measures).
  //===------------------------------------------------------------------===//
  {
    Table T("Ablation 14: output stability (unweighted/adaptive/T.6, "
            "CW=5K): in-phase fraction, state changes per 1M elements, "
            "mean phase length");
    T.setHeader({"Benchmark", "% in P", "changes/M", "phases",
                 "mean phase len", "oracle % in P"});
    for (const BenchmarkData &B : Benchmarks) {
      DetectorConfig C;
      C.Window.CWSize = 5000;
      C.Window.TWSize = 5000;
      C.Window.TWPolicy = TWPolicyKind::Adaptive;
      C.Model = ModelKind::UnweightedSet;
      C.TheAnalyzer = AnalyzerKind::Threshold;
      C.AnalyzerParam = 0.6;
      std::unique_ptr<PhaseDetector> D =
          makeDetector(C, B.Trace.numSites());
      DetectorRun Run = runDetector(*D, B.Trace);
      StabilityStats S = computeStability(Run.States);
      T.addRow({B.Name, formatPercent(S.InPhaseFraction),
                formatDouble(S.ChangesPerMillion, 1),
                std::to_string(S.NumPhases),
                S.PhaseLengths.empty()
                    ? "-"
                    : formatCount(
                          static_cast<uint64_t>(S.PhaseLengths.mean())),
                formatPercent(B.Baselines[0].fractionInPhase())});
    }
    printTable(T, Options);
  }
  return 0;
}
