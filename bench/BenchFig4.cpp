//===- bench/BenchFig4.cpp - Reproduce Figure 4 -------------------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 4: skip factor and Fixed vs Adaptive windowing.
/// For each MPL in {1K..200K}, the average across benchmarks of the best
/// score (over models, analyzers, and CW sizes at most half the MPL) for
/// three policies: Fixed Intervals (skip = CW size, Constant TW),
/// Constant TW (skip = 1), and Adaptive TW (skip = 1).
///
/// Paper shape to reproduce: skip=1 policies clearly beat Fixed
/// Intervals at every MPL; Adaptive overtakes Constant at large MPLs.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace opd;

int main(int Argc, char **Argv) {
  BenchOptions Options;
  int ExitCode = 0;
  if (!parseBenchArgs(Argc, Argv, "bench_fig4",
                      "Reproduces Figure 4 (skip factor and TW policy vs "
                      "MPL).",
                      Options, ExitCode))
    return ExitCode;

  SweepSpec Spec = benchSweepSpec("fig4", analyzersFor(Options));

  std::vector<BenchmarkData> Benchmarks =
      prepareBenchmarks(ExtendedMPLs, Options.Scale);
  std::vector<DetectorConfig> Configs = enumerateConfigs(Spec);
  std::fprintf(stderr, "fig4: %zu configs x %zu benchmarks\n",
               Configs.size(), Benchmarks.size());

  // Best[MPLIdx][policy] accumulated across benchmarks.
  std::vector<std::vector<double>> FixedBest(ExtendedMPLs.size()),
      ConstBest(ExtendedMPLs.size()), AdaptBest(ExtendedMPLs.size());

  for (const BenchmarkData &B : Benchmarks) {
    std::vector<RunScores> Runs = runSweep(B.Trace, B.Baselines, Configs);
    for (size_t MPLIdx = 0; MPLIdx != B.MPLs.size(); ++MPLIdx) {
      uint64_t MPL = B.MPLs[MPLIdx];
      auto best = [&](auto Filter) {
        return bestScore(Runs, MPLIdx, [&](const DetectorConfig &C) {
          return C.Window.CWSize * 2 <= MPL && Filter(C);
        });
      };
      double Fixed = best(
          [](const DetectorConfig &C) { return C.isFixedInterval(); });
      double Const = best([](const DetectorConfig &C) {
        return C.Window.TWPolicy == TWPolicyKind::Constant &&
               C.Window.SkipFactor == 1;
      });
      double Adapt = best([](const DetectorConfig &C) {
        return C.Window.TWPolicy == TWPolicyKind::Adaptive &&
               C.Window.SkipFactor == 1;
      });
      if (Fixed >= 0.0)
        FixedBest[MPLIdx].push_back(Fixed);
      if (Const >= 0.0)
        ConstBest[MPLIdx].push_back(Const);
      if (Adapt >= 0.0)
        AdaptBest[MPLIdx].push_back(Adapt);
    }
  }

  Table T("Figure 4: average of best scores vs MPL (CW <= 1/2 MPL)");
  T.setHeader({"MPL", "Fixed Intervals (skip=CW)", "Constant TW (skip=1)",
               "Adaptive TW (skip=1)"});
  for (size_t I = 0; I != ExtendedMPLs.size(); ++I)
    T.addRow({formatAbbrev(ExtendedMPLs[I]),
              formatDouble(average(FixedBest[I]), 3),
              formatDouble(average(ConstBest[I]), 3),
              formatDouble(average(AdaptBest[I]), 3)});
  printTable(T, Options);
  return 0;
}
