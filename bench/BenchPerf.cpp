//===- bench/BenchPerf.cpp - Overhead microbenchmarks -------------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper defers overhead analysis to future work (Section 7, "we plan
/// to investigate and optimize the overhead of accurate phase
/// detection"). This google-benchmark binary provides that measurement
/// for this implementation: per-element detector cost across model and
/// window policies, kernel and analyzer costs, and the costs of the
/// offline stages (interpretation, oracle construction, scoring).
///
//===----------------------------------------------------------------------===//

#include "baseline/BaselineSolution.h"
#include "core/BatchKernel.h"
#include "core/DetectorConfig.h"
#include "core/DetectorRunner.h"
#include "core/FastDetector.h"
#include "core/RelatedWork.h"
#include "harness/Experiment.h"
#include "metrics/Scoring.h"
#include "obs/RunTrace.h"
#include "support/Random.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

using namespace opd;

namespace {

/// A mid-size trace shared across benchmarks (jess at reduced scale).
const BenchmarkData &sharedBenchmark() {
  static const std::vector<BenchmarkData> Data =
      prepareBenchmarks({"jess"}, {10000}, /*Scale=*/0.25);
  return Data.front();
}

DetectorConfig configFor(ModelKind Model, TWPolicyKind Policy) {
  DetectorConfig C;
  C.Window.CWSize = 5000;
  C.Window.TWSize = 5000;
  C.Window.TWPolicy = Policy;
  C.Model = Model;
  C.TheAnalyzer = AnalyzerKind::Threshold;
  C.AnalyzerParam = 0.6;
  return C;
}

} // namespace

//===----------------------------------------------------------------------===//
// Online detector throughput (the number that matters for VM deployment)
//===----------------------------------------------------------------------===//

static void BM_Detector(benchmark::State &State, ModelKind Model,
                        TWPolicyKind Policy) {
  const BenchmarkData &B = sharedBenchmark();
  std::unique_ptr<PhaseDetector> D =
      makeDetector(configFor(Model, Policy), B.Trace.numSites());
  for (auto _ : State) {
    DetectorRun Run = runDetector(*D, B.Trace);
    benchmark::DoNotOptimize(Run.States.size());
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(B.Trace.size()));
}

BENCHMARK_CAPTURE(BM_Detector, unweighted_constant,
                  ModelKind::UnweightedSet, TWPolicyKind::Constant);
BENCHMARK_CAPTURE(BM_Detector, unweighted_adaptive,
                  ModelKind::UnweightedSet, TWPolicyKind::Adaptive);
BENCHMARK_CAPTURE(BM_Detector, weighted_constant, ModelKind::WeightedSet,
                  TWPolicyKind::Constant);
BENCHMARK_CAPTURE(BM_Detector, weighted_adaptive, ModelKind::WeightedSet,
                  TWPolicyKind::Adaptive);

// The monomorphic fast path (core/FastDetector.h) over the exact
// configurations of BM_Detector above: kernel and analyzer inlined into
// the consume loop, the DetectorRun reused across iterations the way the
// sweep arenas reuse it. Output is bit-identical to the reference path;
// the ratio of the two is the cost of per-element virtual dispatch.
static void BM_FastDetector(benchmark::State &State, ModelKind Model,
                            TWPolicyKind Policy) {
  const BenchmarkData &B = sharedBenchmark();
  std::unique_ptr<FastDetectorBase> D =
      makeFastDetector(configFor(Model, Policy), B.Trace.numSites());
  DetectorRun Run;
  for (auto _ : State) {
    runDetector(*D, B.Trace, Run);
    benchmark::DoNotOptimize(Run.States.size());
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(B.Trace.size()));
}

BENCHMARK_CAPTURE(BM_FastDetector, unweighted_constant,
                  ModelKind::UnweightedSet, TWPolicyKind::Constant);
BENCHMARK_CAPTURE(BM_FastDetector, unweighted_adaptive,
                  ModelKind::UnweightedSet, TWPolicyKind::Adaptive);
BENCHMARK_CAPTURE(BM_FastDetector, weighted_constant,
                  ModelKind::WeightedSet, TWPolicyKind::Constant);
BENCHMARK_CAPTURE(BM_FastDetector, weighted_adaptive,
                  ModelKind::WeightedSet, TWPolicyKind::Adaptive);

// The fast path again, with the batch-kernel dispatch backend pinned
// (core/BatchKernel.h): the SIMD/portable pair isolates what the AVX2
// lanes buy over the portable scalar blocks on the same SoA layout,
// while either one over BM_Detector is the full batch-layer speedup.
// Only the weighted cases are pinned — the weighted min-sum recompute
// is where the lanes do their work; the dense models' anchor scans are
// covered by the BM_FastDetector ratios. The backend slot is process
// state, so it is restored after each benchmark's measurement loop.
static void BM_BatchDetector(benchmark::State &State, ModelKind Model,
                             TWPolicyKind Policy, BatchBackend Backend) {
  const BenchmarkData &B = sharedBenchmark();
  BatchBackend Saved = activeBatchBackend();
  if (!setBatchBackend(Backend)) {
    State.SkipWithError("batch backend unavailable on this host");
    return;
  }
  std::unique_ptr<FastDetectorBase> D =
      makeFastDetector(configFor(Model, Policy), B.Trace.numSites());
  DetectorRun Run;
  for (auto _ : State) {
    runDetector(*D, B.Trace, Run);
    benchmark::DoNotOptimize(Run.States.size());
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(B.Trace.size()));
  setBatchBackend(Saved);
}

static void BM_BatchSimdDetector(benchmark::State &State, ModelKind Model,
                                 TWPolicyKind Policy) {
  BM_BatchDetector(State, Model, Policy, BatchBackend::AVX2);
}

static void BM_BatchPortableDetector(benchmark::State &State,
                                     ModelKind Model, TWPolicyKind Policy) {
  BM_BatchDetector(State, Model, Policy, BatchBackend::Portable);
}

BENCHMARK_CAPTURE(BM_BatchSimdDetector, weighted_constant,
                  ModelKind::WeightedSet, TWPolicyKind::Constant);
BENCHMARK_CAPTURE(BM_BatchSimdDetector, weighted_adaptive,
                  ModelKind::WeightedSet, TWPolicyKind::Adaptive);
BENCHMARK_CAPTURE(BM_BatchPortableDetector, weighted_constant,
                  ModelKind::WeightedSet, TWPolicyKind::Constant);
BENCHMARK_CAPTURE(BM_BatchPortableDetector, weighted_adaptive,
                  ModelKind::WeightedSet, TWPolicyKind::Adaptive);

static void BM_DetectorSkipFactor(benchmark::State &State) {
  const BenchmarkData &B = sharedBenchmark();
  DetectorConfig C =
      configFor(ModelKind::UnweightedSet, TWPolicyKind::Constant);
  C.Window.SkipFactor = static_cast<uint32_t>(State.range(0));
  std::unique_ptr<PhaseDetector> D = makeDetector(C, B.Trace.numSites());
  for (auto _ : State) {
    DetectorRun Run = runDetector(*D, B.Trace);
    benchmark::DoNotOptimize(Run.States.size());
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(B.Trace.size()));
}
BENCHMARK(BM_DetectorSkipFactor)->Arg(1)->Arg(16)->Arg(256)->Arg(5000);

// The observability hooks must be zero-cost when no observer is attached
// (the BM_Detector numbers above) and cheap when one is: this measures a
// full run with a CountingObserver against unweighted_adaptive above.
static void BM_DetectorObserved(benchmark::State &State) {
  const BenchmarkData &B = sharedBenchmark();
  std::unique_ptr<PhaseDetector> D = makeDetector(
      configFor(ModelKind::UnweightedSet, TWPolicyKind::Adaptive),
      B.Trace.numSites());
  for (auto _ : State) {
    CountingObserver Observer;
    DetectorRun Run = runDetector(*D, B.Trace, &Observer);
    benchmark::DoNotOptimize(Observer.counters().Evaluations);
    benchmark::DoNotOptimize(Run.States.size());
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(B.Trace.size()));
}
BENCHMARK(BM_DetectorObserved);

static void BM_LuDetectorRun(benchmark::State &State) {
  const BenchmarkData &B = sharedBenchmark();
  LuDetector D({});
  for (auto _ : State) {
    DetectorRun Run = runDetector(D, B.Trace);
    benchmark::DoNotOptimize(Run.States.size());
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(B.Trace.size()));
}
BENCHMARK(BM_LuDetectorRun);

static void BM_DasDetectorRun(benchmark::State &State) {
  const BenchmarkData &B = sharedBenchmark();
  DasDetector D({}, B.Trace.numSites());
  for (auto _ : State) {
    DetectorRun Run = runDetector(D, B.Trace);
    benchmark::DoNotOptimize(Run.States.size());
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(B.Trace.size()));
}
BENCHMARK(BM_DasDetectorRun);

//===----------------------------------------------------------------------===//
// Kernel microbenchmarks
//===----------------------------------------------------------------------===//

static void BM_KernelSteadyState(benchmark::State &State, ModelKind Kind) {
  const SiteIndex NumSites = 256;
  std::unique_ptr<SimilarityKernel> K = makeKernel(Kind, NumSites);
  Xoshiro256 Rng(1);
  std::vector<SiteIndex> CW, TW;
  for (int I = 0; I < 1000; ++I) {
    SiteIndex S = static_cast<SiteIndex>(Rng.nextBelow(NumSites));
    K->cwAdd(S);
    CW.push_back(S);
    S = static_cast<SiteIndex>(Rng.nextBelow(NumSites));
    K->twAdd(S);
    TW.push_back(S);
  }
  size_t Cursor = 0;
  for (auto _ : State) {
    SiteIndex In = static_cast<SiteIndex>(Rng.nextBelow(NumSites));
    K->cwReplace(In, CW[Cursor]);
    CW[Cursor] = In;
    In = static_cast<SiteIndex>(Rng.nextBelow(NumSites));
    K->twReplace(In, TW[Cursor]);
    TW[Cursor] = In;
    benchmark::DoNotOptimize(K->similarity());
    Cursor = (Cursor + 1) % CW.size();
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK_CAPTURE(BM_KernelSteadyState, unweighted,
                  ModelKind::UnweightedSet);
BENCHMARK_CAPTURE(BM_KernelSteadyState, weighted, ModelKind::WeightedSet);

static void BM_WeightedKernelDirtyRecompute(benchmark::State &State) {
  const SiteIndex NumSites = static_cast<SiteIndex>(State.range(0));
  WeightedSetKernel K(NumSites);
  Xoshiro256 Rng(2);
  for (int I = 0; I < 2000; ++I) {
    K.cwAdd(static_cast<SiteIndex>(Rng.nextBelow(NumSites)));
    K.twAdd(static_cast<SiteIndex>(Rng.nextBelow(NumSites)));
  }
  for (auto _ : State) {
    // Growing the TW dirties the kernel; similarity() then recomputes.
    K.twAdd(static_cast<SiteIndex>(Rng.nextBelow(NumSites)));
    benchmark::DoNotOptimize(K.similarity());
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_WeightedKernelDirtyRecompute)->Arg(64)->Arg(256)->Arg(1024);

//===----------------------------------------------------------------------===//
// Offline stages
//===----------------------------------------------------------------------===//

static void BM_InterpretWorkload(benchmark::State &State) {
  const Workload *W = findWorkload("db");
  for (auto _ : State) {
    ExecutionResult R = executeWorkload(*W, 0.1);
    benchmark::DoNotOptimize(R.Branches.size());
    State.SetItemsProcessed(State.items_processed() +
                            static_cast<int64_t>(R.Branches.size()));
  }
}
BENCHMARK(BM_InterpretWorkload);

static void BM_BaselineConstruction(benchmark::State &State) {
  const BenchmarkData &B = sharedBenchmark();
  for (auto _ : State) {
    std::vector<BaselineSolution> Sols =
        computeBaselines(B.CallLoop, B.Trace.size(), {1000, 10000, 100000});
    benchmark::DoNotOptimize(Sols.size());
  }
}
BENCHMARK(BM_BaselineConstruction);

static void BM_Scoring(benchmark::State &State) {
  const BenchmarkData &B = sharedBenchmark();
  std::unique_ptr<PhaseDetector> D = makeDetector(
      configFor(ModelKind::UnweightedSet, TWPolicyKind::Adaptive),
      B.Trace.numSites());
  DetectorRun Run = runDetector(*D, B.Trace);
  for (auto _ : State) {
    AccuracyScore S =
        scoreDetection(Run.States, B.Baselines.front().states());
    benchmark::DoNotOptimize(S.Score);
  }
}
BENCHMARK(BM_Scoring);

BENCHMARK_MAIN();
