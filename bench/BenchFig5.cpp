//===- bench/BenchFig5.cpp - Reproduce Figure 5 -------------------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 5: weighted vs unweighted model. For MPL in
/// {1K, 10K, 50K, 100K} and both TW policies, the average of best scores
/// (over the analyzer set; CW = 1/2 MPL) across all benchmarks, and the
/// same averages excluding compress.
///
/// Paper shape to reproduce: the unweighted model generally beats the
/// weighted model — except on compress, where weighted wins, narrowing
/// the all-benchmarks gap.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace opd;

int main(int Argc, char **Argv) {
  BenchOptions Options;
  int ExitCode = 0;
  if (!parseBenchArgs(Argc, Argv, "bench_fig5",
                      "Reproduces Figure 5 (weighted vs unweighted model).",
                      Options, ExitCode))
    return ExitCode;

  const std::vector<uint64_t> MPLs = {1000, 10000, 50000, 100000};
  SweepSpec Spec = benchSweepSpec("fig5", analyzersFor(Options));

  std::vector<BenchmarkData> Benchmarks =
      prepareBenchmarks(MPLs, Options.Scale);
  std::vector<DetectorConfig> Configs = enumerateConfigs(Spec);
  std::fprintf(stderr, "fig5: %zu configs x %zu benchmarks\n",
               Configs.size(), Benchmarks.size());

  // Best[MPLIdx][policy][model] per benchmark.
  struct Cell {
    std::vector<double> All;
    std::vector<double> NoCompress;
  };
  Cell Cells[4][2][2]; // [MPL][policy][model]

  for (const BenchmarkData &B : Benchmarks) {
    std::vector<RunScores> Runs = runSweep(B.Trace, B.Baselines, Configs);
    for (size_t MPLIdx = 0; MPLIdx != MPLs.size(); ++MPLIdx) {
      uint64_t MPL = MPLs[MPLIdx];
      for (int P = 0; P != 2; ++P) {
        TWPolicyKind Policy =
            P == 0 ? TWPolicyKind::Constant : TWPolicyKind::Adaptive;
        for (int M = 0; M != 2; ++M) {
          ModelKind Model =
              M == 0 ? ModelKind::WeightedSet : ModelKind::UnweightedSet;
          double Best =
              bestScore(Runs, MPLIdx, [&](const DetectorConfig &C) {
                return C.Window.TWPolicy == Policy && C.Model == Model &&
                       C.Window.CWSize * 2 == MPL;
              });
          if (Best < 0.0)
            continue;
          Cells[MPLIdx][P][M].All.push_back(Best);
          if (B.Name != "compress")
            Cells[MPLIdx][P][M].NoCompress.push_back(Best);
        }
      }
    }
  }

  Table T("Figure 5: average of best scores, weighted vs unweighted "
          "(CW = 1/2 MPL)");
  T.setHeader({"MPL", "Policy", "Weighted", "Unweighted",
               "Weighted w/o compress", "Unweighted w/o compress"});
  for (size_t I = 0; I != MPLs.size(); ++I) {
    for (int P = 0; P != 2; ++P) {
      T.addRow({formatAbbrev(MPLs[I]),
                P == 0 ? "Constant TW" : "Adaptive TW",
                formatDouble(average(Cells[I][P][0].All), 3),
                formatDouble(average(Cells[I][P][1].All), 3),
                formatDouble(average(Cells[I][P][0].NoCompress), 3),
                formatDouble(average(Cells[I][P][1].NoCompress), 3)});
    }
    if (I + 1 != MPLs.size())
      T.addSeparator();
  }
  printTable(T, Options);

  // Compress-only detail: the paper reports the weighted model is
  // dramatically better on compress.
  Table C("Figure 5 detail: compress only (best scores)");
  C.setHeader({"MPL", "Policy", "Weighted", "Unweighted"});
  for (const BenchmarkData &B : Benchmarks) {
    if (B.Name != "compress")
      continue;
    std::vector<RunScores> Runs = runSweep(B.Trace, B.Baselines, Configs);
    for (size_t I = 0; I != MPLs.size(); ++I)
      for (int P = 0; P != 2; ++P) {
        TWPolicyKind Policy =
            P == 0 ? TWPolicyKind::Constant : TWPolicyKind::Adaptive;
        auto bestModel = [&](ModelKind Model) {
          return bestScore(Runs, I, [&](const DetectorConfig &Cfg) {
            return Cfg.Window.TWPolicy == Policy && Cfg.Model == Model &&
                   Cfg.Window.CWSize * 2 == MPLs[I];
          });
        };
        C.addRow({formatAbbrev(MPLs[I]),
                  P == 0 ? "Constant TW" : "Adaptive TW",
                  formatDouble(bestModel(ModelKind::WeightedSet), 3),
                  formatDouble(bestModel(ModelKind::UnweightedSet), 3)});
      }
  }
  printTable(C, Options);
  return 0;
}
