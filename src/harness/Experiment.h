//===- harness/Experiment.h - Shared experiment setup -----------*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every reproduction binary needs the same setup: execute the eight
/// workloads, derive the per-MPL baselines, and iterate. BenchmarkData
/// bundles one workload's traces, statistics, and baselines;
/// prepareBenchmarks() builds all of them.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_HARNESS_EXPERIMENT_H
#define OPD_HARNESS_EXPERIMENT_H

#include "baseline/BaselineSolution.h"
#include "trace/BranchTrace.h"
#include "trace/CallLoopTrace.h"
#include "vm/Interpreter.h"

#include <cstdint>
#include <string>
#include <vector>

namespace opd {

/// The MPL values of the paper's main evaluation.
extern const std::vector<uint64_t> StandardMPLs; // 1K..100K
/// StandardMPLs extended with 200K (Figures 4 and 8).
extern const std::vector<uint64_t> ExtendedMPLs;

/// One workload, executed, with its oracle solutions.
struct BenchmarkData {
  std::string Name;
  BranchTrace Trace;
  CallLoopTrace CallLoop;
  ExecutionStats Stats;
  /// MPLs[i] and Baselines[i] correspond.
  std::vector<uint64_t> MPLs;
  std::vector<BaselineSolution> Baselines;

  /// Index of \p MPL in MPLs; asserts when absent.
  size_t mplIndex(uint64_t MPL) const;
};

/// Executes every standard workload at \p Scale and computes baselines
/// for each value in \p MPLs.
std::vector<BenchmarkData>
prepareBenchmarks(const std::vector<uint64_t> &MPLs, double Scale = 1.0);

/// Same, for a subset of workload names (order preserved).
std::vector<BenchmarkData>
prepareBenchmarks(const std::vector<std::string> &Names,
                  const std::vector<uint64_t> &MPLs, double Scale = 1.0);

} // namespace opd

#endif // OPD_HARNESS_EXPERIMENT_H
