//===- harness/Sweep.cpp - Detector configuration sweeps --------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "harness/Sweep.h"

#include "core/DetectorRunner.h"
#include "support/Format.h"
#include "support/Parallel.h"
#include "support/Timer.h"

#include <algorithm>

using namespace opd;

std::vector<AnalyzerSpec> opd::paperAnalyzers() {
  return {
      {AnalyzerKind::Threshold, 0.5}, {AnalyzerKind::Threshold, 0.6},
      {AnalyzerKind::Threshold, 0.7}, {AnalyzerKind::Threshold, 0.8},
      {AnalyzerKind::Average, 0.01},  {AnalyzerKind::Average, 0.05},
      {AnalyzerKind::Average, 0.1},   {AnalyzerKind::Average, 0.2},
      {AnalyzerKind::Average, 0.3},   {AnalyzerKind::Average, 0.4},
  };
}

std::vector<AnalyzerSpec> opd::reducedAnalyzers() {
  return {
      {AnalyzerKind::Threshold, 0.6},
      {AnalyzerKind::Threshold, 0.8},
      {AnalyzerKind::Average, 0.05},
      {AnalyzerKind::Average, 0.2},
  };
}

std::vector<DetectorConfig> opd::enumerateConfigs(const SweepSpec &Spec) {
  std::vector<DetectorConfig> Configs;
  auto addConfig = [&](const WindowConfig &W, ModelKind M,
                       const AnalyzerSpec &A) {
    DetectorConfig C;
    C.Window = W;
    C.Model = M;
    C.TheAnalyzer = A.Kind;
    C.AnalyzerParam = A.Param;
    Configs.push_back(C);
  };

  for (uint32_t CW : Spec.CWSizes) {
    for (uint32_t TWFactor : Spec.TWFactors) {
      for (ModelKind M : Spec.Models) {
        for (const AnalyzerSpec &A : Spec.Analyzers) {
          // Regular policies with the requested skip factors.
          for (TWPolicyKind Policy : Spec.TWPolicies) {
            for (uint32_t Skip : Spec.SkipFactors) {
              WindowConfig W;
              W.CWSize = CW;
              W.TWSize = CW * TWFactor;
              W.SkipFactor = Skip;
              W.TWPolicy = Policy;
              if (Policy == TWPolicyKind::Adaptive) {
                for (AnchorKind Anchor : Spec.Anchors) {
                  for (ResizeKind Resize : Spec.Resizes) {
                    W.Anchor = Anchor;
                    W.Resize = Resize;
                    addConfig(W, M, A);
                  }
                }
              } else {
                addConfig(W, M, A);
              }
            }
          }
          // The extant fixed-interval approach: Constant TW, skip == CW.
          if (Spec.IncludeFixedInterval) {
            WindowConfig W;
            W.CWSize = CW;
            W.TWSize = CW * TWFactor;
            W.SkipFactor = CW;
            W.TWPolicy = TWPolicyKind::Constant;
            addConfig(W, M, A);
          }
        }
      }
    }
  }
  return Configs;
}

std::vector<RunScores>
opd::runSweep(const BranchTrace &Trace,
              const std::vector<BaselineSolution> &Baselines,
              const std::vector<DetectorConfig> &Configs,
              const SweepOptions &Options) {
  std::vector<RunScores> Results(Configs.size());
  parallelFor(Configs.size(), [&](size_t I) {
    const DetectorConfig &Config = Configs[I];
    std::unique_ptr<PhaseDetector> Detector =
        makeDetector(Config, Trace.numSites());

    RunScores &R = Results[I];
    R.Config = Config;
    CountingObserver Stats;
    Stopwatch Timer;
    DetectorRun Run = runDetector(
        *Detector, Trace, Options.CollectStats ? &Stats : nullptr);
    if (Options.CollectStats) {
      R.DetectSeconds = Timer.seconds();
      R.Counters = Stats.counters();
      Timer.restart();
    }

    R.PerMPL.reserve(Baselines.size());
    for (const BaselineSolution &B : Baselines)
      R.PerMPL.push_back(scoreDetection(Run.States, B.states()));
    if (Options.ScoreAnchored) {
      R.AnchoredPerMPL.reserve(Baselines.size());
      for (const BaselineSolution &B : Baselines)
        R.AnchoredPerMPL.push_back(
            scoreDetection(Run.AnchoredPhases, B.states()));
    }
    if (Options.CollectStats)
      R.ScoreSeconds = Timer.seconds();
  });
  return Results;
}

double opd::bestScore(
    const std::vector<RunScores> &Runs, size_t MPLIdx,
    const std::function<bool(const DetectorConfig &)> &Filter,
    bool Anchored) {
  double Best = -1.0;
  for (const RunScores &R : Runs) {
    if (!Filter(R.Config))
      continue;
    const std::vector<AccuracyScore> &Scores =
        Anchored ? R.AnchoredPerMPL : R.PerMPL;
    assert(MPLIdx < Scores.size() && "baseline index out of range");
    Best = std::max(Best, Scores[MPLIdx].Score);
  }
  return Best;
}

Table opd::sweepStatsTable(const std::vector<RunScores> &Runs,
                           const std::string &Title) {
  Table T(Title);
  T.setHeader({"configuration", "elements", "evals", "phases", "anchor corr",
               "resizes", "flushes", "detect ms", "score ms", "Melem/s"});
  for (const RunScores &R : Runs) {
    const RunCounters &C = R.Counters;
    double MElemPerSec =
        R.DetectSeconds > 0.0
            ? static_cast<double>(C.Elements) / R.DetectSeconds / 1e6
            : 0.0;
    T.addRow({R.Config.describe(), formatCount(C.Elements),
              formatCount(C.Evaluations), formatCount(C.PhasesOpened),
              formatCount(C.AnchorCorrections),
              formatCount(C.WindowResizes), formatCount(C.WindowFlushes),
              formatDouble(R.DetectSeconds * 1e3, 1),
              formatDouble(R.ScoreSeconds * 1e3, 1),
              formatDouble(MElemPerSec, 1)});
  }
  return T;
}
