//===- harness/Sweep.cpp - Detector configuration sweeps --------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "harness/Sweep.h"

#include "analysis/ConfigAnalysis.h"
#include "analysis/KernelBounds.h"
#include "core/DetectorRunner.h"
#include "core/FastDetector.h"
#include "core/SharedScan.h"
#include "support/Format.h"
#include "support/Parallel.h"
#include "support/Timer.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <numeric>

using namespace opd;

namespace {

/// Shared accumulator for the per-run stats the worker threads report.
class SweepAccumulator {
  Mutex M;
  SweepStats S OPD_GUARDED_BY(M);

public:
  void addRun(double DetectSeconds, double ScoreSeconds) {
    LockGuard Lock(M);
    S.RunsExecuted += 1;
    S.DetectSeconds += DetectSeconds;
    S.ScoreSeconds += ScoreSeconds;
  }

  SweepStats take(size_t NumConfigs) {
    LockGuard Lock(M);
    S.NumConfigs = NumConfigs;
    S.RunsPruned = NumConfigs - S.RunsExecuted;
    return S;
  }
};

/// Per-worker scratch state reused across the runs one worker executes:
/// the monomorphic fast detectors (one per shape, reconfigure()d between
/// runs so the kernels' per-site count arrays survive) and the
/// DetectorRun output storage. A 5,880-run sweep thus performs a handful
/// of kernel allocations per worker instead of one per run.
class RunArena {
  SiteIndex NumSites = 0;
  std::array<std::unique_ptr<FastDetectorBase>, NumFastShapes> Shapes;

public:
  /// The reused run output.
  DetectorRun Run;

  /// The fast detector for \p Config, reconfigured and ready to run.
  /// \p BatchAdmitted is the KernelBounds admission verdict for the
  /// config (admitsBatchLanes): a batch kernel must refuse a config
  /// whose certificate does not admit its compiled lane plan, so the
  /// arena applies the verdict on every acquire — the flag survives
  /// reconfigure(), and consecutive runs of one shape may differ in it.
  OnlineDetector &acquire(const DetectorConfig &Config, SiteIndex Sites,
                          bool BatchAdmitted) {
    if (Sites != NumSites) {
      for (std::unique_ptr<FastDetectorBase> &S : Shapes)
        S.reset();
      NumSites = Sites;
    }
    std::unique_ptr<FastDetectorBase> &Slot = Shapes[fastShapeIndex(Config)];
    if (Slot)
      Slot->reconfigure(Config);
    else
      Slot = makeFastDetector(Config, Sites);
    Slot->setBatchKernels(BatchAdmitted);
    return *Slot;
  }
};

/// Longest-processing-time-first comparator: run the expensive configs
/// first so a straggler claimed late cannot stretch the sweep's tail.
/// Cost is dominated by the evaluation count (inverse skip factor), then
/// by the adaptive policy's recompute-per-evaluation, then window span.
bool costlierConfig(const DetectorConfig &A, const DetectorConfig &B) {
  const WindowConfig &WA = A.Window;
  const WindowConfig &WB = B.Window;
  if (WA.SkipFactor != WB.SkipFactor)
    return WA.SkipFactor < WB.SkipFactor;
  bool AdaptiveA = WA.TWPolicy == TWPolicyKind::Adaptive;
  bool AdaptiveB = WB.TWPolicy == TWPolicyKind::Adaptive;
  if (AdaptiveA != AdaptiveB)
    return AdaptiveA;
  return static_cast<uint64_t>(WA.CWSize) + WA.TWSize >
         static_cast<uint64_t>(WB.CWSize) + WB.TWSize;
}

/// Scores \p Run into \p R against every baseline, exactly once per
/// execution path so both engines score identically.
void scoreRun(const DetectorRun &Run,
              const std::vector<BaselineSolution> &Baselines,
              const SweepOptions &Options, RunScores &R) {
  R.PerMPL.reserve(Baselines.size());
  for (const BaselineSolution &B : Baselines)
    R.PerMPL.push_back(scoreDetection(Run.States, B.states()));
  if (Options.ScoreAnchored) {
    R.AnchoredPerMPL.reserve(Baselines.size());
    for (const BaselineSolution &B : Baselines)
      R.AnchoredPerMPL.push_back(
          scoreDetection(Run.AnchoredPhases, B.states()));
  }
}

/// Shared-scan execution (core/SharedScan.h): the runs at \p Indices
/// are grouped by window-kernel shape and each group rides a single
/// trace pass. LPT scheduling moves from configs to groups — a group's
/// cost is one shared window advance plus each member's evaluation rate
/// (inverse skip) and, for adaptive members, their in-phase shard
/// advances — and per-worker arenas hold one engine per model (cursor
/// arrays, shard pools, and kernel state all reused across the groups a
/// worker claims).
void runConfigsShared(const BranchTrace &Trace,
                      const std::vector<BaselineSolution> &Baselines,
                      const std::vector<DetectorConfig> &Configs,
                      const std::vector<size_t> &Indices,
                      const SweepOptions &Options, SweepAccumulator &Acc,
                      std::vector<RunScores> &Results) {
  std::vector<DetectorConfig> Planned;
  Planned.reserve(Indices.size());
  for (size_t I : Indices)
    Planned.push_back(Configs[I]);
  SharedScanPlan Plan = planSharedScan(Planned);

  std::vector<size_t> Order(Plan.Groups.size());
  std::iota(Order.begin(), Order.end(), size_t{0});
  auto GroupCost = [&](const SharedScanGroup &G) {
    double Cost = 1.0; // The shared window advance.
    for (size_t Member : G.Members) {
      const WindowConfig &W = Planned[Member].Window;
      Cost += 1.0 / static_cast<double>(W.SkipFactor);
      if (W.TWPolicy == TWPolicyKind::Adaptive)
        Cost += 0.5; // Rough in-phase shard-advance share.
    }
    return Cost;
  };
  std::stable_sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    return GroupCost(Plan.Groups[A]) > GroupCost(Plan.Groups[B]);
  });

  TraceBounds Bounds;
  Bounds.TraceLen = Trace.size();
  Bounds.MaxMultiplicity = 0; // unknown; TraceLen already bounds it
  Bounds.NumSites = Trace.numSites();

  /// Per-worker engine arena: one reusable engine per model plus the
  /// group-sized run storage.
  struct EngineArena {
    std::array<std::unique_ptr<SharedScanEngineBase>, 3> Engines;
    std::vector<DetectorRun> Runs;
  };
  std::vector<EngineArena> Arenas(hardwareParallelism());

  parallelFor(
      Order.size(),
      [&](size_t N, unsigned Worker) {
        const SharedScanGroup &G = Plan.Groups[Order[N]];
        EngineArena &Arena = Arenas[Worker];

        std::unique_ptr<SharedScanEngineBase> &Slot =
            Arena.Engines[static_cast<size_t>(G.Key.Model)];
        if (!Slot || Slot->numSites() != Trace.numSites())
          Slot = makeSharedScanEngine(G.Key.Model, Trace.numSites());

        // Group-level batch admission: the shared kernel and its shards
        // serve every member, so the group only batches if every
        // member's certificate admits its lane plan (certificates of
        // different detector shapes cannot be merged, so the verdicts
        // are combined instead — equivalent, since a merged certificate
        // admits exactly when its worst member does). Refusal means the
        // portable paths: same bits, fewer lanes.
        bool Admitted = true;
        for (size_t Member : G.Members)
          Admitted = Admitted &&
                     admitsBatchLanes(certifyKernel(Planned[Member], Bounds));
        Slot->setBatchKernels(Admitted);

        if (Arena.Runs.size() < G.Members.size())
          Arena.Runs.resize(G.Members.size());
        Slot->run(Planned, G.Members, Trace.elements().data(), Trace.size(),
                  Arena.Runs);

        for (size_t I = 0; I != G.Members.size(); ++I) {
          size_t Global = Indices[G.Members[I]];
          RunScores &R = Results[Global];
          R.Config = Configs[Global];
          scoreRun(Arena.Runs[I], Baselines, Options, R);
          Acc.addRun(R.DetectSeconds, R.ScoreSeconds);
        }
      },
      /*Grain=*/1);
}

/// Executes the detector runs for the configurations at \p Indices,
/// writing each result into Results[Indices[I]].
///
/// The plain path runs the monomorphic fast detectors out of per-worker
/// arenas; with CollectStats it instantiates the reference PhaseDetector
/// instead, which alone emits the internal observer events the counters
/// are built from. Both produce bit-identical scores.
void runConfigsPerConfig(const BranchTrace &Trace,
                         const std::vector<BaselineSolution> &Baselines,
                         const std::vector<DetectorConfig> &Configs,
                         const std::vector<size_t> &Indices,
                         const SweepOptions &Options, SweepAccumulator &Acc,
                         std::vector<RunScores> &Results) {
  // Dynamic scheduling in LPT order: workers claim runs expensive-first
  // off the shared counter, so the final runs in flight are the cheap
  // ones and the workers finish together.
  std::vector<size_t> Order(Indices.size());
  std::iota(Order.begin(), Order.end(), size_t{0});
  std::stable_sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    return costlierConfig(Configs[Indices[A]], Configs[Indices[B]]);
  });

  std::vector<RunArena> Arenas(hardwareParallelism());

  // Certificate-based batch-kernel admission, computed once per config
  // against what the harness knows about this trace (its length bounds
  // adaptive-TW growth and per-site multiplicity; the site-table size
  // bounds the distinct counters). certifyKernel is pure arithmetic —
  // microseconds against runs that stream hundreds of thousands of
  // elements.
  TraceBounds Bounds;
  Bounds.TraceLen = Trace.size();
  Bounds.MaxMultiplicity = 0; // unknown; TraceLen already bounds it
  Bounds.NumSites = Trace.numSites();

  parallelFor(
      Order.size(),
      [&](size_t N, unsigned Worker) {
        size_t I = Indices[Order[N]];
        const DetectorConfig &Config = Configs[I];
        RunArena &Arena = Arenas[Worker];

        RunScores &R = Results[I];
        R.Config = Config;
        CountingObserver Stats;
        Stopwatch Timer;
        const DetectorRun *Run;
        DetectorRun ObservedRun;
        if (Options.CollectStats) {
          std::unique_ptr<PhaseDetector> Detector =
              makeDetector(Config, Trace.numSites());
          ObservedRun = runDetector(*Detector, Trace, &Stats);
          Run = &ObservedRun;
          R.DetectSeconds = Timer.seconds();
          R.Counters = Stats.counters();
          Timer.restart();
        } else {
          bool BatchAdmitted =
              admitsBatchLanes(certifyKernel(Config, Bounds));
          OnlineDetector &Detector =
              Arena.acquire(Config, Trace.numSites(), BatchAdmitted);
          runDetector(Detector, Trace, Arena.Run);
          Run = &Arena.Run;
        }

        scoreRun(*Run, Baselines, Options, R);
        if (Options.CollectStats)
          R.ScoreSeconds = Timer.seconds();
        Acc.addRun(R.DetectSeconds, R.ScoreSeconds);
      },
      /*Grain=*/1);
}

/// Dispatches the runs at \p Indices to the shared-scan engine (the
/// default execution plan) or the per-config path (the differential
/// oracle, and the only path that can carry observers for
/// CollectStats). Both produce bit-identical scores.
void runConfigs(const BranchTrace &Trace,
                const std::vector<BaselineSolution> &Baselines,
                const std::vector<DetectorConfig> &Configs,
                const std::vector<size_t> &Indices,
                const SweepOptions &Options, SweepAccumulator &Acc,
                std::vector<RunScores> &Results) {
  if (Options.SharedScan && !Options.CollectStats)
    runConfigsShared(Trace, Baselines, Configs, Indices, Options, Acc,
                     Results);
  else
    runConfigsPerConfig(Trace, Baselines, Configs, Indices, Options, Acc,
                        Results);
}

} // namespace

std::vector<RunScores>
opd::runSweep(const BranchTrace &Trace,
              const std::vector<BaselineSolution> &Baselines,
              const std::vector<DetectorConfig> &Configs,
              const SweepOptions &Options, SweepStats *Stats) {
  if (Configs.empty()) {
    std::fprintf(stderr,
                 "runSweep: empty configuration list — an empty dimension "
                 "vector annihilates the cross product; lint the spec with "
                 "config_check\n");
    std::abort();
  }

  std::vector<RunScores> Results(Configs.size());
  SweepAccumulator Acc;

  if (!Options.Prune) {
    std::vector<size_t> All(Configs.size());
    for (size_t I = 0; I < All.size(); ++I)
      All[I] = I;
    runConfigs(Trace, Baselines, Configs, All, Options, Acc, Results);
    if (Stats)
      *Stats = Acc.take(Configs.size());
    return Results;
  }

  // Pruned sweep: run one representative per provable equivalence class,
  // then fan its scores out to every member. Anchored scoring keeps the
  // anchor-affecting merge rules disabled so the fanned-out anchored
  // scores are as bit-identical as the plain ones.
  ConfigCanonOptions Canon;
  Canon.AnchoredScoring = Options.ScoreAnchored;
  ConfigPartition Partition = partitionConfigs(Configs, Canon);

  std::vector<size_t> Reps;
  Reps.reserve(Partition.Classes.size());
  for (const ConfigClass &Class : Partition.Classes)
    Reps.push_back(Class.Representative);
  runConfigs(Trace, Baselines, Configs, Reps, Options, Acc, Results);

  for (const ConfigClass &Class : Partition.Classes) {
    const RunScores &Rep = Results[Class.Representative];
    for (size_t Member : Class.Members) {
      if (Member == Class.Representative)
        continue;
      RunScores &R = Results[Member];
      R = Rep;
      // The scores are the class's; the identity stays the member's.
      R.Config = Configs[Member];
    }
  }
  if (Stats)
    *Stats = Acc.take(Configs.size());
  return Results;
}

double opd::bestScore(
    const std::vector<RunScores> &Runs, size_t MPLIdx,
    const std::function<bool(const DetectorConfig &)> &Filter,
    bool Anchored) {
  double Best = -1.0;
  for (const RunScores &R : Runs) {
    if (!Filter(R.Config))
      continue;
    const std::vector<AccuracyScore> &Scores =
        Anchored ? R.AnchoredPerMPL : R.PerMPL;
    assert(MPLIdx < Scores.size() && "baseline index out of range");
    Best = std::max(Best, Scores[MPLIdx].Score);
  }
  return Best;
}

Table opd::sweepStatsTable(const std::vector<RunScores> &Runs,
                           const std::string &Title) {
  Table T(Title);
  T.setHeader({"configuration", "elements", "evals", "phases", "anchor corr",
               "resizes", "flushes", "detect ms", "score ms", "Melem/s"});
  for (const RunScores &R : Runs) {
    const RunCounters &C = R.Counters;
    double MElemPerSec =
        R.DetectSeconds > 0.0
            ? static_cast<double>(C.Elements) / R.DetectSeconds / 1e6
            : 0.0;
    T.addRow({R.Config.describe(), formatCount(C.Elements),
              formatCount(C.Evaluations), formatCount(C.PhasesOpened),
              formatCount(C.AnchorCorrections),
              formatCount(C.WindowResizes), formatCount(C.WindowFlushes),
              formatDouble(R.DetectSeconds * 1e3, 1),
              formatDouble(R.ScoreSeconds * 1e3, 1),
              formatDouble(MElemPerSec, 1)});
  }
  return T;
}
