//===- harness/Sweep.cpp - Detector configuration sweeps --------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "harness/Sweep.h"

#include "analysis/ConfigAnalysis.h"
#include "core/DetectorRunner.h"
#include "support/Format.h"
#include "support/Parallel.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

using namespace opd;

namespace {

/// Shared accumulator for the per-run stats the worker threads report.
class SweepAccumulator {
  Mutex M;
  SweepStats S OPD_GUARDED_BY(M);

public:
  void addRun(double DetectSeconds, double ScoreSeconds) {
    LockGuard Lock(M);
    S.RunsExecuted += 1;
    S.DetectSeconds += DetectSeconds;
    S.ScoreSeconds += ScoreSeconds;
  }

  SweepStats take(size_t NumConfigs) {
    LockGuard Lock(M);
    S.NumConfigs = NumConfigs;
    S.RunsPruned = NumConfigs - S.RunsExecuted;
    return S;
  }
};

/// Executes the detector runs for the configurations at \p Indices,
/// writing each result into Results[Indices[I]].
void runConfigs(const BranchTrace &Trace,
                const std::vector<BaselineSolution> &Baselines,
                const std::vector<DetectorConfig> &Configs,
                const std::vector<size_t> &Indices,
                const SweepOptions &Options, SweepAccumulator &Acc,
                std::vector<RunScores> &Results) {
  parallelFor(Indices.size(), [&](size_t N) {
    size_t I = Indices[N];
    const DetectorConfig &Config = Configs[I];
    std::unique_ptr<PhaseDetector> Detector =
        makeDetector(Config, Trace.numSites());

    RunScores &R = Results[I];
    R.Config = Config;
    CountingObserver Stats;
    Stopwatch Timer;
    DetectorRun Run = runDetector(
        *Detector, Trace, Options.CollectStats ? &Stats : nullptr);
    if (Options.CollectStats) {
      R.DetectSeconds = Timer.seconds();
      R.Counters = Stats.counters();
      Timer.restart();
    }

    R.PerMPL.reserve(Baselines.size());
    for (const BaselineSolution &B : Baselines)
      R.PerMPL.push_back(scoreDetection(Run.States, B.states()));
    if (Options.ScoreAnchored) {
      R.AnchoredPerMPL.reserve(Baselines.size());
      for (const BaselineSolution &B : Baselines)
        R.AnchoredPerMPL.push_back(
            scoreDetection(Run.AnchoredPhases, B.states()));
    }
    if (Options.CollectStats)
      R.ScoreSeconds = Timer.seconds();
    Acc.addRun(R.DetectSeconds, R.ScoreSeconds);
  });
}

} // namespace

std::vector<RunScores>
opd::runSweep(const BranchTrace &Trace,
              const std::vector<BaselineSolution> &Baselines,
              const std::vector<DetectorConfig> &Configs,
              const SweepOptions &Options, SweepStats *Stats) {
  if (Configs.empty()) {
    std::fprintf(stderr,
                 "runSweep: empty configuration list — an empty dimension "
                 "vector annihilates the cross product; lint the spec with "
                 "config_check\n");
    std::abort();
  }

  std::vector<RunScores> Results(Configs.size());
  SweepAccumulator Acc;

  if (!Options.Prune) {
    std::vector<size_t> All(Configs.size());
    for (size_t I = 0; I < All.size(); ++I)
      All[I] = I;
    runConfigs(Trace, Baselines, Configs, All, Options, Acc, Results);
    if (Stats)
      *Stats = Acc.take(Configs.size());
    return Results;
  }

  // Pruned sweep: run one representative per provable equivalence class,
  // then fan its scores out to every member. Anchored scoring keeps the
  // anchor-affecting merge rules disabled so the fanned-out anchored
  // scores are as bit-identical as the plain ones.
  ConfigCanonOptions Canon;
  Canon.AnchoredScoring = Options.ScoreAnchored;
  ConfigPartition Partition = partitionConfigs(Configs, Canon);

  std::vector<size_t> Reps;
  Reps.reserve(Partition.Classes.size());
  for (const ConfigClass &Class : Partition.Classes)
    Reps.push_back(Class.Representative);
  runConfigs(Trace, Baselines, Configs, Reps, Options, Acc, Results);

  for (const ConfigClass &Class : Partition.Classes) {
    const RunScores &Rep = Results[Class.Representative];
    for (size_t Member : Class.Members) {
      if (Member == Class.Representative)
        continue;
      RunScores &R = Results[Member];
      R = Rep;
      // The scores are the class's; the identity stays the member's.
      R.Config = Configs[Member];
    }
  }
  if (Stats)
    *Stats = Acc.take(Configs.size());
  return Results;
}

double opd::bestScore(
    const std::vector<RunScores> &Runs, size_t MPLIdx,
    const std::function<bool(const DetectorConfig &)> &Filter,
    bool Anchored) {
  double Best = -1.0;
  for (const RunScores &R : Runs) {
    if (!Filter(R.Config))
      continue;
    const std::vector<AccuracyScore> &Scores =
        Anchored ? R.AnchoredPerMPL : R.PerMPL;
    assert(MPLIdx < Scores.size() && "baseline index out of range");
    Best = std::max(Best, Scores[MPLIdx].Score);
  }
  return Best;
}

Table opd::sweepStatsTable(const std::vector<RunScores> &Runs,
                           const std::string &Title) {
  Table T(Title);
  T.setHeader({"configuration", "elements", "evals", "phases", "anchor corr",
               "resizes", "flushes", "detect ms", "score ms", "Melem/s"});
  for (const RunScores &R : Runs) {
    const RunCounters &C = R.Counters;
    double MElemPerSec =
        R.DetectSeconds > 0.0
            ? static_cast<double>(C.Elements) / R.DetectSeconds / 1e6
            : 0.0;
    T.addRow({R.Config.describe(), formatCount(C.Elements),
              formatCount(C.Evaluations), formatCount(C.PhasesOpened),
              formatCount(C.AnchorCorrections),
              formatCount(C.WindowResizes), formatCount(C.WindowFlushes),
              formatDouble(R.DetectSeconds * 1e3, 1),
              formatDouble(R.ScoreSeconds * 1e3, 1),
              formatDouble(MElemPerSec, 1)});
  }
  return T;
}
