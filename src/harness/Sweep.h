//===- harness/Sweep.h - Detector configuration sweeps ----------*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The evaluation instantiates the framework over a cross product of
/// window, model, and analyzer policies (over 10,000 algorithms in the
/// paper) and reports *best scores* across slices of that space. SweepSpec
/// describes one cross product; runSweep() executes every configuration
/// over a trace once and scores it against each baseline MPL. A detector
/// run does not depend on the MPL, so one run serves all MPL scorings.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_HARNESS_SWEEP_H
#define OPD_HARNESS_SWEEP_H

#include "baseline/BaselineSolution.h"
#include "core/DetectorConfig.h"
#include "metrics/Scoring.h"
#include "obs/RunTrace.h"
#include "support/Table.h"
#include "trace/BranchTrace.h"

#include <functional>
#include <vector>

namespace opd {

/// One analyzer instantiation in a sweep.
struct AnalyzerSpec {
  AnalyzerKind Kind;
  double Param;
};

/// A cross product of framework parameters.
struct SweepSpec {
  std::vector<uint32_t> CWSizes;
  /// TW size = CW size * factor (the paper co-sizes the windows; factor 1
  /// everywhere in the reproduction, other factors serve the ablations).
  std::vector<uint32_t> TWFactors = {1};
  std::vector<uint32_t> SkipFactors = {1};
  std::vector<TWPolicyKind> TWPolicies = {TWPolicyKind::Constant,
                                          TWPolicyKind::Adaptive};
  /// Also enumerate the prior literature's Fixed Interval policy
  /// (Constant TW with skipFactor == CW size == TW size).
  bool IncludeFixedInterval = false;
  std::vector<ModelKind> Models = {ModelKind::UnweightedSet,
                                   ModelKind::WeightedSet};
  std::vector<AnalyzerSpec> Analyzers;
  std::vector<AnchorKind> Anchors = {AnchorKind::RightmostNoisy};
  std::vector<ResizeKind> Resizes = {ResizeKind::Slide};
};

/// The paper's analyzer set: thresholds .5/.6/.7/.8 and average deltas
/// .01/.05/.1/.2/.3/.4.
std::vector<AnalyzerSpec> paperAnalyzers();

/// A trimmed analyzer set for the slow full-cross-product benches:
/// thresholds .6/.8 and deltas .05/.2.
std::vector<AnalyzerSpec> reducedAnalyzers();

/// Expands the cross product.
std::vector<DetectorConfig> enumerateConfigs(const SweepSpec &Spec);

/// One configuration's scores against every baseline.
struct RunScores {
  DetectorConfig Config;
  /// Scores[i] corresponds to Baselines[i].
  std::vector<AccuracyScore> PerMPL;
  /// Same, scored with anchor-corrected phase starts (Figure 8); filled
  /// only when SweepOptions::ScoreAnchored.
  std::vector<AccuracyScore> AnchoredPerMPL;
  /// Observability counters of this configuration's run; filled only
  /// when SweepOptions::CollectStats.
  RunCounters Counters;
  /// Per-stage wall time of this configuration: the detector run and
  /// the scoring passes; filled only when SweepOptions::CollectStats.
  double DetectSeconds = 0.0;
  double ScoreSeconds = 0.0;
};

struct SweepOptions {
  bool ScoreAnchored = false;
  /// Attach a CountingObserver to every run and record per-stage wall
  /// times into RunScores. Off by default: the unobserved hot path is
  /// what the benches measure.
  bool CollectStats = false;
};

/// Runs every configuration over \p Trace once and scores it against
/// every baseline. Parallel across configurations.
std::vector<RunScores> runSweep(const BranchTrace &Trace,
                                const std::vector<BaselineSolution> &Baselines,
                                const std::vector<DetectorConfig> &Configs,
                                const SweepOptions &Options = {});

/// Maximum score at baseline index \p MPLIdx over the configurations
/// accepted by \p Filter; returns -1 when none match.
double bestScore(const std::vector<RunScores> &Runs, size_t MPLIdx,
                 const std::function<bool(const DetectorConfig &)> &Filter,
                 bool Anchored = false);

/// Renders the per-configuration observability counters of a sweep run
/// with CollectStats as a table: evaluations, phases, anchor
/// corrections, window churn, per-stage wall time, and throughput.
Table sweepStatsTable(const std::vector<RunScores> &Runs,
                      const std::string &Title = "Sweep statistics");

} // namespace opd

#endif // OPD_HARNESS_SWEEP_H
