//===- harness/Sweep.h - Detector configuration sweeps ----------*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The evaluation instantiates the framework over a cross product of
/// window, model, and analyzer policies (over 10,000 algorithms in the
/// paper) and reports *best scores* across slices of that space. SweepSpec
/// describes one cross product; runSweep() executes every configuration
/// over a trace once and scores it against each baseline MPL. A detector
/// run does not depend on the MPL, so one run serves all MPL scorings.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_HARNESS_SWEEP_H
#define OPD_HARNESS_SWEEP_H

#include "baseline/BaselineSolution.h"
#include "core/DetectorConfig.h"
#include "core/SweepSpec.h"
#include "metrics/Scoring.h"
#include "obs/RunTrace.h"
#include "support/Table.h"
#include "trace/BranchTrace.h"

#include <functional>
#include <vector>

namespace opd {

/// One configuration's scores against every baseline.
struct RunScores {
  DetectorConfig Config;
  /// Scores[i] corresponds to Baselines[i].
  std::vector<AccuracyScore> PerMPL;
  /// Same, scored with anchor-corrected phase starts (Figure 8); filled
  /// only when SweepOptions::ScoreAnchored.
  std::vector<AccuracyScore> AnchoredPerMPL;
  /// Observability counters of this configuration's run; filled only
  /// when SweepOptions::CollectStats.
  RunCounters Counters;
  /// Per-stage wall time of this configuration: the detector run and
  /// the scoring passes; filled only when SweepOptions::CollectStats.
  double DetectSeconds = 0.0;
  double ScoreSeconds = 0.0;
};

struct SweepOptions {
  bool ScoreAnchored = false;
  /// Attach a CountingObserver to every run and record per-stage wall
  /// times into RunScores. Off by default: the unobserved hot path is
  /// what the benches measure.
  bool CollectStats = false;
  /// Partition the configurations into provable equivalence classes
  /// (analysis/ConfigAnalysis.h) and run only one representative per
  /// class, fanning its scores back to every member. The returned
  /// RunScores are bit-identical to an unpruned sweep; only the number
  /// of detector runs changes. The canonicalizer is told whether
  /// anchored scoring is on (ScoreAnchored), so anchor-affecting fields
  /// are only merged when the anchored output is not being observed.
  bool Prune = false;
  /// Execute the runs through the shared-scan engine
  /// (core/SharedScan.h): configs are grouped by window-kernel shape
  /// and each group rides a single trace pass, with per-config state
  /// reduced to an analyzer cursor (plus a detached window shard while
  /// an adaptive config is in phase). Output is bit-identical to the
  /// per-config path — SharedScan=false keeps that path as the
  /// differential oracle. Ignored under CollectStats, whose observer
  /// events only the reference detector emits.
  bool SharedScan = true;
};

/// Work accounting of one runSweep() call.
struct SweepStats {
  /// Configurations requested.
  size_t NumConfigs = 0;
  /// Detector runs actually executed (== NumConfigs unless pruning).
  size_t RunsExecuted = 0;
  /// Runs avoided by equivalence-class pruning.
  size_t RunsPruned = 0;
  /// Aggregate wall time of the executed runs' stages; filled only when
  /// SweepOptions::CollectStats (the unobserved hot path is untimed).
  double DetectSeconds = 0.0;
  double ScoreSeconds = 0.0;
};

/// Runs every configuration over \p Trace once and scores it against
/// every baseline. Parallel across configurations. \p Configs must be
/// non-empty: an empty sweep is always a spec bug (an empty dimension
/// vector annihilates the cross product), so it aborts with a message
/// pointing at config_check rather than silently returning no results.
/// \p Stats, when given, receives the work accounting of this call.
std::vector<RunScores> runSweep(const BranchTrace &Trace,
                                const std::vector<BaselineSolution> &Baselines,
                                const std::vector<DetectorConfig> &Configs,
                                const SweepOptions &Options = {},
                                SweepStats *Stats = nullptr);

/// Maximum score at baseline index \p MPLIdx over the configurations
/// accepted by \p Filter; returns -1 when none match.
double bestScore(const std::vector<RunScores> &Runs, size_t MPLIdx,
                 const std::function<bool(const DetectorConfig &)> &Filter,
                 bool Anchored = false);

/// Renders the per-configuration observability counters of a sweep run
/// with CollectStats as a table: evaluations, phases, anchor
/// corrections, window churn, per-stage wall time, and throughput.
Table sweepStatsTable(const std::vector<RunScores> &Runs,
                      const std::string &Title = "Sweep statistics");

} // namespace opd

#endif // OPD_HARNESS_SWEEP_H
