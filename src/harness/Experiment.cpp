//===- harness/Experiment.cpp - Shared experiment setup ---------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"

#include "workloads/Workloads.h"

#include <cassert>

using namespace opd;

const std::vector<uint64_t> opd::StandardMPLs = {1000,  5000,  10000,
                                                 25000, 50000, 100000};
const std::vector<uint64_t> opd::ExtendedMPLs = {
    1000, 5000, 10000, 25000, 50000, 100000, 200000};

size_t BenchmarkData::mplIndex(uint64_t MPL) const {
  for (size_t I = 0; I != MPLs.size(); ++I)
    if (MPLs[I] == MPL)
      return I;
  assert(false && "MPL not prepared for this benchmark");
  return 0;
}

std::vector<BenchmarkData>
opd::prepareBenchmarks(const std::vector<std::string> &Names,
                       const std::vector<uint64_t> &MPLs, double Scale) {
  std::vector<BenchmarkData> Result;
  Result.reserve(Names.size());
  for (const std::string &Name : Names) {
    const Workload *W = findWorkload(Name);
    assert(W && "unknown workload name");
    ExecutionResult Exec = executeWorkload(*W, Scale);

    BenchmarkData Data;
    Data.Name = Name;
    Data.Stats = Exec.Stats;
    Data.MPLs = MPLs;
    Data.Baselines =
        computeBaselines(Exec.CallLoop, Exec.Branches.size(), MPLs);
    Data.Trace = std::move(Exec.Branches);
    Data.CallLoop = std::move(Exec.CallLoop);
    Result.push_back(std::move(Data));
  }
  return Result;
}

std::vector<BenchmarkData>
opd::prepareBenchmarks(const std::vector<uint64_t> &MPLs, double Scale) {
  std::vector<std::string> Names;
  for (const Workload &W : standardWorkloads())
    Names.push_back(W.Name);
  return prepareBenchmarks(Names, MPLs, Scale);
}
