//===- vm/Interleave.h - Multi-threaded trace interleaving ------*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper evaluates single-threaded applications and notes "the
/// framework can be extended to handle multi-threaded applications".
/// This header provides the substrate for studying that extension:
/// interleaveTraces() merges several threads' branch traces under a
/// quantum-based round-robin schedule (method ids are remapped so
/// threads' sites stay distinct, as they would be in per-thread JITed
/// code), and demuxStates() projects a detector's merged-stream output
/// back onto each thread so it can be scored against that thread's own
/// oracle.
///
/// The intended experiment (bench_ablation): a detector running on the
/// merged stream sees phase behavior chopped up at every context switch,
/// while per-thread detectors (the natural extension) are unaffected.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_VM_INTERLEAVE_H
#define OPD_VM_INTERLEAVE_H

#include "trace/BranchTrace.h"
#include "trace/StateSequence.h"

#include <cstdint>
#include <vector>

namespace opd {

/// A merged multi-thread branch trace with per-element thread ids.
struct InterleavedTrace {
  /// The merged stream. Elements keep their bytecode offsets but method
  /// ids are offset by ThreadIndex * MethodIdStride so site identities
  /// never collide across threads.
  BranchTrace Merged;
  /// Thread index of each merged element.
  std::vector<uint8_t> ThreadIds;
  /// Per-thread element counts (== the input trace sizes).
  std::vector<uint64_t> ThreadSizes;

  static constexpr uint32_t MethodIdStride = 4096;
};

/// Merges \p Threads under a round-robin schedule that runs each thread
/// for ~\p Quantum elements per turn (jittered up to +/-50% by \p Seed's
/// stream, so context switches do not align with phase structure).
/// Threads that run out simply drop out of the rotation. Requires fewer
/// than 16 threads and per-thread method ids below MethodIdStride.
InterleavedTrace interleaveTraces(const std::vector<const BranchTrace *> &Threads,
                                  uint64_t Quantum, uint64_t Seed);

/// Projects per-merged-element states back to per-thread sequences:
/// result[t] has one state per element of thread t, in that thread's
/// own order.
std::vector<StateSequence> demuxStates(const InterleavedTrace &Trace,
                                       const StateSequence &MergedStates);

} // namespace opd

#endif // OPD_VM_INTERLEAVE_H
