//===- vm/Interleave.cpp - Multi-threaded trace interleaving ----------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "vm/Interleave.h"

#include "support/Random.h"

#include <algorithm>

using namespace opd;

InterleavedTrace
opd::interleaveTraces(const std::vector<const BranchTrace *> &Threads,
                      uint64_t Quantum, uint64_t Seed) {
  assert(!Threads.empty() && "need at least one thread");
  assert(Threads.size() < 16 && "thread index must fit the id remapping");
  assert(Quantum > 0 && "quantum must be positive");

  InterleavedTrace Result;
  Result.ThreadSizes.reserve(Threads.size());
  uint64_t Total = 0;
  for (const BranchTrace *T : Threads) {
    Result.ThreadSizes.push_back(T->size());
    Total += T->size();
  }
  Result.Merged.reserve(Total);
  Result.ThreadIds.reserve(Total);

  Xoshiro256 Rng(Seed);
  std::vector<uint64_t> Cursor(Threads.size(), 0);
  size_t Turn = 0;
  while (true) {
    // Find the next thread with elements left (round robin).
    size_t Tried = 0;
    while (Tried != Threads.size() &&
           Cursor[Turn] >= Threads[Turn]->size()) {
      Turn = (Turn + 1) % Threads.size();
      ++Tried;
    }
    if (Tried == Threads.size())
      break; // Every thread is drained.

    const BranchTrace &Thread = *Threads[Turn];
    // Jittered quantum: 50%..150% of the nominal value, at least 1.
    uint64_t Slice =
        std::max<uint64_t>(1, Quantum / 2 + Rng.nextBelow(Quantum + 1));
    uint64_t End = std::min<uint64_t>(Thread.size(), Cursor[Turn] + Slice);
    for (uint64_t I = Cursor[Turn]; I != End; ++I) {
      ProfileElement E = Thread.sites().element(Thread[I]);
      assert(E.methodId() < InterleavedTrace::MethodIdStride &&
             "method id exceeds the per-thread remapping stride");
      ProfileElement Remapped(
          E.methodId() +
              static_cast<uint32_t>(Turn) * InterleavedTrace::MethodIdStride,
          E.bytecodeOffset(), E.taken());
      Result.Merged.append(Remapped);
      Result.ThreadIds.push_back(static_cast<uint8_t>(Turn));
    }
    Cursor[Turn] = End;
    Turn = (Turn + 1) % Threads.size();
  }
  return Result;
}

std::vector<StateSequence>
opd::demuxStates(const InterleavedTrace &Trace,
                 const StateSequence &MergedStates) {
  assert(MergedStates.size() == Trace.ThreadIds.size() &&
         "states must cover the merged trace");
  std::vector<StateSequence> Result(Trace.ThreadSizes.size());

  // Walk the merged runs and route each element's state to its thread.
  size_t RunIdx = 0;
  const std::vector<StateRun> &Runs = MergedStates.runs();
  for (uint64_t I = 0; I != Trace.ThreadIds.size(); ++I) {
    while (RunIdx < Runs.size() &&
           I >= Runs[RunIdx].Begin + Runs[RunIdx].Length)
      ++RunIdx;
    assert(RunIdx < Runs.size() && "merged states shorter than the trace");
    Result[Trace.ThreadIds[I]].append(Runs[RunIdx].State);
  }
  return Result;
}
