//===- vm/Interpreter.cpp - Instrumented JP interpreter --------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "vm/Interpreter.h"

#include "support/Casting.h"
#include "support/Random.h"

#include <algorithm>
#include <vector>

using namespace opd;

namespace {

/// One JP activation record. Slots hold the parameters followed by the
/// active loop variables (layout fixed by Sema).
struct Frame {
  uint32_t MethodIndex;
  std::vector<int64_t> Slots;
  /// Set when a later invocation of the same method observes this frame as
  /// the bottom-most on-stack instance, making it a recursion root.
  bool IsRecursionRoot = false;
};

/// Tree-walking evaluator with branch/call-loop instrumentation.
class Interpreter {
public:
  Interpreter(const Program &Prog, const InterpreterOptions &Options)
      : Prog(Prog), Options(Options), Rng(Options.Seed) {}

  ExecutionResult run() {
    assert(Prog.entryIndex() != ~0u && "program has not been through Sema");
    invoke(Prog.entryIndex(), {});
    return std::move(Result);
  }

private:
  /// True once any stop condition has triggered; statement execution
  /// unwinds promptly but still emits the exit events of open constructs.
  bool halted() const {
    return Result.Stats.HaltedByFuel || Result.Stats.HaltedByDepth;
  }

  void emitBranch(uint32_t SiteOffset, bool Taken) {
    Result.Branches.append(
        ProfileElement(CurrentFrame().MethodIndex, SiteOffset, Taken));
    ++Result.Stats.DynamicBranches;
    if (Result.Stats.DynamicBranches >= Options.MaxBranches)
      Result.Stats.HaltedByFuel = true;
  }

  Frame &CurrentFrame() {
    assert(!Stack.empty() && "no active frame");
    return Stack.back();
  }

  void invoke(uint32_t MethodIndex, std::vector<int64_t> Args);
  void execStmt(const Stmt &S);
  void execBlock(const BlockStmt &B);
  int64_t evalExpr(const Expr &E);

  const Program &Prog;
  const InterpreterOptions &Options;
  Xoshiro256 Rng;
  ExecutionResult Result;
  std::vector<Frame> Stack;
  /// Per-method stack of indices into Stack for active instances; used for
  /// recursion-root detection.
  std::vector<std::vector<uint32_t>> ActiveInstances;
};

} // namespace

void Interpreter::invoke(uint32_t MethodIndex, std::vector<int64_t> Args) {
  const MethodDecl &M = *Prog.methods()[MethodIndex];
  assert(Args.size() == M.params().size() && "arity mismatch after Sema");

  ++Result.Stats.MethodInvocations;
  if (ActiveInstances.empty())
    ActiveInstances.resize(Prog.methods().size());

  // Recursion-root detection: if an instance of this method is already on
  // the stack, the bottom-most such instance roots a recursive execution.
  std::vector<uint32_t> &Instances = ActiveInstances[MethodIndex];
  if (!Instances.empty()) {
    Frame &Root = Stack[Instances.front()];
    if (!Root.IsRecursionRoot) {
      Root.IsRecursionRoot = true;
      ++Result.Stats.RecursionRoots;
    }
  }

  if (Stack.size() >= Options.MaxCallDepth) {
    Result.Stats.HaltedByDepth = true;
    return;
  }

  Result.CallLoop.append(CallLoopEventKind::MethodEnter, MethodIndex,
                         Result.Stats.DynamicBranches);
  Instances.push_back(static_cast<uint32_t>(Stack.size()));
  Args.resize(M.numSlots(), 0); // loop-variable slots start zeroed
  Stack.push_back({MethodIndex, std::move(Args), false});
  Result.Stats.MaxCallDepth = std::max(
      Result.Stats.MaxCallDepth, static_cast<uint32_t>(Stack.size()));

  execBlock(*M.body());

  Stack.pop_back();
  Instances.pop_back();
  Result.CallLoop.append(CallLoopEventKind::MethodExit, MethodIndex,
                         Result.Stats.DynamicBranches);
}

void Interpreter::execBlock(const BlockStmt &B) {
  for (const std::unique_ptr<Stmt> &S : B.stmts()) {
    if (halted())
      return;
    execStmt(*S);
  }
}

void Interpreter::execStmt(const Stmt &S) {
  switch (S.kind()) {
  case Stmt::Kind::Block:
    execBlock(*cast<BlockStmt>(&S));
    return;

  case Stmt::Kind::Loop: {
    const auto *Loop = cast<LoopStmt>(&S);
    int64_t Count = evalExpr(*Loop->count());
    if (Count < 0)
      Count = 0;
    ++Result.Stats.LoopExecutions;
    Result.CallLoop.append(CallLoopEventKind::LoopEnter, Loop->loopId(),
                           Result.Stats.DynamicBranches);
    for (int64_t I = 0; I != Count && !halted(); ++I) {
      if (Loop->hasVar())
        CurrentFrame().Slots[Loop->varSlot()] = I;
      execBlock(*Loop->body());
    }
    Result.CallLoop.append(CallLoopEventKind::LoopExit, Loop->loopId(),
                           Result.Stats.DynamicBranches);
    return;
  }

  case Stmt::Kind::Branch: {
    const auto *Branch = cast<BranchStmt>(&S);
    bool Taken = Branch->flipProbability() >= 1.0
                     ? true
                     : Rng.nextBool(Branch->flipProbability());
    emitBranch(Branch->siteOffset(), Taken);
    return;
  }

  case Stmt::Kind::If: {
    const auto *If = cast<IfStmt>(&S);
    bool TakeThen = Rng.nextBool(If->probability());
    emitBranch(If->siteOffset(), TakeThen);
    if (halted())
      return;
    if (TakeThen)
      execBlock(*If->thenBlock());
    else if (If->elseBlock())
      execBlock(*If->elseBlock());
    return;
  }

  case Stmt::Kind::When: {
    const auto *When = cast<WhenStmt>(&S);
    bool TakeThen = evalExpr(*When->cond()) != 0;
    emitBranch(When->siteOffset(), TakeThen);
    if (halted())
      return;
    if (TakeThen)
      execBlock(*When->thenBlock());
    else if (When->elseBlock())
      execBlock(*When->elseBlock());
    return;
  }

  case Stmt::Kind::Call: {
    const auto *Call = cast<CallStmt>(&S);
    std::vector<int64_t> Args;
    Args.reserve(Call->args().size());
    for (const std::unique_ptr<Expr> &Arg : Call->args())
      Args.push_back(evalExpr(*Arg));
    invoke(Call->calleeIndex(), std::move(Args));
    return;
  }

  case Stmt::Kind::Pick: {
    const auto *Pick = cast<PickStmt>(&S);
    uint64_t Total = Pick->totalWeight();
    assert(Total > 0 && "pick with zero total weight after Sema");
    uint64_t Draw = Rng.nextBelow(Total);
    for (const PickStmt::Arm &Arm : Pick->arms()) {
      if (Draw < Arm.Weight) {
        execBlock(*Arm.Body);
        return;
      }
      Draw -= Arm.Weight;
    }
    assert(false && "pick draw exceeded total weight");
    return;
  }
  }
}

int64_t Interpreter::evalExpr(const Expr &E) {
  switch (E.kind()) {
  case Expr::Kind::IntLit:
    return cast<IntLitExpr>(&E)->value();
  case Expr::Kind::ParamRef:
    return CurrentFrame().Slots[cast<ParamRefExpr>(&E)->slot()];
  case Expr::Kind::Unary:
    return -evalExpr(*cast<UnaryExpr>(&E)->operand());
  case Expr::Kind::Binary: {
    const auto *Bin = cast<BinaryExpr>(&E);
    int64_t L = evalExpr(*Bin->lhs());
    int64_t R = evalExpr(*Bin->rhs());
    switch (Bin->op()) {
    case BinaryOp::Add:
      return L + R;
    case BinaryOp::Sub:
      return L - R;
    case BinaryOp::Mul:
      return L * R;
    case BinaryOp::Div:
      if (R == 0) {
        ++Result.Stats.DivByZero;
        return 0;
      }
      return L / R;
    case BinaryOp::Rem:
      if (R == 0) {
        ++Result.Stats.DivByZero;
        return 0;
      }
      return L % R;
    case BinaryOp::Lt:
      return L < R;
    case BinaryOp::Le:
      return L <= R;
    case BinaryOp::Gt:
      return L > R;
    case BinaryOp::Ge:
      return L >= R;
    case BinaryOp::Eq:
      return L == R;
    case BinaryOp::Ne:
      return L != R;
    }
    assert(false && "unhandled binary operator");
    return 0;
  }
  }
  assert(false && "unhandled expression kind");
  return 0;
}

ExecutionResult opd::runProgram(const Program &Prog,
                                const InterpreterOptions &Options) {
  return Interpreter(Prog, Options).run();
}
