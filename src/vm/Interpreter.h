//===- vm/Interpreter.h - Instrumented JP interpreter -----------*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instrumented execution substrate. The paper instruments Jikes RVM's
/// optimizing compiler to emit (a) a profile element per executed
/// conditional branch and (b) a call-loop trace of loop and method entries
/// and exits. This interpreter plays that role for JP programs: executing
/// a program yields both traces plus the dynamic execution characteristics
/// reported in Table 1(a).
///
/// Execution is fully deterministic given (program, seed): all
/// probabilistic constructs draw from one Xoshiro256 stream.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_VM_INTERPRETER_H
#define OPD_VM_INTERPRETER_H

#include "lang/AST.h"
#include "trace/BranchTrace.h"
#include "trace/CallLoopTrace.h"

#include <cstdint>

namespace opd {

/// Dynamic execution characteristics of one run (Table 1(a) columns).
struct ExecutionStats {
  /// Number of profile elements emitted (column "Dynamic Branches").
  uint64_t DynamicBranches = 0;
  /// Number of loop executions, i.e. loop entries; one execution spans all
  /// iterations of that entry (column "Loop Executions").
  uint64_t LoopExecutions = 0;
  /// Number of method invocations (column "Method Invocations").
  uint64_t MethodInvocations = 0;
  /// Number of invocations that are the root of a recursive execution: an
  /// invocation of a method with no other instance on the stack that the
  /// program later re-invokes before it returns (column "Recursion Roots").
  uint64_t RecursionRoots = 0;
  /// Deepest JP call stack observed.
  uint32_t MaxCallDepth = 0;
  /// True if the run stopped early because it reached MaxBranches.
  bool HaltedByFuel = false;
  /// True if the run stopped because it exceeded MaxCallDepth frames.
  bool HaltedByDepth = false;
  /// Number of division/remainder-by-zero evaluations (defined as 0).
  uint64_t DivByZero = 0;
};

/// Knobs for one interpreted run.
struct InterpreterOptions {
  /// PRNG seed; the single source of nondeterminism.
  uint64_t Seed = 1;
  /// Stop (gracefully, with exits emitted) after this many branches.
  uint64_t MaxBranches = UINT64_MAX;
  /// Stop if the JP call stack exceeds this many frames.
  uint32_t MaxCallDepth = 4096;
};

/// Everything one run produces.
struct ExecutionResult {
  BranchTrace Branches;
  CallLoopTrace CallLoop;
  ExecutionStats Stats;
};

/// Executes \p Prog (which must have passed Sema) from its `main` method.
/// Never fails: resource-limit stops are reported in Stats and the traces
/// are valid (properly nested, exits emitted) regardless.
ExecutionResult runProgram(const Program &Prog,
                           const InterpreterOptions &Options = {});

} // namespace opd

#endif // OPD_VM_INTERPRETER_H
