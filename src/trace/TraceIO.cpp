//===- trace/TraceIO.cpp - Trace serialization -----------------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "trace/TraceIO.h"

#include <cstdio>
#include <cstring>
#include <memory>

using namespace opd;

namespace {

constexpr char BranchMagic[4] = {'O', 'P', 'D', 'B'};
constexpr char CallLoopMagic[4] = {'O', 'P', 'D', 'C'};
constexpr uint32_t FormatVersion = 1;

struct FileCloser {
  void operator()(std::FILE *F) const {
    if (F)
      std::fclose(F);
  }
};
using FileHandle = std::unique_ptr<std::FILE, FileCloser>;

FileHandle openFile(const std::string &Path, const char *Mode,
                    IOStatus &Status) {
  FileHandle F(std::fopen(Path.c_str(), Mode));
  if (!F)
    Status = IOStatus::failure("cannot open '" + Path + "'");
  return F;
}

template <typename T> bool writeScalar(std::FILE *F, T Value) {
  return std::fwrite(&Value, sizeof(T), 1, F) == 1;
}

template <typename T> bool readScalar(std::FILE *F, T &Value) {
  return std::fread(&Value, sizeof(T), 1, F) == 1;
}

IOStatus checkHeader(std::FILE *F, const char (&Magic)[4],
                     const std::string &Path) {
  char Buf[4];
  uint32_t Version = 0;
  if (std::fread(Buf, 1, 4, F) != 4 || std::memcmp(Buf, Magic, 4) != 0)
    return IOStatus::failure("'" + Path + "': bad magic, not an OPD trace");
  if (!readScalar(F, Version) || Version != FormatVersion)
    return IOStatus::failure("'" + Path + "': unsupported format version");
  return IOStatus::success();
}

} // namespace

IOStatus opd::writeBranchTraceBinary(const BranchTrace &Trace,
                                     const std::string &Path) {
  IOStatus Status;
  FileHandle F = openFile(Path, "wb", Status);
  if (!F)
    return Status;
  uint64_t Count = Trace.size();
  if (std::fwrite(BranchMagic, 1, 4, F.get()) != 4 ||
      !writeScalar(F.get(), FormatVersion) || !writeScalar(F.get(), Count))
    return IOStatus::failure("'" + Path + "': short write");
  for (uint64_t I = 0; I != Count; ++I) {
    uint32_t Raw = Trace.sites().element(Trace[I]).raw();
    if (!writeScalar(F.get(), Raw))
      return IOStatus::failure("'" + Path + "': short write");
  }
  return IOStatus::success();
}

IOStatus opd::readBranchTraceBinary(const std::string &Path,
                                    BranchTrace &Trace) {
  IOStatus Status;
  FileHandle F = openFile(Path, "rb", Status);
  if (!F)
    return Status;
  if (IOStatus Header = checkHeader(F.get(), BranchMagic, Path); !Header)
    return Header;
  uint64_t Count = 0;
  if (!readScalar(F.get(), Count))
    return IOStatus::failure("'" + Path + "': truncated header");
  BranchTrace Result;
  Result.reserve(Count);
  for (uint64_t I = 0; I != Count; ++I) {
    uint32_t Raw = 0;
    if (!readScalar(F.get(), Raw))
      return IOStatus::failure("'" + Path + "': truncated element stream");
    Result.append(ProfileElement::fromRaw(Raw));
  }
  Trace = std::move(Result);
  return IOStatus::success();
}

IOStatus opd::writeBranchTraceText(const BranchTrace &Trace,
                                   const std::string &Path) {
  IOStatus Status;
  FileHandle F = openFile(Path, "w", Status);
  if (!F)
    return Status;
  std::fprintf(F.get(), "# OPD branch trace: methodId bytecodeOffset taken\n");
  for (uint64_t I = 0, E = Trace.size(); I != E; ++I) {
    ProfileElement El = Trace.sites().element(Trace[I]);
    if (std::fprintf(F.get(), "%u %u %u\n", El.methodId(),
                     El.bytecodeOffset(), El.taken() ? 1 : 0) < 0)
      return IOStatus::failure("'" + Path + "': short write");
  }
  return IOStatus::success();
}

IOStatus opd::readBranchTraceText(const std::string &Path,
                                  BranchTrace &Trace) {
  IOStatus Status;
  FileHandle F = openFile(Path, "r", Status);
  if (!F)
    return Status;
  BranchTrace Result;
  char Line[256];
  uint64_t LineNo = 0;
  while (std::fgets(Line, sizeof(Line), F.get())) {
    ++LineNo;
    if (Line[0] == '#' || Line[0] == '\n' || Line[0] == '\0')
      continue;
    unsigned MethodId = 0, Offset = 0, Taken = 0;
    if (std::sscanf(Line, "%u %u %u", &MethodId, &Offset, &Taken) != 3 ||
        MethodId > ProfileElement::MaxMethodId ||
        Offset > ProfileElement::MaxOffset || Taken > 1)
      return IOStatus::failure("'" + Path + "': malformed record at line " +
                               std::to_string(LineNo));
    Result.append(ProfileElement(MethodId, Offset, Taken != 0));
  }
  Trace = std::move(Result);
  return IOStatus::success();
}

IOStatus opd::writeCallLoopTraceBinary(const CallLoopTrace &Trace,
                                       const std::string &Path) {
  IOStatus Status;
  FileHandle F = openFile(Path, "wb", Status);
  if (!F)
    return Status;
  uint64_t Count = Trace.size();
  if (std::fwrite(CallLoopMagic, 1, 4, F.get()) != 4 ||
      !writeScalar(F.get(), FormatVersion) || !writeScalar(F.get(), Count))
    return IOStatus::failure("'" + Path + "': short write");
  for (const CallLoopEvent &E : Trace.events()) {
    uint8_t Kind = static_cast<uint8_t>(E.Kind);
    if (!writeScalar(F.get(), Kind) || !writeScalar(F.get(), E.Id) ||
        !writeScalar(F.get(), E.Offset))
      return IOStatus::failure("'" + Path + "': short write");
  }
  return IOStatus::success();
}

IOStatus opd::readCallLoopTraceBinary(const std::string &Path,
                                      CallLoopTrace &Trace) {
  IOStatus Status;
  FileHandle F = openFile(Path, "rb", Status);
  if (!F)
    return Status;
  if (IOStatus Header = checkHeader(F.get(), CallLoopMagic, Path); !Header)
    return Header;
  uint64_t Count = 0;
  if (!readScalar(F.get(), Count))
    return IOStatus::failure("'" + Path + "': truncated header");
  CallLoopTrace Result;
  for (uint64_t I = 0; I != Count; ++I) {
    uint8_t Kind = 0;
    uint32_t Id = 0;
    uint64_t Offset = 0;
    if (!readScalar(F.get(), Kind) || !readScalar(F.get(), Id) ||
        !readScalar(F.get(), Offset))
      return IOStatus::failure("'" + Path + "': truncated event stream");
    if (Kind > static_cast<uint8_t>(CallLoopEventKind::MethodExit))
      return IOStatus::failure("'" + Path + "': invalid event kind");
    Result.append(static_cast<CallLoopEventKind>(Kind), Id, Offset);
  }
  Trace = std::move(Result);
  return IOStatus::success();
}

IOStatus opd::writeCallLoopTraceText(const CallLoopTrace &Trace,
                                     const std::string &Path) {
  IOStatus Status;
  FileHandle F = openFile(Path, "w", Status);
  if (!F)
    return Status;
  std::fprintf(F.get(), "# OPD call-loop trace: LE|LX|ME|MX id offset\n");
  static const char *const Mnemonics[] = {"LE", "LX", "ME", "MX"};
  for (const CallLoopEvent &E : Trace.events()) {
    if (std::fprintf(F.get(), "%s %u %llu\n",
                     Mnemonics[static_cast<unsigned>(E.Kind)], E.Id,
                     static_cast<unsigned long long>(E.Offset)) < 0)
      return IOStatus::failure("'" + Path + "': short write");
  }
  return IOStatus::success();
}

IOStatus opd::readCallLoopTraceText(const std::string &Path,
                                    CallLoopTrace &Trace) {
  IOStatus Status;
  FileHandle F = openFile(Path, "r", Status);
  if (!F)
    return Status;
  CallLoopTrace Result;
  char Line[256];
  uint64_t LineNo = 0;
  while (std::fgets(Line, sizeof(Line), F.get())) {
    ++LineNo;
    if (Line[0] == '#' || Line[0] == '\n' || Line[0] == '\0')
      continue;
    char Mnemonic[3] = {};
    unsigned Id = 0;
    unsigned long long Offset = 0;
    if (std::sscanf(Line, "%2s %u %llu", Mnemonic, &Id, &Offset) != 3)
      return IOStatus::failure("'" + Path + "': malformed record at line " +
                               std::to_string(LineNo));
    CallLoopEventKind Kind;
    if (std::strcmp(Mnemonic, "LE") == 0)
      Kind = CallLoopEventKind::LoopEnter;
    else if (std::strcmp(Mnemonic, "LX") == 0)
      Kind = CallLoopEventKind::LoopExit;
    else if (std::strcmp(Mnemonic, "ME") == 0)
      Kind = CallLoopEventKind::MethodEnter;
    else if (std::strcmp(Mnemonic, "MX") == 0)
      Kind = CallLoopEventKind::MethodExit;
    else
      return IOStatus::failure("'" + Path + "': unknown mnemonic at line " +
                               std::to_string(LineNo));
    Result.append(Kind, Id, Offset);
  }
  Trace = std::move(Result);
  return IOStatus::success();
}
