//===- trace/StateSequence.h - Run-length P/T state sequences ---*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The framework outputs one PhaseState per profile element. For traces of
/// hundreds of thousands of elements across thousands of detector runs a
/// byte-per-element representation is wasteful, so StateSequence stores the
/// output run-length encoded. Phase boundaries (the T->P and P->T flips the
/// scoring metric matches against) fall out of the runs directly.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_TRACE_STATESEQUENCE_H
#define OPD_TRACE_STATESEQUENCE_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace opd {

/// The two framework output states (Section 2).
enum class PhaseState : uint8_t {
  Transition, ///< T: between phases (or windows still filling).
  InPhase,    ///< P: stable, repeating behavior.
};

/// A maximal run of identical states covering trace offsets
/// [Begin, Begin+Length).
struct StateRun {
  uint64_t Begin;
  uint64_t Length;
  PhaseState State;
};

/// One phase interval [Begin, End) in trace offsets.
struct PhaseInterval {
  uint64_t Begin;
  uint64_t End;

  uint64_t length() const { return End - Begin; }

  friend bool operator==(const PhaseInterval &A, const PhaseInterval &B) {
    return A.Begin == B.Begin && A.End == B.End;
  }
};

/// Run-length encoded sequence of per-element states.
class StateSequence {
  std::vector<StateRun> Runs;
  uint64_t Total = 0;

public:
  /// Appends \p Count elements in state \p S (merges with the last run).
  void append(PhaseState S, uint64_t Count = 1) {
    if (Count == 0)
      return;
    if (!Runs.empty() && Runs.back().State == S) {
      Runs.back().Length += Count;
    } else {
      Runs.push_back({Total, Count, S});
    }
    Total += Count;
  }

  /// Total number of per-element states.
  uint64_t size() const { return Total; }

  /// True if no states were appended.
  bool empty() const { return Total == 0; }

  /// Forgets all states but keeps the run storage, so a reused sequence
  /// (sweep arenas) reaches steady state without reallocating.
  void clear() {
    Runs.clear();
    Total = 0;
  }

  /// Reserves storage for \p N maximal runs.
  void reserveRuns(size_t N) { Runs.reserve(N); }

  /// The maximal runs in offset order.
  const std::vector<StateRun> &runs() const { return Runs; }

  /// State of element \p I (binary search over runs; prefer iterating
  /// runs() in bulk code).
  PhaseState at(uint64_t I) const;

  /// Returns the InPhase intervals, i.e. the detected/identified phases.
  /// Boundaries are exactly the interval endpoints: Begin is a T->P flip
  /// (or sequence start in P) and End a P->T flip (or sequence end).
  std::vector<PhaseInterval> phases() const;

  /// As phases(), but clears and fills \p Out so a reused vector keeps
  /// its capacity across runs.
  void phasesInto(std::vector<PhaseInterval> &Out) const;

  /// Number of elements in state InPhase.
  uint64_t numInPhase() const;

  /// Builds a sequence of length \p Total that is InPhase exactly on the
  /// given disjoint, sorted \p Phases.
  static StateSequence fromPhases(const std::vector<PhaseInterval> &Phases,
                                  uint64_t Total);
};

/// Number of elements on which \p A and \p B agree; both must have equal
/// size. This is the numerator of the paper's correlation component
/// (bothInPhase + bothInTransition).
uint64_t countAgreement(const StateSequence &A, const StateSequence &B);

} // namespace opd

#endif // OPD_TRACE_STATESEQUENCE_H
