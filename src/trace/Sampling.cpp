//===- trace/Sampling.cpp - Sampled profile streams --------------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "trace/Sampling.h"

#include <cstddef>

using namespace opd;

BranchTrace opd::sampleTrace(const BranchTrace &Trace, uint64_t Period) {
  assert(Period > 0 && "sampling period must be positive");
  BranchTrace Result;
  Result.reserve(Trace.size() / Period + 1);
  for (uint64_t I = 0; I < Trace.size(); I += Period)
    Result.append(Trace.sites().element(Trace[I]));
  return Result;
}

StateSequence opd::sampleStates(const StateSequence &States,
                                uint64_t Period) {
  assert(Period > 0 && "sampling period must be positive");
  StateSequence Result;
  // Walk the runs; emit one state per sampled offset.
  const std::vector<StateRun> &Runs = States.runs();
  size_t RunIdx = 0;
  for (uint64_t I = 0; I < States.size(); I += Period) {
    while (RunIdx < Runs.size() &&
           I >= Runs[RunIdx].Begin + Runs[RunIdx].Length)
      ++RunIdx;
    assert(RunIdx < Runs.size() && "offset past the last run");
    Result.append(Runs[RunIdx].State);
  }
  return Result;
}
