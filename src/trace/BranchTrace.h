//===- trace/BranchTrace.h - Branch traces and site tables ------*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// BranchTrace stores the conditional-branch profile of one program
/// execution as a sequence of dense SiteIndex values plus a SiteTable that
/// maps those indices back to packed ProfileElements. Dense indices let
/// the similarity models keep per-site occurrence counts in flat arrays.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_TRACE_BRANCHTRACE_H
#define OPD_TRACE_BRANCHTRACE_H

#include "trace/ProfileElement.h"

#include <cassert>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace opd {

/// Bijection between the distinct ProfileElements of a trace and the dense
/// index range [0, numSites()).
class SiteTable {
  std::unordered_map<uint32_t, SiteIndex> RawToIndex;
  std::vector<ProfileElement> IndexToElement;

public:
  /// Returns the index for \p E, interning it on first sight.
  SiteIndex intern(ProfileElement E) {
    auto [It, Inserted] = RawToIndex.try_emplace(
        E.raw(), static_cast<SiteIndex>(IndexToElement.size()));
    if (Inserted)
      IndexToElement.push_back(E);
    return It->second;
  }

  /// Returns the index for \p E or numSites() if it was never interned.
  SiteIndex lookup(ProfileElement E) const {
    auto It = RawToIndex.find(E.raw());
    return It == RawToIndex.end() ? numSites() : It->second;
  }

  /// Maps a dense index back to its packed element.
  ProfileElement element(SiteIndex Index) const {
    assert(Index < IndexToElement.size() && "site index out of range");
    return IndexToElement[Index];
  }

  /// Number of distinct sites interned so far.
  SiteIndex numSites() const {
    return static_cast<SiteIndex>(IndexToElement.size());
  }
};

/// The branch profile of one execution: dense site indices in execution
/// order plus the site table that decodes them.
class BranchTrace {
  SiteTable Sites;
  std::vector<SiteIndex> Elements;

public:
  /// Appends one executed branch.
  void append(ProfileElement E) { Elements.push_back(Sites.intern(E)); }

  /// Appends one executed branch by dense index (the index must have been
  /// interned already; used by generators that pre-build the site table).
  void appendIndex(SiteIndex Index) {
    assert(Index < Sites.numSites() && "appending an uninterned site");
    Elements.push_back(Index);
  }

  /// Interns \p E without appending (pre-populates the site table).
  SiteIndex internSite(ProfileElement E) { return Sites.intern(E); }

  /// Number of profile elements (dynamic branches).
  uint64_t size() const { return Elements.size(); }

  /// True if the trace has no elements.
  bool empty() const { return Elements.empty(); }

  /// Dense site index of element \p I.
  SiteIndex operator[](uint64_t I) const {
    assert(I < Elements.size() && "trace offset out of range");
    return Elements[I];
  }

  /// The full dense-index sequence.
  const std::vector<SiteIndex> &elements() const { return Elements; }

  /// The site table for decoding indices.
  const SiteTable &sites() const { return Sites; }

  /// Number of distinct branch sites in the trace.
  SiteIndex numSites() const { return Sites.numSites(); }

  /// Reserves storage for \p N elements.
  void reserve(uint64_t N) { Elements.reserve(N); }
};

} // namespace opd

#endif // OPD_TRACE_BRANCHTRACE_H
