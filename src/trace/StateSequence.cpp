//===- trace/StateSequence.cpp - Run-length P/T state sequences -----------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "trace/StateSequence.h"

#include <algorithm>

using namespace opd;

PhaseState StateSequence::at(uint64_t I) const {
  assert(I < Total && "state offset out of range");
  auto It = std::upper_bound(
      Runs.begin(), Runs.end(), I,
      [](uint64_t Offset, const StateRun &R) { return Offset < R.Begin; });
  assert(It != Runs.begin() && "offset precedes the first run");
  return std::prev(It)->State;
}

std::vector<PhaseInterval> StateSequence::phases() const {
  std::vector<PhaseInterval> Result;
  phasesInto(Result);
  return Result;
}

void StateSequence::phasesInto(std::vector<PhaseInterval> &Out) const {
  Out.clear();
  for (const StateRun &R : Runs)
    if (R.State == PhaseState::InPhase)
      Out.push_back({R.Begin, R.Begin + R.Length});
}

uint64_t StateSequence::numInPhase() const {
  uint64_t N = 0;
  for (const StateRun &R : Runs)
    if (R.State == PhaseState::InPhase)
      N += R.Length;
  return N;
}

StateSequence
StateSequence::fromPhases(const std::vector<PhaseInterval> &Phases,
                          uint64_t Total) {
  StateSequence Seq;
  uint64_t Cursor = 0;
  for (const PhaseInterval &P : Phases) {
    assert(P.Begin >= Cursor && "phases must be sorted and disjoint");
    assert(P.End <= Total && "phase extends past the sequence end");
    assert(P.Begin < P.End && "empty phase interval");
    Seq.append(PhaseState::Transition, P.Begin - Cursor);
    Seq.append(PhaseState::InPhase, P.End - P.Begin);
    Cursor = P.End;
  }
  Seq.append(PhaseState::Transition, Total - Cursor);
  return Seq;
}

uint64_t opd::countAgreement(const StateSequence &A, const StateSequence &B) {
  assert(A.size() == B.size() && "sequences must cover the same trace");
  const std::vector<StateRun> &RA = A.runs();
  const std::vector<StateRun> &RB = B.runs();
  uint64_t Agree = 0;
  size_t IA = 0, IB = 0;
  uint64_t Cursor = 0;
  while (IA < RA.size() && IB < RB.size()) {
    uint64_t EndA = RA[IA].Begin + RA[IA].Length;
    uint64_t EndB = RB[IB].Begin + RB[IB].Length;
    uint64_t SegmentEnd = std::min(EndA, EndB);
    if (RA[IA].State == RB[IB].State)
      Agree += SegmentEnd - Cursor;
    Cursor = SegmentEnd;
    if (EndA == SegmentEnd)
      ++IA;
    if (EndB == SegmentEnd)
      ++IB;
  }
  return Agree;
}
