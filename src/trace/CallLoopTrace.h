//===- trace/CallLoopTrace.h - Call-loop event traces -----------*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The baseline (oracle) solution consumes a *call-loop trace*: the
/// entrance and exit of every loop execution and method invocation,
/// correlated with the "time" of the latest dynamic branch (Section 3.1).
/// CallLoopTrace records those events; Offset is the number of branches
/// emitted before the event, so an event sits between trace elements
/// Offset-1 and Offset.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_TRACE_CALLLOOPTRACE_H
#define OPD_TRACE_CALLLOOPTRACE_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace opd {

/// Kind of repetition-construct event.
enum class CallLoopEventKind : uint8_t {
  LoopEnter,
  LoopExit,
  MethodEnter,
  MethodExit,
};

/// True for LoopEnter/MethodEnter.
inline bool isEnterEvent(CallLoopEventKind Kind) {
  return Kind == CallLoopEventKind::LoopEnter ||
         Kind == CallLoopEventKind::MethodEnter;
}

/// True for loop events (enter or exit).
inline bool isLoopEvent(CallLoopEventKind Kind) {
  return Kind == CallLoopEventKind::LoopEnter ||
         Kind == CallLoopEventKind::LoopExit;
}

/// One instrumented loop/method entry or exit.
struct CallLoopEvent {
  CallLoopEventKind Kind;
  /// Static identifier: the loop id for loop events, the method id for
  /// method events. Loop ids and method ids live in separate namespaces.
  uint32_t Id;
  /// Number of profile elements emitted before this event.
  uint64_t Offset;
};

/// The sequence of call-loop events of one execution, in program order.
/// Enters and exits are properly nested (the instrumentation emits exits
/// for exceptional unwinds too, mirroring the paper's "both normal and
/// exceptional" exits).
class CallLoopTrace {
  std::vector<CallLoopEvent> Events;

public:
  /// Appends one event; offsets must be monotonically non-decreasing.
  void append(CallLoopEventKind Kind, uint32_t Id, uint64_t Offset) {
    assert((Events.empty() || Events.back().Offset <= Offset) &&
           "call-loop events must be appended in time order");
    Events.push_back({Kind, Id, Offset});
  }

  /// Number of events.
  size_t size() const { return Events.size(); }

  /// True if there are no events.
  bool empty() const { return Events.empty(); }

  /// Event \p I in program order.
  const CallLoopEvent &operator[](size_t I) const {
    assert(I < Events.size() && "event index out of range");
    return Events[I];
  }

  /// All events in program order.
  const std::vector<CallLoopEvent> &events() const { return Events; }
};

} // namespace opd

#endif // OPD_TRACE_CALLLOOPTRACE_H
