//===- trace/ProfileElement.h - Branch profile elements ---------*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A profile element is one executed conditional branch. Following the
/// paper (Section 4.1), each element packs "a unique method ID, a bytecode
/// offset in the method where the branch is located, and a bit that
/// represents whether the branch was taken" into a single integer.
///
/// Detectors never interpret the encoding: they only need equality between
/// elements. For speed they consume *dense site indices* (see SiteTable),
/// which enumerate the distinct encoded values actually present in a trace.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_TRACE_PROFILEELEMENT_H
#define OPD_TRACE_PROFILEELEMENT_H

#include <cassert>
#include <cstdint>

namespace opd {

/// Dense index of a distinct branch site within one trace's SiteTable.
using SiteIndex = uint32_t;

/// One executed conditional branch, packed as
/// [ methodId:16 | bytecodeOffset:15 | taken:1 ].
class ProfileElement {
  uint32_t Bits = 0;

public:
  static constexpr uint32_t MaxMethodId = (1u << 16) - 1;
  static constexpr uint32_t MaxOffset = (1u << 15) - 1;

  ProfileElement() = default;

  /// Packs the triple into an element. Components must fit their fields.
  ProfileElement(uint32_t MethodId, uint32_t BytecodeOffset, bool Taken) {
    assert(MethodId <= MaxMethodId && "method id exceeds 16 bits");
    assert(BytecodeOffset <= MaxOffset && "bytecode offset exceeds 15 bits");
    Bits = (MethodId << 16) | (BytecodeOffset << 1) |
           static_cast<uint32_t>(Taken);
  }

  /// Reconstructs an element from its raw packed form.
  static ProfileElement fromRaw(uint32_t Raw) {
    ProfileElement E;
    E.Bits = Raw;
    return E;
  }

  /// The raw packed form (stable across serialization).
  uint32_t raw() const { return Bits; }

  /// The method the branch belongs to.
  uint32_t methodId() const { return Bits >> 16; }

  /// The branch's bytecode offset within its method.
  uint32_t bytecodeOffset() const { return (Bits >> 1) & MaxOffset; }

  /// Whether the branch was taken.
  bool taken() const { return Bits & 1u; }

  friend bool operator==(ProfileElement A, ProfileElement B) {
    return A.Bits == B.Bits;
  }
  friend bool operator!=(ProfileElement A, ProfileElement B) {
    return A.Bits != B.Bits;
  }
  friend bool operator<(ProfileElement A, ProfileElement B) {
    return A.Bits < B.Bits;
  }
};

} // namespace opd

#endif // OPD_TRACE_PROFILEELEMENT_H
