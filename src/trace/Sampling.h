//===- trace/Sampling.h - Sampled profile streams ---------------*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper lists profile collection as one of the three overhead
/// sources of a phase-aware system (Section 7). The standard mitigation
/// is sampling: deliver only every k-th profile element to the detector.
/// These helpers downsample a branch trace and, symmetrically, an oracle
/// state sequence, so sampled detection can be scored against the
/// correspondingly sampled ground truth (bench_ablation measures the
/// accuracy cost of sampling this way).
///
//===----------------------------------------------------------------------===//

#ifndef OPD_TRACE_SAMPLING_H
#define OPD_TRACE_SAMPLING_H

#include "trace/BranchTrace.h"
#include "trace/StateSequence.h"

#include <cstdint>

namespace opd {

/// Keeps elements at offsets 0, Period, 2*Period, ... of \p Trace.
/// Period 1 copies the trace.
BranchTrace sampleTrace(const BranchTrace &Trace, uint64_t Period);

/// Keeps the states at the same offsets, producing the ground truth for
/// a sampled trace.
StateSequence sampleStates(const StateSequence &States, uint64_t Period);

} // namespace opd

#endif // OPD_TRACE_SAMPLING_H
