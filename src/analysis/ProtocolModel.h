//===- analysis/ProtocolModel.h - Serve-protocol state machine --*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A first-class declarative model of the serve-session wire protocol
/// (docs/SERVING.md, serve/Session.h): the session lifecycle states, the
/// classified input events (well-formed and malformed frames, framing
/// corruption, worker pumps, idle eviction, graceful drain), and an
/// explicit transition table with occupancy guards and per-transition
/// buffer-occupancy effects.
///
/// The model is the single source of truth three conformance directions
/// are checked against (analysis/ProtocolCheck.h and
/// analysis/ProtocolConformance.h):
///
///   * the explicit-state model checker exhaustively explores the
///     product of protocol state, buffer occupancy, and the
///     backpressure read-pause flag, and proves the protocol invariants;
///   * the implementation conformance driver walks a real ServeSession
///     along every model edge and diffs observed behavior;
///   * the documentation diff parses docs/SERVING.md's normative tables
///     and compares them with the model's catalogue.
///
/// Abstractions the model makes (deliberate, documented):
///
///   * Input is *classified*: instead of raw bytes, an event says which
///     validation class a frame falls into (e.g. ElementsOutOfRange).
///     The conformance layer owns the byte-level encodings for each
///     class, so the classification itself is checked against reality.
///   * One ElementsOk event models one ingested Elements frame of
///     1..MaxFrameElements elements — the largest ingest between two
///     saturation checks (the server checks ingressSaturated() after
///     each feed).
///   * Transition and Progress frames are data-dependent (they depend
///     on the detector's decisions), so rules only record that they
///     *may* be emitted; mandatory frames (HelloAck, Finished, Error)
///     are modeled exactly.
///   * Connection-level concerns that never reach ServeSession (the
///     overload reject at the session cap, abandonment by client EOF
///     before Finish) are out of scope; the error-code catalogue still
///     lists `overload` as server-level so the doc diff covers it.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_ANALYSIS_PROTOCOLMODEL_H
#define OPD_ANALYSIS_PROTOCOLMODEL_H

#include "serve/Protocol.h"

#include <cstdint>
#include <vector>

namespace opd {

/// Session lifecycle states, mirroring ServeSession::State one-to-one.
enum class ProtoState : uint8_t {
  AwaitHello, ///< Waiting for the handshake frame.
  Streaming,  ///< Handshake accepted; accepting Elements/Finish.
  Draining,   ///< Finish received; tail not yet decided by a pump.
  Done,       ///< Finished summary emitted; terminal.
  Failed,     ///< Error frame emitted; terminal.
};
constexpr unsigned NumProtoStates = 5;

/// Classified input events: every frame a client can send (partitioned
/// by its validation outcome), framing-level corruption, and the
/// server-side control events that drive a session.
enum class ProtoEvent : uint8_t {
  // Hello frames by validation class.
  HelloOk,         ///< Well-formed handshake passing ServeLimits.
  HelloBadMagic,   ///< Payload intact but wrong magic.
  HelloBadVersion, ///< Right magic, unsupported version.
  HelloBadConfig,  ///< Parses but rejected by ServeLimits validation.
  HelloMalformed,  ///< Structural: short/long payload or bad enum byte.
  // Elements frames by validation class.
  ElementsOk,         ///< Well-formed, all elements inside the site space.
  ElementsMalformed,  ///< Count/length mismatch or zero count.
  ElementsOutOfRange, ///< Some element >= NumSites.
  // Finish frames.
  FinishOk,      ///< Empty payload, as specified.
  FinishPayload, ///< Finish carrying a payload.
  // Frame kinds that are never legal from a client.
  ServerKindFrame,  ///< A server-to-client kind (16..20) from the client.
  UnknownKindFrame, ///< A kind outside the defined numbering.
  // Framing-level corruption (sticky; no frame can follow).
  CorruptZeroLen,   ///< Length prefix of zero.
  CorruptOversized, ///< Length prefix above MaxFrameLen.
  // Server-side control events.
  PumpOne, ///< Worker pump with a one-element budget: at most one batch.
  PumpAll, ///< Worker pump with an unbounded budget.
  Evict,   ///< Idle-eviction timer fired.
  Drain,   ///< Graceful server shutdown reached this session.
};
constexpr unsigned NumProtoEvents = 18;

/// Occupancy guard of one transition rule, relative to the batch size.
enum class OccGuard : uint8_t {
  Any,     ///< Applies at every occupancy.
  GeBatch, ///< Applies when occupancy >= Batch.
  LtBatch, ///< Applies when occupancy < Batch.
};

/// Effect of one transition on the pending-element buffer occupancy.
enum class OccEffect : uint8_t {
  None,       ///< Occupancy unchanged.
  Ingest,     ///< Occupancy += the event's element count.
  DecideOne,  ///< One full batch decided: occupancy -= Batch.
  DecideFull, ///< Every full batch decided: occupancy %= Batch.
  DrainTail,  ///< Full batches and the sub-batch tail decided: -> 0.
  Clear,      ///< Buffer dropped undecided (terminal error): -> 0.
  /// Every full batch decided, then the undecidable remainder dropped
  /// (eviction/drain from Streaming: the tail may only be flushed by the
  /// client's Finish).
  DecideFullThenClear,
};

/// One row of the protocol transition table.
struct TransitionRule {
  ProtoState From;
  ProtoEvent Event;
  OccGuard Guard = OccGuard::Any;
  ProtoState To;
  /// Error code of the Error frame this transition emits
  /// (ServeError::None when it emits none). Non-None exactly on
  /// transitions entering Failed from a live state.
  ServeError Err = ServeError::None;
  OccEffect Occ = OccEffect::None;
  /// Mandatory frame emissions (exact).
  bool EmitHelloAck = false;
  bool EmitFinished = false;
  /// Data-dependent frame emissions (upper bounds).
  bool MayEmitTransitions = false;
  bool MayEmitProgress = false;
  /// Human-readable rationale, usable in diagnostics.
  const char *Note = "";
};

/// Numeric parameters the model instance is explored under. Small values
/// keep the product space tiny while exercising every guard boundary.
struct ProtocolParams {
  /// Decision batch size (the config's skip factor).
  uint32_t Batch = 3;
  /// Ingress high watermark (ServeLimits::MaxPendingElements). Reads
  /// pause at or above it and resume below half of it.
  uint32_t HighWatermark = 8;
  /// Largest element count one ingest event may carry.
  uint32_t MaxFrameElements = 5;
};

/// One configuration of the product state space the checker explores.
struct ProtoConfigState {
  ProtoState St = ProtoState::AwaitHello;
  /// Buffered elements not yet decided.
  uint32_t Occupancy = 0;
  /// Backpressure: the server has stopped reading this session's socket
  /// (sticky, with hysteresis: set at Occupancy >= HighWatermark, cleared
  /// by a pump leaving Occupancy < HighWatermark / 2).
  bool ReadPaused = false;
  /// Terminal error code (None unless St == Failed).
  ServeError Err = ServeError::None;

  bool operator==(const ProtoConfigState &O) const {
    return St == O.St && Occupancy == O.Occupancy &&
           ReadPaused == O.ReadPaused && Err == O.Err;
  }
};

/// The declarative protocol model: a transition table plus the frame-kind
/// and error-code catalogues the documentation is diffed against.
class ProtocolModel {
public:
  explicit ProtocolModel(ProtocolParams Params = ProtocolParams());

  const ProtocolParams &params() const { return Params; }

  /// The transition table. Mutable on purpose: the checker's negative
  /// tests remove, duplicate, and retarget rules to prove the invariants
  /// have teeth.
  std::vector<TransitionRule> &rules() { return Rules; }
  const std::vector<TransitionRule> &rules() const { return Rules; }

  /// Result of applying one event to one configuration.
  struct StepResult {
    /// The rule that fired; null when no rule matched.
    const TransitionRule *Rule = nullptr;
    /// True when more than one rule matched (the table is ambiguous);
    /// Rule then points at the first match.
    bool Ambiguous = false;
    ProtoConfigState Next;
    /// Elements decided (streamed through the detector) by this step.
    uint32_t Decided = 0;
  };

  /// Applies \p Event (carrying \p Count elements if it is ElementsOk)
  /// to \p S under the table: matches the unique applicable rule,
  /// applies its occupancy effect, and computes the read-pause
  /// hysteresis.
  StepResult step(const ProtoConfigState &S, ProtoEvent Event,
                  uint32_t Count = 0) const;

  /// True when \p Event can occur in configuration \p S under the
  /// serving I/O discipline: client frames only arrive while the server
  /// is reading (not ReadPaused); control events are always possible.
  bool offered(const ProtoConfigState &S, ProtoEvent Event) const;

  static bool isTerminal(ProtoState St) {
    return St == ProtoState::Done || St == ProtoState::Failed;
  }

  /// True for events that arrive as client frames (gated by ReadPaused),
  /// including framing corruption; false for control events.
  static bool isClientFrameEvent(ProtoEvent Event) {
    return Event < ProtoEvent::PumpOne;
  }

  /// Stable display names.
  static const char *stateName(ProtoState St);
  static const char *eventName(ProtoEvent Event);

  /// Catalogue row: one wire frame kind.
  struct KindInfo {
    const char *Name;
    uint8_t Value;
    bool ClientToServer;
  };
  /// Every frame kind with its wire value and direction, in wire-value
  /// order (the doc's frame-kind table must match exactly).
  static std::vector<KindInfo> frameKinds();

  /// Catalogue row: one error code.
  struct ErrorInfo {
    const char *Name;
    uint16_t Value;
    /// True for codes a session itself can terminate with; false for
    /// codes only the surrounding server emits (overload), which the
    /// session-level reachability check must not demand.
    bool SessionLevel;
  };
  /// Every error code with its wire value (the doc's error table must
  /// match exactly).
  static std::vector<ErrorInfo> errorCodes();

  /// The model's verdict for a *well-formed* frame of the given client
  /// kind in the given state: either an acceptance (Err == None, To is
  /// the resulting state) or a rejection code. Used by the doc diff
  /// against the frame-legality table.
  struct Legality {
    ProtoState To;
    ServeError Err; // None => accepted.
  };
  Legality legality(ProtoState St, MsgKind Kind) const;

private:
  ProtocolParams Params;
  std::vector<TransitionRule> Rules;
};

} // namespace opd

#endif // OPD_ANALYSIS_PROTOCOLMODEL_H
