//===- analysis/CostModel.cpp - Loop-nest and trace-cost analysis ------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "analysis/CostModel.h"

#include "lang/ConstEval.h"
#include "support/Casting.h"

using namespace opd;

namespace {

/// Computes statement costs for one method body against the current
/// method-summary table, optionally recording LoopCost entries.
class BodyCoster {
public:
  BodyCoster(const std::vector<Cost> &MethodCosts, uint32_t Method,
             std::vector<LoopCost> *LoopsOut)
      : MethodCosts(MethodCosts), Method(Method), LoopsOut(LoopsOut) {}

  Cost cost(const BlockStmt &B, uint32_t Depth = 0) {
    Cost Total;
    for (const std::unique_ptr<Stmt> &S : B.stmts())
      Total = Total.seq(costStmt(*S, Depth));
    return Total;
  }

private:
  Cost costStmt(const Stmt &S, uint32_t Depth) {
    switch (S.kind()) {
    case Stmt::Kind::Block:
      return cost(*cast<BlockStmt>(&S), Depth);

    case Stmt::Kind::Branch:
      // `flip` randomizes the taken bit, not the element count.
      return Cost::exactly(1);

    case Stmt::Kind::Loop: {
      const auto *Loop = cast<LoopStmt>(&S);
      Cost Body = cost(*Loop->body(), Depth + 1);
      std::optional<uint64_t> Trip;
      // Context-insensitive: parameters and loop variables are unknown,
      // so only closed `times` expressions fold.
      if (std::optional<int64_t> N = evaluateConstant(*Loop->count()))
        Trip = *N < 0 ? 0 : static_cast<uint64_t>(*N);
      Cost Total = Body.times(Trip);
      if (LoopsOut)
        LoopsOut->push_back({Loop, Method, Depth, Trip, Body, Total});
      return Total;
    }

    case Stmt::Kind::If: {
      const auto *If = cast<IfStmt>(&S);
      Cost Then = cost(*If->thenBlock(), Depth);
      Cost Else =
          If->elseBlock() ? cost(*If->elseBlock(), Depth) : Cost();
      // Degenerate probabilities pin the arm; anything else joins.
      Cost Arms = If->probability() >= 1.0  ? Then
                  : If->probability() <= 0.0 ? Else
                                             : Then.join(Else);
      return Cost::exactly(1).seq(Arms);
    }

    case Stmt::Kind::When: {
      const auto *When = cast<WhenStmt>(&S);
      Cost Then = cost(*When->thenBlock(), Depth);
      Cost Else =
          When->elseBlock() ? cost(*When->elseBlock(), Depth) : Cost();
      Cost Arms = Then.join(Else);
      if (std::optional<int64_t> C = evaluateConstant(*When->cond()))
        Arms = *C != 0 ? Then : Else;
      return Cost::exactly(1).seq(Arms);
    }

    case Stmt::Kind::Call:
      return MethodCosts[cast<CallStmt>(&S)->calleeIndex()];

    case Stmt::Kind::Pick: {
      const auto *Pick = cast<PickStmt>(&S);
      // `pick` emits no element itself; join over the reachable arms.
      Cost Arms;
      bool First = true;
      for (const PickStmt::Arm &Arm : Pick->arms()) {
        if (Arm.Weight == 0)
          continue;
        Cost C = cost(*Arm.Body, Depth);
        Arms = First ? C : Arms.join(C);
        First = false;
      }
      return Arms;
    }
    }
    return Cost();
  }

  const std::vector<Cost> &MethodCosts;
  uint32_t Method;
  std::vector<LoopCost> *LoopsOut;
};

} // namespace

CostAnalysis CostAnalysis::run(const Program &Prog,
                               const CallGraph &Graph) {
  CostAnalysis Result;
  size_t N = Prog.methods().size();
  Result.Entry = Prog.entryIndex() < N ? Prog.entryIndex() : 0;
  // Seed every summary at [0, unbounded): a sound starting point that
  // lets recursive SCCs iterate upward on Min.
  Result.MethodCosts.assign(N, Cost::atLeast(0));

  auto CostOfMethod = [&](uint32_t M) {
    return BodyCoster(Result.MethodCosts, M, nullptr)
        .cost(*Prog.methods()[M]->body());
  };

  // Summarize SCCs callees-first (CallGraph yields them in reverse
  // topological order).
  for (const std::vector<uint32_t> &Scc : Graph.sccs()) {
    bool IsCycle = Scc.size() > 1 || Graph.isRecursive(Scc.front());
    if (!IsCycle) {
      uint32_t M = Scc.front();
      Result.MethodCosts[M] = CostOfMethod(M);
      continue;
    }
    // Recursive component: Max is unbounded (termination depends on
    // runtime values), but Min converges — iterate it upward to a
    // fixpoint. Min strictly grows by at least 1 per productive round
    // and the round cap bounds pathological cases; stopping early only
    // weakens the lower bound, never soundness.
    const unsigned MaxRounds = 16;
    for (unsigned Round = 0; Round != MaxRounds; ++Round) {
      bool Changed = false;
      for (uint32_t M : Scc) {
        Cost New = Cost::atLeast(CostOfMethod(M).min());
        if (!(New == Result.MethodCosts[M])) {
          Result.MethodCosts[M] = New;
          Changed = true;
        }
      }
      if (!Changed)
        break;
    }
  }

  // Final pass: record per-loop bounds now that all summaries are final.
  for (uint32_t M = 0; M != N; ++M)
    BodyCoster(Result.MethodCosts, M, &Result.Loops)
        .cost(*Prog.methods()[M]->body());

  return Result;
}
