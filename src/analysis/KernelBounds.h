//===- analysis/KernelBounds.h - Kernel value-range certifier ---*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An interval-domain abstract interpreter over the window-kernel
/// dataflow (element ingest -> per-site count updates -> weighted or
/// unweighted min-sum delta -> threshold comparison). Given a
/// DetectorConfig and optional trace statistics it derives a sound upper
/// bound for every KernelQuantity the configured detector shape computes
/// and emits a KernelCertificate stating:
///
///  (a) whether any unsigned count, product, or accumulator can wrap
///      its storage width (uint32_t counts, uint64_t everything else);
///  (b) the minimal bit-width per quantity — rounded up to a machine
///      lane width, this is the SIMD lane plan for the future
///      structure-of-arrays batch kernels (the ROADMAP's top open item);
///  (c) whether the division-free threshold decision
///      (FastWeightedSetKernel::similarityAtLeast) is exact outright —
///      every integer fed to it below 2^53, so the double conversions
///      round nothing — or needs its margin-plus-exact-division
///      fallback, or does not apply because the analyzer consumes the
///      similarity quotient itself.
///
/// The abstract domain is intervals [0, Max] with Max in unsigned
/// 128-bit arithmetic (so a derived bound above 2^64 is representable,
/// not silently wrapped) plus an explicit "unbounded" top element for
/// the adaptive trailing window when no trace length is known.
///
/// The derivation mirrors the window invariants of WindowedModel /
/// FastWindowedModel:
///
///  * |CW| <= CWSize always (fill, slide-refill, and endPhase reseed
///    all keep CWLen <= Config.CWSize).
///  * Constant TW: |TW| <= TWSize. Adaptive TW: |TW| <= trace length
///    (it can hold at most every consumed element), unbounded when the
///    trace length is unknown.
///  * A per-site count never exceeds its window's length, nor the
///    site's total multiplicity in the trace when that is known.
///  * Distinct-site counters never exceed the window length or the
///    site-table size.
///  * ProductCWTW = cw[s]*|TW| <= CWCountMax*NTWMax, and symmetrically
///    for ProductTWCW; both factors are window-consistent at every
///    evaluation point, including the post-increment products the
///    fast-path deltas form.
///  * MinSum = sum_s min(cw[s]*|TW|, tw[s]*|CW|) <= sum_s cw[s]*|TW|
///    = |CW|*|TW| <= NCWMax*NTWMax.
///
/// Certificates gate the SIMD layer and are validated three ways (see
/// docs/ANALYSIS.md): the CheckedKernelArith shadow instrumentation in
/// core asserts observed runtime values stay within these intervals
/// across the full differential suite, adversarial boundary configs
/// prove the analyzer rejects what must be rejected, and
/// examples/kernel_check re-proves every sweep preset in ctest/CI.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_ANALYSIS_KERNELBOUNDS_H
#define OPD_ANALYSIS_KERNELBOUNDS_H

#include "core/DetectorConfig.h"
#include "core/FastDetector.h"
#include "lang/Diagnostics.h"

#include <array>
#include <string>

namespace opd {

/// Optional trace statistics tightening the certifier's intervals. A
/// zero field means "unknown": the certifier then uses the sound
/// worst case over all traces (for an adaptive TW with an unknown
/// trace length, that is the unbounded top element).
struct TraceBounds {
  /// Total profile elements in the trace (0 = unknown).
  uint64_t TraceLen = 0;
  /// Maximum occurrences of any single site (0 = unknown).
  uint64_t MaxMultiplicity = 0;
  /// Number of distinct sites (0 = unknown).
  SiteIndex NumSites = 0;
};

/// The certified interval [0, Max] of one KernelQuantity.
struct QuantityBound {
  /// The quantity this bound covers.
  KernelQuantity Quantity = KernelQuantity::CWCount;
  /// The configured shape's dataflow computes this quantity at all.
  /// Bounds for inapplicable quantities are zeroed and prove nothing.
  bool Applicable = false;
  /// A finite upper bound was derived. False only for TW-dependent
  /// quantities of an adaptive-TW config with no known trace length.
  bool Bounded = false;
  /// The upper bound, saturated at UINT64_MAX (Bits reports the true
  /// magnitude when the unsaturated bound needs more than 64 bits).
  uint64_t Max = 0;
  /// Minimal storage width: ceil(log2(Max+1)), computed on the
  /// unsaturated 128-bit bound (so values up to 128; 0 for an
  /// inapplicable or unbounded quantity).
  unsigned Bits = 0;
  /// The bound fits the quantity's declared storage (uint32_t for the
  /// per-site counts, uint64_t for everything else). False when
  /// !Bounded: what cannot be bounded cannot be certified to fit.
  bool FitsStorage = false;
};

/// How the threshold analyzer's decision relates to the division-free
/// integer comparison (certificate component (c)).
enum class ThresholdExactness : uint8_t {
  /// Every integer feeding the comparison is provably < 2^53: the
  /// double conversions are exact, so the decision needs neither the
  /// rounding margin nor the fallback division to be exact.
  ExactWithin53,
  /// Some integer may reach 2^53 (or is unbounded): the doubles may
  /// round and decisions near the threshold need the margin check and
  /// exact-division fallback (still bit-identical to the reference).
  MarginFallback,
  /// No division-free decision exists for this shape: the analyzer
  /// consumes the similarity quotient itself (Average/Hysteresis) or
  /// the model's similarity is inherently floating-point (ManhattanBBV).
  QuotientPath,
};

/// Stable mnemonic for \p E ("exact-53" / "margin-fallback" /
/// "quotient-path").
const char *thresholdExactnessName(ThresholdExactness E);

/// The certifier's verdict for one DetectorConfig (or, after
/// mergeCertificate, the worst case over a set of same-shape configs).
struct KernelCertificate {
  /// The certified configuration (the first merged one, for summaries).
  DetectorConfig Config;
  /// The trace statistics the intervals were tightened with.
  TraceBounds Stats;
  /// fastShapeIndex(Config): which of the NumFastShapes monomorphic
  /// instantiations this certificate gates.
  size_t Shape = 0;
  /// Number of configs merged into this certificate (1 after
  /// certifyKernel).
  size_t NumConfigs = 1;
  /// Per-quantity certified intervals, indexed by KernelQuantity.
  std::array<QuantityBound, NumKernelQuantities> Bounds{};
  /// Every applicable quantity is bounded and fits its storage: no
  /// unsigned wraparound anywhere in the kernel dataflow (certificate
  /// component (a)).
  bool NoWraparound = false;
  /// SIMD lane width (8/16/32/64 bits) covering every applicable
  /// per-site count quantity, or 0 when none is certifiable
  /// (certificate component (b)).
  unsigned CountLaneBits = 0;
  /// SIMD lane width (8/16/32/64 bits) covering every applicable
  /// uint64_t quantity (totals, distincts, products, accumulator), or
  /// 0 when one of them cannot be certified to fit 64 bits.
  unsigned ProductLaneBits = 0;
  /// Certificate component (c): the threshold-decision exactness.
  ThresholdExactness Exactness = ThresholdExactness::QuotientPath;

  /// The bound for \p Q.
  const QuantityBound &bound(KernelQuantity Q) const {
    return Bounds[static_cast<unsigned>(Q)];
  }
};

/// Runs the abstract interpreter for \p Config under \p Stats and
/// returns the certificate. Pure function of its arguments; sound for
/// every trace consistent with \p Stats (and for every trace at all
/// when \p Stats is default-constructed).
KernelCertificate certifyKernel(const DetectorConfig &Config,
                                const TraceBounds &Stats = TraceBounds());

/// Widens \p Into to also cover \p C (same shape required): per-quantity
/// interval join, conjunction of the wraparound claims, widest lanes,
/// weakest exactness. After folding every config of a sweep into one
/// certificate per shape, the 18 results are the lane-width plan the
/// SIMD layer must respect.
void mergeCertificate(KernelCertificate &Into, const KernelCertificate &C);

/// The admission check of the batch-kernel handshake (core/BatchKernel.h):
/// true iff \p Cert proves the configuration safe on the batch kernels'
/// compiled lane plan for its model — the certificate must rule out
/// wraparound everywhere, certify every per-site count into the plan's
/// count lanes, and (when the plan forms products) certify every
/// product/accumulator into the plan's product lanes. A refusing config
/// must run with FastDetectorBase::setBatchKernels(false); the sweep
/// harness applies the verdict to every detector it acquires.
bool admitsBatchLanes(const KernelCertificate &Cert);

/// Reports \p Cert's findings into \p Diags using the stable diagnostic
/// codes (kernel-count-overflow, kernel-product-overflow,
/// kernel-product-near-64bit, kernel-unbounded-tw — see
/// analysis/ConfigAnalysis.h for the catalogue). An error means the
/// config must not run on the current kernels; warnings flag configs
/// within 6 bits of the 64-bit cliff or with unprovable adaptive-TW
/// growth.
void lintCertificate(const KernelCertificate &Cert, DiagnosticEngine &Diags);

/// Renders one certificate as a JSON object (the kernel_check --json
/// payload): config description, shape, per-quantity bounds, the three
/// certificate components.
std::string renderCertificateJSON(const KernelCertificate &Cert);

} // namespace opd

#endif // OPD_ANALYSIS_KERNELBOUNDS_H
