//===- analysis/StaticPhasePredictor.h - Static phase prediction -*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Predicts a program's oracle phases before a single element is
/// interpreted. The paper's baseline needs a full dynamic call-loop trace
/// (Section 3.1); much of that trace is already determined by the AST, so
/// the predictor *statically simulates* the program — a deterministic
/// mirror of vm/Interpreter that evaluates constant expressions, iterates
/// loops with known trip counts, and resolves calls, but draws no random
/// numbers — emitting a synthetic CallLoopTrace in predicted element
/// offsets. The existing oracle pipeline (InstanceTree + computeBaseline)
/// then runs unchanged on the predicted trace, so phase selection
/// (chaining, innermost-first, MPL) matches the dynamic baseline by
/// construction.
///
/// Probabilistic and statically unknown constructs force approximations,
/// each counted in ApproxDecisions and clearing Exact:
///
///  - `if p` with 0 < p < 1 follows the more probable arm,
///  - `pick` follows the heaviest arm,
///  - `when` with a statically unknown condition follows the then arm,
///  - a loop with an unknown trip count simulates zero iterations,
///  - `branch flip` stays exact (the element count never varies).
///
/// On a fully deterministic workload the predicted trace equals the real
/// one element-for-element and the prediction scores ~1.0 against the
/// dynamic oracle; every approximation degrades alignment smoothly.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_ANALYSIS_STATICPHASEPREDICTOR_H
#define OPD_ANALYSIS_STATICPHASEPREDICTOR_H

#include "baseline/BaselineSolution.h"
#include "lang/AST.h"
#include "metrics/Scoring.h"
#include "trace/CallLoopTrace.h"
#include "trace/StateSequence.h"

#include <cstdint>
#include <vector>

namespace opd {

/// Budgets for the static simulation. The defaults comfortably cover the
/// bundled workloads while bounding adversarial inputs.
struct PredictorOptions {
  /// Stop simulating after this many predicted elements.
  uint64_t MaxElements = 16u * 1000 * 1000;
  /// Stop descending past this simulated call depth.
  uint32_t MaxCallDepth = 1024;
};

/// The outcome of one static simulation.
struct StaticPrediction {
  /// Synthetic call-loop trace in predicted element offsets.
  CallLoopTrace Trace;
  /// Predicted branch-trace length.
  uint64_t PredictedElements = 0;
  /// Number of constructs resolved approximately (probabilistic arms,
  /// unknown conditions or trip counts).
  uint64_t ApproxDecisions = 0;
  /// True when the simulation hit MaxElements or MaxCallDepth.
  bool Truncated = false;
  /// True when no approximations were taken and no budget was hit: the
  /// predicted trace provably equals every dynamic run's trace.
  bool Exact = true;
};

/// Statically simulates \p Prog (must have passed Sema).
StaticPrediction simulateProgram(const Program &Prog,
                                 const PredictorOptions &Options = {});

/// Runs the oracle (baseline/BaselineSolution.h) over the predicted trace
/// for minimum phase length \p MPL, yielding predicted phase intervals in
/// predicted element offsets.
std::vector<PhaseInterval> predictPhases(const StaticPrediction &Prediction,
                                         uint64_t MPL);

/// Scores predicted phases against a dynamic oracle solution with the
/// paper's accuracy metric. Predicted intervals are clamped to the
/// oracle's trace length (a prediction can over- or under-shoot the real
/// element count).
AccuracyScore scorePrediction(const std::vector<PhaseInterval> &Predicted,
                              const BaselineSolution &Oracle);

} // namespace opd

#endif // OPD_ANALYSIS_STATICPHASEPREDICTOR_H
