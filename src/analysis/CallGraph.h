//===- analysis/CallGraph.h - Static call graph over JP programs -*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static call graph of a Sema-checked JP program: one node per
/// method, one edge per distinct (caller, callee) pair with every call
/// site recorded. On top of the raw edges the graph computes the three
/// facts the rest of src/analysis consumes:
///
///  - reachability from `main` (dead-method detection),
///  - strongly connected components via Tarjan's algorithm, in reverse
///    topological order (the cost analysis processes callees first), and
///  - recursion cycles: any method in a nontrivial SCC, or with a
///    self-edge, is recursive. An edge is *unconditional* when the call
///    site is nested under no `if`/`when`/`pick` arm and every enclosing
///    loop has a statically positive trip count; a recursion cycle made
///    entirely of unconditional edges can never terminate, which Lint
///    reports as a hard error.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_ANALYSIS_CALLGRAPH_H
#define OPD_ANALYSIS_CALLGRAPH_H

#include "lang/AST.h"

#include <cstdint>
#include <vector>

namespace opd {

/// One static call site: the AST statement plus its conditionality.
struct CallSite {
  const CallStmt *Stmt;
  uint32_t Caller;
  uint32_t Callee;
  /// True when the site executes on every invocation of the caller: it is
  /// nested under no `if`/`when`/`pick` arm, and every enclosing loop has
  /// a constant trip count >= 1.
  bool Unconditional;
};

/// The static call graph of one Sema-checked program.
class CallGraph {
public:
  /// Builds the graph for \p Prog (must have passed Sema).
  static CallGraph build(const Program &Prog);

  /// Number of methods (graph nodes).
  size_t numMethods() const { return Callees.size(); }

  /// Deduplicated callee indices of method \p Method, in first-call order.
  const std::vector<uint32_t> &callees(uint32_t Method) const {
    return Callees[Method];
  }

  /// Every call site, in AST order.
  const std::vector<CallSite> &callSites() const { return Sites; }

  /// True if \p Method is reachable from `main` through any call chain.
  bool isReachable(uint32_t Method) const { return Reachable[Method]; }

  /// True if \p Method can re-enter itself: it sits in a nontrivial SCC
  /// or has a self-edge.
  bool isRecursive(uint32_t Method) const { return Recursive[Method]; }

  /// True if \p Method sits on a recursion cycle made entirely of
  /// unconditional calls — invoking it can never terminate.
  bool isUnconditionallyRecursive(uint32_t Method) const {
    return UnconditionallyRecursive[Method];
  }

  /// SCC id of \p Method. Ids are assigned in reverse topological order:
  /// if A calls B and they are in different SCCs, sccId(B) < sccId(A).
  uint32_t sccId(uint32_t Method) const { return SccIds[Method]; }

  /// The SCCs in reverse topological order (callees before callers).
  /// Members are method indices.
  const std::vector<std::vector<uint32_t>> &sccs() const { return Sccs; }

private:
  std::vector<std::vector<uint32_t>> Callees;
  std::vector<CallSite> Sites;
  std::vector<bool> Reachable;
  std::vector<bool> Recursive;
  std::vector<bool> UnconditionallyRecursive;
  std::vector<uint32_t> SccIds;
  std::vector<std::vector<uint32_t>> Sccs;
};

} // namespace opd

#endif // OPD_ANALYSIS_CALLGRAPH_H
