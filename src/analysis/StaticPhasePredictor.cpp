//===- analysis/StaticPhasePredictor.cpp - Static phase prediction -----------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "analysis/StaticPhasePredictor.h"

#include "baseline/InstanceTree.h"
#include "lang/ConstEval.h"
#include "support/Casting.h"

#include <algorithm>

using namespace opd;

namespace {

/// Deterministic mirror of vm/Interpreter over partial (optional-valued)
/// frames. Structure intentionally parallels Interpreter::execStmt so the
/// two stay easy to diff.
class StaticSimulator {
public:
  StaticSimulator(const Program &Prog, const PredictorOptions &Options)
      : Prog(Prog), Options(Options) {}

  StaticPrediction run() {
    assert(Prog.entryIndex() != ~0u && "program has not been through Sema");
    invoke(Prog.entryIndex(), {});
    if (Result.Truncated || Result.ApproxDecisions > 0)
      Result.Exact = false;
    return std::move(Result);
  }

private:
  /// One simulated activation record; unknown slots hold nullopt.
  struct Frame {
    ConstEnv Slots;
  };

  bool halted() const { return Result.Truncated; }

  void approximate() {
    ++Result.ApproxDecisions;
  }

  void emitElement() {
    ++Result.PredictedElements;
    if (Result.PredictedElements >= Options.MaxElements)
      Result.Truncated = true;
  }

  std::optional<int64_t> eval(const Expr &E) {
    return evaluateConstant(E, &Stack.back().Slots);
  }

  void invoke(uint32_t MethodIndex, ConstEnv Args) {
    const MethodDecl &M = *Prog.methods()[MethodIndex];
    if (Stack.size() >= Options.MaxCallDepth) {
      Result.Truncated = true;
      return;
    }
    Result.Trace.append(CallLoopEventKind::MethodEnter, MethodIndex,
                        Result.PredictedElements);
    Args.resize(M.numSlots()); // loop-variable slots start unknown
    Stack.push_back({std::move(Args)});
    execBlock(*M.body());
    Stack.pop_back();
    Result.Trace.append(CallLoopEventKind::MethodExit, MethodIndex,
                        Result.PredictedElements);
  }

  void execBlock(const BlockStmt &B) {
    for (const std::unique_ptr<Stmt> &S : B.stmts()) {
      if (halted())
        return;
      execStmt(*S);
    }
  }

  void execStmt(const Stmt &S) {
    switch (S.kind()) {
    case Stmt::Kind::Block:
      execBlock(*cast<BlockStmt>(&S));
      return;

    case Stmt::Kind::Loop: {
      const auto *Loop = cast<LoopStmt>(&S);
      std::optional<int64_t> Count = eval(*Loop->count());
      if (!Count)
        approximate(); // unknown trip count: simulate zero iterations
      int64_t Trips = Count && *Count > 0 ? *Count : 0;
      Result.Trace.append(CallLoopEventKind::LoopEnter, Loop->loopId(),
                          Result.PredictedElements);
      for (int64_t I = 0; I != Trips && !halted(); ++I) {
        if (Loop->hasVar())
          Stack.back().Slots[Loop->varSlot()] = I;
        execBlock(*Loop->body());
      }
      Result.Trace.append(CallLoopEventKind::LoopExit, Loop->loopId(),
                          Result.PredictedElements);
      return;
    }

    case Stmt::Kind::Branch:
      // `flip` randomizes the taken bit only; one element either way.
      emitElement();
      return;

    case Stmt::Kind::If: {
      const auto *If = cast<IfStmt>(&S);
      emitElement();
      if (halted())
        return;
      bool TakeThen = If->probability() >= 0.5;
      if (If->probability() > 0.0 && If->probability() < 1.0)
        approximate(); // follow the more probable arm
      if (TakeThen)
        execBlock(*If->thenBlock());
      else if (If->elseBlock())
        execBlock(*If->elseBlock());
      return;
    }

    case Stmt::Kind::When: {
      const auto *When = cast<WhenStmt>(&S);
      std::optional<int64_t> Cond = eval(*When->cond());
      emitElement();
      if (halted())
        return;
      if (!Cond)
        approximate(); // unknown condition: follow the then arm
      bool TakeThen = !Cond || *Cond != 0;
      if (TakeThen)
        execBlock(*When->thenBlock());
      else if (When->elseBlock())
        execBlock(*When->elseBlock());
      return;
    }

    case Stmt::Kind::Call: {
      const auto *Call = cast<CallStmt>(&S);
      ConstEnv Args;
      Args.reserve(Call->args().size());
      for (const std::unique_ptr<Expr> &Arg : Call->args())
        Args.push_back(eval(*Arg));
      invoke(Call->calleeIndex(), std::move(Args));
      return;
    }

    case Stmt::Kind::Pick: {
      const auto *Pick = cast<PickStmt>(&S);
      // Follow the heaviest arm (first among ties).
      const PickStmt::Arm *Best = nullptr;
      for (const PickStmt::Arm &Arm : Pick->arms())
        if (!Best || Arm.Weight > Best->Weight)
          Best = &Arm;
      if (Pick->arms().size() > 1)
        approximate();
      if (Best)
        execBlock(*Best->Body);
      return;
    }
    }
  }

  const Program &Prog;
  const PredictorOptions &Options;
  StaticPrediction Result;
  std::vector<Frame> Stack;
};

} // namespace

StaticPrediction opd::simulateProgram(const Program &Prog,
                                      const PredictorOptions &Options) {
  return StaticSimulator(Prog, Options).run();
}

std::vector<PhaseInterval> opd::predictPhases(
    const StaticPrediction &Prediction, uint64_t MPL) {
  InstanceTree Tree =
      InstanceTree::build(Prediction.Trace, Prediction.PredictedElements);
  return computeBaseline(Tree, MPL).phases();
}

AccuracyScore opd::scorePrediction(
    const std::vector<PhaseInterval> &Predicted,
    const BaselineSolution &Oracle) {
  uint64_t Total = Oracle.totalElements();
  std::vector<PhaseInterval> Clamped;
  Clamped.reserve(Predicted.size());
  for (PhaseInterval P : Predicted) {
    P.End = std::min(P.End, Total);
    if (P.Begin < P.End)
      Clamped.push_back(P);
  }
  StateSequence PredictedStates =
      StateSequence::fromPhases(Clamped, Total);
  return scoreDetection(PredictedStates, Oracle.states());
}
