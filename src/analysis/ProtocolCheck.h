//===- analysis/ProtocolCheck.h - Explicit-state protocol checker -*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An explicit-state model checker for the serve-protocol model
/// (analysis/ProtocolModel.h). `exploreProtocol` exhaustively enumerates
/// the reachable product of protocol state x buffer occupancy x
/// read-pause flag x terminal error code under the serving I/O
/// discipline, recording a shortest witness event path to every
/// configuration. `checkProtocolModel` proves the protocol invariants on
/// top of the exploration and reports violations as stable-coded
/// diagnostics (docs/ANALYSIS.md documents the catalogue):
///
///   code                  severity  meaning
///   --------------------- --------  ----------------------------------
///   missing-transition    error     some (state, event, occupancy) has
///                                   no applicable rule (the transition
///                                   function is not total)
///   ambiguous-transition  error     more than one rule applies
///   malformed-rule        error     a rule violates table well-
///                                   formedness (e.g. an error code on a
///                                   non-failing transition)
///   unreachable-state     error     a lifecycle state or session-level
///                                   error code is never reached
///   stuck-state           error     a reachable non-terminal config has
///                                   no offered path to a terminal
///   unbounded-drain       error     Evict/Drain does not close the
///                                   session in one step, or a draining
///                                   session needs more than
///                                   ceil(occ/Batch)+1 pumps to finish
///   watermark-violation   error     occupancy or the read-pause
///                                   hysteresis breaks the backpressure
///                                   discipline
///   buffer-leak           error     a terminal configuration retains
///                                   buffered elements
///
//===----------------------------------------------------------------------===//

#ifndef OPD_ANALYSIS_PROTOCOLCHECK_H
#define OPD_ANALYSIS_PROTOCOLCHECK_H

#include "analysis/ProtocolModel.h"
#include "lang/Diagnostics.h"

#include <cstdint>
#include <vector>

namespace opd {

/// One step of a witness path: the event applied and, for ElementsOk,
/// the element count it carried.
struct ProtoStep {
  ProtoEvent Event;
  uint32_t Count = 0;
};

/// One explored edge of the reachable configuration graph.
struct ProtoEdge {
  uint32_t From = 0; ///< Index into ProtoExploration::States.
  uint32_t To = 0;   ///< Index into ProtoExploration::States.
  ProtoStep Step;
  /// Elements decided (streamed through the detector) by this edge.
  uint32_t Decided = 0;
  /// The table rule that fired (pointer into the model's rules();
  /// invalidated by table mutation).
  const TransitionRule *Rule = nullptr;
};

/// The reachable configuration graph of one model instance.
struct ProtoExploration {
  /// Every reachable configuration, in BFS discovery order; index 0 is
  /// the initial configuration.
  std::vector<ProtoConfigState> States;
  /// Every explored edge between reachable configurations.
  std::vector<ProtoEdge> Edges;
  /// Witness[i] is a shortest event path from the initial configuration
  /// to States[i].
  std::vector<std::vector<ProtoStep>> Witness;
  /// True when exploration aborted (missing or ambiguous transition);
  /// the graph is then partial and invariant checks on it are skipped.
  bool Complete = true;
};

/// Knobs for `checkProtocolModel`.
struct ProtocolCheckOptions {
  /// Fault injection: offer client-frame events even while the read is
  /// paused, simulating a server that keeps reading a saturated
  /// session. The watermark invariant must then fail — the negative
  /// test that proves the backpressure discipline is load-bearing.
  bool SimulateReadWhileSaturated = false;
};

/// Exhaustively explores the reachable configurations of \p M under the
/// serving I/O discipline (or the faulted discipline from \p Options).
/// ElementsOk is expanded once per element count in
/// [1, MaxFrameElements]. On a missing or ambiguous transition the
/// exploration marks itself incomplete and stops expanding that edge.
ProtoExploration exploreProtocol(const ProtocolModel &M,
                                 const ProtocolCheckOptions &Options = {});

/// Renders a witness path as "event(count) -> event -> ..." for
/// diagnostics.
std::string renderWitness(const std::vector<ProtoStep> &Path);

/// Proves the protocol invariants of \p M, recording violations in
/// \p Diags. Returns the exploration so callers (the conformance layer,
/// serve_check --json) can reuse the graph without re-exploring.
ProtoExploration checkProtocolModel(const ProtocolModel &M,
                                    const ProtocolCheckOptions &Options,
                                    DiagnosticEngine &Diags);

} // namespace opd

#endif // OPD_ANALYSIS_PROTOCOLCHECK_H
