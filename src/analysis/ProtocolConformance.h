//===- analysis/ProtocolConformance.h - Model-vs-reality diffs --*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three conformance directions that pin the protocol model
/// (analysis/ProtocolModel.h) to reality:
///
///   * `checkImplConformance` drives a real ServeSession along every
///     edge of the explored model graph — encoding each classified event
///     as actual wire bytes (or the matching pump/shutdown call) — and
///     diffs the observed lifecycle state, error code, buffer occupancy,
///     processed-element count, emitted frames, and backpressure
///     predicates against the model's prediction at every step.
///   * `checkDocConformance` parses the normative tables of
///     docs/SERVING.md (frame kinds, error codes, lifecycle states,
///     frame legality by state) and diffs them against the model's
///     catalogues.
///   * `fuzzProtocolConformance` runs model-guided adversarial
///     schedules: random interleavings of well-formed and malformed
///     frames, pumps with and without budgets, watermark crossings, and
///     eviction/drain, under randomized batch/watermark/frame-size
///     parameters and detector shapes, with the model as the
///     control-plane oracle and offline runDetector() as the data-plane
///     oracle for sessions that complete.
///
/// Diagnostic codes (all Error severity; docs/ANALYSIS.md):
///
///   impl-divergence   ServeSession disagrees with the model
///   doc-divergence    docs/SERVING.md disagrees with the model
///   doc-parse         a normative doc table is missing or malformed
///   fuzz-divergence   an adversarial schedule exposed a disagreement
///
//===----------------------------------------------------------------------===//

#ifndef OPD_ANALYSIS_PROTOCOLCONFORMANCE_H
#define OPD_ANALYSIS_PROTOCOLCONFORMANCE_H

#include "analysis/ProtocolCheck.h"
#include "lang/Diagnostics.h"

#include <string>

namespace opd {

/// Replays every edge of \p M's explored graph on a real ServeSession
/// and records any divergence in \p Diags (code `impl-divergence`).
/// Reporting stops after a bounded number of divergences; the first ones
/// pinpoint the defect and the rest are echoes.
void checkImplConformance(const ProtocolModel &M, DiagnosticEngine &Diags);

/// Parses the normative tables of \p DocText (the contents of
/// docs/SERVING.md) and diffs them against \p M's catalogues, recording
/// `doc-divergence` / `doc-parse` findings in \p Diags. Diagnostic
/// locations carry the 1-based line number within \p DocText.
void checkDocConformance(const ProtocolModel &M, const std::string &DocText,
                         DiagnosticEngine &Diags);

/// Knobs for the model-guided fuzz pass.
struct ProtocolFuzzOptions {
  /// PRNG seed; a fixed seed makes a CI run reproducible.
  uint64_t Seed = 1;
  /// Number of independent random sessions to run.
  unsigned Iterations = 200;
  /// Event budget per session (sessions also stop at a terminal state).
  unsigned MaxSteps = 96;
};

/// Runs \p Options.Iterations random sessions in model/implementation
/// lockstep, recording any disagreement in \p Diags (code
/// `fuzz-divergence`). Each finding names the seed, iteration, and event
/// schedule prefix so it can be replayed.
void fuzzProtocolConformance(const ProtocolFuzzOptions &Options,
                             DiagnosticEngine &Diags);

} // namespace opd

#endif // OPD_ANALYSIS_PROTOCOLCONFORMANCE_H
