//===- analysis/ConfigCanon.cpp - Detector-config canonicalizer -------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "analysis/ConfigCanon.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>

using namespace opd;

const char *opd::mergeRuleName(MergeRule Rule) {
  switch (Rule) {
  case MergeRule::IdenticalConfig:
    return "identical-config";
  case MergeRule::DeadResizeConstantTW:
    return "dead-resize-constant-tw";
  case MergeRule::DeadAnchorUnanchored:
    return "dead-anchor-unanchored";
  case MergeRule::SaturatedAnalyzerAlwaysP:
    return "saturated-analyzer-always-p";
  case MergeRule::DeadModelSaturated:
    return "dead-model-saturated";
  case MergeRule::DeadPolicySaturated:
    return "dead-policy-saturated";
  case MergeRule::DeadWindowSplitSaturated:
    return "dead-window-split-saturated";
  case MergeRule::UnsatisfiableAnalyzerAlwaysT:
    return "unsatisfiable-analyzer-always-t";
  case MergeRule::DeadConfigUnsatisfiable:
    return "dead-config-unsatisfiable";
  }
  return "unknown";
}

const char *opd::mergeRuleJustification(MergeRule Rule) {
  switch (Rule) {
  case MergeRule::IdenticalConfig:
    return "the enumerated points are field-wise equal before any rewrite";
  case MergeRule::DeadResizeConstantTW:
    return "the resize policy is read only inside startPhase() under the "
           "Adaptive TW policy; a Constant TW never resizes";
  case MergeRule::DeadAnchorUnanchored:
    return "under a Constant TW the anchor policy influences only the "
           "anchor-corrected phase starts, which are not being scored";
  case MergeRule::SaturatedAnalyzerAlwaysP:
    return "the analyzer provably maps every similarity in [0, 1] to P, "
           "so any always-P analyzer yields the same state sequence";
  case MergeRule::DeadModelSaturated:
    return "under an always-P analyzer the similarity value is never "
           "compared, and anchoring reads only occupancy counts that "
           "every model maintains identically";
  case MergeRule::DeadPolicySaturated:
    return "under an always-P analyzer the single phase start anchors "
           "before any resize and no phase ever ends, so the TW policy "
           "cannot affect any output";
  case MergeRule::DeadWindowSplitSaturated:
    return "under an always-P analyzer the flip to P happens at the "
           "first batch boundary with CW+TW elements consumed; only the "
           "sum matters when anchors are not being scored";
  case MergeRule::UnsatisfiableAnalyzerAlwaysT:
    return "the analyzer provably maps every similarity in [0, 1] to T, "
           "so no phase ever starts and the output is all-T";
  case MergeRule::DeadConfigUnsatisfiable:
    return "under an always-T analyzer the all-T, phase-free output is "
           "independent of every other parameter";
  }
  return "unknown";
}

AnalyzerRange opd::classifyAnalyzer(AnalyzerKind Kind, double Param) {
  switch (Kind) {
  case AnalyzerKind::Threshold:
    // Similarity is in [0, 1] and the comparison is >=.
    if (Param <= 0.0)
      return AnalyzerRange::AlwaysInPhase;
    if (Param > 1.0)
      return AnalyzerRange::AlwaysTransition;
    return AnalyzerRange::Normal;
  case AnalyzerKind::Average:
    // The decision threshold is mean - delta with mean in [0, 1]; a
    // delta >= 1 drives it to <= 0 for every reachable mean, and the
    // statistics-free first evaluation enters optimistically, so the
    // analyzer can never report T. It can never be always-T: the
    // optimistic first evaluation always reports P.
    if (Param >= 1.0)
      return AnalyzerRange::AlwaysInPhase;
    return AnalyzerRange::Normal;
  case AnalyzerKind::Hysteresis:
    // makeAnalyzer() derives exit = max(0, enter - 0.15). enter == 0
    // means entry is unconditional and exit (= 0) is unreachable from
    // below; enter > 1 means entry is unreachable. A negative enter is
    // unconstructible (the derived exit would exceed it) — classified
    // Normal so no merge is claimed; the lint reports it as an error.
    if (Param == 0.0)
      return AnalyzerRange::AlwaysInPhase;
    if (Param > 1.0)
      return AnalyzerRange::AlwaysTransition;
    return AnalyzerRange::Normal;
  }
  return AnalyzerRange::Normal;
}

CanonResult opd::canonicalizeConfig(const DetectorConfig &Config,
                                    const ConfigCanonOptions &Options) {
  CanonResult Result;
  Result.Canonical = Config;
  DetectorConfig &C = Result.Canonical;
  auto apply = [&](MergeRule Rule) { Result.Applied.push_back(Rule); };

  AnalyzerRange Range = classifyAnalyzer(Config.TheAnalyzer,
                                         Config.AnalyzerParam);

  if (Range == AnalyzerRange::AlwaysTransition) {
    // The output is all-T of trace length whatever the rest of the
    // configuration says; collapse to one canonical point.
    if (C.TheAnalyzer != AnalyzerKind::Threshold || C.AnalyzerParam != 2.0) {
      C.TheAnalyzer = AnalyzerKind::Threshold;
      C.AnalyzerParam = 2.0;
      apply(MergeRule::UnsatisfiableAnalyzerAlwaysT);
    }
    WindowConfig W;
    W.CWSize = 1;
    W.TWSize = 1;
    W.SkipFactor = 1;
    W.TWPolicy = TWPolicyKind::Constant;
    W.Anchor = AnchorKind::RightmostNoisy;
    W.Resize = ResizeKind::Slide;
    if (C.Window != W || C.Model != ModelKind::UnweightedSet) {
      C.Window = W;
      C.Model = ModelKind::UnweightedSet;
      apply(MergeRule::DeadConfigUnsatisfiable);
    }
    return Result;
  }

  if (Range == AnalyzerRange::AlwaysInPhase) {
    if (C.TheAnalyzer != AnalyzerKind::Threshold || C.AnalyzerParam != 0.0) {
      C.TheAnalyzer = AnalyzerKind::Threshold;
      C.AnalyzerParam = 0.0;
      apply(MergeRule::SaturatedAnalyzerAlwaysP);
    }
    if (C.Model != ModelKind::UnweightedSet) {
      C.Model = ModelKind::UnweightedSet;
      apply(MergeRule::DeadModelSaturated);
    }
    if (C.Window.TWPolicy != TWPolicyKind::Constant) {
      C.Window.TWPolicy = TWPolicyKind::Constant;
      apply(MergeRule::DeadPolicySaturated);
    }
    if (!Options.AnchoredScoring) {
      // Only CW+TW gates the single T->P flip; normalize the split to
      // (sum - 1, 1) when the sum stays representable.
      uint64_t Sum = static_cast<uint64_t>(C.Window.CWSize) +
                     static_cast<uint64_t>(C.Window.TWSize);
      uint64_t CanonCW = Sum - 1;
      if (CanonCW <= std::numeric_limits<uint32_t>::max() &&
          (C.Window.CWSize != CanonCW || C.Window.TWSize != 1)) {
        C.Window.CWSize = static_cast<uint32_t>(CanonCW);
        C.Window.TWSize = 1;
        apply(MergeRule::DeadWindowSplitSaturated);
      }
    }
  }

  if (C.Window.TWPolicy == TWPolicyKind::Constant) {
    if (C.Window.Resize != ResizeKind::Slide) {
      C.Window.Resize = ResizeKind::Slide;
      apply(MergeRule::DeadResizeConstantTW);
    }
    if (!Options.AnchoredScoring &&
        C.Window.Anchor != AnchorKind::RightmostNoisy) {
      C.Window.Anchor = AnchorKind::RightmostNoisy;
      apply(MergeRule::DeadAnchorUnanchored);
    }
  }

  return Result;
}

std::string opd::configKey(const DetectorConfig &Config) {
  uint64_t ParamBits = 0;
  static_assert(sizeof(ParamBits) == sizeof(Config.AnalyzerParam),
                "double must be 64-bit for the bit-pattern key");
  std::memcpy(&ParamBits, &Config.AnalyzerParam, sizeof(ParamBits));

  char Buf[128];
  std::snprintf(Buf, sizeof(Buf), "%u/%u/%u/%u/%u/%u|%u|%u/%016llx",
                Config.Window.CWSize, Config.Window.TWSize,
                Config.Window.SkipFactor,
                static_cast<unsigned>(Config.Window.TWPolicy),
                static_cast<unsigned>(Config.Window.Anchor),
                static_cast<unsigned>(Config.Window.Resize),
                static_cast<unsigned>(Config.Model),
                static_cast<unsigned>(Config.TheAnalyzer),
                static_cast<unsigned long long>(ParamBits));
  return Buf;
}
