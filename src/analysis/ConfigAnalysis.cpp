//===- analysis/ConfigAnalysis.cpp - Config-space static analyzer -----------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "analysis/ConfigAnalysis.h"

#include "analysis/KernelBounds.h"
#include "core/SharedScan.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>
#include <map>
#include <set>

using namespace opd;

namespace {

/// All merge rules, in enum order (for rule-count tables).
constexpr MergeRule AllRules[] = {
    MergeRule::IdenticalConfig,
    MergeRule::DeadResizeConstantTW,
    MergeRule::DeadAnchorUnanchored,
    MergeRule::SaturatedAnalyzerAlwaysP,
    MergeRule::DeadModelSaturated,
    MergeRule::DeadPolicySaturated,
    MergeRule::DeadWindowSplitSaturated,
    MergeRule::UnsatisfiableAnalyzerAlwaysT,
    MergeRule::DeadConfigUnsatisfiable,
};
constexpr size_t NumRules = sizeof(AllRules) / sizeof(AllRules[0]);

/// Spec-level diagnostics have no source text to point at.
constexpr SourceLoc SpecLoc{0, 0};

std::string formatParam(double Param) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%g", Param);
  return Buf;
}

/// The analyzer-dimension checks shared by lintConfig and lintSweepSpec.
void lintAnalyzer(AnalyzerKind Kind, double Param, DiagnosticEngine &Diags) {
  std::string Desc =
      std::string(analyzerKindName(Kind)) + " " + formatParam(Param);
  switch (classifyAnalyzer(Kind, Param)) {
  case AnalyzerRange::AlwaysInPhase:
    Diags.report(DiagSeverity::Warning, SpecLoc, "analyzer-always-inphase",
                 "analyzer '" + Desc +
                     "' reports P for every similarity value; the detector "
                     "degenerates to one unbounded phase");
    return;
  case AnalyzerRange::AlwaysTransition:
    Diags.report(DiagSeverity::Warning, SpecLoc, "analyzer-always-transition",
                 "analyzer '" + Desc +
                     "' reports T for every similarity value; no phase can "
                     "ever start");
    return;
  case AnalyzerRange::Normal:
    break;
  }
  if (Kind == AnalyzerKind::Threshold && Param == 1.0)
    Diags.report(DiagSeverity::Note, SpecLoc, "threshold-knife-edge",
                 "threshold 1 accepts only exact window equality; any noise "
                 "keeps the detector in T");
  if (Kind == AnalyzerKind::Average && Param <= 0.0)
    Diags.report(DiagSeverity::Note, SpecLoc, "average-nonpositive-delta",
                 "average delta " + formatParam(Param) +
                     " demands at-or-above-average similarity; phases end on "
                     "any dip");
  if (Kind == AnalyzerKind::Hysteresis && Param > 0.0 && Param <= 0.15)
    Diags.report(DiagSeverity::Warning, SpecLoc, "hysteresis-no-exit",
                 "hysteresis enter threshold " + formatParam(Param) +
                     " derives an exit threshold of 0; a phase, once "
                     "entered, never ends");
  if (Kind == AnalyzerKind::Hysteresis && Param < 0.0)
    Diags.report(DiagSeverity::Error, SpecLoc, "invalid-analyzer-param",
                 "hysteresis enter threshold " + formatParam(Param) +
                     " is negative; the derived exit threshold (0) would "
                     "exceed it and the analyzer cannot be constructed");
}

/// The KernelBounds-backed checks shared by lintConfig and
/// lintSweepSpec: provable count/product wraparound (errors) and
/// products within a few bits of the 64-bit cliff (warning). The
/// kernel-unbounded-tw finding is filtered out here — an adaptive TW
/// with no known trace length proves nothing either way, and
/// kernel_check owns that conversation.
void lintKernelBounds(const DetectorConfig &Config, uint64_t TraceLen,
                      DiagnosticEngine &Diags) {
  TraceBounds Stats;
  Stats.TraceLen = TraceLen;
  DiagnosticEngine Local;
  lintCertificate(certifyKernel(Config, Stats), Local);
  for (const Diagnostic &D : Local.diagnostics())
    if (D.Code != "kernel-unbounded-tw")
      Diags.report(D.Severity, D.Loc, D.Code, D.Message);
}

} // namespace

void opd::lintConfig(const DetectorConfig &Config,
                     const ConfigLintOptions &Options,
                     DiagnosticEngine &Diags) {
  const WindowConfig &W = Config.Window;
  if (W.CWSize == 0 || W.TWSize == 0 || W.SkipFactor == 0)
    Diags.report(DiagSeverity::Error, SpecLoc, "empty-window",
                 "window configuration " + std::to_string(W.CWSize) + "/" +
                     std::to_string(W.TWSize) + "/skip " +
                     std::to_string(W.SkipFactor) +
                     " has an empty window or skip; the detector cannot be "
                     "constructed");

  lintAnalyzer(Config.TheAnalyzer, Config.AnalyzerParam, Diags);

  if (W.SkipFactor > W.CWSize && W.CWSize > 0)
    Diags.report(DiagSeverity::Warning, SpecLoc, "skip-exceeds-cw",
                 "skip factor " + std::to_string(W.SkipFactor) +
                     " exceeds the CW size " + std::to_string(W.CWSize) +
                     "; whole windows pass between evaluations");

  if (Options.TraceLen > 0) {
    uint64_t Need = static_cast<uint64_t>(W.CWSize) + W.TWSize;
    if (Need > Options.TraceLen)
      Diags.report(DiagSeverity::Warning, SpecLoc, "window-exceeds-trace",
                   "CW+TW (" + std::to_string(Need) +
                       ") exceeds the trace length (" +
                       std::to_string(Options.TraceLen) +
                       "); the windows never fill and the output is all-T");
    if (W.SkipFactor > Options.TraceLen)
      Diags.report(DiagSeverity::Warning, SpecLoc, "skip-exceeds-trace",
                   "skip factor " + std::to_string(W.SkipFactor) +
                       " exceeds the trace length (" +
                       std::to_string(Options.TraceLen) +
                       "); the detector never evaluates");
  }

  lintKernelBounds(Config, Options.TraceLen, Diags);
}

void opd::lintSweepSpec(const SweepSpec &Spec, const ConfigLintOptions &Options,
                        DiagnosticEngine &Diags) {
  // Dimension-level checks first, in declaration order.
  auto checkEmpty = [&](bool Empty, const char *Name) {
    if (Empty)
      Diags.report(DiagSeverity::Error, SpecLoc, "empty-dimension",
                   std::string("dimension '") + Name +
                       "' is empty; the cross product enumerates no "
                       "configurations");
  };
  checkEmpty(Spec.CWSizes.empty(), "CWSizes");
  checkEmpty(Spec.TWFactors.empty(), "TWFactors");
  checkEmpty(Spec.SkipFactors.empty(), "SkipFactors");
  if (Spec.TWPolicies.empty()) {
    if (Spec.IncludeFixedInterval)
      Diags.report(DiagSeverity::Warning, SpecLoc, "empty-dimension",
                   "dimension 'TWPolicies' is empty; only the Fixed-Interval "
                   "points will be enumerated");
    else
      checkEmpty(true, "TWPolicies");
  }
  checkEmpty(Spec.Models.empty(), "Models");
  checkEmpty(Spec.Analyzers.empty(), "Analyzers");
  checkEmpty(Spec.Anchors.empty(), "Anchors");
  checkEmpty(Spec.Resizes.empty(), "Resizes");

  auto checkZero = [&](const std::vector<uint32_t> &Values,
                       const char *Name) {
    for (uint32_t V : Values)
      if (V == 0)
        Diags.report(DiagSeverity::Error, SpecLoc, "empty-window",
                     std::string("dimension '") + Name +
                         "' contains 0; every derived window or skip is "
                         "empty and the detector cannot be constructed");
  };
  checkZero(Spec.CWSizes, "CWSizes");
  checkZero(Spec.TWFactors, "TWFactors");
  checkZero(Spec.SkipFactors, "SkipFactors");

  auto checkDuplicates = [&](const std::vector<uint32_t> &Values,
                             const char *Name) {
    std::set<uint32_t> Seen, Reported;
    for (uint32_t V : Values)
      if (!Seen.insert(V).second && Reported.insert(V).second)
        Diags.report(DiagSeverity::Warning, SpecLoc,
                     "duplicate-dimension-value",
                     std::string("dimension '") + Name + "' lists " +
                         std::to_string(V) +
                         " more than once; duplicate points inflate the "
                         "sweep");
  };
  checkDuplicates(Spec.CWSizes, "CWSizes");
  checkDuplicates(Spec.TWFactors, "TWFactors");
  checkDuplicates(Spec.SkipFactors, "SkipFactors");
  {
    std::set<std::pair<uint8_t, uint64_t>> Seen, Reported;
    for (const AnalyzerSpec &A : Spec.Analyzers) {
      uint64_t Bits = 0;
      std::memcpy(&Bits, &A.Param, sizeof(Bits));
      std::pair<uint8_t, uint64_t> Key{static_cast<uint8_t>(A.Kind), Bits};
      if (!Seen.insert(Key).second && Reported.insert(Key).second)
        Diags.report(DiagSeverity::Warning, SpecLoc,
                     "duplicate-dimension-value",
                     std::string("dimension 'Analyzers' lists ") +
                         analyzerKindName(A.Kind) + " " +
                         formatParam(A.Param) +
                         " more than once; duplicate points inflate the "
                         "sweep");
    }
  }

  // Per-value checks, once per offending value.
  for (const AnalyzerSpec &A : Spec.Analyzers)
    lintAnalyzer(A.Kind, A.Param, Diags);

  uint32_t MinCW = 0;
  for (uint32_t CW : Spec.CWSizes)
    if (CW > 0 && (MinCW == 0 || CW < MinCW))
      MinCW = CW;
  if (MinCW > 0)
    for (uint32_t Skip : Spec.SkipFactors)
      if (Skip > MinCW)
        Diags.report(DiagSeverity::Warning, SpecLoc, "skip-exceeds-cw",
                     "skip factor " + std::to_string(Skip) +
                         " exceeds the smallest CW size " +
                         std::to_string(MinCW) +
                         "; whole windows pass between evaluations");

  if (Options.TraceLen > 0) {
    for (uint32_t CW : Spec.CWSizes)
      for (uint32_t Factor : Spec.TWFactors) {
        uint64_t Need = static_cast<uint64_t>(CW) +
                        static_cast<uint64_t>(CW) * Factor;
        if (Need > Options.TraceLen)
          Diags.report(DiagSeverity::Warning, SpecLoc, "window-exceeds-trace",
                       "CW " + std::to_string(CW) + " with TW factor " +
                           std::to_string(Factor) + " needs " +
                           std::to_string(Need) +
                           " elements but the trace has " +
                           std::to_string(Options.TraceLen) +
                           "; the windows never fill");
      }
    for (uint32_t Skip : Spec.SkipFactors)
      if (Skip > Options.TraceLen)
        Diags.report(DiagSeverity::Warning, SpecLoc, "skip-exceeds-trace",
                     "skip factor " + std::to_string(Skip) +
                         " exceeds the trace length (" +
                         std::to_string(Options.TraceLen) +
                         "); the detector never evaluates");
  }

  // Kernel value-range checks, once per (CW, factor, policy) cell: the
  // bounds are analyzer- and skip-independent, and the weighted model
  // dominates the others (it alone forms the cross products), so one
  // weighted probe per cell covers the whole cell.
  {
    ModelKind Probe = std::find(Spec.Models.begin(), Spec.Models.end(),
                                ModelKind::WeightedSet) != Spec.Models.end()
                          ? ModelKind::WeightedSet
                          : (Spec.Models.empty() ? ModelKind::UnweightedSet
                                                 : Spec.Models.front());
    std::vector<TWPolicyKind> Policies = Spec.TWPolicies;
    if (Spec.IncludeFixedInterval &&
        std::find(Policies.begin(), Policies.end(), TWPolicyKind::Constant) ==
            Policies.end())
      Policies.push_back(TWPolicyKind::Constant);
    for (uint32_t CW : Spec.CWSizes)
      for (uint32_t Factor : Spec.TWFactors) {
        if (CW == 0 || Factor == 0)
          continue;
        for (TWPolicyKind Policy : Policies) {
          DetectorConfig C;
          C.Window.CWSize = CW;
          C.Window.TWSize = static_cast<uint32_t>(std::min<uint64_t>(
              static_cast<uint64_t>(CW) * Factor,
              std::numeric_limits<uint32_t>::max()));
          C.Window.TWPolicy = Policy;
          C.Model = Probe;
          lintKernelBounds(C, Options.TraceLen, Diags);
        }
      }
  }

  if (Spec.IncludeFixedInterval &&
      std::find(Spec.TWPolicies.begin(), Spec.TWPolicies.end(),
                TWPolicyKind::Constant) != Spec.TWPolicies.end())
    for (uint32_t CW : Spec.CWSizes)
      if (std::find(Spec.SkipFactors.begin(), Spec.SkipFactors.end(), CW) !=
          Spec.SkipFactors.end())
        Diags.report(DiagSeverity::Note, SpecLoc, "fixed-interval-overlap",
                     "the Fixed-Interval point at CW " + std::to_string(CW) +
                         " duplicates the enumerated Constant point with "
                         "skip factor " +
                         std::to_string(CW));
}

ConfigPartition
opd::partitionConfigs(const std::vector<DetectorConfig> &Configs,
                      const ConfigCanonOptions &Options) {
  ConfigPartition Partition;
  Partition.ClassOf.resize(Configs.size());

  std::map<std::string, size_t> ClassIndex;
  for (size_t I = 0; I < Configs.size(); ++I) {
    CanonResult Canon = canonicalizeConfig(Configs[I], Options);
    std::string Key = configKey(Canon.Canonical);
    auto [It, Inserted] =
        ClassIndex.emplace(std::move(Key), Partition.Classes.size());
    if (Inserted) {
      ConfigClass Class;
      Class.Representative = I;
      Class.Canonical = Canon.Canonical;
      Partition.Classes.push_back(std::move(Class));
    }
    ConfigClass &Class = Partition.Classes[It->second];
    Class.Members.push_back(I);
    for (MergeRule Rule : Canon.Applied)
      if (std::find(Class.Rules.begin(), Class.Rules.end(), Rule) ==
          Class.Rules.end())
        Class.Rules.push_back(Rule);
    Partition.ClassOf[I] = It->second;
  }

  for (ConfigClass &Class : Partition.Classes)
    if (Class.Members.size() > 1 && Class.Rules.empty())
      Class.Rules.push_back(MergeRule::IdenticalConfig);
  return Partition;
}

SweepAnalysis opd::analyzeSweep(const SweepSpec &Spec,
                                const SweepAnalysisOptions &Options) {
  SweepAnalysis Analysis;
  Analysis.Configs = Options.RawCrossProduct ? enumerateCrossProduct(Spec)
                                             : enumerateConfigs(Spec);
  Analysis.Partition = partitionConfigs(Analysis.Configs, Options.Canon);
  Analysis.NumConfigs = Analysis.Configs.size();
  Analysis.NumClasses = Analysis.Partition.Classes.size();
  Analysis.RunsPruned = Analysis.NumConfigs - Analysis.NumClasses;
  Analysis.ClassesByRule.assign(NumRules, 0);
  for (const ConfigClass &Class : Analysis.Partition.Classes)
    for (MergeRule Rule : Class.Rules)
      Analysis.ClassesByRule[static_cast<size_t>(Rule)] += 1;
  // The shared-scan plan covers what a pruned sweep actually runs: one
  // representative per class.
  std::vector<DetectorConfig> Representatives;
  Representatives.reserve(Analysis.Partition.Classes.size());
  for (const ConfigClass &Class : Analysis.Partition.Classes)
    Representatives.push_back(Analysis.Configs[Class.Representative]);
  SharedScanPlan Plan = planSharedScan(Representatives);
  Analysis.NumSharedGroups = Plan.Groups.size();
  Analysis.LargestSharedGroup = Plan.largestGroup();
  return Analysis;
}

Table opd::sweepPlanTable(const SweepAnalysis &Analysis,
                          const std::string &Title) {
  Table T(Title);
  T.setHeader({"rule", "classes", "justification"});
  T.setAlign(2, Table::AlignKind::Left);
  for (size_t R = 0; R < NumRules; ++R) {
    size_t Count = R < Analysis.ClassesByRule.size()
                       ? Analysis.ClassesByRule[R]
                       : 0;
    if (Count == 0)
      continue;
    T.addRow({mergeRuleName(AllRules[R]), std::to_string(Count),
              mergeRuleJustification(AllRules[R])});
  }
  T.addSeparator();
  double Pct = Analysis.NumConfigs > 0
                   ? 100.0 * static_cast<double>(Analysis.RunsPruned) /
                         static_cast<double>(Analysis.NumConfigs)
                   : 0.0;
  char Summary[64];
  std::snprintf(Summary, sizeof(Summary), "%zu of %zu runs (%.1f%%)",
                Analysis.RunsPruned, Analysis.NumConfigs, Pct);
  T.addRow({"pruned", Summary, ""});
  std::snprintf(Summary, sizeof(Summary), "%zu passes (largest %zu)",
                Analysis.NumSharedGroups, Analysis.LargestSharedGroup);
  T.addRow({"shared-scan groups", Summary,
            "one trace pass per window-kernel shape"});
  return T;
}

std::string opd::renderSweepAnalysisJSON(const SweepAnalysis &Analysis,
                                         const std::string &SpecName) {
  std::string Out = "{\n";
  Out += "  \"spec\": \"" + SpecName + "\",\n";
  Out += "  \"configs\": " + std::to_string(Analysis.NumConfigs) + ",\n";
  Out += "  \"classes\": " + std::to_string(Analysis.NumClasses) + ",\n";
  Out += "  \"pruned\": " + std::to_string(Analysis.RunsPruned) + ",\n";
  double Pct = Analysis.NumConfigs > 0
                   ? 100.0 * static_cast<double>(Analysis.RunsPruned) /
                         static_cast<double>(Analysis.NumConfigs)
                   : 0.0;
  char PctBuf[16];
  std::snprintf(PctBuf, sizeof(PctBuf), "%.1f", Pct);
  Out += std::string("  \"pruned_pct\": ") + PctBuf + ",\n";
  Out += "  \"shared_groups\": " + std::to_string(Analysis.NumSharedGroups) +
         ",\n";
  Out += "  \"largest_shared_group\": " +
         std::to_string(Analysis.LargestSharedGroup) + ",\n";
  Out += "  \"rules\": [";
  bool First = true;
  for (size_t R = 0; R < NumRules; ++R) {
    size_t Count = R < Analysis.ClassesByRule.size()
                       ? Analysis.ClassesByRule[R]
                       : 0;
    if (Count == 0)
      continue;
    if (!First)
      Out += ",";
    First = false;
    Out += "\n    {\"rule\": \"";
    Out += mergeRuleName(AllRules[R]);
    Out += "\", \"classes\": " + std::to_string(Count) +
           ", \"justification\": \"";
    Out += mergeRuleJustification(AllRules[R]);
    Out += "\"}";
  }
  Out += First ? "]\n" : "\n  ]\n";
  Out += "}\n";
  return Out;
}
