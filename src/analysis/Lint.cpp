//===- analysis/Lint.cpp - Static defect checks for JP workloads -------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "analysis/Lint.h"

#include "analysis/CallGraph.h"
#include "analysis/CostModel.h"
#include "lang/ConstEval.h"
#include "support/Casting.h"
#include "support/Format.h"

#include <algorithm>
#include <cstdio>

using namespace opd;

namespace {

/// Walks one method body flagging arms that can never execute.
class ArmChecker {
public:
  ArmChecker(DiagnosticEngine &Diags) : Diags(Diags) {}

  void walk(const BlockStmt &B) {
    for (const std::unique_ptr<Stmt> &S : B.stmts())
      walkStmt(*S);
  }

private:
  void walkStmt(const Stmt &S) {
    switch (S.kind()) {
    case Stmt::Kind::Block:
      walk(*cast<BlockStmt>(&S));
      return;
    case Stmt::Kind::Loop:
      walk(*cast<LoopStmt>(&S)->body());
      return;
    case Stmt::Kind::If: {
      const auto *If = cast<IfStmt>(&S);
      if (If->probability() <= 0.0)
        Diags.report(DiagSeverity::Warning, If->loc(), "unreachable-arm",
                     "'if 0' never takes its then arm");
      else if (If->probability() >= 1.0 && If->elseBlock())
        Diags.report(DiagSeverity::Warning, If->loc(), "unreachable-arm",
                     "'if 1' never takes its else arm");
      walk(*If->thenBlock());
      if (If->elseBlock())
        walk(*If->elseBlock());
      return;
    }
    case Stmt::Kind::When: {
      const auto *When = cast<WhenStmt>(&S);
      // Context-insensitive: only closed conditions fold. Loop variables
      // and parameters stay unknown, so `when (pass % 2 == 0)` is fine.
      if (std::optional<int64_t> C = evaluateConstant(*When->cond())) {
        bool True = *C != 0;
        if (!True)
          Diags.report(DiagSeverity::Warning, When->loc(),
                       "unreachable-arm",
                       "'when' condition is always false; the then arm "
                       "is unreachable");
        else if (When->elseBlock())
          Diags.report(DiagSeverity::Warning, When->loc(),
                       "unreachable-arm",
                       "'when' condition is always true; the else arm "
                       "is unreachable");
        else
          Diags.report(DiagSeverity::Note, When->loc(),
                       "constant-condition",
                       "'when' condition is constant; the branch site "
                       "is never biased");
      }
      walk(*When->thenBlock());
      if (When->elseBlock())
        walk(*When->elseBlock());
      return;
    }
    case Stmt::Kind::Pick:
      for (const PickStmt::Arm &Arm : cast<PickStmt>(&S)->arms())
        walk(*Arm.Body);
      return;
    case Stmt::Kind::Call:
    case Stmt::Kind::Branch:
      return;
    }
  }

  DiagnosticEngine &Diags;
};

/// Human-readable cycle description "a -> b -> a" for an SCC.
std::string describeCycle(const Program &Prog,
                          const std::vector<uint32_t> &Members) {
  std::string Out;
  for (uint32_t M : Members) {
    Out += Prog.methods()[M]->name();
    Out += " -> ";
  }
  Out += Prog.methods()[Members.front()]->name();
  return Out;
}

} // namespace

void opd::lintProgram(const Program &Prog, const LintOptions &Options,
                      DiagnosticEngine &Diags) {
  CallGraph Graph = CallGraph::build(Prog);
  CostAnalysis Costs = CostAnalysis::run(Prog, Graph);

  // Dead methods (the entry method is live by definition).
  for (uint32_t M = 0; M != Prog.methods().size(); ++M) {
    const MethodDecl &Method = *Prog.methods()[M];
    if (M != Prog.entryIndex() && !Graph.isReachable(M))
      Diags.report(DiagSeverity::Warning, Method.loc(), "dead-method",
                   "method '" + Method.name() +
                       "' is never called from 'main'");
  }

  // Unreachable arms and constant conditions.
  for (const std::unique_ptr<MethodDecl> &M : Prog.methods())
    ArmChecker(Diags).walk(*M->body());

  // Recursion: unconditional cycles are fatal; intentional recursion is
  // worth a note (one per cycle, anchored at its first member).
  std::vector<bool> CycleReported(Graph.sccs().size(), false);
  for (uint32_t M = 0; M != Prog.methods().size(); ++M) {
    if (!Graph.isRecursive(M))
      continue;
    const MethodDecl &Method = *Prog.methods()[M];
    if (Graph.isUnconditionallyRecursive(M)) {
      Diags.report(DiagSeverity::Error, Method.loc(), "infinite-recursion",
                   "method '" + Method.name() +
                       "' recurses unconditionally and can never return");
      continue;
    }
    uint32_t Scc = Graph.sccId(M);
    if (CycleReported[Scc])
      continue;
    CycleReported[Scc] = true;
    const std::vector<uint32_t> &Members = Graph.sccs()[Scc];
    std::string Cycle = Members.size() > 1
                            ? describeCycle(Prog, Members)
                            : Method.name() + " -> " + Method.name();
    Diags.report(DiagSeverity::Note, Method.loc(), "recursion-cycle",
                 "recursion cycle: " + Cycle +
                     " (deep recursion inflates the call-loop trace)");
  }

  // Loop budgets and short phases.
  for (const LoopCost &L : Costs.loops()) {
    if (!Graph.isReachable(L.Method))
      continue;
    if (L.Total.min() >= Options.ElementBudget) {
      Diags.report(
          DiagSeverity::Error, L.Loop->loc(), "unbounded-loop",
          "loop statically emits at least " + formatCount(L.Total.min()) +
              " elements, exceeding the trace budget of " +
              formatCount(Options.ElementBudget));
      continue;
    }
    // A top-level loop of the entry method executes exactly once, so it
    // cannot chain with a sibling instance of itself; if its whole
    // execution is shorter than the MPL it can never become a phase.
    if (Options.MPL > 0 && L.Method == Prog.entryIndex() &&
        L.Depth == 0 && L.Total.bounded() && L.Total.max() > 0 &&
        L.Total.max() < Options.MPL)
      Diags.report(
          DiagSeverity::Warning, L.Loop->loc(), "short-phase",
          "loop emits at most " + formatCount(L.Total.max()) +
              " elements, shorter than the minimum phase length " +
              formatCount(Options.MPL) +
              "; the oracle can never select it as a phase");
  }
}

std::string opd::renderDiagnosticsJSON(const DiagnosticEngine &Diags,
                                       const std::string &FileName) {
  auto Escape = [](const std::string &Text) {
    std::string Out;
    Out.reserve(Text.size());
    for (char C : Text) {
      switch (C) {
      case '"':
        Out += "\\\"";
        break;
      case '\\':
        Out += "\\\\";
        break;
      case '\n':
        Out += "\\n";
        break;
      case '\t':
        Out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(C) < 0x20) {
          char Buf[8];
          std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
          Out += Buf;
        } else {
          Out += C;
        }
      }
    }
    return Out;
  };

  uint64_t Errors = 0, Warnings = 0, Notes = 0;
  std::string Out = "{\n  \"file\": \"" + Escape(FileName) +
                    "\",\n  \"diagnostics\": [";
  bool First = true;
  for (const Diagnostic &D : Diags.diagnostics()) {
    switch (D.Severity) {
    case DiagSeverity::Error:
      ++Errors;
      break;
    case DiagSeverity::Warning:
      ++Warnings;
      break;
    case DiagSeverity::Note:
      ++Notes;
      break;
    }
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "    {\"line\": " + std::to_string(D.Loc.Line) +
           ", \"col\": " + std::to_string(D.Loc.Col) + ", \"severity\": \"" +
           severityName(D.Severity) + "\", \"code\": \"" + Escape(D.Code) +
           "\", \"message\": \"" + Escape(D.Message) + "\"}";
  }
  Out += First ? "],\n" : "\n  ],\n";
  Out += "  \"errors\": " + std::to_string(Errors) +
         ",\n  \"warnings\": " + std::to_string(Warnings) +
         ",\n  \"notes\": " + std::to_string(Notes) + "\n}\n";
  return Out;
}

int opd::exitCodeForSeverity(DiagSeverity Severity, bool AnyDiagnostics) {
  if (!AnyDiagnostics)
    return 0;
  switch (Severity) {
  case DiagSeverity::Error:
    return 2;
  case DiagSeverity::Warning:
    return 1;
  case DiagSeverity::Note:
    return 0;
  }
  return 0;
}
