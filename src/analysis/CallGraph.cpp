//===- analysis/CallGraph.cpp - Static call graph over JP programs -----------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"

#include "lang/ConstEval.h"
#include "support/Casting.h"

#include <algorithm>

using namespace opd;

namespace {

/// Collects call sites with their conditionality in one AST walk.
class SiteCollector {
public:
  SiteCollector(uint32_t Caller, std::vector<CallSite> &Sites)
      : Caller(Caller), Sites(Sites) {}

  void walk(const BlockStmt &B) { walkBlock(B, /*Unconditional=*/true); }

private:
  void walkBlock(const BlockStmt &B, bool Unconditional) {
    for (const std::unique_ptr<Stmt> &S : B.stmts())
      walkStmt(*S, Unconditional);
  }

  void walkStmt(const Stmt &S, bool Unconditional) {
    switch (S.kind()) {
    case Stmt::Kind::Block:
      walkBlock(*cast<BlockStmt>(&S), Unconditional);
      return;
    case Stmt::Kind::Loop: {
      const auto *Loop = cast<LoopStmt>(&S);
      // The body runs unconditionally only when the trip count is a
      // compile-time constant >= 1.
      std::optional<int64_t> Count = evaluateConstant(*Loop->count());
      walkBlock(*Loop->body(), Unconditional && Count && *Count >= 1);
      return;
    }
    case Stmt::Kind::If: {
      const auto *If = cast<IfStmt>(&S);
      walkBlock(*If->thenBlock(), false);
      if (If->elseBlock())
        walkBlock(*If->elseBlock(), false);
      return;
    }
    case Stmt::Kind::When: {
      const auto *When = cast<WhenStmt>(&S);
      walkBlock(*When->thenBlock(), false);
      if (When->elseBlock())
        walkBlock(*When->elseBlock(), false);
      return;
    }
    case Stmt::Kind::Call: {
      const auto *Call = cast<CallStmt>(&S);
      Sites.push_back(
          {Call, Caller, Call->calleeIndex(), Unconditional});
      return;
    }
    case Stmt::Kind::Pick:
      for (const PickStmt::Arm &Arm : cast<PickStmt>(&S)->arms())
        walkBlock(*Arm.Body, false);
      return;
    case Stmt::Kind::Branch:
      return;
    }
  }

  uint32_t Caller;
  std::vector<CallSite> &Sites;
};

/// Iterative Tarjan SCC state for one node.
struct TarjanNode {
  uint32_t Index = ~0u;
  uint32_t LowLink = ~0u;
  bool OnStack = false;
};

} // namespace

CallGraph CallGraph::build(const Program &Prog) {
  CallGraph G;
  size_t N = Prog.methods().size();
  G.Callees.resize(N);
  G.Reachable.assign(N, false);
  G.Recursive.assign(N, false);
  G.UnconditionallyRecursive.assign(N, false);
  G.SccIds.assign(N, ~0u);

  for (uint32_t M = 0; M != N; ++M)
    SiteCollector(M, G.Sites).walk(*Prog.methods()[M]->body());

  for (const CallSite &Site : G.Sites) {
    std::vector<uint32_t> &Out = G.Callees[Site.Caller];
    if (std::find(Out.begin(), Out.end(), Site.Callee) == Out.end())
      Out.push_back(Site.Callee);
  }

  // Reachability from the entry method (DFS over deduplicated edges).
  if (Prog.entryIndex() < N) {
    std::vector<uint32_t> Work = {Prog.entryIndex()};
    G.Reachable[Prog.entryIndex()] = true;
    while (!Work.empty()) {
      uint32_t M = Work.back();
      Work.pop_back();
      for (uint32_t Callee : G.Callees[M])
        if (!G.Reachable[Callee]) {
          G.Reachable[Callee] = true;
          Work.push_back(Callee);
        }
    }
  }

  // Tarjan's SCC algorithm, iterative to keep deep call chains off the C++
  // stack. Components complete in reverse topological order.
  std::vector<TarjanNode> Nodes(N);
  std::vector<uint32_t> Stack;
  uint32_t NextIndex = 0;
  struct DfsFrame {
    uint32_t Node;
    size_t NextCallee;
  };
  for (uint32_t Root = 0; Root != N; ++Root) {
    if (Nodes[Root].Index != ~0u)
      continue;
    std::vector<DfsFrame> Dfs = {{Root, 0}};
    Nodes[Root].Index = Nodes[Root].LowLink = NextIndex++;
    Nodes[Root].OnStack = true;
    Stack.push_back(Root);
    while (!Dfs.empty()) {
      DfsFrame &Frame = Dfs.back();
      const std::vector<uint32_t> &Out = G.Callees[Frame.Node];
      if (Frame.NextCallee < Out.size()) {
        uint32_t Callee = Out[Frame.NextCallee++];
        if (Nodes[Callee].Index == ~0u) {
          Nodes[Callee].Index = Nodes[Callee].LowLink = NextIndex++;
          Nodes[Callee].OnStack = true;
          Stack.push_back(Callee);
          Dfs.push_back({Callee, 0});
        } else if (Nodes[Callee].OnStack) {
          Nodes[Frame.Node].LowLink =
              std::min(Nodes[Frame.Node].LowLink, Nodes[Callee].Index);
        }
        continue;
      }
      uint32_t Done = Frame.Node;
      Dfs.pop_back();
      if (!Dfs.empty())
        Nodes[Dfs.back().Node].LowLink =
            std::min(Nodes[Dfs.back().Node].LowLink, Nodes[Done].LowLink);
      if (Nodes[Done].LowLink == Nodes[Done].Index) {
        std::vector<uint32_t> Component;
        uint32_t Member;
        do {
          Member = Stack.back();
          Stack.pop_back();
          Nodes[Member].OnStack = false;
          G.SccIds[Member] = static_cast<uint32_t>(G.Sccs.size());
          Component.push_back(Member);
        } while (Member != Done);
        std::sort(Component.begin(), Component.end());
        G.Sccs.push_back(std::move(Component));
      }
    }
  }

  // Recursive methods: nontrivial SCC membership or a self-edge.
  for (uint32_t M = 0; M != N; ++M) {
    bool SelfEdge = std::find(G.Callees[M].begin(), G.Callees[M].end(),
                              M) != G.Callees[M].end();
    G.Recursive[M] = SelfEdge || G.Sccs[G.SccIds[M]].size() > 1;
  }

  // Unconditional recursion: restrict the graph to unconditional edges
  // within each recursive SCC and re-run the cycle test. A method on such
  // a cycle re-enters itself on every invocation.
  std::vector<std::vector<uint32_t>> UncondEdges(N);
  for (const CallSite &Site : G.Sites)
    if (Site.Unconditional &&
        G.SccIds[Site.Caller] == G.SccIds[Site.Callee])
      UncondEdges[Site.Caller].push_back(Site.Callee);
  for (uint32_t M = 0; M != N; ++M) {
    if (!G.Recursive[M])
      continue;
    // DFS from M over unconditional same-SCC edges looking for a cycle
    // back to M. SCCs are small; the quadratic scan is fine.
    std::vector<bool> Seen(N, false);
    std::vector<uint32_t> Work = UncondEdges[M];
    bool Cycles = false;
    while (!Work.empty() && !Cycles) {
      uint32_t Next = Work.back();
      Work.pop_back();
      if (Next == M) {
        Cycles = true;
        break;
      }
      if (Seen[Next])
        continue;
      Seen[Next] = true;
      for (uint32_t Callee : UncondEdges[Next])
        Work.push_back(Callee);
    }
    G.UnconditionallyRecursive[M] = Cycles;
  }

  return G;
}
