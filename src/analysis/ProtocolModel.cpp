//===- analysis/ProtocolModel.cpp - Serve-protocol state machine ------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "analysis/ProtocolModel.h"

using namespace opd;

namespace {

/// Shorthand for a transition into Failed: emits Error \p Code and drops
/// the backlog (ServeSession::fail clears Pending so a flush-then-close
/// connection pins no element memory).
TransitionRule failRule(ProtoState From, ProtoEvent Ev, ServeError Code,
                        const char *Note) {
  TransitionRule R;
  R.From = From;
  R.Event = Ev;
  R.To = ProtoState::Failed;
  R.Err = Code;
  R.Occ = OccEffect::Clear;
  R.Note = Note;
  return R;
}

/// Shorthand for a self-loop that changes nothing (terminal absorption,
/// no-op pumps).
TransitionRule noopRule(ProtoState St, ProtoEvent Ev, const char *Note) {
  TransitionRule R;
  R.From = St;
  R.Event = Ev;
  R.To = St;
  R.Note = Note;
  return R;
}

} // namespace

ProtocolModel::ProtocolModel(ProtocolParams P) : Params(P) {
  const ProtoState AH = ProtoState::AwaitHello;
  const ProtoState SG = ProtoState::Streaming;
  const ProtoState DR = ProtoState::Draining;

  //===--------------------------------------------------------------------===//
  // AwaitHello: only Hello is legal. ServeSession::handleFrame checks the
  // state before it parses a payload, so a malformed Elements frame here
  // is still bad-state, not bad-frame.
  //===--------------------------------------------------------------------===//
  {
    TransitionRule R;
    R.From = AH;
    R.Event = ProtoEvent::HelloOk;
    R.To = SG;
    R.EmitHelloAck = true;
    R.Note = "handshake accepted: HelloAck, detector acquired";
    Rules.push_back(R);
  }
  Rules.push_back(failRule(AH, ProtoEvent::HelloBadMagic,
                           ServeError::BadMagic, "wrong handshake magic"));
  Rules.push_back(failRule(AH, ProtoEvent::HelloBadVersion,
                           ServeError::BadVersion,
                           "unsupported protocol version"));
  Rules.push_back(failRule(AH, ProtoEvent::HelloBadConfig,
                           ServeError::BadConfig,
                           "config rejected by ServeLimits validation"));
  Rules.push_back(failRule(AH, ProtoEvent::HelloMalformed,
                           ServeError::BadFrame,
                           "structurally malformed handshake payload"));
  for (ProtoEvent Ev :
       {ProtoEvent::ElementsOk, ProtoEvent::ElementsMalformed,
        ProtoEvent::ElementsOutOfRange})
    Rules.push_back(failRule(AH, Ev, ServeError::BadState,
                             "elements before handshake (state checked "
                             "before payload)"));
  for (ProtoEvent Ev : {ProtoEvent::FinishOk, ProtoEvent::FinishPayload})
    Rules.push_back(
        failRule(AH, Ev, ServeError::BadState, "finish before handshake"));

  //===--------------------------------------------------------------------===//
  // Streaming: Elements buffer, Finish transitions to Draining, a second
  // Hello is bad-state.
  //===--------------------------------------------------------------------===//
  for (ProtoEvent Ev :
       {ProtoEvent::HelloOk, ProtoEvent::HelloBadMagic,
        ProtoEvent::HelloBadVersion, ProtoEvent::HelloBadConfig,
        ProtoEvent::HelloMalformed})
    Rules.push_back(failRule(SG, Ev, ServeError::BadState,
                             "duplicate handshake (state checked before "
                             "payload)"));
  {
    TransitionRule R;
    R.From = SG;
    R.Event = ProtoEvent::ElementsOk;
    R.To = SG;
    R.Occ = OccEffect::Ingest;
    R.Note = "elements buffered; decisions wait for a pump";
    Rules.push_back(R);
  }
  Rules.push_back(failRule(SG, ProtoEvent::ElementsMalformed,
                           ServeError::BadFrame,
                           "elements payload fails its parser"));
  Rules.push_back(failRule(SG, ProtoEvent::ElementsOutOfRange,
                           ServeError::SiteRange,
                           "element outside the declared site space"));
  {
    TransitionRule R;
    R.From = SG;
    R.Event = ProtoEvent::FinishOk;
    R.To = DR;
    R.Note = "end of stream declared; tail decided on a later pump";
    Rules.push_back(R);
  }
  Rules.push_back(failRule(SG, ProtoEvent::FinishPayload,
                           ServeError::BadFrame,
                           "finish frame carries a payload"));

  //===--------------------------------------------------------------------===//
  // Draining: every further client frame is a protocol error; pumps
  // decide the backlog and finally the sub-batch tail.
  //===--------------------------------------------------------------------===//
  for (ProtoEvent Ev :
       {ProtoEvent::HelloOk, ProtoEvent::HelloBadMagic,
        ProtoEvent::HelloBadVersion, ProtoEvent::HelloBadConfig,
        ProtoEvent::HelloMalformed})
    Rules.push_back(
        failRule(DR, Ev, ServeError::BadState, "handshake after finish"));
  for (ProtoEvent Ev :
       {ProtoEvent::ElementsOk, ProtoEvent::ElementsMalformed,
        ProtoEvent::ElementsOutOfRange})
    Rules.push_back(
        failRule(DR, Ev, ServeError::BadState, "elements after finish"));
  for (ProtoEvent Ev : {ProtoEvent::FinishOk, ProtoEvent::FinishPayload})
    Rules.push_back(
        failRule(DR, Ev, ServeError::BadState, "duplicate finish"));

  //===--------------------------------------------------------------------===//
  // Illegal kinds and framing corruption: identical outcome in every
  // live state.
  //===--------------------------------------------------------------------===//
  for (ProtoState St : {AH, SG, DR}) {
    Rules.push_back(failRule(St, ProtoEvent::ServerKindFrame,
                             ServeError::BadFrame,
                             "server-to-client kind from client"));
    Rules.push_back(failRule(St, ProtoEvent::UnknownKindFrame,
                             ServeError::BadFrame, "unknown frame kind"));
    Rules.push_back(failRule(St, ProtoEvent::CorruptZeroLen,
                             ServeError::BadFrame,
                             "zero-length frame (sticky corruption)"));
    Rules.push_back(failRule(St, ProtoEvent::CorruptOversized,
                             ServeError::Oversized,
                             "length prefix above MaxFrameLen"));
  }

  //===--------------------------------------------------------------------===//
  // Pumps. AwaitHello has nothing to decide. Streaming decides full
  // batches only. Draining additionally decides the sub-batch tail and
  // completes once the backlog holds less than one batch.
  //===--------------------------------------------------------------------===//
  Rules.push_back(noopRule(AH, ProtoEvent::PumpOne, "nothing to decide"));
  Rules.push_back(noopRule(AH, ProtoEvent::PumpAll, "nothing to decide"));
  {
    TransitionRule R;
    R.From = SG;
    R.Event = ProtoEvent::PumpOne;
    R.Guard = OccGuard::GeBatch;
    R.To = SG;
    R.Occ = OccEffect::DecideOne;
    R.MayEmitTransitions = true;
    R.MayEmitProgress = true;
    R.Note = "one full batch decided (budget-limited pump)";
    Rules.push_back(R);
  }
  {
    TransitionRule R = noopRule(SG, ProtoEvent::PumpOne,
                                "sub-batch backlog: nothing decidable");
    R.Guard = OccGuard::LtBatch;
    R.MayEmitProgress = true;
    Rules.push_back(R);
  }
  {
    TransitionRule R;
    R.From = SG;
    R.Event = ProtoEvent::PumpAll;
    R.To = SG;
    R.Occ = OccEffect::DecideFull;
    R.MayEmitTransitions = true;
    R.MayEmitProgress = true;
    R.Note = "every full batch decided; tail awaits Finish";
    Rules.push_back(R);
  }
  {
    TransitionRule R;
    R.From = DR;
    R.Event = ProtoEvent::PumpOne;
    R.Guard = OccGuard::GeBatch;
    R.To = DR;
    R.Occ = OccEffect::DecideOne;
    R.MayEmitTransitions = true;
    R.MayEmitProgress = true;
    R.Note = "budget exhausted before the tail; completion needs another "
             "pump";
    Rules.push_back(R);
  }
  {
    TransitionRule R;
    R.From = DR;
    R.Event = ProtoEvent::PumpOne;
    R.Guard = OccGuard::LtBatch;
    R.To = ProtoState::Done;
    R.Occ = OccEffect::DrainTail;
    R.EmitFinished = true;
    R.MayEmitTransitions = true;
    R.MayEmitProgress = true;
    R.Note = "tail decided exactly once (consumeTrace's short batch), "
             "then Finished";
    Rules.push_back(R);
  }
  {
    TransitionRule R;
    R.From = DR;
    R.Event = ProtoEvent::PumpAll;
    R.To = ProtoState::Done;
    R.Occ = OccEffect::DrainTail;
    R.EmitFinished = true;
    R.MayEmitTransitions = true;
    R.MayEmitProgress = true;
    R.Note = "backlog and tail decided, Finished emitted";
    Rules.push_back(R);
  }

  //===--------------------------------------------------------------------===//
  // Idle eviction and graceful drain. From Streaming every *full* batch
  // is decided first so all decidable transitions are delivered; the
  // sub-batch tail is never decided (only the client's Finish may flush
  // it — deciding it early would diverge from the offline detector).
  // From Draining the client already finished, so the session completes
  // normally instead of being cut.
  //===--------------------------------------------------------------------===//
  for (ProtoEvent Ev : {ProtoEvent::Evict, ProtoEvent::Drain}) {
    ServeError Code =
        Ev == ProtoEvent::Evict ? ServeError::Evicted : ServeError::Shutdown;
    {
      TransitionRule R = failRule(AH, Ev, Code,
                                  "session closed before handshake");
      Rules.push_back(R);
    }
    {
      TransitionRule R;
      R.From = SG;
      R.Event = Ev;
      R.To = ProtoState::Failed;
      R.Err = Code;
      R.Occ = OccEffect::DecideFullThenClear;
      R.MayEmitTransitions = true;
      R.MayEmitProgress = true;
      R.Note = "decidable transitions delivered, tail dropped undecided";
      Rules.push_back(R);
    }
    {
      TransitionRule R;
      R.From = DR;
      R.Event = Ev;
      R.To = ProtoState::Done;
      R.Occ = OccEffect::DrainTail;
      R.EmitFinished = true;
      R.MayEmitTransitions = true;
      R.MayEmitProgress = true;
      R.Note = "client already finished; completing beats cutting off";
      Rules.push_back(R);
    }
  }

  //===--------------------------------------------------------------------===//
  // Terminal absorption: Done and Failed ignore everything. (The
  // conformance driver proves ServeSession really does ignore
  // post-terminal input instead of, say, emitting an Error after
  // Finished.)
  //===--------------------------------------------------------------------===//
  for (ProtoState St : {ProtoState::Done, ProtoState::Failed})
    for (unsigned E = 0; E != NumProtoEvents; ++E)
      Rules.push_back(noopRule(St, static_cast<ProtoEvent>(E),
                               "terminal state absorbs all input"));
}

ProtocolModel::StepResult ProtocolModel::step(const ProtoConfigState &S,
                                              ProtoEvent Event,
                                              uint32_t Count) const {
  StepResult Res;
  for (const TransitionRule &R : Rules) {
    if (R.From != S.St || R.Event != Event)
      continue;
    bool GuardOk = R.Guard == OccGuard::Any ||
                   (R.Guard == OccGuard::GeBatch
                        ? S.Occupancy >= Params.Batch
                        : S.Occupancy < Params.Batch);
    if (!GuardOk)
      continue;
    if (Res.Rule) {
      Res.Ambiguous = true;
      return Res;
    }
    Res.Rule = &R;
  }
  if (!Res.Rule)
    return Res;

  const TransitionRule &R = *Res.Rule;
  ProtoConfigState Next = S;
  Next.St = R.To;
  switch (R.Occ) {
  case OccEffect::None:
    break;
  case OccEffect::Ingest:
    Next.Occupancy = S.Occupancy + Count;
    break;
  case OccEffect::DecideOne:
    Res.Decided = Params.Batch;
    Next.Occupancy = S.Occupancy - Params.Batch;
    break;
  case OccEffect::DecideFull:
    Res.Decided = S.Occupancy - S.Occupancy % Params.Batch;
    Next.Occupancy = S.Occupancy % Params.Batch;
    break;
  case OccEffect::DrainTail:
    Res.Decided = S.Occupancy;
    Next.Occupancy = 0;
    break;
  case OccEffect::Clear:
    Next.Occupancy = 0;
    break;
  case OccEffect::DecideFullThenClear:
    Res.Decided = S.Occupancy - S.Occupancy % Params.Batch;
    Next.Occupancy = 0;
    break;
  }

  // Backpressure hysteresis, exactly the server's read-pause discipline:
  // pause when an ingest leaves the buffer at or above the high
  // watermark; unpause when a pump leaves it below half.
  if (R.Occ == OccEffect::Ingest) {
    if (Next.Occupancy >= Params.HighWatermark)
      Next.ReadPaused = true;
  } else if (R.Occ == OccEffect::DecideOne || R.Occ == OccEffect::DecideFull ||
             R.Occ == OccEffect::DrainTail) {
    if (Next.ReadPaused && Next.Occupancy < Params.HighWatermark / 2)
      Next.ReadPaused = false;
  }

  if (isTerminal(Next.St))
    Next.ReadPaused = false;
  Next.Err = Next.St == ProtoState::Failed
                 ? (S.St == ProtoState::Failed ? S.Err : R.Err)
                 : ServeError::None;
  Res.Next = Next;
  return Res;
}

bool ProtocolModel::offered(const ProtoConfigState &S,
                            ProtoEvent Event) const {
  if (isClientFrameEvent(Event))
    return !S.ReadPaused; // The server is not reading a saturated socket.
  return true;
}

const char *ProtocolModel::stateName(ProtoState St) {
  switch (St) {
  case ProtoState::AwaitHello:
    return "AwaitHello";
  case ProtoState::Streaming:
    return "Streaming";
  case ProtoState::Draining:
    return "Draining";
  case ProtoState::Done:
    return "Done";
  case ProtoState::Failed:
    return "Failed";
  }
  return "unknown";
}

const char *ProtocolModel::eventName(ProtoEvent Event) {
  switch (Event) {
  case ProtoEvent::HelloOk:
    return "hello-ok";
  case ProtoEvent::HelloBadMagic:
    return "hello-bad-magic";
  case ProtoEvent::HelloBadVersion:
    return "hello-bad-version";
  case ProtoEvent::HelloBadConfig:
    return "hello-bad-config";
  case ProtoEvent::HelloMalformed:
    return "hello-malformed";
  case ProtoEvent::ElementsOk:
    return "elements-ok";
  case ProtoEvent::ElementsMalformed:
    return "elements-malformed";
  case ProtoEvent::ElementsOutOfRange:
    return "elements-out-of-range";
  case ProtoEvent::FinishOk:
    return "finish-ok";
  case ProtoEvent::FinishPayload:
    return "finish-payload";
  case ProtoEvent::ServerKindFrame:
    return "server-kind-frame";
  case ProtoEvent::UnknownKindFrame:
    return "unknown-kind-frame";
  case ProtoEvent::CorruptZeroLen:
    return "corrupt-zero-length";
  case ProtoEvent::CorruptOversized:
    return "corrupt-oversized";
  case ProtoEvent::PumpOne:
    return "pump-one";
  case ProtoEvent::PumpAll:
    return "pump-all";
  case ProtoEvent::Evict:
    return "evict";
  case ProtoEvent::Drain:
    return "drain";
  }
  return "unknown";
}

std::vector<ProtocolModel::KindInfo> ProtocolModel::frameKinds() {
  return {
      {"Hello", uint8_t(MsgKind::Hello), true},
      {"Elements", uint8_t(MsgKind::Elements), true},
      {"Finish", uint8_t(MsgKind::Finish), true},
      {"HelloAck", uint8_t(MsgKind::HelloAck), false},
      {"Transition", uint8_t(MsgKind::Transition), false},
      {"Progress", uint8_t(MsgKind::Progress), false},
      {"Finished", uint8_t(MsgKind::Finished), false},
      {"Error", uint8_t(MsgKind::Error), false},
  };
}

std::vector<ProtocolModel::ErrorInfo> ProtocolModel::errorCodes() {
  return {
      {"bad-magic", uint16_t(ServeError::BadMagic), true},
      {"bad-version", uint16_t(ServeError::BadVersion), true},
      {"bad-config", uint16_t(ServeError::BadConfig), true},
      {"bad-frame", uint16_t(ServeError::BadFrame), true},
      {"oversized", uint16_t(ServeError::Oversized), true},
      {"site-range", uint16_t(ServeError::SiteRange), true},
      {"bad-state", uint16_t(ServeError::BadState), true},
      {"evicted", uint16_t(ServeError::Evicted), true},
      {"shutdown", uint16_t(ServeError::Shutdown), true},
      // Emitted by the server at the session cap, before a ServeSession
      // exists; unreachable inside the session state machine by design.
      {"overload", uint16_t(ServeError::Overload), false},
  };
}

ProtocolModel::Legality ProtocolModel::legality(ProtoState St,
                                                MsgKind Kind) const {
  ProtoEvent Ev;
  switch (Kind) {
  case MsgKind::Hello:
    Ev = ProtoEvent::HelloOk;
    break;
  case MsgKind::Elements:
    Ev = ProtoEvent::ElementsOk;
    break;
  case MsgKind::Finish:
    Ev = ProtoEvent::FinishOk;
    break;
  default:
    Ev = ProtoEvent::ServerKindFrame;
    break;
  }
  ProtoConfigState S;
  S.St = St;
  StepResult Res = step(S, Ev, /*Count=*/1);
  Legality L;
  if (!Res.Rule) {
    L.To = St;
    L.Err = ServeError::BadFrame; // Unmatched: surfaced by the checker.
    return L;
  }
  L.To = Res.Rule->To;
  L.Err = Res.Rule->Err;
  return L;
}
