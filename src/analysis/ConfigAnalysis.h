//===- analysis/ConfigAnalysis.h - Config-space static analyzer -*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static analysis over the detector configuration space: partitioning a
/// sweep's cross product into provable equivalence classes (so the sweep
/// harness runs one representative per class, see ConfigCanon.h for the
/// rule catalogue) and linting DetectorConfigs/SweepSpecs for degenerate
/// parameter choices before a sweep wastes hours on them.
///
/// The `config_check` diagnostic catalogue, in the jp_lint style (stable
/// codes, severities; docs/ANALYSIS.md documents it in full):
///
///   code                      severity  meaning
///   ------------------------- --------  ------------------------------
///   empty-window              error     CW, TW, or skip factor is 0
///                                       (the detector cannot be built)
///   empty-dimension           error     a spec dimension vector is
///                                       empty, annihilating the cross
///                                       product (warning when only the
///                                       TW-policy dimension is empty
///                                       and Fixed Interval is on)
///   analyzer-always-inphase   warning   analyzer provably reports P for
///                                       every similarity value
///   analyzer-always-transition warning  analyzer provably reports T for
///                                       every similarity value
///   hysteresis-no-exit        warning   derived exit threshold is 0: a
///                                       phase, once entered, never ends
///   invalid-analyzer-param    error     negative hysteresis enter
///                                       threshold: the analyzer cannot
///                                       be constructed
///   skip-exceeds-cw           warning   skip factor exceeds the CW size
///                                       (whole windows pass unevaluated)
///   duplicate-dimension-value warning   a dimension lists a value twice
///   window-exceeds-trace      warning   CW+TW exceeds the trace length
///                                       (needs --trace-len; the windows
///                                       never fill, the output is all-T)
///   skip-exceeds-trace        warning   skip factor exceeds the trace
///                                       length (needs --trace-len)
///   threshold-knife-edge      note      threshold exactly 1.0: P only
///                                       on exact window equality
///   average-nonpositive-delta note      average delta <= 0 demands
///                                       above-average similarity
///   fixed-interval-overlap    note      the Fixed-Interval point
///                                       duplicates an enumerated
///                                       (Constant, skip == CW) point
///   kernel-count-overflow     error     a window count provably exceeds
///                                       its uint32_t storage (backed by
///                                       the KernelBounds certifier)
///   kernel-product-overflow   error     a kernel product or accumulator
///                                       provably exceeds uint64_t
///   kernel-product-near-64bit warning   a kernel product's bound is
///                                       within 6 bits of the 64-bit
///                                       cliff
///   kernel-unbounded-tw       warning   adaptive TW growth cannot be
///                                       bounded without a trace length
///                                       (emitted by kernel_check only;
///                                       config_check filters it)
///
//===----------------------------------------------------------------------===//

#ifndef OPD_ANALYSIS_CONFIGANALYSIS_H
#define OPD_ANALYSIS_CONFIGANALYSIS_H

#include "analysis/ConfigCanon.h"
#include "core/SweepSpec.h"
#include "lang/Diagnostics.h"
#include "support/Table.h"

#include <cstdint>
#include <string>
#include <vector>

namespace opd {

/// One provable equivalence class of a configuration list.
struct ConfigClass {
  /// Index (into the partitioned list) of the member the harness runs.
  size_t Representative = 0;
  /// Indices of every member, in list order (includes Representative).
  std::vector<size_t> Members;
  /// The shared normal form.
  DetectorConfig Canonical;
  /// Union of the merge rules the members' canonicalizations applied, in
  /// first-seen order; {IdenticalConfig} for a multi-member class whose
  /// members were field-wise equal before any rewrite.
  std::vector<MergeRule> Rules;
};

/// An equivalence partition of a configuration list.
struct ConfigPartition {
  std::vector<ConfigClass> Classes;
  /// ClassOf[I] is the index into Classes of configuration I's class.
  std::vector<size_t> ClassOf;
};

/// Partitions \p Configs by canonical form. Deterministic: classes are
/// ordered by first member, members in list order, the representative is
/// the first member.
ConfigPartition partitionConfigs(const std::vector<DetectorConfig> &Configs,
                                 const ConfigCanonOptions &Options = {});

/// Knobs for the config/spec lint checks.
struct ConfigLintOptions {
  /// Trace length for the *-exceeds-trace checks; 0 (unknown) disables
  /// them.
  uint64_t TraceLen = 0;
};

/// Lints one configuration, recording findings in \p Diags (spec-level
/// location 0:0) in a deterministic order.
void lintConfig(const DetectorConfig &Config, const ConfigLintOptions &Options,
                DiagnosticEngine &Diags);

/// Lints a sweep spec: dimension-level checks (empty/duplicate
/// dimensions, fixed-interval overlap) plus the per-value checks of
/// lintConfig applied once per offending dimension value rather than
/// once per enumerated point.
void lintSweepSpec(const SweepSpec &Spec, const ConfigLintOptions &Options,
                   DiagnosticEngine &Diags);

/// Knobs for analyzeSweep().
struct SweepAnalysisOptions {
  ConfigCanonOptions Canon;
  /// Analyze enumerateCrossProduct() instead of enumerateConfigs().
  bool RawCrossProduct = false;
};

/// A sweep spec's enumerated space and its equivalence partition.
struct SweepAnalysis {
  std::vector<DetectorConfig> Configs;
  ConfigPartition Partition;
  /// Runs an exhaustive sweep would execute (== Configs.size()).
  size_t NumConfigs = 0;
  /// Runs a pruned sweep executes (== Partition.Classes.size()).
  size_t NumClasses = 0;
  /// Runs pruning avoids (NumConfigs - NumClasses).
  size_t RunsPruned = 0;
  /// Per rule, the number of classes whose Rules contain it, indexed by
  /// static_cast<size_t>(MergeRule). A class citing several rules counts
  /// toward each.
  std::vector<size_t> ClassesByRule;
  /// Shared-scan execution plan over the runs a pruned sweep executes
  /// (the class representatives): trace passes the shared-scan engine
  /// makes (core/SharedScan.h groups by window-kernel shape), and the
  /// member count of the biggest group — the best-case amortization.
  size_t NumSharedGroups = 0;
  size_t LargestSharedGroup = 0;
};

/// Enumerates \p Spec and partitions the result.
SweepAnalysis analyzeSweep(const SweepSpec &Spec,
                           const SweepAnalysisOptions &Options = {});

/// Renders the partition's rule breakdown as a table: rule, classes
/// citing it, and the one-line justification.
Table sweepPlanTable(const SweepAnalysis &Analysis,
                     const std::string &Title = "Sweep pruning plan");

/// Renders \p Analysis as a JSON object for `config_check --json` /
/// `sweep_tool --plan --json`.
std::string renderSweepAnalysisJSON(const SweepAnalysis &Analysis,
                                    const std::string &SpecName);

} // namespace opd

#endif // OPD_ANALYSIS_CONFIGANALYSIS_H
