//===- analysis/Lint.h - Static defect checks for JP workloads --*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `jp_lint` diagnostic catalogue: static checks that catch
/// silently-degenerate workloads before a benchmark run wastes a trace.
/// Each diagnostic carries a stable code (Diagnostic::Code) and a
/// severity; docs/ANALYSIS.md documents the full catalogue.
///
///   code                severity  meaning
///   ------------------- --------  -----------------------------------
///   dead-method         warning   method unreachable from `main`
///   unreachable-arm     warning   `when`/`if` arm can never execute
///   constant-condition  note      `when` condition always same value
///   unbounded-loop      error     loop statically exceeds the element
///                                 budget
///   infinite-recursion  error     unconditional recursion cycle
///   recursion-cycle     note      method participates in recursion
///   short-phase         warning   top-level loop shorter than the MPL
///                                 (can never become an oracle phase)
///
//===----------------------------------------------------------------------===//

#ifndef OPD_ANALYSIS_LINT_H
#define OPD_ANALYSIS_LINT_H

#include "lang/AST.h"
#include "lang/Diagnostics.h"

#include <cstdint>
#include <string>

namespace opd {

/// Knobs for the lint checks.
struct LintOptions {
  /// Trace budget for `unbounded-loop`: a loop whose statically proven
  /// minimum element count meets this threshold is an error. Mirrors the
  /// scale at which interpreted runs become impractical.
  uint64_t ElementBudget = 100u * 1000 * 1000;
  /// Minimum phase length for `short-phase`; 0 disables the check.
  uint64_t MPL = 0;
};

/// Runs all static checks over \p Prog (must have passed Sema),
/// recording findings in \p Diags in a deterministic order.
void lintProgram(const Program &Prog, const LintOptions &Options,
                 DiagnosticEngine &Diags);

/// Renders \p Diags as a JSON object (`{"file": ..., "diagnostics":
/// [...], "errors": N, "warnings": N, "notes": N}`) for `jp_lint --json`.
std::string renderDiagnosticsJSON(const DiagnosticEngine &Diags,
                                  const std::string &FileName);

/// Maps a severity to the `jp_lint` process exit code: 0 for notes and
/// clean runs, 1 when warnings are the worst finding, 2 for errors.
int exitCodeForSeverity(DiagSeverity Severity, bool AnyDiagnostics);

} // namespace opd

#endif // OPD_ANALYSIS_LINT_H
