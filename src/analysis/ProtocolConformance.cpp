//===- analysis/ProtocolConformance.cpp - Model-vs-reality diffs ------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "analysis/ProtocolConformance.h"

#include "core/DetectorRunner.h"
#include "serve/Client.h"
#include "serve/Session.h"
#include "trace/BranchTrace.h"

#include <random>

using namespace opd;

namespace {

constexpr SourceLoc ImplLoc{0, 0};

//===----------------------------------------------------------------------===//
// Wire-byte encodings of the classified events
//
// The model speaks in validation classes; this is where each class gets
// a concrete byte encoding — so the classification itself is what the
// conformance replay checks against the real decoder.
//===----------------------------------------------------------------------===//

void putLE32(std::vector<uint8_t> &Out, uint32_t V) {
  Out.push_back(static_cast<uint8_t>(V));
  Out.push_back(static_cast<uint8_t>(V >> 8));
  Out.push_back(static_cast<uint8_t>(V >> 16));
  Out.push_back(static_cast<uint8_t>(V >> 24));
}

/// A complete frame with an arbitrary kind byte and payload.
std::vector<uint8_t> rawFrame(uint8_t Kind,
                              const std::vector<uint8_t> &Payload) {
  std::vector<uint8_t> Out;
  putLE32(Out, static_cast<uint32_t>(Payload.size()) + 1);
  Out.push_back(Kind);
  Out.insert(Out.end(), Payload.begin(), Payload.end());
  return Out;
}

std::vector<uint8_t> helloFrame(const DetectorConfig &Config,
                                SiteIndex NumSites, uint16_t Flags) {
  HelloMsg M;
  M.Flags = Flags;
  M.NumSites = NumSites;
  M.Config = Config;
  std::vector<uint8_t> Out;
  appendHello(Out, M);
  return Out;
}

/// How one classified event is delivered to a ServeSession.
struct Action {
  enum class Kind : uint8_t { Feed, PumpOne, PumpAll, Evict, Drain };
  Kind K = Kind::Feed;
  std::vector<uint8_t> Bytes; // Valid for Kind::Feed.
};

/// Encodes \p Ev as a concrete session action. \p Elems carries the
/// element values for ElementsOk (size == the event's Count).
Action encodeEvent(ProtoEvent Ev, const DetectorConfig &Config,
                   SiteIndex NumSites, uint16_t Flags,
                   const std::vector<SiteIndex> &Elems) {
  Action A;
  switch (Ev) {
  case ProtoEvent::HelloOk:
    A.Bytes = helloFrame(Config, NumSites, Flags);
    break;
  case ProtoEvent::HelloBadMagic:
    A.Bytes = helloFrame(Config, NumSites, Flags);
    A.Bytes[5] ^= 0xFF; // First payload byte: low byte of the magic.
    break;
  case ProtoEvent::HelloBadVersion:
    A.Bytes = helloFrame(Config, NumSites, Flags);
    A.Bytes[9] = 0xFF; // Version field (payload offset 4).
    A.Bytes[10] = 0xFF;
    break;
  case ProtoEvent::HelloBadConfig: {
    DetectorConfig Bad = Config;
    Bad.Window.CWSize = 0; // Rejected by ServeLimits validation.
    A.Bytes = helloFrame(Bad, NumSites, Flags);
    break;
  }
  case ProtoEvent::HelloMalformed:
    // One byte short of the 37-byte handshake payload.
    A.Bytes = rawFrame(uint8_t(MsgKind::Hello), std::vector<uint8_t>(36, 0));
    break;
  case ProtoEvent::ElementsOk:
    appendElements(A.Bytes, Elems.data(), Elems.size());
    break;
  case ProtoEvent::ElementsMalformed: {
    // Count claims 2 elements, payload carries 1: length mismatch.
    std::vector<uint8_t> P;
    putLE32(P, 2);
    putLE32(P, 0);
    A.Bytes = rawFrame(uint8_t(MsgKind::Elements), P);
    break;
  }
  case ProtoEvent::ElementsOutOfRange: {
    SiteIndex Bad = NumSites; // First index outside the site space.
    appendElements(A.Bytes, &Bad, 1);
    break;
  }
  case ProtoEvent::FinishOk:
    appendFinish(A.Bytes);
    break;
  case ProtoEvent::FinishPayload:
    A.Bytes = rawFrame(uint8_t(MsgKind::Finish), {0});
    break;
  case ProtoEvent::ServerKindFrame:
    A.Bytes = rawFrame(uint8_t(MsgKind::HelloAck), {});
    break;
  case ProtoEvent::UnknownKindFrame:
    A.Bytes = rawFrame(9, {}); // A kind outside the defined numbering.
    break;
  case ProtoEvent::CorruptZeroLen:
    putLE32(A.Bytes, 0);
    break;
  case ProtoEvent::CorruptOversized:
    putLE32(A.Bytes, MaxFrameLen + 1);
    break;
  case ProtoEvent::PumpOne:
    A.K = Action::Kind::PumpOne;
    break;
  case ProtoEvent::PumpAll:
    A.K = Action::Kind::PumpAll;
    break;
  case ProtoEvent::Evict:
    A.K = Action::Kind::Evict;
    break;
  case ProtoEvent::Drain:
    A.K = Action::Kind::Drain;
    break;
  }
  return A;
}

//===----------------------------------------------------------------------===//
// Lockstep driver
//===----------------------------------------------------------------------===//

/// Frames a session emitted during one step, classified.
struct ObservedFrames {
  unsigned HelloAcks = 0;
  unsigned Finisheds = 0;
  unsigned Errors = 0;
  unsigned Transitions = 0;
  unsigned Progresses = 0;
  unsigned Unparsable = 0;
  ServeError ErrCode = ServeError::None;
  FinishedMsg Summary;
  std::vector<TransitionMsg> Events;
};

ObservedFrames parseOutput(const std::vector<uint8_t> &Bytes) {
  ObservedFrames Obs;
  FrameReader R;
  R.feed(Bytes.data(), Bytes.size());
  Frame F;
  while (R.next(F) == FrameReader::Status::Frame) {
    switch (F.Kind) {
    case MsgKind::HelloAck: {
      HelloAckMsg M;
      Obs.HelloAcks += 1;
      if (!parseHelloAck(F, M))
        Obs.Unparsable += 1;
      break;
    }
    case MsgKind::Transition: {
      TransitionMsg M;
      if (parseTransition(F, M))
        Obs.Events.push_back(M);
      else
        Obs.Unparsable += 1;
      Obs.Transitions += 1;
      break;
    }
    case MsgKind::Progress: {
      ProgressMsg M;
      Obs.Progresses += 1;
      if (!parseProgress(F, M))
        Obs.Unparsable += 1;
      break;
    }
    case MsgKind::Finished: {
      Obs.Finisheds += 1;
      if (!parseFinished(F, Obs.Summary))
        Obs.Unparsable += 1;
      break;
    }
    case MsgKind::Error: {
      ErrorMsg M;
      Obs.Errors += 1;
      if (parseError(F, M))
        Obs.ErrCode = M.Code;
      else
        Obs.Unparsable += 1;
      break;
    }
    default:
      Obs.Unparsable += 1;
      break;
    }
  }
  if (R.buffered() != 0)
    Obs.Unparsable += 1; // Trailing partial frame in a response stream.
  return Obs;
}

ProtoState mapState(ServeSession::State St) {
  switch (St) {
  case ServeSession::State::AwaitHello:
    return ProtoState::AwaitHello;
  case ServeSession::State::Streaming:
    return ProtoState::Streaming;
  case ServeSession::State::Draining:
    return ProtoState::Draining;
  case ServeSession::State::Done:
    return ProtoState::Done;
  case ServeSession::State::Failed:
    return ProtoState::Failed;
  }
  return ProtoState::Failed;
}

/// One real session driven in lockstep with the model.
struct LockstepDriver {
  ProtocolModel &M;
  ServeSession Sess;
  DetectorConfig Config;
  SiteIndex NumSites;
  uint16_t Flags;

  ProtoConfigState S;
  /// The I/O thread's sticky read-pause bit, re-derived from the session
  /// predicates exactly as Server.cpp maintains it.
  bool TrackedPaused = false;
  /// Model-side accumulation of decided elements.
  uint64_t Processed = 0;
  /// Replayed schedule, for diagnostics.
  std::vector<ProtoStep> Schedule;

  LockstepDriver(ProtocolModel &M, const ServeLimits &Limits,
                 DetectorCache &Cache, const DetectorConfig &Config,
                 SiteIndex NumSites, uint16_t Flags)
      : M(M), Sess(/*Id=*/1, Limits, Cache), Config(Config),
        NumSites(NumSites), Flags(Flags) {}

  /// Applies one event to both sides; returns an empty string when the
  /// implementation matched the model, a divergence description
  /// otherwise. \p Obs receives the step's emitted frames.
  std::string step(ProtoEvent Ev, const std::vector<SiteIndex> &Elems,
                   ObservedFrames &Obs) {
    uint32_t Count = static_cast<uint32_t>(Elems.size());
    Schedule.push_back({Ev, Count});
    ProtocolModel::StepResult Res = M.step(S, Ev, Count);
    if (!Res.Rule)
      return "model has no transition for this event";
    if (Res.Ambiguous)
      return "model transition is ambiguous for this event";

    Action A = encodeEvent(Ev, Config, NumSites, Flags, Elems);
    switch (A.K) {
    case Action::Kind::Feed:
      Sess.feed(A.Bytes.data(), A.Bytes.size());
      break;
    case Action::Kind::PumpOne:
      Sess.pump(1);
      break;
    case Action::Kind::PumpAll:
      Sess.pump();
      break;
    case Action::Kind::Evict:
      Sess.shutdown(ServeError::Evicted);
      break;
    case Action::Kind::Drain:
      Sess.shutdown(ServeError::Shutdown);
      break;
    }
    std::vector<uint8_t> Out;
    Sess.takeOutput(Out);
    Obs = parseOutput(Out);

    Processed += Res.Decided;
    const ProtoConfigState &Next = Res.Next;
    bool Terminal = ProtocolModel::isTerminal(mapState(Sess.state()));
    if (Terminal)
      TrackedPaused = false;
    else if (ProtocolModel::isClientFrameEvent(Ev)) {
      if (Sess.ingressSaturated())
        TrackedPaused = true;
    } else if (A.K == Action::Kind::PumpOne ||
               A.K == Action::Kind::PumpAll) {
      if (TrackedPaused && Sess.ingressRelieved())
        TrackedPaused = false;
    }

    std::string Diff = diff(*Res.Rule, Next, Obs);
    S = Next;
    return Diff;
  }

  std::string diff(const TransitionRule &R, const ProtoConfigState &Next,
                   const ObservedFrames &Obs) const {
    if (mapState(Sess.state()) != Next.St)
      return std::string("state is ") +
             ProtocolModel::stateName(mapState(Sess.state())) +
             ", model expects " + ProtocolModel::stateName(Next.St);
    if (Sess.error() != Next.Err)
      return std::string("error code is ") + serveErrorName(Sess.error()) +
             ", model expects " + serveErrorName(Next.Err);
    if (Sess.pendingElements() != Next.Occupancy)
      return "buffer occupancy is " +
             std::to_string(Sess.pendingElements()) + ", model expects " +
             std::to_string(Next.Occupancy);
    if (Sess.elementsProcessed() != Processed)
      return "processed " + std::to_string(Sess.elementsProcessed()) +
             " elements, model expects " + std::to_string(Processed);
    unsigned WantAcks = R.EmitHelloAck ? 1 : 0;
    if (Obs.HelloAcks != WantAcks)
      return "emitted " + std::to_string(Obs.HelloAcks) +
             " HelloAck frames, model expects " + std::to_string(WantAcks);
    unsigned WantFin = R.EmitFinished ? 1 : 0;
    if (Obs.Finisheds != WantFin)
      return "emitted " + std::to_string(Obs.Finisheds) +
             " Finished frames, model expects " + std::to_string(WantFin);
    bool WantError = R.Err != ServeError::None;
    if (Obs.Errors != (WantError ? 1u : 0u))
      return "emitted " + std::to_string(Obs.Errors) +
             " Error frames, model expects " +
             std::to_string(WantError ? 1 : 0);
    if (WantError && Obs.ErrCode != R.Err)
      return std::string("Error frame carries ") +
             serveErrorName(Obs.ErrCode) + ", model expects " +
             serveErrorName(R.Err);
    if (Obs.Transitions != 0 && !R.MayEmitTransitions)
      return "emitted Transition frames on an edge the model forbids "
             "them on";
    if (Obs.Progresses != 0 && !R.MayEmitProgress)
      return "emitted Progress frames on an edge the model forbids them "
             "on";
    if (Obs.Unparsable != 0)
      return "emitted frames the protocol parsers reject";
    if (Sess.ingressSaturated() !=
        (Next.Occupancy >= M.params().HighWatermark))
      return "ingressSaturated() disagrees with the watermark";
    if (TrackedPaused != Next.ReadPaused)
      return std::string("server read-pause bit would be ") +
             (TrackedPaused ? "on" : "off") + ", model expects " +
             (Next.ReadPaused ? "on" : "off");
    return "";
  }
};

DetectorConfig conformanceConfig(uint32_t Batch) {
  DetectorConfig Config;
  Config.Window.CWSize = 4;
  Config.Window.TWSize = 4;
  Config.Window.SkipFactor = Batch;
  return Config;
}

} // namespace

//===----------------------------------------------------------------------===//
// Implementation conformance: every model edge replayed on ServeSession
//===----------------------------------------------------------------------===//

void opd::checkImplConformance(const ProtocolModel &M,
                               DiagnosticEngine &Diags) {
  ProtoExploration Ex = exploreProtocol(M);
  if (!Ex.Complete) {
    Diags.report(DiagSeverity::Error, ImplLoc, "impl-divergence",
                 "model exploration is incomplete (missing or ambiguous "
                 "transitions); run the invariant checks first");
    return;
  }

  DetectorCache Cache;
  ServeLimits Limits;
  Limits.MaxPendingElements = M.params().HighWatermark;
  const DetectorConfig Config = conformanceConfig(M.params().Batch);
  const SiteIndex NumSites = 4;
  // The conformance element stream is deterministic (site 1): the model
  // tracks control state, not detector decisions.
  ProtocolModel &Mutable = const_cast<ProtocolModel &>(M);

  unsigned Reported = 0;
  for (const ProtoEdge &E : Ex.Edges) {
    if (Reported >= 16)
      break;
    std::vector<ProtoStep> Path = Ex.Witness[E.From];
    Path.push_back(E.Step);

    LockstepDriver D(Mutable, Limits, Cache, Config, NumSites, /*Flags=*/0);
    for (const ProtoStep &Step : Path) {
      std::vector<SiteIndex> Elems(Step.Count, SiteIndex(1));
      ObservedFrames Obs;
      std::string Diff = D.step(Step.Event, Elems, Obs);
      if (!Diff.empty()) {
        Diags.report(DiagSeverity::Error, ImplLoc, "impl-divergence",
                     "ServeSession diverges from the model: " + Diff +
                         " (schedule: " + renderWitness(D.Schedule) + ")");
        Reported += 1;
        break;
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Documentation conformance: the normative SERVING.md tables
//===----------------------------------------------------------------------===//

namespace {

std::string trimCopy(const std::string &S) {
  size_t B = S.find_first_not_of(" \t\r");
  if (B == std::string::npos)
    return "";
  size_t E = S.find_last_not_of(" \t\r");
  return S.substr(B, E - B + 1);
}

std::string stripBackticks(const std::string &S) {
  std::string Out;
  for (char C : S)
    if (C != '`')
      Out += C;
  return Out;
}

/// Splits a markdown table row into trimmed, backtick-stripped cells.
/// Returns an empty vector for non-row lines.
std::vector<std::string> tableCells(const std::string &Line) {
  std::string T = trimCopy(Line);
  if (T.size() < 2 || T.front() != '|')
    return {};
  std::vector<std::string> Cells;
  size_t Pos = 1;
  while (Pos < T.size()) {
    size_t Next = T.find('|', Pos);
    if (Next == std::string::npos)
      break;
    Cells.push_back(trimCopy(stripBackticks(T.substr(Pos, Next - Pos))));
    Pos = Next + 1;
  }
  return Cells;
}

bool allDigits(const std::string &S) {
  if (S.empty())
    return false;
  for (char C : S)
    if (C < '0' || C > '9')
      return false;
  return true;
}

bool lookupState(const std::string &Name, ProtoState &Out) {
  for (unsigned I = 0; I != NumProtoStates; ++I)
    if (Name == ProtocolModel::stateName(static_cast<ProtoState>(I))) {
      Out = static_cast<ProtoState>(I);
      return true;
    }
  return false;
}

bool lookupError(const std::string &Name, ServeError &Out) {
  for (const ProtocolModel::ErrorInfo &EI : ProtocolModel::errorCodes())
    if (Name == EI.Name) {
      Out = static_cast<ServeError>(EI.Value);
      return true;
    }
  return false;
}

constexpr const char *ArrowUTF8 = "\xE2\x86\x92"; // U+2192 RIGHTWARDS ARROW

} // namespace

void opd::checkDocConformance(const ProtocolModel &M,
                              const std::string &DocText,
                              DiagnosticEngine &Diags) {
  // Split into lines with 1-based numbering for diagnostic locations.
  std::vector<std::string> Lines;
  {
    size_t Pos = 0;
    while (Pos <= DocText.size()) {
      size_t NL = DocText.find('\n', Pos);
      if (NL == std::string::npos) {
        Lines.push_back(DocText.substr(Pos));
        break;
      }
      Lines.push_back(DocText.substr(Pos, NL - Pos));
      Pos = NL + 1;
    }
  }
  auto LocAt = [](size_t Idx) {
    return SourceLoc{static_cast<uint32_t>(Idx + 1), 1};
  };

  struct DocKind {
    std::string Name;
    uint32_t Value;
    bool ClientToServer;
    size_t Line;
  };
  struct DocError {
    std::string Name;
    uint32_t Value;
    size_t Line;
  };
  std::vector<DocKind> DocKinds;
  std::vector<DocError> DocErrors;
  std::vector<std::pair<std::string, size_t>> DocStates;
  bool SawLegalityHeader = false;
  unsigned LegalityRows = 0;
  std::string Section;

  for (size_t I = 0; I != Lines.size(); ++I) {
    const std::string &Line = Lines[I];
    if (Line.rfind("## ", 0) == 0) {
      Section = trimCopy(Line.substr(3));
      continue;
    }

    // Lifecycle state bullets, only inside the Session lifecycle
    // section ("* **Name** — ..."); "Done / Failed" names two states.
    if (Section == "Session lifecycle" && trimCopy(Line).rfind("* **", 0) == 0) {
      std::string T = trimCopy(Line).substr(4);
      size_t End = T.find("**");
      if (End == std::string::npos)
        continue;
      std::string Names = T.substr(0, End);
      size_t Pos = 0;
      while (Pos != std::string::npos) {
        size_t Sep = Names.find(" / ", Pos);
        std::string One = trimCopy(
            Sep == std::string::npos ? Names.substr(Pos)
                                     : Names.substr(Pos, Sep - Pos));
        if (!One.empty())
          DocStates.push_back({One, I});
        Pos = Sep == std::string::npos ? Sep : Sep + 3;
      }
      continue;
    }

    std::vector<std::string> Cells = tableCells(Line);
    if (Cells.empty())
      continue;

    // Frame-kind rows: | Name | Value | Direction | Payload |
    if (Cells.size() >= 4 && allDigits(Cells[1]) &&
        (Cells[2] == std::string("C") + ArrowUTF8 + "S" ||
         Cells[2] == std::string("S") + ArrowUTF8 + "C")) {
      DocKinds.push_back({Cells[0],
                          static_cast<uint32_t>(std::stoul(Cells[1])),
                          Cells[2][0] == 'C', I});
      continue;
    }

    // Error-code rows: | Code | Name | Meaning |
    if (Cells.size() >= 3 && allDigits(Cells[0])) {
      ServeError Ignored;
      if (lookupError(Cells[1], Ignored) ||
          Cells[2].find("error") != std::string::npos)
        DocErrors.push_back(
            {Cells[1], static_cast<uint32_t>(std::stoul(Cells[0])), I});
      continue;
    }

    // Frame-legality table: header | State | Hello | Elements | Finish |
    // followed by one row per live state.
    if (Cells.size() >= 4 && Cells[0] == "State" && Cells[1] == "Hello" &&
        Cells[2] == "Elements" && Cells[3] == "Finish") {
      SawLegalityHeader = true;
      continue;
    }
    ProtoState RowState;
    if (SawLegalityHeader && Cells.size() >= 4 &&
        lookupState(Cells[0], RowState)) {
      LegalityRows += 1;
      const MsgKind Kinds[3] = {MsgKind::Hello, MsgKind::Elements,
                                MsgKind::Finish};
      for (unsigned K = 0; K != 3; ++K) {
        const std::string &Cell = Cells[K + 1];
        ProtocolModel::Legality Doc;
        if (Cell.rfind("accept", 0) == 0) {
          Doc.Err = ServeError::None;
          size_t Arrow = Cell.find(ArrowUTF8);
          if (Arrow == std::string::npos) {
            Doc.To = RowState;
          } else if (!lookupState(trimCopy(Cell.substr(Arrow + 3)),
                                  Doc.To)) {
            Diags.report(DiagSeverity::Error, LocAt(I), "doc-parse",
                         "frame-legality cell '" + Cell +
                             "' names an unknown state");
            continue;
          }
        } else if (lookupError(Cell, Doc.Err)) {
          Doc.To = ProtoState::Failed;
        } else {
          Diags.report(DiagSeverity::Error, LocAt(I), "doc-parse",
                       "frame-legality cell '" + Cell +
                           "' is neither an acceptance nor an error "
                           "mnemonic");
          continue;
        }
        ProtocolModel::Legality Model = M.legality(RowState, Kinds[K]);
        if (Doc.Err != Model.Err || (Doc.Err == ServeError::None &&
                                     Doc.To != Model.To))
          Diags.report(
              DiagSeverity::Error, LocAt(I), "doc-divergence",
              std::string("frame-legality for (") +
                  ProtocolModel::stateName(RowState) + ", " +
                  (K == 0 ? "Hello" : K == 1 ? "Elements" : "Finish") +
                  ") is '" + Cell + "' in the doc but " +
                  (Model.Err == ServeError::None
                       ? std::string("accept ") + ArrowUTF8 + " " +
                             ProtocolModel::stateName(Model.To)
                       : std::string(serveErrorName(Model.Err))) +
                  " in the model");
      }
      continue;
    }
  }

  // Frame-kind catalogue diff.
  std::vector<ProtocolModel::KindInfo> Kinds = ProtocolModel::frameKinds();
  if (DocKinds.size() != Kinds.size()) {
    Diags.report(DiagSeverity::Error, ImplLoc,
                 DocKinds.empty() ? "doc-parse" : "doc-divergence",
                 "doc lists " + std::to_string(DocKinds.size()) +
                     " frame kinds, model has " +
                     std::to_string(Kinds.size()));
  } else {
    for (size_t I = 0; I != Kinds.size(); ++I) {
      if (DocKinds[I].Name != Kinds[I].Name ||
          DocKinds[I].Value != Kinds[I].Value ||
          DocKinds[I].ClientToServer != Kinds[I].ClientToServer)
        Diags.report(DiagSeverity::Error, LocAt(DocKinds[I].Line),
                     "doc-divergence",
                     "frame kind row '" + DocKinds[I].Name + "' (value " +
                         std::to_string(DocKinds[I].Value) +
                         ") disagrees with the model's " + Kinds[I].Name +
                         " = " + std::to_string(Kinds[I].Value));
    }
  }

  // Error-code catalogue diff.
  std::vector<ProtocolModel::ErrorInfo> Errs = ProtocolModel::errorCodes();
  if (DocErrors.size() != Errs.size()) {
    Diags.report(DiagSeverity::Error, ImplLoc,
                 DocErrors.empty() ? "doc-parse" : "doc-divergence",
                 "doc lists " + std::to_string(DocErrors.size()) +
                     " error codes, model has " +
                     std::to_string(Errs.size()));
  } else {
    for (size_t I = 0; I != Errs.size(); ++I) {
      if (DocErrors[I].Name != Errs[I].Name ||
          DocErrors[I].Value != Errs[I].Value)
        Diags.report(DiagSeverity::Error, LocAt(DocErrors[I].Line),
                     "doc-divergence",
                     "error code row '" + DocErrors[I].Name + "' (" +
                         std::to_string(DocErrors[I].Value) +
                         ") disagrees with the model's " + Errs[I].Name +
                         " = " + std::to_string(Errs[I].Value));
    }
  }

  // Lifecycle state diff.
  if (DocStates.size() != NumProtoStates) {
    Diags.report(DiagSeverity::Error, ImplLoc,
                 DocStates.empty() ? "doc-parse" : "doc-divergence",
                 "doc lifecycle section names " +
                     std::to_string(DocStates.size()) +
                     " states, model has " +
                     std::to_string(NumProtoStates));
  } else {
    for (unsigned I = 0; I != NumProtoStates; ++I) {
      if (DocStates[I].first !=
          ProtocolModel::stateName(static_cast<ProtoState>(I)))
        Diags.report(DiagSeverity::Error, LocAt(DocStates[I].second),
                     "doc-divergence",
                     "lifecycle state '" + DocStates[I].first +
                         "' disagrees with the model's " +
                         ProtocolModel::stateName(
                             static_cast<ProtoState>(I)));
    }
  }

  // Frame-legality table presence: one row per live state.
  if (!SawLegalityHeader)
    Diags.report(DiagSeverity::Error, ImplLoc, "doc-parse",
                 "frame-legality table (State | Hello | Elements | "
                 "Finish) not found in the doc");
  else if (LegalityRows != 3)
    Diags.report(DiagSeverity::Error, ImplLoc, "doc-divergence",
                 "frame-legality table has " +
                     std::to_string(LegalityRows) +
                     " state rows, expected 3 (AwaitHello, Streaming, "
                     "Draining)");
}

//===----------------------------------------------------------------------===//
// Model-guided adversarial fuzzing
//===----------------------------------------------------------------------===//

namespace {

/// Weighted event choice: biased toward schedules that make progress
/// (handshake, elements, pumps, finish) with a steady trickle of
/// adversarial inputs (malformed frames, corruption, eviction, drain).
ProtoEvent chooseEvent(std::mt19937_64 &Rng, const ProtocolModel &M,
                       const ProtoConfigState &S) {
  std::vector<std::pair<ProtoEvent, uint32_t>> Weights;
  auto Add = [&](ProtoEvent Ev, uint32_t W) {
    if (M.offered(S, Ev))
      Weights.push_back({Ev, W});
  };
  switch (S.St) {
  case ProtoState::AwaitHello:
    Add(ProtoEvent::HelloOk, 40);
    Add(ProtoEvent::HelloBadMagic, 1);
    Add(ProtoEvent::HelloBadVersion, 1);
    Add(ProtoEvent::HelloBadConfig, 1);
    Add(ProtoEvent::HelloMalformed, 1);
    Add(ProtoEvent::ElementsOk, 1);
    Add(ProtoEvent::FinishOk, 1);
    Add(ProtoEvent::PumpOne, 2);
    Add(ProtoEvent::PumpAll, 2);
    Add(ProtoEvent::CorruptZeroLen, 1);
    break;
  case ProtoState::Streaming:
    Add(ProtoEvent::ElementsOk, 40);
    Add(ProtoEvent::PumpOne, 12);
    Add(ProtoEvent::PumpAll, 8);
    Add(ProtoEvent::FinishOk, 6);
    Add(ProtoEvent::HelloOk, 1);
    Add(ProtoEvent::ElementsMalformed, 1);
    Add(ProtoEvent::ElementsOutOfRange, 1);
    Add(ProtoEvent::FinishPayload, 1);
    Add(ProtoEvent::ServerKindFrame, 1);
    Add(ProtoEvent::UnknownKindFrame, 1);
    Add(ProtoEvent::CorruptZeroLen, 1);
    Add(ProtoEvent::CorruptOversized, 1);
    Add(ProtoEvent::Evict, 1);
    Add(ProtoEvent::Drain, 1);
    break;
  case ProtoState::Draining:
    Add(ProtoEvent::PumpOne, 20);
    Add(ProtoEvent::PumpAll, 20);
    Add(ProtoEvent::ElementsOk, 1);
    Add(ProtoEvent::FinishOk, 1);
    Add(ProtoEvent::HelloMalformed, 1);
    Add(ProtoEvent::CorruptZeroLen, 1);
    Add(ProtoEvent::Evict, 1);
    Add(ProtoEvent::Drain, 1);
    break;
  case ProtoState::Done:
  case ProtoState::Failed:
    Add(ProtoEvent::PumpAll, 1); // Absorbed; keeps the driver total.
    break;
  }
  uint64_t Total = 0;
  for (const auto &W : Weights)
    Total += W.second;
  uint64_t Roll = Rng() % Total;
  for (const auto &W : Weights) {
    if (Roll < W.second)
      return W.first;
    Roll -= W.second;
  }
  return Weights.back().first;
}

template <typename T, size_t N>
T pickOne(std::mt19937_64 &Rng, const T (&Choices)[N]) {
  return Choices[Rng() % N];
}

bool runsEqual(const std::vector<StateRun> &A, const std::vector<StateRun> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I != A.size(); ++I)
    if (A[I].Begin != B[I].Begin || A[I].Length != B[I].Length ||
        A[I].State != B[I].State)
      return false;
  return true;
}

} // namespace

void opd::fuzzProtocolConformance(const ProtocolFuzzOptions &Options,
                                  DiagnosticEngine &Diags) {
  std::mt19937_64 Rng(Options.Seed);
  DetectorCache Cache;
  unsigned Reported = 0;

  for (unsigned It = 0; It != Options.Iterations && Reported < 10; ++It) {
    ProtocolParams P;
    P.Batch = 1 + static_cast<uint32_t>(Rng() % 6);
    P.HighWatermark = pickOne(Rng, {4u, 6u, 8u, 12u, 16u});
    P.MaxFrameElements = 1 + static_cast<uint32_t>(Rng() % 8);
    ProtocolModel M(P);

    DetectorConfig Config;
    Config.Window.CWSize = pickOne(Rng, {2u, 4u, 8u, 16u});
    Config.Window.TWSize = pickOne(Rng, {2u, 4u, 8u, 16u});
    Config.Window.SkipFactor = P.Batch;
    Config.Window.TWPolicy = static_cast<TWPolicyKind>(Rng() % 2);
    Config.Window.Anchor = static_cast<AnchorKind>(Rng() % 2);
    Config.Window.Resize = static_cast<ResizeKind>(Rng() % 2);
    Config.Model = static_cast<ModelKind>(Rng() % 3);
    Config.TheAnalyzer = static_cast<AnalyzerKind>(Rng() % 3);
    Config.AnalyzerParam = pickOne(Rng, {0.1, 0.3, 0.5, 0.9});
    SiteIndex NumSites = pickOne(Rng, {SiteIndex(3), SiteIndex(8),
                                       SiteIndex(32)});
    uint16_t Flags =
        static_cast<uint16_t>((Rng() % 2 ? HelloWantAnchors : 0) |
                              (Rng() % 2 ? HelloWantProgress : 0));

    ServeLimits Limits;
    Limits.MaxPendingElements = P.HighWatermark;
    LockstepDriver D(M, Limits, Cache, Config, NumSites, Flags);

    std::vector<SiteIndex> Accepted;
    StreamedRun Run;
    std::string Failure;
    auto Context = [&] {
      return " (seed=" + std::to_string(Options.Seed) +
             " iteration=" + std::to_string(It) +
             " batch=" + std::to_string(P.Batch) +
             " watermark=" + std::to_string(P.HighWatermark) +
             " schedule: " + renderWitness(D.Schedule) + ")";
    };

    for (unsigned Step = 0;
         Step != Options.MaxSteps && !ProtocolModel::isTerminal(D.S.St);
         ++Step) {
      ProtoEvent Ev = chooseEvent(Rng, M, D.S);
      std::vector<SiteIndex> Elems;
      if (Ev == ProtoEvent::ElementsOk) {
        size_t Count = 1 + Rng() % P.MaxFrameElements;
        for (size_t I = 0; I != Count; ++I)
          Elems.push_back(static_cast<SiteIndex>(Rng() % NumSites));
      }
      ObservedFrames Obs;
      std::string Diff = D.step(Ev, Elems, Obs);
      if (!Diff.empty()) {
        Failure = "ServeSession diverges from the model: " + Diff;
        break;
      }
      if (Ev == ProtoEvent::ElementsOk)
        Accepted.insert(Accepted.end(), Elems.begin(), Elems.end());
      Run.Transitions.insert(Run.Transitions.end(), Obs.Events.begin(),
                             Obs.Events.end());
      if (Obs.Finisheds != 0) {
        Run.GotFinished = true;
        Run.Summary = Obs.Summary;
      }
    }

    if (Failure.empty() && D.S.St == ProtoState::Done) {
      // Data-plane oracle: a completed session must match the offline
      // detector on the accepted element sequence exactly.
      if (!Run.GotFinished) {
        Failure = "session is Done but no Finished summary was observed";
      } else if (Run.Summary.Elements != Accepted.size()) {
        Failure = "Finished.Elements is " +
                  std::to_string(Run.Summary.Elements) + ", client sent " +
                  std::to_string(Accepted.size());
      } else if (!Accepted.empty()) {
        BranchTrace Trace;
        for (SiteIndex I = 0; I != NumSites; ++I)
          Trace.internSite(ProfileElement(I, 0, false));
        for (SiteIndex E : Accepted)
          Trace.appendIndex(E);
        std::unique_ptr<PhaseDetector> Ref = makeDetector(Config, NumSites);
        DetectorRun Reference = runDetector(*Ref, Trace);
        DetectorRun Streamed = streamedToDetectorRun(Run);
        if (!runsEqual(Reference.States.runs(), Streamed.States.runs()))
          Failure = "streamed state runs differ from offline runDetector";
        else if ((Flags & HelloWantAnchors) &&
                 Reference.AnchoredPhases != Streamed.AnchoredPhases)
          Failure = "streamed anchored phases differ from offline "
                    "runDetector";
        else if (Run.Summary.Transitions != Run.Transitions.size())
          Failure = "Finished.Transitions disagrees with the Transition "
                    "frames observed";
      }
    }

    if (!Failure.empty()) {
      Diags.report(DiagSeverity::Error, ImplLoc, "fuzz-divergence",
                   Failure + Context());
      Reported += 1;
    }
  }
}
