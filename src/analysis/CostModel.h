//===- analysis/CostModel.h - Loop-nest and trace-cost analysis -*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interprocedural estimation of how many profile elements (dynamic
/// branches) each construct of a JP program emits — the static half of
/// the paper's phase structure. The analysis folds constant `times`
/// expressions to bound loop trip counts, propagates a cost lattice
/// through `if`/`when`/`pick` arms, and summarizes methods bottom-up over
/// the call graph's SCCs.
///
/// The lattice is an interval [Min, Max] of element counts where Max may
/// be *unbounded* (recursion whose depth depends on runtime values, or a
/// loop whose trip count is not a compile-time constant):
///
///   exact     Min == Max, bounded — the construct emits exactly that
///             many elements on every execution (probabilistic `branch
///             flip` still emits exactly one element, so flips stay
///             exact; `if`/`pick` arms of different sizes do not).
///   bounded   Min <= Max, both finite.
///   unbounded Max unknown; Min remains a sound lower bound.
///
/// Arithmetic saturates at Cost::Saturated so adversarially large
/// constant trip counts cannot overflow (saturated values compare as
/// "at least this much", which is all Lint's budget checks need).
///
//===----------------------------------------------------------------------===//

#ifndef OPD_ANALYSIS_COSTMODEL_H
#define OPD_ANALYSIS_COSTMODEL_H

#include "analysis/CallGraph.h"
#include "lang/AST.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace opd {

/// Interval lattice of statically estimated element counts.
class Cost {
public:
  /// Saturation cap for the finite arithmetic (2^62; far beyond any
  /// realistic trace budget, small enough that sums cannot wrap).
  static constexpr uint64_t Saturated = uint64_t(1) << 62;

  /// The zero cost (exact 0).
  Cost() = default;

  /// An exact cost of \p N elements.
  static Cost exactly(uint64_t N) { return {N, N, true}; }

  /// A bounded interval [Lo, Hi].
  static Cost between(uint64_t Lo, uint64_t Hi) { return {Lo, Hi, true}; }

  /// An unbounded cost with lower bound \p Lo.
  static Cost atLeast(uint64_t Lo) { return {Lo, 0, false}; }

  uint64_t min() const { return Min; }
  /// Valid only when bounded().
  uint64_t max() const { return Max; }
  bool bounded() const { return Bounded; }
  bool exact() const { return Bounded && Min == Max; }
  bool isZero() const { return Bounded && Max == 0; }

  /// Sequential composition: both costs are paid.
  Cost seq(const Cost &Other) const {
    return {satAdd(Min, Other.Min), satAdd(Max, Other.Max),
            Bounded && Other.Bounded};
  }

  /// Branch join: either cost is paid (interval hull).
  Cost join(const Cost &Other) const {
    return {std::min(Min, Other.Min), std::max(Max, Other.Max),
            Bounded && Other.Bounded};
  }

  /// Repetition: this cost is paid \p Count times. An unknown count
  /// yields [0, unbounded) unless the body is free.
  Cost times(const std::optional<uint64_t> &Count) const {
    if (Count)
      return {satMul(Min, *Count), satMul(Max, *Count), Bounded};
    if (isZero())
      return exactly(0);
    return atLeast(0);
  }

  friend bool operator==(const Cost &A, const Cost &B) {
    return A.Min == B.Min && A.Bounded == B.Bounded &&
           (!A.Bounded || A.Max == B.Max);
  }

private:
  Cost(uint64_t Min, uint64_t Max, bool Bounded)
      : Min(Min), Max(Max), Bounded(Bounded) {}

  static uint64_t satAdd(uint64_t A, uint64_t B) {
    return A + B < Saturated ? A + B : Saturated;
  }
  static uint64_t satMul(uint64_t A, uint64_t B) {
    if (A == 0 || B == 0)
      return 0;
    return A < Saturated / B ? A * B : Saturated;
  }

  uint64_t Min = 0;
  uint64_t Max = 0;
  bool Bounded = true;
};

/// Static facts about one `loop` statement.
struct LoopCost {
  const LoopStmt *Loop;
  /// Enclosing method index.
  uint32_t Method;
  /// Static nesting depth within the method (0 = top level).
  uint32_t Depth;
  /// Constant trip count when the `times` expression folds (clamped to 0
  /// like the interpreter clamps negatives); nullopt when it depends on
  /// parameters or loop variables.
  std::optional<uint64_t> TripCount;
  /// Elements emitted by one iteration of the body.
  Cost Body;
  /// Elements emitted by one full execution of the loop.
  Cost Total;
};

/// Interprocedural cost summaries for a whole program.
class CostAnalysis {
public:
  /// Runs the analysis over \p Prog using \p Graph's SCC order. The
  /// program must have passed Sema.
  static CostAnalysis run(const Program &Prog, const CallGraph &Graph);

  /// Elements one invocation of method \p Method emits (including its
  /// transitive callees).
  const Cost &methodCost(uint32_t Method) const {
    return MethodCosts[Method];
  }

  /// Elements one run of the program emits (the entry method's cost).
  const Cost &programCost() const { return MethodCosts[Entry]; }

  /// Every `loop` statement with its bounds, in (method, AST) order.
  const std::vector<LoopCost> &loops() const { return Loops; }

private:
  std::vector<Cost> MethodCosts;
  std::vector<LoopCost> Loops;
  uint32_t Entry = 0;
};

} // namespace opd

#endif // OPD_ANALYSIS_COSTMODEL_H
