//===- analysis/ConfigCanon.h - Detector-config canonicalizer ---*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Canonicalization of DetectorConfig: rewriting a configuration into a
/// normal form such that two configurations with equal normal forms are
/// *guaranteed to produce identical detector output on every trace* —
/// byte-identical StateSequences, identical detected phases, and (when
/// the canonicalizer is told anchored scoring is in play) identical
/// anchor-corrected phases.
///
/// Every rewrite carries a MergeRule justification that names the
/// machine-checkable argument for why the rewritten field cannot affect
/// the output; tests/ConfigAnalysisTest.cpp validates each rule by
/// brute-force comparison of full state sequences over the bundled
/// workload traces. Rules the checker cannot prove are NOT applied — in
/// particular WeightedSet and ManhattanBBV compute the same similarity
/// mathematically but round differently in floating point, so they stay
/// unmerged.
///
/// The rule catalogue (docs/ANALYSIS.md documents the full argument for
/// each):
///
///  * DeadResizeConstantTW — WindowedModel reads Resize only inside
///    startPhase() under the Adaptive policy; a Constant TW never
///    resizes, so the field is dead.
///  * DeadAnchorUnanchored — under a Constant TW the anchor policy only
///    influences lastPhaseStartEstimate(), which only anchored scoring
///    consumes; with anchored scoring off the field is dead. (Under the
///    Adaptive policy the anchor also moves the TW, so it stays live.)
///  * SaturatedAnalyzerAlwaysP — an analyzer that provably returns P for
///    every similarity value in [0, 1] (threshold <= 0, average delta
///    >= 1, hysteresis enter == 0) is interchangeable with any other
///    such analyzer: the output is T until the windows first fill, then
///    P forever.
///  * DeadModelSaturated — under an always-P analyzer the similarity
///    value is computed but never compared, and anchoring reads only the
///    kernel's occupancy counts, which every model maintains
///    identically; the model policy is dead.
///  * DeadPolicySaturated — under an always-P analyzer exactly one T->P
///    transition occurs and no P->T ever does, so startPhase() runs once
///    *after* the anchor estimate is taken and endPhase() never runs;
///    the TW policy and resize policy cannot affect any output.
///  * DeadWindowSplitSaturated — under an always-P analyzer (and no
///    anchored scoring) the flip happens at the first batch boundary
///    with >= CW+TW elements consumed; only the sum CW+TW matters, not
///    the split.
///  * UnsatisfiableAnalyzerAlwaysT — an analyzer that provably returns T
///    for every value in [0, 1] (threshold > 1, hysteresis enter > 1)
///    never starts a phase; the output is all-T of trace length.
///  * DeadConfigUnsatisfiable — under an always-T analyzer no other
///    parameter can affect the (all-T, phase-free) output; the whole
///    configuration collapses to one canonical point.
///  * IdenticalConfig — not a rewrite: the justification recorded when
///    two enumerated points were equal before any rule fired (duplicate
///    dimension values, the Fixed-Interval point coinciding with an
///    enumerated Constant/skip==CW point).
///
//===----------------------------------------------------------------------===//

#ifndef OPD_ANALYSIS_CONFIGCANON_H
#define OPD_ANALYSIS_CONFIGCANON_H

#include "core/DetectorConfig.h"

#include <string>
#include <vector>

namespace opd {

/// Justification tags for canonicalization rewrites (see file comment).
enum class MergeRule : uint8_t {
  IdenticalConfig,
  DeadResizeConstantTW,
  DeadAnchorUnanchored,
  SaturatedAnalyzerAlwaysP,
  DeadModelSaturated,
  DeadPolicySaturated,
  DeadWindowSplitSaturated,
  UnsatisfiableAnalyzerAlwaysT,
  DeadConfigUnsatisfiable,
};

/// Stable kebab-case rule name ("dead-resize-constant-tw", ...).
const char *mergeRuleName(MergeRule Rule);

/// One-sentence justification of why the rule preserves detector output.
const char *mergeRuleJustification(MergeRule Rule);

/// Static classification of an analyzer's reachable decisions over the
/// similarity domain [0, 1].
enum class AnalyzerRange : uint8_t {
  Normal,           ///< Both P and T are reachable.
  AlwaysInPhase,    ///< Provably P for every value once evaluating.
  AlwaysTransition, ///< Provably T for every value.
};

/// Classifies the analyzer makeAnalyzer(\p Kind, \p Param) builds.
AnalyzerRange classifyAnalyzer(AnalyzerKind Kind, double Param);

/// Canonicalizer knobs.
struct ConfigCanonOptions {
  /// Whether anchor-corrected phase starts are part of the output being
  /// preserved (SweepOptions::ScoreAnchored). When true the anchor
  /// policy stays live under a Constant TW and the window split stays
  /// live under a saturated analyzer; the default is the conservative
  /// setting.
  bool AnchoredScoring = true;
};

/// A canonicalized configuration plus the rules that rewrote it.
struct CanonResult {
  DetectorConfig Canonical;
  /// Rules applied, in application order; empty when the config was
  /// already in normal form.
  std::vector<MergeRule> Applied;
};

/// Rewrites \p Config into its normal form. Idempotent: canonicalizing
/// a canonical form applies no further rules.
CanonResult canonicalizeConfig(const DetectorConfig &Config,
                               const ConfigCanonOptions &Options = {});

/// A total-order key for a configuration: equal keys iff field-wise
/// equal configs (the double parameter is compared by bit pattern).
/// Partitioning keys on canonicalizeConfig().Canonical.
std::string configKey(const DetectorConfig &Config);

} // namespace opd

#endif // OPD_ANALYSIS_CONFIGCANON_H
