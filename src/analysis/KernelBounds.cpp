//===- analysis/KernelBounds.cpp - Kernel value-range certifier -------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "analysis/KernelBounds.h"

#include "core/BatchKernel.h"

#include <algorithm>
#include <limits>

using namespace opd;

namespace {

/// Spec-level diagnostics have no source text to point at.
constexpr SourceLoc SpecLoc{0, 0};

/// The abstract domain: intervals [0, Max] in unsigned 128-bit
/// arithmetic, plus an explicit unbounded top element. 128 bits suffice
/// exactly: every concrete quantity is a uint64_t (or narrower), so the
/// product of two in-range factors — the widest expression the kernel
/// dataflow forms — fits 128 bits, and a derived bound above 2^64 stays
/// representable instead of silently wrapping inside the certifier.
using U128 = unsigned __int128;

struct Interval {
  bool Bounded = false;
  U128 Max = 0;
};

constexpr Interval top() { return {false, 0}; }
constexpr Interval upTo(U128 Max) { return {true, Max}; }

/// Interval meet on upper bounds: the concrete value is known to be
/// below both arguments.
Interval meet(Interval A, Interval B) {
  if (!A.Bounded)
    return B;
  if (!B.Bounded)
    return A;
  return upTo(std::min(A.Max, B.Max));
}

/// Abstract multiplication: [0,a] * [0,b] = [0, a*b]; anything times an
/// unbounded factor is unbounded (the other factor is never provably 0).
Interval mul(Interval A, Interval B) {
  if (!A.Bounded || !B.Bounded)
    return top();
  return upTo(A.Max * B.Max);
}

/// Interval join on upper bounds (certificate merging).
Interval join(Interval A, Interval B) {
  if (!A.Bounded || !B.Bounded)
    return top();
  return upTo(std::max(A.Max, B.Max));
}

/// ceil(log2(V+1)): the minimal number of bits that can store V.
unsigned bitsFor(U128 V) {
  unsigned Bits = 0;
  while (V != 0) {
    V >>= 1;
    ++Bits;
  }
  return Bits;
}

/// True if \p Q is a per-site count held in uint32_t storage.
bool isCountQuantity(KernelQuantity Q) {
  return Q == KernelQuantity::CWCount || Q == KernelQuantity::TWCount;
}

/// True if \p Q is one of the uint64_t cross-products or the MinSum
/// accumulator (the quantities the overflow diagnostics gate on).
bool isProductQuantity(KernelQuantity Q) {
  return Q == KernelQuantity::ProductCWTW ||
         Q == KernelQuantity::ProductTWCW || Q == KernelQuantity::MinSum;
}

/// The quantities the model \p M actually computes.
bool applicableTo(ModelKind M, KernelQuantity Q) {
  switch (Q) {
  case KernelQuantity::CWCount:
  case KernelQuantity::TWCount:
  case KernelQuantity::CWTotal:
  case KernelQuantity::TWTotal:
    return true;
  case KernelQuantity::CWDistinct:
  case KernelQuantity::BothDistinct:
    return M == ModelKind::UnweightedSet;
  case KernelQuantity::ProductCWTW:
  case KernelQuantity::ProductTWCW:
  case KernelQuantity::MinSum:
    return M == ModelKind::WeightedSet;
  }
  return false;
}

/// Fills one QuantityBound from the abstract value \p I.
QuantityBound makeBound(KernelQuantity Q, bool Applicable, Interval I) {
  QuantityBound B;
  B.Quantity = Q;
  B.Applicable = Applicable;
  if (!Applicable)
    return B;
  B.Bounded = I.Bounded;
  if (!I.Bounded)
    return B;
  constexpr U128 U64Max = std::numeric_limits<uint64_t>::max();
  B.Max = I.Max > U64Max ? std::numeric_limits<uint64_t>::max()
                         : static_cast<uint64_t>(I.Max);
  B.Bits = bitsFor(I.Max);
  U128 Storage = isCountQuantity(Q)
                     ? static_cast<U128>(std::numeric_limits<uint32_t>::max())
                     : U64Max;
  B.FitsStorage = I.Max <= Storage;
  return B;
}

/// Rounds a bit count up to a machine lane width; 0 when no 64-bit lane
/// can hold it.
unsigned laneFor(unsigned Bits) {
  if (Bits == 0)
    return 8;
  if (Bits <= 8)
    return 8;
  if (Bits <= 16)
    return 16;
  if (Bits <= 32)
    return 32;
  if (Bits <= 64)
    return 64;
  return 0;
}

/// Worst case of two exactness claims (ExactWithin53 strongest).
ThresholdExactness weaker(ThresholdExactness A, ThresholdExactness B) {
  auto Rank = [](ThresholdExactness E) {
    switch (E) {
    case ThresholdExactness::ExactWithin53:
      return 0;
    case ThresholdExactness::MarginFallback:
      return 1;
    case ThresholdExactness::QuotientPath:
      return 2;
    }
    return 2;
  };
  return Rank(A) >= Rank(B) ? A : B;
}

/// Recomputes the derived summary fields (NoWraparound, lane widths)
/// from the per-quantity bounds.
void summarize(KernelCertificate &Cert) {
  Cert.NoWraparound = true;
  unsigned CountBits = 0;
  unsigned WideBits = 0;
  bool CountsCertified = true;
  bool WideCertified = true;
  for (const QuantityBound &B : Cert.Bounds) {
    if (!B.Applicable)
      continue;
    if (!B.Bounded || !B.FitsStorage)
      Cert.NoWraparound = false;
    bool Certified = B.Bounded && B.Bits <= 64;
    if (isCountQuantity(B.Quantity)) {
      CountsCertified &= Certified;
      CountBits = std::max(CountBits, B.Bits);
    } else {
      WideCertified &= Certified;
      WideBits = std::max(WideBits, B.Bits);
    }
  }
  Cert.CountLaneBits = CountsCertified ? laneFor(CountBits) : 0;
  Cert.ProductLaneBits = WideCertified ? laneFor(WideBits) : 0;
}

} // namespace

const char *opd::thresholdExactnessName(ThresholdExactness E) {
  switch (E) {
  case ThresholdExactness::ExactWithin53:
    return "exact-53";
  case ThresholdExactness::MarginFallback:
    return "margin-fallback";
  case ThresholdExactness::QuotientPath:
    return "quotient-path";
  }
  return "unknown";
}

KernelCertificate opd::certifyKernel(const DetectorConfig &Config,
                                     const TraceBounds &Stats) {
  KernelCertificate Cert;
  Cert.Config = Config;
  Cert.Stats = Stats;
  Cert.Shape = fastShapeIndex(Config);
  Cert.NumConfigs = 1;

  const WindowConfig &W = Config.Window;

  // Window-length invariants (see the header comment): the CW never
  // exceeds its configured size under any policy; a Constant TW never
  // exceeds its size; an Adaptive TW is bounded only by the trace.
  Interval NCW = upTo(W.CWSize);
  Interval NTW = W.TWPolicy == TWPolicyKind::Constant
                     ? upTo(W.TWSize)
                     : (Stats.TraceLen ? upTo(Stats.TraceLen) : top());

  // A per-site count is bounded by its window's length and by the
  // site's total multiplicity in the trace (itself at most the trace
  // length).
  Interval Mult = Stats.MaxMultiplicity
                      ? upTo(Stats.MaxMultiplicity)
                      : (Stats.TraceLen ? upTo(Stats.TraceLen) : top());
  Interval Sites = Stats.NumSites ? upTo(Stats.NumSites) : top();

  Interval CWCount = meet(NCW, Mult);
  Interval TWCount = meet(NTW, Mult);

  // Distinct-site counters: at most the window length, at most the
  // site-table size.
  Interval CWDistinct = meet(NCW, Sites);
  Interval BothDistinct = meet(meet(CWDistinct, NTW), Sites);

  // The weighted dataflow's widest expressions. Each product is
  // evaluated in full before the min() that discards the larger one, so
  // each must individually fit uint64_t; this covers the fast path's
  // post-increment/post-decrement products too, because the bumped
  // count is itself a reachable count value below CWCount/TWCount.
  Interval ProductCWTW = mul(CWCount, NTW);
  Interval ProductTWCW = mul(TWCount, NCW);

  // MinSum = sum_s min(cw[s]*NTW, tw[s]*NCW) <= sum_s cw[s]*NTW
  //        = NCW*NTW.
  Interval MinSum = mul(NCW, NTW);

  auto Set = [&](KernelQuantity Q, Interval I) {
    Cert.Bounds[static_cast<unsigned>(Q)] =
        makeBound(Q, applicableTo(Config.Model, Q), I);
  };
  Set(KernelQuantity::CWCount, CWCount);
  Set(KernelQuantity::TWCount, TWCount);
  Set(KernelQuantity::CWTotal, NCW);
  Set(KernelQuantity::TWTotal, NTW);
  Set(KernelQuantity::CWDistinct, CWDistinct);
  Set(KernelQuantity::BothDistinct, BothDistinct);
  Set(KernelQuantity::ProductCWTW, ProductCWTW);
  Set(KernelQuantity::ProductTWCW, ProductTWCW);
  Set(KernelQuantity::MinSum, MinSum);

  summarize(Cert);

  // Certificate component (c): the threshold-decision exactness.
  if (Config.TheAnalyzer != AnalyzerKind::Threshold ||
      Config.Model == ModelKind::ManhattanBBV) {
    // Average/Hysteresis consume the similarity quotient itself, and
    // the Manhattan similarity is inherently floating-point.
    Cert.Exactness = ThresholdExactness::QuotientPath;
  } else if (Config.Model == ModelKind::UnweightedSet) {
    // The unweighted decision divides two distinct-site counters, each
    // below 2^32 < 2^53: both doubles are exact.
    Cert.Exactness = ThresholdExactness::ExactWithin53;
  } else {
    // Weighted: the division-free comparison reads MinSum and
    // double(NCW)*double(NTW); NCW*NTW bounds both sides.
    constexpr U128 TwoTo53 = static_cast<U128>(1) << 53;
    Cert.Exactness = MinSum.Bounded && MinSum.Max < TwoTo53
                         ? ThresholdExactness::ExactWithin53
                         : ThresholdExactness::MarginFallback;
  }
  return Cert;
}

void opd::mergeCertificate(KernelCertificate &Into,
                           const KernelCertificate &C) {
  assert(Into.Shape == C.Shape && "merging certificates across shapes");
  Into.NumConfigs += C.NumConfigs;
  for (unsigned I = 0; I != NumKernelQuantities; ++I) {
    QuantityBound &A = Into.Bounds[I];
    const QuantityBound &B = C.Bounds[I];
    assert(A.Applicable == B.Applicable &&
           "same-shape certificates must agree on applicability");
    if (!A.Applicable)
      continue;
    // Rebuild the joined bound through the same 128-bit path so the
    // saturated Max / Bits fields stay mutually consistent. A saturated
    // uint64_t Max only ever joins with another saturated one at the
    // same reported value, so joining the saturated fields is exact.
    Interval IA = A.Bounded ? upTo(A.Max) : top();
    Interval IB = B.Bounded ? upTo(B.Max) : top();
    unsigned MaxBits = std::max(A.Bits, B.Bits);
    bool Fits = A.FitsStorage && B.FitsStorage;
    A = makeBound(A.Quantity, true, join(IA, IB));
    // bitsFor() on the saturated Max under-reports a >64-bit bound;
    // restore the wider source's true bit count and fit claim.
    A.Bits = std::max(A.Bits, MaxBits);
    A.FitsStorage = A.Bounded && Fits;
  }
  summarize(Into);
  Into.Exactness = weaker(Into.Exactness, C.Exactness);
}

void opd::lintCertificate(const KernelCertificate &Cert,
                          DiagnosticEngine &Diags) {
  const std::string Desc = Cert.Config.describe();
  // Within 6 bits of the 64-bit cliff: one more decimal digit of window
  // size would overflow.
  constexpr uint64_t NearLimit = static_cast<uint64_t>(1) << 58;

  bool AnyUnbounded = false;
  for (const QuantityBound &B : Cert.Bounds) {
    if (!B.Applicable)
      continue;
    if (!B.Bounded) {
      AnyUnbounded = true;
      continue;
    }
    if (isCountQuantity(B.Quantity) && !B.FitsStorage) {
      Diags.report(DiagSeverity::Error, SpecLoc, "kernel-count-overflow",
                   std::string(kernelQuantityName(B.Quantity)) +
                       " can reach " + std::to_string(B.Max) + " (" +
                       std::to_string(B.Bits) +
                       " bits), wrapping the uint32_t window counts; '" +
                       Desc + "' must not run on the integer kernels");
      continue;
    }
    if (!isProductQuantity(B.Quantity))
      continue;
    if (!B.FitsStorage) {
      Diags.report(DiagSeverity::Error, SpecLoc, "kernel-product-overflow",
                   std::string(kernelQuantityName(B.Quantity)) +
                       " needs " + std::to_string(B.Bits) +
                       " bits, wrapping the uint64_t kernel arithmetic; '" +
                       Desc + "' must not run on the integer kernels");
    } else if (B.Max >= NearLimit) {
      Diags.report(DiagSeverity::Warning, SpecLoc,
                   "kernel-product-near-64bit",
                   std::string(kernelQuantityName(B.Quantity)) +
                       " can reach " + std::to_string(B.Max) + " (" +
                       std::to_string(B.Bits) +
                       " bits), within 6 bits of the uint64_t limit; '" +
                       Desc + "' leaves no headroom for larger windows");
    }
  }

  if (AnyUnbounded)
    Diags.report(
        DiagSeverity::Warning, SpecLoc, "kernel-unbounded-tw",
        "adaptive TW growth is unbounded without a trace length; cannot "
        "certify the TW-dependent quantities of '" +
            Desc + "' (provide --trace-len to bound them)");
}

bool opd::admitsBatchLanes(const KernelCertificate &Cert) {
  BatchLanePlan Plan = batchLanePlan(Cert.Config.Model);
  // No batch kernel compiled for the model at all: nothing to admit.
  if (Plan.CountLaneBits == 0)
    return false;
  // The batch kernels assume the certified wraparound-free dataflow (the
  // AVX2 min-sum derives its exactness from MinSum <= NCW*NTW, and the
  // per-site counts must fit their uint32_t lanes).
  if (!Cert.NoWraparound)
    return false;
  if (Cert.CountLaneBits == 0 || Cert.CountLaneBits > Plan.CountLaneBits)
    return false;
  if (Plan.ProductLaneBits != 0 &&
      (Cert.ProductLaneBits == 0 ||
       Cert.ProductLaneBits > Plan.ProductLaneBits))
    return false;
  return true;
}

std::string opd::renderCertificateJSON(const KernelCertificate &Cert) {
  std::string Out = "{\n";
  Out += "    \"config\": \"" + Cert.Config.describe() + "\",\n";
  Out += "    \"shape\": " + std::to_string(Cert.Shape) + ",\n";
  Out += "    \"configs_merged\": " + std::to_string(Cert.NumConfigs) + ",\n";
  Out += "    \"no_wraparound\": ";
  Out += Cert.NoWraparound ? "true" : "false";
  Out += ",\n";
  Out += "    \"batch_admitted\": ";
  Out += admitsBatchLanes(Cert) ? "true" : "false";
  Out += ",\n";
  Out += "    \"count_lane_bits\": " + std::to_string(Cert.CountLaneBits) +
         ",\n";
  Out +=
      "    \"product_lane_bits\": " + std::to_string(Cert.ProductLaneBits) +
      ",\n";
  Out += "    \"threshold_exactness\": \"";
  Out += thresholdExactnessName(Cert.Exactness);
  Out += "\",\n";
  Out += "    \"bounds\": [";
  bool First = true;
  for (const QuantityBound &B : Cert.Bounds) {
    if (!B.Applicable)
      continue;
    if (!First)
      Out += ",";
    First = false;
    Out += "\n      {\"quantity\": \"";
    Out += kernelQuantityName(B.Quantity);
    Out += "\", \"bounded\": ";
    Out += B.Bounded ? "true" : "false";
    if (B.Bounded) {
      Out += ", \"max\": " + std::to_string(B.Max);
      Out += ", \"bits\": " + std::to_string(B.Bits);
      Out += ", \"fits\": ";
      Out += B.FitsStorage ? "true" : "false";
    }
    Out += "}";
  }
  Out += "\n    ]\n  }";
  return Out;
}
