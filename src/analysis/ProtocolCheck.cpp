//===- analysis/ProtocolCheck.cpp - Explicit-state protocol checker ---------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "analysis/ProtocolCheck.h"

#include <map>
#include <string>

using namespace opd;

namespace {

constexpr SourceLoc ModelLoc{0, 0};

/// Packs a configuration into a totally ordered key for the visited map.
uint64_t configKey(const ProtoConfigState &S) {
  return uint64_t(S.Occupancy) | (uint64_t(S.St) << 32) |
         (uint64_t(S.ReadPaused) << 40) | (uint64_t(S.Err) << 48);
}

bool eventOffered(const ProtocolModel &M, const ProtoConfigState &S,
                  ProtoEvent Ev, const ProtocolCheckOptions &Options) {
  if (Options.SimulateReadWhileSaturated)
    return true;
  return M.offered(S, Ev);
}

std::string describeConfig(const ProtoConfigState &S) {
  std::string Out = ProtocolModel::stateName(S.St);
  Out += "(occ=" + std::to_string(S.Occupancy);
  if (S.ReadPaused)
    Out += ", paused";
  if (S.Err != ServeError::None)
    Out += std::string(", err=") + serveErrorName(S.Err);
  Out += ")";
  return Out;
}

std::string describeStep(const ProtoStep &Step) {
  std::string Out = ProtocolModel::eventName(Step.Event);
  if (Step.Event == ProtoEvent::ElementsOk) {
    Out += "(";
    Out += std::to_string(Step.Count);
    Out += ")";
  }
  return Out;
}

} // namespace

std::string opd::renderWitness(const std::vector<ProtoStep> &Path) {
  if (Path.empty())
    return "<initial>";
  std::string Out;
  for (const ProtoStep &Step : Path) {
    if (!Out.empty())
      Out += " -> ";
    Out += describeStep(Step);
  }
  return Out;
}

ProtoExploration opd::exploreProtocol(const ProtocolModel &M,
                                      const ProtocolCheckOptions &Options) {
  ProtoExploration Ex;
  std::map<uint64_t, uint32_t> Visited;
  // Expansion frontier cap: a configuration above the occupancy bound is
  // already a watermark violation, and expanding it further would make
  // the faulted (SimulateReadWhileSaturated) space unbounded.
  const uint32_t OccMax =
      M.params().HighWatermark - 1 + M.params().MaxFrameElements;

  ProtoConfigState Init;
  Ex.States.push_back(Init);
  Ex.Witness.emplace_back();
  Visited[configKey(Init)] = 0;

  for (uint32_t Head = 0; Head != Ex.States.size(); ++Head) {
    const ProtoConfigState S = Ex.States[Head];
    if (S.Occupancy > OccMax)
      continue;
    for (unsigned E = 0; E != NumProtoEvents; ++E) {
      ProtoEvent Ev = static_cast<ProtoEvent>(E);
      if (!eventOffered(M, S, Ev, Options))
        continue;
      uint32_t MaxCount =
          Ev == ProtoEvent::ElementsOk ? M.params().MaxFrameElements : 0;
      for (uint32_t Count = Ev == ProtoEvent::ElementsOk ? 1 : 0;
           Count <= MaxCount; ++Count) {
        ProtocolModel::StepResult Res = M.step(S, Ev, Count);
        if (!Res.Rule || Res.Ambiguous) {
          Ex.Complete = false;
          continue;
        }
        uint64_t Key = configKey(Res.Next);
        auto It = Visited.find(Key);
        uint32_t ToIdx;
        if (It == Visited.end()) {
          ToIdx = uint32_t(Ex.States.size());
          Visited[Key] = ToIdx;
          Ex.States.push_back(Res.Next);
          std::vector<ProtoStep> Path = Ex.Witness[Head];
          Path.push_back({Ev, Count});
          Ex.Witness.push_back(std::move(Path));
        } else {
          ToIdx = It->second;
        }
        Ex.Edges.push_back({Head, ToIdx, {Ev, Count}, Res.Decided, Res.Rule});
      }
    }
  }
  return Ex;
}

ProtoExploration opd::checkProtocolModel(const ProtocolModel &M,
                                         const ProtocolCheckOptions &Options,
                                         DiagnosticEngine &Diags) {
  const ProtocolParams &P = M.params();
  const uint32_t OccMax = P.HighWatermark - 1 + P.MaxFrameElements;

  //===--------------------------------------------------------------------===//
  // Table well-formedness: the structural rules every row must satisfy,
  // checked before any exploration so a broken table is reported at its
  // row rather than as a downstream symptom.
  //===--------------------------------------------------------------------===//
  const std::vector<TransitionRule> &Rules = M.rules();
  for (size_t I = 0; I != Rules.size(); ++I) {
    const TransitionRule &R = Rules[I];
    std::string Where = std::string("rule #") + std::to_string(I) + " (" +
                        ProtocolModel::stateName(R.From) + ", " +
                        ProtocolModel::eventName(R.Event) + ")";
    bool EntersFailed =
        R.To == ProtoState::Failed && R.From != ProtoState::Failed;
    if (EntersFailed && R.Err == ServeError::None)
      Diags.report(DiagSeverity::Error, ModelLoc, "malformed-rule",
                   Where + " enters Failed without an error code");
    if (!EntersFailed && R.Err != ServeError::None)
      Diags.report(DiagSeverity::Error, ModelLoc, "malformed-rule",
                   Where + " carries error code " + serveErrorName(R.Err) +
                       " but does not enter Failed");
    if (R.EmitHelloAck && !(R.From == ProtoState::AwaitHello &&
                            R.To == ProtoState::Streaming))
      Diags.report(DiagSeverity::Error, ModelLoc, "malformed-rule",
                   Where + " emits HelloAck outside the handshake edge");
    if (R.EmitFinished && R.To != ProtoState::Done)
      Diags.report(DiagSeverity::Error, ModelLoc, "malformed-rule",
                   Where + " emits Finished without entering Done");
  }

  //===--------------------------------------------------------------------===//
  // Totality: every (state, event) pair must have exactly one applicable
  // rule at every occupancy the product space admits — including
  // configurations the I/O discipline never offers, because the table is
  // the spec and must not have holes.
  //===--------------------------------------------------------------------===//
  for (unsigned StI = 0; StI != NumProtoStates; ++StI) {
    for (unsigned E = 0; E != NumProtoEvents; ++E) {
      for (uint32_t Occ = 0; Occ <= OccMax; ++Occ) {
        ProtoConfigState S;
        S.St = static_cast<ProtoState>(StI);
        S.Occupancy = Occ;
        ProtocolModel::StepResult Res =
            M.step(S, static_cast<ProtoEvent>(E), 1);
        std::string Where =
            std::string("(") + ProtocolModel::stateName(S.St) + ", " +
            ProtocolModel::eventName(static_cast<ProtoEvent>(E)) +
            ", occ=" + std::to_string(Occ) + ")";
        if (!Res.Rule) {
          Diags.report(DiagSeverity::Error, ModelLoc, "missing-transition",
                       "no rule applies at " + Where +
                           ": the transition function is not total");
          break; // One report per (state, event) is enough.
        }
        if (Res.Ambiguous) {
          Diags.report(DiagSeverity::Error, ModelLoc, "ambiguous-transition",
                       "more than one rule applies at " + Where);
          break;
        }
      }
    }
  }

  ProtoExploration Ex = exploreProtocol(M, Options);
  if (!Ex.Complete)
    return Ex; // Holes already diagnosed; the graph is partial.

  //===--------------------------------------------------------------------===//
  // Reachability: every lifecycle state and every session-level error
  // code must actually be reachable from the initial configuration.
  //===--------------------------------------------------------------------===//
  bool SeenState[NumProtoStates] = {};
  bool SeenErr[32] = {};
  for (const ProtoConfigState &S : Ex.States) {
    SeenState[unsigned(S.St)] = true;
    if (S.St == ProtoState::Failed)
      SeenErr[unsigned(S.Err) & 31] = true;
  }
  for (unsigned StI = 0; StI != NumProtoStates; ++StI)
    if (!SeenState[StI])
      Diags.report(DiagSeverity::Error, ModelLoc, "unreachable-state",
                   std::string("lifecycle state ") +
                       ProtocolModel::stateName(static_cast<ProtoState>(StI)) +
                       " is unreachable");
  for (const ProtocolModel::ErrorInfo &EI : ProtocolModel::errorCodes()) {
    if (!EI.SessionLevel)
      continue;
    if (!SeenErr[EI.Value & 31])
      Diags.report(DiagSeverity::Error, ModelLoc, "unreachable-state",
                   std::string("session-level error code '") + EI.Name +
                       "' is never emitted");
  }

  //===--------------------------------------------------------------------===//
  // No stuck states: from every reachable non-terminal configuration
  // some offered event sequence reaches a terminal. Reverse reachability
  // from the terminal set over the explored edges.
  //===--------------------------------------------------------------------===//
  std::vector<char> Reaches(Ex.States.size(), 0);
  for (size_t I = 0; I != Ex.States.size(); ++I)
    if (ProtocolModel::isTerminal(Ex.States[I].St))
      Reaches[I] = 1;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const ProtoEdge &E : Ex.Edges)
      if (!Reaches[E.From] && Reaches[E.To]) {
        Reaches[E.From] = 1;
        Changed = true;
      }
  }
  unsigned StuckReported = 0;
  for (size_t I = 0; I != Ex.States.size(); ++I) {
    // Over-bound configurations are frontier-capped (not expanded), so a
    // missing escape path there is an artifact of the cap, not a table
    // defect; they are reported as watermark violations below instead.
    if (Reaches[I] || StuckReported >= 16 || Ex.States[I].Occupancy > OccMax)
      continue;
    ++StuckReported;
    Diags.report(DiagSeverity::Error, ModelLoc, "stuck-state",
                 describeConfig(Ex.States[I]) +
                     " has no offered path to a terminal state"
                     " (witness: " +
                     renderWitness(Ex.Witness[I]) + ")");
  }

  //===--------------------------------------------------------------------===//
  // Bounded drain: Evict and Drain close the session in a single step
  // from every reachable configuration, and a draining session finishes
  // under repeated one-batch pumps within ceil(occ / Batch) + 1 steps.
  //===--------------------------------------------------------------------===//
  for (size_t I = 0; I != Ex.States.size(); ++I) {
    const ProtoConfigState &S = Ex.States[I];
    for (ProtoEvent Ev : {ProtoEvent::Evict, ProtoEvent::Drain}) {
      ProtocolModel::StepResult Res = M.step(S, Ev);
      if (Res.Rule && !ProtocolModel::isTerminal(Res.Next.St))
        Diags.report(DiagSeverity::Error, ModelLoc, "unbounded-drain",
                     std::string(ProtocolModel::eventName(Ev)) + " from " +
                         describeConfig(S) + " reaches " +
                         describeConfig(Res.Next) +
                         " instead of a terminal state (witness: " +
                         renderWitness(Ex.Witness[I]) + ")");
    }
    if (S.St != ProtoState::Draining)
      continue;
    uint32_t Budget = (S.Occupancy + P.Batch - 1) / P.Batch + 1;
    ProtoConfigState Cur = S;
    bool Closed = false;
    for (uint32_t Step = 0; Step != Budget; ++Step) {
      ProtocolModel::StepResult Res = M.step(Cur, ProtoEvent::PumpOne);
      if (!Res.Rule)
        break;
      Cur = Res.Next;
      if (ProtocolModel::isTerminal(Cur.St)) {
        Closed = true;
        break;
      }
    }
    if (!Closed)
      Diags.report(DiagSeverity::Error, ModelLoc, "unbounded-drain",
                   "draining session " + describeConfig(S) +
                       " does not finish within " + std::to_string(Budget) +
                       " one-batch pumps (witness: " +
                       renderWitness(Ex.Witness[I]) + ")");
  }

  //===--------------------------------------------------------------------===//
  // Watermark discipline and buffer accounting, on every reachable
  // configuration and every explored edge.
  //===--------------------------------------------------------------------===//
  for (size_t I = 0; I != Ex.States.size(); ++I) {
    const ProtoConfigState &S = Ex.States[I];
    if (S.Occupancy > OccMax)
      Diags.report(DiagSeverity::Error, ModelLoc, "watermark-violation",
                   describeConfig(S) + " exceeds the occupancy bound " +
                       std::to_string(OccMax) + " (witness: " +
                       renderWitness(Ex.Witness[I]) + ")");
    if (!ProtocolModel::isTerminal(S.St) && !S.ReadPaused &&
        S.Occupancy >= P.HighWatermark)
      Diags.report(DiagSeverity::Error, ModelLoc, "watermark-violation",
                   describeConfig(S) +
                       " is at or above the high watermark while the "
                       "server is still reading (witness: " +
                       renderWitness(Ex.Witness[I]) + ")");
    if (ProtocolModel::isTerminal(S.St) && S.Occupancy != 0)
      Diags.report(DiagSeverity::Error, ModelLoc, "buffer-leak",
                   describeConfig(S) +
                       " is terminal but still holds buffered elements "
                       "(witness: " +
                       renderWitness(Ex.Witness[I]) + ")");
  }
  unsigned PausedReadReported = 0;
  for (const ProtoEdge &E : Ex.Edges) {
    const ProtoConfigState &From = Ex.States[E.From];
    const ProtoConfigState &To = Ex.States[E.To];
    if (From.ReadPaused && ProtocolModel::isClientFrameEvent(E.Step.Event) &&
        PausedReadReported < 16) {
      ++PausedReadReported;
      Diags.report(DiagSeverity::Error, ModelLoc, "watermark-violation",
                   "client frame " + describeStep(E.Step) +
                       " processed while the read was paused at " +
                       describeConfig(From));
    }
    if (!From.ReadPaused && To.ReadPaused) {
      if (E.Step.Event != ProtoEvent::ElementsOk ||
          To.Occupancy < P.HighWatermark)
        Diags.report(DiagSeverity::Error, ModelLoc, "watermark-violation",
                     "read pauses on " + describeStep(E.Step) + " from " +
                         describeConfig(From) + " to " + describeConfig(To) +
                         " without crossing the high watermark");
    }
    if (From.ReadPaused && !To.ReadPaused &&
        !ProtocolModel::isTerminal(To.St) &&
        To.Occupancy >= P.HighWatermark / 2)
      Diags.report(DiagSeverity::Error, ModelLoc, "watermark-violation",
                   "read resumes on " + describeStep(E.Step) + " from " +
                       describeConfig(From) + " to " + describeConfig(To) +
                       " above the low watermark " +
                       std::to_string(P.HighWatermark / 2));
  }

  return Ex;
}
