//===- baseline/InstanceTree.h - Repetition instance forest -----*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The baseline (oracle) solution works from the dynamic call-loop trace
/// (Section 3.1): every loop execution and method invocation becomes a
/// *repetition instance* spanning an interval of profile-element offsets.
/// Because enters/exits are properly nested, the instances form a tree
/// under a synthetic whole-trace root. InstanceTree builds that tree in
/// one stack-based pass and marks recursion roots (the outermost on-stack
/// instance of a method that is re-invoked before it returns).
///
//===----------------------------------------------------------------------===//

#ifndef OPD_BASELINE_INSTANCETREE_H
#define OPD_BASELINE_INSTANCETREE_H

#include "trace/CallLoopTrace.h"

#include <cstdint>
#include <vector>

namespace opd {

/// One dynamic execution of a repetition construct.
struct RepetitionInstance {
  enum class Kind : uint8_t {
    Root,   ///< Synthetic node covering the whole trace.
    Loop,   ///< One loop execution (all iterations of one entry).
    Method, ///< One method invocation.
  };

  Kind TheKind;
  /// Static identifier: loop id or method id (separate namespaces).
  uint32_t StaticId;
  /// Covered profile elements [Begin, End).
  uint64_t Begin;
  uint64_t End;
  /// Parent node index (InvalidNode for the root).
  uint32_t Parent;
  /// Children in program order (indices into InstanceTree::nodes()).
  std::vector<uint32_t> Children;
  /// For Method instances: true if this invocation roots a recursive
  /// execution (the method was re-invoked while this instance was live and
  /// no enclosing instance of the same method exists).
  bool IsRecursionRoot = false;

  uint64_t span() const { return End - Begin; }
};

/// The forest of repetition instances of one execution, rooted at a
/// synthetic whole-trace node (index 0).
class InstanceTree {
public:
  static constexpr uint32_t InvalidNode = ~0u;

  /// Builds the tree from \p Trace. \p TotalElements is the branch-trace
  /// length (the root's End). Unbalanced traces (exits without enters)
  /// are tolerated: stray exits are ignored, unclosed enters are closed at
  /// trace end.
  static InstanceTree build(const CallLoopTrace &Trace,
                            uint64_t TotalElements);

  const std::vector<RepetitionInstance> &nodes() const { return Nodes; }

  const RepetitionInstance &node(uint32_t Index) const {
    assert(Index < Nodes.size() && "instance index out of range");
    return Nodes[Index];
  }

  /// The synthetic root node.
  const RepetitionInstance &root() const { return Nodes.front(); }

  /// Number of nodes including the synthetic root.
  size_t size() const { return Nodes.size(); }

private:
  std::vector<RepetitionInstance> Nodes;
};

} // namespace opd

#endif // OPD_BASELINE_INSTANCETREE_H
