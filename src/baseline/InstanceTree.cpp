//===- baseline/InstanceTree.cpp - Repetition instance forest --------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "baseline/InstanceTree.h"

#include <unordered_map>

using namespace opd;

InstanceTree InstanceTree::build(const CallLoopTrace &Trace,
                                 uint64_t TotalElements) {
  InstanceTree Tree;
  Tree.Nodes.push_back({RepetitionInstance::Kind::Root, 0, 0, TotalElements,
                        InvalidNode, {}, false});

  // Stack of open instances (node indices); per-method stack of open
  // method-instance node indices for recursion-root marking.
  std::vector<uint32_t> OpenStack{0};
  std::unordered_map<uint32_t, std::vector<uint32_t>> OpenMethods;

  auto openInstance = [&](RepetitionInstance::Kind Kind, uint32_t Id,
                          uint64_t Offset) {
    uint32_t Parent = OpenStack.back();
    uint32_t Index = static_cast<uint32_t>(Tree.Nodes.size());
    Tree.Nodes.push_back({Kind, Id, Offset, Offset, Parent, {}, false});
    Tree.Nodes[Parent].Children.push_back(Index);
    OpenStack.push_back(Index);
    return Index;
  };

  auto closeInstance = [&](RepetitionInstance::Kind Kind, uint32_t Id,
                           uint64_t Offset) {
    // Tolerate stray exits: only close if the top of the stack matches.
    if (OpenStack.size() <= 1)
      return;
    RepetitionInstance &Top = Tree.Nodes[OpenStack.back()];
    if (Top.TheKind != Kind || Top.StaticId != Id)
      return;
    Top.End = Offset;
    OpenStack.pop_back();
  };

  for (const CallLoopEvent &E : Trace.events()) {
    switch (E.Kind) {
    case CallLoopEventKind::LoopEnter:
      openInstance(RepetitionInstance::Kind::Loop, E.Id, E.Offset);
      break;
    case CallLoopEventKind::LoopExit:
      closeInstance(RepetitionInstance::Kind::Loop, E.Id, E.Offset);
      break;
    case CallLoopEventKind::MethodEnter: {
      // An invocation of a method with a live instance marks the
      // bottom-most live instance as a recursion root (Section 3.1).
      std::vector<uint32_t> &Open = OpenMethods[E.Id];
      if (!Open.empty())
        Tree.Nodes[Open.front()].IsRecursionRoot = true;
      uint32_t Index =
          openInstance(RepetitionInstance::Kind::Method, E.Id, E.Offset);
      Open.push_back(Index);
      break;
    }
    case CallLoopEventKind::MethodExit: {
      if (OpenStack.size() > 1) {
        const RepetitionInstance &Top = Tree.Nodes[OpenStack.back()];
        if (Top.TheKind == RepetitionInstance::Kind::Method &&
            Top.StaticId == E.Id) {
          std::vector<uint32_t> &Open = OpenMethods[E.Id];
          assert(!Open.empty() && "method exit without matching enter");
          Open.pop_back();
        }
      }
      closeInstance(RepetitionInstance::Kind::Method, E.Id, E.Offset);
      break;
    }
    }
  }

  // Close any instances left open (e.g. a fuel-limited run): they end at
  // the end of the trace.
  while (OpenStack.size() > 1) {
    Tree.Nodes[OpenStack.back()].End = TotalElements;
    OpenStack.pop_back();
  }
  return Tree;
}
