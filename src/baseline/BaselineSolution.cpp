//===- baseline/BaselineSolution.cpp - Oracle phase identification ---------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "baseline/BaselineSolution.h"

#include <algorithm>

using namespace opd;

BaselineSolution::BaselineSolution(uint64_t MPL, uint64_t TotalElements,
                                   std::vector<AttributedPhase> Phases)
    : MPL(MPL), TotalElements(TotalElements),
      Attributed(std::move(Phases)) {
  this->Phases.reserve(Attributed.size());
  for (const AttributedPhase &P : Attributed)
    this->Phases.push_back(P.Interval);
  States = StateSequence::fromPhases(this->Phases, TotalElements);
}

double BaselineSolution::fractionInPhase() const {
  if (TotalElements == 0)
    return 0.0;
  uint64_t InPhase = 0;
  for (const PhaseInterval &P : Phases)
    InPhase += P.length();
  return static_cast<double>(InPhase) / static_cast<double>(TotalElements);
}

namespace {

/// Innermost-first MPL selection over the instance tree.
class PhaseSelector {
public:
  PhaseSelector(const InstanceTree &Tree, uint64_t MPL)
      : Tree(Tree), MPL(MPL) {}

  std::vector<AttributedPhase> run() {
    selectIn(0);
    std::sort(Phases.begin(), Phases.end(),
              [](const AttributedPhase &A, const AttributedPhase &B) {
                return A.Interval.Begin < B.Interval.Begin;
              });
    return std::move(Phases);
  }

private:
  /// Processes the children of node \p Index; returns true if any phase
  /// was selected inside the node's subtree.
  bool selectIn(uint32_t Index);

  /// True if a lone instance of this kind is a complete repetitive
  /// instance by itself: loop executions always, method invocations only
  /// when they root a recursive execution.
  static bool isSingletonCandidate(const RepetitionInstance &Node) {
    if (Node.TheKind == RepetitionInstance::Kind::Loop)
      return true;
    return Node.TheKind == RepetitionInstance::Kind::Method &&
           Node.IsRecursionRoot;
  }

  const InstanceTree &Tree;
  uint64_t MPL;
  std::vector<AttributedPhase> Phases;
};

} // namespace

bool PhaseSelector::selectIn(uint32_t Index) {
  const RepetitionInstance &Node = Tree.node(Index);
  const std::vector<uint32_t> &Children = Node.Children;

  // Innermost-first: fix the children's subtrees before judging groups at
  // this level.
  std::vector<char> HasInner(Children.size(), 0);
  bool AnyPhase = false;
  for (size_t I = 0; I != Children.size(); ++I)
    HasInner[I] = selectIn(Children[I]) ? 1 : 0;

  // Chain consecutive same-construct children at distance <= 1 into CRIs
  // (perfect nests and temporally adjacent repeated invocations).
  size_t I = 0;
  while (I != Children.size()) {
    size_t GroupEnd = I + 1;
    const RepetitionInstance &First = Tree.node(Children[I]);
    while (GroupEnd != Children.size()) {
      const RepetitionInstance &Prev = Tree.node(Children[GroupEnd - 1]);
      const RepetitionInstance &Next = Tree.node(Children[GroupEnd]);
      if (Next.TheKind != First.TheKind || Next.StaticId != First.StaticId)
        break;
      if (Next.Begin > Prev.End + 1)
        break; // More than one profile element between executions.
      ++GroupEnd;
    }

    const RepetitionInstance &Last = Tree.node(Children[GroupEnd - 1]);
    uint64_t Span = Last.End - First.Begin;
    bool GroupHasInner = false;
    for (size_t J = I; J != GroupEnd; ++J)
      GroupHasInner |= HasInner[J] != 0;
    bool IsCandidate =
        GroupEnd - I >= 2 || isSingletonCandidate(First);

    if (IsCandidate && !GroupHasInner && Span >= MPL && Span > 0) {
      Phases.push_back({{First.Begin, Last.End},
                        First.TheKind,
                        First.StaticId,
                        static_cast<uint32_t>(GroupEnd - I)});
      AnyPhase = true;
    } else {
      AnyPhase |= GroupHasInner;
    }
    I = GroupEnd;
  }
  return AnyPhase;
}

BaselineSolution opd::computeBaseline(const InstanceTree &Tree,
                                      uint64_t MPL) {
  assert(MPL > 0 && "minimum phase length must be positive");
  PhaseSelector Selector(Tree, MPL);
  return BaselineSolution(MPL, Tree.root().End, Selector.run());
}

std::vector<BaselineSolution>
opd::computeBaselines(const CallLoopTrace &Trace, uint64_t TotalElements,
                      const std::vector<uint64_t> &MPLs) {
  InstanceTree Tree = InstanceTree::build(Trace, TotalElements);
  std::vector<BaselineSolution> Solutions;
  Solutions.reserve(MPLs.size());
  for (uint64_t MPL : MPLs)
    Solutions.push_back(computeBaseline(Tree, MPL));
  return Solutions;
}
