//===- baseline/BaselineSolution.h - Oracle phase identification -*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's baseline solution (Section 3.1): an offline, multi-pass
/// oracle that identifies "intuitively correct" phases from the global
/// view of a call-loop trace, parameterized by the minimum phase length
/// (MPL) an optimization client requires.
///
/// Algorithm (see DESIGN.md for the interpretation decisions):
///  1. Build the repetition-instance tree (InstanceTree).
///  2. Within each parent, chain consecutive same-construct children at
///     distance <= 1 profile element into one complete repetitive
///     instance (CRI) — this merges perfect loop nests and temporally
///     adjacent repeated invocations.
///  3. Select phases innermost-first: a CRI becomes a phase iff its span
///     is >= MPL and no descendant CRI was already selected. Candidates
///     are loop executions, recursion-root invocations, and chains.
///  4. Mark every element inside a selected CRI as P, the rest as T.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_BASELINE_BASELINESOLUTION_H
#define OPD_BASELINE_BASELINESOLUTION_H

#include "baseline/InstanceTree.h"
#include "trace/StateSequence.h"

#include <cstdint>
#include <vector>

namespace opd {

/// One oracle phase with the repetition construct that produced it.
struct AttributedPhase {
  PhaseInterval Interval;
  /// Loop or Method (never Root).
  RepetitionInstance::Kind ConstructKind;
  /// Static loop id or method id.
  uint32_t StaticId;
  /// Number of chained instances merged into this phase (1 for a lone
  /// complete repetitive instance).
  uint32_t NumInstances;
};

/// The oracle's answer for one (execution, MPL) pair.
class BaselineSolution {
public:
  BaselineSolution(uint64_t MPL, uint64_t TotalElements,
                   std::vector<AttributedPhase> Phases);

  /// The minimum phase length this solution was computed for.
  uint64_t mpl() const { return MPL; }

  /// Branch-trace length.
  uint64_t totalElements() const { return TotalElements; }

  /// The identified phases, sorted and disjoint (Table 1(b) "# Phases").
  const std::vector<PhaseInterval> &phases() const { return Phases; }

  /// The phases with their originating constructs.
  const std::vector<AttributedPhase> &attributedPhases() const {
    return Attributed;
  }

  /// Per-element P/T states.
  const StateSequence &states() const { return States; }

  /// Number of identified phases.
  size_t numPhases() const { return Phases.size(); }

  /// Fraction of profile elements inside some phase (Table 1(b)
  /// "% in Phase" — the branch-coverage validation of Section 3.1).
  double fractionInPhase() const;

private:
  uint64_t MPL;
  uint64_t TotalElements;
  std::vector<AttributedPhase> Attributed;
  std::vector<PhaseInterval> Phases;
  StateSequence States;
};

/// Runs the oracle over \p Tree for minimum phase length \p MPL.
BaselineSolution computeBaseline(const InstanceTree &Tree, uint64_t MPL);

/// Convenience: build the tree and run the oracle for several MPLs.
std::vector<BaselineSolution>
computeBaselines(const CallLoopTrace &Trace, uint64_t TotalElements,
                 const std::vector<uint64_t> &MPLs);

} // namespace opd

#endif // OPD_BASELINE_BASELINESOLUTION_H
