//===- workloads/Workloads.cpp - Synthetic benchmark programs ---------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "lang/Diagnostics.h"
#include "lang/Sema.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace opd;

namespace {

/// Scales a repetition count, keeping at least one iteration.
int64_t scaled(double Scale, int64_t Base) {
  int64_t Value = static_cast<int64_t>(std::llround(Base * Scale));
  return std::max<int64_t>(1, Value);
}

/// Shorthand: the textual form of a scaled count.
std::string N(double Scale, int64_t Base) {
  return std::to_string(scaled(Scale, Base));
}

//===----------------------------------------------------------------------===//
// compress — few very large block phases; tiny hot vocabulary.
//===----------------------------------------------------------------------===//

std::string compressSource(double S) {
  // compress has a tiny hot vocabulary: both block types run the SAME
  // inner code (identical branch sites) with different scan/emit mixes.
  // Distinct-set (unweighted) windows therefore look alike across the
  // compress/decompress boundary while the frequency-sensitive weighted
  // model can tell them apart — the paper's compress anomaly (Figure 5).
  return std::string() +
         "program compress;\n"
         "method main() {\n"
         "  loop pass times " + N(S, 3) + " {\n"
         "    branch m0; branch m1; branch m2;\n"
         "    call block(18, 4, 46, 5);\n" // compress: scan-heavy phase
         "    branch m3;\n"
         "    call block(9, 9, 14, 1);\n"  // table rebuild: transition
         "    branch m4; branch m5;\n"
         "    call block(4, 14, 40, 5);\n" // decompress: emit-heavy phase
         "    branch m6;\n"
         "    call block(9, 9, 14, 1);\n"  // transition
         "  }\n"
         "}\n"
         // Size ladder: scan/emit loops (0.3K-1.7K, MPL 1K phases) inside
         // a segment loop (~80-89K, MPL 5-50K phases) inside the block
         // loop (~400-445K for reps=5: the MPL 100-200K phases; ~25K for
         // the reps=1 transition sections, which no large MPL selects).
         // Phases sit well above the MPLs that select them, so a
         // detector's post-flush refill does not consume the phase.
         "method block(sa, sb, segs, reps) {\n"
         "  loop cb times reps {\n"
         "    loop seg times segs {\n"
         "      loop scan times sa * 40 { branch c0; branch c1 flip 0.85; }\n"
         "      branch g0; branch g1;\n"
         "      loop emit times sb * 40 { branch c2; branch c3; branch c4 flip 0.7; }\n"
         "      branch g2; branch g3;\n"
         "    }\n"
         "    branch g4; branch g5; branch g6;\n"
         "  }\n"
         "}\n";
}

//===----------------------------------------------------------------------===//
// jess — rule parsing, many small recursive match activations, firing.
//===----------------------------------------------------------------------===//

std::string jessSource(double S) {
  return std::string() +
         "program jess;\n"
         "method main() {\n"
         "  loop runs times " + N(S, 8) + " {\n"
         "    branch t0; branch t1;\n"
         "    call parseRules();\n"
         "    branch t2; branch t3;\n"
         "    loop activations times 28 {\n"
         "      call matchNetwork(11);\n"
         "      branch a0; branch a1;\n"
         "    }\n"
         "    branch t4;\n"
         "    call fireRules(80 + runs % 4 * 320);\n"
         "  }\n"
         "}\n"
         // ~4.3K per execution.
         "method parseRules() {\n"
         "  loop pr times 90 {\n"
         "    branch p0; branch p1 flip 0.8; branch p2;\n"
         "    loop tok times 21 { branch p3; branch p4; }\n"
         "    branch p5;\n"
         "  }\n"
         "}\n"
         // Recursive beta-network match; one root ~1.2K branches (a
         // recursion-root phase at MPL 1K); ~34K per activations loop.
         "method matchNetwork(d) {\n"
         "  branch m0;\n"
         "  when (d > 0) {\n"
         "    loop beta times 11 { branch m1; branch m2 flip 0.7; }\n"
         "    call matchNetwork(d - 1);\n"
         "    when (d % 2 == 0) { call matchNetwork(d - 2); } else { branch m3; }\n"
         "  } else { branch m4; }\n"
         "}\n"
         // n = 80..920 -> ~8.5K..98K per execution; only the heavy runs
         // yield phases at large MPLs (the light runs fall out of
         // coverage, matching the paper's non-monotonic "% in phase").
         "method fireRules(n) {\n"
         "  loop fr times n {\n"
         "    loop act times 35 { branch f0; branch f1 flip 0.75; branch f2; }\n"
         "    branch f3;\n"
         "  }\n"
         "}\n";
}

//===----------------------------------------------------------------------===//
// raytrace — recursion-heavy per-pixel casts under row/column loops.
//===----------------------------------------------------------------------===//

std::string raytraceSource(double S) {
  return std::string() +
         "program raytrace;\n"
         "method main() {\n"
         "  call buildScene();\n"
         "  branch s0; branch s1;\n"
         "  loop bands times " + N(S, 5) + " {\n"
         "    branch bb0; branch bb1;\n"
         "    call renderBand(bands);\n"
         "  }\n"
         "  branch s2;\n"
         "  call writeImage();\n"
         "}\n"
         "method buildScene() {\n"
         "  loop bs times 520 { branch b0; branch b1; branch b2 flip 0.9; }\n"
         "}\n"
         // Ladder: traceRay roots ~1.2K (MPL 1K), column loops ~5K (MPL
         // 5K), row loops 16K..145K growing with the band index (MPL
         // 10K-100K).
         "method renderBand(b) {\n"
         "  loop rows times 3 + b * 5 {\n"
         "    loop cols times 7 {\n"
         "      call traceRay(9);\n"
         "      branch px0;\n"
         "    }\n"
         "    branch r0; branch r1;\n"
         "  }\n"
         "}\n"
         // ~1.2K branches per root on average.
         "method traceRay(d) {\n"
         "  branch t0; branch t1 flip 0.6;\n"
         "  when (d > 0) {\n"
         "    loop isect times 28 { branch i0; branch i1 flip 0.5; }\n"
         "    if 0.8 { call traceRay(d - 1); } else { branch t2; }\n"
         "    if 0.45 { call traceRay(d - 2); } else { branch t3; }\n"
         "  } else { branch t4; }\n"
         "}\n"
         "method writeImage() {\n"
         "  loop wi times 900 { branch w0; branch w1; }\n"
         "}\n";
}

//===----------------------------------------------------------------------===//
// db — repeated query invocations, pick-selected operation mix, no
// recursion.
//===----------------------------------------------------------------------===//

std::string dbSource(double S) {
  return std::string() +
         "program db;\n"
         "method main() {\n"
         "  call loadDatabase();\n"
         "  branch s0;\n"
         "  loop ops times " + N(S, 30) + " {\n"
         "    branch o0; branch o1;\n"
         "    loop qbatch times 8 + ops % 5 * 7 {\n"
         "      call runQuery();\n"
         "      branch q0;\n"
         "    }\n"
         "    branch o2;\n"
         "    call sortResults(ops % 4);\n"
         "    when (ops % 10 == 9) { call tableScan(ops); } else { branch o3; }\n"
         "  }\n"
         "}\n"
         "method loadDatabase() {\n"
         "  loop ld times 8800 { branch l0; branch l1 flip 0.95; branch l2; }\n"
         "}\n"
         // Occasional full scans, ~47K..123K growing with the op index:
         // the large-MPL phases.
         "method tableScan(o) {\n"
         "  loop ts times 8000 + o * 1700 { branch z0; branch z1 flip 0.9; }\n"
         "}\n"
         // ~200 branches; adjacent invocations chain into one CRI.
         "method runQuery() {\n"
         "  pick {\n"
         "    weight 3 { loop scan times 42 { branch u0; branch u1 flip 0.5; } }\n"
         "    weight 2 { loop probe times 38 { branch v0; branch v1; branch v2 flip 0.6; } }\n"
         "  }\n"
         "  loop cmp times 55 { branch k0; branch k1; }\n"
         "}\n"
         // 1.6K-6K depending on the shuffle depth.
         "method sortResults(depth) {\n"
         "  loop sr times 75 + depth * 70 {\n"
         "    loop inner times 10 { branch x0; branch x1; }\n"
         "    branch x2;\n"
         "  }\n"
         "}\n";
}

//===----------------------------------------------------------------------===//
// javac — per-file lex/parse/codegen; deep irregular recursion; file
// sizes vary with the file index.
//===----------------------------------------------------------------------===//

std::string javacSource(double S) {
  return std::string() +
         "program javac;\n"
         "method main() {\n"
         "  loop fi times " + N(S, 12) + " {\n"
         "    branch f0; branch f1;\n"
         "    call lexFile(400 + fi % 6 * 900);\n"
         "    branch f2;\n"
         "    call parseFile(7 + fi % 4);\n"
         "    branch f3;\n"
         "    call genCode(4 + fi % 8 * 6);\n"
         "    when (fi % 6 == 5) { call optimize(fi); } else { branch f4; }\n"
         "  }\n"
         "}\n"
         // Whole-program optimization on the big files: ~76K..126K.
         "method optimize(f) {\n"
         "  loop op times 17000 + f * 4200 { branch q0; branch q1 flip 0.8; }\n"
         "}\n"
         // n = 400..4900 -> 1.2K..14.7K per execution.
         "method lexFile(n) {\n"
         "  loop lx times n { branch l0; branch l1 flip 0.8; branch l2; }\n"
         "}\n"
         // Recursive descent; one root ~2-8K branches.
         "method parseFile(d) {\n"
         "  branch p0;\n"
         "  when (d > 0) {\n"
         "    loop toks times 30 { branch p1; branch p2 flip 0.6; }\n"
         "    call parseFile(d - 1);\n"
         "    if 0.5 { call parseFile(d - 2); } else { branch p3; }\n"
         "  } else { branch p4; }\n"
         "}\n"
         "method genCode(m) {\n"
         "  loop gc times m {\n"
         "    loop bb times 140 { branch g0; branch g1; branch g2 flip 0.7; }\n"
         "    branch g3;\n"
         "  }\n"
         "}\n";
}

//===----------------------------------------------------------------------===//
// mpegaudio — thousands of small frame phases in chunks under two big
// passes.
//===----------------------------------------------------------------------===//

std::string mpegaudioSource(double S) {
  return std::string() +
         "program mpegaudio;\n"
         "method main() {\n"
         "  call decodePass();\n"
         "  branch g0; branch g1; branch g2;\n"
         "  call playbackPass();\n"
         "}\n"
         // chunks 8K..37K (growing with index); frame ~1.4K; pass ~330K.
         "method decodePass() {\n"
         "  loop chunks times " + N(S, 15) + " {\n"
         "    loop frames times 6 + chunks * 2 {\n"
         "      loop sub times 16 { branch d0; branch d1 flip 0.8; branch d2; }\n"
         "      loop synth times 430 { branch d3; branch d4; branch d5 flip 0.9; }\n"
         "      branch fs0; branch fs1;\n"
         "    }\n"
         "    branch cs0; branch cs1;\n"
         "  }\n"
         "}\n"
         // chunks 7.5K..31K; frame ~1.1K; pass ~270K.
         "method playbackPass() {\n"
         "  loop chunks2 times " + N(S, 16) + " {\n"
         "    loop frames2 times 7 + chunks2 * 2 {\n"
         "      loop filter times 355 { branch p0; branch p1 flip 0.85; branch p2; }\n"
         "      branch q0; branch q1;\n"
         "    }\n"
         "    branch rs0; branch rs1;\n"
         "  }\n"
         "}\n";
}

//===----------------------------------------------------------------------===//
// jack — sixteen repeated passes with pass-index-dependent sizes.
//===----------------------------------------------------------------------===//

std::string jackSource(double S) {
  return std::string() +
         "program jack;\n"
         "method main() {\n"
         "  loop passes times " + N(S, 16) + " {\n"
         "    branch j0; branch j1;\n"
         "    call tokenize(40 + passes * 14);\n"
         "    branch j2;\n"
         "    call generate(30 + passes * 16);\n"
         "    when (passes % 8 == 7) { call emitOutput(passes); } else { branch j3; }\n"
         "  }\n"
         "}\n"
         // n=40..250 -> 2.2K..13.5K per execution.
         "method tokenize(n) {\n"
         "  loop tk times n {\n"
         "    loop ch times 26 { branch t0; branch t1 flip 0.7; }\n"
         "    branch t2; branch t3;\n"
         "  }\n"
         "}\n"
         // m=30..270 -> 3.7K..33K per execution.
         "method generate(m) {\n"
         "  loop gen times m {\n"
         "    loop node times 40 { branch g0; branch g1; branch g2 flip 0.6; }\n"
         "    branch g3; branch g4;\n"
         "  }\n"
         "}\n"
         // Emitted on passes 7 and 15: ~65K and ~113K.
         "method emitOutput(p) {\n"
         "  loop eo times 16000 + p * 6000 { branch e0; branch e1 flip 0.9; }\n"
         "}\n";
}

//===----------------------------------------------------------------------===//
// jlex — a pipeline of a few mid/large phases.
//===----------------------------------------------------------------------===//

std::string jlexSource(double S) {
  return std::string() +
         "program jlex;\n"
         "method main() {\n"
         "  loop spec times " + N(S, 1) + " {\n"
         "    call readSpec();\n"
         "    branch s0;\n"
         "    call buildNFA();\n"
         "    branch s1;\n"
         "    call nfa2dfa();\n"
         "    branch s2;\n"
         "    call minimize();\n"
         "    branch s3;\n"
         "    call emit();\n"
         "    branch s4;\n"
         "  }\n"
         "}\n"
         "method readSpec() {\n"
         "  loop rs times 1400 { branch r0; branch r1 flip 0.8; }\n"
         "}\n"
         // ~42K; rule sub-phases ~2.6K.
         "method buildNFA() {\n"
         "  loop rules times 16 {\n"
         "    loop states times 860 { branch n0; branch n1; branch n2 flip 0.75; }\n"
         "    branch nb0; branch nb1;\n"
         "  }\n"
         "}\n"
         // ~118K; closure sub-phases 3.6K..12K (growing along the
         // worklist).
         "method nfa2dfa() {\n"
         "  loop worklist times 16 {\n"
         "    loop closure times 1200 + worklist * 180 { branch d0; branch d1 flip 0.65; branch d2; }\n"
         "    branch db0; branch db1;\n"
         "  }\n"
         "}\n"
         // ~62K; round sub-phases ~5.2K.
         "method minimize() {\n"
         "  loop roundz times 12 {\n"
         "    loop split times 2600 { branch m0; branch m1 flip 0.7; }\n"
         "    branch mb0; branch mb1;\n"
         "  }\n"
         "}\n"
         // ~26K.
         "method emit() {\n"
         "  loop table times 13000 { branch e0; branch e1; }\n"
         "}\n";
}

} // namespace

const std::vector<Workload> &opd::standardWorkloads() {
  static const std::vector<Workload> Workloads = {
      {"compress", compressSource, 0xc0112e55ULL},
      {"jess", jessSource, 0x1e55ULL},
      {"raytrace", raytraceSource, 0x7ace12aceULL},
      {"db", dbSource, 0xdbdbdbULL},
      {"javac", javacSource, 0x1a7acULL},
      {"mpegaudio", mpegaudioSource, 0x3e6aULL},
      {"jack", jackSource, 0x1ac3ULL},
      {"jlex", jlexSource, 0x11e8ULL},
  };
  return Workloads;
}

const Workload *opd::findWorkload(const std::string &Name) {
  for (const Workload &W : standardWorkloads())
    if (W.Name == Name)
      return &W;
  return nullptr;
}

std::unique_ptr<Program> opd::compileWorkload(const Workload &W,
                                              double Scale) {
  assert(Scale > 0.0 && "scale must be positive");
  DiagnosticEngine Diags;
  std::unique_ptr<Program> Prog = compileProgram(W.Source(Scale), Diags);
  if (!Prog) {
    std::fprintf(stderr, "workload '%s' failed to compile:\n%s",
                 W.Name.c_str(), Diags.renderAll().c_str());
    std::abort();
  }
  return Prog;
}

ExecutionResult opd::executeWorkload(const Workload &W, double Scale) {
  std::unique_ptr<Program> Prog = compileWorkload(W, Scale);
  InterpreterOptions Options;
  Options.Seed = W.Seed;
  return runProgram(*Prog, Options);
}
