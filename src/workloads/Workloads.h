//===- workloads/Workloads.h - Synthetic benchmark programs -----*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The eight synthetic workloads standing in for the paper's benchmarks
/// (seven SPECjvm98 programs + JLex, Table 1). Each is a JP program whose
/// repetition structure mirrors its namesake's character:
///
///   compress   — a few very large compress/decompress block phases with
///                small scan/emit sub-phases, tiny hot vocabulary
///   jess       — rule parsing + many small recursive match activations +
///                rule-firing loops
///   raytrace   — recursion-heavy per-pixel ray casts chained under
///                row/column loops
///   db         — repeated query invocations with pick-selected operation
///                mix and periodic sorts, no recursion
///   javac      — per-file lex/parse/codegen with deep irregular
///                recursive descent, file sizes varying per iteration
///   mpegaudio  — thousands of small frame phases grouped into chunks
///                under two big decode/playback passes
///   jack       — sixteen repeated passes whose tokenize/generate sizes
///                grow with the pass index
///   jlex       — a pipeline of a few mid/large phases (NFA, DFA,
///                minimization, emission)
///
/// The Scale knob multiplies the number of repetitions (outer-loop trip
/// counts), not the phase sizes, so MPL-relative behavior is preserved
/// while smoke runs stay fast.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_WORKLOADS_WORKLOADS_H
#define OPD_WORKLOADS_WORKLOADS_H

#include "lang/AST.h"
#include "vm/Interpreter.h"

#include <memory>
#include <string>
#include <vector>

namespace opd {

/// One named workload: a JP source generator plus its fixed PRNG seed.
struct Workload {
  std::string Name;
  /// JP source at the given scale (> 0; 1.0 is the paper-shaped size).
  std::string (*Source)(double Scale);
  uint64_t Seed;
};

/// The eight standard workloads, in the paper's table order.
const std::vector<Workload> &standardWorkloads();

/// Finds a standard workload by name; returns null if unknown.
const Workload *findWorkload(const std::string &Name);

/// Compiles and executes a workload. Workload sources are maintained with
/// the repository and must always compile; a front-end failure aborts
/// (assert) rather than returning an error.
ExecutionResult executeWorkload(const Workload &W, double Scale = 1.0);

/// Compiles a workload to its (Sema-checked) program.
std::unique_ptr<Program> compileWorkload(const Workload &W,
                                         double Scale = 1.0);

} // namespace opd

#endif // OPD_WORKLOADS_WORKLOADS_H
