//===- workloads/Synthetic.cpp - Controlled synthetic traces ----------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "workloads/Synthetic.h"

#include "support/Random.h"

#include <algorithm>
#include <vector>

using namespace opd;

SyntheticTrace opd::generateSynthetic(const SyntheticSpec &Spec) {
  assert(Spec.NumBehaviors > 0 && "need at least one behavior");
  assert(Spec.VocabPerBehavior > 0 && "behaviors need a vocabulary");
  assert(Spec.NoiseProbability >= 0.0 && Spec.NoiseProbability <= 1.0);
  assert(Spec.VocabOverlap >= 0.0 && Spec.VocabOverlap <= 1.0);

  SyntheticTrace Result;
  Xoshiro256 Rng(Spec.Seed);

  // Build per-behavior vocabularies (dense site indices). Behavior b
  // shares the first Overlap-fraction of its sites with behavior b+1 by
  // reusing site indices from a common pool.
  unsigned Shared = static_cast<unsigned>(
      Spec.VocabOverlap * static_cast<double>(Spec.VocabPerBehavior));
  std::vector<std::vector<SiteIndex>> Vocab(Spec.NumBehaviors);
  SiteIndex NextSite = 0;
  auto internSite = [&](SiteIndex S) {
    // Method id 1 for behavior sites, offsets = running index.
    Result.Trace.internSite(ProfileElement(1, S, true));
    return S;
  };
  for (unsigned B = 0; B != Spec.NumBehaviors; ++B) {
    for (unsigned V = 0; V != Spec.VocabPerBehavior; ++V) {
      if (V < Shared && B > 0) {
        // Share with the previous behavior's tail sites.
        Vocab[B].push_back(
            Vocab[B - 1][Spec.VocabPerBehavior - Shared + V]);
      } else {
        Vocab[B].push_back(internSite(NextSite++));
      }
    }
  }
  std::vector<SiteIndex> Noise;
  for (unsigned V = 0; V != Spec.NoiseVocab; ++V)
    Noise.push_back(internSite(NextSite++));
  std::vector<SiteIndex> Churn;
  for (unsigned V = 0; V != std::max(4u, Spec.TransitionVocab); ++V)
    Churn.push_back(internSite(NextSite++));

  std::vector<PhaseInterval> Phases;
  uint64_t Offset = 0;

  auto emitTransition = [&](uint64_t Length) {
    if (Spec.StationaryTransitions) {
      // Uniform mixture over every behavior vocabulary plus noise.
      for (uint64_t I = 0; I != Length; ++I) {
        uint64_t Pick = Rng.nextBelow(Spec.NumBehaviors + 1);
        const std::vector<SiteIndex> &Pool =
            Pick == Spec.NumBehaviors ? Noise : Vocab[Pick];
        Result.Trace.appendIndex(Pool[Rng.nextBelow(Pool.size())]);
        ++Offset;
      }
      return;
    }
    // Non-stationary churn: short segments over small fresh subsets of
    // the transition pool (see SyntheticSpec::TransitionVocab).
    constexpr uint64_t SegmentLength = 100;
    uint64_t Emitted = 0;
    while (Emitted < Length) {
      SiteIndex A = Churn[Rng.nextBelow(Churn.size())];
      SiteIndex B = Churn[Rng.nextBelow(Churn.size())];
      SiteIndex C = Churn[Rng.nextBelow(Churn.size())];
      uint64_t End = std::min(Length, Emitted + SegmentLength);
      for (; Emitted != End; ++Emitted) {
        uint64_t Pick = Rng.nextBelow(3);
        Result.Trace.appendIndex(Pick == 0 ? A : Pick == 1 ? B : C);
        ++Offset;
      }
    }
  };

  auto emitPhase = [&](unsigned Behavior, uint64_t Length) {
    uint64_t Begin = Offset;
    const std::vector<SiteIndex> &Pool = Vocab[Behavior];
    for (uint64_t I = 0; I != Length; ++I) {
      if (!Noise.empty() && Rng.nextBool(Spec.NoiseProbability))
        Result.Trace.appendIndex(Noise[Rng.nextBelow(Noise.size())]);
      else
        Result.Trace.appendIndex(Pool[Rng.nextBelow(Pool.size())]);
      ++Offset;
    }
    if (Length > 0)
      Phases.push_back({Begin, Offset});
  };

  emitTransition(Spec.TransitionLength);
  for (unsigned P = 0; P != Spec.NumPhases; ++P) {
    emitPhase(P % Spec.NumBehaviors, Spec.PhaseLength);
    emitTransition(Spec.TransitionLength);
  }

  Result.Truth = StateSequence::fromPhases(Phases, Offset);
  return Result;
}
