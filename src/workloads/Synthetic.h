//===- workloads/Synthetic.h - Controlled synthetic traces ------*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Direct generation of branch traces with *known* phase structure, for
/// controlled studies (bench_controlled): unlike the JP workloads —
/// whose ground truth comes from the oracle — these traces carry their
/// phase boundaries by construction, so detector accuracy can be swept
/// against one factor at a time (noise level, phase length, transition
/// length, vocabulary overlap) with everything else held fixed.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_WORKLOADS_SYNTHETIC_H
#define OPD_WORKLOADS_SYNTHETIC_H

#include "trace/BranchTrace.h"
#include "trace/StateSequence.h"

#include <cstdint>

namespace opd {

/// Parameters of a controlled phase-structured trace.
struct SyntheticSpec {
  /// Number of phases; behaviors cycle through NumBehaviors vocabularies.
  unsigned NumPhases = 10;
  unsigned NumBehaviors = 3;
  /// Branches per phase and between phases.
  uint64_t PhaseLength = 20000;
  uint64_t TransitionLength = 2000;
  /// Distinct branch sites per behavior, plus one shared noise pool.
  unsigned VocabPerBehavior = 8;
  unsigned NoiseVocab = 8;
  /// Sites reserved for transition churn. By default transitions are
  /// *non-stationary*: they run through short segments (~100 elements)
  /// each drawing from a small fresh subset of this pool, so no window
  /// pair looks alike and the transition is detectable as such.
  unsigned TransitionVocab = 48;
  /// When true, transitions instead draw a uniform stationary mixture of
  /// every vocabulary. Such a mixture is itself self-similar — windows
  /// inside it look stable — so boundary detection must rely on telling
  /// the *phases* apart (the regime where model choice matters; see
  /// bench_controlled study (d)).
  bool StationaryTransitions = false;
  /// Probability that an in-phase element is drawn from the noise pool
  /// instead of the phase's vocabulary.
  double NoiseProbability = 0.1;
  /// Fraction of each behavior's vocabulary shared with the *next*
  /// behavior (0 = disjoint phases, 1 = identical sites). Shared sites
  /// make phases harder for the unweighted model to distinguish.
  double VocabOverlap = 0.0;
  uint64_t Seed = 1;
};

/// A generated trace with its ground truth.
struct SyntheticTrace {
  BranchTrace Trace;
  /// P exactly on the generated phases.
  StateSequence Truth;
};

/// Generates the trace \p Spec describes. The layout is
/// [transition][phase][transition][phase]...[transition]: transitions
/// draw uniformly from all vocabularies plus the noise pool.
SyntheticTrace generateSynthetic(const SyntheticSpec &Spec);

} // namespace opd

#endif // OPD_WORKLOADS_SYNTHETIC_H
