//===- obs/TraceExport.cpp - RunTrace (de)serialization ----------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "obs/TraceExport.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

using namespace opd;

//===----------------------------------------------------------------------===//
// Shared rendering helpers
//===----------------------------------------------------------------------===//

namespace {

/// Formats a double with enough digits to round-trip exactly.
std::string exactDouble(double Value) {
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.17g", Value);
  return Buf;
}

const char *stateName(PhaseState S) {
  return S == PhaseState::InPhase ? "P" : "T";
}

bool stateFromName(const std::string &Name, PhaseState &S) {
  if (Name == "P")
    S = PhaseState::InPhase;
  else if (Name == "T")
    S = PhaseState::Transition;
  else
    return false;
  return true;
}

/// Name of the event's policy payload: AnchorKind for Anchor events,
/// ResizeKind for WindowResize events, "" otherwise.
std::string policyName(const TraceEvent &E) {
  if (E.Kind == TraceEventKind::Anchor)
    return anchorKindName(static_cast<AnchorKind>(E.Policy));
  if (E.Kind == TraceEventKind::WindowResize)
    return resizeKindName(static_cast<ResizeKind>(E.Policy));
  return "";
}

/// Inverse of policyName for a given event kind.
bool policyFromName(TraceEventKind Kind, const std::string &Name,
                    uint8_t &Policy) {
  if (Kind == TraceEventKind::Anchor) {
    for (AnchorKind K :
         {AnchorKind::RightmostNoisy, AnchorKind::LeftmostNonNoisy}) {
      if (Name == anchorKindName(K)) {
        Policy = static_cast<uint8_t>(K);
        return true;
      }
    }
    return false;
  }
  if (Kind == TraceEventKind::WindowResize) {
    for (ResizeKind K : {ResizeKind::Slide, ResizeKind::Move}) {
      if (Name == resizeKindName(K)) {
        Policy = static_cast<uint8_t>(K);
        return true;
      }
    }
    return false;
  }
  Policy = 0;
  return Name.empty();
}

std::string escapeJSON(const std::string &Text) {
  std::string Out;
  Out.reserve(Text.size() + 2);
  for (char C : Text) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      Out.push_back(C);
    }
  }
  return Out;
}

IOStatus writeFile(const std::string &Path, const std::string &Content) {
  std::ofstream Out(Path, std::ios::binary);
  if (!Out)
    return IOStatus::failure("cannot open '" + Path + "' for writing");
  Out << Content;
  if (!Out)
    return IOStatus::failure("write to '" + Path + "' failed");
  return IOStatus::success();
}

IOStatus readFile(const std::string &Path, std::string &Content) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return IOStatus::failure("cannot open '" + Path + "' for reading");
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  Content = Buffer.str();
  return IOStatus::success();
}

} // namespace

//===----------------------------------------------------------------------===//
// JSON rendering
//===----------------------------------------------------------------------===//

namespace {

/// Renders one event as a single-line JSON object with kind-specific
/// field names (the schema in docs/OBSERVABILITY.md).
std::string renderEventJSON(const TraceEvent &E) {
  std::string Out = "{\"type\":\"";
  Out += traceEventKindName(E.Kind);
  Out += "\"";
  auto addUInt = [&](const char *Name, uint64_t Value) {
    Out += ",\"";
    Out += Name;
    Out += "\":" + std::to_string(Value);
  };
  auto addStr = [&](const char *Name, const std::string &Value) {
    Out += ",\"";
    Out += Name;
    Out += "\":\"" + escapeJSON(Value) + "\"";
  };
  switch (E.Kind) {
  case TraceEventKind::RunBegin:
    addUInt("elements", E.A);
    addUInt("batch", E.B);
    break;
  case TraceEventKind::RunEnd:
    addUInt("offset", E.Offset);
    break;
  case TraceEventKind::Evaluation:
    addUInt("offset", E.Offset);
    Out += ",\"similarity\":" + exactDouble(E.Similarity);
    addStr("state", stateName(E.Decision));
    Out += ",\"confidence\":" + exactDouble(E.Confidence);
    break;
  case TraceEventKind::Anchor:
    addUInt("offset", E.Offset);
    addUInt("anchor", E.A);
    addStr("policy", policyName(E));
    break;
  case TraceEventKind::WindowResize:
    addUInt("offset", E.Offset);
    addUInt("tw", E.A);
    addUInt("cw", E.B);
    addStr("policy", policyName(E));
    break;
  case TraceEventKind::WindowFlush:
    addUInt("offset", E.Offset);
    addUInt("seed", E.A);
    break;
  case TraceEventKind::PhaseBegin:
    addUInt("offset", E.Offset);
    addUInt("anchor", E.A);
    break;
  case TraceEventKind::PhaseEnd:
    addUInt("offset", E.Offset);
    break;
  }
  Out += "}";
  return Out;
}

} // namespace

std::string opd::renderRunTraceJSON(const RunTrace &Trace) {
  const RunCounters &C = Trace.counters();
  std::string Out = "{\n";
  Out += "  \"version\": 1,\n";
  Out += "  \"detector\": \"" + escapeJSON(Trace.detectorName()) + "\",\n";
  Out += "  \"trace\": {\"elements\": " + std::to_string(Trace.traceSize()) +
         ", \"batch\": " + std::to_string(Trace.batchSize()) + "},\n";
  Out += "  \"counters\": {\"elements\": " + std::to_string(C.Elements) +
         ", \"evaluations\": " + std::to_string(C.Evaluations) +
         ", \"phasesOpened\": " + std::to_string(C.PhasesOpened) +
         ", \"phasesClosed\": " + std::to_string(C.PhasesClosed) +
         ", \"anchors\": " + std::to_string(C.Anchors) +
         ", \"anchorCorrections\": " + std::to_string(C.AnchorCorrections) +
         ", \"windowResizes\": " + std::to_string(C.WindowResizes) +
         ", \"windowFlushes\": " + std::to_string(C.WindowFlushes) + "},\n";

  Out += "  \"phases\": [\n";
  std::vector<PhaseInterval> Phases = Trace.phases();
  std::vector<PhaseInterval> Anchored = Trace.anchoredPhases();
  for (size_t I = 0; I != Phases.size(); ++I) {
    Out += "    {\"begin\": " + std::to_string(Phases[I].Begin) +
           ", \"end\": " + std::to_string(Phases[I].End) +
           ", \"anchoredBegin\": " + std::to_string(Anchored[I].Begin) + "}";
    Out += I + 1 != Phases.size() ? ",\n" : "\n";
  }
  Out += "  ],\n";

  Out += "  \"events\": [\n";
  const std::vector<TraceEvent> &Events = Trace.events();
  for (size_t I = 0; I != Events.size(); ++I) {
    Out += "    " + renderEventJSON(Events[I]);
    Out += I + 1 != Events.size() ? ",\n" : "\n";
  }
  Out += "  ]\n";
  Out += "}\n";
  return Out;
}

IOStatus opd::writeRunTraceJSON(const RunTrace &Trace,
                                const std::string &Path) {
  return writeFile(Path, renderRunTraceJSON(Trace));
}

//===----------------------------------------------------------------------===//
// JSON parsing (minimal, schema-sufficient)
//===----------------------------------------------------------------------===//

namespace {

/// A parsed JSON value. Numbers keep their source token so integer and
/// floating conversions both stay exact.
struct JValue {
  enum class K : uint8_t { Null, Bool, Num, Str, Arr, Obj };
  K Kind = K::Null;
  bool BoolVal = false;
  std::string Text; // number token or decoded string
  std::vector<JValue> Items;
  std::vector<std::pair<std::string, JValue>> Fields;

  const JValue *field(const char *Name) const {
    for (const auto &[Key, Value] : Fields)
      if (Key == Name)
        return &Value;
    return nullptr;
  }
  uint64_t asUInt() const { return std::strtoull(Text.c_str(), nullptr, 10); }
  double asDouble() const { return std::strtod(Text.c_str(), nullptr); }
};

/// Recursive-descent parser over the subset of JSON the writer emits
/// (objects, arrays, strings with simple escapes, numbers, literals).
class JSONParser {
public:
  JSONParser(const char *Begin, const char *End) : P(Begin), End(End) {}

  bool parseDocument(JValue &Out) {
    if (!parseValue(Out))
      return false;
    skipWS();
    return P == End || fail("trailing garbage");
  }

  const std::string &error() const { return Err; }

private:
  bool fail(const char *Message) {
    if (Err.empty())
      Err = Message;
    return false;
  }

  void skipWS() {
    while (P != End && (*P == ' ' || *P == '\t' || *P == '\n' || *P == '\r'))
      ++P;
  }

  bool consume(char C) {
    skipWS();
    if (P == End || *P != C)
      return false;
    ++P;
    return true;
  }

  bool parseString(std::string &Out) {
    if (!consume('"'))
      return fail("expected string");
    Out.clear();
    while (P != End && *P != '"') {
      char C = *P++;
      if (C == '\\') {
        if (P == End)
          return fail("unterminated escape");
        char E = *P++;
        switch (E) {
        case '"':
        case '\\':
        case '/':
          Out.push_back(E);
          break;
        case 'n':
          Out.push_back('\n');
          break;
        case 't':
          Out.push_back('\t');
          break;
        default:
          return fail("unsupported escape");
        }
      } else {
        Out.push_back(C);
      }
    }
    if (P == End)
      return fail("unterminated string");
    ++P; // closing quote
    return true;
  }

  bool parseValue(JValue &Out) {
    skipWS();
    if (P == End)
      return fail("unexpected end of input");
    char C = *P;
    if (C == '{')
      return parseObject(Out);
    if (C == '[')
      return parseArray(Out);
    if (C == '"') {
      Out.Kind = JValue::K::Str;
      return parseString(Out.Text);
    }
    if (C == 't' || C == 'f' || C == 'n')
      return parseLiteral(Out);
    return parseNumber(Out);
  }

  bool parseObject(JValue &Out) {
    Out.Kind = JValue::K::Obj;
    consume('{');
    if (consume('}'))
      return true;
    do {
      std::string Key;
      if (!parseString(Key) || !consume(':'))
        return fail("malformed object");
      JValue Value;
      if (!parseValue(Value))
        return false;
      Out.Fields.emplace_back(std::move(Key), std::move(Value));
    } while (consume(','));
    return consume('}') || fail("expected '}'");
  }

  bool parseArray(JValue &Out) {
    Out.Kind = JValue::K::Arr;
    consume('[');
    if (consume(']'))
      return true;
    do {
      JValue Item;
      if (!parseValue(Item))
        return false;
      Out.Items.push_back(std::move(Item));
    } while (consume(','));
    return consume(']') || fail("expected ']'");
  }

  bool parseLiteral(JValue &Out) {
    auto matches = [&](const char *Word) {
      size_t N = std::strlen(Word);
      if (static_cast<size_t>(End - P) < N ||
          std::strncmp(P, Word, N) != 0)
        return false;
      P += N;
      return true;
    };
    if (matches("true")) {
      Out.Kind = JValue::K::Bool;
      Out.BoolVal = true;
      return true;
    }
    if (matches("false")) {
      Out.Kind = JValue::K::Bool;
      return true;
    }
    if (matches("null"))
      return true;
    return fail("bad literal");
  }

  bool parseNumber(JValue &Out) {
    Out.Kind = JValue::K::Num;
    const char *Start = P;
    while (P != End &&
           (std::isdigit(static_cast<unsigned char>(*P)) || *P == '-' ||
            *P == '+' || *P == '.' || *P == 'e' || *P == 'E'))
      ++P;
    if (P == Start)
      return fail("expected number");
    Out.Text.assign(Start, P);
    return true;
  }

  const char *P;
  const char *End;
  std::string Err;
};

/// Decodes one event object of the export schema.
bool decodeEventJSON(const JValue &Obj, TraceEvent &E) {
  const JValue *Type = Obj.field("type");
  if (!Type || Type->Kind != JValue::K::Str ||
      !traceEventKindFromName(Type->Text, E.Kind))
    return false;
  auto getUInt = [&](const char *Name, uint64_t &Out) {
    const JValue *V = Obj.field(Name);
    if (!V || V->Kind != JValue::K::Num)
      return false;
    Out = V->asUInt();
    return true;
  };
  auto getDouble = [&](const char *Name, double &Out) {
    const JValue *V = Obj.field(Name);
    if (!V || V->Kind != JValue::K::Num)
      return false;
    Out = V->asDouble();
    return true;
  };
  auto getPolicy = [&](uint8_t &Out) {
    const JValue *V = Obj.field("policy");
    return V && V->Kind == JValue::K::Str &&
           policyFromName(E.Kind, V->Text, Out);
  };
  switch (E.Kind) {
  case TraceEventKind::RunBegin:
    return getUInt("elements", E.A) && getUInt("batch", E.B);
  case TraceEventKind::RunEnd:
    return getUInt("offset", E.Offset);
  case TraceEventKind::Evaluation: {
    const JValue *State = Obj.field("state");
    return getUInt("offset", E.Offset) &&
           getDouble("similarity", E.Similarity) &&
           getDouble("confidence", E.Confidence) && State &&
           State->Kind == JValue::K::Str &&
           stateFromName(State->Text, E.Decision);
  }
  case TraceEventKind::Anchor:
    return getUInt("offset", E.Offset) && getUInt("anchor", E.A) &&
           getPolicy(E.Policy);
  case TraceEventKind::WindowResize:
    return getUInt("offset", E.Offset) && getUInt("tw", E.A) &&
           getUInt("cw", E.B) && getPolicy(E.Policy);
  case TraceEventKind::WindowFlush:
    return getUInt("offset", E.Offset) && getUInt("seed", E.A);
  case TraceEventKind::PhaseBegin:
    return getUInt("offset", E.Offset) && getUInt("anchor", E.A);
  case TraceEventKind::PhaseEnd:
    return getUInt("offset", E.Offset);
  }
  return false;
}

} // namespace

IOStatus opd::readRunTraceJSON(const std::string &Path, RunTrace &Trace) {
  std::string Content;
  if (IOStatus S = readFile(Path, Content); !S)
    return S;
  JSONParser Parser(Content.data(), Content.data() + Content.size());
  JValue Doc;
  if (!Parser.parseDocument(Doc) || Doc.Kind != JValue::K::Obj)
    return IOStatus::failure(Path + ": JSON parse error: " +
                             (Parser.error().empty() ? "not an object"
                                                     : Parser.error()));
  if (const JValue *Version = Doc.field("version");
      Version && Version->asUInt() != 1)
    return IOStatus::failure(Path + ": unsupported version");
  const JValue *Events = Doc.field("events");
  if (!Events || Events->Kind != JValue::K::Arr)
    return IOStatus::failure(Path + ": missing events array");

  Trace.clear();
  if (const JValue *Detector = Doc.field("detector");
      Detector && Detector->Kind == JValue::K::Str)
    Trace.setDetectorName(Detector->Text);
  for (size_t I = 0; I != Events->Items.size(); ++I) {
    TraceEvent E;
    if (Events->Items[I].Kind != JValue::K::Obj ||
        !decodeEventJSON(Events->Items[I], E))
      return IOStatus::failure(Path + ": bad event at index " +
                               std::to_string(I));
    Trace.replayEvent(E);
  }
  return IOStatus::success();
}

//===----------------------------------------------------------------------===//
// CSV
//===----------------------------------------------------------------------===//

static const char CSVHeader[] =
    "event,offset,similarity,confidence,state,a,b,policy";

std::string opd::renderRunTraceCSV(const RunTrace &Trace) {
  std::string Out = CSVHeader;
  Out += '\n';
  for (const TraceEvent &E : Trace.events()) {
    Out += traceEventKindName(E.Kind);
    Out += ',' + std::to_string(E.Offset) + ',';
    bool IsEval = E.Kind == TraceEventKind::Evaluation;
    if (IsEval)
      Out += exactDouble(E.Similarity);
    Out += ',';
    if (IsEval)
      Out += exactDouble(E.Confidence);
    Out += ',';
    if (IsEval)
      Out += stateName(E.Decision);
    Out += ',' + std::to_string(E.A) + ',' + std::to_string(E.B) + ',';
    Out += policyName(E);
    Out += '\n';
  }
  return Out;
}

IOStatus opd::writeRunTraceCSV(const RunTrace &Trace,
                               const std::string &Path) {
  return writeFile(Path, renderRunTraceCSV(Trace));
}

IOStatus opd::readRunTraceCSV(const std::string &Path, RunTrace &Trace) {
  std::string Content;
  if (IOStatus S = readFile(Path, Content); !S)
    return S;

  Trace.clear();
  std::istringstream In(Content);
  std::string Line;
  size_t LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (Line.empty())
      continue;
    if (LineNo == 1) {
      if (Line != CSVHeader)
        return IOStatus::failure(Path + ": bad CSV header");
      continue;
    }
    // Split into exactly the 8 schema columns.
    std::vector<std::string> Cols;
    size_t Start = 0;
    while (true) {
      size_t Comma = Line.find(',', Start);
      if (Comma == std::string::npos) {
        Cols.push_back(Line.substr(Start));
        break;
      }
      Cols.push_back(Line.substr(Start, Comma - Start));
      Start = Comma + 1;
    }
    TraceEvent E;
    bool Ok = Cols.size() == 8 && traceEventKindFromName(Cols[0], E.Kind);
    if (Ok) {
      E.Offset = std::strtoull(Cols[1].c_str(), nullptr, 10);
      if (E.Kind == TraceEventKind::Evaluation) {
        E.Similarity = std::strtod(Cols[2].c_str(), nullptr);
        E.Confidence = std::strtod(Cols[3].c_str(), nullptr);
        Ok = stateFromName(Cols[4], E.Decision);
      } else {
        Ok = Cols[2].empty() && Cols[3].empty() && Cols[4].empty();
      }
      E.A = std::strtoull(Cols[5].c_str(), nullptr, 10);
      E.B = std::strtoull(Cols[6].c_str(), nullptr, 10);
      Ok = Ok && policyFromName(E.Kind, Cols[7], E.Policy);
    }
    if (!Ok)
      return IOStatus::failure(Path + ": bad CSV row at line " +
                               std::to_string(LineNo));
    Trace.replayEvent(E);
  }
  return IOStatus::success();
}
