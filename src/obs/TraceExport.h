//===- obs/TraceExport.h - RunTrace (de)serialization -----------*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// TraceIO-style writers and readers for RunTrace timelines. Two formats,
/// both specified field-by-field in docs/OBSERVABILITY.md:
///
///  * JSON — a self-describing document: a header (version, detector
///    description, trace/batch sizes), the aggregated counters, the
///    reconstructed phase intervals, and the full event timeline with
///    kind-specific field names. One event per line, so the file also
///    greps and diffs well.
///  * CSV — the event timeline only, one row per event with fixed
///    generic columns (event,offset,similarity,confidence,state,a,b,
///    policy); empty cells mean "not applicable to this kind".
///
/// Doubles are written with 17 significant digits, so a write/read
/// round-trip reproduces the recorded events exactly; readers rebuild
/// counters and phases by replaying events through RunTrace.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_OBS_TRACEEXPORT_H
#define OPD_OBS_TRACEEXPORT_H

#include "obs/RunTrace.h"
#include "trace/TraceIO.h"

#include <string>

namespace opd {

/// Renders \p Trace as a JSON document (the full schema).
std::string renderRunTraceJSON(const RunTrace &Trace);

/// Renders \p Trace's event timeline as CSV with a header row.
std::string renderRunTraceCSV(const RunTrace &Trace);

/// Writes the JSON document to \p Path.
IOStatus writeRunTraceJSON(const RunTrace &Trace, const std::string &Path);

/// Parses a JSON document produced by writeRunTraceJSON from \p Path into
/// \p Trace (replacing its contents; counters and phases are rebuilt by
/// replaying the events).
IOStatus readRunTraceJSON(const std::string &Path, RunTrace &Trace);

/// Writes the CSV timeline to \p Path.
IOStatus writeRunTraceCSV(const RunTrace &Trace, const std::string &Path);

/// Parses a CSV timeline produced by writeRunTraceCSV from \p Path into
/// \p Trace (replacing its contents). The CSV format carries no detector
/// description; the field is left empty.
IOStatus readRunTraceCSV(const std::string &Path, RunTrace &Trace);

} // namespace opd

#endif // OPD_OBS_TRACEEXPORT_H
