//===- obs/RunTrace.cpp - Materialized detector-run timelines ----------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "obs/RunTrace.h"

#include <cassert>

using namespace opd;

//===----------------------------------------------------------------------===//
// CountingObserver
//===----------------------------------------------------------------------===//

void CountingObserver::onRunBegin(uint64_t TraceSize, uint64_t BatchSize) {
  (void)TraceSize;
  (void)BatchSize;
}

void CountingObserver::onRunEnd(uint64_t Consumed) {
  Counters.Elements = Consumed;
}

void CountingObserver::onEvaluation(uint64_t Offset, double Similarity,
                                    PhaseState Decision, double Confidence) {
  (void)Offset;
  (void)Similarity;
  (void)Decision;
  (void)Confidence;
  ++Counters.Evaluations;
}

void CountingObserver::onAnchor(uint64_t Offset, AnchorKind Kind,
                                uint64_t AnchorOffset) {
  (void)Offset;
  (void)Kind;
  (void)AnchorOffset;
  ++Counters.Anchors;
}

void CountingObserver::onWindowResize(uint64_t Offset, ResizeKind Kind,
                                      uint64_t TWLength, uint64_t CWLength) {
  (void)Offset;
  (void)Kind;
  (void)TWLength;
  (void)CWLength;
  ++Counters.WindowResizes;
}

void CountingObserver::onWindowFlush(uint64_t Offset, uint64_t SeedLength) {
  (void)Offset;
  (void)SeedLength;
  ++Counters.WindowFlushes;
}

void CountingObserver::onPhaseBegin(uint64_t Offset,
                                    uint64_t AnchorEstimate) {
  ++Counters.PhasesOpened;
  if (AnchorEstimate != Offset)
    ++Counters.AnchorCorrections;
}

void CountingObserver::onPhaseEnd(uint64_t Offset) {
  (void)Offset;
  ++Counters.PhasesClosed;
}

//===----------------------------------------------------------------------===//
// TraceEvent kinds
//===----------------------------------------------------------------------===//

const char *opd::traceEventKindName(TraceEventKind Kind) {
  switch (Kind) {
  case TraceEventKind::RunBegin:
    return "run_begin";
  case TraceEventKind::RunEnd:
    return "run_end";
  case TraceEventKind::Evaluation:
    return "eval";
  case TraceEventKind::Anchor:
    return "anchor";
  case TraceEventKind::WindowResize:
    return "resize";
  case TraceEventKind::WindowFlush:
    return "flush";
  case TraceEventKind::PhaseBegin:
    return "phase_begin";
  case TraceEventKind::PhaseEnd:
    return "phase_end";
  }
  return "unknown";
}

bool opd::traceEventKindFromName(const std::string &Name,
                                 TraceEventKind &Kind) {
  static const TraceEventKind All[] = {
      TraceEventKind::RunBegin,     TraceEventKind::RunEnd,
      TraceEventKind::Evaluation,   TraceEventKind::Anchor,
      TraceEventKind::WindowResize, TraceEventKind::WindowFlush,
      TraceEventKind::PhaseBegin,   TraceEventKind::PhaseEnd,
  };
  for (TraceEventKind K : All) {
    if (Name == traceEventKindName(K)) {
      Kind = K;
      return true;
    }
  }
  return false;
}

//===----------------------------------------------------------------------===//
// RunTrace
//===----------------------------------------------------------------------===//

void RunTrace::onRunBegin(uint64_t NewTraceSize, uint64_t NewBatchSize) {
  CountingObserver::onRunBegin(NewTraceSize, NewBatchSize);
  TraceSize = NewTraceSize;
  BatchSize = NewBatchSize;
  TraceEvent E;
  E.Kind = TraceEventKind::RunBegin;
  E.A = NewTraceSize;
  E.B = NewBatchSize;
  record(E);
}

void RunTrace::onRunEnd(uint64_t Consumed) {
  CountingObserver::onRunEnd(Consumed);
  TraceEvent E;
  E.Kind = TraceEventKind::RunEnd;
  E.Offset = Consumed;
  record(E);
}

void RunTrace::onEvaluation(uint64_t Offset, double Similarity,
                            PhaseState Decision, double Confidence) {
  CountingObserver::onEvaluation(Offset, Similarity, Decision, Confidence);
  TraceEvent E;
  E.Kind = TraceEventKind::Evaluation;
  E.Offset = Offset;
  E.Similarity = Similarity;
  E.Confidence = Confidence;
  E.Decision = Decision;
  record(E);
}

void RunTrace::onAnchor(uint64_t Offset, AnchorKind Kind,
                        uint64_t AnchorOffset) {
  CountingObserver::onAnchor(Offset, Kind, AnchorOffset);
  TraceEvent E;
  E.Kind = TraceEventKind::Anchor;
  E.Offset = Offset;
  E.A = AnchorOffset;
  E.Policy = static_cast<uint8_t>(Kind);
  record(E);
}

void RunTrace::onWindowResize(uint64_t Offset, ResizeKind Kind,
                              uint64_t TWLength, uint64_t CWLength) {
  CountingObserver::onWindowResize(Offset, Kind, TWLength, CWLength);
  TraceEvent E;
  E.Kind = TraceEventKind::WindowResize;
  E.Offset = Offset;
  E.A = TWLength;
  E.B = CWLength;
  E.Policy = static_cast<uint8_t>(Kind);
  record(E);
}

void RunTrace::onWindowFlush(uint64_t Offset, uint64_t SeedLength) {
  CountingObserver::onWindowFlush(Offset, SeedLength);
  TraceEvent E;
  E.Kind = TraceEventKind::WindowFlush;
  E.Offset = Offset;
  E.A = SeedLength;
  record(E);
}

void RunTrace::onPhaseBegin(uint64_t Offset, uint64_t AnchorEstimate) {
  CountingObserver::onPhaseBegin(Offset, AnchorEstimate);
  TraceEvent E;
  E.Kind = TraceEventKind::PhaseBegin;
  E.Offset = Offset;
  E.A = AnchorEstimate;
  record(E);
}

void RunTrace::onPhaseEnd(uint64_t Offset) {
  CountingObserver::onPhaseEnd(Offset);
  TraceEvent E;
  E.Kind = TraceEventKind::PhaseEnd;
  E.Offset = Offset;
  record(E);
}

std::vector<PhaseInterval> RunTrace::phases() const {
  std::vector<PhaseInterval> Out;
  uint64_t Begin = 0;
  bool Open = false;
  for (const TraceEvent &E : Events) {
    if (E.Kind == TraceEventKind::PhaseBegin) {
      assert(!Open && "nested phase begin");
      Begin = E.Offset;
      Open = true;
    } else if (E.Kind == TraceEventKind::PhaseEnd) {
      assert(Open && "phase end without begin");
      Out.push_back({Begin, E.Offset});
      Open = false;
    }
  }
  assert(!Open && "timeline ended with an open phase");
  return Out;
}

std::vector<PhaseInterval> RunTrace::anchoredPhases() const {
  std::vector<PhaseInterval> Out;
  uint64_t Begin = 0;
  bool Open = false;
  for (const TraceEvent &E : Events) {
    if (E.Kind == TraceEventKind::PhaseBegin) {
      Begin = E.A;
      Open = true;
    } else if (E.Kind == TraceEventKind::PhaseEnd && Open) {
      Out.push_back({Begin, E.Offset});
      Open = false;
    }
  }
  return Out;
}

void RunTrace::replayEvent(const TraceEvent &E) {
  switch (E.Kind) {
  case TraceEventKind::RunBegin:
    onRunBegin(E.A, E.B);
    break;
  case TraceEventKind::RunEnd:
    onRunEnd(E.Offset);
    break;
  case TraceEventKind::Evaluation:
    onEvaluation(E.Offset, E.Similarity, E.Decision, E.Confidence);
    break;
  case TraceEventKind::Anchor:
    onAnchor(E.Offset, static_cast<AnchorKind>(E.Policy), E.A);
    break;
  case TraceEventKind::WindowResize:
    onWindowResize(E.Offset, static_cast<ResizeKind>(E.Policy), E.A, E.B);
    break;
  case TraceEventKind::WindowFlush:
    onWindowFlush(E.Offset, E.A);
    break;
  case TraceEventKind::PhaseBegin:
    onPhaseBegin(E.Offset, E.A);
    break;
  case TraceEventKind::PhaseEnd:
    onPhaseEnd(E.Offset);
    break;
  }
}

void RunTrace::clear() {
  Events.clear();
  Detector.clear();
  TraceSize = BatchSize = 0;
  clearCounters();
}
