//===- obs/RunTrace.h - Materialized detector-run timelines -----*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Concrete DetectorObserver implementations:
///
///  * CountingObserver — aggregates every callback into RunCounters
///    (evaluations, phases, anchor corrections, window churn) without
///    storing anything per event; cheap enough to attach across a full
///    configuration sweep.
///  * RunTrace — additionally materializes the callbacks into a compact
///    in-memory timeline of TraceEvents, reconstructable phase
///    intervals included. TraceExport.h serializes it to JSON/CSV.
///
/// One TraceEvent is a tagged record; the kind-specific meaning of the
/// generic payload fields A/B/Policy is documented per TraceEventKind
/// below and mirrored by the export schema in docs/OBSERVABILITY.md.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_OBS_RUNTRACE_H
#define OPD_OBS_RUNTRACE_H

#include "core/DetectorObserver.h"
#include "trace/StateSequence.h"

#include <cstdint>
#include <string>
#include <vector>

namespace opd {

/// Aggregated per-run observability counters.
struct RunCounters {
  /// Elements consumed by the run (set at onRunEnd).
  uint64_t Elements = 0;
  /// Similarity evaluations (full-window comparisons).
  uint64_t Evaluations = 0;
  /// Detected phase opens / closes (closes include a trace-final close).
  uint64_t PhasesOpened = 0;
  uint64_t PhasesClosed = 0;
  /// Anchor computations at phase starts.
  uint64_t Anchors = 0;
  /// Phase starts whose anchored estimate moved the boundary (the
  /// corrections Figure 8 scores).
  uint64_t AnchorCorrections = 0;
  /// Adaptive-TW resizes (Slide/Move) at phase starts.
  uint64_t WindowResizes = 0;
  /// Window flushes at phase ends (Figure 2, rows F-G).
  uint64_t WindowFlushes = 0;

  friend bool operator==(const RunCounters &A, const RunCounters &B) {
    return A.Elements == B.Elements && A.Evaluations == B.Evaluations &&
           A.PhasesOpened == B.PhasesOpened &&
           A.PhasesClosed == B.PhasesClosed && A.Anchors == B.Anchors &&
           A.AnchorCorrections == B.AnchorCorrections &&
           A.WindowResizes == B.WindowResizes &&
           A.WindowFlushes == B.WindowFlushes;
  }
};

/// Observer that only aggregates RunCounters; attach it when per-event
/// storage is too expensive (e.g. across a sweep).
class CountingObserver : public DetectorObserver {
public:
  void onRunBegin(uint64_t TraceSize, uint64_t BatchSize) override;
  void onRunEnd(uint64_t Consumed) override;
  void onEvaluation(uint64_t Offset, double Similarity, PhaseState Decision,
                    double Confidence) override;
  void onAnchor(uint64_t Offset, AnchorKind Kind,
                uint64_t AnchorOffset) override;
  void onWindowResize(uint64_t Offset, ResizeKind Kind, uint64_t TWLength,
                      uint64_t CWLength) override;
  void onWindowFlush(uint64_t Offset, uint64_t SeedLength) override;
  void onPhaseBegin(uint64_t Offset, uint64_t AnchorEstimate) override;
  void onPhaseEnd(uint64_t Offset) override;

  const RunCounters &counters() const { return Counters; }

  /// Clears the counters for a fresh run.
  void clearCounters() { Counters = RunCounters(); }

private:
  RunCounters Counters;
};

/// The timeline event kinds, one per DetectorObserver callback.
enum class TraceEventKind : uint8_t {
  RunBegin,     ///< A = trace size, B = batch size.
  RunEnd,       ///< Offset = elements consumed.
  Evaluation,   ///< Similarity/Decision/Confidence valid.
  Anchor,       ///< A = anchor offset, Policy = AnchorKind.
  WindowResize, ///< A = TW length, B = CW length, Policy = ResizeKind.
  WindowFlush,  ///< A = CW seed length.
  PhaseBegin,   ///< Offset = phase start, A = anchored start estimate.
  PhaseEnd,     ///< Offset = phase end (exclusive).
};

/// Stable mnemonic used by the JSON/CSV export ("eval", "anchor", ...).
const char *traceEventKindName(TraceEventKind Kind);

/// Inverse of traceEventKindName(); returns false on an unknown name.
bool traceEventKindFromName(const std::string &Name, TraceEventKind &Kind);

/// One timeline record. Field validity depends on Kind (see
/// TraceEventKind); unused fields hold their zero defaults so events
/// compare and serialize deterministically.
struct TraceEvent {
  TraceEventKind Kind = TraceEventKind::RunBegin;
  /// Global element offset of the event (0 for RunBegin).
  uint64_t Offset = 0;
  /// Evaluation payload.
  double Similarity = 0.0;
  double Confidence = 0.0;
  PhaseState Decision = PhaseState::Transition;
  /// Kind-specific payload (see TraceEventKind).
  uint64_t A = 0;
  uint64_t B = 0;
  /// Raw AnchorKind (Anchor) or ResizeKind (WindowResize) value.
  uint8_t Policy = 0;

  friend bool operator==(const TraceEvent &X, const TraceEvent &Y) {
    return X.Kind == Y.Kind && X.Offset == Y.Offset &&
           X.Similarity == Y.Similarity && X.Confidence == Y.Confidence &&
           X.Decision == Y.Decision && X.A == Y.A && X.B == Y.B &&
           X.Policy == Y.Policy;
  }
};

/// Records a detector run's full event timeline (plus the counters of
/// CountingObserver). Attach via runDetector(); the recorded phase
/// intervals then match DetectorRun::DetectedPhases exactly.
class RunTrace final : public CountingObserver {
public:
  void onRunBegin(uint64_t TraceSize, uint64_t BatchSize) override;
  void onRunEnd(uint64_t Consumed) override;
  void onEvaluation(uint64_t Offset, double Similarity, PhaseState Decision,
                    double Confidence) override;
  void onAnchor(uint64_t Offset, AnchorKind Kind,
                uint64_t AnchorOffset) override;
  void onWindowResize(uint64_t Offset, ResizeKind Kind, uint64_t TWLength,
                      uint64_t CWLength) override;
  void onWindowFlush(uint64_t Offset, uint64_t SeedLength) override;
  void onPhaseBegin(uint64_t Offset, uint64_t AnchorEstimate) override;
  void onPhaseEnd(uint64_t Offset) override;

  /// The recorded timeline in emission order.
  const std::vector<TraceEvent> &events() const { return Events; }

  /// Trace size and batch size of the recorded run (from RunBegin).
  uint64_t traceSize() const { return TraceSize; }
  uint64_t batchSize() const { return BatchSize; }

  /// Description of the observed detector, carried into the export
  /// header (set it from OnlineDetector::describe()).
  void setDetectorName(std::string Name) { Detector = std::move(Name); }
  const std::string &detectorName() const { return Detector; }

  /// The detected phase intervals, reconstructed from the
  /// PhaseBegin/PhaseEnd events; equal to DetectorRun::DetectedPhases
  /// for the observed run.
  std::vector<PhaseInterval> phases() const;

  /// Same intervals with each start replaced by the anchored estimate
  /// (unclamped; DetectorRun::AnchoredPhases clamps overlaps).
  std::vector<PhaseInterval> anchoredPhases() const;

  /// Re-dispatches a deserialized event through the corresponding
  /// observer callback, rebuilding counters and the timeline in one
  /// pass; TraceExport readers replay a file through this.
  void replayEvent(const TraceEvent &E);

  /// Clears events, counters, and run metadata.
  void clear();

private:
  void record(const TraceEvent &E) { Events.push_back(E); }

  std::vector<TraceEvent> Events;
  std::string Detector;
  uint64_t TraceSize = 0;
  uint64_t BatchSize = 0;
};

} // namespace opd

#endif // OPD_OBS_RUNTRACE_H
