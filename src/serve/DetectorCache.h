//===- serve/DetectorCache.h - Reusable fast-detector pool ------*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sweep harness reuses monomorphic fast detectors through per-worker
/// RunArenas, reconfigure()ing one instance per shape across thousands of
/// sequential runs. Serving needs the same reconfigure-don't-reallocate
/// economics with a different lifetime: sessions hold their detector for
/// as long as the client streams, and detectors return to the pool when
/// sessions close. DetectorCache is that pool — free lists per
/// (fastShapeIndex, numSites), so a server handling a homogeneous fleet
/// of sessions (the common multi-tenant case: many clients streaming the
/// same workload family) allocates kernel count arrays only for the
/// concurrency high-water mark, not once per session.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_SERVE_DETECTORCACHE_H
#define OPD_SERVE_DETECTORCACHE_H

#include "core/FastDetector.h"
#include "support/Parallel.h"

#include <array>
#include <memory>
#include <vector>

namespace opd {

/// Thread-safe pool of FastDetectorBase instances keyed by shape and
/// site-space size. acquire() prefers reconfiguring a pooled instance;
/// release() returns one for the next session of the same shape.
class DetectorCache {
public:
  /// \p MaxFreePerShape bounds each shape's free list; releases beyond
  /// the bound discard the instance instead of growing without limit.
  explicit DetectorCache(size_t MaxFreePerShape = 256)
      : MaxFreePerShape(MaxFreePerShape) {}

  /// Pool effectiveness counters (monotonic).
  struct Stats {
    /// acquire() calls satisfied by reconfiguring a pooled instance.
    uint64_t Hits = 0;
    /// acquire() calls that had to build a new instance.
    uint64_t Misses = 0;
    /// Instances returned to the pool.
    uint64_t Releases = 0;
    /// Instances discarded because their free list was full.
    uint64_t Discarded = 0;
  };

  /// Returns a detector for \p Config sized for \p NumSites — a pooled
  /// instance of the same shape and site count (reconfigured and reset
  /// for a fresh stream) when available, a new one otherwise.
  std::unique_ptr<FastDetectorBase> acquire(const DetectorConfig &Config,
                                            SiteIndex NumSites);

  /// Returns \p Detector (built for \p Config) to the pool. Passing the
  /// config the detector was last acquired/reconfigured for is required:
  /// it names the shape's free list.
  void release(const DetectorConfig &Config,
               std::unique_ptr<FastDetectorBase> Detector);

  /// Current counters.
  Stats stats() const;

private:
  size_t MaxFreePerShape;
  mutable Mutex M;
  std::array<std::vector<std::unique_ptr<FastDetectorBase>>, NumFastShapes>
      Free OPD_GUARDED_BY(M);
  Stats S OPD_GUARDED_BY(M);
};

} // namespace opd

#endif // OPD_SERVE_DETECTORCACHE_H
