//===- serve/Session.cpp - One client session's state machine ---------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "serve/Session.h"

#include <cmath>

using namespace opd;

ServeSession::ServeSession(uint64_t Id, const ServeLimits &Limits,
                           DetectorCache &Cache)
    : Id(Id), Limits(Limits), Cache(Cache) {}

// NOLINTNEXTLINE(bugprone-exception-escape): release path only moves a
// pooled detector back to the cache; nothing on it can throw.
ServeSession::~ServeSession() { releaseDetector(); }

void ServeSession::releaseDetector() {
  if (Detector)
    Cache.release(Config, std::move(Detector));
}

void ServeSession::takeOutput(std::vector<uint8_t> &Sink) {
  Sink.insert(Sink.end(), Out.begin(), Out.end());
  Out.clear();
}

void ServeSession::fail(ServeError Code, const std::string &Message) {
  appendError(Out, Code, Message);
  St = State::Failed;
  Err = Code;
  releaseDetector();
  // The backlog can never be decided now; drop it so the buffer does not
  // pin memory for the connection's remaining (flush-then-close) life.
  Pending.clear();
  PendingHead = 0;
}

bool ServeSession::feed(const uint8_t *Data, size_t N) {
  // Terminal states ignore further input instead of parsing it: a Done
  // session must never regress to Failed (the protocol model's
  // conformance replay pins this — trailing client bytes after Finished
  // previously turned Done into Failed with a spurious BadState Error
  // *after* the Finished summary).
  if (St == State::Failed || St == State::Done)
    return false;
  Reader.feed(Data, N);
  Frame F;
  while (true) {
    switch (Reader.next(F)) {
    case FrameReader::Status::NeedMore:
      return true;
    case FrameReader::Status::Corrupt:
      fail(Reader.corruptOversized() ? ServeError::Oversized
                                     : ServeError::BadFrame,
           Reader.corruptReason());
      return false;
    case FrameReader::Status::Frame:
      if (!handleFrame(F))
        return false;
      break;
    }
  }
}

bool ServeSession::handleFrame(const Frame &F) {
  switch (F.Kind) {
  case MsgKind::Hello:
    if (St != State::AwaitHello) {
      fail(ServeError::BadState, "duplicate handshake");
      return false;
    }
    return handleHello(F);

  case MsgKind::Elements: {
    if (St != State::Streaming) {
      fail(ServeError::BadState, St == State::AwaitHello
                                     ? "elements before handshake"
                                     : "elements after finish");
      return false;
    }
    ElementsView View;
    if (!parseElements(F, View)) {
      fail(ServeError::BadFrame, "malformed elements frame");
      return false;
    }
    Pending.reserve(Pending.size() + View.Count);
    for (uint32_t I = 0; I != View.Count; ++I) {
      SiteIndex E = View.element(I);
      if (E >= NumSites) {
        fail(ServeError::SiteRange,
             "element " + std::to_string(E) + " outside site space " +
                 std::to_string(NumSites));
        return false;
      }
      Pending.push_back(E);
    }
    Ingested += View.Count;
    return true;
  }

  case MsgKind::Finish:
    if (St != State::Streaming) {
      fail(ServeError::BadState, St == State::AwaitHello
                                     ? "finish before handshake"
                                     : "duplicate finish");
      return false;
    }
    if (F.Len != 0) {
      fail(ServeError::BadFrame, "finish frame carries a payload");
      return false;
    }
    St = State::Draining;
    return true;

  case MsgKind::HelloAck:
  case MsgKind::Transition:
  case MsgKind::Progress:
  case MsgKind::Finished:
  case MsgKind::Error:
    fail(ServeError::BadFrame, "server-to-client frame kind from client");
    return false;
  }
  fail(ServeError::BadFrame,
       "unknown frame kind " + std::to_string(unsigned(F.Kind)));
  return false;
}

bool ServeSession::validateHello(const HelloMsg &M, std::string &Why) const {
  const WindowConfig &W = M.Config.Window;
  if (M.NumSites == 0 || M.NumSites > Limits.MaxSites) {
    Why = "site-space size " + std::to_string(M.NumSites) +
          " outside (0, " + std::to_string(Limits.MaxSites) + "]";
    return false;
  }
  if (W.CWSize == 0 || W.CWSize > Limits.MaxWindow) {
    Why = "current-window size " + std::to_string(W.CWSize) +
          " outside (0, " + std::to_string(Limits.MaxWindow) + "]";
    return false;
  }
  if (W.TWSize == 0 || W.TWSize > Limits.MaxWindow) {
    Why = "trailing-window size " + std::to_string(W.TWSize) +
          " outside (0, " + std::to_string(Limits.MaxWindow) + "]";
    return false;
  }
  if (W.SkipFactor == 0 || W.SkipFactor > Limits.MaxSkip) {
    Why = "skip factor " + std::to_string(W.SkipFactor) + " outside (0, " +
          std::to_string(Limits.MaxSkip) + "]";
    return false;
  }
  if (!std::isfinite(M.Config.AnalyzerParam)) {
    Why = "non-finite analyzer parameter";
    return false;
  }
  return true;
}

bool ServeSession::handleHello(const Frame &F) {
  HelloMsg M;
  ServeError Parse = parseHello(F, M);
  if (Parse != ServeError::None) {
    fail(Parse, std::string("handshake rejected: ") + serveErrorName(Parse));
    return false;
  }
  std::string Why;
  if (!validateHello(M, Why)) {
    fail(ServeError::BadConfig, Why);
    return false;
  }
  Config = M.Config;
  NumSites = M.NumSites;
  Flags = M.Flags;
  Detector = Cache.acquire(Config, NumSites);

  HelloAckMsg Ack;
  Ack.SessionId = Id;
  Ack.BatchSize = Config.Window.SkipFactor;
  Ack.MaxBatch = MaxElementsPerFrame;
  appendHelloAck(Out, Ack);
  St = State::Streaming;
  return true;
}

void ServeSession::decideBatch(const SiteIndex *Elements, size_t N) {
  PhaseState S = Detector->processBatch(Elements, N);
  if (S != Last) {
    TransitionMsg T;
    T.Offset = Consumed;
    T.NewState = S;
    if (S == PhaseState::InPhase && (Flags & HelloWantAnchors)) {
      T.HasAnchor = true;
      T.Anchor = Detector->lastPhaseStartEstimate();
    }
    appendTransition(Out, T);
    Transitions += 1;
    Last = S;
  }
  Consumed += N;
}

void ServeSession::compactPending() {
  if (PendingHead == Pending.size()) {
    Pending.clear();
    PendingHead = 0;
    return;
  }
  // Same policy as the windowed model's element buffer: compact only
  // once the dead prefix is big and outweighs the live suffix.
  if (PendingHead > (64u << 10) && PendingHead * 2 > Pending.size()) {
    Pending.erase(Pending.begin(), Pending.begin() +
                                       static_cast<ptrdiff_t>(PendingHead));
    PendingHead = 0;
  }
}

bool ServeSession::pump(size_t MaxElements) {
  if (St != State::Streaming && St != State::Draining)
    return false;

  size_t Batch = Config.Window.SkipFactor;
  size_t Processed = 0;
  while (pendingElements() >= Batch && Processed < MaxElements) {
    decideBatch(Pending.data() + PendingHead, Batch);
    PendingHead += Batch;
    Processed += Batch;
  }

  if (St == State::Draining && pendingElements() < Batch &&
      Processed < MaxElements) {
    // The client declared end-of-stream: decide the sub-batch tail as
    // one short batch (exactly consumeTrace()'s trailing batch), then
    // summarize.
    size_t Tail = pendingElements();
    if (Tail > 0) {
      decideBatch(Pending.data() + PendingHead, Tail);
      PendingHead += Tail;
    }
    FinishedMsg Fin;
    Fin.Elements = Consumed;
    Fin.Transitions = Transitions;
    Fin.FinalState = Last;
    // Progress before Finished so a client's flow-control window fully
    // opens before it sees the summary.
    if ((Flags & HelloWantProgress) && Ingested > AckedIngest) {
      ProgressMsg P;
      P.Ingested = Ingested;
      appendProgress(Out, P);
      AckedIngest = Ingested;
    }
    appendFinished(Out, Fin);
    St = State::Done;
    releaseDetector();
    Pending.clear();
    PendingHead = 0;
    return false;
  }

  compactPending();
  if ((Flags & HelloWantProgress) && Ingested > AckedIngest) {
    ProgressMsg P;
    P.Ingested = Ingested;
    appendProgress(Out, P);
    AckedIngest = Ingested;
  }
  return pendingElements() >= Batch ||
         (St == State::Draining && pendingElements() > 0);
}

void ServeSession::shutdown(ServeError Code) {
  switch (St) {
  case State::Done:
  case State::Failed:
    return;
  case State::Draining:
    // The client already finished its stream; completing it beats
    // cutting it off one pump short.
    pump();
    return;
  case State::AwaitHello:
    fail(Code, "session closed before handshake");
    return;
  case State::Streaming:
    // Deliver every decidable transition (all full batches), then
    // report the cut. The sub-batch tail stays undecided: only the
    // client's Finish may flush it, or replays would diverge from
    // offline runs.
    pump();
    fail(Code, Code == ServeError::Evicted ? "idle session evicted"
                                           : "server shutting down");
    return;
  }
}
