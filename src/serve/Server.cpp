//===- serve/Server.cpp - Multi-tenant phase-detection server --------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
//
// Implementation notes (the design rationale lives in Server.h and
// docs/SERVING.md):
//
//  * The I/O thread is the only thread that touches sockets, the
//    connection registry, and each connection's write buffer. Workers
//    touch only the ServeSession under the per-connection mutex and
//    signal the I/O thread through an atomic flag plus a self-pipe.
//  * Connections are shared_ptr so a worker's queue entry keeps the
//    object alive across a racing close; a closed connection's session
//    is reset under the mutex, and every session access null-checks.
//  * The Queued flag is cleared *before* a worker pumps, so an enqueue
//    racing with the pump re-queues the connection instead of losing
//    the wakeup; the per-shard single worker keeps pumping serial.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace opd;

namespace {

/// Elements one worker pump decides before rotating to the next queued
/// session, so one heavy session cannot starve its shard peers.
constexpr size_t PumpChunk = 64u << 10;

/// Socket read chunk.
constexpr size_t ReadChunk = 64u << 10;

using Clock = std::chrono::steady_clock;

double secondsBetween(Clock::time_point From, Clock::time_point To) {
  return std::chrono::duration<double>(To - From).count();
}

} // namespace

struct PhaseServer::Impl {
  explicit Impl(const ServerOptions &O) : Opts(O), Cache(O.CacheFreePerShape) {}

  ServerOptions Opts;
  DetectorCache Cache;

  std::atomic<bool> Running{false};
  std::atomic<bool> StopRequested{false};
  /// Serializes start()/stop() against each other.
  std::mutex LifecycleM;

  int ListenFd = -1;
  int WakeRd = -1;
  int WakeWr = -1;
  uint16_t BoundPort = 0;
  unsigned NumShards = 1;

  /// One client connection: the socket-facing shell around a
  /// ServeSession.
  struct Conn {
    Conn(uint64_t Id, const ServeLimits &Limits, DetectorCache &Cache)
        : Id(Id), Sess(std::make_unique<ServeSession>(Id, Limits, Cache)) {}

    const uint64_t Id;
    int Fd = -1;
    unsigned Shard = 0;
    /// True while an entry for this connection sits in its shard queue.
    std::atomic<bool> Queued{false};
    /// Worker-to-I/O signal: a pump ran; pull output / recheck state.
    std::atomic<bool> NeedFlush{false};

    Mutex M;
    /// Null once the connection closed (stats already harvested).
    std::unique_ptr<ServeSession> Sess OPD_GUARDED_BY(M);

    // I/O-thread-confined state.
    bool ReadPaused = false; ///< Backpressure: stop POLLIN until relieved.
    bool ReadEof = false;    ///< Client half-closed its send direction.
    bool Closing = false;    ///< Terminal: close once WriteBuf drains.
    Clock::time_point LastActivity;
    std::vector<uint8_t> WriteBuf;
    size_t WritePos = 0;
  };

  /// One worker shard: a queue of connections with pump work.
  struct Shard {
    std::mutex QM;
    std::condition_variable QCv;
    std::deque<std::shared_ptr<Conn>> Queue;
    bool Stop = false;
    std::thread Worker;
  };

  std::vector<std::unique_ptr<Shard>> Shards;
  std::thread IoThread;

  // I/O-thread-confined.
  std::vector<std::shared_ptr<Conn>> Conns;
  uint64_t NextSessionId = 1;

  // Lifetime counters (see ServerStats).
  std::atomic<uint64_t> NAccepted{0}, NCompleted{0}, NEvicted{0},
      NProtocolErrors{0}, NDrainClosed{0}, NElements{0}, NTransitions{0},
      NBytesIn{0}, NBytesOut{0};

  bool start(std::string &Error);
  void stop();
  ServerStats stats() const;

  void ioLoop();
  void workerLoop(Shard &S);

  void wake();
  void enqueue(const std::shared_ptr<Conn> &C);
  void acceptNew(Clock::time_point Now);
  void handleRead(const std::shared_ptr<Conn> &C, Clock::time_point Now);
  void handleEof(const std::shared_ptr<Conn> &C);
  void pullOutput(const std::shared_ptr<Conn> &C);
  void tryWrite(Conn &C, Clock::time_point Now);
  void closeConn(Conn &C);
  void reapClosed();
  void idleSweep(Clock::time_point Now);
  void beginDrain(Clock::time_point Now);
  void closeFd(int &Fd);
};

void PhaseServer::Impl::closeFd(int &Fd) {
  if (Fd != -1) {
    ::close(Fd);
    Fd = -1;
  }
}

bool PhaseServer::Impl::start(std::string &Error) {
  std::lock_guard<std::mutex> L(LifecycleM);
  if (Running.load(std::memory_order_acquire)) {
    Error = "server already running";
    return false;
  }

  unsigned HW = hardwareParallelism();
  NumShards = Opts.Shards ? Opts.Shards : std::max(1u, HW > 1 ? HW - 1 : 1u);

  int P[2];
  if (::pipe2(P, O_NONBLOCK | O_CLOEXEC) != 0) {
    Error = std::string("pipe2: ") + std::strerror(errno);
    return false;
  }
  WakeRd = P[0];
  WakeWr = P[1];

  ListenFd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (ListenFd < 0) {
    Error = std::string("socket: ") + std::strerror(errno);
    closeFd(WakeRd);
    closeFd(WakeWr);
    return false;
  }
  int One = 1;
  ::setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));

  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Opts.Port);
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
          0 ||
      ::listen(ListenFd, 1024) != 0) {
    Error = std::string("bind/listen: ") + std::strerror(errno);
    closeFd(ListenFd);
    closeFd(WakeRd);
    closeFd(WakeWr);
    return false;
  }
  socklen_t AddrLen = sizeof(Addr);
  if (::getsockname(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
                    &AddrLen) != 0) {
    Error = std::string("getsockname: ") + std::strerror(errno);
    closeFd(ListenFd);
    closeFd(WakeRd);
    closeFd(WakeWr);
    return false;
  }
  BoundPort = ntohs(Addr.sin_port);

  StopRequested.store(false, std::memory_order_release);
  Shards.clear();
  for (unsigned I = 0; I != NumShards; ++I) {
    auto S = std::make_unique<Shard>();
    S->Worker = std::thread([this, Raw = S.get()] { workerLoop(*Raw); });
    Shards.push_back(std::move(S));
  }
  IoThread = std::thread([this] { ioLoop(); });
  Running.store(true, std::memory_order_release);
  return true;
}

void PhaseServer::Impl::stop() {
  std::lock_guard<std::mutex> L(LifecycleM);
  if (!Running.load(std::memory_order_acquire))
    return;

  StopRequested.store(true, std::memory_order_release);
  wake();
  IoThread.join();

  for (auto &S : Shards) {
    {
      std::lock_guard<std::mutex> QL(S->QM);
      S->Stop = true;
    }
    S->QCv.notify_all();
  }
  for (auto &S : Shards)
    S->Worker.join();
  Shards.clear();

  closeFd(ListenFd);
  closeFd(WakeRd);
  closeFd(WakeWr);
  Running.store(false, std::memory_order_release);
}

ServerStats PhaseServer::Impl::stats() const {
  ServerStats S;
  S.Accepted = NAccepted.load(std::memory_order_relaxed);
  S.Completed = NCompleted.load(std::memory_order_relaxed);
  S.Evicted = NEvicted.load(std::memory_order_relaxed);
  S.ProtocolErrors = NProtocolErrors.load(std::memory_order_relaxed);
  S.DrainClosed = NDrainClosed.load(std::memory_order_relaxed);
  S.Elements = NElements.load(std::memory_order_relaxed);
  S.Transitions = NTransitions.load(std::memory_order_relaxed);
  S.BytesIn = NBytesIn.load(std::memory_order_relaxed);
  S.BytesOut = NBytesOut.load(std::memory_order_relaxed);
  S.Cache = Cache.stats();
  return S;
}

void PhaseServer::Impl::wake() {
  uint8_t B = 1;
  // Best-effort: a full pipe already guarantees a pending wakeup.
  (void)!::write(WakeWr, &B, 1);
}

void PhaseServer::Impl::enqueue(const std::shared_ptr<Conn> &C) {
  if (C->Queued.exchange(true, std::memory_order_acq_rel))
    return;
  Shard &S = *Shards[C->Shard];
  {
    std::lock_guard<std::mutex> L(S.QM);
    S.Queue.push_back(C);
  }
  S.QCv.notify_one();
}

void PhaseServer::Impl::workerLoop(Shard &S) {
  while (true) {
    std::shared_ptr<Conn> C;
    {
      std::unique_lock<std::mutex> L(S.QM);
      S.QCv.wait(L, [&] { return S.Stop || !S.Queue.empty(); });
      if (S.Queue.empty())
        return;
      C = std::move(S.Queue.front());
      S.Queue.pop_front();
    }
    // Clear Queued before pumping: a racing enqueue re-queues us instead
    // of losing its wakeup.
    C->Queued.store(false, std::memory_order_release);

    bool More = false;
    {
      LockGuard L(C->M);
      if (C->Sess)
        More = C->Sess->pump(PumpChunk);
    }
    // Always signal the I/O thread: even an output-free pump may have
    // drained the backlog below the backpressure low watermark.
    if (!C->NeedFlush.exchange(true, std::memory_order_acq_rel))
      wake();
    if (More)
      enqueue(C);
  }
}

void PhaseServer::Impl::acceptNew(Clock::time_point Now) {
  while (true) {
    sockaddr_in Addr;
    socklen_t AddrLen = sizeof(Addr);
    int Fd = ::accept4(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
                       &AddrLen, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      return; // EAGAIN or a transient accept failure; poll again.
    }
    int One = 1;
    ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));

    if (Conns.size() >= Opts.MaxSessions) {
      std::vector<uint8_t> Err;
      appendError(Err, ServeError::Overload, "server at session capacity");
      (void)!::send(Fd, Err.data(), Err.size(), MSG_NOSIGNAL);
      ::close(Fd);
      continue;
    }

    uint64_t Id = NextSessionId++;
    auto C = std::make_shared<Conn>(Id, Opts.Limits, Cache);
    C->Fd = Fd;
    C->Shard = unsigned(Id % NumShards);
    C->LastActivity = Now;
    NAccepted.fetch_add(1, std::memory_order_relaxed);
    Conns.push_back(std::move(C));
  }
}

void PhaseServer::Impl::closeConn(Conn &C) {
  {
    LockGuard L(C.M);
    if (C.Sess) {
      NElements.fetch_add(C.Sess->elementsProcessed(),
                          std::memory_order_relaxed);
      NTransitions.fetch_add(C.Sess->transitions(),
                             std::memory_order_relaxed);
      if (C.Sess->done()) {
        NCompleted.fetch_add(1, std::memory_order_relaxed);
      } else if (C.Sess->failed()) {
        switch (C.Sess->error()) {
        case ServeError::Evicted:
          NEvicted.fetch_add(1, std::memory_order_relaxed);
          break;
        case ServeError::Shutdown:
          NDrainClosed.fetch_add(1, std::memory_order_relaxed);
          break;
        default:
          NProtocolErrors.fetch_add(1, std::memory_order_relaxed);
          break;
        }
      }
      // Destroying the session returns its detector to the cache.
      C.Sess.reset();
    }
  }
  closeFd(C.Fd);
}

void PhaseServer::Impl::reapClosed() {
  Conns.erase(std::remove_if(Conns.begin(), Conns.end(),
                             [](const std::shared_ptr<Conn> &C) {
                               return C->Fd == -1;
                             }),
              Conns.end());
}

void PhaseServer::Impl::tryWrite(Conn &C, Clock::time_point Now) {
  while (C.WritePos < C.WriteBuf.size()) {
    ssize_t N = ::send(C.Fd, C.WriteBuf.data() + C.WritePos,
                       C.WriteBuf.size() - C.WritePos, MSG_NOSIGNAL);
    if (N > 0) {
      C.WritePos += size_t(N);
      C.LastActivity = Now;
      NBytesOut.fetch_add(uint64_t(N), std::memory_order_relaxed);
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      break;
    closeConn(C);
    return;
  }
  if (C.WritePos == C.WriteBuf.size()) {
    C.WriteBuf.clear();
    C.WritePos = 0;
  } else if (C.WritePos > (256u << 10) && C.WritePos * 2 > C.WriteBuf.size()) {
    C.WriteBuf.erase(C.WriteBuf.begin(),
                     C.WriteBuf.begin() + ptrdiff_t(C.WritePos));
    C.WritePos = 0;
  }
}

void PhaseServer::Impl::pullOutput(const std::shared_ptr<Conn> &C) {
  bool Relieved = false;
  {
    LockGuard L(C->M);
    if (!C->Sess)
      return;
    if (C->Sess->hasOutput())
      C->Sess->takeOutput(C->WriteBuf);
    if (C->Sess->done() || C->Sess->failed())
      C->Closing = true;
    Relieved = C->Sess->ingressRelieved();
  }
  if (C->ReadPaused && Relieved && !C->ReadEof)
    C->ReadPaused = false;
}

void PhaseServer::Impl::handleRead(const std::shared_ptr<Conn> &C,
                                   Clock::time_point Now) {
  uint8_t Buf[ReadChunk];
  while (true) {
    ssize_t N = ::recv(C->Fd, Buf, sizeof(Buf), 0);
    if (N > 0) {
      NBytesIn.fetch_add(uint64_t(N), std::memory_order_relaxed);
      C->LastActivity = Now;
      bool Ok;
      bool Saturated = false;
      bool NeedsPump = false;
      {
        LockGuard L(C->M);
        if (!C->Sess)
          return;
        Ok = C->Sess->feed(Buf, size_t(N));
        if (C->Sess->hasOutput())
          C->Sess->takeOutput(C->WriteBuf);
        if (Ok) {
          Saturated = C->Sess->ingressSaturated();
          NeedsPump = C->Sess->pendingElements() > 0 ||
                      C->Sess->state() == ServeSession::State::Draining;
        }
      }
      if (!Ok) {
        // Terminal protocol error: the Error frame is in WriteBuf; flush
        // it and close.
        C->Closing = true;
        tryWrite(*C, Now);
        if (C->Fd != -1 && C->WriteBuf.empty())
          closeConn(*C);
        return;
      }
      if (NeedsPump)
        enqueue(C);
      if (!C->WriteBuf.empty())
        tryWrite(*C, Now); // Handshake ack fast path.
      if (C->Fd == -1)
        return;
      if (Saturated) {
        C->ReadPaused = true;
        return;
      }
      if (size_t(N) < sizeof(Buf))
        return; // Socket drained.
      continue;
    }
    if (N == 0) {
      handleEof(C);
      return;
    }
    if (errno == EINTR)
      continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return;
    closeConn(*C);
    return;
  }
}

void PhaseServer::Impl::handleEof(const std::shared_ptr<Conn> &C) {
  C->ReadEof = true;
  bool KeepOpen = false;
  {
    LockGuard L(C->M);
    if (C->Sess) {
      ServeSession::State St = C->Sess->state();
      // A client may half-close after Finish and read the remaining
      // event stream; anything earlier is abandonment.
      KeepOpen =
          St == ServeSession::State::Draining || St == ServeSession::State::Done;
    }
  }
  if (KeepOpen)
    enqueue(C);
  else
    closeConn(*C);
}

void PhaseServer::Impl::idleSweep(Clock::time_point Now) {
  if (Opts.IdleTimeoutSeconds <= 0)
    return;
  for (auto &C : Conns) {
    if (C->Fd == -1)
      continue;
    if (secondsBetween(C->LastActivity, Now) < Opts.IdleTimeoutSeconds)
      continue;
    if (C->Closing) {
      // Already terminal and the peer will not drain our flush; cut it.
      closeConn(*C);
      continue;
    }
    bool Active = false;
    {
      LockGuard L(C->M);
      if (!C->Sess)
        continue;
      if (C->Sess->pendingElements() > 0 ||
          C->Sess->state() == ServeSession::State::Draining) {
        Active = true; // Worker still has decisions to make; not idle.
      } else {
        C->Sess->shutdown(ServeError::Evicted);
        if (C->Sess->hasOutput())
          C->Sess->takeOutput(C->WriteBuf);
      }
    }
    if (Active) {
      C->LastActivity = Now;
      continue;
    }
    C->Closing = true;
    tryWrite(*C, Now);
  }
}

void PhaseServer::Impl::beginDrain(Clock::time_point Now) {
  closeFd(ListenFd);
  for (auto &C : Conns) {
    if (C->Fd == -1)
      continue;
    {
      LockGuard L(C->M);
      if (C->Sess) {
        // Delivers every decidable transition, completes Draining
        // sessions, and fails the rest with ServeError::Shutdown.
        C->Sess->shutdown(ServeError::Shutdown);
        if (C->Sess->hasOutput())
          C->Sess->takeOutput(C->WriteBuf);
      }
    }
    C->ReadPaused = true;
    C->Closing = true;
    tryWrite(*C, Now);
  }
}

void PhaseServer::Impl::ioLoop() {
  std::vector<pollfd> Pfds;
  std::vector<std::shared_ptr<Conn>> PfdConn;
  bool Draining = false;
  Clock::time_point DrainDeadline{};

  while (true) {
    Clock::time_point Now = Clock::now();
    if (!Draining && StopRequested.load(std::memory_order_acquire)) {
      Draining = true;
      DrainDeadline =
          Now + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(Opts.DrainTimeoutSeconds));
      beginDrain(Now);
    }

    // Flush pass: react to worker pumps (output, backpressure relief,
    // completion) and retire drained terminal connections.
    for (auto &C : Conns) {
      if (C->Fd == -1)
        continue;
      if (C->NeedFlush.exchange(false, std::memory_order_acq_rel))
        pullOutput(C);
      if (!C->WriteBuf.empty())
        tryWrite(*C, Now);
      if (C->Fd != -1 && C->Closing && C->WriteBuf.empty())
        closeConn(*C);
    }
    reapClosed();

    if (Draining) {
      if (Conns.empty())
        break;
      if (Now >= DrainDeadline) {
        for (auto &C : Conns)
          closeConn(*C);
        reapClosed();
        break;
      }
    }

    // Poll set: the wake pipe, the listener (unless draining or at the
    // session cap — the cap is enforced in acceptNew so new arrivals
    // still get a clean Overload error), and every connection.
    Pfds.clear();
    PfdConn.clear();
    Pfds.push_back({WakeRd, POLLIN, 0});
    PfdConn.push_back(nullptr);
    bool PollListen = !Draining;
    if (PollListen) {
      Pfds.push_back({ListenFd, POLLIN, 0});
      PfdConn.push_back(nullptr);
    }
    for (auto &C : Conns) {
      short Ev = 0;
      if (!C->ReadPaused && !C->ReadEof && !C->Closing)
        Ev |= POLLIN;
      if (!C->WriteBuf.empty())
        Ev |= POLLOUT;
      // Included even with no requested events: POLLERR/POLLHUP are
      // always reported, which is how paused connections notice a dead
      // peer.
      Pfds.push_back({C->Fd, Ev, 0});
      PfdConn.push_back(C);
    }

    int TimeoutMs = 250;
    if (Draining) {
      double Left = secondsBetween(Now, DrainDeadline);
      TimeoutMs = std::min(TimeoutMs, int(std::max(0.0, Left) * 1000.0) + 1);
    }
    int NReady = ::poll(Pfds.data(), nfds_t(Pfds.size()), TimeoutMs);
    if (NReady < 0 && errno != EINTR)
      break; // Unrecoverable poll failure.
    Now = Clock::now();

    if (NReady > 0) {
      if (Pfds[0].revents & POLLIN) {
        uint8_t Drain[256];
        while (::read(WakeRd, Drain, sizeof(Drain)) > 0) {
        }
      }
      size_t First = 1;
      if (PollListen) {
        if (Pfds[1].revents & POLLIN)
          acceptNew(Now);
        First = 2;
      }
      for (size_t I = First; I < Pfds.size(); ++I) {
        const std::shared_ptr<Conn> &C = PfdConn[I];
        if (!C || C->Fd == -1)
          continue;
        short Re = Pfds[I].revents;
        if (Re & POLLOUT)
          tryWrite(*C, Now);
        if (C->Fd == -1)
          continue;
        if (Re & POLLIN) {
          handleRead(C, Now);
          continue;
        }
        if (Re & (POLLERR | POLLHUP)) {
          if (!C->WriteBuf.empty() || C->Closing) {
            // Peer gone while we were flushing; nothing left to deliver.
            closeConn(*C);
          } else {
            handleEof(C);
          }
        }
      }
      PfdConn.clear();
      reapClosed();
    }

    if (!Draining)
      idleSweep(Now);
    reapClosed();
  }

  // The loop exited: every connection is closed; the listener is closed
  // by beginDrain() (or by stop() on an abnormal exit).
}

PhaseServer::PhaseServer(const ServerOptions &Options)
    : I(std::make_unique<Impl>(Options)) {}

// NOLINTNEXTLINE(bugprone-exception-escape): stop() joins threads and
// closes fds; a throwing join here means the process is already lost.
PhaseServer::~PhaseServer() { stop(); }

bool PhaseServer::start(std::string &Error) { return I->start(Error); }

uint16_t PhaseServer::port() const { return I->BoundPort; }

void PhaseServer::stop() { I->stop(); }

bool PhaseServer::running() const {
  return I->Running.load(std::memory_order_acquire);
}

ServerStats PhaseServer::stats() const { return I->stats(); }
