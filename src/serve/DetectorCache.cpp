//===- serve/DetectorCache.cpp - Reusable fast-detector pool ----------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "serve/DetectorCache.h"

using namespace opd;

std::unique_ptr<FastDetectorBase>
DetectorCache::acquire(const DetectorConfig &Config, SiteIndex NumSites) {
  size_t Shape = fastShapeIndex(Config);
  {
    LockGuard Lock(M);
    std::vector<std::unique_ptr<FastDetectorBase>> &List = Free[Shape];
    // Scan newest-first: the most recently released instance is the most
    // likely cache-warm one, and homogeneous fleets match on the first
    // probe anyway.
    for (size_t I = List.size(); I != 0; --I) {
      if (List[I - 1]->numSites() != NumSites)
        continue;
      std::unique_ptr<FastDetectorBase> D = std::move(List[I - 1]);
      List.erase(List.begin() + static_cast<ptrdiff_t>(I - 1));
      S.Hits += 1;
      // reconfigure() resets for a fresh stream without reallocating the
      // kernel's per-site arrays — the whole point of pooling.
      D->reconfigure(Config);
      return D;
    }
    S.Misses += 1;
  }
  return makeFastDetector(Config, NumSites);
}

void DetectorCache::release(const DetectorConfig &Config,
                            std::unique_ptr<FastDetectorBase> Detector) {
  if (!Detector)
    return;
  size_t Shape = fastShapeIndex(Config);
  LockGuard Lock(M);
  S.Releases += 1;
  if (Free[Shape].size() >= MaxFreePerShape) {
    S.Discarded += 1;
    return; // unique_ptr destroys the instance
  }
  Free[Shape].push_back(std::move(Detector));
}

DetectorCache::Stats DetectorCache::stats() const {
  LockGuard Lock(M);
  return S;
}
