//===- serve/Session.h - One client session's state machine -----*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ServeSession is the socket-free heart of the server: it consumes raw
/// protocol bytes (feed), buffers decoded profile elements, streams them
/// through a pooled FastPhaseDetector in skip-factor batches (pump), and
/// produces the response byte stream (takeOutput). The server wires
/// sockets to these three calls; tests drive sessions directly with byte
/// buffers and hold the streamed output equivalent to offline
/// runDetector() on the same element sequence.
///
/// Equivalence contract: for any element sequence E delivered over any
/// chunking of Elements frames followed by Finish, the Transition events
/// (offsets, states, anchors) and Finished summary a session emits are
/// exactly the StateSequence runs and anchored starts runDetector()
/// computes for E with the same DetectorConfig — full batches are
/// decided as they fill, and the sub-batch tail is decided only at
/// Finish, matching consumeTrace()'s trailing short batch.
///
/// feed() and pump() may be called from different threads but never
/// concurrently: the session is externally synchronized (the server
/// holds one per-connection mutex around either call).
///
//===----------------------------------------------------------------------===//

#ifndef OPD_SERVE_SESSION_H
#define OPD_SERVE_SESSION_H

#include "serve/DetectorCache.h"
#include "serve/Protocol.h"

#include <limits>

namespace opd {

/// Server-side validation bounds for incoming sessions; a Hello outside
/// them is rejected with ServeError::BadConfig before any allocation.
struct ServeLimits {
  /// Largest accepted CW or TW size.
  uint32_t MaxWindow = 1u << 20;
  /// Largest accepted skip factor.
  uint32_t MaxSkip = 1u << 20;
  /// Largest accepted site-space size (kernel arrays are O(NumSites)).
  SiteIndex MaxSites = 1u << 22;
  /// Ingress high watermark in buffered elements: at or above it
  /// ingressSaturated() turns on and the server stops reading the
  /// session's socket until a pump drains below half of it.
  size_t MaxPendingElements = 1u << 20;
};

/// One client session: protocol decoding, element buffering, detector
/// streaming, and response encoding. Externally synchronized (see the
/// file comment).
class ServeSession {
public:
  /// Lifecycle states.
  enum class State : uint8_t {
    AwaitHello, ///< Waiting for the handshake frame.
    Streaming,  ///< Handshake accepted; accepting Elements/Finish.
    Draining,   ///< Finish received; tail not yet decided by pump().
    Done,       ///< Finished summary emitted; session complete.
    Failed,     ///< Terminal error emitted; see error().
  };

  /// Creates session \p Id drawing detectors from \p Cache under
  /// \p Limits. \p Cache must outlive the session.
  ServeSession(uint64_t Id, const ServeLimits &Limits, DetectorCache &Cache);
  ~ServeSession();

  ServeSession(const ServeSession &) = delete;
  ServeSession &operator=(const ServeSession &) = delete;

  /// Consumes \p N raw bytes from the client: decodes frames, performs
  /// the handshake, buffers elements, records Finish. Returns false once
  /// the session is terminal — Failed (the terminal Error frame is
  /// already in the output buffer) or Done (the Finished summary was
  /// emitted) — and further bytes are ignored rather than parsed, so a
  /// completed session never regresses to Failed on trailing input.
  bool feed(const uint8_t *Data, size_t N);

  /// Streams buffered elements through the detector: decides every full
  /// skip-factor batch (at most \p MaxElements per call, rounded up to
  /// whole batches), emits Transition events, and — once Finish was
  /// received and the buffer is exhausted — decides the sub-batch tail
  /// and emits the Finished summary. Emits one Progress frame per call
  /// that ingested elements when the client asked for progress. Returns
  /// true while more buffered work remains.
  bool pump(size_t MaxElements = std::numeric_limits<size_t>::max());

  /// Terminates the session from the server side (idle eviction, drain
  /// on shutdown): decides all buffered full batches so every decidable
  /// transition is delivered, then emits Error \p Code and fails the
  /// session. The sub-batch tail stays undecided — only the client's
  /// Finish may flush it. No-op when the session is already terminal.
  void shutdown(ServeError Code);

  /// Session id assigned at construction.
  uint64_t id() const { return Id; }

  /// Current lifecycle state.
  State state() const { return St; }

  /// True when the session ended in an error.
  bool failed() const { return St == State::Failed; }

  /// True when the session completed normally (Finished emitted).
  bool done() const { return St == State::Done; }

  /// The terminal error code (ServeError::None unless failed()).
  ServeError error() const { return Err; }

  /// Buffered elements not yet streamed through the detector.
  size_t pendingElements() const { return Pending.size() - PendingHead; }

  /// True while the ingress buffer is at or above the high watermark;
  /// the server stops reading this session's socket until pump() drains
  /// below half the watermark (backpressure).
  bool ingressSaturated() const {
    return pendingElements() >= Limits.MaxPendingElements;
  }

  /// True once a pump() drained the backlog below the low watermark;
  /// meaningful for re-enabling reads after ingressSaturated().
  bool ingressRelieved() const {
    return pendingElements() < Limits.MaxPendingElements / 2;
  }

  /// True when response bytes await takeOutput().
  bool hasOutput() const { return !Out.empty(); }

  /// Appends the buffered response bytes to \p Sink and clears them.
  void takeOutput(std::vector<uint8_t> &Sink);

  /// Elements decided by the detector so far.
  uint64_t elementsProcessed() const { return Consumed; }

  /// Transition events emitted so far.
  uint64_t transitions() const { return Transitions; }

  /// The negotiated configuration (valid once Streaming).
  const DetectorConfig &config() const { return Config; }

private:
  /// Handles one decoded frame; returns false when it failed the
  /// session.
  bool handleFrame(const Frame &F);

  /// Accepts or rejects the handshake.
  bool handleHello(const Frame &F);

  /// Validates \p M against Limits; fills \p Why on rejection.
  bool validateHello(const HelloMsg &M, std::string &Why) const;

  /// Emits the terminal Error frame and moves to Failed.
  void fail(ServeError Code, const std::string &Message);

  /// Decides one batch of \p N elements starting at offset Consumed,
  /// emitting a Transition on a state flip.
  void decideBatch(const SiteIndex *Elements, size_t N);

  /// Drops the consumed prefix of the pending buffer when it outweighs
  /// the live remainder.
  void compactPending();

  /// Returns the detector to the cache (idempotent).
  void releaseDetector();

  uint64_t Id;
  ServeLimits Limits;
  DetectorCache &Cache;

  State St = State::AwaitHello;
  ServeError Err = ServeError::None;

  FrameReader Reader;
  DetectorConfig Config;
  SiteIndex NumSites = 0;
  uint16_t Flags = 0;
  std::unique_ptr<FastDetectorBase> Detector;

  /// Ingress element buffer; [PendingHead, Pending.size()) is live.
  std::vector<SiteIndex> Pending;
  size_t PendingHead = 0;
  /// Finish frame received; the tail may be decided.
  bool FinishSeen = false;

  /// Detector streaming state.
  PhaseState Last = PhaseState::Transition;
  uint64_t Consumed = 0;
  uint64_t Ingested = 0;
  uint64_t AckedIngest = 0;
  uint64_t Transitions = 0;

  /// Encoded response bytes awaiting the socket.
  std::vector<uint8_t> Out;
};

} // namespace opd

#endif // OPD_SERVE_SESSION_H
