//===- serve/Server.h - Multi-tenant phase-detection server -----*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// PhaseServer turns the paper's strictly-online detector into a
/// service: a TCP daemon accepting many concurrent sessions, each
/// streaming profile elements under the wire protocol of
/// serve/Protocol.h and receiving P/T transitions as they are decided.
///
/// Threading model (docs/SERVING.md has the full picture):
///
///  * One I/O thread owns every socket: a poll() loop accepts
///    connections, reads frames into ServeSessions, and flushes their
///    response bytes. It never runs detector kernels.
///  * N shard workers own detector compute: sessions are pinned to a
///    shard (session id modulo N), each worker drains its queue of
///    ready sessions through ServeSession::pump(). Pinning means one
///    session is only ever pumped by one thread, so detector state
///    needs no locking beyond the per-connection mutex that hands
///    buffers between the I/O thread and the worker.
///  * Detectors come from a shared DetectorCache, so session churn
///    reconfigures pooled FastPhaseDetectors instead of reallocating
///    kernel arrays (the sweep harness's RunArena pattern with a
///    serving lifetime).
///
/// Backpressure: a session whose ingress backlog reaches the
/// ServeLimits watermark stops being read (its TCP window closes, the
/// client's sends stall) until a worker drains it below half. Idle
/// sessions are evicted after IdleTimeoutSeconds. stop() drains
/// gracefully: every buffered element whose batch is full is decided
/// and its transitions delivered before connections close.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_SERVE_SERVER_H
#define OPD_SERVE_SERVER_H

#include "serve/DetectorCache.h"
#include "serve/Session.h"

#include <memory>
#include <string>

namespace opd {

/// Everything configurable about one PhaseServer.
struct ServerOptions {
  /// Port to bind on 127.0.0.1; 0 picks an ephemeral port (read it back
  /// with port()).
  uint16_t Port = 0;
  /// Shard worker threads; 0 means max(1, hardwareParallelism() - 1),
  /// leaving one core's worth of time for the I/O thread.
  unsigned Shards = 0;
  /// Concurrent-session cap: accepting stops while at the cap (the
  /// listen backlog queues the overflow).
  size_t MaxSessions = 8192;
  /// Sessions that sent no bytes for this long are evicted with
  /// ServeError::Evicted; 0 disables eviction.
  double IdleTimeoutSeconds = 60.0;
  /// On stop(), connections that cannot be drained and flushed within
  /// this budget are closed anyway.
  double DrainTimeoutSeconds = 10.0;
  /// Per-session validation bounds and backpressure watermark.
  ServeLimits Limits;
  /// Free-detector pool bound per shape (DetectorCache).
  size_t CacheFreePerShape = 256;
};

/// Monotonic counters describing a server's lifetime (all totals).
struct ServerStats {
  /// Connections accepted.
  uint64_t Accepted = 0;
  /// Sessions that completed normally (Finished emitted).
  uint64_t Completed = 0;
  /// Sessions evicted by the idle timer.
  uint64_t Evicted = 0;
  /// Sessions terminated by a protocol error.
  uint64_t ProtocolErrors = 0;
  /// Sessions cut by graceful drain.
  uint64_t DrainClosed = 0;
  /// Profile elements decided across all sessions.
  uint64_t Elements = 0;
  /// Transition events emitted across all sessions.
  uint64_t Transitions = 0;
  /// Raw bytes received / sent.
  uint64_t BytesIn = 0;
  uint64_t BytesOut = 0;
  /// Detector-pool effectiveness.
  DetectorCache::Stats Cache;
};

/// The serving daemon. start() spawns the I/O thread and shard workers;
/// stop() drains gracefully and joins them. Thread-safe: start/stop/
/// stats may be called from any thread.
class PhaseServer {
public:
  explicit PhaseServer(const ServerOptions &Options);
  ~PhaseServer();

  PhaseServer(const PhaseServer &) = delete;
  PhaseServer &operator=(const PhaseServer &) = delete;

  /// Binds, listens, and spawns the serving threads. Returns false with
  /// a diagnostic in \p Error on failure (port in use, out of fds).
  bool start(std::string &Error);

  /// The bound port (valid after a successful start()).
  uint16_t port() const;

  /// Graceful shutdown: stop accepting, drain every live session
  /// (deliver all decidable transitions, then ServeError::Shutdown),
  /// flush, close, and join all threads. Idempotent; also run by the
  /// destructor.
  void stop();

  /// True between a successful start() and the end of stop().
  bool running() const;

  /// Snapshot of the lifetime counters.
  ServerStats stats() const;

private:
  struct Impl;
  std::unique_ptr<Impl> I;
};

} // namespace opd

#endif // OPD_SERVE_SERVER_H
