//===- serve/Protocol.cpp - Serving wire protocol codec ---------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"

#include <bit>
#include <cmath>

using namespace opd;

namespace {

//===----------------------------------------------------------------------===//
// Little-endian primitives
//===----------------------------------------------------------------------===//

void putU16(std::vector<uint8_t> &Out, uint16_t V) {
  Out.push_back(static_cast<uint8_t>(V));
  Out.push_back(static_cast<uint8_t>(V >> 8));
}

void putU32(std::vector<uint8_t> &Out, uint32_t V) {
  Out.push_back(static_cast<uint8_t>(V));
  Out.push_back(static_cast<uint8_t>(V >> 8));
  Out.push_back(static_cast<uint8_t>(V >> 16));
  Out.push_back(static_cast<uint8_t>(V >> 24));
}

void putU64(std::vector<uint8_t> &Out, uint64_t V) {
  putU32(Out, static_cast<uint32_t>(V));
  putU32(Out, static_cast<uint32_t>(V >> 32));
}

uint16_t getU16(const uint8_t *P) {
  return static_cast<uint16_t>(P[0] | (uint16_t(P[1]) << 8));
}

uint32_t getU32(const uint8_t *P) {
  return P[0] | (uint32_t(P[1]) << 8) | (uint32_t(P[2]) << 16) |
         (uint32_t(P[3]) << 24);
}

uint64_t getU64(const uint8_t *P) {
  return getU32(P) | (uint64_t(getU32(P + 4)) << 32);
}

/// A cursor over a frame payload with bounds-checked reads; Ok flips to
/// false on any overrun and stays false.
struct Cursor {
  const uint8_t *P;
  size_t Left;
  bool Ok = true;

  Cursor(const Frame &F) : P(F.Payload), Left(F.Len) {}

  bool take(size_t N) {
    if (!Ok || Left < N) {
      Ok = false;
      return false;
    }
    return true;
  }

  uint8_t u8() {
    if (!take(1))
      return 0;
    uint8_t V = *P;
    P += 1;
    Left -= 1;
    return V;
  }

  uint16_t u16() {
    if (!take(2))
      return 0;
    uint16_t V = getU16(P);
    P += 2;
    Left -= 2;
    return V;
  }

  uint32_t u32() {
    if (!take(4))
      return 0;
    uint32_t V = getU32(P);
    P += 4;
    Left -= 4;
    return V;
  }

  uint64_t u64() {
    if (!take(8))
      return 0;
    uint64_t V = getU64(P);
    P += 8;
    Left -= 8;
    return V;
  }

  double f64() { return std::bit_cast<double>(u64()); }

  /// True when the payload was consumed exactly.
  bool done() const { return Ok && Left == 0; }
};

/// Opens a frame: appends the length prefix and kind byte, returning the
/// index of the length field so closeFrame can patch it.
size_t openFrame(std::vector<uint8_t> &Out, MsgKind Kind) {
  size_t LenAt = Out.size();
  putU32(Out, 0);
  Out.push_back(static_cast<uint8_t>(Kind));
  return LenAt;
}

/// Patches the length prefix of the frame opened at \p LenAt.
void closeFrame(std::vector<uint8_t> &Out, size_t LenAt) {
  uint32_t Len = static_cast<uint32_t>(Out.size() - LenAt - 4);
  Out[LenAt + 0] = static_cast<uint8_t>(Len);
  Out[LenAt + 1] = static_cast<uint8_t>(Len >> 8);
  Out[LenAt + 2] = static_cast<uint8_t>(Len >> 16);
  Out[LenAt + 3] = static_cast<uint8_t>(Len >> 24);
}

} // namespace

const char *opd::serveErrorName(ServeError E) {
  switch (E) {
  case ServeError::None:
    return "none";
  case ServeError::BadMagic:
    return "bad-magic";
  case ServeError::BadVersion:
    return "bad-version";
  case ServeError::BadConfig:
    return "bad-config";
  case ServeError::BadFrame:
    return "bad-frame";
  case ServeError::Oversized:
    return "oversized";
  case ServeError::SiteRange:
    return "site-range";
  case ServeError::BadState:
    return "bad-state";
  case ServeError::Evicted:
    return "evicted";
  case ServeError::Shutdown:
    return "shutdown";
  case ServeError::Overload:
    return "overload";
  }
  return "unknown";
}

//===----------------------------------------------------------------------===//
// Encoders
//===----------------------------------------------------------------------===//

void opd::appendHello(std::vector<uint8_t> &Out, const HelloMsg &M) {
  size_t L = openFrame(Out, MsgKind::Hello);
  putU32(Out, ServeMagic);
  putU16(Out, ServeVersion);
  putU16(Out, M.Flags);
  putU32(Out, M.NumSites);
  const WindowConfig &W = M.Config.Window;
  putU32(Out, W.CWSize);
  putU32(Out, W.TWSize);
  putU32(Out, W.SkipFactor);
  Out.push_back(static_cast<uint8_t>(W.TWPolicy));
  Out.push_back(static_cast<uint8_t>(W.Anchor));
  Out.push_back(static_cast<uint8_t>(W.Resize));
  Out.push_back(static_cast<uint8_t>(M.Config.Model));
  Out.push_back(static_cast<uint8_t>(M.Config.TheAnalyzer));
  putU64(Out, std::bit_cast<uint64_t>(M.Config.AnalyzerParam));
  closeFrame(Out, L);
}

void opd::appendElements(std::vector<uint8_t> &Out, const SiteIndex *Elements,
                         size_t N) {
  assert(N > 0 && N <= MaxElementsPerFrame &&
         "element batch outside frame bounds");
  size_t L = openFrame(Out, MsgKind::Elements);
  putU32(Out, static_cast<uint32_t>(N));
  size_t At = Out.size();
  Out.resize(At + N * 4);
  // SiteIndex is a little-endian u32 on the wire; memcpy matches the
  // in-memory layout on every platform this project targets (the codec
  // reads them back with explicit shifts either way).
  std::memcpy(Out.data() + At, Elements, N * 4);
  closeFrame(Out, L);
}

void opd::appendFinish(std::vector<uint8_t> &Out) {
  size_t L = openFrame(Out, MsgKind::Finish);
  closeFrame(Out, L);
}

void opd::appendHelloAck(std::vector<uint8_t> &Out, const HelloAckMsg &M) {
  size_t L = openFrame(Out, MsgKind::HelloAck);
  putU64(Out, M.SessionId);
  putU32(Out, M.BatchSize);
  putU32(Out, M.MaxBatch);
  closeFrame(Out, L);
}

void opd::appendTransition(std::vector<uint8_t> &Out, const TransitionMsg &M) {
  size_t L = openFrame(Out, MsgKind::Transition);
  putU64(Out, M.Offset);
  Out.push_back(M.NewState == PhaseState::InPhase ? 1 : 0);
  Out.push_back(M.HasAnchor ? 1 : 0);
  putU64(Out, M.Anchor);
  closeFrame(Out, L);
}

void opd::appendProgress(std::vector<uint8_t> &Out, const ProgressMsg &M) {
  size_t L = openFrame(Out, MsgKind::Progress);
  putU64(Out, M.Ingested);
  closeFrame(Out, L);
}

void opd::appendFinished(std::vector<uint8_t> &Out, const FinishedMsg &M) {
  size_t L = openFrame(Out, MsgKind::Finished);
  putU64(Out, M.Elements);
  putU64(Out, M.Transitions);
  Out.push_back(M.FinalState == PhaseState::InPhase ? 1 : 0);
  closeFrame(Out, L);
}

void opd::appendError(std::vector<uint8_t> &Out, ServeError Code,
                      const std::string &Message) {
  size_t L = openFrame(Out, MsgKind::Error);
  putU16(Out, static_cast<uint16_t>(Code));
  putU16(Out, 0); // reserved
  putU32(Out, static_cast<uint32_t>(Message.size()));
  Out.insert(Out.end(), Message.begin(), Message.end());
  closeFrame(Out, L);
}

//===----------------------------------------------------------------------===//
// FrameReader
//===----------------------------------------------------------------------===//

void FrameReader::feed(const uint8_t *Data, size_t N) {
  // Drop the consumed prefix before growing: steady-state sessions keep
  // the buffer at roughly one frame.
  if (Pos > 0 && (Pos == Buf.size() || Pos >= (64u << 10))) {
    Buf.erase(Buf.begin(), Buf.begin() + static_cast<ptrdiff_t>(Pos));
    Pos = 0;
  }
  Buf.insert(Buf.end(), Data, Data + N);
}

FrameReader::Status FrameReader::next(Frame &Out) {
  if (Corrupted)
    return Status::Corrupt;
  size_t Avail = Buf.size() - Pos;
  if (Avail < 4)
    return Status::NeedMore;
  uint32_t Len = getU32(Buf.data() + Pos);
  if (Len == 0) {
    Corrupted = true;
    Reason = "zero-length frame";
    return Status::Corrupt;
  }
  if (Len > MaxFrameLen) {
    Corrupted = true;
    OversizedLen = true;
    Reason = "frame length " + std::to_string(Len) + " exceeds limit " +
             std::to_string(MaxFrameLen);
    return Status::Corrupt;
  }
  if (Avail < 4 + size_t(Len))
    return Status::NeedMore;
  Out.Kind = static_cast<MsgKind>(Buf[Pos + 4]);
  Out.Payload = Buf.data() + Pos + 5;
  Out.Len = Len - 1;
  Pos += 4 + size_t(Len);
  return Status::Frame;
}

//===----------------------------------------------------------------------===//
// Parsers
//===----------------------------------------------------------------------===//

ServeError opd::parseHello(const Frame &F, HelloMsg &M) {
  Cursor C(F);
  uint32_t Magic = C.u32();
  uint16_t Version = C.u16();
  M.Flags = C.u16();
  M.NumSites = C.u32();
  WindowConfig &W = M.Config.Window;
  W.CWSize = C.u32();
  W.TWSize = C.u32();
  W.SkipFactor = C.u32();
  uint8_t TWPolicy = C.u8();
  uint8_t Anchor = C.u8();
  uint8_t Resize = C.u8();
  uint8_t Model = C.u8();
  uint8_t Analyzer = C.u8();
  M.Config.AnalyzerParam = C.f64();
  if (!C.done())
    return ServeError::BadFrame;
  if (Magic != ServeMagic)
    return ServeError::BadMagic;
  if (Version != ServeVersion)
    return ServeError::BadVersion;
  if (TWPolicy > 1 || Anchor > 1 || Resize > 1 || Model > 2 || Analyzer > 2)
    return ServeError::BadFrame;
  W.TWPolicy = static_cast<TWPolicyKind>(TWPolicy);
  W.Anchor = static_cast<AnchorKind>(Anchor);
  W.Resize = static_cast<ResizeKind>(Resize);
  M.Config.Model = static_cast<ModelKind>(Model);
  M.Config.TheAnalyzer = static_cast<AnalyzerKind>(Analyzer);
  return ServeError::None;
}

bool opd::parseHelloAck(const Frame &F, HelloAckMsg &M) {
  Cursor C(F);
  M.SessionId = C.u64();
  M.BatchSize = C.u32();
  M.MaxBatch = C.u32();
  return C.done();
}

bool opd::parseTransition(const Frame &F, TransitionMsg &M) {
  Cursor C(F);
  M.Offset = C.u64();
  uint8_t State = C.u8();
  uint8_t HasAnchor = C.u8();
  M.Anchor = C.u64();
  if (!C.done() || State > 1 || HasAnchor > 1)
    return false;
  M.NewState = State ? PhaseState::InPhase : PhaseState::Transition;
  M.HasAnchor = HasAnchor != 0;
  return true;
}

bool opd::parseProgress(const Frame &F, ProgressMsg &M) {
  Cursor C(F);
  M.Ingested = C.u64();
  return C.done();
}

bool opd::parseFinished(const Frame &F, FinishedMsg &M) {
  Cursor C(F);
  M.Elements = C.u64();
  M.Transitions = C.u64();
  uint8_t State = C.u8();
  if (!C.done() || State > 1)
    return false;
  M.FinalState = State ? PhaseState::InPhase : PhaseState::Transition;
  return true;
}

bool opd::parseError(const Frame &F, ErrorMsg &M) {
  Cursor C(F);
  uint16_t Code = C.u16();
  C.u16(); // reserved
  uint32_t MsgLen = C.u32();
  if (!C.Ok || C.Left != MsgLen)
    return false;
  if (Code > static_cast<uint16_t>(ServeError::Overload))
    return false;
  M.Code = static_cast<ServeError>(Code);
  M.Message.assign(reinterpret_cast<const char *>(C.P), MsgLen);
  return true;
}

bool opd::parseElements(const Frame &F, ElementsView &View) {
  if (F.Len < 4)
    return false;
  uint32_t Count = getU32(F.Payload);
  if (Count == 0 || Count > MaxElementsPerFrame)
    return false;
  if (F.Len != 4 + size_t(Count) * 4)
    return false;
  View.Data = F.Payload + 4;
  View.Count = Count;
  return true;
}
