//===- serve/Protocol.h - Serving wire protocol codec -----------*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire protocol of the phase-detection server (docs/SERVING.md holds
/// the normative specification). Every message travels in one
/// length-prefixed frame:
///
///   u32 Length (little-endian) | u8 Kind | Payload[Length - 1]
///
/// Length counts the kind byte plus the payload, so the smallest legal
/// frame is 5 bytes on the wire. All multi-byte integers are
/// little-endian; doubles are IEEE-754 binary64 transported as u64 bits.
///
/// A session is: client sends Hello (detector configuration + site-space
/// size), server answers HelloAck or Error; client streams Elements
/// frames and finally Finish; server streams Transition events as the
/// detector decides them, optional Progress acknowledgements, and a
/// Finished summary. Errors are terminal: the server sends one Error
/// frame and closes.
///
/// This header is deliberately socket-free: encoders append frames to
/// byte vectors and FrameReader incrementally decodes frames from fed
/// byte chunks, so the codec is testable (and fuzzable) without any I/O.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_SERVE_PROTOCOL_H
#define OPD_SERVE_PROTOCOL_H

#include "core/DetectorConfig.h"
#include "trace/StateSequence.h"

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace opd {

/// Handshake magic ("OPDS" read as a little-endian u32 of the bytes
/// 'S','D','P','O'); a client speaking anything else is rejected before
/// its configuration is even looked at.
constexpr uint32_t ServeMagic = 0x4F504453u;

/// Protocol version carried in the handshake; the server rejects
/// mismatches with ServeError::BadVersion.
constexpr uint16_t ServeVersion = 1;

/// Upper bound on one frame's Length field (kind byte + payload). Frames
/// claiming more are a protocol error (ServeError::Oversized) — the
/// receiver never buffers unbounded data for a corrupt length prefix.
constexpr uint32_t MaxFrameLen = (4u << 20) + 64;

/// Largest element count one Elements frame may carry (fits MaxFrameLen
/// with the count header).
constexpr uint32_t MaxElementsPerFrame = 1u << 20;

/// Frame kinds. Client-to-server kinds are low, server-to-client kinds
/// start at 16; the numbering is part of the wire format.
enum class MsgKind : uint8_t {
  Hello = 1,    ///< Client handshake: config + site-space size + flags.
  Elements = 2, ///< A batch of profile elements (dense site indices).
  Finish = 3,   ///< End of the client's stream; flushes the tail batch.
  HelloAck = 16,   ///< Handshake accepted: session id + batch size.
  Transition = 17, ///< P/T state flip at an element offset.
  Progress = 18,   ///< Flow-control ack: elements ingested so far.
  Finished = 19,   ///< End-of-stream summary; the session is complete.
  Error = 20,      ///< Terminal error; the server closes after sending.
};

/// Error codes carried by MsgKind::Error frames.
enum class ServeError : uint16_t {
  None = 0,       ///< Not an error (never sent).
  BadMagic = 1,   ///< Hello did not start with ServeMagic.
  BadVersion = 2, ///< Hello carried an unsupported protocol version.
  BadConfig = 3,  ///< DetectorConfig or NumSites rejected by validation.
  BadFrame = 4,   ///< Malformed frame (bad length, kind, or payload).
  Oversized = 5,  ///< Frame length exceeded MaxFrameLen.
  SiteRange = 6,  ///< An element index was >= the declared NumSites.
  BadState = 7,   ///< Frame kind illegal in the session's current state.
  Evicted = 8,    ///< Session closed by the idle-eviction timer.
  Shutdown = 9,   ///< Session closed by server drain (graceful stop).
  Overload = 10,  ///< Server at its concurrent-session limit.
};

/// Short stable mnemonic for a ServeError ("bad-config", "evicted", ...).
const char *serveErrorName(ServeError E);

/// Hello flag: include the anchored phase-start estimate in T->P
/// Transition events (lastPhaseStartEstimate(), pre-clamp).
constexpr uint16_t HelloWantAnchors = 1u << 0;

/// Hello flag: emit a Progress frame after every worker drain that
/// ingested elements, carrying the total ingested so far. Clients use it
/// for windowed flow control and latency measurement.
constexpr uint16_t HelloWantProgress = 1u << 1;

/// The client handshake: one detector instantiation request.
struct HelloMsg {
  /// HelloWant* flag bits.
  uint16_t Flags = 0;
  /// Site-space size: every streamed element must be < NumSites.
  SiteIndex NumSites = 0;
  /// The detector configuration to instantiate for this session.
  DetectorConfig Config;
};

/// The server's handshake acceptance.
struct HelloAckMsg {
  /// Server-assigned session id (unique within the server's lifetime).
  uint64_t SessionId = 0;
  /// The detector's decision granularity (the config's skip factor);
  /// state flips only ever happen at multiples of this many elements.
  uint32_t BatchSize = 0;
  /// Largest element count the server accepts per Elements frame.
  uint32_t MaxBatch = 0;
};

/// One P/T state flip. The new state covers element offsets starting at
/// Offset until the next Transition (or the end of the stream).
struct TransitionMsg {
  /// Element offset at which the new state begins.
  uint64_t Offset = 0;
  /// The state entered at Offset.
  PhaseState NewState = PhaseState::Transition;
  /// True when Anchor carries the detector's anchored phase-start
  /// estimate (T->P events under HelloWantAnchors).
  bool HasAnchor = false;
  /// The anchored estimate of where the phase actually began (pre-clamp;
  /// see DetectorRun::AnchoredPhases for the clamping rule).
  uint64_t Anchor = 0;
};

/// Flow-control acknowledgement.
struct ProgressMsg {
  /// Total elements the worker has ingested for this session so far —
  /// decided elements plus the (< batch size) remainder awaiting its
  /// batch to fill.
  uint64_t Ingested = 0;
};

/// End-of-stream summary, sent after the tail batch is decided.
struct FinishedMsg {
  /// Total elements processed (equals the count the client streamed).
  uint64_t Elements = 0;
  /// Number of Transition events emitted.
  uint64_t Transitions = 0;
  /// The detector's final state.
  PhaseState FinalState = PhaseState::Transition;
};

/// Terminal error report.
struct ErrorMsg {
  ServeError Code = ServeError::None;
  /// Human-readable diagnostic (may be empty).
  std::string Message;
};

/// \name Frame encoders
/// Each appends one complete frame to \p Out.
/// @{
void appendHello(std::vector<uint8_t> &Out, const HelloMsg &M);
void appendElements(std::vector<uint8_t> &Out, const SiteIndex *Elements,
                    size_t N);
void appendFinish(std::vector<uint8_t> &Out);
void appendHelloAck(std::vector<uint8_t> &Out, const HelloAckMsg &M);
void appendTransition(std::vector<uint8_t> &Out, const TransitionMsg &M);
void appendProgress(std::vector<uint8_t> &Out, const ProgressMsg &M);
void appendFinished(std::vector<uint8_t> &Out, const FinishedMsg &M);
void appendError(std::vector<uint8_t> &Out, ServeError Code,
                 const std::string &Message);
/// @}

/// One decoded frame, viewing the reader's internal buffer. Valid until
/// the next FrameReader call.
struct Frame {
  MsgKind Kind = MsgKind::Error;
  const uint8_t *Payload = nullptr;
  size_t Len = 0;
};

/// Incremental frame decoder: feed() raw bytes in arbitrary chunks, then
/// drain complete frames with next(). Corruption (zero or oversized
/// length prefix) is sticky — the stream cannot be resynchronized.
class FrameReader {
public:
  /// Outcome of one next() call.
  enum class Status : uint8_t {
    Frame,    ///< \p Out holds the next complete frame.
    NeedMore, ///< No complete frame buffered; feed() more bytes.
    Corrupt,  ///< Stream corrupt (see corruptReason()); terminal.
  };

  /// Appends \p N raw bytes to the internal buffer.
  void feed(const uint8_t *Data, size_t N);

  /// Decodes the next complete frame into \p Out.
  Status next(Frame &Out);

  /// Bytes buffered but not yet consumed by next().
  size_t buffered() const { return Buf.size() - Pos; }

  /// Diagnostic for Status::Corrupt.
  const std::string &corruptReason() const { return Reason; }

  /// True when the corruption was an over-limit length prefix (mapped to
  /// ServeError::Oversized rather than BadFrame).
  bool corruptOversized() const { return OversizedLen; }

private:
  std::vector<uint8_t> Buf;
  size_t Pos = 0;
  bool Corrupted = false;
  bool OversizedLen = false;
  std::string Reason;
};

/// \name Payload parsers
/// Each decodes one frame's payload; parsers returning bool yield false
/// on malformed payloads (wrong length, out-of-range enum).
/// @{

/// Decodes a Hello payload. Distinguishes the handshake-specific
/// failures: returns ServeError::None on success, BadMagic/BadVersion
/// for those fields, and BadFrame for any structural problem.
ServeError parseHello(const Frame &F, HelloMsg &M);

bool parseHelloAck(const Frame &F, HelloAckMsg &M);
bool parseTransition(const Frame &F, TransitionMsg &M);
bool parseProgress(const Frame &F, ProgressMsg &M);
bool parseFinished(const Frame &F, FinishedMsg &M);
bool parseError(const Frame &F, ErrorMsg &M);
/// @}

/// Validated view of an Elements payload; element words may be
/// unaligned, so they are read with element().
struct ElementsView {
  const uint8_t *Data = nullptr;
  uint32_t Count = 0;

  /// Element \p I as a dense site index.
  SiteIndex element(uint32_t I) const {
    uint32_t V;
    std::memcpy(&V, Data + size_t(I) * 4, 4);
    return V;
  }
};

/// Validates an Elements payload (count header vs frame length, count
/// bounds) without touching the element words.
bool parseElements(const Frame &F, ElementsView &View);

} // namespace opd

#endif // OPD_SERVE_PROTOCOL_H
