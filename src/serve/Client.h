//===- serve/Client.h - Blocking client for the serving protocol -*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small blocking client for the phase-detection server: ServeClient
/// speaks the wire protocol of serve/Protocol.h over one TCP connection,
/// and streamSession() drives a whole session (handshake, chunked
/// element stream, Finish, event collection) in one call. The tests and
/// the load generator both sit on these, and
/// streamedToDetectorRun() rebuilds an offline DetectorRun from the
/// streamed events so callers can hold the server to the equivalence
/// contract (serve/Session.h) against runDetector().
///
/// While a send is blocked on the socket the client keeps reading, so a
/// server emitting transitions faster than the client drains them can
/// never deadlock the stream; events decoded early are queued and
/// surface in order from recvEvent().
///
//===----------------------------------------------------------------------===//

#ifndef OPD_SERVE_CLIENT_H
#define OPD_SERVE_CLIENT_H

#include "core/DetectorRunner.h"
#include "serve/Protocol.h"

#include <deque>

namespace opd {

/// One blocking client connection to a phase-detection server.
class ServeClient {
public:
  ServeClient() = default;
  ~ServeClient();

  ServeClient(const ServeClient &) = delete;
  ServeClient &operator=(const ServeClient &) = delete;

  /// Connects to 127.0.0.1:\p Port. Returns false with a diagnostic in
  /// \p Error on failure.
  bool connect(uint16_t Port, std::string &Error);

  /// True while the connection is open.
  bool connected() const { return Fd != -1; }

  /// Closes the connection (idempotent).
  void close();

  /// \name Senders
  /// Each returns false on a transport failure. A send failing with a
  /// reset peer usually means the server terminated the session; drain
  /// recvEvent() for the Error event before giving up.
  /// @{

  /// Sends the handshake.
  bool sendHello(const HelloMsg &M, std::string &Error);

  /// Streams \p N elements, split into frames of at most
  /// MaxElementsPerFrame elements.
  bool sendElements(const SiteIndex *Elements, size_t N, std::string &Error);

  /// Declares end-of-stream.
  bool sendFinish(std::string &Error);
  /// @}

  /// One decoded server-to-client event.
  struct Event {
    /// Which member is valid.
    enum class Kind : uint8_t { HelloAck, Transition, Progress, Finished,
                                Error };
    Kind K = Kind::Error;
    HelloAckMsg Ack;           ///< Valid for Kind::HelloAck.
    TransitionMsg Transition;  ///< Valid for Kind::Transition.
    ProgressMsg Progress;      ///< Valid for Kind::Progress.
    FinishedMsg Finished;      ///< Valid for Kind::Finished.
    ErrorMsg Err;              ///< Valid for Kind::Error.
  };

  /// Blocks for the next server event (events decoded while a send was
  /// flushing surface here first, in order). Returns false on transport
  /// failure, protocol corruption, or end-of-stream.
  bool recvEvent(Event &Ev, std::string &Error);

private:
  /// Writes all \p N bytes, draining inbound events while blocked.
  bool sendAll(const uint8_t *Data, size_t N, std::string &Error);

  /// Reads once from the socket (blocking when \p Blocking) and decodes
  /// complete frames into the event queue. Sets \p Eof at end-of-stream.
  bool readSome(bool Blocking, bool &Eof, std::string &Error);

  /// Decodes every complete buffered frame into the event queue.
  bool decodeFrames(std::string &Error);

  int Fd = -1;
  FrameReader Reader;
  std::deque<Event> Queue;
};

/// Everything a client observed from one streamed session.
struct StreamedRun {
  /// The accepted handshake.
  HelloAckMsg Ack;
  /// Every Transition event, in stream order.
  std::vector<TransitionMsg> Transitions;
  /// Last Progress acknowledgement seen (0 if none).
  uint64_t LastProgress = 0;
  /// True once the Finished summary arrived; Summary is then valid.
  bool GotFinished = false;
  FinishedMsg Summary;
  /// True if the server terminated the session; Err is then valid.
  bool GotError = false;
  ErrorMsg Err;
};

/// Runs one complete session against 127.0.0.1:\p Port: handshake with
/// \p Hello, stream \p N elements in sendElements() calls of \p Chunk
/// elements (exercising arbitrary wire chunking), Finish, and collect
/// events until Finished or Error. Returns false only on transport
/// failure; a server-side rejection returns true with Run.GotError set.
bool streamSession(uint16_t Port, const HelloMsg &Hello,
                   const SiteIndex *Elements, size_t N, size_t Chunk,
                   StreamedRun &Run, std::string &Error);

/// Rebuilds the offline DetectorRun a streamed session corresponds to:
/// states from the Transition events over Summary.Elements elements,
/// detected phases from the state runs, and anchored phases from the
/// event anchors under runDetector()'s clamp (sorted, disjoint). The run
/// equals runDetector() on the same elements and config exactly when the
/// server honored the equivalence contract.
DetectorRun streamedToDetectorRun(const StreamedRun &Run);

} // namespace opd

#endif // OPD_SERVE_CLIENT_H
