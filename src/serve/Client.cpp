//===- serve/Client.cpp - Blocking client for the serving protocol ---------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace opd;

ServeClient::~ServeClient() { close(); }

void ServeClient::close() {
  if (Fd != -1) {
    ::close(Fd);
    Fd = -1;
  }
}

bool ServeClient::connect(uint16_t Port, std::string &Error) {
  close();
  Fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (Fd < 0) {
    Error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Error = std::string("connect: ") + std::strerror(errno);
    close();
    return false;
  }
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  // Nonblocking: sendAll()/recvEvent() multiplex with poll() so inbound
  // events are drained even while a send is blocked.
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK);
  return true;
}

bool ServeClient::decodeFrames(std::string &Error) {
  Frame F;
  while (true) {
    switch (Reader.next(F)) {
    case FrameReader::Status::NeedMore:
      return true;
    case FrameReader::Status::Corrupt:
      Error = "protocol corruption: " + Reader.corruptReason();
      return false;
    case FrameReader::Status::Frame: {
      Event Ev;
      bool Ok = false;
      switch (F.Kind) {
      case MsgKind::HelloAck:
        Ev.K = Event::Kind::HelloAck;
        Ok = parseHelloAck(F, Ev.Ack);
        break;
      case MsgKind::Transition:
        Ev.K = Event::Kind::Transition;
        Ok = parseTransition(F, Ev.Transition);
        break;
      case MsgKind::Progress:
        Ev.K = Event::Kind::Progress;
        Ok = parseProgress(F, Ev.Progress);
        break;
      case MsgKind::Finished:
        Ev.K = Event::Kind::Finished;
        Ok = parseFinished(F, Ev.Finished);
        break;
      case MsgKind::Error:
        Ev.K = Event::Kind::Error;
        Ok = parseError(F, Ev.Err);
        break;
      case MsgKind::Hello:
      case MsgKind::Elements:
      case MsgKind::Finish:
        break; // Client-to-server kind from the server: malformed.
      }
      if (!Ok) {
        Error = "malformed server frame (kind " +
                std::to_string(unsigned(F.Kind)) + ")";
        return false;
      }
      Queue.push_back(std::move(Ev));
      break;
    }
    }
  }
}

bool ServeClient::readSome(bool Blocking, bool &Eof, std::string &Error) {
  Eof = false;
  while (true) {
    uint8_t Buf[64 << 10];
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N > 0) {
      Reader.feed(Buf, size_t(N));
      return decodeFrames(Error);
    }
    if (N == 0) {
      Eof = true;
      return true;
    }
    if (errno == EINTR)
      continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!Blocking)
        return true;
      pollfd P{Fd, POLLIN, 0};
      if (::poll(&P, 1, -1) < 0 && errno != EINTR) {
        Error = std::string("poll: ") + std::strerror(errno);
        return false;
      }
      continue;
    }
    Error = std::string("recv: ") + std::strerror(errno);
    return false;
  }
}

bool ServeClient::sendAll(const uint8_t *Data, size_t N, std::string &Error) {
  if (Fd == -1) {
    Error = "not connected";
    return false;
  }
  size_t Pos = 0;
  while (Pos < N) {
    ssize_t W = ::send(Fd, Data + Pos, N - Pos, MSG_NOSIGNAL);
    if (W > 0) {
      Pos += size_t(W);
      continue;
    }
    if (W < 0 && errno == EINTR)
      continue;
    if (W < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Blocked: wait for writability, but keep draining inbound events
      // so a transition-heavy stream cannot deadlock against our send.
      pollfd P{Fd, POLLIN | POLLOUT, 0};
      if (::poll(&P, 1, -1) < 0 && errno != EINTR) {
        Error = std::string("poll: ") + std::strerror(errno);
        return false;
      }
      if (P.revents & POLLIN) {
        bool Eof = false;
        if (!readSome(/*Blocking=*/false, Eof, Error))
          return false;
        if (Eof) {
          Error = "connection closed by server during send";
          return false;
        }
      }
      continue;
    }
    Error = std::string("send: ") + std::strerror(errno);
    return false;
  }
  return true;
}

bool ServeClient::sendHello(const HelloMsg &M, std::string &Error) {
  std::vector<uint8_t> Buf;
  appendHello(Buf, M);
  return sendAll(Buf.data(), Buf.size(), Error);
}

bool ServeClient::sendElements(const SiteIndex *Elements, size_t N,
                               std::string &Error) {
  std::vector<uint8_t> Buf;
  size_t Pos = 0;
  while (Pos < N) {
    size_t Take = std::min<size_t>(N - Pos, MaxElementsPerFrame);
    Buf.clear();
    appendElements(Buf, Elements + Pos, Take);
    if (!sendAll(Buf.data(), Buf.size(), Error))
      return false;
    Pos += Take;
  }
  return true;
}

bool ServeClient::sendFinish(std::string &Error) {
  std::vector<uint8_t> Buf;
  appendFinish(Buf);
  return sendAll(Buf.data(), Buf.size(), Error);
}

bool ServeClient::recvEvent(Event &Ev, std::string &Error) {
  while (Queue.empty()) {
    if (Fd == -1) {
      Error = "not connected";
      return false;
    }
    bool Eof = false;
    if (!readSome(/*Blocking=*/true, Eof, Error))
      return false;
    if (Eof && Queue.empty()) {
      Error = "connection closed by server";
      return false;
    }
    if (Eof)
      break;
  }
  Ev = std::move(Queue.front());
  Queue.pop_front();
  return true;
}

bool opd::streamSession(uint16_t Port, const HelloMsg &Hello,
                        const SiteIndex *Elements, size_t N, size_t Chunk,
                        StreamedRun &Run, std::string &Error) {
  Run = StreamedRun();
  if (Chunk == 0)
    Chunk = N ? N : 1;

  ServeClient Client;
  if (!Client.connect(Port, Error))
    return false;
  if (!Client.sendHello(Hello, Error))
    return false;

  ServeClient::Event Ev;
  if (!Client.recvEvent(Ev, Error))
    return false;
  if (Ev.K == ServeClient::Event::Kind::Error) {
    Run.GotError = true;
    Run.Err = Ev.Err;
    return true;
  }
  if (Ev.K != ServeClient::Event::Kind::HelloAck) {
    Error = "expected HelloAck, got event kind " +
            std::to_string(unsigned(Ev.K));
    return false;
  }
  Run.Ack = Ev.Ack;

  std::string SendError;
  bool SendOk = true;
  for (size_t Pos = 0; Pos < N && SendOk; Pos += Chunk) {
    size_t Take = std::min(Chunk, N - Pos);
    SendOk = Client.sendElements(Elements + Pos, Take, SendError);
  }
  if (SendOk)
    SendOk = Client.sendFinish(SendError);
  // A failed send usually means the server already terminated the
  // session; fall through and pick the Error event out of the stream.

  while (true) {
    if (!Client.recvEvent(Ev, Error)) {
      if (!SendOk) {
        Error = SendError;
        return false;
      }
      return false;
    }
    switch (Ev.K) {
    case ServeClient::Event::Kind::Transition:
      Run.Transitions.push_back(Ev.Transition);
      break;
    case ServeClient::Event::Kind::Progress:
      Run.LastProgress = Ev.Progress.Ingested;
      break;
    case ServeClient::Event::Kind::Finished:
      Run.GotFinished = true;
      Run.Summary = Ev.Finished;
      return true;
    case ServeClient::Event::Kind::Error:
      Run.GotError = true;
      Run.Err = Ev.Err;
      return true;
    case ServeClient::Event::Kind::HelloAck:
      Error = "duplicate HelloAck";
      return false;
    }
  }
}

DetectorRun opd::streamedToDetectorRun(const StreamedRun &Run) {
  DetectorRun R;
  PhaseState Cur = PhaseState::Transition;
  uint64_t Prev = 0;
  std::vector<uint64_t> Anchors;
  for (const TransitionMsg &T : Run.Transitions) {
    R.States.append(Cur, T.Offset - Prev);
    if (T.NewState == PhaseState::InPhase)
      Anchors.push_back(T.HasAnchor ? T.Anchor : T.Offset);
    Cur = T.NewState;
    Prev = T.Offset;
  }
  R.States.append(Cur, Run.Summary.Elements - Prev);
  R.States.phasesInto(R.DetectedPhases);

  // runDetector()'s anchor clamp: sorted and disjoint.
  uint64_t PrevEnd = 0;
  for (size_t I = 0; I != R.DetectedPhases.size(); ++I) {
    PhaseInterval P = R.DetectedPhases[I];
    uint64_t Anchor = I < Anchors.size() ? Anchors[I] : P.Begin;
    P.Begin = std::clamp(Anchor, PrevEnd, P.Begin);
    R.AnchoredPhases.push_back(P);
    PrevEnd = P.End;
  }
  return R;
}
