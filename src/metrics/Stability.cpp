//===- metrics/Stability.cpp - Detector-output characterization --------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "metrics/Stability.h"

using namespace opd;

StabilityStats opd::computeStability(const StateSequence &States) {
  StabilityStats Stats;
  if (States.empty())
    return Stats;

  uint64_t InPhase = 0;
  uint64_t Changes = 0;
  const std::vector<StateRun> &Runs = States.runs();
  for (size_t I = 0; I != Runs.size(); ++I) {
    const StateRun &R = Runs[I];
    if (R.State == PhaseState::InPhase) {
      InPhase += R.Length;
      ++Stats.NumPhases;
      Stats.PhaseLengths.push(static_cast<double>(R.Length));
    } else {
      Stats.GapLengths.push(static_cast<double>(R.Length));
    }
    if (I > 0)
      ++Changes;
  }
  double Total = static_cast<double>(States.size());
  Stats.InPhaseFraction = static_cast<double>(InPhase) / Total;
  Stats.ChangesPerMillion = static_cast<double>(Changes) / Total * 1e6;
  return Stats;
}
