//===- metrics/Timeline.h - Phase timeline visualization --------*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SVG/HTML rendering of phase timelines, in the spirit of the authors'
/// phase-visualization work the paper cites (Nagpurkar & Krintz, "
/// Visualization and analysis of phased behavior in Java programs").
/// Each track is one P/T state sequence (the oracle, a detector, one
/// level of a multi-scale bank, ...) drawn as colored phase bars over a
/// shared time axis, so oracle-vs-detector disagreement is visible at a
/// glance. The output is self-contained (no scripts, no external
/// assets).
///
//===----------------------------------------------------------------------===//

#ifndef OPD_METRICS_TIMELINE_H
#define OPD_METRICS_TIMELINE_H

#include "trace/StateSequence.h"

#include <string>
#include <vector>

namespace opd {

/// One row of the timeline.
struct TimelineTrack {
  std::string Label;
  const StateSequence *States = nullptr;
  /// CSS color of the in-phase bars (e.g. "#4878d0").
  std::string Color = "#4878d0";
};

/// Geometry of the rendered timeline.
struct TimelineOptions {
  unsigned Width = 1000;     ///< Plot width in pixels (excluding labels).
  unsigned TrackHeight = 26; ///< Height per track.
  unsigned LabelWidth = 140; ///< Space reserved for track labels.
};

/// Renders the tracks as a standalone SVG element. All tracks must be
/// non-null and cover the same trace length.
std::string renderTimelineSVG(const std::vector<TimelineTrack> &Tracks,
                              const TimelineOptions &Options = {});

/// Renders a complete HTML document embedding the SVG with a title.
std::string renderTimelineHTML(const std::string &Title,
                               const std::vector<TimelineTrack> &Tracks,
                               const TimelineOptions &Options = {});

} // namespace opd

#endif // OPD_METRICS_TIMELINE_H
