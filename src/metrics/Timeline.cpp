//===- metrics/Timeline.cpp - Phase timeline visualization -------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "metrics/Timeline.h"

#include "support/Format.h"

#include <algorithm>
#include <cassert>

using namespace opd;

namespace {

std::string escapeXML(const std::string &Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (char C : Text) {
    switch (C) {
    case '&':
      Out += "&amp;";
      break;
    case '<':
      Out += "&lt;";
      break;
    case '>':
      Out += "&gt;";
      break;
    case '"':
      Out += "&quot;";
      break;
    default:
      Out += C;
    }
  }
  return Out;
}

std::string rect(double X, double Y, double W, double H,
                 const std::string &Fill, const std::string &Extra = "") {
  return "  <rect x=\"" + formatDouble(X, 2) + "\" y=\"" +
         formatDouble(Y, 2) + "\" width=\"" + formatDouble(W, 2) +
         "\" height=\"" + formatDouble(H, 2) + "\" fill=\"" + Fill +
         "\"" + Extra + "/>\n";
}

} // namespace

std::string
opd::renderTimelineSVG(const std::vector<TimelineTrack> &Tracks,
                       const TimelineOptions &Options) {
  assert(!Tracks.empty() && "timeline needs at least one track");
  uint64_t Total = Tracks.front().States->size();
  for (const TimelineTrack &T : Tracks) {
    assert(T.States && "track without states");
    assert(T.States->size() == Total && "tracks must cover the same trace");
  }

  const unsigned Pad = 8;
  const unsigned AxisHeight = 22;
  unsigned Height = static_cast<unsigned>(Tracks.size()) *
                        (Options.TrackHeight + Pad) +
                    AxisHeight + Pad;
  unsigned TotalWidth = Options.LabelWidth + Options.Width + 2 * Pad;

  std::string Out = "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" +
                    std::to_string(TotalWidth) + "\" height=\"" +
                    std::to_string(Height) +
                    "\" font-family=\"monospace\" font-size=\"12\">\n";
  double ScaleX =
      Total == 0 ? 0.0 : static_cast<double>(Options.Width) / Total;

  for (size_t I = 0; I != Tracks.size(); ++I) {
    const TimelineTrack &Track = Tracks[I];
    double Y = Pad + static_cast<double>(I) * (Options.TrackHeight + Pad);
    // Label.
    Out += "  <text x=\"" + std::to_string(Pad) + "\" y=\"" +
           formatDouble(Y + Options.TrackHeight * 0.7, 2) + "\">" +
           escapeXML(Track.Label) + "</text>\n";
    // Transition background.
    Out += rect(Options.LabelWidth, Y, Options.Width, Options.TrackHeight,
                "#e8e8e8");
    // In-phase bars.
    for (const PhaseInterval &P : Track.States->phases()) {
      double X = Options.LabelWidth + P.Begin * ScaleX;
      double W = std::max(0.5, static_cast<double>(P.length()) * ScaleX);
      Out += rect(X, Y, W, Options.TrackHeight, Track.Color,
                  " opacity=\"0.9\"");
    }
  }

  // Time axis with start/middle/end ticks.
  double AxisY = Height - AxisHeight + 4;
  for (double Frac : {0.0, 0.5, 1.0}) {
    double X = Options.LabelWidth + Frac * Options.Width;
    Out += "  <text x=\"" + formatDouble(X, 2) + "\" y=\"" +
           formatDouble(AxisY + 12, 2) +
           "\" text-anchor=\"middle\" fill=\"#555\">" +
           formatCount(static_cast<uint64_t>(Frac * Total)) + "</text>\n";
  }
  Out += "</svg>\n";
  return Out;
}

std::string
opd::renderTimelineHTML(const std::string &Title,
                        const std::vector<TimelineTrack> &Tracks,
                        const TimelineOptions &Options) {
  std::string Out = "<!DOCTYPE html>\n<html>\n<head>\n<meta "
                    "charset=\"utf-8\"/>\n<title>" +
                    escapeXML(Title) +
                    "</title>\n</head>\n<body>\n<h2>" + escapeXML(Title) +
                    "</h2>\n<p>Colored bars are detected/identified "
                    "phases (P); gray is transition (T).</p>\n";
  Out += renderTimelineSVG(Tracks, Options);
  Out += "</body>\n</html>\n";
  return Out;
}
