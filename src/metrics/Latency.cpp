//===- metrics/Latency.cpp - Detection-latency statistics -------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "metrics/Latency.h"

#include <algorithm>

using namespace opd;

namespace {

/// Returns the smallest candidate in [Lo, Hi), or Hi if none (candidates
/// sorted). The smallest in-range candidate is the one closest to Lo,
/// which is the baseline boundary for both start and end matching.
uint64_t closestInRange(const std::vector<uint64_t> &Candidates,
                        uint64_t Lo, uint64_t Hi) {
  auto It = std::lower_bound(Candidates.begin(), Candidates.end(), Lo);
  if (It != Candidates.end() && *It < Hi)
    return *It;
  return Hi;
}

} // namespace

LatencyStats opd::computeLatency(const std::vector<PhaseInterval> &Detected,
                                 const std::vector<PhaseInterval> &Baseline,
                                 uint64_t TotalElements) {
  LatencyStats Stats;
  std::vector<uint64_t> Starts, Ends;
  Starts.reserve(Detected.size());
  Ends.reserve(Detected.size());
  for (const PhaseInterval &P : Detected) {
    Starts.push_back(P.Begin);
    Ends.push_back(P.End);
  }

  for (size_t I = 0; I != Baseline.size(); ++I) {
    const PhaseInterval &B = Baseline[I];
    uint64_t Start = closestInRange(Starts, B.Begin, B.End);
    if (Start != B.End)
      Stats.StartDelay.push(static_cast<double>(Start - B.Begin));
    else
      ++Stats.UnmatchedStarts;

    uint64_t NextStart =
        I + 1 < Baseline.size() ? Baseline[I + 1].Begin : TotalElements + 1;
    uint64_t End = closestInRange(Ends, B.End, NextStart);
    if (End != NextStart)
      Stats.EndDelay.push(static_cast<double>(End - B.End));
    else
      ++Stats.UnmatchedEnds;
  }
  return Stats;
}
