//===- metrics/Latency.h - Detection-latency statistics ---------*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper observes that an online detector "will always detect a phase
/// after it has started" and that "the degree to which an algorithm is
/// late ... is reflected in the correlation portion of the score". This
/// header quantifies the lateness directly: for every matched boundary
/// (same matching rules as the scoring metric), the signed distance in
/// profile elements between the detected and baseline boundary.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_METRICS_LATENCY_H
#define OPD_METRICS_LATENCY_H

#include "support/Statistics.h"
#include "trace/StateSequence.h"

#include <cstdint>
#include <vector>

namespace opd {

/// Lateness of matched boundaries, in profile elements.
struct LatencyStats {
  /// Start-boundary delays (detected start - baseline start; >= 0 by the
  /// matching constraints).
  RunningStats StartDelay;
  /// End-boundary delays (detected end - baseline end; >= 0 likewise).
  RunningStats EndDelay;
  /// Number of baseline phases whose start/end found no match at all.
  uint64_t UnmatchedStarts = 0;
  uint64_t UnmatchedEnds = 0;
};

/// Computes boundary lateness of \p Detected against \p Baseline (both
/// sorted, disjoint). Matching follows the scoring metric: the closest
/// detected start within [start_i, end_i) matches baseline start i, and
/// the closest detected end within [end_i, nextStart_i) matches baseline
/// end i.
LatencyStats computeLatency(const std::vector<PhaseInterval> &Detected,
                            const std::vector<PhaseInterval> &Baseline,
                            uint64_t TotalElements);

} // namespace opd

#endif // OPD_METRICS_LATENCY_H
