//===- metrics/Stability.h - Detector-output characterization --*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Oracle-free characterization of a state sequence, in the spirit of
/// Dhodapkar & Smith's stability measures: how much of the execution a
/// detector calls stable, how often it changes its mind, and how long
/// its phases are. Useful for comparing detectors when no ground truth
/// exists (e.g. on externally collected traces) and for spotting
/// pathological outputs (flapping, always-P) before scoring.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_METRICS_STABILITY_H
#define OPD_METRICS_STABILITY_H

#include "support/Statistics.h"
#include "trace/StateSequence.h"

#include <cstdint>

namespace opd {

/// Summary statistics of one P/T state sequence.
struct StabilityStats {
  /// Fraction of elements in state P.
  double InPhaseFraction = 0.0;
  /// State changes (T->P or P->T) per million elements.
  double ChangesPerMillion = 0.0;
  /// Number of phases (maximal P runs).
  uint64_t NumPhases = 0;
  /// Phase-length statistics in elements.
  RunningStats PhaseLengths;
  /// Transition-gap statistics (maximal T runs) in elements.
  RunningStats GapLengths;
};

/// Computes the summary for \p States.
StabilityStats computeStability(const StateSequence &States);

} // namespace opd

#endif // OPD_METRICS_STABILITY_H
