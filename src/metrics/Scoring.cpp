//===- metrics/Scoring.cpp - Accuracy scoring metric ------------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "metrics/Scoring.h"

#include <algorithm>
#include <cassert>

using namespace opd;

namespace {

/// Returns the number of values in the sorted \p Candidates that lie in
/// [Lo, Hi); exactly one of them (the closest to \p Target) is a match,
/// the rest stay unmatched. Returns 1 if any candidate exists, else 0.
/// (Only existence matters for the counts: closeness resolves which
/// candidate matches, but one baseline boundary can absorb at most one.)
uint64_t matchOne(const std::vector<uint64_t> &Candidates, uint64_t Lo,
                  uint64_t Hi) {
  if (Lo >= Hi)
    return 0;
  auto It = std::lower_bound(Candidates.begin(), Candidates.end(), Lo);
  return (It != Candidates.end() && *It < Hi) ? 1 : 0;
}

} // namespace

BoundaryMatchResult
opd::matchBoundaries(const std::vector<PhaseInterval> &Detected,
                     const std::vector<PhaseInterval> &Baseline,
                     uint64_t TotalElements) {
  BoundaryMatchResult R;
  R.DetectedStarts = Detected.size();
  R.DetectedEnds = Detected.size();
  R.BaselineStarts = Baseline.size();
  R.BaselineEnds = Baseline.size();

  std::vector<uint64_t> Starts, Ends;
  Starts.reserve(Detected.size());
  Ends.reserve(Detected.size());
  for (const PhaseInterval &P : Detected) {
    Starts.push_back(P.Begin);
    Ends.push_back(P.End);
  }
  assert(std::is_sorted(Starts.begin(), Starts.end()) &&
         "detected phases must be sorted");

  for (size_t I = 0; I != Baseline.size(); ++I) {
    const PhaseInterval &B = Baseline[I];
    // Constraint 1: a detected start must fall at/after the baseline start
    // and before the baseline end.
    R.MatchedStarts += matchOne(Starts, B.Begin, B.End);
    // Constraint 2: a detected end must fall at/after the baseline end and
    // before the start of the next baseline phase.
    uint64_t NextStart =
        I + 1 < Baseline.size() ? Baseline[I + 1].Begin : TotalElements + 1;
    R.MatchedEnds += matchOne(Ends, B.End, NextStart);
  }
  return R;
}

static AccuracyScore scoreFrom(const StateSequence &DetectedStates,
                               const std::vector<PhaseInterval> &Detected,
                               const StateSequence &BaselineStates) {
  assert(DetectedStates.size() == BaselineStates.size() &&
         "detector and baseline must cover the same trace");
  AccuracyScore S;
  uint64_t Total = BaselineStates.size();
  S.Correlation =
      Total == 0 ? 1.0
                 : static_cast<double>(
                       countAgreement(DetectedStates, BaselineStates)) /
                       static_cast<double>(Total);

  BoundaryMatchResult M =
      matchBoundaries(Detected, BaselineStates.phases(), Total);
  S.MatchedBoundaries = M.matched();
  S.BaselineBoundaries = M.baseline();
  S.DetectedBoundaries = M.detected();
  S.Sensitivity = M.baseline() == 0
                      ? 1.0
                      : static_cast<double>(M.matched()) /
                            static_cast<double>(M.baseline());
  S.FalsePositives = M.detected() == 0
                         ? 0.0
                         : static_cast<double>(M.detected() - M.matched()) /
                               static_cast<double>(M.detected());
  S.combine();
  return S;
}

AccuracyScore opd::scoreDetection(const StateSequence &DetectedStates,
                                  const StateSequence &BaselineStates) {
  return scoreFrom(DetectedStates, DetectedStates.phases(), BaselineStates);
}

AccuracyScore
opd::scoreDetection(const std::vector<PhaseInterval> &DetectedPhases,
                    const StateSequence &BaselineStates) {
  StateSequence DetectedStates =
      StateSequence::fromPhases(DetectedPhases, BaselineStates.size());
  return scoreFrom(DetectedStates, DetectedPhases, BaselineStates);
}
