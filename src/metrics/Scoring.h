//===- metrics/Scoring.h - Accuracy scoring metric --------------*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's accuracy scoring metric (Section 3.2):
///
///   correlation   = (bothInPhase + bothInTransition) / totalEvents
///   sensitivity   = matchedBoundaries / baselineBoundaries
///   falsePositives= unmatchedDetectedBoundaries / detectedBoundaries
///   score         = correlation/2 + sensitivity/4 + (1-falsePositives)/4
///
/// Boundary matching follows the paper's three constraints: a detected
/// phase start matches baseline phase i iff it falls in [start_i, end_i);
/// a detected end matches iff it falls in [end_i, nextStart_i); and when
/// several detected boundaries satisfy a constraint, the one closest to
/// the baseline boundary matches (one-to-one).
///
/// Degenerate-case conventions (the paper excludes such runs from its
/// averages): with zero baseline boundaries sensitivity is 1; with zero
/// detected boundaries falsePositives is 0.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_METRICS_SCORING_H
#define OPD_METRICS_SCORING_H

#include "trace/StateSequence.h"

#include <cstdint>
#include <vector>

namespace opd {

/// The scoring metric's components for one detector run vs one baseline.
struct AccuracyScore {
  double Correlation = 0.0;
  double Sensitivity = 0.0;
  double FalsePositives = 0.0;
  /// Combined weighted score in [0, 1].
  double Score = 0.0;

  uint64_t MatchedBoundaries = 0;
  uint64_t BaselineBoundaries = 0;
  uint64_t DetectedBoundaries = 0;

  /// Recomputes Score from the components (correlation 50%, sensitivity
  /// 25%, false positives 25%).
  void combine() {
    Score = Correlation / 2.0 + Sensitivity / 4.0 +
            (1.0 - FalsePositives) / 4.0;
  }
};

/// Result of matching detected phase boundaries against baseline phases.
struct BoundaryMatchResult {
  uint64_t MatchedStarts = 0;
  uint64_t MatchedEnds = 0;
  uint64_t DetectedStarts = 0;
  uint64_t DetectedEnds = 0;
  uint64_t BaselineStarts = 0;
  uint64_t BaselineEnds = 0;

  uint64_t matched() const { return MatchedStarts + MatchedEnds; }
  uint64_t detected() const { return DetectedStarts + DetectedEnds; }
  uint64_t baseline() const { return BaselineStarts + BaselineEnds; }
};

/// Matches \p Detected phase boundaries against \p Baseline phases under
/// the paper's constraints. Both lists must be sorted and disjoint.
BoundaryMatchResult matchBoundaries(const std::vector<PhaseInterval> &Detected,
                                    const std::vector<PhaseInterval> &Baseline,
                                    uint64_t TotalElements);

/// Scores detector output \p DetectedStates against \p BaselineStates.
/// Both must cover the same trace. The boundaries scored are exactly the
/// InPhase intervals of each sequence.
AccuracyScore scoreDetection(const StateSequence &DetectedStates,
                             const StateSequence &BaselineStates);

/// Scores with an explicit detected-phase list (used for the Figure 8
/// variant where phase starts are corrected to the anchor point). The
/// correlation component is computed over the states implied by
/// \p DetectedPhases.
AccuracyScore scoreDetection(const std::vector<PhaseInterval> &DetectedPhases,
                             const StateSequence &BaselineStates);

} // namespace opd

#endif // OPD_METRICS_SCORING_H
