//===- support/Parallel.cpp - Work distribution helpers -------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "support/Parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

using namespace opd;

unsigned opd::hardwareParallelism() {
  static const unsigned Cached = [] {
    // Environment override so single-core CI runners (and the TSan leg
    // in particular) can still exercise real concurrency.
    if (const char *Env = std::getenv("OPD_THREADS")) { // NOLINT(concurrency-mt-unsafe)
      long N = std::strtol(Env, nullptr, 10);
      if (N > 0)
        return static_cast<unsigned>(N);
    }
    unsigned N = std::thread::hardware_concurrency();
    return N == 0 ? 1u : N;
  }();
  return Cached;
}

void opd::parallelFor(size_t NumItems,
                      const std::function<void(size_t, unsigned)> &Body,
                      size_t Grain) {
  if (Grain == 0)
    Grain = 1;
  unsigned NumThreads = hardwareParallelism();
  if (NumThreads <= 1 || NumItems <= 1) {
    for (size_t I = 0; I != NumItems; ++I)
      Body(I, 0);
    return;
  }

  // Dynamic scheduling: each worker claims the next chunk of Grain
  // consecutive items. No static partition — a slow chunk delays only
  // the worker that claimed it, and the others drain the remainder.
  std::atomic<size_t> Next{0};
  auto Worker = [&](unsigned WorkerId) {
    for (;;) {
      size_t Begin = Next.fetch_add(Grain, std::memory_order_relaxed);
      if (Begin >= NumItems)
        return;
      size_t End = std::min(Begin + Grain, NumItems);
      for (size_t I = Begin; I != End; ++I)
        Body(I, WorkerId);
    }
  };

  std::vector<std::thread> Threads;
  unsigned NumWorkers = static_cast<unsigned>(
      std::min<size_t>(NumThreads, (NumItems + Grain - 1) / Grain));
  Threads.reserve(NumWorkers - 1);
  for (unsigned I = 1; I < NumWorkers; ++I)
    Threads.emplace_back(Worker, I);
  Worker(0);
  for (std::thread &T : Threads)
    T.join();
}

void opd::parallelFor(size_t NumItems,
                      const std::function<void(size_t)> &Body) {
  parallelFor(
      NumItems, [&Body](size_t I, unsigned) { Body(I); }, /*Grain=*/1);
}
