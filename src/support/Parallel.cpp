//===- support/Parallel.cpp - Work distribution helpers -------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "support/Parallel.h"

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

using namespace opd;

unsigned opd::hardwareParallelism() {
  static const unsigned Cached = [] {
    // Environment override so single-core CI runners (and the TSan leg
    // in particular) can still exercise real concurrency.
    if (const char *Env = std::getenv("OPD_THREADS")) { // NOLINT(concurrency-mt-unsafe)
      long N = std::strtol(Env, nullptr, 10);
      if (N > 0)
        return static_cast<unsigned>(N);
    }
    unsigned N = std::thread::hardware_concurrency();
    return N == 0 ? 1u : N;
  }();
  return Cached;
}

void opd::parallelFor(size_t NumItems,
                      const std::function<void(size_t)> &Body) {
  unsigned NumThreads = hardwareParallelism();
  if (NumThreads <= 1 || NumItems <= 1) {
    for (size_t I = 0; I != NumItems; ++I)
      Body(I);
    return;
  }

  std::atomic<size_t> Next{0};
  auto Worker = [&] {
    for (;;) {
      size_t I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= NumItems)
        return;
      Body(I);
    }
  };

  std::vector<std::thread> Threads;
  unsigned NumWorkers = static_cast<unsigned>(
      std::min<size_t>(NumThreads, NumItems));
  Threads.reserve(NumWorkers - 1);
  for (unsigned I = 1; I < NumWorkers; ++I)
    Threads.emplace_back(Worker);
  Worker();
  for (std::thread &T : Threads)
    T.join();
}
