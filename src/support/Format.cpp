//===- support/Format.cpp - Number and string formatting -----------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "support/Format.h"

#include <cstdio>

namespace opd {

std::string formatCount(uint64_t Value) {
  std::string Digits = std::to_string(Value);
  std::string Result;
  Result.reserve(Digits.size() + Digits.size() / 3);
  unsigned FromRight = 0;
  for (auto It = Digits.rbegin(); It != Digits.rend(); ++It) {
    if (FromRight != 0 && FromRight % 3 == 0)
      Result.push_back(',');
    Result.push_back(*It);
    ++FromRight;
  }
  return std::string(Result.rbegin(), Result.rend());
}

std::string formatDouble(double Value, unsigned Precision) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", static_cast<int>(Precision), Value);
  return Buf;
}

std::string formatPercent(double Fraction, unsigned Precision) {
  return formatDouble(Fraction * 100.0, Precision);
}

std::string formatAbbrev(uint64_t Value) {
  if (Value < 1000)
    return std::to_string(Value);
  if (Value % 1000 == 0)
    return std::to_string(Value / 1000) + "K";
  return formatDouble(static_cast<double>(Value) / 1000.0, 1) + "K";
}

} // namespace opd
