//===- support/ArgParser.cpp - Command-line flag parsing ------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "support/ArgParser.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

using namespace opd;

void ArgParser::addFlag(const std::string &Name, const std::string &Help) {
  assert(!Specs.count(Name) && "duplicate flag registration");
  Spec S;
  S.Help = Help;
  S.IsBool = true;
  Specs[Name] = std::move(S);
}

void ArgParser::addOption(const std::string &Name, const std::string &Help,
                          const std::string &Default) {
  assert(!Specs.count(Name) && "duplicate option registration");
  Spec S;
  S.Help = Help;
  S.Default = Default;
  Specs[Name] = std::move(S);
}

bool ArgParser::parse(int Argc, const char *const *Argv) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--help" || Arg == "-h") {
      Help = true;
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (Arg.rfind("--", 0) != 0) {
      Positional.push_back(Arg);
      continue;
    }
    std::string Name = Arg.substr(2);
    std::string Value;
    bool HasValue = false;
    if (size_t Eq = Name.find('='); Eq != std::string::npos) {
      Value = Name.substr(Eq + 1);
      Name = Name.substr(0, Eq);
      HasValue = true;
    }
    auto It = Specs.find(Name);
    if (It == Specs.end()) {
      std::fprintf(stderr, "error: unknown flag '--%s'\n", Name.c_str());
      return false;
    }
    Spec &S = It->second;
    if (S.IsBool) {
      if (HasValue) {
        std::fprintf(stderr, "error: flag '--%s' does not take a value\n",
                     Name.c_str());
        return false;
      }
      S.Seen = true;
      continue;
    }
    if (!HasValue) {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: flag '--%s' requires a value\n",
                     Name.c_str());
        return false;
      }
      Value = Argv[++I];
    }
    S.Seen = true;
    S.Value = std::move(Value);
  }
  return true;
}

bool ArgParser::getFlag(const std::string &Name) const {
  auto It = Specs.find(Name);
  assert(It != Specs.end() && It->second.IsBool && "unregistered flag");
  return It->second.Seen;
}

const std::string &ArgParser::getOption(const std::string &Name) const {
  auto It = Specs.find(Name);
  assert(It != Specs.end() && !It->second.IsBool && "unregistered option");
  return It->second.Seen ? It->second.Value : It->second.Default;
}

long ArgParser::getInt(const std::string &Name, long Fallback) const {
  const std::string &Text = getOption(Name);
  char *End = nullptr;
  long Value = std::strtol(Text.c_str(), &End, 10);
  if (End == Text.c_str() || (End && *End != '\0' && *End != 'K' && *End != 'k'))
    return Fallback;
  if (End && (*End == 'K' || *End == 'k'))
    Value *= 1000;
  return Value;
}

double ArgParser::getDouble(const std::string &Name, double Fallback) const {
  const std::string &Text = getOption(Name);
  char *End = nullptr;
  double Value = std::strtod(Text.c_str(), &End);
  if (End == Text.c_str())
    return Fallback;
  return Value;
}

std::string ArgParser::usage() const {
  std::string Out = "usage: " + ProgramName + " [flags]\n\n" + Description +
                    "\n\nflags:\n";
  for (const auto &[Name, S] : Specs) {
    Out += "  --" + Name;
    if (!S.IsBool) {
      Out += "=<value>";
      if (!S.Default.empty())
        Out += " (default: " + S.Default + ")";
    }
    Out += "\n      " + S.Help + "\n";
  }
  Out += "  --help\n      print this message\n";
  return Out;
}
