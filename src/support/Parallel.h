//===- support/Parallel.h - Work distribution helpers -----------*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// parallelFor distributes independent work items (detector runs in the
/// sweep harness) over hardware threads. On a single-core host it simply
/// runs serially, so results are byte-identical regardless of parallelism.
/// The OPD_THREADS environment variable overrides the thread count (the
/// CI ThreadSanitizer leg sets it so single-core runners still exercise
/// real concurrency).
///
/// The file also provides the project's annotated locking primitives:
/// Mutex and LockGuard carry Clang thread-safety capability attributes
/// (via the OPD_* macro shim below, which compiles away on other
/// compilers), so shared state can declare its lock with OPD_GUARDED_BY
/// and -Wthread-safety proves the locking discipline at compile time.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_SUPPORT_PARALLEL_H
#define OPD_SUPPORT_PARALLEL_H

#include <cstddef>
#include <functional>
#include <mutex>

/// Clang thread-safety-analysis attribute shim. Expands to the attribute
/// under Clang (where -Wthread-safety checks it) and to nothing under
/// other compilers.
#if defined(__clang__)
#define OPD_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define OPD_THREAD_ANNOTATION(x)
#endif

#define OPD_CAPABILITY(x) OPD_THREAD_ANNOTATION(capability(x))
#define OPD_SCOPED_CAPABILITY OPD_THREAD_ANNOTATION(scoped_lockable)
#define OPD_GUARDED_BY(x) OPD_THREAD_ANNOTATION(guarded_by(x))
#define OPD_REQUIRES(...) \
  OPD_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define OPD_ACQUIRE(...) OPD_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define OPD_RELEASE(...) OPD_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define OPD_TRY_ACQUIRE(...) \
  OPD_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define OPD_EXCLUDES(...) OPD_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define OPD_NO_THREAD_SAFETY_ANALYSIS \
  OPD_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace opd {

/// std::mutex with a thread-safety capability, so members can be
/// declared OPD_GUARDED_BY it.
class OPD_CAPABILITY("mutex") Mutex {
  std::mutex M;

public:
  void lock() OPD_ACQUIRE() { M.lock(); }
  void unlock() OPD_RELEASE() { M.unlock(); }
  bool try_lock() OPD_TRY_ACQUIRE(true) { return M.try_lock(); }
};

/// Scoped lock over Mutex, visible to the thread-safety analysis.
class OPD_SCOPED_CAPABILITY LockGuard {
  Mutex &M;

public:
  explicit LockGuard(Mutex &M) OPD_ACQUIRE(M) : M(M) { M.lock(); }
  ~LockGuard() OPD_RELEASE() { M.unlock(); }
  LockGuard(const LockGuard &) = delete;
  LockGuard &operator=(const LockGuard &) = delete;
};

/// Number of worker threads parallelFor will use (>= 1): the OPD_THREADS
/// environment variable when set to a positive integer, otherwise the
/// hardware concurrency. Read once and cached.
unsigned hardwareParallelism();

/// Invokes \p Body(I, Worker) for every I in [0, NumItems), where Worker
/// identifies the executing worker in [0, hardwareParallelism()) — worker
/// 0 is the calling thread. Workers claim chunks of \p Grain consecutive
/// items from a shared atomic counter (dynamic scheduling): cheap items
/// amortize the counter traffic over a chunk, and a straggler item
/// delays only its own chunk instead of a statically assigned range.
/// \p Body must be safe to call concurrently for distinct indices; the
/// worker id is stable within one call, so per-worker scratch state
/// (sweep arenas) needs no locking. Blocks until all items complete.
void parallelFor(size_t NumItems,
                 const std::function<void(size_t, unsigned)> &Body,
                 size_t Grain);

/// Convenience overload for bodies that need no worker id, with a grain
/// of 1 (pure dynamic scheduling).
void parallelFor(size_t NumItems, const std::function<void(size_t)> &Body);

} // namespace opd

#endif // OPD_SUPPORT_PARALLEL_H
