//===- support/Parallel.h - Work distribution helpers -----------*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// parallelFor distributes independent work items (detector runs in the
/// sweep harness) over hardware threads. On a single-core host it simply
/// runs serially, so results are byte-identical regardless of parallelism.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_SUPPORT_PARALLEL_H
#define OPD_SUPPORT_PARALLEL_H

#include <cstddef>
#include <functional>

namespace opd {

/// Number of worker threads parallelFor will use (>= 1).
unsigned hardwareParallelism();

/// Invokes \p Body(I) for every I in [0, NumItems). Items are claimed from
/// a shared atomic counter, so \p Body must be safe to call concurrently
/// for distinct indices. Blocks until all items are complete.
void parallelFor(size_t NumItems, const std::function<void(size_t)> &Body);

} // namespace opd

#endif // OPD_SUPPORT_PARALLEL_H
