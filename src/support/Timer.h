//===- support/Timer.h - Wall-clock stopwatch -------------------*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal steady-clock stopwatch for the per-stage wall-time counters
/// the observability layer aggregates (sweep detect/score time,
/// inspect_tool stage breakdowns). Not a benchmarking harness — BenchPerf
/// uses google-benchmark for that.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_SUPPORT_TIMER_H
#define OPD_SUPPORT_TIMER_H

#include <chrono>

namespace opd {

/// Measures elapsed wall time from construction (or the last restart()).
class Stopwatch {
  std::chrono::steady_clock::time_point Start;

public:
  Stopwatch() : Start(std::chrono::steady_clock::now()) {}

  /// Resets the start point to now.
  void restart() { Start = std::chrono::steady_clock::now(); }

  /// Seconds elapsed since the start point.
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         Start)
        .count();
  }
};

} // namespace opd

#endif // OPD_SUPPORT_TIMER_H
