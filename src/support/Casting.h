//===- support/Casting.h - LLVM-style isa/cast/dyn_cast ---------*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal reimplementation of LLVM's opt-in RTTI templates. Classes
/// participate by exposing `static bool classof(const Base *)`; the AST in
/// src/lang uses this instead of dynamic_cast (the library builds without
/// RTTI-style dispatch and follows the LLVM coding standard).
///
//===----------------------------------------------------------------------===//

#ifndef OPD_SUPPORT_CASTING_H
#define OPD_SUPPORT_CASTING_H

#include <cassert>

namespace opd {

/// Returns true if \p Val is an instance of To. \p Val must be non-null.
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> on a null pointer");
  return To::classof(Val);
}

/// Checked downcast: asserts that \p Val is an instance of To.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> to an incompatible type");
  return static_cast<To *>(Val);
}

/// Checked downcast (const overload).
template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> to an incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast: returns null if \p Val is not an instance of To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

/// Checking downcast (const overload).
template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

} // namespace opd

#endif // OPD_SUPPORT_CASTING_H
