//===- support/Random.h - Deterministic PRNGs -------------------*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small deterministic pseudo-random number generators used by the workload
/// interpreter and the property-based tests. Determinism matters: every
/// experiment in the paper reproduction must produce identical traces on
/// every run, so we avoid std::mt19937's platform-dependent seeding paths
/// and keep the generators trivially copyable.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_SUPPORT_RANDOM_H
#define OPD_SUPPORT_RANDOM_H

#include <cassert>
#include <cstdint>

namespace opd {

/// SplitMix64: a tiny, high-quality 64-bit generator. Primarily used to
/// seed Xoshiro256 and for cheap one-off hashing of seeds.
class SplitMix64 {
  uint64_t State;

public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  /// Returns the next 64-bit value.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }
};

/// Xoshiro256**: the general-purpose generator for workload noise.
class Xoshiro256 {
  uint64_t S[4];

  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

public:
  /// Seeds the full 256-bit state from a single 64-bit seed via SplitMix64.
  explicit Xoshiro256(uint64_t Seed) {
    SplitMix64 Mix(Seed);
    for (uint64_t &Word : S)
      Word = Mix.next();
  }

  /// Returns the next 64-bit value.
  uint64_t next() {
    uint64_t Result = rotl(S[1] * 5, 7) * 9;
    uint64_t T = S[1] << 17;
    S[2] ^= S[0];
    S[3] ^= S[1];
    S[1] ^= S[2];
    S[0] ^= S[3];
    S[2] ^= T;
    S[3] = rotl(S[3], 45);
    return Result;
  }

  /// Returns a uniformly distributed value in [0, Bound). \p Bound must be
  /// nonzero. Uses Lemire's multiply-shift rejection-free approximation,
  /// which is unbiased enough for workload synthesis.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound != 0 && "nextBelow requires a nonzero bound");
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(next()) * Bound) >> 64);
  }

  /// Returns a uniformly distributed double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Returns true with probability \p P (clamped to [0, 1]).
  bool nextBool(double P) {
    if (P <= 0.0)
      return false;
    if (P >= 1.0)
      return true;
    return nextDouble() < P;
  }
};

} // namespace opd

#endif // OPD_SUPPORT_RANDOM_H
