//===- support/Table.cpp - ASCII table rendering --------------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"

#include <algorithm>
#include <cassert>

using namespace opd;

void Table::setHeader(std::vector<std::string> Names) {
  Header = std::move(Names);
  Aligns.assign(Header.size(), AlignKind::Right);
  if (!Aligns.empty())
    Aligns[0] = AlignKind::Left;
}

void Table::setAlign(unsigned Col, AlignKind Kind) {
  assert(Col < Aligns.size() && "alignment for a column outside the header");
  Aligns[Col] = Kind;
}

void Table::addRow(std::vector<std::string> Cells) {
  assert((Header.empty() || Cells.size() <= Header.size()) &&
         "row has more cells than the header has columns");
  Rows.push_back({std::move(Cells), /*IsSeparator=*/false});
}

void Table::addSeparator() { Rows.push_back({{}, /*IsSeparator=*/true}); }

unsigned Table::numRows() const {
  unsigned N = 0;
  for (const Row &R : Rows)
    if (!R.IsSeparator)
      ++N;
  return N;
}

std::string Table::render() const {
  // Compute column widths over the header and every row.
  size_t NumCols = Header.size();
  for (const Row &R : Rows)
    NumCols = std::max(NumCols, R.Cells.size());

  std::vector<size_t> Widths(NumCols, 0);
  for (size_t I = 0; I != Header.size(); ++I)
    Widths[I] = Header[I].size();
  for (const Row &R : Rows)
    for (size_t I = 0; I != R.Cells.size(); ++I)
      Widths[I] = std::max(Widths[I], R.Cells[I].size());

  auto renderCell = [&](const std::string &Cell, size_t Col) {
    AlignKind Kind = Col < Aligns.size() ? Aligns[Col] : AlignKind::Right;
    std::string Pad(Widths[Col] - std::min(Widths[Col], Cell.size()), ' ');
    return Kind == AlignKind::Left ? Cell + Pad : Pad + Cell;
  };

  size_t TotalWidth = NumCols == 0 ? 0 : 2 * (NumCols - 1);
  for (size_t W : Widths)
    TotalWidth += W;

  std::string Out;
  if (!Title.empty()) {
    Out += Title;
    Out += '\n';
    Out += std::string(std::max(Title.size(), TotalWidth), '=');
    Out += '\n';
  }
  if (!Header.empty()) {
    for (size_t I = 0; I != Header.size(); ++I) {
      if (I != 0)
        Out += "  ";
      Out += renderCell(Header[I], I);
    }
    Out += '\n';
    Out += std::string(TotalWidth, '-');
    Out += '\n';
  }
  for (const Row &R : Rows) {
    if (R.IsSeparator) {
      Out += std::string(TotalWidth, '-');
      Out += '\n';
      continue;
    }
    for (size_t I = 0; I != R.Cells.size(); ++I) {
      if (I != 0)
        Out += "  ";
      Out += renderCell(R.Cells[I], I);
    }
    Out += '\n';
  }
  return Out;
}

std::string Table::renderCSV() const {
  auto escape = [](const std::string &Cell) {
    if (Cell.find_first_of(",\"\n") == std::string::npos)
      return Cell;
    std::string Escaped = "\"";
    for (char C : Cell) {
      if (C == '"')
        Escaped += '"';
      Escaped += C;
    }
    Escaped += '"';
    return Escaped;
  };

  std::string Out;
  auto addCSVRow = [&](const std::vector<std::string> &Cells) {
    for (size_t I = 0; I != Cells.size(); ++I) {
      if (I != 0)
        Out += ',';
      Out += escape(Cells[I]);
    }
    Out += '\n';
  };
  if (!Header.empty())
    addCSVRow(Header);
  for (const Row &R : Rows)
    if (!R.IsSeparator)
      addCSVRow(R.Cells);
  return Out;
}
