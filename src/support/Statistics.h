//===- support/Statistics.h - Streaming statistics --------------*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Streaming (single-pass) statistics. The Average analyzer and the Lu et
/// al. interval-bound analyzer both need running means over unbounded value
/// streams; RunningStats implements Welford's numerically stable update so
/// the analyzers stay O(1) per profile element.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_SUPPORT_STATISTICS_H
#define OPD_SUPPORT_STATISTICS_H

#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>

namespace opd {

/// Single-pass mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
  uint64_t N = 0;
  double Mean = 0.0;
  double M2 = 0.0;
  double Min = std::numeric_limits<double>::infinity();
  double Max = -std::numeric_limits<double>::infinity();

public:
  /// Resets the accumulator to the empty state.
  void reset() { *this = RunningStats(); }

  /// Folds \p X into the running statistics.
  void push(double X) {
    ++N;
    double Delta = X - Mean;
    Mean += Delta / static_cast<double>(N);
    M2 += Delta * (X - Mean);
    if (X < Min)
      Min = X;
    if (X > Max)
      Max = X;
  }

  /// Number of values pushed so far.
  uint64_t count() const { return N; }

  /// True if no values have been pushed.
  bool empty() const { return N == 0; }

  /// Running mean; 0 when empty.
  double mean() const { return N == 0 ? 0.0 : Mean; }

  /// Population variance; 0 with fewer than two samples.
  double variance() const {
    return N < 2 ? 0.0 : M2 / static_cast<double>(N);
  }

  /// Population standard deviation.
  double stddev() const { return std::sqrt(variance()); }

  /// Smallest value pushed; asserts when empty.
  double min() const {
    assert(N > 0 && "min() of empty RunningStats");
    return Min;
  }

  /// Largest value pushed; asserts when empty.
  double max() const {
    assert(N > 0 && "max() of empty RunningStats");
    return Max;
  }
};

/// Streaming Pearson correlation between two synchronized value streams.
/// Used by the Das et al. analyzer (related work, modeled in the
/// framework): it correlates the current sample vector against a target
/// vector one coordinate pair at a time.
class RunningPearson {
  uint64_t N = 0;
  double MeanX = 0.0, MeanY = 0.0;
  double M2X = 0.0, M2Y = 0.0, CoM = 0.0;

public:
  /// Resets the accumulator to the empty state.
  void reset() { *this = RunningPearson(); }

  /// Folds the coordinate pair (\p X, \p Y) into the accumulator.
  void push(double X, double Y) {
    ++N;
    double DX = X - MeanX;
    MeanX += DX / static_cast<double>(N);
    double DY = Y - MeanY;
    MeanY += DY / static_cast<double>(N);
    M2X += DX * (X - MeanX);
    M2Y += DY * (Y - MeanY);
    CoM += DX * (Y - MeanY);
  }

  /// Number of pairs pushed so far.
  uint64_t count() const { return N; }

  /// Pearson's r; returns 0 when either stream has zero variance.
  double correlation() const {
    if (N < 2)
      return 0.0;
    double Denom = std::sqrt(M2X * M2Y);
    if (Denom == 0.0)
      return 0.0;
    return CoM / Denom;
  }
};

} // namespace opd

#endif // OPD_SUPPORT_STATISTICS_H
