//===- support/ArgParser.h - Command-line flag parsing ----------*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal command-line flag parser shared by the experiment binaries and
/// examples. Supports `--flag`, `--flag=value`, and `--flag value` forms
/// plus positional arguments; prints a generated --help.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_SUPPORT_ARGPARSER_H
#define OPD_SUPPORT_ARGPARSER_H

#include <map>
#include <string>
#include <vector>

namespace opd {

/// Declarative command-line parser. Register flags, then call parse();
/// lookups return the parsed value or the registered default.
class ArgParser {
public:
  ArgParser(std::string ProgramName, std::string Description)
      : ProgramName(std::move(ProgramName)),
        Description(std::move(Description)) {}

  /// Registers a boolean flag (present => true).
  void addFlag(const std::string &Name, const std::string &Help);

  /// Registers a flag that takes a value, with a default.
  void addOption(const std::string &Name, const std::string &Help,
                 const std::string &Default);

  /// Parses argv. Returns false (after printing a diagnostic to stderr) on
  /// an unknown flag or a missing value; returns false with Help set after
  /// printing usage if --help was requested.
  bool parse(int Argc, const char *const *Argv);

  /// True if --help was seen (parse() returns false in that case too).
  bool helpRequested() const { return Help; }

  /// True if boolean flag \p Name was present on the command line.
  bool getFlag(const std::string &Name) const;

  /// Value of option \p Name (parsed value or default).
  const std::string &getOption(const std::string &Name) const;

  /// Value of option \p Name parsed as a long; falls back to \p Fallback
  /// when the text does not parse.
  long getInt(const std::string &Name, long Fallback = 0) const;

  /// Value of option \p Name parsed as a double.
  double getDouble(const std::string &Name, double Fallback = 0.0) const;

  /// Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string> &positional() const { return Positional; }

  /// Renders the generated usage text.
  std::string usage() const;

private:
  struct Spec {
    std::string Help;
    std::string Default;
    bool IsBool = false;
    bool Seen = false;
    std::string Value;
  };

  std::string ProgramName;
  std::string Description;
  std::map<std::string, Spec> Specs;
  std::vector<std::string> Positional;
  bool Help = false;
};

} // namespace opd

#endif // OPD_SUPPORT_ARGPARSER_H
