//===- support/Table.h - ASCII table rendering ------------------*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small column-aligned ASCII table builder. Every reproduction binary
/// prints one or more paper tables/figures as rows; this class keeps the
/// rendering uniform and also emits CSV for downstream plotting.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_SUPPORT_TABLE_H
#define OPD_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace opd {

/// Column-aligned ASCII table with an optional title and header row.
class Table {
public:
  /// Horizontal alignment of a column's cells.
  enum class AlignKind { Left, Right };

  explicit Table(std::string Title = "") : Title(std::move(Title)) {}

  /// Sets the header row. Columns default to right alignment except the
  /// first, which is left-aligned (benchmark-name style).
  void setHeader(std::vector<std::string> Names);

  /// Overrides the alignment of column \p Col.
  void setAlign(unsigned Col, AlignKind Kind);

  /// Appends a data row; it may be shorter than the header (trailing cells
  /// render empty) but must not be longer.
  void addRow(std::vector<std::string> Cells);

  /// Appends a horizontal separator row.
  void addSeparator();

  /// Renders the aligned ASCII form, ending with a newline.
  std::string render() const;

  /// Renders the table as CSV (title omitted, separators skipped).
  std::string renderCSV() const;

  /// Number of data rows added so far (separators excluded).
  unsigned numRows() const;

private:
  struct Row {
    std::vector<std::string> Cells;
    bool IsSeparator = false;
  };

  std::string Title;
  std::vector<std::string> Header;
  std::vector<AlignKind> Aligns;
  std::vector<Row> Rows;
};

} // namespace opd

#endif // OPD_SUPPORT_TABLE_H
