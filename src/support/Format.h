//===- support/Format.h - Number and string formatting ----------*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Formatting helpers for the reproduction tables. All experiment binaries
/// print paper-style rows; these helpers keep the rendering consistent
/// (thousands separators for counts, fixed precision for scores).
///
//===----------------------------------------------------------------------===//

#ifndef OPD_SUPPORT_FORMAT_H
#define OPD_SUPPORT_FORMAT_H

#include <cstdint>
#include <string>

namespace opd {

/// Renders \p Value with ',' thousands separators, e.g. 62808794 ->
/// "62,808,794".
std::string formatCount(uint64_t Value);

/// Renders \p Value with \p Precision digits after the decimal point.
std::string formatDouble(double Value, unsigned Precision = 2);

/// Renders \p Value as a percentage with \p Precision digits, without the
/// '%' sign (the tables carry the sign in the header), e.g. 0.3388 ->
/// "33.88" for Precision 2.
std::string formatPercent(double Fraction, unsigned Precision = 2);

/// Renders a branch count the way the paper abbreviates MPL values:
/// 1000 -> "1K", 100000 -> "100K", 1500 -> "1.5K", 123 -> "123".
std::string formatAbbrev(uint64_t Value);

} // namespace opd

#endif // OPD_SUPPORT_FORMAT_H
