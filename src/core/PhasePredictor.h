//===- core/PhasePredictor.h - Next-phase prediction ------------*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Most related work the paper contrasts itself with performs phase
/// *prediction*. Once phases carry identities (core/RecurringPhases.h),
/// prediction composes naturally on top of detection: at each phase end,
/// forecast the id of the next phase. Two standard predictors:
///
///  * LastPhasePredictor — predicts the current phase repeats (the
///    "last value" predictor of the phase-prediction literature);
///  * MarkovPhasePredictor — first-order Markov chain over phase ids,
///    predicting the most frequent successor seen so far.
///
/// evaluatePredictor() replays a completed-phase stream online: it asks
/// for a forecast before revealing each phase, then trains, so reported
/// accuracy is honest (no lookahead).
///
//===----------------------------------------------------------------------===//

#ifndef OPD_CORE_PHASEPREDICTOR_H
#define OPD_CORE_PHASEPREDICTOR_H

#include "core/RecurringPhases.h"

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

namespace opd {

/// Abstract next-phase-id predictor.
class PhasePredictor {
public:
  virtual ~PhasePredictor();

  /// Forecast the id of the next phase, or nullopt when the predictor
  /// has no basis yet.
  virtual std::optional<unsigned> predict() const = 0;

  /// Reveal the id of the phase that actually occurred next.
  virtual void observe(unsigned Id) = 0;

  /// Clears all learned state.
  virtual void reset() = 0;
};

/// Predicts the most recent phase id repeats.
class LastPhasePredictor final : public PhasePredictor {
  std::optional<unsigned> Last;

public:
  std::optional<unsigned> predict() const override { return Last; }
  void observe(unsigned Id) override { Last = Id; }
  void reset() override { Last.reset(); }
};

/// First-order Markov predictor: argmax successor frequency of the
/// current phase id (ties break toward the smaller id; falls back to
/// last-value while the current id has no recorded successor).
class MarkovPhasePredictor final : public PhasePredictor {
  std::map<std::pair<unsigned, unsigned>, uint64_t> EdgeCounts;
  std::optional<unsigned> Last;

public:
  std::optional<unsigned> predict() const override;
  void observe(unsigned Id) override;
  void reset() override;
};

/// Online prediction accuracy over a completed-phase stream.
struct PredictionAccuracy {
  uint64_t Correct = 0;
  uint64_t Predictions = 0;

  double rate() const {
    return Predictions == 0 ? 0.0
                            : static_cast<double>(Correct) /
                                  static_cast<double>(Predictions);
  }
};

/// Replays \p Phases through \p Predictor: predict, compare, train.
/// Phases before the predictor's first non-null forecast are skipped.
PredictionAccuracy
evaluatePredictor(PhasePredictor &Predictor,
                  const std::vector<RecurringPhaseTracker::CompletedPhase>
                      &Phases);

} // namespace opd

#endif // OPD_CORE_PHASEPREDICTOR_H
