//===- core/PhaseDetector.h - The online phase detector ---------*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// PhaseDetector composes a WindowedModel and an Analyzer into the
/// framework of Figure 3: a detection client feeds it the most recent
/// skipFactor profile elements and receives the new P/T state.
///
/// OnlineDetector is the abstract interface every online detector in this
/// repository implements (the framework detectors here plus the
/// related-work detectors in core/RelatedWork.h); the DetectorRunner and
/// the sweep harness operate on it.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_CORE_PHASEDETECTOR_H
#define OPD_CORE_PHASEDETECTOR_H

#include "core/Analyzer.h"
#include "core/DetectorObserver.h"
#include "core/WindowedModel.h"
#include "trace/StateSequence.h"

#include <memory>
#include <string>

namespace opd {

/// Abstract online phase detector: a state machine fed batches of profile
/// elements, emitting one state per batch.
class OnlineDetector {
public:
  virtual ~OnlineDetector();

  /// Consumes \p N elements (normally batchSize(); the final batch of a
  /// trace may be shorter) and returns the state covering them.
  virtual PhaseState processBatch(const SiteIndex *Elements, size_t N) = 0;

  /// Streams \p NumElements elements through the detector in
  /// batchSize()-sized batches (the trailing partial batch included),
  /// appending one state per element to \p States and recording
  /// lastPhaseStartEstimate() into \p AnchoredStarts at every T->P
  /// transition. The default implementation loops over processBatch —
  /// one virtual dispatch per batch; the monomorphic fast-path detectors
  /// (core/FastDetector.h) override it with a fully inlined loop, so a
  /// whole run costs a single virtual dispatch. Both produce
  /// bit-identical output. Callers must reset() first; runDetector() is
  /// the normal entry point.
  virtual void consumeTrace(const SiteIndex *Elements, size_t NumElements,
                            StateSequence &States,
                            std::vector<uint64_t> &AnchoredStarts);

  /// Elements per batch (the skipFactor).
  virtual size_t batchSize() const = 0;

  /// Clears all state for a fresh stream.
  virtual void reset() = 0;

  /// After a T->P transition, the detector's estimate of where the phase
  /// actually began (global element offset). Detectors without anchoring
  /// return the transition offset itself. Only meaningful immediately
  /// after processBatch returned a transition into P.
  virtual uint64_t lastPhaseStartEstimate() const = 0;

  /// One-line description for tables.
  virtual std::string describe() const = 0;

  /// processBatch with the attached observer's internal events emitted.
  /// runDetector() selects this entry point once per run when an
  /// observer is attached, so the plain processBatch path carries no
  /// observation code at all. The default forwards to processBatch —
  /// right for detectors without internal model/analyzer events (the
  /// related-work detectors; the runner emits the stream-level events
  /// for them).
  virtual PhaseState processBatchObserved(const SiteIndex *Elements,
                                          size_t N) {
    return processBatch(Elements, N);
  }

  /// Attaches an observer (nullptr detaches). The observer outlives the
  /// run it watches. The default implementation ignores the observer —
  /// detectors without internal events need no storage; PhaseDetector
  /// overrides both accessors and emits every event.
  virtual void setObserver(DetectorObserver *O) { (void)O; }

  /// The attached observer, or nullptr.
  virtual DetectorObserver *observer() const { return nullptr; }
};

/// The framework detector of Figure 3.
class PhaseDetector final : public OnlineDetector {
public:
  /// \p Probe, when non-null, builds the model over the
  /// CheckedKernelArith-instrumented kernel (see WindowedModel); null
  /// gives the production kernel.
  PhaseDetector(const WindowConfig &Window, ModelKind Model,
                std::unique_ptr<Analyzer> TheAnalyzer, SiteIndex NumSites,
                KernelValueProbe *Probe = nullptr);

  /// Figure 3's processProfile(profileElements).
  PhaseState processBatch(const SiteIndex *Elements, size_t N) override;

  PhaseState processBatchObserved(const SiteIndex *Elements,
                                  size_t N) override;

  size_t batchSize() const override { return Model.config().SkipFactor; }

  void reset() override;

  uint64_t lastPhaseStartEstimate() const override { return LastAnchor; }

  std::string describe() const override;

  void setObserver(DetectorObserver *O) override { Observer = O; }

  DetectorObserver *observer() const override { return Observer; }

  /// Current state (P/T).
  PhaseState state() const { return State; }

  /// Confidence in the current state (the framework's optional feature;
  /// Section 2): the analyzer's normalized decision margin, or 0 while
  /// the windows are still filling.
  double confidence() const {
    return Model.windowsFull() ? TheAnalyzer->confidence() : 0.0;
  }

  /// The model, for tests and diagnostics.
  const WindowedModel &model() const { return Model; }

private:
  /// Shared body of both entry points; the Observed instantiation emits
  /// the observer events, the plain one compiles to the event-free
  /// pre-observability code (the zero-cost property BenchPerf checks).
  template <bool Observed>
  PhaseState processBatchImpl(const SiteIndex *Elements, size_t N);

  WindowedModel Model;
  std::unique_ptr<Analyzer> TheAnalyzer;
  PhaseState State = PhaseState::Transition;
  uint64_t LastAnchor = 0;
  /// Kept last so attaching observability does not shift the layout of
  /// the hot model/analyzer members relative to an observer-free build.
  DetectorObserver *Observer = nullptr;
};

} // namespace opd

#endif // OPD_CORE_PHASEDETECTOR_H
