//===- core/FastDetector.cpp - Monomorphic fast-path detectors ---------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
//
// The per-config execution engine over the monomorphic kernel/model
// templates in core/FastKernels.h: FastPhaseDetector is PhaseDetector's
// unobserved processBatchImpl with every model/analyzer call resolved at
// compile time, two decision-identical substitutions documented on the
// kernel classes (dropped confidence bookkeeping; shared-product MinSum
// deltas), and a consumeTrace() that accumulates state runs in
// registers. Like the reference kernels, every fast kernel is
// parameterized by an arithmetic policy (PlainKernelArith in production,
// compiled to the exact pre-policy arithmetic; CheckedKernelArith in the
// KernelBounds shadow mode, where every step is overflow-checked and
// recorded).
//
// The average analyzer's similarity() calls and the threshold
// analyzer's division-free similarityAtLeast() decisions here are the
// semantics the shared-scan engine (core/SharedScan.cpp) replicates
// cursor-by-cursor; FastDetectorTest and SharedScanTest require
// bit-identical output from all paths, so a missed replication of any
// reference change fails loudly.
//
//===----------------------------------------------------------------------===//

#include "core/FastDetector.h"

#include "core/FastKernels.h"

#include <algorithm>

using namespace opd;
using namespace opd::fastkernels;

namespace {

/// The monomorphic detector: PhaseDetector's unobserved processBatchImpl
/// with every model/analyzer call resolved at compile time, plus a
/// consumeTrace() override that keeps the whole run in one stack frame.
template <ModelKind M, TWPolicyKind Policy, AnalyzerKind A,
          typename ArithT = PlainKernelArith>
class FastPhaseDetector final : public FastDetectorBase {
  using AnalyzerT = typename AnalyzerOf<A>::type;

public:
  FastPhaseDetector(const DetectorConfig &Config, SiteIndex NumSites,
                    ArithT Arith = ArithT())
      : Model(Config.Window, NumSites, Arith),
        TheAnalyzer(buildAnalyzer<A>(Config.AnalyzerParam)), Sites(NumSites) {
    assert(Config.Model == M && Config.TheAnalyzer == A &&
           "config does not match this shape");
  }

  SiteIndex numSites() const override { return Sites; }

  void setBatchKernels(bool Enabled) override {
    Model.setBatchKernels(Enabled);
  }
  bool batchKernelsEnabled() const override {
    return Model.batchKernelsEnabled();
  }

  PhaseState processBatch(const SiteIndex *Elements, size_t N) override {
    return processBatchInline(Elements, N);
  }

  void consumeTrace(const SiteIndex *Elements, size_t NumElements,
                    StateSequence &States,
                    std::vector<uint64_t> &AnchoredStarts) override {
    size_t Batch = Model.config().SkipFactor;
    // The pending state run, accumulated in registers: States.append()
    // merges equal-state runs anyway, so emitting whole runs on state
    // changes produces the identical StateSequence with one call per
    // run instead of one per batch.
    PhaseState RunState = PhaseState::Transition;
    uint64_t RunLen = 0;
    if (Batch == 1) {
      // skip == 1 is both the common sweep setting and the per-element
      // worst case; with the batch length a compile-time constant the
      // inner batch loop and the length clamp fold away entirely.
      for (uint64_t Offset = 0; Offset != NumElements; ++Offset) {
        PhaseState S = processBatchInline(Elements + Offset, 1);
        if (S == RunState) {
          ++RunLen;
          continue;
        }
        if (RunState == PhaseState::Transition && S == PhaseState::InPhase)
          AnchoredStarts.push_back(LastAnchor);
        if (RunLen != 0)
          States.append(RunState, RunLen);
        RunState = S;
        RunLen = 1;
      }
    } else {
      for (uint64_t Offset = 0; Offset < NumElements; Offset += Batch) {
        size_t N = std::min<size_t>(Batch, NumElements - Offset);
        PhaseState S = processBatchInline(Elements + Offset, N);
        if (S == RunState) {
          RunLen += N;
          continue;
        }
        // RunState is the previous batch's state (or Transition at the
        // start), so this is exactly the reference's Prev->S edge test.
        if (RunState == PhaseState::Transition && S == PhaseState::InPhase)
          AnchoredStarts.push_back(LastAnchor);
        if (RunLen != 0)
          States.append(RunState, RunLen);
        RunState = S;
        RunLen = N;
      }
    }
    if (RunLen != 0)
      States.append(RunState, RunLen);
  }

  size_t batchSize() const override { return Model.config().SkipFactor; }

  void reset() override {
    Model.reset();
    TheAnalyzer.reset();
    State = PhaseState::Transition;
    LastAnchor = 0;
  }

  uint64_t lastPhaseStartEstimate() const override { return LastAnchor; }

  std::string describe() const override {
    const WindowConfig &W = Model.config();
    std::string Out = modelKindName(M);
    Out += " ";
    Out += twPolicyName(W.TWPolicy);
    Out += "-tw cw=" + std::to_string(W.CWSize) +
           " tw=" + std::to_string(W.TWSize) +
           " skip=" + std::to_string(W.SkipFactor);
    if (W.TWPolicy == TWPolicyKind::Adaptive) {
      Out += std::string(" ") + anchorKindName(W.Anchor) + "/" +
             resizeKindName(W.Resize);
    }
    Out += " ";
    Out += TheAnalyzer.describe();
    Out += " [fast]";
    return Out;
  }

  void reconfigure(const DetectorConfig &Config) override {
    assert(Config.Model == M && Config.Window.TWPolicy == Policy &&
           Config.TheAnalyzer == A && "config does not match this shape");
    Model.reconfigure(Config.Window);
    TheAnalyzer = buildAnalyzer<A>(Config.AnalyzerParam);
    State = PhaseState::Transition;
    LastAnchor = 0;
  }

private:
  /// The T->P edge: anchor, phase start, stats reset. Out of line — it
  /// runs once per detected phase, and keeping its register demands out
  /// of processBatchInline keeps the per-element loop unspilled.
  OPD_NOINLINE void enterPhase() {
    LastAnchor = Model.computeAnchorOffset();
    Model.startPhase();
    TheAnalyzer.resetStats();
  }

  /// The P->T edge: flush the windows, reset stats. Out of line for the
  /// same reason as enterPhase().
  OPD_NOINLINE void leavePhase() {
    Model.endPhase();
    TheAnalyzer.resetStats();
  }

  OPD_FORCE_INLINE PhaseState processBatchInline(const SiteIndex *Elements,
                                                 size_t N) {
    for (size_t I = 0; I != N; ++I)
      Model.consume(Elements[I]);

    PhaseState NewState;
    if (!Model.windowsFull()) {
      NewState = PhaseState::Transition;
    } else if constexpr (A == AnalyzerKind::Threshold) {
      // The threshold analyzer needs only the decision bit, never the
      // similarity value itself (its updateStats is a no-op), so the
      // kernel can decide without dividing (see similarityAtLeast).
      NewState = Model.similarityAtLeast(TheAnalyzer.threshold())
                     ? PhaseState::InPhase
                     : PhaseState::Transition;
      if (State == PhaseState::Transition && NewState == PhaseState::InPhase)
        enterPhase();
    } else {
      double Similarity = Model.similarity();
      NewState = TheAnalyzer.processValue(Similarity);
      if (State == PhaseState::Transition &&
          NewState == PhaseState::InPhase) {
        enterPhase();
      } else if (State == PhaseState::InPhase &&
                 NewState == PhaseState::InPhase) {
        TheAnalyzer.updateStats(Similarity);
      }
    }

    if (State == PhaseState::InPhase &&
        NewState == PhaseState::Transition) {
      leavePhase();
    }

    State = NewState;
    return State;
  }

  FastWindowedModel<M, Policy, ArithT> Model;
  AnalyzerT TheAnalyzer;
  PhaseState State = PhaseState::Transition;
  uint64_t LastAnchor = 0;
  SiteIndex Sites;
};

template <ModelKind M, TWPolicyKind Policy, typename ArithT>
std::unique_ptr<FastDetectorBase>
makeForAnalyzer(const DetectorConfig &C, SiteIndex NumSites, ArithT Arith) {
  switch (C.TheAnalyzer) {
  case AnalyzerKind::Threshold:
    return std::make_unique<
        FastPhaseDetector<M, Policy, AnalyzerKind::Threshold, ArithT>>(
        C, NumSites, Arith);
  case AnalyzerKind::Average:
    return std::make_unique<
        FastPhaseDetector<M, Policy, AnalyzerKind::Average, ArithT>>(
        C, NumSites, Arith);
  case AnalyzerKind::Hysteresis:
    return std::make_unique<
        FastPhaseDetector<M, Policy, AnalyzerKind::Hysteresis, ArithT>>(
        C, NumSites, Arith);
  }
  return nullptr;
}

template <ModelKind M, typename ArithT>
std::unique_ptr<FastDetectorBase>
makeForPolicy(const DetectorConfig &C, SiteIndex NumSites, ArithT Arith) {
  switch (C.Window.TWPolicy) {
  case TWPolicyKind::Constant:
    return makeForAnalyzer<M, TWPolicyKind::Constant>(C, NumSites, Arith);
  case TWPolicyKind::Adaptive:
    return makeForAnalyzer<M, TWPolicyKind::Adaptive>(C, NumSites, Arith);
  }
  return nullptr;
}

template <typename ArithT>
std::unique_ptr<FastDetectorBase>
makeForModel(const DetectorConfig &C, SiteIndex NumSites, ArithT Arith) {
  switch (C.Model) {
  case ModelKind::UnweightedSet:
    return makeForPolicy<ModelKind::UnweightedSet>(C, NumSites, Arith);
  case ModelKind::WeightedSet:
    return makeForPolicy<ModelKind::WeightedSet>(C, NumSites, Arith);
  case ModelKind::ManhattanBBV:
    return makeForPolicy<ModelKind::ManhattanBBV>(C, NumSites, Arith);
  }
  return nullptr;
}

} // namespace

size_t opd::fastShapeIndex(const DetectorConfig &Config) {
  return (static_cast<size_t>(Config.Model) * 2 +
          static_cast<size_t>(Config.Window.TWPolicy)) *
             3 +
         static_cast<size_t>(Config.TheAnalyzer);
}

std::unique_ptr<FastDetectorBase>
opd::makeFastDetector(const DetectorConfig &Config, SiteIndex NumSites) {
  return makeForModel(Config, NumSites, PlainKernelArith());
}

std::unique_ptr<FastDetectorBase>
opd::makeCheckedFastDetector(const DetectorConfig &Config, SiteIndex NumSites,
                             KernelValueProbe &Probe) {
  return makeForModel(Config, NumSites, CheckedKernelArith(Probe));
}
