//===- core/FastDetector.cpp - Monomorphic fast-path detectors ---------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
//
// The templates here mirror core/WindowedModel.cpp and the unobserved
// path of core/PhaseDetector.cpp statement for statement; the deltas are
// concrete kernel/analyzer types (so every call inlines), the TW policy
// as a compile-time constant, and two decision-identical substitutions:
//
//  * The fast analyzers drop the confidence bookkeeping. OnlineDetector
//    exposes no confidence accessor, LastConfidence never feeds a P/T
//    decision, and the Average analyzer's decisions read only the
//    running mean — so the margin divisions and the Welford
//    variance/min/max updates are dead work on this interface. Every
//    decision compares the same doubles in the same order as the
//    reference analyzer, so the emitted states are bit-identical.
//
//  * FastWeightedSetKernel computes the replace-operation MinSum deltas
//    from shared products (4 multiplies instead of 8), in the same
//    non-wrapping gain/loss form as the reference kernel: the gain and
//    the loss are computed from the identical products and applied in
//    the identical order, so MinSum matches bit for bit.
//
// Like the reference kernels, every fast kernel is parameterized by an
// arithmetic policy (PlainKernelArith in production, compiled to the
// exact pre-policy arithmetic; CheckedKernelArith in the KernelBounds
// shadow mode, where every step is overflow-checked and recorded).
//
//  * Threshold decisions skip the similarity division when the integer
//    numerator is outside a conservative rounding margin of
//    threshold * denominator; inside the margin the exact reference
//    division runs, so every decision is still bit-identical (see
//    FastWeightedSetKernel::similarityAtLeast).
//
// Any behavioral change to the reference detector must be replicated
// here — FastDetectorTest runs every sweep configuration shape through
// both paths and requires bit-identical output, so a missed replication
// fails loudly.
//
//===----------------------------------------------------------------------===//

#include "core/FastDetector.h"

#include "support/Format.h"

#include <algorithm>
#include <cstring>

using namespace opd;

namespace {

// The fast kernels only pay off if the per-element operations dissolve
// into the consume loop, but the fully-inlined loop is large enough that
// the compiler's inline-growth budget starts refusing them (measured:
// gcc -O3 leaves twReplace/similarity as out-of-line calls). Force the
// hot operations in.
#if defined(__GNUC__) || defined(__clang__)
#define OPD_FORCE_INLINE inline __attribute__((always_inline))
#define OPD_NOINLINE __attribute__((noinline))
#else
#define OPD_FORCE_INLINE inline
#define OPD_NOINLINE
#endif

//===----------------------------------------------------------------------===//
// Non-virtual kernels
//
// The reference kernels are virtual classes; even though the fast models
// hold them by concrete value (so every call site is direct), the
// compiler emits the virtual overrides as standalone functions and — in
// the large fully-inlined consume loop — refuses to inline them, leaving
// two or three function calls per element. These kernels are the same
// algorithms as plain inline members with no vtable at all, which is
// what lets the per-element loop absorb them.
//===----------------------------------------------------------------------===//

/// The state and touched-site machinery of SimilarityKernel without the
/// vtable.
class FastKernelBase {
public:
  explicit FastKernelBase(SiteIndex NumSites)
      : CWCounts(NumSites, 0), TWCounts(NumSites, 0),
        SiteTouched(NumSites, 0) {}

  bool inCW(SiteIndex S) const {
    assert(S < CWCounts.size() && "site out of range");
    return CWCounts[S] != 0;
  }
  uint64_t cwTotal() const { return NCW; }
  uint64_t twTotal() const { return NTW; }
  SiteIndex numSites() const {
    return static_cast<SiteIndex>(CWCounts.size());
  }

protected:
  /// Same contract as SimilarityKernel::touch().
  OPD_FORCE_INLINE void touch(SiteIndex S) {
    if (!SiteTouched[S]) {
      SiteTouched[S] = 1;
      TouchedSites.push_back(S);
    }
  }

  /// O(distinct sites touched) count reset, as SimilarityKernel::reset().
  void resetCounts() {
    for (SiteIndex S : TouchedSites) {
      CWCounts[S] = 0;
      TWCounts[S] = 0;
      SiteTouched[S] = 0;
    }
    TouchedSites.clear();
    NCW = NTW = 0;
  }

  std::vector<uint32_t> CWCounts;
  std::vector<uint32_t> TWCounts;
  uint64_t NCW = 0;
  uint64_t NTW = 0;
  std::vector<uint8_t> SiteTouched;
  std::vector<SiteIndex> TouchedSites;
};

/// Non-virtual mirror of UnweightedSetKernel. The arithmetic policy is
/// a private base so the empty production policy occupies no storage
/// (empty-base optimization keeps the layout identical to a policy-free
/// kernel).
template <typename ArithT = PlainKernelArith>
class FastUnweightedSetKernel : public FastKernelBase, private ArithT {
public:
  explicit FastUnweightedSetKernel(SiteIndex NumSites, ArithT A = ArithT())
      : FastKernelBase(NumSites), ArithT(A) {}

  void reset() {
    resetCounts();
    CWDistinct = 0;
    BothDistinct = 0;
  }

  void cwAdd(SiteIndex S) {
    assert(S < CWCounts.size() && "site out of range");
    touch(S);
    if (CWCounts[S]++ == 0) {
      ++CWDistinct;
      this->observeValue(KernelQuantity::CWDistinct, CWDistinct);
      if (TWCounts[S] != 0) {
        ++BothDistinct;
        this->observeValue(KernelQuantity::BothDistinct, BothDistinct);
      }
    }
    this->observeCount(KernelQuantity::CWCount, CWCounts[S]);
    ++NCW;
    this->observeValue(KernelQuantity::CWTotal, NCW);
  }

  void cwRemove(SiteIndex S) {
    assert(S < CWCounts.size() && "site out of range");
    assert(CWCounts[S] != 0 && "removing a site not in the CW");
    if (--CWCounts[S] == 0) {
      --CWDistinct;
      if (TWCounts[S] != 0)
        --BothDistinct;
    }
    --NCW;
  }

  void twAdd(SiteIndex S) {
    assert(S < TWCounts.size() && "site out of range");
    touch(S);
    if (TWCounts[S]++ == 0 && CWCounts[S] != 0) {
      ++BothDistinct;
      this->observeValue(KernelQuantity::BothDistinct, BothDistinct);
    }
    this->observeCount(KernelQuantity::TWCount, TWCounts[S]);
    ++NTW;
    this->observeValue(KernelQuantity::TWTotal, NTW);
  }

  void twRemove(SiteIndex S) {
    assert(S < TWCounts.size() && "site out of range");
    assert(TWCounts[S] != 0 && "removing a site not in the TW");
    if (--TWCounts[S] == 0 && CWCounts[S] != 0)
      --BothDistinct;
    --NTW;
  }

  // Remove before add: the totals never exceed the window bound, even
  // transiently, matching the KernelBounds-certified invariant.
  OPD_FORCE_INLINE void cwReplace(SiteIndex In, SiteIndex Out) {
    cwRemove(Out);
    cwAdd(In);
  }
  OPD_FORCE_INLINE void twReplace(SiteIndex In, SiteIndex Out) {
    twRemove(Out);
    twAdd(In);
  }
  void moveCWToTW(SiteIndex S) {
    cwRemove(S);
    twAdd(S);
  }

  OPD_FORCE_INLINE double similarity() {
    if (CWDistinct == 0)
      return 0.0;
    return static_cast<double>(BothDistinct) /
           static_cast<double>(CWDistinct);
  }

  OPD_FORCE_INLINE bool similarityAtLeast(double T) {
    return similarity() >= T;
  }

private:
  uint64_t CWDistinct = 0;
  uint64_t BothDistinct = 0;
};

/// Non-virtual weighted-set kernel with the replace-operation delta
/// computed from shared products: min(cw*NTW, tw*NCW) before and after a
/// count bump reuses the same two products, halving the multiplies of
/// the reference WeightedSetKernel on the steady-state path, and
/// similarity() divides by a cached double(NCW)*double(NTW). Both are
/// the same arithmetic the reference kernel performs (the gain/loss
/// deltas reuse the reference's products; the cached denominator is the
/// identical double product), so MinSum and the returned similarity are
/// bit-identical.
template <typename ArithT = PlainKernelArith>
class FastWeightedSetKernel : public FastKernelBase, private ArithT {
public:
  explicit FastWeightedSetKernel(SiteIndex NumSites, ArithT A = ArithT())
      : FastKernelBase(NumSites), ArithT(A) {}

  void reset() {
    resetCounts();
    MinSum = 0;
    Dirty = false;
  }

  void cwAdd(SiteIndex S) {
    assert(S < CWCounts.size() && "site out of range");
    touch(S);
    ++CWCounts[S];
    this->observeCount(KernelQuantity::CWCount, CWCounts[S]);
    ++NCW;
    this->observeValue(KernelQuantity::CWTotal, NCW);
    Dirty = true;
  }

  void cwRemove(SiteIndex S) {
    assert(CWCounts[S] != 0 && "removing a site not in the CW");
    --CWCounts[S];
    --NCW;
    Dirty = true;
  }

  void twAdd(SiteIndex S) {
    assert(S < TWCounts.size() && "site out of range");
    touch(S);
    ++TWCounts[S];
    this->observeCount(KernelQuantity::TWCount, TWCounts[S]);
    ++NTW;
    this->observeValue(KernelQuantity::TWTotal, NTW);
    Dirty = true;
  }

  void twRemove(SiteIndex S) {
    assert(TWCounts[S] != 0 && "removing a site not in the TW");
    --TWCounts[S];
    --NTW;
    Dirty = true;
  }

  OPD_FORCE_INLINE void cwReplace(SiteIndex In, SiteIndex Out) {
    assert(In < CWCounts.size() && Out < CWCounts.size() &&
           "site out of range");
    assert(CWCounts[Out] != 0 && "replacing a site not in the CW");
    if (In == Out)
      return;
    touch(In);
    if (Dirty) {
      ++CWCounts[In];
      --CWCounts[Out];
      return;
    }
    // term(S) = min(cw*NTW, tw*NCW); after ++cw[In]/--cw[Out] only the
    // first operand moves, by +-NTW (cw[Out] >= 1, so no underflow).
    // Gain/loss form: In's term only rises, Out's only falls, and the
    // loss is one of MinSum's summands — so with the certified bound
    // MinSum <= NCW*NTW no step here can wrap (see SimilarityKernel.h).
    uint64_t AIn =
        this->mul(KernelQuantity::ProductCWTW, CWCounts[In], NTW);
    uint64_t BIn =
        this->mul(KernelQuantity::ProductTWCW, TWCounts[In], NCW);
    uint64_t AOut =
        this->mul(KernelQuantity::ProductCWTW, CWCounts[Out], NTW);
    uint64_t BOut =
        this->mul(KernelQuantity::ProductTWCW, TWCounts[Out], NCW);
    uint64_t AInNew = this->add(KernelQuantity::ProductCWTW, AIn, NTW);
    uint64_t AOutNew = this->sub(KernelQuantity::ProductCWTW, AOut, NTW);
    ++CWCounts[In];
    this->observeCount(KernelQuantity::CWCount, CWCounts[In]);
    --CWCounts[Out];
    uint64_t Gain = this->sub(KernelQuantity::MinSum,
                              std::min(AInNew, BIn), std::min(AIn, BIn));
    uint64_t Loss = this->sub(KernelQuantity::MinSum, std::min(AOut, BOut),
                              std::min(AOutNew, BOut));
    MinSum = this->add(KernelQuantity::MinSum, MinSum, Gain);
    MinSum = this->sub(KernelQuantity::MinSum, MinSum, Loss);
  }

  /// Precondition (which every FastWindowedModel call site satisfies):
  /// In has already been added to a window since the last reset() — in
  /// the model, twReplace only moves the element leaving the CW into
  /// the TW, and everything that entered the CW was touched on the way
  /// in. That makes touch(In) a guaranteed no-op here, so it is elided
  /// from this per-element path.
  OPD_FORCE_INLINE void twReplace(SiteIndex In, SiteIndex Out) {
    assert(In < TWCounts.size() && Out < TWCounts.size() &&
           "site out of range");
    assert(TWCounts[Out] != 0 && "replacing a site not in the TW");
    assert(SiteTouched[In] && "twReplace of a never-touched site");
    if (In == Out)
      return;
    if (Dirty) {
      ++TWCounts[In];
      --TWCounts[Out];
      return;
    }
    // Same gain/loss argument as cwReplace, with the TW count moving.
    uint64_t AIn =
        this->mul(KernelQuantity::ProductTWCW, TWCounts[In], NCW);
    uint64_t BIn =
        this->mul(KernelQuantity::ProductCWTW, CWCounts[In], NTW);
    uint64_t AOut =
        this->mul(KernelQuantity::ProductTWCW, TWCounts[Out], NCW);
    uint64_t BOut =
        this->mul(KernelQuantity::ProductCWTW, CWCounts[Out], NTW);
    uint64_t AInNew = this->add(KernelQuantity::ProductTWCW, AIn, NCW);
    uint64_t AOutNew = this->sub(KernelQuantity::ProductTWCW, AOut, NCW);
    ++TWCounts[In];
    this->observeCount(KernelQuantity::TWCount, TWCounts[In]);
    --TWCounts[Out];
    uint64_t Gain = this->sub(KernelQuantity::MinSum,
                              std::min(AInNew, BIn), std::min(AIn, BIn));
    uint64_t Loss = this->sub(KernelQuantity::MinSum, std::min(AOut, BOut),
                              std::min(AOutNew, BOut));
    MinSum = this->add(KernelQuantity::MinSum, MinSum, Gain);
    MinSum = this->sub(KernelQuantity::MinSum, MinSum, Loss);
  }

  void moveCWToTW(SiteIndex S) {
    cwRemove(S);
    twAdd(S);
  }

  OPD_FORCE_INLINE double similarity() {
    if (NCW == 0 || NTW == 0)
      return 0.0;
    if (Dirty) {
      MinSum = 0;
      for (SiteIndex S : TouchedSites)
        MinSum = this->add(
            KernelQuantity::MinSum, MinSum,
            std::min(
                this->mul(KernelQuantity::ProductCWTW, CWCounts[S], NTW),
                this->mul(KernelQuantity::ProductTWCW, TWCounts[S], NCW)));
      // The same product the reference divides by, computed once per
      // totals change instead of per element.
      Denom = static_cast<double>(NCW) * static_cast<double>(NTW);
      Dirty = false;
    }
    return static_cast<double>(MinSum) / Denom;
  }

  /// similarity() >= T without the per-element division. Outside a
  /// conservative relative margin (1e-12, thousands of ulps wider than
  /// the half-ulp each of the division and the T * Denom product can
  /// contribute) the rounded quotient provably lands on the same side
  /// of T; inside the margin the exact reference division decides. The
  /// result is therefore bit-identical to similarity() >= T for every
  /// input, including T <= 0 (the comparison against a non-positive
  /// bound is always true, as is similarity() >= T).
  OPD_FORCE_INLINE bool similarityAtLeast(double T) {
    if (NCW == 0 || NTW == 0 || Dirty)
      return similarity() >= T;
    double Num = static_cast<double>(MinSum);
    double Bound = T * Denom;
    if (Num >= Bound + Bound * 1e-12)
      return true;
    if (Num <= Bound - Bound * 1e-12)
      return false;
    return static_cast<double>(MinSum) / Denom >= T;
  }

private:
  uint64_t MinSum = 0;
  /// double(NCW) * double(NTW); valid iff !Dirty and both totals nonzero.
  double Denom = 0.0;
  bool Dirty = false;
};

/// Non-virtual mirror of ManhattanKernel. similarity() must keep the
/// reference's full ascending floating-point loop: FP addition is not
/// associative, so any reordering would break bit-identity.
template <typename ArithT = PlainKernelArith>
class FastManhattanKernel : public FastKernelBase, private ArithT {
public:
  explicit FastManhattanKernel(SiteIndex NumSites, ArithT A = ArithT())
      : FastKernelBase(NumSites), ArithT(A) {}

  void reset() { resetCounts(); }

  void cwAdd(SiteIndex S) {
    assert(S < CWCounts.size() && "site out of range");
    touch(S);
    ++CWCounts[S];
    this->observeCount(KernelQuantity::CWCount, CWCounts[S]);
    ++NCW;
    this->observeValue(KernelQuantity::CWTotal, NCW);
  }

  void cwRemove(SiteIndex S) {
    assert(CWCounts[S] != 0 && "removing a site not in the CW");
    --CWCounts[S];
    --NCW;
  }

  void twAdd(SiteIndex S) {
    assert(S < TWCounts.size() && "site out of range");
    touch(S);
    ++TWCounts[S];
    this->observeCount(KernelQuantity::TWCount, TWCounts[S]);
    ++NTW;
    this->observeValue(KernelQuantity::TWTotal, NTW);
  }

  void twRemove(SiteIndex S) {
    assert(TWCounts[S] != 0 && "removing a site not in the TW");
    --TWCounts[S];
    --NTW;
  }

  // Remove before add: the totals never exceed the window bound, even
  // transiently, matching the KernelBounds-certified invariant.
  OPD_FORCE_INLINE void cwReplace(SiteIndex In, SiteIndex Out) {
    cwRemove(Out);
    cwAdd(In);
  }
  OPD_FORCE_INLINE void twReplace(SiteIndex In, SiteIndex Out) {
    twRemove(Out);
    twAdd(In);
  }
  void moveCWToTW(SiteIndex S) {
    cwRemove(S);
    twAdd(S);
  }

  OPD_FORCE_INLINE double similarity() {
    if (NCW == 0 || NTW == 0)
      return 0.0;
    double Distance = 0.0;
    double InvCW = 1.0 / static_cast<double>(NCW);
    double InvTW = 1.0 / static_cast<double>(NTW);
    for (SiteIndex S = 0, E = numSites(); S != E; ++S) {
      double Diff = static_cast<double>(CWCounts[S]) * InvCW -
                    static_cast<double>(TWCounts[S]) * InvTW;
      Distance += Diff < 0 ? -Diff : Diff;
    }
    return 1.0 - Distance / 2.0;
  }

  OPD_FORCE_INLINE bool similarityAtLeast(double T) {
    return similarity() >= T;
  }
};

template <ModelKind M, typename ArithT> struct KernelOf;
template <typename ArithT> struct KernelOf<ModelKind::UnweightedSet, ArithT> {
  using type = FastUnweightedSetKernel<ArithT>;
};
template <typename ArithT> struct KernelOf<ModelKind::WeightedSet, ArithT> {
  using type = FastWeightedSetKernel<ArithT>;
};
template <typename ArithT> struct KernelOf<ModelKind::ManhattanBBV, ArithT> {
  using type = FastManhattanKernel<ArithT>;
};

/// Decision-identical threshold analyzer without the confidence margin
/// computation (see file comment).
class FastThresholdAnalyzer {
  double Threshold;

public:
  explicit FastThresholdAnalyzer(double Threshold) : Threshold(Threshold) {}

  double threshold() const { return Threshold; }

  PhaseState processValue(double Similarity) {
    return Similarity >= Threshold ? PhaseState::InPhase
                                   : PhaseState::Transition;
  }
  void resetStats() {}
  void updateStats(double Similarity) { (void)Similarity; }
  void reset() {}

  std::string describe() const {
    return std::string("threshold ") + formatDouble(Threshold, 2);
  }
};

/// Mean-only Welford accumulator: the identical Mean update sequence as
/// RunningStats::push (the M2/min/max folds it drops never feed Mean).
class FastMeanStats {
  uint64_t N = 0;
  double Mean = 0.0;

public:
  void reset() { *this = FastMeanStats(); }
  void push(double X) {
    ++N;
    Mean += (X - Mean) / static_cast<double>(N);
  }
  bool empty() const { return N == 0; }
  double mean() const { return N == 0 ? 0.0 : Mean; }
};

/// Decision-identical average analyzer: same entry gate, same
/// mean-minus-delta comparison on the same running mean.
class FastAverageAnalyzer {
  double Delta;
  double EntryThreshold;
  FastMeanStats Stats;

public:
  explicit FastAverageAnalyzer(double Delta, double EntryThreshold = -1.0)
      : Delta(Delta), EntryThreshold(EntryThreshold) {}

  PhaseState processValue(double Similarity) {
    if (Stats.empty()) {
      if (EntryThreshold >= 0.0 && Similarity < EntryThreshold)
        return PhaseState::Transition;
      return PhaseState::InPhase;
    }
    return Similarity >= Stats.mean() - Delta ? PhaseState::InPhase
                                              : PhaseState::Transition;
  }
  void resetStats() { Stats.reset(); }
  void updateStats(double Similarity) { Stats.push(Similarity); }
  void reset() { Stats.reset(); }

  std::string describe() const {
    return std::string("average d=") + formatDouble(Delta, 2);
  }
};

/// Decision-identical hysteresis analyzer.
class FastHysteresisAnalyzer {
  double EnterThreshold;
  double ExitThreshold;
  PhaseState State = PhaseState::Transition;

public:
  FastHysteresisAnalyzer(double EnterThreshold, double ExitThreshold)
      : EnterThreshold(EnterThreshold), ExitThreshold(ExitThreshold) {
    assert(ExitThreshold <= EnterThreshold &&
           "exit threshold must not exceed the enter threshold");
  }

  PhaseState processValue(double Similarity) {
    double Threshold = State == PhaseState::InPhase ? ExitThreshold
                                                    : EnterThreshold;
    State = Similarity >= Threshold ? PhaseState::InPhase
                                    : PhaseState::Transition;
    return State;
  }
  void resetStats() {}
  void updateStats(double Similarity) { (void)Similarity; }
  void reset() { State = PhaseState::Transition; }

  std::string describe() const {
    return std::string("hysteresis ") + formatDouble(EnterThreshold, 2) +
           "/" + formatDouble(ExitThreshold, 2);
  }
};

template <AnalyzerKind A> struct AnalyzerOf;
template <> struct AnalyzerOf<AnalyzerKind::Threshold> {
  using type = FastThresholdAnalyzer;
};
template <> struct AnalyzerOf<AnalyzerKind::Average> {
  using type = FastAverageAnalyzer;
};
template <> struct AnalyzerOf<AnalyzerKind::Hysteresis> {
  using type = FastHysteresisAnalyzer;
};

/// Mirrors makeAnalyzer()'s parameter mapping exactly (including the
/// hysteresis exit-threshold derivation).
template <AnalyzerKind A>
typename AnalyzerOf<A>::type buildAnalyzer(double Param) {
  if constexpr (A == AnalyzerKind::Threshold)
    return FastThresholdAnalyzer(Param);
  else if constexpr (A == AnalyzerKind::Average)
    return FastAverageAnalyzer(Param);
  else
    return FastHysteresisAnalyzer(Param, Param >= 0.15 ? Param - 0.15 : 0.0);
}

/// Minimal growable array for the model's element buffer. Exists only
/// because std::vector::push_back is too large for the compiler to
/// inline into the fully-expanded consume loop (measured: gcc -O3
/// emits it as an out-of-line call per element, and the call forces
/// every cached kernel pointer back to memory around it). The hot push
/// is a compare, a store, and an increment; growth stays out of line.
class ElementBuffer {
public:
  ElementBuffer() = default;
  ~ElementBuffer() { delete[] Data; }
  ElementBuffer(const ElementBuffer &) = delete;
  ElementBuffer &operator=(const ElementBuffer &) = delete;

  OPD_FORCE_INLINE void push_back(SiteIndex S) {
    if (Size == Cap)
      grow();
    Data[Size++] = S;
  }
  SiteIndex operator[](size_t I) const {
    assert(I < Size && "buffer index out of range");
    return Data[I];
  }
  size_t size() const { return Size; }
  SiteIndex *begin() { return Data; }
  const SiteIndex *begin() const { return Data; }
  SiteIndex *end() { return Data + Size; }
  const SiteIndex *end() const { return Data + Size; }
  void clear() { Size = 0; }
  /// Shrink to the first N elements (endPhase keeps only the seed).
  void truncate(size_t N) {
    assert(N <= Size && "truncate cannot grow the buffer");
    Size = N;
  }
  /// Drop the first N elements, sliding the rest down (compaction).
  void dropFront(size_t N) {
    assert(N <= Size && "dropping more than the buffer holds");
    std::memmove(Data, Data + N, (Size - N) * sizeof(SiteIndex));
    Size -= N;
  }

private:
  OPD_NOINLINE void grow() {
    size_t NewCap = Cap ? Cap * 2 : 1024;
    SiteIndex *NewData = new SiteIndex[NewCap];
    std::copy(Data, Data + Size, NewData);
    delete[] Data;
    Data = NewData;
    Cap = NewCap;
  }

  SiteIndex *Data = nullptr;
  size_t Size = 0;
  size_t Cap = 0;
};

/// WindowedModel with the kernel held by concrete value and the TW
/// policy fixed at compile time. Field-for-field and statement-for-
/// statement mirror of WindowedModel/WindowedModel.cpp.
template <ModelKind M, TWPolicyKind Policy,
          typename ArithT = PlainKernelArith>
class FastWindowedModel {
  using Kernel = typename KernelOf<M, ArithT>::type;

public:
  FastWindowedModel(const WindowConfig &Config, SiteIndex NumSites,
                    ArithT Arith = ArithT())
      : Config(Config), TheKernel(NumSites, Arith) {
    assert(Config.TWPolicy == Policy && "config does not match this shape");
    assert(Config.CWSize > 0 && "current window must be nonempty");
    assert(Config.TWSize > 0 && "trailing window must be nonempty");
    assert(Config.SkipFactor > 0 && "skip factor must be positive");
  }

  OPD_FORCE_INLINE void consume(SiteIndex S) {
    ++GlobalConsumed;
    Buffer.push_back(S);

    if (CWLen < Config.CWSize) {
      consumeFill(S);
      return;
    }

    SiteIndex Y = Buffer[Head + TWLen];
    TheKernel.cwReplace(S, Y);
    bool TWGrows = (Policy == TWPolicyKind::Adaptive && InPhaseGrowth) ||
                   TWLen < Config.TWSize;
    if (TWGrows) {
      TheKernel.twAdd(Y);
      ++TWLen;
    } else {
      SiteIndex Z = Buffer[Head];
      TheKernel.twReplace(Y, Z);
      ++Head;
    }
    compactBuffer();
  }

  /// The CW-fill path, kept out of the hot loop: it only runs for the
  /// first CWSize elements after a flush, where per-element cost is
  /// dominated by the kernel add anyway.
  OPD_NOINLINE void consumeFill(SiteIndex S) {
    ++CWLen;
    TheKernel.cwAdd(S);
    if (PartialCW && CWLen == Config.CWSize)
      PartialCW = false;
  }

  bool windowsFull() const {
    if (PhaseOpen)
      return TWLen > 0 && CWLen > 0;
    return CWLen == Config.CWSize && TWLen >= Config.TWSize;
  }

  OPD_FORCE_INLINE double similarity() { return TheKernel.similarity(); }

  OPD_FORCE_INLINE bool similarityAtLeast(double T) {
    return TheKernel.similarityAtLeast(T);
  }

  uint64_t computeAnchorOffset() const {
    return offsetOfTWIndex(anchorPosition());
  }

  void startPhase() {
    if constexpr (Policy == TWPolicyKind::Adaptive) {
      uint64_t A = anchorPosition();
      if (Config.Resize == ResizeKind::Slide) {
        uint64_t Take = std::min(A, CWLen);
        dropTWPrefix(A);
        for (uint64_t I = 0; I != Take; ++I) {
          SiteIndex X = Buffer[Head + TWLen];
          TheKernel.moveCWToTW(X);
          ++TWLen;
          --CWLen;
        }
        if (CWLen < Config.CWSize)
          PartialCW = true;
      } else {
        dropTWPrefix(A);
      }
      InPhaseGrowth = true;
    }
    PhaseOpen = true;
  }

  void endPhase() {
    uint64_t Keep = std::min<uint64_t>(
        std::min<uint64_t>(Config.SkipFactor, Config.CWSize),
        TWLen + CWLen);
    std::copy(Buffer.end() - static_cast<ptrdiff_t>(Keep), Buffer.end(),
              Buffer.begin());
    Buffer.truncate(Keep);
    Head = 0;
    TWLen = 0;
    CWLen = Keep;
    TheKernel.reset();
    for (SiteIndex S : Buffer)
      TheKernel.cwAdd(S);
    InPhaseGrowth = false;
    PartialCW = false;
    PhaseOpen = false;
  }

  void reset() {
    Buffer.clear();
    Head = 0;
    TWLen = CWLen = 0;
    InPhaseGrowth = PartialCW = PhaseOpen = false;
    GlobalConsumed = 0;
    TheKernel.reset();
  }

  /// Swaps in a new same-policy window configuration; the kernel keeps
  /// its per-site arrays (reset() zeroes only the touched entries).
  void reconfigure(const WindowConfig &NewConfig) {
    assert(NewConfig.TWPolicy == Policy &&
           "config does not match this shape");
    assert(NewConfig.CWSize > 0 && "current window must be nonempty");
    assert(NewConfig.TWSize > 0 && "trailing window must be nonempty");
    assert(NewConfig.SkipFactor > 0 && "skip factor must be positive");
    Config = NewConfig;
    reset();
  }

  uint64_t consumed() const { return GlobalConsumed; }
  const WindowConfig &config() const { return Config; }

private:
  uint64_t offsetOfTWIndex(uint64_t I) const {
    return GlobalConsumed - (TWLen + CWLen) + I;
  }

  uint64_t anchorPosition() const {
    assert(Head + TWLen + CWLen == Buffer.size() &&
           "window bookkeeping out of sync");
    if (Config.Anchor == AnchorKind::RightmostNoisy) {
      for (uint64_t I = TWLen; I != 0; --I)
        if (!TheKernel.inCW(Buffer[Head + I - 1]))
          return I;
      return 0;
    }
    for (uint64_t I = 0; I != TWLen; ++I)
      if (TheKernel.inCW(Buffer[Head + I]))
        return I;
    return TWLen;
  }

  void dropTWPrefix(uint64_t N) {
    assert(N <= TWLen && "dropping more than the TW holds");
    for (uint64_t I = 0; I != N; ++I)
      TheKernel.twRemove(Buffer[Head + I]);
    Head += N;
    TWLen -= N;
  }

  void compactBuffer() {
    if (Head > WindowedModel::CompactionThreshold &&
        Head * 2 > Buffer.size()) {
      Buffer.dropFront(Head);
      Head = 0;
    }
  }

  WindowConfig Config;
  Kernel TheKernel;

  ElementBuffer Buffer;
  size_t Head = 0;
  uint64_t TWLen = 0;
  uint64_t CWLen = 0;

  bool PhaseOpen = false;
  bool InPhaseGrowth = false;
  bool PartialCW = false;

  uint64_t GlobalConsumed = 0;
};

/// The monomorphic detector: PhaseDetector's unobserved processBatchImpl
/// with every model/analyzer call resolved at compile time, plus a
/// consumeTrace() override that keeps the whole run in one stack frame.
template <ModelKind M, TWPolicyKind Policy, AnalyzerKind A,
          typename ArithT = PlainKernelArith>
class FastPhaseDetector final : public FastDetectorBase {
  using AnalyzerT = typename AnalyzerOf<A>::type;

public:
  FastPhaseDetector(const DetectorConfig &Config, SiteIndex NumSites,
                    ArithT Arith = ArithT())
      : Model(Config.Window, NumSites, Arith),
        TheAnalyzer(buildAnalyzer<A>(Config.AnalyzerParam)), Sites(NumSites) {
    assert(Config.Model == M && Config.TheAnalyzer == A &&
           "config does not match this shape");
  }

  SiteIndex numSites() const override { return Sites; }

  PhaseState processBatch(const SiteIndex *Elements, size_t N) override {
    return processBatchInline(Elements, N);
  }

  void consumeTrace(const SiteIndex *Elements, size_t NumElements,
                    StateSequence &States,
                    std::vector<uint64_t> &AnchoredStarts) override {
    size_t Batch = Model.config().SkipFactor;
    // The pending state run, accumulated in registers: States.append()
    // merges equal-state runs anyway, so emitting whole runs on state
    // changes produces the identical StateSequence with one call per
    // run instead of one per batch.
    PhaseState RunState = PhaseState::Transition;
    uint64_t RunLen = 0;
    if (Batch == 1) {
      // skip == 1 is both the common sweep setting and the per-element
      // worst case; with the batch length a compile-time constant the
      // inner batch loop and the length clamp fold away entirely.
      for (uint64_t Offset = 0; Offset != NumElements; ++Offset) {
        PhaseState S = processBatchInline(Elements + Offset, 1);
        if (S == RunState) {
          ++RunLen;
          continue;
        }
        if (RunState == PhaseState::Transition && S == PhaseState::InPhase)
          AnchoredStarts.push_back(LastAnchor);
        if (RunLen != 0)
          States.append(RunState, RunLen);
        RunState = S;
        RunLen = 1;
      }
    } else {
      for (uint64_t Offset = 0; Offset < NumElements; Offset += Batch) {
        size_t N = std::min<size_t>(Batch, NumElements - Offset);
        PhaseState S = processBatchInline(Elements + Offset, N);
        if (S == RunState) {
          RunLen += N;
          continue;
        }
        // RunState is the previous batch's state (or Transition at the
        // start), so this is exactly the reference's Prev->S edge test.
        if (RunState == PhaseState::Transition && S == PhaseState::InPhase)
          AnchoredStarts.push_back(LastAnchor);
        if (RunLen != 0)
          States.append(RunState, RunLen);
        RunState = S;
        RunLen = N;
      }
    }
    if (RunLen != 0)
      States.append(RunState, RunLen);
  }

  size_t batchSize() const override { return Model.config().SkipFactor; }

  void reset() override {
    Model.reset();
    TheAnalyzer.reset();
    State = PhaseState::Transition;
    LastAnchor = 0;
  }

  uint64_t lastPhaseStartEstimate() const override { return LastAnchor; }

  std::string describe() const override {
    const WindowConfig &W = Model.config();
    std::string Out = modelKindName(M);
    Out += " ";
    Out += twPolicyName(W.TWPolicy);
    Out += "-tw cw=" + std::to_string(W.CWSize) +
           " tw=" + std::to_string(W.TWSize) +
           " skip=" + std::to_string(W.SkipFactor);
    if (W.TWPolicy == TWPolicyKind::Adaptive) {
      Out += std::string(" ") + anchorKindName(W.Anchor) + "/" +
             resizeKindName(W.Resize);
    }
    Out += " ";
    Out += TheAnalyzer.describe();
    Out += " [fast]";
    return Out;
  }

  void reconfigure(const DetectorConfig &Config) override {
    assert(Config.Model == M && Config.Window.TWPolicy == Policy &&
           Config.TheAnalyzer == A && "config does not match this shape");
    Model.reconfigure(Config.Window);
    TheAnalyzer = buildAnalyzer<A>(Config.AnalyzerParam);
    State = PhaseState::Transition;
    LastAnchor = 0;
  }

private:
  /// The T->P edge: anchor, phase start, stats reset. Out of line — it
  /// runs once per detected phase, and keeping its register demands out
  /// of processBatchInline keeps the per-element loop unspilled.
  OPD_NOINLINE void enterPhase() {
    LastAnchor = Model.computeAnchorOffset();
    Model.startPhase();
    TheAnalyzer.resetStats();
  }

  /// The P->T edge: flush the windows, reset stats. Out of line for the
  /// same reason as enterPhase().
  OPD_NOINLINE void leavePhase() {
    Model.endPhase();
    TheAnalyzer.resetStats();
  }

  OPD_FORCE_INLINE PhaseState processBatchInline(const SiteIndex *Elements,
                                                 size_t N) {
    for (size_t I = 0; I != N; ++I)
      Model.consume(Elements[I]);

    PhaseState NewState;
    if (!Model.windowsFull()) {
      NewState = PhaseState::Transition;
    } else if constexpr (A == AnalyzerKind::Threshold) {
      // The threshold analyzer needs only the decision bit, never the
      // similarity value itself (its updateStats is a no-op), so the
      // kernel can decide without dividing (see similarityAtLeast).
      NewState = Model.similarityAtLeast(TheAnalyzer.threshold())
                     ? PhaseState::InPhase
                     : PhaseState::Transition;
      if (State == PhaseState::Transition && NewState == PhaseState::InPhase)
        enterPhase();
    } else {
      double Similarity = Model.similarity();
      NewState = TheAnalyzer.processValue(Similarity);
      if (State == PhaseState::Transition &&
          NewState == PhaseState::InPhase) {
        enterPhase();
      } else if (State == PhaseState::InPhase &&
                 NewState == PhaseState::InPhase) {
        TheAnalyzer.updateStats(Similarity);
      }
    }

    if (State == PhaseState::InPhase &&
        NewState == PhaseState::Transition) {
      leavePhase();
    }

    State = NewState;
    return State;
  }

  FastWindowedModel<M, Policy, ArithT> Model;
  AnalyzerT TheAnalyzer;
  PhaseState State = PhaseState::Transition;
  uint64_t LastAnchor = 0;
  SiteIndex Sites;
};

template <ModelKind M, TWPolicyKind Policy, typename ArithT>
std::unique_ptr<FastDetectorBase>
makeForAnalyzer(const DetectorConfig &C, SiteIndex NumSites, ArithT Arith) {
  switch (C.TheAnalyzer) {
  case AnalyzerKind::Threshold:
    return std::make_unique<
        FastPhaseDetector<M, Policy, AnalyzerKind::Threshold, ArithT>>(
        C, NumSites, Arith);
  case AnalyzerKind::Average:
    return std::make_unique<
        FastPhaseDetector<M, Policy, AnalyzerKind::Average, ArithT>>(
        C, NumSites, Arith);
  case AnalyzerKind::Hysteresis:
    return std::make_unique<
        FastPhaseDetector<M, Policy, AnalyzerKind::Hysteresis, ArithT>>(
        C, NumSites, Arith);
  }
  return nullptr;
}

template <ModelKind M, typename ArithT>
std::unique_ptr<FastDetectorBase>
makeForPolicy(const DetectorConfig &C, SiteIndex NumSites, ArithT Arith) {
  switch (C.Window.TWPolicy) {
  case TWPolicyKind::Constant:
    return makeForAnalyzer<M, TWPolicyKind::Constant>(C, NumSites, Arith);
  case TWPolicyKind::Adaptive:
    return makeForAnalyzer<M, TWPolicyKind::Adaptive>(C, NumSites, Arith);
  }
  return nullptr;
}

template <typename ArithT>
std::unique_ptr<FastDetectorBase>
makeForModel(const DetectorConfig &C, SiteIndex NumSites, ArithT Arith) {
  switch (C.Model) {
  case ModelKind::UnweightedSet:
    return makeForPolicy<ModelKind::UnweightedSet>(C, NumSites, Arith);
  case ModelKind::WeightedSet:
    return makeForPolicy<ModelKind::WeightedSet>(C, NumSites, Arith);
  case ModelKind::ManhattanBBV:
    return makeForPolicy<ModelKind::ManhattanBBV>(C, NumSites, Arith);
  }
  return nullptr;
}

} // namespace

size_t opd::fastShapeIndex(const DetectorConfig &Config) {
  return (static_cast<size_t>(Config.Model) * 2 +
          static_cast<size_t>(Config.Window.TWPolicy)) *
             3 +
         static_cast<size_t>(Config.TheAnalyzer);
}

std::unique_ptr<FastDetectorBase>
opd::makeFastDetector(const DetectorConfig &Config, SiteIndex NumSites) {
  return makeForModel(Config, NumSites, PlainKernelArith());
}

std::unique_ptr<FastDetectorBase>
opd::makeCheckedFastDetector(const DetectorConfig &Config, SiteIndex NumSites,
                             KernelValueProbe &Probe) {
  return makeForModel(Config, NumSites, CheckedKernelArith(Probe));
}
