//===- core/PhaseDetector.cpp - The online phase detector --------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "core/PhaseDetector.h"

#include "support/Format.h"

#include <algorithm>

using namespace opd;

DetectorObserver::~DetectorObserver() = default;

OnlineDetector::~OnlineDetector() = default;

void OnlineDetector::consumeTrace(const SiteIndex *Elements,
                                  size_t NumElements, StateSequence &States,
                                  std::vector<uint64_t> &AnchoredStarts) {
  size_t Batch = batchSize();
  assert(Batch > 0 && "batch size must be positive");
  PhaseState Prev = PhaseState::Transition;
  for (uint64_t Offset = 0; Offset < NumElements; Offset += Batch) {
    size_t N = std::min<size_t>(Batch, NumElements - Offset);
    PhaseState S = processBatch(Elements + Offset, N);
    // One state per input element (the batch shares its state).
    States.append(S, N);
    if (Prev == PhaseState::Transition && S == PhaseState::InPhase)
      AnchoredStarts.push_back(lastPhaseStartEstimate());
    Prev = S;
  }
}

PhaseDetector::PhaseDetector(const WindowConfig &Window, ModelKind Model,
                             std::unique_ptr<Analyzer> TheAnalyzer,
                             SiteIndex NumSites, KernelValueProbe *Probe)
    : Model(Window, Model, NumSites, Probe),
      TheAnalyzer(std::move(TheAnalyzer)) {
  assert(this->TheAnalyzer && "detector requires an analyzer");
}

template <bool Observed>
PhaseState PhaseDetector::processBatchImpl(const SiteIndex *Elements,
                                           size_t N) {
  // Figure 3: the model consumes the new profile elements and updates the
  // windows.
  for (size_t I = 0; I != N; ++I)
    Model.consume(Elements[I]);

  // Until the windows fill, the detector reports T (Figure 2, row B).
  PhaseState NewState;
  if (!Model.windowsFull()) {
    NewState = PhaseState::Transition;
  } else {
    double Similarity = Model.similarity();
    NewState = TheAnalyzer->processValue(Similarity);
    if constexpr (Observed)
      Observer->onEvaluation(Model.consumed(), Similarity, NewState,
                             TheAnalyzer->confidence());

    if (State == PhaseState::Transition &&
        NewState == PhaseState::InPhase) {
      // Start phase: anchor the TW at the phase start and reset the
      // analyzer's phase statistics.
      LastAnchor = Model.computeAnchorOffset();
      if constexpr (Observed)
        Observer->onAnchor(Model.consumed(), Model.config().Anchor,
                           LastAnchor);
      Model.startPhase();
      if constexpr (Observed)
        if (Model.config().TWPolicy == TWPolicyKind::Adaptive)
          Observer->onWindowResize(Model.consumed(), Model.config().Resize,
                                   Model.twLength(), Model.cwLength());
      TheAnalyzer->resetStats();
    } else if (State == PhaseState::InPhase &&
               NewState == PhaseState::InPhase) {
      // In phase: track the phase's statistics.
      TheAnalyzer->updateStats(Similarity);
    }
  }

  if (State == PhaseState::InPhase && NewState == PhaseState::Transition) {
    // End phase: flush the windows; the analyzer drops the dead phase's
    // statistics (the optional reset of Figure 3).
    Model.endPhase();
    if constexpr (Observed)
      Observer->onWindowFlush(Model.consumed(), Model.cwLength());
    TheAnalyzer->resetStats();
  }

  State = NewState;
  return State;
}

PhaseState PhaseDetector::processBatch(const SiteIndex *Elements, size_t N) {
  return processBatchImpl<false>(Elements, N);
}

PhaseState PhaseDetector::processBatchObserved(const SiteIndex *Elements,
                                               size_t N) {
  assert(Observer && "observed entry point requires an attached observer");
  return processBatchImpl<true>(Elements, N);
}

void PhaseDetector::reset() {
  Model.reset();
  TheAnalyzer->reset();
  State = PhaseState::Transition;
  LastAnchor = 0;
}

std::string PhaseDetector::describe() const {
  const WindowConfig &W = Model.config();
  std::string Out = modelKindName(Model.modelKind());
  Out += " ";
  Out += twPolicyName(W.TWPolicy);
  Out += "-tw cw=" + std::to_string(W.CWSize) +
         " tw=" + std::to_string(W.TWSize) +
         " skip=" + std::to_string(W.SkipFactor);
  if (W.TWPolicy == TWPolicyKind::Adaptive) {
    Out += std::string(" ") + anchorKindName(W.Anchor) + "/" +
           resizeKindName(W.Resize);
  }
  Out += " ";
  Out += TheAnalyzer->describe();
  return Out;
}
