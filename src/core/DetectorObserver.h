//===- core/DetectorObserver.h - Detector introspection hooks ---*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The opt-in observability interface of the detection pipeline. An
/// attached DetectorObserver receives a callback for every internal
/// decision a detector run makes: similarity evaluations with the
/// analyzer's verdict, anchor computations, trailing-window resizes and
/// flushes, and phase open/close transitions. The paper's evaluation
/// reasons about exactly these internals (window churn in Figure 2,
/// analyzer decisions in Figure 3, anchoring in Section 5); the observer
/// makes them visible without changing detector behavior.
///
/// Callbacks are emitted from two levels:
///
///  * PhaseDetector emits the model/analyzer events (onEvaluation,
///    onAnchor, onWindowResize, onWindowFlush) as it processes batches;
///  * runDetector() emits the stream events (onRunBegin, onPhaseBegin,
///    onPhaseEnd, onRunEnd) at exact element offsets, so the observed
///    phase intervals match DetectorRun::DetectedPhases by construction.
///
/// The documented event order per batch is: onEvaluation first, then on a
/// T->P flip onAnchor followed by onWindowResize (Adaptive TW only)
/// followed by onPhaseBegin; on a P->T flip onWindowFlush followed by
/// onPhaseEnd. ObserverTest asserts this state machine and
/// docs/OBSERVABILITY.md specifies it.
///
/// All callbacks default to no-ops. Observation is zero-cost when no
/// observer is attached: runDetector() selects between an instrumented
/// and an uninstrumented instantiation of the streaming loop (and of
/// PhaseDetector::processBatch) once per run, so the unobserved hot
/// path compiles to the same code as an observer-free build
/// (BenchPerf's BM_DetectorObserved measures the attached cost).
///
//===----------------------------------------------------------------------===//

#ifndef OPD_CORE_DETECTOROBSERVER_H
#define OPD_CORE_DETECTOROBSERVER_H

#include "core/WindowedModel.h"
#include "trace/StateSequence.h"

#include <cstdint>

namespace opd {

/// Introspection hooks for one detector run. Offsets are global element
/// offsets into the profile-element stream. Observers must not mutate the
/// detector; a run with an observer attached produces output identical to
/// an unobserved run.
class DetectorObserver {
public:
  virtual ~DetectorObserver();

  /// A run over a trace of \p TraceSize elements begins; the detector
  /// consumes \p BatchSize elements (the skipFactor) per evaluation.
  virtual void onRunBegin(uint64_t TraceSize, uint64_t BatchSize) {
    (void)TraceSize;
    (void)BatchSize;
  }

  /// The run ended after \p Consumed elements.
  virtual void onRunEnd(uint64_t Consumed) { (void)Consumed; }

  /// The model compared full windows at \p Offset: the similarity value,
  /// the analyzer's P/T verdict, and its decision confidence.
  virtual void onEvaluation(uint64_t Offset, double Similarity,
                            PhaseState Decision, double Confidence) {
    (void)Offset;
    (void)Similarity;
    (void)Decision;
    (void)Confidence;
  }

  /// A T->P flip at \p Offset computed an anchor under \p Kind: the
  /// detector estimates the phase actually began at \p AnchorOffset.
  virtual void onAnchor(uint64_t Offset, AnchorKind Kind,
                        uint64_t AnchorOffset) {
    (void)Offset;
    (void)Kind;
    (void)AnchorOffset;
  }

  /// An Adaptive TW was resized at a phase start under \p Kind; the
  /// windows now hold \p TWLength and \p CWLength elements.
  virtual void onWindowResize(uint64_t Offset, ResizeKind Kind,
                              uint64_t TWLength, uint64_t CWLength) {
    (void)Offset;
    (void)Kind;
    (void)TWLength;
    (void)CWLength;
  }

  /// A phase end flushed both windows at \p Offset, reseeding the CW with
  /// \p SeedLength elements (Figure 2, rows F-G).
  virtual void onWindowFlush(uint64_t Offset, uint64_t SeedLength) {
    (void)Offset;
    (void)SeedLength;
  }

  /// The per-element state flipped T->P: a detected phase begins at
  /// element \p Offset, with the anchored start estimate
  /// \p AnchorEstimate (== Offset for detectors without anchoring).
  virtual void onPhaseBegin(uint64_t Offset, uint64_t AnchorEstimate) {
    (void)Offset;
    (void)AnchorEstimate;
  }

  /// The per-element state flipped P->T (or the trace ended in P): the
  /// open phase ends at element \p Offset (exclusive).
  virtual void onPhaseEnd(uint64_t Offset) { (void)Offset; }
};

} // namespace opd

#endif // OPD_CORE_DETECTOROBSERVER_H
