//===- core/PhaseMonitor.h - Client-facing phase event API ------*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The integration surface a dynamic optimization system actually wants:
/// instead of polling per-element states, a client registers callbacks
/// and feeds profile elements; PhaseMonitor invokes onPhaseStart /
/// onPhaseEnd at the transitions, passing phase identity (via the
/// recurring-phase tracker) and the detector's anchored start estimate.
/// `examples/adaptive_jit` shows the polling style; this wraps the same
/// machinery behind an event API and keeps running statistics a client
/// can consult when sizing its optimizations.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_CORE_PHASEMONITOR_H
#define OPD_CORE_PHASEMONITOR_H

#include "core/DetectorConfig.h"
#include "core/RecurringPhases.h"
#include "support/Statistics.h"

#include <functional>
#include <memory>

namespace opd {

/// Information handed to the phase-start callback.
struct PhaseStartEvent {
  /// Offset of the element whose evaluation flagged the phase.
  uint64_t DetectedAt;
  /// The detector's anchor-based estimate of the true phase start.
  uint64_t EstimatedStart;
  /// Analyzer confidence at detection time, in [0, 1].
  double Confidence;
};

/// Information handed to the phase-end callback.
struct PhaseEndEvent {
  uint64_t Start; ///< DetectedAt of the matching start event.
  uint64_t End;   ///< Offset just past the phase's last element.
  /// Identity assigned by the recurring-phase tracker.
  unsigned PhaseId;
  /// True if this phase matched a previously completed phase.
  bool Recurrence;
};

/// Wraps a PhaseDetector and a RecurringPhaseTracker behind an event
/// interface. Not thread-safe; one monitor per profiled thread.
class PhaseMonitor {
public:
  using StartCallback = std::function<void(const PhaseStartEvent &)>;
  using EndCallback = std::function<void(const PhaseEndEvent &)>;

  /// Builds the monitor. \p SignatureMatchThreshold controls recurrence
  /// matching (see PhaseLibrary).
  PhaseMonitor(const DetectorConfig &Config, SiteIndex NumSites,
               double SignatureMatchThreshold = 0.7);

  /// Registers the callbacks (either may be null).
  void onPhaseStart(StartCallback CB) { StartCB = std::move(CB); }
  void onPhaseEnd(EndCallback CB) { EndCB = std::move(CB); }

  /// Feeds \p N profile elements (any N; the monitor batches internally
  /// by the configured skip factor).
  void addElements(const SiteIndex *Elements, size_t N);

  /// Flushes: if a phase is open, ends it and fires the end callback.
  void finish();

  /// Current state.
  PhaseState state() const { return Detector->state(); }

  /// Elements consumed so far.
  uint64_t consumed() const { return Consumed; }

  /// Completed-phase length statistics (elements).
  const RunningStats &phaseLengths() const { return PhaseLengths; }

  /// Number of distinct phase identities seen.
  size_t numDistinctPhases() const {
    return Tracker.numDistinctPhases();
  }

private:
  void processBatch(const SiteIndex *Elements, size_t N);

  std::unique_ptr<PhaseDetector> Detector;
  RecurringPhaseTracker Tracker;
  StartCallback StartCB;
  EndCallback EndCB;
  std::vector<SiteIndex> Pending; ///< partial batch buffer
  uint64_t Consumed = 0;
  uint64_t OpenPhaseStart = 0;
  bool PhaseOpen = false;
  RunningStats PhaseLengths;
};

} // namespace opd

#endif // OPD_CORE_PHASEMONITOR_H
