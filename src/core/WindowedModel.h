//===- core/WindowedModel.h - CW/TW window machinery ------------*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// WindowedModel implements the similarity-model component of the
/// framework (Figure 1): it maintains the trailing window (TW) and
/// current window (CW) over the profile-element stream under a window
/// policy, feeds a SimilarityKernel, and provides the anchor/resize
/// operations of Section 5.
///
/// Window mechanics (Figure 2): new elements enter the CW; once the CW is
/// full, its oldest element crosses into the TW. A Constant TW drops its
/// oldest element when over capacity; an Adaptive TW grows without bound
/// while a phase is open (after startPhase()). endPhase() flushes both
/// windows, keeping the last skipFactor elements as the new CW seed, and
/// the detector reports T until the windows refill.
///
/// Anchoring (Section 5): at a phase start the anchor point is either one
/// element right of the rightmost noisy TW element (RN) or the leftmost
/// non-noisy TW element (LNN), where "noisy" means present in the TW but
/// absent from the CW. Under the Adaptive policy the TW is then resized:
/// Slide keeps the TW length and moves it right (shrinking the CW, which
/// keeps being compared while it refills); Move shrinks the TW to start
/// at the anchor and leaves the CW alone.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_CORE_WINDOWEDMODEL_H
#define OPD_CORE_WINDOWEDMODEL_H

#include "core/SimilarityKernel.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace opd {

/// Trailing-window policies (Section 2, "Window Policy").
enum class TWPolicyKind : uint8_t {
  Constant, ///< TW keeps a fixed size.
  Adaptive, ///< TW grows to hold the whole current phase.
};

/// Anchor-point policies (Section 5).
enum class AnchorKind : uint8_t {
  RightmostNoisy,   ///< RN: one right of the rightmost noisy element.
  LeftmostNonNoisy, ///< LNN: the leftmost non-noisy element.
};

/// TW resize policies applied at the anchor (Section 5).
enum class ResizeKind : uint8_t {
  Slide, ///< Slide the TW right, shrinking the CW.
  Move,  ///< Move the TW's left boundary right, shrinking the TW.
};

const char *twPolicyName(TWPolicyKind Kind);
const char *anchorKindName(AnchorKind Kind);
const char *resizeKindName(ResizeKind Kind);

/// The window-policy parameters of one detector instantiation.
struct WindowConfig {
  /// Current-window size in profile elements.
  uint32_t CWSize = 1000;
  /// Trailing-window (initial/constant) size.
  uint32_t TWSize = 1000;
  /// Elements consumed per similarity evaluation. 1 gives the paper's
  /// most-responsive detectors; SkipFactor == CWSize == TWSize with a
  /// Constant TW models the extant fixed-interval approach.
  uint32_t SkipFactor = 1;
  TWPolicyKind TWPolicy = TWPolicyKind::Constant;
  AnchorKind Anchor = AnchorKind::RightmostNoisy;
  ResizeKind Resize = ResizeKind::Slide;

  /// Field-wise equality, including fields a given policy never reads
  /// (analysis/ConfigCanon.h normalizes those before comparing).
  friend bool operator==(const WindowConfig &A, const WindowConfig &B) {
    return A.CWSize == B.CWSize && A.TWSize == B.TWSize &&
           A.SkipFactor == B.SkipFactor && A.TWPolicy == B.TWPolicy &&
           A.Anchor == B.Anchor && A.Resize == B.Resize;
  }
  friend bool operator!=(const WindowConfig &A, const WindowConfig &B) {
    return !(A == B);
  }
};

/// Window state machine + similarity kernel. The PhaseDetector drives it
/// per Figure 3: consume() per element, windowsFull()/similarity() at
/// evaluation points, startPhase()/endPhase() at state transitions.
class WindowedModel {
public:
  /// \p Probe, when non-null, swaps the kernel for its
  /// CheckedKernelArith-instrumented twin so every arithmetic step is
  /// overflow-checked and recorded (the KernelBounds shadow mode);
  /// production callers leave it null and get the plain kernel.
  WindowedModel(const WindowConfig &Config, ModelKind Model,
                SiteIndex NumSites, KernelValueProbe *Probe = nullptr);

  /// Consumes one profile element.
  void consume(SiteIndex S);

  /// True when both windows hold enough elements to compare: the CW is at
  /// capacity (or refilling after a Slide anchor) and the TW is at least
  /// its configured size.
  bool windowsFull() const;

  /// The similarity of the current windows (kernel-defined).
  double similarity() { return Kernel->similarity(); }

  /// Computes the anchor offset (global element offset where the phase
  /// is considered to begin) without modifying the windows. Valid only
  /// when windowsFull().
  uint64_t computeAnchorOffset() const;

  /// Marks a phase start: anchors and resizes the TW (Adaptive policy
  /// only; a Constant TW is unaffected) and switches the TW to growth
  /// mode under the Adaptive policy.
  void startPhase();

  /// Marks a phase end: flushes both windows, keeping the last skipFactor
  /// elements as the new CW seed (Figure 2, rows F-G).
  void endPhase();

  /// Clears everything, ready to consume a fresh stream.
  void reset();

  /// Total number of elements consumed so far.
  uint64_t consumed() const { return GlobalConsumed; }

  /// Current window sizes (for tests and diagnostics).
  uint64_t cwLength() const { return CWLen; }
  uint64_t twLength() const { return TWLen; }

  const WindowConfig &config() const { return Config; }
  ModelKind modelKind() const { return Model; }

  /// Direct kernel access (tests compare against brute force).
  const SimilarityKernel &kernel() const { return *Kernel; }

  /// The element buffer's dead prefix (elements the windows have slid
  /// past) is erased once it exceeds this many elements and outweighs the
  /// live suffix; below the threshold the memmove would cost more than
  /// the slack is worth. Public so tests can exercise compaction right at
  /// the boundary.
  static constexpr size_t CompactionThreshold = 65536;

private:
  /// Global offset of the element stored at TW-relative index \p I.
  uint64_t offsetOfTWIndex(uint64_t I) const {
    return GlobalConsumed - (TWLen + CWLen) + I;
  }

  /// Anchor position within the TW, in [0, TWLen].
  uint64_t anchorPosition() const;

  /// Drops \p N elements from the TW's left edge.
  void dropTWPrefix(uint64_t N);

  void compactBuffer();

  WindowConfig Config;
  ModelKind Model;
  std::unique_ptr<SimilarityKernel> Kernel;

  /// Element storage: TW = Buffer[Head, Head+TWLen), CW follows it.
  std::vector<SiteIndex> Buffer;
  size_t Head = 0;
  uint64_t TWLen = 0;
  uint64_t CWLen = 0;

  /// A phase is currently open (between startPhase and endPhase).
  bool PhaseOpen = false;
  /// Adaptive TW is currently growing (phase open).
  bool InPhaseGrowth = false;
  /// After a Slide anchor the CW is below capacity but comparisons
  /// continue while it refills.
  bool PartialCW = false;

  uint64_t GlobalConsumed = 0;
};

} // namespace opd

#endif // OPD_CORE_WINDOWEDMODEL_H
