//===- core/MultiScale.h - Multi-scale (hierarchical) detection -*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 2 observes that "profile elements may form a hierarchy of
/// phases ... Ideally, an online phase detector will find this hierarchy
/// so that the detector's client can exploit it", but the paper's
/// detectors produce flat structures. MultiScaleDetector is the natural
/// extension: a bank of framework detectors with geometrically growing
/// window sizes, each sensitive to phases around its own scale (the
/// CW-vs-MPL relationship of Table 2). Its per-level outputs can be
/// scored against per-MPL baselines, and buildPhaseHierarchy() nests the
/// levels' phases into the hierarchy tree.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_CORE_MULTISCALE_H
#define OPD_CORE_MULTISCALE_H

#include "core/DetectorConfig.h"
#include "trace/BranchTrace.h"
#include "trace/StateSequence.h"

#include <memory>
#include <vector>

namespace opd {

/// A bank of framework detectors at geometrically increasing window
/// sizes. Level 0 is the finest scale.
class MultiScaleDetector {
public:
  struct Options {
    /// CW (= TW) size of level 0.
    uint32_t BaseCWSize = 500;
    /// CW size multiplier between adjacent levels.
    uint32_t ScaleFactor = 10;
    /// Number of levels.
    unsigned NumLevels = 3;
    /// Shared policies for every level.
    TWPolicyKind TWPolicy = TWPolicyKind::Adaptive;
    ModelKind Model = ModelKind::UnweightedSet;
    AnalyzerKind TheAnalyzer = AnalyzerKind::Threshold;
    double AnalyzerParam = 0.6;
  };

  MultiScaleDetector(const Options &Opts, SiteIndex NumSites);

  /// Feeds one element to every level; returns the per-level states
  /// (index 0 = finest). The reference stays valid until the next call.
  const std::vector<PhaseState> &processElement(SiteIndex S);

  unsigned numLevels() const { return static_cast<unsigned>(Levels.size()); }

  /// CW size of level \p L.
  uint32_t levelCWSize(unsigned L) const;

  /// Clears all levels.
  void reset();

private:
  std::vector<std::unique_ptr<PhaseDetector>> Levels;
  std::vector<PhaseState> States;
};

/// Per-level output of a multi-scale run.
struct MultiScaleRun {
  /// One sequence per level, finest first; all cover the whole trace.
  std::vector<StateSequence> LevelStates;
};

/// Streams \p Trace through \p Detector (reset first).
MultiScaleRun runMultiScale(MultiScaleDetector &Detector,
                            const BranchTrace &Trace);

/// One node of the detected phase hierarchy: a phase at some level with
/// the finer-scale phases nested inside it.
struct PhaseHierarchyNode {
  PhaseInterval Interval;
  unsigned Level; ///< Level the phase was detected at (coarsest = max).
  std::vector<PhaseHierarchyNode> Children;
};

/// Nests the per-level phases of \p Run into a hierarchy: coarser-level
/// phases become ancestors of the finer-level phases they contain.
/// Finer phases that straddle a coarser boundary are attached to the
/// coarse phase containing their start. Returns the roots (coarsest
/// level's phases plus any finer phases not covered by a coarser one).
std::vector<PhaseHierarchyNode> buildPhaseHierarchy(const MultiScaleRun &Run);

} // namespace opd

#endif // OPD_CORE_MULTISCALE_H
