//===- core/RecurringPhases.cpp - Recurring-phase identification ------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "core/RecurringPhases.h"

#include <algorithm>

using namespace opd;

double PhaseSignature::similarity(const PhaseSignature &A,
                                  const PhaseSignature &B) {
  assert(A.Counts.size() == B.Counts.size() &&
         "signatures must cover the same site table");
  if (A.Total == 0 || B.Total == 0)
    return 0.0;
  // Integer form of sum_s min(a_s/|A|, b_s/|B|), as in WeightedSetKernel.
  uint64_t MinSum = 0;
  for (size_t S = 0; S != A.Counts.size(); ++S)
    MinSum += std::min(static_cast<uint64_t>(A.Counts[S]) * B.Total,
                       static_cast<uint64_t>(B.Counts[S]) * A.Total);
  return static_cast<double>(MinSum) /
         (static_cast<double>(A.Total) * static_cast<double>(B.Total));
}

PhaseLibrary::Classification
PhaseLibrary::classify(const PhaseSignature &Sig) {
  double BestSim = -1.0;
  size_t BestId = 0;
  for (size_t I = 0; I != Signatures.size(); ++I) {
    double Sim = PhaseSignature::similarity(Sig, Signatures[I]);
    if (Sim > BestSim) {
      BestSim = Sim;
      BestId = I;
    }
  }
  if (BestSim >= MatchThreshold)
    return {static_cast<unsigned>(BestId), /*Recurrence=*/true, BestSim};
  Signatures.push_back(Sig);
  return {static_cast<unsigned>(Signatures.size() - 1),
          /*Recurrence=*/false, 0.0};
}

void RecurringPhaseTracker::observe(const SiteIndex *Elements, size_t N,
                                    PhaseState State) {
  if (State == PhaseState::InPhase) {
    if (!PhaseOpen) {
      PhaseOpen = true;
      PhaseBegin = Consumed;
      OpenSignature.clear();
    }
    for (size_t I = 0; I != N; ++I)
      OpenSignature.addElement(Elements[I]);
  } else if (PhaseOpen) {
    closePhase(Consumed);
  }
  Consumed += N;
}

void RecurringPhaseTracker::finish() {
  if (PhaseOpen)
    closePhase(Consumed);
}

void RecurringPhaseTracker::closePhase(uint64_t EndOffset) {
  PhaseLibrary::Classification C = Library.classify(OpenSignature);
  Completed.push_back(
      {{PhaseBegin, EndOffset}, C.Id, C.Recurrence, C.Similarity});
  PhaseOpen = false;
}

void RecurringPhaseTracker::reset() {
  Library.clear();
  OpenSignature.clear();
  Completed.clear();
  PhaseOpen = false;
  PhaseBegin = 0;
  Consumed = 0;
}
