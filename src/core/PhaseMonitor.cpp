//===- core/PhaseMonitor.cpp - Client-facing phase event API -----------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "core/PhaseMonitor.h"

using namespace opd;

PhaseMonitor::PhaseMonitor(const DetectorConfig &Config, SiteIndex NumSites,
                           double SignatureMatchThreshold)
    : Detector(makeDetector(Config, NumSites)),
      Tracker(NumSites, SignatureMatchThreshold) {
  Pending.reserve(Config.Window.SkipFactor);
}

void PhaseMonitor::addElements(const SiteIndex *Elements, size_t N) {
  size_t Batch = Detector->batchSize();
  for (size_t I = 0; I != N; ++I) {
    Pending.push_back(Elements[I]);
    if (Pending.size() == Batch) {
      processBatch(Pending.data(), Pending.size());
      Pending.clear();
    }
  }
}

void PhaseMonitor::processBatch(const SiteIndex *Elements, size_t N) {
  PhaseState Before = Detector->state();
  PhaseState After = Detector->processBatch(Elements, N);
  Tracker.observe(Elements, N, After);
  uint64_t BatchStart = Consumed;
  Consumed += N;

  if (Before == PhaseState::Transition && After == PhaseState::InPhase) {
    PhaseOpen = true;
    OpenPhaseStart = BatchStart;
    if (StartCB)
      StartCB({BatchStart, Detector->lastPhaseStartEstimate(),
               Detector->confidence()});
  } else if (PhaseOpen && Before == PhaseState::InPhase &&
             After == PhaseState::Transition) {
    PhaseOpen = false;
    PhaseLengths.push(static_cast<double>(BatchStart - OpenPhaseStart));
    if (EndCB) {
      assert(!Tracker.completedPhases().empty() &&
             "tracker must have closed the phase");
      const RecurringPhaseTracker::CompletedPhase &P =
          Tracker.completedPhases().back();
      EndCB({OpenPhaseStart, BatchStart, P.Id, P.Recurrence});
    }
  }
}

void PhaseMonitor::finish() {
  if (!Pending.empty()) {
    processBatch(Pending.data(), Pending.size());
    Pending.clear();
  }
  if (!PhaseOpen)
    return;
  Tracker.finish();
  PhaseOpen = false;
  PhaseLengths.push(static_cast<double>(Consumed - OpenPhaseStart));
  if (EndCB) {
    assert(!Tracker.completedPhases().empty());
    const RecurringPhaseTracker::CompletedPhase &P =
        Tracker.completedPhases().back();
    EndCB({OpenPhaseStart, Consumed, P.Id, P.Recurrence});
  }
}
