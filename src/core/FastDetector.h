//===- core/FastDetector.h - Monomorphic fast-path detectors ----*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reference PhaseDetector dispatches every kernel update through
/// SimilarityKernel's virtual interface and every decision through
/// Analyzer's — fine for one detector, but the evaluation streams the
/// same traces through thousands of configurations, and the per-element
/// virtual calls dominate.
///
/// makeFastDetector() instead picks one of NumFastShapes template
/// instantiations — one per (model x TW policy x analyzer kind) shape —
/// in which the kernel and analyzer are held by concrete final type, so
/// their per-element operations devirtualize and inline into the consume
/// loop, and consumeTrace() is overridden with a fully monomorphic loop:
/// a whole run costs a single virtual dispatch.
///
/// The fast path is an optimization, not a fork: it produces
/// bit-identical StateSequences, anchored phases, and scores to the
/// reference detector (tests/FastDetectorTest.cpp holds the two equal
/// across the entire sweep space). The reference PhaseDetector remains
/// the detector of record — it alone emits observer events, so observed
/// runs and stat collection stay on it.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_CORE_FASTDETECTOR_H
#define OPD_CORE_FASTDETECTOR_H

#include "core/DetectorConfig.h"

#include <memory>

namespace opd {

/// Abstract base of the monomorphic fast-path detectors: an
/// OnlineDetector that can additionally be re-targeted at another
/// configuration of the same shape, so sweep arenas reuse the kernel's
/// per-site count arrays across the thousands of configs sharing a
/// shape.
class FastDetectorBase : public OnlineDetector {
public:
  /// Re-targets this instantiation at \p Config — which must map to this
  /// detector's shape (fastShapeIndex) — without reallocating the
  /// kernel's per-site arrays, then resets for a fresh stream.
  virtual void reconfigure(const DetectorConfig &Config) = 0;

  /// The site-space size this instantiation's kernel arrays were built
  /// for. reconfigure() cannot change it, so reuse pools (the sweep
  /// arenas and the serving detector cache) key their free lists on
  /// (fastShapeIndex, numSites) to decide whether an instance can be
  /// re-targeted at a new stream or must be rebuilt.
  virtual SiteIndex numSites() const = 0;

  /// Enables or disables the structure-of-arrays batch kernels
  /// (core/BatchKernel.h) for this detector. Enabled by default — every
  /// batch path is unconditionally bit-identical to the scalar path (see
  /// BatchKernel.h) — but a batch kernel must refuse a configuration
  /// whose KernelBounds certificate does not admit its compiled lane
  /// plan, so certificate-aware callers (the sweep harness, tests) pass
  /// the admitsBatchLanes() verdict here before streaming. The flag
  /// survives reconfigure().
  virtual void setBatchKernels(bool Enabled) = 0;

  /// Whether the batch kernels are currently enabled (see
  /// setBatchKernels()).
  virtual bool batchKernelsEnabled() const = 0;
};

/// Number of distinct fast-path instantiations: model (3) x TW policy
/// (2) x analyzer kind (3).
constexpr size_t NumFastShapes = 18;

/// Index of \p Config's instantiation shape, in [0, NumFastShapes).
/// Configs with equal shape differ only in runtime parameters (window
/// sizes, skip factor, anchor/resize, analyzer parameter) and can share
/// one reconfigure()d detector instance.
size_t fastShapeIndex(const DetectorConfig &Config);

/// Builds the monomorphic fast-path detector for \p Config, sized for
/// \p NumSites distinct profile elements. Output is bit-identical to
/// makeDetector(Config, NumSites)'s.
std::unique_ptr<FastDetectorBase>
makeFastDetector(const DetectorConfig &Config, SiteIndex NumSites);

/// Builds the fast-path detector for \p Config with the
/// CheckedKernelArith-instrumented kernel: every kernel arithmetic step
/// is overflow-checked and its value recorded into \p Probe (which must
/// outlive the detector). This is the fast-path half of the KernelBounds
/// shadow mode (analysis/KernelBounds.h) — decision-identical to
/// makeFastDetector, plus observation.
std::unique_ptr<FastDetectorBase>
makeCheckedFastDetector(const DetectorConfig &Config, SiteIndex NumSites,
                        KernelValueProbe &Probe);

} // namespace opd

#endif // OPD_CORE_FASTDETECTOR_H
