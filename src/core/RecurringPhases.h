//===- core/RecurringPhases.h - Recurring-phase identification --*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's first future-work direction (Section 7): "extend our
/// framework to instantiate algorithms that detect phases that repeat
/// themselves. Such an enhancement would allow a dynamic optimization
/// system to record the efficacy of a phase-based optimization at the
/// end of the phase and determine whether to employ the same optimization
/// when the phase reoccurs."
///
/// PhaseSignature summarizes a phase as the frequency vector of its
/// profile elements (the adaptive TW already holds exactly this
/// information when a phase ends). PhaseLibrary stores the signatures of
/// completed phases; RecurringPhaseTracker runs beside any online
/// detector, accumulates the open phase's signature, and classifies each
/// completed phase as a recurrence of a known phase or as new.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_CORE_RECURRINGPHASES_H
#define OPD_CORE_RECURRINGPHASES_H

#include "trace/ProfileElement.h"
#include "trace/StateSequence.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace opd {

/// Frequency-vector summary of one phase's profile elements.
class PhaseSignature {
  std::vector<uint32_t> Counts;
  uint64_t Total = 0;

public:
  explicit PhaseSignature(SiteIndex NumSites) : Counts(NumSites, 0) {}

  /// Folds one element into the signature.
  void addElement(SiteIndex S) {
    assert(S < Counts.size() && "site out of range");
    ++Counts[S];
    ++Total;
  }

  /// Number of elements folded in.
  uint64_t total() const { return Total; }

  /// Clears the signature for reuse.
  void clear() {
    std::fill(Counts.begin(), Counts.end(), 0);
    Total = 0;
  }

  /// Symmetric weighted similarity between two signatures (the weighted
  /// set model's measure, applied to whole phases): the sum over sites of
  /// min(relative weight in A, relative weight in B), in [0, 1].
  static double similarity(const PhaseSignature &A, const PhaseSignature &B);
};

/// A library of known phase signatures with ids.
class PhaseLibrary {
  std::vector<PhaseSignature> Signatures;
  double MatchThreshold;

public:
  /// Signatures at least \p MatchThreshold similar are the same phase.
  explicit PhaseLibrary(double MatchThreshold = 0.7)
      : MatchThreshold(MatchThreshold) {}

  /// Classifies \p Sig: returns the id of the most similar known phase if
  /// its similarity reaches the threshold (Recurrence = true), otherwise
  /// registers \p Sig as a new phase and returns its fresh id.
  struct Classification {
    unsigned Id;
    bool Recurrence;
    double Similarity; ///< Similarity to the matched phase (0 for new).
  };
  Classification classify(const PhaseSignature &Sig);

  /// Number of distinct phases registered.
  size_t size() const { return Signatures.size(); }

  /// Drops all known phases.
  void clear() { Signatures.clear(); }
};

/// Observes an online detector's output stream and identifies recurring
/// phases. Drive it with the same batches the detector consumed and the
/// state the detector returned.
class RecurringPhaseTracker {
public:
  /// One completed phase with its identity.
  struct CompletedPhase {
    PhaseInterval Interval;
    unsigned Id;
    bool Recurrence;
    double Similarity;
  };

  RecurringPhaseTracker(SiteIndex NumSites, double MatchThreshold = 0.7)
      : Library(MatchThreshold), OpenSignature(NumSites) {}

  /// Feeds one detector step: \p N elements and the state that covers
  /// them.
  void observe(const SiteIndex *Elements, size_t N, PhaseState State);

  /// Call at end of stream: closes a still-open phase.
  void finish();

  /// Completed phases in order.
  const std::vector<CompletedPhase> &completedPhases() const {
    return Completed;
  }

  /// Number of distinct phases identified so far.
  size_t numDistinctPhases() const { return Library.size(); }

  /// Clears everything (library included).
  void reset();

private:
  void closePhase(uint64_t EndOffset);

  PhaseLibrary Library;
  PhaseSignature OpenSignature;
  std::vector<CompletedPhase> Completed;
  bool PhaseOpen = false;
  uint64_t PhaseBegin = 0;
  uint64_t Consumed = 0;
};

} // namespace opd

#endif // OPD_CORE_RECURRINGPHASES_H
