//===- core/SharedScan.h - One trace pass, many detectors -------*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared-scan execution engine: runs every configuration in a
/// window-kernel shape group through a **single** pass over the trace,
/// producing per-config DetectorRuns bit-identical to running each
/// config through its own FastPhaseDetector.
///
/// The enabling observation is position purity: a detector whose
/// trailing window is not mid-phase holds windows that are a pure
/// function of the stream position — CW is the last CWSize elements,
/// TW the TWSize before them — independent of every decision the
/// detector ever made. Configs that agree on (model, CWSize, TWSize)
/// therefore share one free-running window/kernel; what differs per
/// config (skip stride, analyzer, threshold parameter, anchor/resize
/// policy) becomes a lightweight **cursor** over the shared kernel:
///
///  * Cursors whose state is a function of position (constant-TW
///    configs always; adaptive ones while out of phase) read their
///    decisions straight off the shared kernel — the per-position
///    similarity is computed once and fanned out to every threshold
///    and analyzer, instead of N kernels recomputing it.
///  * A post-flush refill is a countdown: after a phase ends at
///    position n keeping K seed elements, the windows provably stay
///    not-full (forced Transition output, no analyzer calls) until
///    position n + (CWSize - K) + TWSize, at which point the refilled
///    window bit-matches the free-running one — so a flushed cursor
///    stores only that resync position and performs zero work until
///    it passes.
///  * Only adaptive cursors *inside* a phase have decision-dependent
///    window state. Each open phase detaches a **shard** — a copy of
///    the shared kernel at phase entry, resized per the anchor — that
///    advances lazily to the owning cursors' evaluation positions.
///    Cursors that enter a phase at the same position with the same
///    anchor value and resize policy share one refcounted shard, since
///    the in-phase window evolution is decision-independent.
///
/// Cursors with the same skip stride advance in lockstep (one
/// countdown per stride bucket), so the shared window advances through
/// the trace in tight eval-to-eval bursts.
///
/// The per-config FastPhaseDetector path remains the differential
/// oracle: tests/SharedScanTest.cpp drives the full sweep grid through
/// both and requires bit-identical StateSequences, phases, and
/// anchored phases on both SIMD and portable backends.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_CORE_SHAREDSCAN_H
#define OPD_CORE_SHAREDSCAN_H

#include "core/DetectorConfig.h"
#include "core/DetectorRunner.h"

#include <memory>
#include <vector>

namespace opd {

/// The window-kernel shape a shared-scan group agrees on. Everything
/// else in a DetectorConfig (skip, analyzer, parameter, anchor, resize,
/// TW policy) is per-cursor state.
struct SharedScanKey {
  /// The similarity model.
  ModelKind Model;
  /// Current-window size.
  uint32_t CWSize;
  /// Trailing-window (initial) size.
  uint32_t TWSize;

  friend bool operator==(const SharedScanKey &A, const SharedScanKey &B) {
    return A.Model == B.Model && A.CWSize == B.CWSize && A.TWSize == B.TWSize;
  }
  friend bool operator<(const SharedScanKey &A, const SharedScanKey &B) {
    if (A.Model != B.Model)
      return A.Model < B.Model;
    if (A.CWSize != B.CWSize)
      return A.CWSize < B.CWSize;
    return A.TWSize < B.TWSize;
  }
};

/// The shape group \p Config executes under.
SharedScanKey sharedScanKey(const DetectorConfig &Config);

/// One shared-scan group: the configs (as indices into the planned
/// list) that ride one trace pass.
struct SharedScanGroup {
  /// The shared window-kernel shape.
  SharedScanKey Key;
  /// Indices into the planned config list, in plan order.
  std::vector<size_t> Members;
};

/// A sweep's configs partitioned into shared-scan groups.
struct SharedScanPlan {
  /// The groups, ordered by first appearance in the config list.
  std::vector<SharedScanGroup> Groups;

  /// Size of the largest group (0 for an empty plan).
  size_t largestGroup() const {
    size_t Largest = 0;
    for (const SharedScanGroup &G : Groups)
      Largest = std::max(Largest, G.Members.size());
    return Largest;
  }
};

/// Partitions \p Configs into shared-scan groups by sharedScanKey().
/// Groups appear in first-appearance order and members in config order,
/// so the plan is deterministic for a given config list.
SharedScanPlan planSharedScan(const std::vector<DetectorConfig> &Configs);

/// A reusable shared-scan engine for one similarity model. Like the
/// sweep's RunArena detectors, an engine is acquired per worker and
/// reconfigured per group: cursor arrays, shard pools, and kernel
/// count arrays all survive between run() calls, so a sweep performs a
/// handful of allocations per worker rather than one per group.
///
/// Engines are not thread-safe; use one per worker.
class SharedScanEngineBase {
public:
  virtual ~SharedScanEngineBase() = default;

  /// Enables or disables the SIMD batch kernels for subsequent runs,
  /// exactly as FastDetectorBase::setBatchKernels. The caller passes
  /// the merged KernelBounds admission verdict for the whole group: a
  /// group may only batch if every member's certificate admits the
  /// compiled lane plan (the shared kernel serves all of them).
  virtual void setBatchKernels(bool Enabled) = 0;
  /// Whether the batch kernels are currently enabled.
  virtual bool batchKernelsEnabled() const = 0;

  /// Runs the group over \p Elements / \p NumElements, writing config
  /// Configs[Members[I]]'s output into Runs[I] (cleared first). Every
  /// member must match this engine's model and share one
  /// sharedScanKey(); Runs must hold at least Members.size() entries.
  virtual void run(const std::vector<DetectorConfig> &Configs,
                   const std::vector<size_t> &Members,
                   const SiteIndex *Elements, size_t NumElements,
                   std::vector<DetectorRun> &Runs) = 0;

  /// The number of sites the engine was built for.
  virtual SiteIndex numSites() const = 0;
};

/// Creates a shared-scan engine for \p Model over \p NumSites sites.
std::unique_ptr<SharedScanEngineBase>
makeSharedScanEngine(ModelKind Model, SiteIndex NumSites);

} // namespace opd

#endif // OPD_CORE_SHAREDSCAN_H
