//===- core/WindowedModel.cpp - CW/TW window machinery ----------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "core/WindowedModel.h"

#include <algorithm>

using namespace opd;

const char *opd::twPolicyName(TWPolicyKind Kind) {
  switch (Kind) {
  case TWPolicyKind::Constant:
    return "constant";
  case TWPolicyKind::Adaptive:
    return "adaptive";
  }
  return "unknown";
}

const char *opd::anchorKindName(AnchorKind Kind) {
  switch (Kind) {
  case AnchorKind::RightmostNoisy:
    return "RN";
  case AnchorKind::LeftmostNonNoisy:
    return "LNN";
  }
  return "unknown";
}

const char *opd::resizeKindName(ResizeKind Kind) {
  switch (Kind) {
  case ResizeKind::Slide:
    return "slide";
  case ResizeKind::Move:
    return "move";
  }
  return "unknown";
}

WindowedModel::WindowedModel(const WindowConfig &Config, ModelKind Model,
                             SiteIndex NumSites, KernelValueProbe *Probe)
    : Config(Config), Model(Model),
      Kernel(Probe ? makeCheckedKernel(Model, NumSites, *Probe)
                   : makeKernel(Model, NumSites)) {
  assert(Config.CWSize > 0 && "current window must be nonempty");
  assert(Config.TWSize > 0 && "trailing window must be nonempty");
  assert(Config.SkipFactor > 0 && "skip factor must be positive");
}

void WindowedModel::consume(SiteIndex S) {
  ++GlobalConsumed;
  Buffer.push_back(S);

  if (CWLen < Config.CWSize) {
    // CW filling: initially, after a flush, or while refilling after a
    // Slide anchor.
    ++CWLen;
    Kernel->cwAdd(S);
    if (PartialCW && CWLen == Config.CWSize)
      PartialCW = false;
    return;
  }

  // CW is full: its oldest element crosses into the TW.
  SiteIndex Y = Buffer[Head + TWLen];
  Kernel->cwReplace(S, Y);
  bool TWGrows = InPhaseGrowth || TWLen < Config.TWSize;
  if (TWGrows) {
    Kernel->twAdd(Y);
    ++TWLen;
  } else {
    SiteIndex Z = Buffer[Head];
    Kernel->twReplace(Y, Z);
    ++Head; // TW keeps its length; both windows shift right by one.
  }
  compactBuffer();
}

bool WindowedModel::windowsFull() const {
  if (PhaseOpen)
    return TWLen > 0 && CWLen > 0;
  return CWLen == Config.CWSize && TWLen >= Config.TWSize;
}

uint64_t WindowedModel::anchorPosition() const {
  assert(Head + TWLen + CWLen == Buffer.size() &&
         "window bookkeeping out of sync");
  if (Config.Anchor == AnchorKind::RightmostNoisy) {
    // One element right of the rightmost TW element absent from the CW;
    // the whole TW is stable when nothing is noisy.
    for (uint64_t I = TWLen; I != 0; --I)
      if (!Kernel->inCW(Buffer[Head + I - 1]))
        return I;
    return 0;
  }
  // LeftmostNonNoisy: the first TW element present in the CW; the phase
  // is empty (anchor at the CW edge) when the whole TW is noisy.
  for (uint64_t I = 0; I != TWLen; ++I)
    if (Kernel->inCW(Buffer[Head + I]))
      return I;
  return TWLen;
}

uint64_t WindowedModel::computeAnchorOffset() const {
  return offsetOfTWIndex(anchorPosition());
}

void WindowedModel::startPhase() {
  if (Config.TWPolicy == TWPolicyKind::Adaptive) {
    uint64_t A = anchorPosition();
    if (Config.Resize == ResizeKind::Slide) {
      uint64_t Take = std::min(A, CWLen);
      dropTWPrefix(A);
      // Extend the TW over the CW's oldest elements to restore its
      // length; the CW keeps being compared while it refills.
      for (uint64_t I = 0; I != Take; ++I) {
        SiteIndex X = Buffer[Head + TWLen];
        Kernel->moveCWToTW(X);
        ++TWLen;
        --CWLen;
      }
      if (CWLen < Config.CWSize)
        PartialCW = true;
    } else {
      dropTWPrefix(A);
    }
    InPhaseGrowth = true;
  }
  PhaseOpen = true;
}

void WindowedModel::endPhase() {
  // Flush both windows; the last skipFactor elements seed the new CW
  // (Figure 2, rows F-G). The seed is clamped to the CW capacity: with a
  // skip factor above the CW size the CW could otherwise exceed its
  // capacity permanently and the windows would never refill.
  uint64_t Keep = std::min<uint64_t>(
      std::min<uint64_t>(Config.SkipFactor, Config.CWSize),
      TWLen + CWLen);
  // Slide the seed to the front in place — no temporary vector, and the
  // buffer keeps its capacity for the refill that follows.
  std::copy(Buffer.end() - static_cast<ptrdiff_t>(Keep), Buffer.end(),
            Buffer.begin());
  Buffer.resize(Keep);
  Head = 0;
  TWLen = 0;
  CWLen = Keep;
  Kernel->reset();
  for (SiteIndex S : Buffer)
    Kernel->cwAdd(S);
  InPhaseGrowth = false;
  PartialCW = false;
  PhaseOpen = false;
}

void WindowedModel::reset() {
  Buffer.clear();
  Head = 0;
  TWLen = CWLen = 0;
  InPhaseGrowth = PartialCW = PhaseOpen = false;
  GlobalConsumed = 0;
  Kernel->reset();
}

void WindowedModel::dropTWPrefix(uint64_t N) {
  assert(N <= TWLen && "dropping more than the TW holds");
  for (uint64_t I = 0; I != N; ++I)
    Kernel->twRemove(Buffer[Head + I]);
  Head += N;
  TWLen -= N;
}

void WindowedModel::compactBuffer() {
  if (Head > CompactionThreshold && Head * 2 > Buffer.size()) {
    Buffer.erase(Buffer.begin(),
                 Buffer.begin() + static_cast<ptrdiff_t>(Head));
    Head = 0;
  }
}
