//===- core/DetectorConfig.cpp - Detector instantiation configs -------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "core/DetectorConfig.h"

#include "support/Format.h"

using namespace opd;

std::string DetectorConfig::describe() const {
  std::string Out = modelKindName(Model);
  Out += std::string(" ") + twPolicyName(Window.TWPolicy);
  Out += " cw=" + std::to_string(Window.CWSize);
  Out += " tw=" + std::to_string(Window.TWSize);
  Out += " skip=" + std::to_string(Window.SkipFactor);
  if (Window.TWPolicy == TWPolicyKind::Adaptive)
    Out += std::string(" ") + anchorKindName(Window.Anchor) + "/" +
           resizeKindName(Window.Resize);
  Out += std::string(" ") + analyzerKindName(TheAnalyzer) + " " +
         formatDouble(AnalyzerParam, 2);
  return Out;
}

std::unique_ptr<PhaseDetector> opd::makeDetector(const DetectorConfig &Config,
                                                 SiteIndex NumSites) {
  return std::make_unique<PhaseDetector>(
      Config.Window, Config.Model,
      makeAnalyzer(Config.TheAnalyzer, Config.AnalyzerParam), NumSites);
}

std::unique_ptr<PhaseDetector>
opd::makeCheckedDetector(const DetectorConfig &Config, SiteIndex NumSites,
                         KernelValueProbe &Probe) {
  return std::make_unique<PhaseDetector>(
      Config.Window, Config.Model,
      makeAnalyzer(Config.TheAnalyzer, Config.AnalyzerParam), NumSites,
      &Probe);
}
