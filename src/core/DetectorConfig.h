//===- core/DetectorConfig.h - Detector instantiation configs ---*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A DetectorConfig captures one point in the framework's parameter space
/// (window policy x model policy x analyzer policy). The evaluation
/// instantiates thousands of these; makeDetector() builds the concrete
/// PhaseDetector.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_CORE_DETECTORCONFIG_H
#define OPD_CORE_DETECTORCONFIG_H

#include "core/PhaseDetector.h"

#include <memory>
#include <string>

namespace opd {

/// One instantiation of the framework.
struct DetectorConfig {
  WindowConfig Window;
  ModelKind Model = ModelKind::UnweightedSet;
  AnalyzerKind TheAnalyzer = AnalyzerKind::Threshold;
  /// Threshold value or average delta, depending on TheAnalyzer.
  double AnalyzerParam = 0.5;

  /// One-line description for tables.
  std::string describe() const;

  /// True for the "Fixed Interval" policy of the prior literature:
  /// Constant TW with skipFactor == CW size (== TW size).
  bool isFixedInterval() const {
    return Window.TWPolicy == TWPolicyKind::Constant &&
           Window.SkipFactor == Window.CWSize;
  }

  /// Field-wise equality (exact on AnalyzerParam; sweep dimensions are
  /// enumerated, not computed, so exact comparison is meaningful).
  friend bool operator==(const DetectorConfig &A, const DetectorConfig &B) {
    return A.Window == B.Window && A.Model == B.Model &&
           A.TheAnalyzer == B.TheAnalyzer &&
           A.AnalyzerParam == B.AnalyzerParam;
  }
  friend bool operator!=(const DetectorConfig &A, const DetectorConfig &B) {
    return !(A == B);
  }
};

/// Builds the detector \p Config describes, sized for \p NumSites
/// distinct profile elements.
std::unique_ptr<PhaseDetector> makeDetector(const DetectorConfig &Config,
                                            SiteIndex NumSites);

/// Builds the detector \p Config describes with the
/// CheckedKernelArith-instrumented kernel: every kernel arithmetic step
/// is overflow-checked and its value recorded into \p Probe (which must
/// outlive the detector). The shadow mode of the KernelBounds
/// certificates (analysis/KernelBounds.h) — behaviorally identical to
/// makeDetector, plus observation.
std::unique_ptr<PhaseDetector> makeCheckedDetector(const DetectorConfig &Config,
                                                   SiteIndex NumSites,
                                                   KernelValueProbe &Probe);

} // namespace opd

#endif // OPD_CORE_DETECTORCONFIG_H
