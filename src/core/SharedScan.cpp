//===- core/SharedScan.cpp - One trace pass, many detectors ------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
//
// Bit-identity argument, in terms of the reference FastWindowedModel
// (core/FastKernels.h) a per-config detector drives:
//
//  1. Out of phase, the model's consume() never reads PhaseOpen, and a
//     constant-equivalent TW (adaptive with InPhaseGrowth=false behaves
//     identically) caps at TWSize — so the windows are exactly
//     CW = trace(q-CW, q], TW = trace(q-CW-TW, q-CW] at every position
//     q, which is what the engine's one free-running window maintains.
//     Kernel counts are a function of window contents, and the weighted
//     kernel's MinSum recompute is exact integer arithmetic over those
//     counts, so decisions off the shared kernel match the reference's
//     bit for bit.
//
//  2. endPhase() at position n keeps Keep = min(skip, CWSize,
//     TWLen+CWLen) seed elements and flushes the kernel. From there the
//     model refills: CWSize-Keep elements to fill the CW, then TWSize
//     rotations to fill the TW, during which windowsFull() is false —
//     every evaluation is a forced Transition and no analyzer runs. At
//     position n + (CWSize-Keep) + TWSize the refilled windows hold
//     exactly the last CWSize elements and the TWSize before them:
//     the free-running window again (1). So a flushed cursor stores
//     ResyncAt = n + (CWSize-Keep) + TWSize and is a pure countdown.
//
//  3. In phase, an adaptive model diverges: startPhase() drops the TW
//     prefix at the anchor (optionally sliding CW elements across), and
//     InPhaseGrowth makes every subsequent consume grow the TW. But
//     none of that depends on any later decision — the evolution is a
//     pure function of (entry position, anchor value, resize kind) and
//     the trace. That tuple keys the engine's refcounted shards: a
//     shard seeds its kernel from the shared kernel (phase entry only
//     happens synced, where the cursor's window IS the shared window by
//     (1)), applies startPhase's resize, and then consumes with the
//     in-phase specialization of the reference consume (TWGrows is
//     unconditionally true, endPhase never reads the buffer beyond the
//     kept seed). While a phase is open the reference windowsFull() is
//     TWLen>0 && CWLen>0, which the shard checks before each decision.
//
//  4. Constant-TW models also flush at endPhase, but in phase their
//     consume path is the free-running one (TWGrows is false once the
//     TW is full, PhaseOpen's windowsFull() variant is always true for
//     a full window) — so constant cursors never need shards at all.
//
// Analyzer state is tiny and per-cursor: the threshold compare, the
// average analyzer's mean-only Welford stats (reset on both phase
// edges, updated on P->P with the evaluation's similarity), and the
// hysteresis analyzer's internal state (which the reference only
// advances when windowsFull() — forced-Transition evaluations must NOT
// touch it, and its resetStats() is a no-op, so it survives flushes).
//
// The multi-threshold fan-out: at each evaluation position the shared
// similarity is computed once (one weighted-kernel division) and every
// synced cursor compares it — FastWeightedSetKernel::similarityAtLeast
// documents that the comparison is provably identical to the
// division-free decision the per-config path takes. Shard-backed
// decisions keep per-kernel similarityAtLeast so the PR 9 BoundLo..
// BoundHi envelope can defer dirty recomputes.
//
//===----------------------------------------------------------------------===//

#include "core/SharedScan.h"

#include "core/FastKernels.h"

#include <algorithm>
#include <map>

using namespace opd;
using namespace opd::fastkernels;

SharedScanKey opd::sharedScanKey(const DetectorConfig &Config) {
  return SharedScanKey{Config.Model, Config.Window.CWSize,
                       Config.Window.TWSize};
}

SharedScanPlan
opd::planSharedScan(const std::vector<DetectorConfig> &Configs) {
  SharedScanPlan Plan;
  std::map<SharedScanKey, size_t> GroupOf;
  for (size_t I = 0; I != Configs.size(); ++I) {
    SharedScanKey Key = sharedScanKey(Configs[I]);
    auto [It, Inserted] = GroupOf.try_emplace(Key, Plan.Groups.size());
    if (Inserted)
      Plan.Groups.push_back(SharedScanGroup{Key, {}});
    Plan.Groups[It->second].Members.push_back(I);
  }
  return Plan;
}

namespace {

/// The engine for one similarity model. One instance serves any number
/// of groups of that model sequentially; all pools survive run() calls.
template <ModelKind M>
class SharedScanEngine final : public SharedScanEngineBase {
  using Kernel = typename KernelOf<M, PlainKernelArith>::type;

  /// A detached in-phase window for adaptive cursors: the shared kernel
  /// copied at phase entry and resized per the anchor, advancing lazily
  /// to its cursors' evaluation positions. Window layout invariant:
  /// TW = Elements[Base, Base+TWLen), CW = Elements[Base+TWLen, LastPos)
  /// with Base + TWLen + CWLen == LastPos.
  struct Shard {
    /// The detached kernel (assignment reuses its arrays).
    Kernel K;
    /// Trace offset of the TW start.
    uint64_t Base = 0;
    /// Current TW length (grows while the phase is open).
    uint64_t TWLen = 0;
    /// Current CW length (< CWSize only after a Slide resize).
    uint64_t CWLen = 0;
    /// Elements consumed so far (lazy advance high-water mark).
    uint64_t LastPos = 0;
    /// Sharing key: the evaluation position the phase opened at...
    uint64_t EntryPos = 0;
    /// ...the anchor value applied at entry...
    uint64_t AnchorVal = 0;
    /// ...and the resize policy (equal anchors evolve identically
    /// regardless of which anchor *kind* produced them).
    ResizeKind Resize = ResizeKind::Slide;
    /// Cursors currently reading this shard.
    uint32_t Refs = 0;

    explicit Shard(SiteIndex NumSites) : K(NumSites) {}
  };

  /// One config's detector state over the shared window.
  struct Cursor {
    // Config-derived constants.
    uint32_t Skip;
    AnalyzerKind Analyzer;
    TWPolicyKind Policy;
    AnchorKind Anchor;
    ResizeKind Resize;
    /// Threshold / average delta / hysteresis enter threshold.
    double P0;
    /// Hysteresis exit threshold.
    double P1;

    // Detector state.
    PhaseState State = PhaseState::Transition;
    /// First position at which the windows are full again (out of
    /// phase, evaluations before this are forced Transitions).
    uint64_t ResyncAt = 0;
    /// The anchored phase-start estimate set at the last T->P edge.
    uint64_t LastAnchor = 0;
    /// Non-null iff adaptive and in phase.
    Shard *Sh = nullptr;

    // Analyzer state (average: mean-only Welford; hysteresis: the
    // internal dual-threshold state).
    uint64_t StatsN = 0;
    double StatsMean = 0.0;
    PhaseState HystState = PhaseState::Transition;

    // Run accumulation (mirrors FastPhaseDetector::consumeTrace).
    PhaseState RunState = PhaseState::Transition;
    uint64_t RunLen = 0;
    /// The output run this cursor writes.
    DetectorRun *Run = nullptr;
    /// The cursor's AnchoredStarts (pooled by the engine).
    std::vector<uint64_t> *Anchored = nullptr;
  };

  /// Cursors sharing a skip stride, evaluated in lockstep.
  struct Bucket {
    uint64_t Skip = 0;
    /// The next position this bucket evaluates at.
    uint64_t NextEval = 0;
    std::vector<uint32_t> Cursors;
  };

public:
  explicit SharedScanEngine(SiteIndex NumSites)
      : SharedKernel(NumSites), Sites(NumSites) {}

  void setBatchKernels(bool Enabled) override {
    SharedKernel.setBatchEnabled(Enabled);
    BatchKernels = Enabled;
  }
  bool batchKernelsEnabled() const override { return BatchKernels; }
  SiteIndex numSites() const override { return Sites; }

  void run(const std::vector<DetectorConfig> &Configs,
           const std::vector<size_t> &Members, const SiteIndex *Elements,
           size_t NumElements, std::vector<DetectorRun> &Runs) override {
    assert(!Members.empty() && "shared scan group must be nonempty");
    assert(Runs.size() >= Members.size() && "one output run per member");
    setupGroup(Configs, Members, Runs, NumElements);
    this->Elements = Elements;
    this->NumElements = NumElements;

    // Main loop: advance the shared window in eval-to-eval bursts.
    uint64_t Pos = 0;
    while (Pos < NumElements) {
      uint64_t Target = NumElements;
      for (const Bucket &B : Buckets)
        Target = std::min<uint64_t>(Target, B.NextEval);
      assert(Target > Pos && "evaluation positions must advance");
      consumeSharedTo(Pos, Target);
      Pos = Target;
      for (Bucket &B : Buckets) {
        if (B.NextEval != Pos)
          continue;
        evalBucket(B, Pos, B.Skip);
        B.NextEval = Pos + B.Skip;
      }
    }

    // Trailing partial batches: a bucket whose last full evaluation lies
    // before the trace end evaluates once more over the short remainder,
    // exactly like the reference's final short batch. (A skip larger
    // than the trace degenerates to one short batch covering it all.)
    for (Bucket &B : Buckets) {
      uint64_t PrevEval = B.NextEval - B.Skip;
      if (PrevEval < NumElements)
        evalBucket(B, NumElements, NumElements - PrevEval);
    }

    // Flush the pending runs and finalize the per-config outputs.
    for (Cursor &C : Cursors) {
      if (C.RunLen != 0)
        C.Run->States.append(C.RunState, C.RunLen);
      finalizeAnchoredPhases(*C.Run, *C.Anchored);
      if (C.Sh)
        releaseShard(C.Sh);
      C.Sh = nullptr;
    }
  }

private:
  void setupGroup(const std::vector<DetectorConfig> &Configs,
                  const std::vector<size_t> &Members,
                  std::vector<DetectorRun> &Runs, size_t NumElements) {
    const DetectorConfig &First = Configs[Members.front()];
    assert(First.Model == M && "config does not match this engine's model");
    CW = First.Window.CWSize;
    TW = First.Window.TWSize;
    assert(CW > 0 && "current window must be nonempty");
    assert(TW > 0 && "trailing window must be nonempty");

    SharedKernel.reset();
    CWLen = TWLen = 0;
    CachePos = UINT64_MAX;
    assert(ActiveShards.empty() && "shards must not leak across runs");

    Cursors.clear();
    Cursors.reserve(Members.size());
    Buckets.clear();
    if (AnchoredPool.size() < Members.size())
      AnchoredPool.resize(Members.size());

    for (size_t I = 0; I != Members.size(); ++I) {
      const DetectorConfig &Config = Configs[Members[I]];
      assert(sharedScanKey(Config) == sharedScanKey(First) &&
             "group members must share one window-kernel shape");
      Cursor C;
      C.Skip = Config.Window.SkipFactor;
      assert(C.Skip > 0 && "skip factor must be positive");
      C.Analyzer = Config.TheAnalyzer;
      C.Policy = Config.Window.TWPolicy;
      C.Anchor = Config.Window.Anchor;
      C.Resize = Config.Window.Resize;
      C.P0 = Config.AnalyzerParam;
      C.P1 = Config.TheAnalyzer == AnalyzerKind::Hysteresis
                 ? hysteresisExitThreshold(Config.AnalyzerParam)
                 : 0.0;
      C.ResyncAt = static_cast<uint64_t>(CW) + TW;
      C.Run = &Runs[I];
      C.Run->clear();
      // Mirror runDetector's worst-case reservation (a flip per batch).
      size_t NumBatches =
          NumElements == 0 ? 0 : (NumElements - 1) / C.Skip + 1;
      C.Run->States.reserveRuns(std::min<size_t>(NumBatches, 1 << 16));
      C.Anchored = &AnchoredPool[I];
      C.Anchored->clear();
      C.Anchored->reserve(std::min<size_t>(NumBatches / 2 + 1, 1 << 12));

      uint32_t Idx = static_cast<uint32_t>(Cursors.size());
      Cursors.push_back(C);
      bucketFor(C.Skip).Cursors.push_back(Idx);
    }
  }

  Bucket &bucketFor(uint64_t Skip) {
    for (Bucket &B : Buckets)
      if (B.Skip == Skip)
        return B;
    Buckets.push_back(Bucket{Skip, Skip, {}});
    return Buckets.back();
  }

  /// Advances the free-running window over Elements[Pos, Target).
  void consumeSharedTo(uint64_t Pos, uint64_t Target) {
    uint64_t Q = Pos;
    // Startup fill: only the first CW+TW elements of the trace.
    while (CWLen < CW && Q < Target) {
      SharedKernel.cwAdd(Elements[Q]);
      ++CWLen;
      ++Q;
    }
    while (TWLen < TW && Q < Target) {
      SiteIndex Y = Elements[Q - CW];
      SharedKernel.cwReplace(Elements[Q], Y);
      SharedKernel.twAdd(Y);
      ++TWLen;
      ++Q;
    }
    // Steady state: the whole rest of the trace takes this loop.
    for (; Q < Target; ++Q) {
      SiteIndex Y = Elements[Q - CW];
      SharedKernel.cwReplace(Elements[Q], Y);
      SharedKernel.twReplace(Y, Elements[Q - CW - TW]);
    }
  }

  /// The shared similarity at the cached evaluation position, computed
  /// once and fanned out to every cursor.
  OPD_FORCE_INLINE double sharedSim() {
    if (!SimValid) {
      Sim = SharedKernel.similarity();
      SimValid = true;
    }
    return Sim;
  }

  /// The anchor position (TW index) of \p Kind on the shared window at
  /// position \p N, memoized per evaluation position — cursors entering
  /// a phase at the same position share the scan.
  uint64_t anchor(AnchorKind Kind, uint64_t N) {
    size_t Slot = Kind == AnchorKind::RightmostNoisy ? 0 : 1;
    if (!AnchorValid[Slot]) {
      AnchorVal[Slot] = anchorPosition(Kind, N);
      AnchorValid[Slot] = true;
    }
    return AnchorVal[Slot];
  }

  /// Same scan as FastWindowedModel::anchorPosition, over the trace
  /// slice the shared TW covers at position \p N.
  uint64_t anchorPosition(AnchorKind Kind, uint64_t N) const {
    assert(N >= static_cast<uint64_t>(CW) + TW && "window not full yet");
    const SiteIndex *Window = Elements + (N - CW - TW);
    if constexpr (Kernel::HasDenseCW) {
      if (BatchKernels) {
        const uint32_t *Counts = SharedKernel.cwCountsData();
        if (Kind == AnchorKind::RightmostNoisy)
          return batchRightmostNoisy(Counts, Window, TW);
        return batchLeftmostNonNoisy(Counts, Window, TW);
      }
    }
    if (Kind == AnchorKind::RightmostNoisy) {
      for (uint64_t I = TW; I != 0; --I)
        if (!SharedKernel.inCW(Window[I - 1]))
          return I;
      return 0;
    }
    for (uint64_t I = 0; I != TW; ++I)
      if (SharedKernel.inCW(Window[I]))
        return I;
    return TW;
  }

  /// Forks or joins the shard for a phase opening at \p N with anchor
  /// value \p A under \p Resize.
  Shard *acquireShard(uint64_t N, uint64_t A, ResizeKind Resize) {
    for (Shard *S : ActiveShards)
      if (S->EntryPos == N && S->AnchorVal == A && S->Resize == Resize) {
        ++S->Refs;
        return S;
      }

    Shard *S;
    if (!FreeShards.empty()) {
      S = FreeShards.back();
      FreeShards.pop_back();
    } else {
      ShardPool.push_back(std::make_unique<Shard>(Sites));
      S = ShardPool.back().get();
    }

    // Seed from the shared window (the entering cursor's window is the
    // shared window — phase entry only happens synced), then apply
    // startPhase's anchor resize.
    S->K = SharedKernel;
    S->Base = N - CW - TW;
    S->TWLen = TW;
    S->CWLen = CW;
    S->LastPos = N;
    S->EntryPos = N;
    S->AnchorVal = A;
    S->Resize = Resize;
    S->Refs = 1;

    // dropTWPrefix(A).
    assert(A <= S->TWLen && "anchor beyond the trailing window");
    for (uint64_t I = 0; I != A; ++I)
      S->K.twRemove(Elements[S->Base + I]);
    S->Base += A;
    S->TWLen -= A;
    if (Resize == ResizeKind::Slide) {
      // Slide the TW right across the CW, as startPhase: Take computed
      // against the pre-slide CW length.
      uint64_t Take = std::min<uint64_t>(A, S->CWLen);
      for (uint64_t I = 0; I != Take; ++I) {
        SiteIndex X = Elements[S->Base + S->TWLen];
        S->K.moveCWToTW(X);
        ++S->TWLen;
        --S->CWLen;
      }
    }

    ActiveShards.push_back(S);
    return S;
  }

  void releaseShard(Shard *S) {
    assert(S->Refs > 0 && "releasing an unreferenced shard");
    if (--S->Refs != 0)
      return;
    // Swap-erase: shards are independent, order is irrelevant.
    auto It = std::find(ActiveShards.begin(), ActiveShards.end(), S);
    assert(It != ActiveShards.end() && "released shard not active");
    *It = ActiveShards.back();
    ActiveShards.pop_back();
    FreeShards.push_back(S);
  }

  /// Advances \p S to position \p N with the in-phase consume: the fill
  /// path while a Slide left the CW partial, then the InPhaseGrowth
  /// specialization (the TW grows on every rotation).
  void advanceShard(Shard &S, uint64_t N) {
    for (uint64_t Q = S.LastPos; Q != N; ++Q) {
      SiteIndex E = Elements[Q];
      if (S.CWLen < CW) {
        S.K.cwAdd(E);
        ++S.CWLen;
      } else {
        SiteIndex Y = Elements[S.Base + S.TWLen];
        S.K.cwReplace(E, Y);
        S.K.twAdd(Y);
        ++S.TWLen;
      }
    }
    S.LastPos = N;
  }

  void evalBucket(Bucket &B, uint64_t N, uint64_t L) {
    if (CachePos != N) {
      CachePos = N;
      SimValid = false;
      AnchorValid[0] = AnchorValid[1] = false;
    }
    for (uint32_t Idx : B.Cursors)
      evalCursor(Cursors[Idx], N, L);
  }

  /// One evaluation of \p C at position \p N covering \p L elements —
  /// the cursor replica of FastPhaseDetector::processBatchInline plus
  /// consumeTrace's run accumulation.
  void evalCursor(Cursor &C, uint64_t N, uint64_t L) {
    PhaseState New = PhaseState::Transition;
    double SimHere = 0.0;
    if (C.State == PhaseState::Transition && N < C.ResyncAt) {
      // Refilling after a flush: windows provably not full — forced
      // Transition, and the analyzer is NOT consulted (the hysteresis
      // state must survive untouched).
      New = PhaseState::Transition;
    } else if (C.Sh) {
      // Adaptive, in phase: decide off the detached shard.
      Shard &S = *C.Sh;
      advanceShard(S, N);
      if (S.TWLen == 0 || S.CWLen == 0) {
        // The in-phase windowsFull(): an anchor drop that emptied the
        // TW (Move) or a slide that emptied the CW forces a Transition.
        New = PhaseState::Transition;
      } else {
        switch (C.Analyzer) {
        case AnalyzerKind::Threshold:
          // Keep the kernel-side decision: the envelope defers dirty
          // recomputes the raw similarity would force.
          New = S.K.similarityAtLeast(C.P0) ? PhaseState::InPhase
                                            : PhaseState::Transition;
          break;
        case AnalyzerKind::Average:
          SimHere = S.K.similarity();
          New = averageDecide(C, SimHere);
          break;
        case AnalyzerKind::Hysteresis:
          New = hysteresisDecide(C, S.K.similarity());
          break;
        }
      }
    } else {
      // Synced (constant cursors in or out of phase; adaptive out of
      // phase): decide off the shared kernel, one similarity for all.
      switch (C.Analyzer) {
      case AnalyzerKind::Threshold:
        New = sharedSim() >= C.P0 ? PhaseState::InPhase
                                  : PhaseState::Transition;
        break;
      case AnalyzerKind::Average:
        SimHere = sharedSim();
        New = averageDecide(C, SimHere);
        break;
      case AnalyzerKind::Hysteresis:
        New = hysteresisDecide(C, sharedSim());
        break;
      }
    }

    // Phase edges, in processBatchInline's order.
    if (C.State == PhaseState::Transition && New == PhaseState::InPhase) {
      uint64_t A = anchor(C.Anchor, N);
      C.LastAnchor = N - CW - TW + A;
      if (C.Policy == TWPolicyKind::Adaptive)
        C.Sh = acquireShard(N, A, C.Resize);
      if (C.Analyzer == AnalyzerKind::Average)
        resetStats(C);
    } else if (C.State == PhaseState::InPhase &&
               New == PhaseState::InPhase &&
               C.Analyzer == AnalyzerKind::Average) {
      updateStats(C, SimHere);
    }
    if (C.State == PhaseState::InPhase && New == PhaseState::Transition) {
      // endPhase: the seed kept is min(skip, CWSize, window length);
      // refill completes (CWSize - Keep) + TWSize elements later.
      uint64_t WindowLen =
          C.Sh ? C.Sh->TWLen + C.Sh->CWLen : static_cast<uint64_t>(CW) + TW;
      uint64_t Keep = std::min<uint64_t>(
          std::min<uint64_t>(C.Skip, CW), WindowLen);
      C.ResyncAt = N + (CW - Keep) + TW;
      if (C.Sh) {
        releaseShard(C.Sh);
        C.Sh = nullptr;
      }
      if (C.Analyzer == AnalyzerKind::Average)
        resetStats(C);
    }

    // Run accumulation, exactly as consumeTrace.
    if (New == C.RunState) {
      C.RunLen += L;
    } else {
      if (C.RunState == PhaseState::Transition &&
          New == PhaseState::InPhase)
        C.Anchored->push_back(C.LastAnchor);
      if (C.RunLen != 0)
        C.Run->States.append(C.RunState, C.RunLen);
      C.RunState = New;
      C.RunLen = L;
    }
    C.State = New;
  }

  /// FastAverageAnalyzer::processValue over the cursor's stats (the
  /// sweep path never sets an entry threshold, so an empty-stats
  /// evaluation opens a phase unconditionally).
  static PhaseState averageDecide(const Cursor &C, double Similarity) {
    if (C.StatsN == 0)
      return PhaseState::InPhase;
    return Similarity >= C.StatsMean - C.P0 ? PhaseState::InPhase
                                            : PhaseState::Transition;
  }

  /// FastHysteresisAnalyzer::processValue over the cursor's state.
  static PhaseState hysteresisDecide(Cursor &C, double Similarity) {
    double Threshold =
        C.HystState == PhaseState::InPhase ? C.P1 : C.P0;
    C.HystState = Similarity >= Threshold ? PhaseState::InPhase
                                          : PhaseState::Transition;
    return C.HystState;
  }

  static void resetStats(Cursor &C) {
    C.StatsN = 0;
    C.StatsMean = 0.0;
  }

  /// FastMeanStats::push — the identical Welford mean update.
  static void updateStats(Cursor &C, double Similarity) {
    ++C.StatsN;
    C.StatsMean +=
        (Similarity - C.StatsMean) / static_cast<double>(C.StatsN);
  }

  // Shared free-running window.
  Kernel SharedKernel;
  SiteIndex Sites;
  uint64_t CW = 0;
  uint64_t TW = 0;
  uint64_t CWLen = 0;
  uint64_t TWLen = 0;
  bool BatchKernels = true;

  // The trace being scanned (valid during run()).
  const SiteIndex *Elements = nullptr;
  size_t NumElements = 0;

  // Per-evaluation-position memoization.
  uint64_t CachePos = UINT64_MAX;
  double Sim = 0.0;
  bool SimValid = false;
  uint64_t AnchorVal[2] = {0, 0};
  bool AnchorValid[2] = {false, false};

  // Cursors and their stride buckets (rebuilt per group, capacity kept).
  std::vector<Cursor> Cursors;
  std::vector<Bucket> Buckets;
  std::vector<std::vector<uint64_t>> AnchoredPool;

  // Shard storage: ShardPool owns, Active/Free partition the pointers.
  std::vector<std::unique_ptr<Shard>> ShardPool;
  std::vector<Shard *> ActiveShards;
  std::vector<Shard *> FreeShards;
};

} // namespace

std::unique_ptr<SharedScanEngineBase>
opd::makeSharedScanEngine(ModelKind Model, SiteIndex NumSites) {
  switch (Model) {
  case ModelKind::UnweightedSet:
    return std::make_unique<SharedScanEngine<ModelKind::UnweightedSet>>(
        NumSites);
  case ModelKind::WeightedSet:
    return std::make_unique<SharedScanEngine<ModelKind::WeightedSet>>(
        NumSites);
  case ModelKind::ManhattanBBV:
    return std::make_unique<SharedScanEngine<ModelKind::ManhattanBBV>>(
        NumSites);
  }
  return nullptr;
}
