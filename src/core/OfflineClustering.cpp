//===- core/OfflineClustering.cpp - Offline interval clustering -------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "core/OfflineClustering.h"

#include "support/Random.h"

#include <algorithm>
#include <cmath>

using namespace opd;

namespace {

using Vector = std::vector<double>;

double squaredDistance(const Vector &A, const Vector &B) {
  double Sum = 0.0;
  for (size_t I = 0; I != A.size(); ++I) {
    double D = A[I] - B[I];
    Sum += D * D;
  }
  return Sum;
}

/// Builds the normalized frequency vector of trace elements
/// [Begin, End).
Vector intervalVector(const BranchTrace &Trace, uint64_t Begin,
                      uint64_t End) {
  Vector V(Trace.numSites(), 0.0);
  for (uint64_t I = Begin; I != End; ++I)
    V[Trace[I]] += 1.0;
  double Inv = End > Begin ? 1.0 / static_cast<double>(End - Begin) : 0.0;
  for (double &X : V)
    X *= Inv;
  return V;
}

} // namespace

OfflineClusteringResult
opd::clusterTrace(const BranchTrace &Trace,
                  const OfflineClusteringOptions &Options) {
  assert(Options.IntervalLength > 0 && "interval length must be positive");
  assert(Options.NumClusters > 0 && "need at least one cluster");

  OfflineClusteringResult Result;
  uint64_t Total = Trace.size();
  if (Total == 0) {
    Result.States = StateSequence();
    return Result;
  }

  // 1. Interval BBVs (the final partial interval included).
  std::vector<Vector> Vectors;
  std::vector<uint64_t> Bounds; // interval end offsets
  for (uint64_t Begin = 0; Begin < Total;
       Begin += Options.IntervalLength) {
    uint64_t End = std::min(Total, Begin + Options.IntervalLength);
    Vectors.push_back(intervalVector(Trace, Begin, End));
    Bounds.push_back(End);
  }
  size_t N = Vectors.size();
  unsigned K = static_cast<unsigned>(
      std::min<size_t>(Options.NumClusters, N));

  // 2. k-means++ seeding (deterministic).
  Xoshiro256 Rng(Options.Seed);
  std::vector<Vector> Centers;
  Centers.push_back(Vectors[Rng.nextBelow(N)]);
  std::vector<double> MinDist(N, 0.0);
  while (Centers.size() < K) {
    double Sum = 0.0;
    for (size_t I = 0; I != N; ++I) {
      double Best = squaredDistance(Vectors[I], Centers[0]);
      for (size_t C = 1; C != Centers.size(); ++C)
        Best = std::min(Best, squaredDistance(Vectors[I], Centers[C]));
      MinDist[I] = Best;
      Sum += Best;
    }
    if (Sum <= 0.0) {
      // All points coincide with centers; no more distinct seeds exist.
      break;
    }
    double Pick = Rng.nextDouble() * Sum;
    size_t Chosen = N - 1;
    for (size_t I = 0; I != N; ++I) {
      Pick -= MinDist[I];
      if (Pick <= 0.0) {
        Chosen = I;
        break;
      }
    }
    Centers.push_back(Vectors[Chosen]);
  }
  K = static_cast<unsigned>(Centers.size());

  // 3. Lloyd iterations.
  std::vector<unsigned> Labels(N, 0);
  for (unsigned Iter = 0; Iter != Options.MaxIterations; ++Iter) {
    bool Changed = false;
    for (size_t I = 0; I != N; ++I) {
      unsigned Best = 0;
      double BestDist = squaredDistance(Vectors[I], Centers[0]);
      for (unsigned C = 1; C != K; ++C) {
        double Dist = squaredDistance(Vectors[I], Centers[C]);
        if (Dist < BestDist) {
          BestDist = Dist;
          Best = C;
        }
      }
      if (Labels[I] != Best) {
        Labels[I] = Best;
        Changed = true;
      }
    }
    if (!Changed && Iter > 0)
      break;
    // Recompute centers; empty clusters keep their previous position.
    std::vector<Vector> NewCenters(K,
                                   Vector(Trace.numSites(), 0.0));
    std::vector<uint64_t> Counts(K, 0);
    for (size_t I = 0; I != N; ++I) {
      ++Counts[Labels[I]];
      for (size_t S = 0; S != Vectors[I].size(); ++S)
        NewCenters[Labels[I]][S] += Vectors[I][S];
    }
    for (unsigned C = 0; C != K; ++C) {
      if (Counts[C] == 0) {
        NewCenters[C] = Centers[C];
        continue;
      }
      double Inv = 1.0 / static_cast<double>(Counts[C]);
      for (double &X : NewCenters[C])
        X *= Inv;
    }
    Centers = std::move(NewCenters);
  }

  // 4. Phases = maximal same-label runs; remap labels to the used set.
  std::vector<unsigned> Used;
  for (unsigned L : Labels)
    if (std::find(Used.begin(), Used.end(), L) == Used.end())
      Used.push_back(L);
  Result.NumClusters = static_cast<unsigned>(Used.size());

  Result.IntervalLabels = Labels;
  uint64_t RunBegin = 0;
  for (size_t I = 0; I != N; ++I) {
    bool Last = I + 1 == N;
    if (Last || Labels[I + 1] != Labels[I]) {
      Result.Phases.push_back({RunBegin, Bounds[I]});
      RunBegin = Bounds[I];
    }
  }
  Result.States = StateSequence::fromPhases(Result.Phases, Total);
  return Result;
}
