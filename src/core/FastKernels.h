//===- core/FastKernels.h - Monomorphic kernel/model templates --*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The non-virtual kernels, analyzers, and windowed model behind the
/// monomorphic fast path. These templates mirror core/WindowedModel.cpp
/// and the unobserved path of core/PhaseDetector.cpp statement for
/// statement; the deltas are concrete kernel/analyzer types (so every
/// call inlines), the TW policy as a compile-time constant, and
/// decision-identical substitutions documented on each class.
///
/// Historically these lived in FastDetector.cpp's anonymous namespace;
/// they are a header so the shared-scan execution engine
/// (core/SharedScan.h) can drive the same kernels — one free-running
/// window fanning results out to many analyzer cursors — without
/// duplicating a single line of kernel arithmetic. Everything here is
/// an internal implementation detail of the two engines: the supported
/// entry points remain makeFastDetector() and runSharedScanGroup().
///
/// Bit-identity contract: any behavioral change to the reference
/// detector must be replicated here — FastDetectorTest and
/// SharedScanTest run every sweep configuration shape through the
/// reference and derived paths and require bit-identical output, so a
/// missed replication fails loudly.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_CORE_FASTKERNELS_H
#define OPD_CORE_FASTKERNELS_H

#include "core/BatchKernel.h"
#include "core/DetectorConfig.h"
#include "core/WindowedModel.h"
#include "support/Format.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <string>
#include <vector>

// The fast kernels only pay off if the per-element operations dissolve
// into the consume loop, but the fully-inlined loop is large enough that
// the compiler's inline-growth budget starts refusing them (measured:
// gcc -O3 leaves twReplace/similarity as out-of-line calls). Force the
// hot operations in.
#ifndef OPD_FORCE_INLINE
#if defined(__GNUC__) || defined(__clang__)
#define OPD_FORCE_INLINE inline __attribute__((always_inline))
#define OPD_NOINLINE __attribute__((noinline))
#else
#define OPD_FORCE_INLINE inline
#define OPD_NOINLINE
#endif
#endif

namespace opd {
namespace fastkernels {
// Internal linkage on purpose: these types historically lived in
// FastDetector.cpp's anonymous namespace, and the consume loops lose
// measurable throughput (~10% on the unweighted shapes) when the
// kernels get vague linkage — each translation unit optimizes its own
// private copy instead.
namespace {

//===----------------------------------------------------------------------===//
// Non-virtual kernels
//
// The reference kernels are virtual classes; even though the fast models
// hold them by concrete value (so every call site is direct), the
// compiler emits the virtual overrides as standalone functions and — in
// the large fully-inlined consume loop — refuses to inline them, leaving
// two or three function calls per element. These kernels are the same
// algorithms as plain inline members with no vtable at all, which is
// what lets the per-element loop absorb them.
//
// All three kernels are copy-assignable, and assignment reuses the
// destination's per-site arrays (std::vector::operator= does not shrink
// capacity): the shared-scan engine seeds its in-phase shard kernels by
// assigning the free-running kernel into a pooled instance, so a phase
// entry costs one array copy and zero allocations after warmup.
//===----------------------------------------------------------------------===//

/// The state and touched-site machinery of SimilarityKernel without the
/// vtable.
class FastKernelBase {
public:
  explicit FastKernelBase(SiteIndex NumSites)
      : CWCounts(NumSites, 0), TWCounts(NumSites, 0),
        SiteTouched(NumSites, 0) {}

  bool inCW(SiteIndex S) const {
    assert(S < CWCounts.size() && "site out of range");
    return CWCounts[S] != 0;
  }
  uint64_t cwTotal() const { return NCW; }
  uint64_t twTotal() const { return NTW; }
  SiteIndex numSites() const {
    return static_cast<SiteIndex>(CWCounts.size());
  }

  /// Kernels with dense per-site CW counts support the blocked anchor
  /// membership scans (core/BatchKernel.h) directly over this array.
  static constexpr bool HasDenseCW = true;
  const uint32_t *cwCountsData() const { return CWCounts.data(); }

  void setBatchEnabled(bool Enabled) { BatchEnabled = Enabled; }
  bool batchEnabled() const { return BatchEnabled; }

protected:
  /// Same contract as SimilarityKernel::touch().
  OPD_FORCE_INLINE void touch(SiteIndex S) {
    if (!SiteTouched[S]) {
      SiteTouched[S] = 1;
      TouchedSites.push_back(S);
    }
  }

  /// O(distinct sites touched) count reset, as SimilarityKernel::reset().
  void resetCounts() {
    for (SiteIndex S : TouchedSites) {
      CWCounts[S] = 0;
      TWCounts[S] = 0;
      SiteTouched[S] = 0;
    }
    TouchedSites.clear();
    NCW = NTW = 0;
  }

  std::vector<uint32_t> CWCounts;
  std::vector<uint32_t> TWCounts;
  uint64_t NCW = 0;
  uint64_t NTW = 0;
  std::vector<uint8_t> SiteTouched;
  std::vector<SiteIndex> TouchedSites;
  bool BatchEnabled = true;
};

/// Non-virtual mirror of UnweightedSetKernel. The arithmetic policy is
/// a private base so the empty production policy occupies no storage
/// (empty-base optimization keeps the layout identical to a policy-free
/// kernel).
template <typename ArithT = PlainKernelArith>
class FastUnweightedSetKernel : public FastKernelBase, private ArithT {
public:
  explicit FastUnweightedSetKernel(SiteIndex NumSites, ArithT A = ArithT())
      : FastKernelBase(NumSites), ArithT(A) {}

  void reset() {
    resetCounts();
    CWDistinct = 0;
    BothDistinct = 0;
  }

  OPD_FORCE_INLINE void cwAdd(SiteIndex S) {
    assert(S < CWCounts.size() && "site out of range");
    touch(S);
    if (CWCounts[S]++ == 0) {
      ++CWDistinct;
      this->observeValue(KernelQuantity::CWDistinct, CWDistinct);
      if (TWCounts[S] != 0) {
        ++BothDistinct;
        this->observeValue(KernelQuantity::BothDistinct, BothDistinct);
      }
    }
    this->observeCount(KernelQuantity::CWCount, CWCounts[S]);
    ++NCW;
    this->observeValue(KernelQuantity::CWTotal, NCW);
  }

  OPD_FORCE_INLINE void cwRemove(SiteIndex S) {
    assert(S < CWCounts.size() && "site out of range");
    assert(CWCounts[S] != 0 && "removing a site not in the CW");
    if (--CWCounts[S] == 0) {
      --CWDistinct;
      if (TWCounts[S] != 0)
        --BothDistinct;
    }
    --NCW;
  }

  OPD_FORCE_INLINE void twAdd(SiteIndex S) {
    assert(S < TWCounts.size() && "site out of range");
    touch(S);
    if (TWCounts[S]++ == 0 && CWCounts[S] != 0) {
      ++BothDistinct;
      this->observeValue(KernelQuantity::BothDistinct, BothDistinct);
    }
    this->observeCount(KernelQuantity::TWCount, TWCounts[S]);
    ++NTW;
    this->observeValue(KernelQuantity::TWTotal, NTW);
  }

  OPD_FORCE_INLINE void twRemove(SiteIndex S) {
    assert(S < TWCounts.size() && "site out of range");
    assert(TWCounts[S] != 0 && "removing a site not in the TW");
    if (--TWCounts[S] == 0 && CWCounts[S] != 0)
      --BothDistinct;
    --NTW;
  }

  // Remove before add: the totals never exceed the window bound, even
  // transiently, matching the KernelBounds-certified invariant.
  OPD_FORCE_INLINE void cwReplace(SiteIndex In, SiteIndex Out) {
    cwRemove(Out);
    cwAdd(In);
  }
  OPD_FORCE_INLINE void twReplace(SiteIndex In, SiteIndex Out) {
    twRemove(Out);
    twAdd(In);
  }
  OPD_FORCE_INLINE void moveCWToTW(SiteIndex S) {
    cwRemove(S);
    twAdd(S);
  }

  OPD_FORCE_INLINE double similarity() {
    if (CWDistinct == 0)
      return 0.0;
    return static_cast<double>(BothDistinct) /
           static_cast<double>(CWDistinct);
  }

  OPD_FORCE_INLINE bool similarityAtLeast(double T) {
    return similarity() >= T;
  }

private:
  uint64_t CWDistinct = 0;
  uint64_t BothDistinct = 0;
};

/// Non-virtual weighted-set kernel, restructured as a structure-of-
/// arrays batch kernel: instead of dense per-site count arrays plus a
/// touched-site index list (whose recompute gathers counts through the
/// list), the touched sites live in a packed roster — interleaved
/// (cw, tw) count-pair lanes plus the owning site per slot, with a
/// per-site slot map for O(1) lookup. The min-sum recompute that
/// dominates the weighted-adaptive shape (it runs per element while an
/// adaptive TW grows) then becomes one contiguous sweep over the count
/// pairs, dispatched to the AVX2 or portable block kernel
/// (core/BatchKernel.h); the interleaving also lands a site's two counts
/// on the same cache line for the replace-delta path. The sum is an
/// integer sum of non-negative terms, so neither the roster order nor
/// the lane evaluation order can perturb it — bit-identical to the
/// reference kernel's touched-list recompute.
///
/// The replace-operation MinSum delta is computed from shared products:
/// min(cw*NTW, tw*NCW) before and after a count bump reuses the same two
/// products, halving the multiplies of the reference WeightedSetKernel
/// on the steady-state path, and similarity() divides by a cached
/// double(NCW)*double(NTW). Both are the same arithmetic the reference
/// kernel performs, so MinSum and the returned similarity are
/// bit-identical.
///
/// Under the CheckedKernelArith shadow policy the recompute keeps the
/// scalar per-step instrumented loop (the probe must observe every
/// product and partial sum), so certificates are validated against the
/// exact same sequence of observations as before.
template <typename ArithT = PlainKernelArith>
class FastWeightedSetKernel : private ArithT {
public:
  explicit FastWeightedSetKernel(SiteIndex NumSites, ArithT A = ArithT())
      : ArithT(A), Slot(NumSites, InvalidSlot), RosterSites(NumSites),
        RosterCounts(2 * static_cast<size_t>(NumSites)) {}

  bool inCW(SiteIndex S) const {
    assert(S < Slot.size() && "site out of range");
    uint32_t I = Slot[S];
    return I != InvalidSlot && cwAt(I) != 0;
  }
  uint64_t cwTotal() const { return NCW; }
  uint64_t twTotal() const { return NTW; }
  SiteIndex numSites() const { return static_cast<SiteIndex>(Slot.size()); }

  /// The CW counts live in packed roster lanes, not densely by site, so
  /// the anchor scans take the scalar inCW path (anchoring runs once per
  /// phase transition; the win here is the per-element recompute).
  static constexpr bool HasDenseCW = false;
  const uint32_t *cwCountsData() const { return nullptr; }

  void setBatchEnabled(bool Enabled) { BatchEnabled = Enabled; }
  bool batchEnabled() const { return BatchEnabled; }

  void reset() {
    // O(roster) un-enrollment, the counterpart of FastKernelBase's
    // O(touched) resetCounts(): only enrolled sites have live slots.
    for (uint32_t I = 0; I != RosterSize; ++I)
      Slot[RosterSites[I]] = InvalidSlot;
    RosterSize = 0;
    NCW = NTW = 0;
    MinSum = 0;
    BoundLo = BoundHi = 0;
    Dirty = false;
  }

  OPD_FORCE_INLINE void cwAdd(SiteIndex S) {
    assert(S < Slot.size() && "site out of range");
    uint32_t I = slotOf(S);
    ++cwAt(I);
    this->observeCount(KernelQuantity::CWCount, cwAt(I));
    ++NCW;
    this->observeValue(KernelQuantity::CWTotal, NCW);
    // cw[S] and NCW rise, nothing falls: every term is nondecreasing,
    // and the total rise is at most sum_i tw_i + NTW = 2*NTW (each
    // term's tw-side operand gains tw_i from the NCW bump, and term S
    // gains at most max(NTW, tw_S) <= NTW on top).
    markDirty();
    widenUp(saturatingDouble(NTW));
  }

  OPD_FORCE_INLINE void cwRemove(SiteIndex S) {
    assert(Slot[S] != InvalidSlot && cwAt(Slot[S]) != 0 &&
           "removing a site not in the CW");
    --cwAt(Slot[S]);
    --NCW;
    // Mirror of cwAdd: everything is nonincreasing, by at most 2*NTW.
    markDirty();
    widenDown(saturatingDouble(NTW));
  }

  OPD_FORCE_INLINE void twAdd(SiteIndex S) {
    assert(S < Slot.size() && "site out of range");
    uint32_t I = slotOf(S);
    ++twAt(I);
    this->observeCount(KernelQuantity::TWCount, twAt(I));
    ++NTW;
    this->observeValue(KernelQuantity::TWTotal, NTW);
    // tw[S] and NTW rise: every term is nondecreasing, total rise at
    // most sum_i cw_i + NCW = 2*NCW (the symmetric cwAdd argument).
    markDirty();
    widenUp(saturatingDouble(NCW));
  }

  OPD_FORCE_INLINE void twRemove(SiteIndex S) {
    assert(Slot[S] != InvalidSlot && twAt(Slot[S]) != 0 &&
           "removing a site not in the TW");
    --twAt(Slot[S]);
    --NTW;
    // Mirror of twAdd: everything is nonincreasing, by at most 2*NCW.
    markDirty();
    widenDown(saturatingDouble(NCW));
  }

  OPD_FORCE_INLINE void cwReplace(SiteIndex In, SiteIndex Out) {
    assert(In < Slot.size() && Out < Slot.size() && "site out of range");
    assert(Slot[Out] != InvalidSlot && cwAt(Slot[Out]) != 0 &&
           "replacing a site not in the CW");
    if (In == Out)
      return;
    uint32_t II = slotOf(In);
    uint32_t OI = Slot[Out];
    if (Dirty) {
      ++cwAt(II);
      --cwAt(OI);
      // Totals are unchanged; In's term rises by at most NTW and Out's
      // falls by at most NTW.
      widenUp(NTW);
      widenDown(NTW);
      return;
    }
    // term(S) = min(cw*NTW, tw*NCW); after ++cw[In]/--cw[Out] only the
    // first operand moves, by +-NTW (cw[Out] >= 1, so no underflow).
    // Gain/loss form: In's term only rises, Out's only falls, and the
    // loss is one of MinSum's summands — so with the certified bound
    // MinSum <= NCW*NTW no step here can wrap (see SimilarityKernel.h).
    uint64_t AIn =
        this->mul(KernelQuantity::ProductCWTW, cwAt(II), NTW);
    uint64_t BIn =
        this->mul(KernelQuantity::ProductTWCW, twAt(II), NCW);
    uint64_t AOut =
        this->mul(KernelQuantity::ProductCWTW, cwAt(OI), NTW);
    uint64_t BOut =
        this->mul(KernelQuantity::ProductTWCW, twAt(OI), NCW);
    uint64_t AInNew = this->add(KernelQuantity::ProductCWTW, AIn, NTW);
    uint64_t AOutNew = this->sub(KernelQuantity::ProductCWTW, AOut, NTW);
    ++cwAt(II);
    this->observeCount(KernelQuantity::CWCount, cwAt(II));
    --cwAt(OI);
    uint64_t Gain = this->sub(KernelQuantity::MinSum,
                              std::min(AInNew, BIn), std::min(AIn, BIn));
    uint64_t Loss = this->sub(KernelQuantity::MinSum, std::min(AOut, BOut),
                              std::min(AOutNew, BOut));
    MinSum = this->add(KernelQuantity::MinSum, MinSum, Gain);
    MinSum = this->sub(KernelQuantity::MinSum, MinSum, Loss);
  }

  /// Precondition (which every FastWindowedModel call site satisfies):
  /// In has already been added to a window since the last reset() — in
  /// the model, twReplace only moves the element leaving the CW into
  /// the TW, and everything that entered the CW was enrolled on the way
  /// in. That makes the enrollment check a guaranteed no-op here, so it
  /// is elided from this per-element path.
  OPD_FORCE_INLINE void twReplace(SiteIndex In, SiteIndex Out) {
    assert(In < Slot.size() && Out < Slot.size() && "site out of range");
    assert(Slot[Out] != InvalidSlot && twAt(Slot[Out]) != 0 &&
           "replacing a site not in the TW");
    assert(Slot[In] != InvalidSlot && "twReplace of a never-enrolled site");
    if (In == Out)
      return;
    uint32_t II = Slot[In];
    uint32_t OI = Slot[Out];
    if (Dirty) {
      ++twAt(II);
      --twAt(OI);
      // Totals are unchanged; In's term rises by at most NCW and Out's
      // falls by at most NCW.
      widenUp(NCW);
      widenDown(NCW);
      return;
    }
    // Same gain/loss argument as cwReplace, with the TW count moving.
    uint64_t AIn =
        this->mul(KernelQuantity::ProductTWCW, twAt(II), NCW);
    uint64_t BIn =
        this->mul(KernelQuantity::ProductCWTW, cwAt(II), NTW);
    uint64_t AOut =
        this->mul(KernelQuantity::ProductTWCW, twAt(OI), NCW);
    uint64_t BOut =
        this->mul(KernelQuantity::ProductCWTW, cwAt(OI), NTW);
    uint64_t AInNew = this->add(KernelQuantity::ProductTWCW, AIn, NCW);
    uint64_t AOutNew = this->sub(KernelQuantity::ProductTWCW, AOut, NCW);
    ++twAt(II);
    this->observeCount(KernelQuantity::TWCount, twAt(II));
    --twAt(OI);
    uint64_t Gain = this->sub(KernelQuantity::MinSum,
                              std::min(AInNew, BIn), std::min(AIn, BIn));
    uint64_t Loss = this->sub(KernelQuantity::MinSum, std::min(AOut, BOut),
                              std::min(AOutNew, BOut));
    MinSum = this->add(KernelQuantity::MinSum, MinSum, Gain);
    MinSum = this->sub(KernelQuantity::MinSum, MinSum, Loss);
  }

  OPD_FORCE_INLINE void moveCWToTW(SiteIndex S) {
    cwRemove(S);
    twAdd(S);
  }

  OPD_FORCE_INLINE double similarity() {
    if (NCW == 0 || NTW == 0)
      return 0.0;
    if (Dirty) {
      recomputeMinSum();
      // The same product the reference divides by, computed once per
      // totals change instead of per element.
      Denom = static_cast<double>(NCW) * static_cast<double>(NTW);
      Dirty = false;
    }
    return static_cast<double>(MinSum) / Denom;
  }

  /// similarity() >= T without the per-element division. Outside a
  /// conservative relative margin (1e-12, thousands of ulps wider than
  /// the half-ulp each of the division and the T * Denom product can
  /// contribute) the rounded quotient provably lands on the same side
  /// of T; inside the margin the exact reference division decides. The
  /// result is therefore bit-identical to similarity() >= T for every
  /// input, including T <= 0 (the comparison against a non-positive
  /// bound is always true, as is similarity() >= T).
  ///
  /// While the kernel is dirty, the decision first consults the
  /// [BoundLo, BoundHi] envelope the mutators maintain around the true
  /// MinSum: the quotient is monotone in the numerator, so when even the
  /// lower bound clears the threshold (or even the upper bound misses
  /// it, each by the same margin) the exact recompute provably decides
  /// the same way and is skipped — MinSum stays stale, Dirty stays set,
  /// and the next similarity() recompute restores exactness. Only the
  /// indecisive band pays the O(roster) sweep, which is what makes the
  /// threshold analyzer's weighted-adaptive path cheap between
  /// recomputes while remaining decision-identical to the reference.
  OPD_FORCE_INLINE bool similarityAtLeast(double T) {
    if (NCW == 0 || NTW == 0)
      return similarity() >= T;
    if (Dirty) {
      if constexpr (ArithT::Checked)
        // The shadow probe must observe the recompute arithmetic at
        // every reference decision point, so the checked kernel never
        // defers.
        return similarity() >= T;
      double D = static_cast<double>(NCW) * static_cast<double>(NTW);
      double Bound = T * D;
      if (static_cast<double>(BoundLo) >= Bound + Bound * 1e-12)
        return true;
      if (static_cast<double>(BoundHi) <= Bound - Bound * 1e-12)
        return false;
      return similarity() >= T;
    }
    double Num = static_cast<double>(MinSum);
    double Bound = T * Denom;
    if (Num >= Bound + Bound * 1e-12)
      return true;
    if (Num <= Bound - Bound * 1e-12)
      return false;
    return static_cast<double>(MinSum) / Denom >= T;
  }

private:
  static constexpr uint32_t InvalidSlot = UINT32_MAX;

  /// Transitions to the dirty state, seeding the MinSum bound envelope
  /// from the last exact value. While dirty, every mutator widens the
  /// envelope by a sound per-operation delta bound (see the mutators),
  /// so BoundLo <= true MinSum <= BoundHi holds at every decision point.
  OPD_FORCE_INLINE void markDirty() {
    if (!Dirty) {
      Dirty = true;
      BoundLo = BoundHi = MinSum;
    }
  }

  /// 2*X, saturating (the per-op envelope deltas; saturation keeps the
  /// bounds sound even for absurd totals near 2^63).
  static OPD_FORCE_INLINE uint64_t saturatingDouble(uint64_t X) {
    return X > UINT64_MAX / 2 ? UINT64_MAX : 2 * X;
  }

  OPD_FORCE_INLINE void widenUp(uint64_t X) {
    BoundHi = BoundHi > UINT64_MAX - X ? UINT64_MAX : BoundHi + X;
  }

  OPD_FORCE_INLINE void widenDown(uint64_t X) {
    BoundLo = BoundLo > X ? BoundLo - X : 0;
  }

  /// Slot of site \p S, enrolling it into the roster on first use (the
  /// counterpart of FastKernelBase::touch): both count lanes start at
  /// zero, since reset() leaves stale lane values behind the sentinel.
  OPD_FORCE_INLINE uint32_t slotOf(SiteIndex S) {
    uint32_t I = Slot[S];
    if (I == InvalidSlot) {
      I = RosterSize++;
      Slot[S] = I;
      RosterSites[I] = S;
      cwAt(I) = 0;
      twAt(I) = 0;
    }
    return I;
  }

  OPD_FORCE_INLINE void recomputeMinSum() {
    if constexpr (ArithT::Checked) {
      // The shadow probe must observe every product and partial sum, so
      // the checked recompute stays a scalar per-step instrumented loop
      // (roster order is enrollment order — the same first-touch order
      // the pre-roster TouchedSites recompute observed in).
      uint64_t Sum = 0;
      for (uint32_t I = 0; I != RosterSize; ++I)
        Sum = this->add(
            KernelQuantity::MinSum, Sum,
            std::min(
                this->mul(KernelQuantity::ProductCWTW, cwAt(I), NTW),
                this->mul(KernelQuantity::ProductTWCW, twAt(I), NCW)));
      MinSum = Sum;
    } else if (BatchEnabled) {
      MinSum = batchMinSum(RosterCounts.data(), RosterSize, NCW, NTW);
    } else {
      MinSum = batchMinSumPortable(RosterCounts.data(), RosterSize, NCW, NTW);
    }
  }

  /// Slot I's count pair lives at RosterCounts[2I] (CW) and
  /// RosterCounts[2I+1] (TW) — the interleaved layout batchMinSum sweeps.
  OPD_FORCE_INLINE uint32_t &cwAt(uint32_t I) {
    return RosterCounts[2 * static_cast<size_t>(I)];
  }
  OPD_FORCE_INLINE uint32_t cwAt(uint32_t I) const {
    return RosterCounts[2 * static_cast<size_t>(I)];
  }
  OPD_FORCE_INLINE uint32_t &twAt(uint32_t I) {
    return RosterCounts[2 * static_cast<size_t>(I) + 1];
  }
  OPD_FORCE_INLINE uint32_t twAt(uint32_t I) const {
    return RosterCounts[2 * static_cast<size_t>(I) + 1];
  }

  /// Per-site roster slot, or InvalidSlot while un-enrolled.
  std::vector<uint32_t> Slot;
  /// Packed SoA roster over the enrolled sites: the owning site per slot
  /// plus the interleaved (cw, tw) count pairs the batch min-sum sweeps
  /// contiguously.
  std::vector<SiteIndex> RosterSites;
  std::vector<uint32_t> RosterCounts;
  uint32_t RosterSize = 0;

  uint64_t NCW = 0;
  uint64_t NTW = 0;
  uint64_t MinSum = 0;
  /// Sound envelope around the true MinSum while Dirty (see markDirty);
  /// meaningless when !Dirty (MinSum itself is exact then).
  uint64_t BoundLo = 0;
  uint64_t BoundHi = 0;
  /// double(NCW) * double(NTW); valid iff !Dirty and both totals nonzero.
  double Denom = 0.0;
  bool Dirty = false;
  bool BatchEnabled = true;
};

/// Non-virtual mirror of ManhattanKernel. similarity() must keep the
/// reference's full ascending floating-point loop: FP addition is not
/// associative, so any reordering would break bit-identity.
template <typename ArithT = PlainKernelArith>
class FastManhattanKernel : public FastKernelBase, private ArithT {
public:
  explicit FastManhattanKernel(SiteIndex NumSites, ArithT A = ArithT())
      : FastKernelBase(NumSites), ArithT(A) {}

  void reset() { resetCounts(); }

  OPD_FORCE_INLINE void cwAdd(SiteIndex S) {
    assert(S < CWCounts.size() && "site out of range");
    touch(S);
    ++CWCounts[S];
    this->observeCount(KernelQuantity::CWCount, CWCounts[S]);
    ++NCW;
    this->observeValue(KernelQuantity::CWTotal, NCW);
  }

  OPD_FORCE_INLINE void cwRemove(SiteIndex S) {
    assert(CWCounts[S] != 0 && "removing a site not in the CW");
    --CWCounts[S];
    --NCW;
  }

  OPD_FORCE_INLINE void twAdd(SiteIndex S) {
    assert(S < TWCounts.size() && "site out of range");
    touch(S);
    ++TWCounts[S];
    this->observeCount(KernelQuantity::TWCount, TWCounts[S]);
    ++NTW;
    this->observeValue(KernelQuantity::TWTotal, NTW);
  }

  OPD_FORCE_INLINE void twRemove(SiteIndex S) {
    assert(TWCounts[S] != 0 && "removing a site not in the TW");
    --TWCounts[S];
    --NTW;
  }

  // Remove before add: the totals never exceed the window bound, even
  // transiently, matching the KernelBounds-certified invariant.
  OPD_FORCE_INLINE void cwReplace(SiteIndex In, SiteIndex Out) {
    cwRemove(Out);
    cwAdd(In);
  }
  OPD_FORCE_INLINE void twReplace(SiteIndex In, SiteIndex Out) {
    twRemove(Out);
    twAdd(In);
  }
  OPD_FORCE_INLINE void moveCWToTW(SiteIndex S) {
    cwRemove(S);
    twAdd(S);
  }

  OPD_FORCE_INLINE double similarity() {
    if (NCW == 0 || NTW == 0)
      return 0.0;
    double Distance = 0.0;
    double InvCW = 1.0 / static_cast<double>(NCW);
    double InvTW = 1.0 / static_cast<double>(NTW);
    for (SiteIndex S = 0, E = numSites(); S != E; ++S) {
      double Diff = static_cast<double>(CWCounts[S]) * InvCW -
                    static_cast<double>(TWCounts[S]) * InvTW;
      Distance += Diff < 0 ? -Diff : Diff;
    }
    return 1.0 - Distance / 2.0;
  }

  OPD_FORCE_INLINE bool similarityAtLeast(double T) {
    return similarity() >= T;
  }
};

/// Maps a ModelKind to its fast kernel type under arithmetic policy
/// \p ArithT.
template <ModelKind M, typename ArithT> struct KernelOf;
/// \copydoc KernelOf
template <typename ArithT> struct KernelOf<ModelKind::UnweightedSet, ArithT> {
  /// The kernel type.
  using type = FastUnweightedSetKernel<ArithT>;
};
/// \copydoc KernelOf
template <typename ArithT> struct KernelOf<ModelKind::WeightedSet, ArithT> {
  /// The kernel type.
  using type = FastWeightedSetKernel<ArithT>;
};
/// \copydoc KernelOf
template <typename ArithT> struct KernelOf<ModelKind::ManhattanBBV, ArithT> {
  /// The kernel type.
  using type = FastManhattanKernel<ArithT>;
};

/// Decision-identical threshold analyzer without the confidence margin
/// computation (the reference analyzer's margin divisions and Welford
/// variance updates never feed a P/T decision on this interface).
class FastThresholdAnalyzer {
  double Threshold;

public:
  explicit FastThresholdAnalyzer(double Threshold) : Threshold(Threshold) {}

  double threshold() const { return Threshold; }

  PhaseState processValue(double Similarity) {
    return Similarity >= Threshold ? PhaseState::InPhase
                                   : PhaseState::Transition;
  }
  void resetStats() {}
  void updateStats(double Similarity) { (void)Similarity; }
  void reset() {}

  std::string describe() const {
    return std::string("threshold ") + formatDouble(Threshold, 2);
  }
};

/// Mean-only Welford accumulator: the identical Mean update sequence as
/// RunningStats::push (the M2/min/max folds it drops never feed Mean).
class FastMeanStats {
  uint64_t N = 0;
  double Mean = 0.0;

public:
  void reset() { *this = FastMeanStats(); }
  void push(double X) {
    ++N;
    Mean += (X - Mean) / static_cast<double>(N);
  }
  bool empty() const { return N == 0; }
  double mean() const { return N == 0 ? 0.0 : Mean; }
};

/// Decision-identical average analyzer: same entry gate, same
/// mean-minus-delta comparison on the same running mean.
class FastAverageAnalyzer {
  double Delta;
  double EntryThreshold;
  FastMeanStats Stats;

public:
  explicit FastAverageAnalyzer(double Delta, double EntryThreshold = -1.0)
      : Delta(Delta), EntryThreshold(EntryThreshold) {}

  PhaseState processValue(double Similarity) {
    if (Stats.empty()) {
      if (EntryThreshold >= 0.0 && Similarity < EntryThreshold)
        return PhaseState::Transition;
      return PhaseState::InPhase;
    }
    return Similarity >= Stats.mean() - Delta ? PhaseState::InPhase
                                              : PhaseState::Transition;
  }
  void resetStats() { Stats.reset(); }
  void updateStats(double Similarity) { Stats.push(Similarity); }
  void reset() { Stats.reset(); }

  std::string describe() const {
    return std::string("average d=") + formatDouble(Delta, 2);
  }
};

/// Decision-identical hysteresis analyzer.
class FastHysteresisAnalyzer {
  double EnterThreshold;
  double ExitThreshold;
  PhaseState State = PhaseState::Transition;

public:
  FastHysteresisAnalyzer(double EnterThreshold, double ExitThreshold)
      : EnterThreshold(EnterThreshold), ExitThreshold(ExitThreshold) {
    assert(ExitThreshold <= EnterThreshold &&
           "exit threshold must not exceed the enter threshold");
  }

  PhaseState processValue(double Similarity) {
    double Threshold = State == PhaseState::InPhase ? ExitThreshold
                                                    : EnterThreshold;
    State = Similarity >= Threshold ? PhaseState::InPhase
                                    : PhaseState::Transition;
    return State;
  }
  void resetStats() {}
  void updateStats(double Similarity) { (void)Similarity; }
  void reset() { State = PhaseState::Transition; }

  std::string describe() const {
    return std::string("hysteresis ") + formatDouble(EnterThreshold, 2) +
           "/" + formatDouble(ExitThreshold, 2);
  }
};

/// Maps an AnalyzerKind to its fast analyzer type.
template <AnalyzerKind A> struct AnalyzerOf;
/// \copydoc AnalyzerOf
template <> struct AnalyzerOf<AnalyzerKind::Threshold> {
  /// The analyzer type.
  using type = FastThresholdAnalyzer;
};
/// \copydoc AnalyzerOf
template <> struct AnalyzerOf<AnalyzerKind::Average> {
  /// The analyzer type.
  using type = FastAverageAnalyzer;
};
/// \copydoc AnalyzerOf
template <> struct AnalyzerOf<AnalyzerKind::Hysteresis> {
  /// The analyzer type.
  using type = FastHysteresisAnalyzer;
};

/// Mirrors makeAnalyzer()'s parameter mapping exactly (including the
/// hysteresis exit-threshold derivation).
template <AnalyzerKind A>
typename AnalyzerOf<A>::type buildAnalyzer(double Param) {
  if constexpr (A == AnalyzerKind::Threshold)
    return FastThresholdAnalyzer(Param);
  else if constexpr (A == AnalyzerKind::Average)
    return FastAverageAnalyzer(Param);
  else
    return FastHysteresisAnalyzer(Param, Param >= 0.15 ? Param - 0.15 : 0.0);
}

/// The hysteresis exit threshold makeAnalyzer() derives from the enter
/// threshold (shared by buildAnalyzer and the shared-scan cursors).
inline double hysteresisExitThreshold(double EnterThreshold) {
  return EnterThreshold >= 0.15 ? EnterThreshold - 0.15 : 0.0;
}

/// Minimal growable array for the model's element buffer. Exists only
/// because std::vector::push_back is too large for the compiler to
/// inline into the fully-expanded consume loop (measured: gcc -O3
/// emits it as an out-of-line call per element, and the call forces
/// every cached kernel pointer back to memory around it). The hot push
/// is a compare, a store, and an increment; growth stays out of line.
class ElementBuffer {
public:
  ElementBuffer() = default;
  ~ElementBuffer() { delete[] Data; }
  ElementBuffer(const ElementBuffer &) = delete;
  ElementBuffer &operator=(const ElementBuffer &) = delete;

  OPD_FORCE_INLINE void push_back(SiteIndex S) {
    if (Size == Cap)
      grow();
    Data[Size++] = S;
  }
  SiteIndex operator[](size_t I) const {
    assert(I < Size && "buffer index out of range");
    return Data[I];
  }
  size_t size() const { return Size; }
  SiteIndex *begin() { return Data; }
  const SiteIndex *begin() const { return Data; }
  SiteIndex *end() { return Data + Size; }
  const SiteIndex *end() const { return Data + Size; }
  void clear() { Size = 0; }
  /// Shrink to the first N elements (endPhase keeps only the seed).
  void truncate(size_t N) {
    assert(N <= Size && "truncate cannot grow the buffer");
    Size = N;
  }
  /// Drop the first N elements, sliding the rest down (compaction).
  void dropFront(size_t N) {
    assert(N <= Size && "dropping more than the buffer holds");
    std::memmove(Data, Data + N, (Size - N) * sizeof(SiteIndex));
    Size -= N;
  }

private:
  OPD_NOINLINE void grow() {
    size_t NewCap = Cap ? Cap * 2 : 1024;
    SiteIndex *NewData = new SiteIndex[NewCap];
    std::copy(Data, Data + Size, NewData);
    delete[] Data;
    Data = NewData;
    Cap = NewCap;
  }

  SiteIndex *Data = nullptr;
  size_t Size = 0;
  size_t Cap = 0;
};

/// WindowedModel with the kernel held by concrete value and the TW
/// policy fixed at compile time. Field-for-field and statement-for-
/// statement mirror of WindowedModel/WindowedModel.cpp.
template <ModelKind M, TWPolicyKind Policy,
          typename ArithT = PlainKernelArith>
class FastWindowedModel {
  using Kernel = typename KernelOf<M, ArithT>::type;

public:
  FastWindowedModel(const WindowConfig &Config, SiteIndex NumSites,
                    ArithT Arith = ArithT())
      : Config(Config), TheKernel(NumSites, Arith) {
    assert(Config.TWPolicy == Policy && "config does not match this shape");
    assert(Config.CWSize > 0 && "current window must be nonempty");
    assert(Config.TWSize > 0 && "trailing window must be nonempty");
    assert(Config.SkipFactor > 0 && "skip factor must be positive");
  }

  OPD_FORCE_INLINE void consume(SiteIndex S) {
    ++GlobalConsumed;
    Buffer.push_back(S);

    if (CWLen < Config.CWSize) {
      consumeFill(S);
      return;
    }

    SiteIndex Y = Buffer[Head + TWLen];
    TheKernel.cwReplace(S, Y);
    bool TWGrows = (Policy == TWPolicyKind::Adaptive && InPhaseGrowth) ||
                   TWLen < Config.TWSize;
    if (TWGrows) {
      TheKernel.twAdd(Y);
      ++TWLen;
    } else {
      SiteIndex Z = Buffer[Head];
      TheKernel.twReplace(Y, Z);
      ++Head;
    }
    compactBuffer();
  }

  /// The CW-fill path, kept out of the hot loop: it only runs for the
  /// first CWSize elements after a flush, where per-element cost is
  /// dominated by the kernel add anyway.
  OPD_NOINLINE void consumeFill(SiteIndex S) {
    ++CWLen;
    TheKernel.cwAdd(S);
    if (PartialCW && CWLen == Config.CWSize)
      PartialCW = false;
  }

  bool windowsFull() const {
    if (PhaseOpen)
      return TWLen > 0 && CWLen > 0;
    return CWLen == Config.CWSize && TWLen >= Config.TWSize;
  }

  OPD_FORCE_INLINE double similarity() { return TheKernel.similarity(); }

  OPD_FORCE_INLINE bool similarityAtLeast(double T) {
    return TheKernel.similarityAtLeast(T);
  }

  uint64_t computeAnchorOffset() const {
    return offsetOfTWIndex(anchorPosition());
  }

  void startPhase() {
    if constexpr (Policy == TWPolicyKind::Adaptive) {
      uint64_t A = anchorPosition();
      if (Config.Resize == ResizeKind::Slide) {
        uint64_t Take = std::min(A, CWLen);
        dropTWPrefix(A);
        for (uint64_t I = 0; I != Take; ++I) {
          SiteIndex X = Buffer[Head + TWLen];
          TheKernel.moveCWToTW(X);
          ++TWLen;
          --CWLen;
        }
        if (CWLen < Config.CWSize)
          PartialCW = true;
      } else {
        dropTWPrefix(A);
      }
      InPhaseGrowth = true;
    }
    PhaseOpen = true;
  }

  void endPhase() {
    uint64_t Keep = std::min<uint64_t>(
        std::min<uint64_t>(Config.SkipFactor, Config.CWSize),
        TWLen + CWLen);
    std::copy(Buffer.end() - static_cast<ptrdiff_t>(Keep), Buffer.end(),
              Buffer.begin());
    Buffer.truncate(Keep);
    Head = 0;
    TWLen = 0;
    CWLen = Keep;
    TheKernel.reset();
    for (SiteIndex S : Buffer)
      TheKernel.cwAdd(S);
    InPhaseGrowth = false;
    PartialCW = false;
    PhaseOpen = false;
  }

  void reset() {
    Buffer.clear();
    Head = 0;
    TWLen = CWLen = 0;
    InPhaseGrowth = PartialCW = PhaseOpen = false;
    GlobalConsumed = 0;
    TheKernel.reset();
  }

  /// Swaps in a new same-policy window configuration; the kernel keeps
  /// its per-site arrays (reset() zeroes only the touched entries).
  void reconfigure(const WindowConfig &NewConfig) {
    assert(NewConfig.TWPolicy == Policy &&
           "config does not match this shape");
    assert(NewConfig.CWSize > 0 && "current window must be nonempty");
    assert(NewConfig.TWSize > 0 && "trailing window must be nonempty");
    assert(NewConfig.SkipFactor > 0 && "skip factor must be positive");
    Config = NewConfig;
    reset();
  }

  uint64_t consumed() const { return GlobalConsumed; }
  const WindowConfig &config() const { return Config; }

  void setBatchKernels(bool Enabled) { TheKernel.setBatchEnabled(Enabled); }
  bool batchKernelsEnabled() const { return TheKernel.batchEnabled(); }

private:
  uint64_t offsetOfTWIndex(uint64_t I) const {
    return GlobalConsumed - (TWLen + CWLen) + I;
  }

  uint64_t anchorPosition() const {
    assert(Head + TWLen + CWLen == Buffer.size() &&
           "window bookkeeping out of sync");
    // Kernels with dense per-site CW counts dispatch the anchor scan to
    // the blocked membership kernels: both scans return the index of the
    // first matching element in scan order, exactly what the scalar
    // loops below compute (core/BatchKernel.h documents the equivalence).
    if constexpr (Kernel::HasDenseCW) {
      if (TheKernel.batchEnabled()) {
        const uint32_t *Counts = TheKernel.cwCountsData();
        const SiteIndex *Window = Buffer.begin() + Head;
        if (Config.Anchor == AnchorKind::RightmostNoisy)
          return batchRightmostNoisy(Counts, Window, TWLen);
        return batchLeftmostNonNoisy(Counts, Window, TWLen);
      }
    }
    if (Config.Anchor == AnchorKind::RightmostNoisy) {
      for (uint64_t I = TWLen; I != 0; --I)
        if (!TheKernel.inCW(Buffer[Head + I - 1]))
          return I;
      return 0;
    }
    for (uint64_t I = 0; I != TWLen; ++I)
      if (TheKernel.inCW(Buffer[Head + I]))
        return I;
    return TWLen;
  }

  void dropTWPrefix(uint64_t N) {
    assert(N <= TWLen && "dropping more than the TW holds");
    for (uint64_t I = 0; I != N; ++I)
      TheKernel.twRemove(Buffer[Head + I]);
    Head += N;
    TWLen -= N;
  }

  void compactBuffer() {
    if (Head > WindowedModel::CompactionThreshold &&
        Head * 2 > Buffer.size()) {
      Buffer.dropFront(Head);
      Head = 0;
    }
  }

  WindowConfig Config;
  Kernel TheKernel;

  ElementBuffer Buffer;
  size_t Head = 0;
  uint64_t TWLen = 0;
  uint64_t CWLen = 0;

  bool PhaseOpen = false;
  bool InPhaseGrowth = false;
  bool PartialCW = false;

  uint64_t GlobalConsumed = 0;
};

} // namespace
} // namespace fastkernels
} // namespace opd

#endif // OPD_CORE_FASTKERNELS_H
