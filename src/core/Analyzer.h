//===- core/Analyzer.h - Similarity analyzers -------------------*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The similarity analyzer (Figure 1) decides whether a similarity value
/// signifies P or T. The paper's two analyzer policies:
///
///  * ThresholdAnalyzer — P iff value >= fixed threshold (the policy used
///    by most prior work; thresholds 0.5-0.8 in the evaluation).
///  * AverageAnalyzer — P iff value >= runningAverage - delta, where the
///    running average covers the similarity values of the current phase
///    (reset at each phase start per Figure 3's resetStats; deltas
///    0.01-0.4 in the evaluation). With no accumulated values the
///    analyzer optimistically reports P; an optional entry threshold
///    (an extension, off by default) gates phase entry instead.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_CORE_ANALYZER_H
#define OPD_CORE_ANALYZER_H

#include "support/Statistics.h"
#include "trace/StateSequence.h"

#include <cstdint>
#include <memory>
#include <string>

namespace opd {

/// The analyzer policies available to the framework.
enum class AnalyzerKind : uint8_t {
  Threshold,  ///< Fixed-threshold analyzer.
  Average,    ///< Running-average-minus-delta analyzer.
  Hysteresis, ///< Dual-threshold analyzer (extension; see below).
};

/// Short mnemonic for tables.
const char *analyzerKindName(AnalyzerKind Kind);

/// Abstract analyzer, driven by the PhaseDetector exactly as in Figure 3:
/// processValue() at every evaluation, resetStats() when a phase starts,
/// updateStats() while it continues.
class Analyzer {
public:
  virtual ~Analyzer();

  /// Decides P/T for one similarity value.
  virtual PhaseState processValue(double Similarity) = 0;

  /// Called when a new phase starts (Figure 3).
  virtual void resetStats() {}

  /// Called with each similarity value while the phase continues.
  virtual void updateStats(double Similarity) { (void)Similarity; }

  /// Full reset for reuse on a fresh stream.
  virtual void reset() {}

  /// Confidence in the most recent processValue() decision, in [0, 1]
  /// (the framework's optional "level of confidence in the current
  /// state", Section 2). The default is maximal confidence; analyzers
  /// with a decision threshold report the normalized margin between the
  /// value and the threshold.
  virtual double confidence() const { return 1.0; }

  /// One-line description for result tables, e.g. "threshold 0.60".
  virtual std::string describe() const = 0;

protected:
  /// Maps the margin between a similarity value and a decision threshold
  /// to a confidence in [0, 1] (saturating at MarginScale).
  static double marginConfidence(double Value, double Threshold) {
    constexpr double MarginScale = 0.2;
    double Margin = Value > Threshold ? Value - Threshold
                                      : Threshold - Value;
    return Margin >= MarginScale ? 1.0 : Margin / MarginScale;
  }
};

/// P iff the similarity value meets a fixed threshold.
class ThresholdAnalyzer final : public Analyzer {
  double Threshold;
  double LastConfidence = 0.0;

public:
  explicit ThresholdAnalyzer(double Threshold) : Threshold(Threshold) {}

  PhaseState processValue(double Similarity) override {
    LastConfidence = marginConfidence(Similarity, Threshold);
    return Similarity >= Threshold ? PhaseState::InPhase
                                   : PhaseState::Transition;
  }

  double confidence() const override { return LastConfidence; }

  void reset() override { LastConfidence = 0.0; }

  std::string describe() const override;

  double threshold() const { return Threshold; }
};

/// P iff the similarity value is within Delta below the running average
/// of the current phase's similarity values.
class AverageAnalyzer final : public Analyzer {
  double Delta;
  /// Extension (disabled when < 0): when no phase statistics exist yet,
  /// require the value to meet this fixed threshold to start a phase
  /// instead of entering optimistically.
  double EntryThreshold;
  RunningStats Stats;
  double LastConfidence = 0.0;

public:
  explicit AverageAnalyzer(double Delta, double EntryThreshold = -1.0)
      : Delta(Delta), EntryThreshold(EntryThreshold) {}

  PhaseState processValue(double Similarity) override {
    if (Stats.empty()) {
      if (EntryThreshold >= 0.0 && Similarity < EntryThreshold) {
        LastConfidence = marginConfidence(Similarity, EntryThreshold);
        return PhaseState::Transition;
      }
      // Optimistic entry: no phase statistics to judge against yet.
      LastConfidence = 0.0;
      return PhaseState::InPhase;
    }
    double Threshold = Stats.mean() - Delta;
    LastConfidence = marginConfidence(Similarity, Threshold);
    return Similarity >= Threshold ? PhaseState::InPhase
                                   : PhaseState::Transition;
  }

  double confidence() const override { return LastConfidence; }

  void resetStats() override { Stats.reset(); }

  void updateStats(double Similarity) override { Stats.push(Similarity); }

  void reset() override {
    Stats.reset();
    LastConfidence = 0.0;
  }

  std::string describe() const override;

  double delta() const { return Delta; }
};

/// Extension: dual-threshold (hysteresis) analyzer. A phase starts only
/// when the similarity reaches EnterThreshold and ends only when it
/// drops below ExitThreshold (< EnterThreshold); the dead band between
/// the thresholds suppresses flapping around a single threshold.
class HysteresisAnalyzer final : public Analyzer {
  double EnterThreshold;
  double ExitThreshold;
  PhaseState State = PhaseState::Transition;
  double LastConfidence = 0.0;

public:
  HysteresisAnalyzer(double EnterThreshold, double ExitThreshold)
      : EnterThreshold(EnterThreshold), ExitThreshold(ExitThreshold) {
    assert(ExitThreshold <= EnterThreshold &&
           "exit threshold must not exceed the enter threshold");
  }

  PhaseState processValue(double Similarity) override {
    double Threshold = State == PhaseState::InPhase ? ExitThreshold
                                                    : EnterThreshold;
    LastConfidence = marginConfidence(Similarity, Threshold);
    State = Similarity >= Threshold ? PhaseState::InPhase
                                    : PhaseState::Transition;
    return State;
  }

  double confidence() const override { return LastConfidence; }

  void reset() override {
    State = PhaseState::Transition;
    LastConfidence = 0.0;
  }

  std::string describe() const override;
};

/// Creates an analyzer by kind: Threshold takes the threshold, Average
/// the delta, and Hysteresis the enter threshold (the exit threshold is
/// Param - 0.15, clamped at 0).
std::unique_ptr<Analyzer> makeAnalyzer(AnalyzerKind Kind, double Param);

} // namespace opd

#endif // OPD_CORE_ANALYZER_H
