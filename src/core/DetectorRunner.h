//===- core/DetectorRunner.h - Stream a trace through a detector -*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// DetectorRunner feeds a branch trace through an OnlineDetector in
/// skipFactor-sized batches and records the per-element state output plus
/// the detected phases. It also records, for every detected phase, the
/// detector's anchor-based estimate of where the phase actually began —
/// the corrected boundaries Figure 8 scores.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_CORE_DETECTORRUNNER_H
#define OPD_CORE_DETECTORRUNNER_H

#include "core/PhaseDetector.h"
#include "trace/BranchTrace.h"
#include "trace/StateSequence.h"

#include <vector>

namespace opd {

/// Everything one detector run produces.
struct DetectorRun {
  /// One state per trace element (the framework's output).
  StateSequence States;
  /// The InPhase intervals of States.
  std::vector<PhaseInterval> DetectedPhases;
  /// DetectedPhases with each start replaced by the detector's anchored
  /// estimate of the true phase start (clamped to stay sorted/disjoint).
  std::vector<PhaseInterval> AnchoredPhases;

  /// Forgets the previous run's output but keeps all capacity, so a
  /// reused DetectorRun (sweep arenas) stops allocating once it has seen
  /// a worst-case run.
  void clear() {
    States.clear();
    DetectedPhases.clear();
    AnchoredPhases.clear();
  }
};

/// Streams \p Trace through \p Detector (which is reset first). The
/// trailing partial batch, if any, is processed as a short batch.
///
/// This overload carries no observation code at all — it is the
/// zero-cost path observer-free callers bind to.
DetectorRun runDetector(OnlineDetector &Detector, const BranchTrace &Trace);

/// As above, but fills a caller-owned \p Run (cleared first) instead of
/// returning a fresh one, so tight loops over many configurations reuse
/// the state/phase storage. The value-returning overload forwards here.
void runDetector(OnlineDetector &Detector, const BranchTrace &Trace,
                 DetectorRun &Run);

/// Derives \p Run's phase lists from its populated States: fills
/// DetectedPhases from the InPhase intervals and builds AnchoredPhases
/// by pulling each start back to the matching entry of
/// \p AnchoredStarts (one per detected phase, in order), clamped so the
/// list stays sorted and disjoint. Shared by runDetector and the
/// shared-scan engine (core/SharedScan.h) so both paths finalize runs
/// identically.
void finalizeAnchoredPhases(DetectorRun &Run,
                            const std::vector<uint64_t> &AnchoredStarts);

/// As above; when \p Observer is non-null it is attached to the detector
/// for the duration of the run (detached again before returning) and
/// additionally receives the stream-level events: onRunBegin/onRunEnd
/// and onPhaseBegin/onPhaseEnd at exact element offsets, so the observed
/// phase intervals equal DetectorRun::DetectedPhases. An observed run
/// produces output identical to an unobserved one; a null \p Observer
/// forwards to the unobserved overload.
DetectorRun runDetector(OnlineDetector &Detector, const BranchTrace &Trace,
                        DetectorObserver *Observer);

} // namespace opd

#endif // OPD_CORE_DETECTORRUNNER_H
