//===- core/BatchKernel.h - SoA batch kernel primitives ---------*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structure-of-arrays batch primitives for the fast-path window kernels
/// (core/FastDetector.cpp): the weighted min-sum recompute as a
/// contiguous sweep over packed per-site count lanes, and the anchor
/// membership scans as blocked gathers over the trailing-window element
/// buffer. Each primitive has an AVX2 implementation selected by runtime
/// dispatch and a portable scalar-block fallback that compiles
/// everywhere; both produce bit-identical results, so the PR 4
/// differential suite gates either path interchangeably.
///
/// Bit-identity argument, per primitive:
///
///  * batchMinSum computes sum_i min(cw_i*NTW, tw_i*NCW) — an integer
///    sum of non-negative terms, so evaluation order cannot perturb the
///    result. The AVX2 path runs only when both window totals fit 32
///    bits: then every product fits 64 bits exactly (32x32->64 widening
///    multiplies) and the full sum is bounded by NCW*NTW < 2^64, so the
///    per-lane partial sums (each a subset of the terms) cannot wrap.
///    Totals of 2^32 or more fall back to the portable loop, which
///    wraps mod 2^64 exactly as the reference kernel's scalar arithmetic
///    does.
///  * The anchor scans are pure reads (find the first/last
///    zero-count element); any traversal produces the same index.
///
/// Lane admission: the batch kernels are compiled against a fixed lane
/// plan per model (batchLanePlan()). A configuration is only run on them
/// when its KernelBounds certificate admits that plan —
/// admitsBatchLanes() in analysis/KernelBounds.h performs the check, and
/// the sweep harness wires the verdict into every detector it runs via
/// FastDetectorBase::setBatchKernels(). Refused configs take the
/// pre-batch scalar paths (still bit-identical; the refusal is the
/// certificate gate, not a behavioral fork).
///
//===----------------------------------------------------------------------===//

#ifndef OPD_CORE_BATCHKERNEL_H
#define OPD_CORE_BATCHKERNEL_H

#include "core/SimilarityKernel.h"

#include <cstdint>

namespace opd {

/// The batch-kernel implementation selected at runtime.
enum class BatchBackend : uint8_t {
  Portable, ///< Scalar block loops; compiles and runs everywhere.
  AVX2,     ///< 256-bit SIMD sweeps/gathers (x86-64 with AVX2 only).
};

/// Stable mnemonic for \p B ("portable" / "avx2").
const char *batchBackendName(BatchBackend B);

/// True when the AVX2 code paths were compiled into this binary (x86-64,
/// not disabled via -DOPD_DISABLE_SIMD=ON). Says nothing about the CPU.
bool simdCompiledIn();

/// True when the AVX2 backend can actually run: compiled in and the CPU
/// reports AVX2 support.
bool simdAvailable();

/// Resolves the OPD_SIMD environment override against the
/// hardware-detected backend \p Detected: "off"/"portable"/"0" force
/// Portable; anything else (including unset/empty/"on"/"avx2") keeps
/// \p Detected — the override can drop to the fallback but cannot enable
/// lanes the host lacks. Pure function, exposed for tests.
BatchBackend batchBackendFromEnv(const char *Value, BatchBackend Detected);

/// The backend the batch primitives dispatch to: AVX2 when available,
/// unless overridden by OPD_SIMD in the environment (read once) or by
/// setBatchBackend().
BatchBackend activeBatchBackend();

/// Overrides the active backend (benchmarks pin each matrix leg; tests
/// force the fallback). Best-effort: requesting AVX2 on a host without
/// it leaves the backend Portable and returns false.
bool setBatchBackend(BatchBackend B);

/// The lane plan a model's batch kernels are compiled with — the core
/// side of the certificate admission handshake. A config may only run on
/// the batch kernels when its KernelBounds certificate proves every
/// per-site count fits CountLaneBits and (when ProductLaneBits is
/// nonzero) every product/accumulator fits ProductLaneBits; see
/// admitsBatchLanes() in analysis/KernelBounds.h.
struct BatchLanePlan {
  /// Lane width holding the packed per-site counts (0 = the model has no
  /// batch kernel at all).
  unsigned CountLaneBits = 0;
  /// Lane width holding cross-products and the min-sum accumulator
  /// (0 = the model's batch kernels form no products).
  unsigned ProductLaneBits = 0;
};

/// The compiled lane plan for \p Model: weighted-set sweeps 32-bit count
/// lanes into 64-bit product/accumulator lanes; the unweighted-set and
/// Manhattan batch layers gather 32-bit count lanes only (membership
/// scans — their similarity arithmetic stays scalar: the unweighted
/// distinct counters are O(1) per element, and the Manhattan
/// floating-point sum is order-sensitive, so reordering it into lanes
/// would break bit-identity).
BatchLanePlan batchLanePlan(ModelKind Model);

/// sum over i < N of min(Pairs[2i]*NTW, Pairs[2i+1]*NCW), mod 2^64 —
/// the weighted kernel's MinSum recompute over a packed roster whose
/// per-site CW/TW counts are stored as adjacent (cw, tw) uint32 pairs.
/// The interleaved layout is what makes the AVX2 sweep cheap: one
/// 256-bit load delivers four whole pairs with the cw counts already in
/// the even 32-bit lanes and the tw counts in the odd lanes, which is
/// exactly the operand form the 32x32->64 lane multiply consumes — no
/// widening shuffles per block. Dispatches to the active backend; the
/// AVX2 sweep runs only when both totals fit 32 bits (exactness guard,
/// see file comment), so the result is bit-identical to the portable
/// loop for every input.
uint64_t batchMinSum(const uint32_t *Pairs, size_t N, uint64_t NCW,
                     uint64_t NTW);

/// batchMinSum pinned to the portable scalar-block loop (differential
/// tests compare the dispatched result against this).
uint64_t batchMinSumPortable(const uint32_t *Pairs, size_t N, uint64_t NCW,
                             uint64_t NTW);

/// RightmostNoisy anchor scan: 1 + the largest I < N with
/// Counts[Elements[I]] == 0, or 0 when every element's count is nonzero
/// (the exact value FastWindowedModel::anchorPosition's descending loop
/// returns). Dispatches to the active backend.
uint64_t batchRightmostNoisy(const uint32_t *Counts,
                             const SiteIndex *Elements, uint64_t N);

/// LeftmostNonNoisy anchor scan: the smallest I < N with
/// Counts[Elements[I]] != 0, or N when every element's count is zero.
/// Dispatches to the active backend.
uint64_t batchLeftmostNonNoisy(const uint32_t *Counts,
                               const SiteIndex *Elements, uint64_t N);

/// batchRightmostNoisy pinned to the portable loop (test oracle).
uint64_t batchRightmostNoisyPortable(const uint32_t *Counts,
                                     const SiteIndex *Elements, uint64_t N);

/// batchLeftmostNonNoisy pinned to the portable loop (test oracle).
uint64_t batchLeftmostNonNoisyPortable(const uint32_t *Counts,
                                       const SiteIndex *Elements,
                                       uint64_t N);

} // namespace opd

#endif // OPD_CORE_BATCHKERNEL_H
