//===- core/MultiScale.cpp - Multi-scale (hierarchical) detection -----------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "core/MultiScale.h"

#include <algorithm>

using namespace opd;

MultiScaleDetector::MultiScaleDetector(const Options &Opts,
                                       SiteIndex NumSites) {
  assert(Opts.NumLevels > 0 && "need at least one level");
  assert(Opts.ScaleFactor > 1 && "levels must grow");
  uint32_t CW = Opts.BaseCWSize;
  for (unsigned L = 0; L != Opts.NumLevels; ++L) {
    DetectorConfig Config;
    Config.Window.CWSize = CW;
    Config.Window.TWSize = CW;
    Config.Window.SkipFactor = 1;
    Config.Window.TWPolicy = Opts.TWPolicy;
    Config.Model = Opts.Model;
    Config.TheAnalyzer = Opts.TheAnalyzer;
    Config.AnalyzerParam = Opts.AnalyzerParam;
    Levels.push_back(makeDetector(Config, NumSites));
    CW *= Opts.ScaleFactor;
  }
  States.resize(Opts.NumLevels, PhaseState::Transition);
}

const std::vector<PhaseState> &
MultiScaleDetector::processElement(SiteIndex S) {
  for (size_t L = 0; L != Levels.size(); ++L)
    States[L] = Levels[L]->processBatch(&S, 1);
  return States;
}

uint32_t MultiScaleDetector::levelCWSize(unsigned L) const {
  assert(L < Levels.size() && "level out of range");
  return Levels[L]->model().config().CWSize;
}

void MultiScaleDetector::reset() {
  for (std::unique_ptr<PhaseDetector> &D : Levels)
    D->reset();
  std::fill(States.begin(), States.end(), PhaseState::Transition);
}

MultiScaleRun opd::runMultiScale(MultiScaleDetector &Detector,
                                 const BranchTrace &Trace) {
  Detector.reset();
  MultiScaleRun Run;
  Run.LevelStates.resize(Detector.numLevels());
  for (uint64_t I = 0, E = Trace.size(); I != E; ++I) {
    const std::vector<PhaseState> &States =
        Detector.processElement(Trace[I]);
    for (size_t L = 0; L != States.size(); ++L)
      Run.LevelStates[L].append(States[L]);
  }
  return Run;
}

std::vector<PhaseHierarchyNode>
opd::buildPhaseHierarchy(const MultiScaleRun &Run) {
  // Work coarsest-to-finest: each finer phase attaches to the deepest
  // existing node whose interval contains its start.
  std::vector<PhaseHierarchyNode> Roots;

  // Finds the deepest node in the current hierarchy containing Offset.
  auto findEnclosing = [&](uint64_t Offset) -> PhaseHierarchyNode * {
    PhaseHierarchyNode *Best = nullptr;
    std::vector<PhaseHierarchyNode> *Nodes = &Roots;
    for (;;) {
      PhaseHierarchyNode *Found = nullptr;
      for (PhaseHierarchyNode &N : *Nodes) {
        if (N.Interval.Begin <= Offset && Offset < N.Interval.End) {
          Found = &N;
          break;
        }
      }
      if (!Found)
        return Best;
      Best = Found;
      Nodes = &Found->Children;
    }
  };

  unsigned NumLevels = static_cast<unsigned>(Run.LevelStates.size());
  for (unsigned Coarse = NumLevels; Coarse-- > 0;) {
    for (const PhaseInterval &P : Run.LevelStates[Coarse].phases()) {
      PhaseHierarchyNode Node{P, Coarse, {}};
      if (PhaseHierarchyNode *Parent = findEnclosing(P.Begin))
        Parent->Children.push_back(std::move(Node));
      else
        Roots.push_back(std::move(Node));
    }
  }
  return Roots;
}
