//===- core/SweepSpec.cpp - Detector configuration cross products -----------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "core/SweepSpec.h"

#include <cstdio>
#include <cstdlib>

using namespace opd;

std::vector<AnalyzerSpec> opd::paperAnalyzers() {
  return {
      {AnalyzerKind::Threshold, 0.5}, {AnalyzerKind::Threshold, 0.6},
      {AnalyzerKind::Threshold, 0.7}, {AnalyzerKind::Threshold, 0.8},
      {AnalyzerKind::Average, 0.01},  {AnalyzerKind::Average, 0.05},
      {AnalyzerKind::Average, 0.1},   {AnalyzerKind::Average, 0.2},
      {AnalyzerKind::Average, 0.3},   {AnalyzerKind::Average, 0.4},
  };
}

std::vector<AnalyzerSpec> opd::reducedAnalyzers() {
  return {
      {AnalyzerKind::Threshold, 0.6},
      {AnalyzerKind::Threshold, 0.8},
      {AnalyzerKind::Average, 0.05},
      {AnalyzerKind::Average, 0.2},
  };
}

std::vector<DetectorConfig> opd::enumerateConfigs(const SweepSpec &Spec) {
  std::vector<DetectorConfig> Configs;
  auto addConfig = [&](const WindowConfig &W, ModelKind M,
                       const AnalyzerSpec &A) {
    DetectorConfig C;
    C.Window = W;
    C.Model = M;
    C.TheAnalyzer = A.Kind;
    C.AnalyzerParam = A.Param;
    Configs.push_back(C);
  };

  for (uint32_t CW : Spec.CWSizes) {
    for (uint32_t TWFactor : Spec.TWFactors) {
      for (ModelKind M : Spec.Models) {
        for (const AnalyzerSpec &A : Spec.Analyzers) {
          // Regular policies with the requested skip factors.
          for (TWPolicyKind Policy : Spec.TWPolicies) {
            for (uint32_t Skip : Spec.SkipFactors) {
              WindowConfig W;
              W.CWSize = CW;
              W.TWSize = CW * TWFactor;
              W.SkipFactor = Skip;
              W.TWPolicy = Policy;
              if (Policy == TWPolicyKind::Adaptive) {
                for (AnchorKind Anchor : Spec.Anchors) {
                  for (ResizeKind Resize : Spec.Resizes) {
                    W.Anchor = Anchor;
                    W.Resize = Resize;
                    addConfig(W, M, A);
                  }
                }
              } else {
                addConfig(W, M, A);
              }
            }
          }
          // The extant fixed-interval approach: Constant TW, skip == CW.
          if (Spec.IncludeFixedInterval) {
            WindowConfig W;
            W.CWSize = CW;
            W.TWSize = CW * TWFactor;
            W.SkipFactor = CW;
            W.TWPolicy = TWPolicyKind::Constant;
            addConfig(W, M, A);
          }
        }
      }
    }
  }
  return Configs;
}

std::vector<DetectorConfig>
opd::enumerateCrossProduct(const SweepSpec &Spec) {
  std::vector<DetectorConfig> Configs;
  auto addConfig = [&](const WindowConfig &W, ModelKind M,
                       const AnalyzerSpec &A) {
    DetectorConfig C;
    C.Window = W;
    C.Model = M;
    C.TheAnalyzer = A.Kind;
    C.AnalyzerParam = A.Param;
    Configs.push_back(C);
  };

  for (uint32_t CW : Spec.CWSizes) {
    for (uint32_t TWFactor : Spec.TWFactors) {
      for (ModelKind M : Spec.Models) {
        for (const AnalyzerSpec &A : Spec.Analyzers) {
          for (AnchorKind Anchor : Spec.Anchors) {
            for (ResizeKind Resize : Spec.Resizes) {
              WindowConfig W;
              W.CWSize = CW;
              W.TWSize = CW * TWFactor;
              W.Anchor = Anchor;
              W.Resize = Resize;
              for (TWPolicyKind Policy : Spec.TWPolicies) {
                W.TWPolicy = Policy;
                for (uint32_t Skip : Spec.SkipFactors) {
                  W.SkipFactor = Skip;
                  addConfig(W, M, A);
                }
              }
              if (Spec.IncludeFixedInterval) {
                W.TWPolicy = TWPolicyKind::Constant;
                W.SkipFactor = CW;
                addConfig(W, M, A);
              }
            }
          }
        }
      }
    }
  }
  return Configs;
}

SweepSpec opd::paperCrossSpec() {
  SweepSpec Spec;
  Spec.CWSizes = {500, 1000, 5000, 10000, 25000, 50000, 100000};
  Spec.TWFactors = {1, 2};
  Spec.SkipFactors = {1, 10, 100, 250};
  Spec.TWPolicies = {TWPolicyKind::Constant, TWPolicyKind::Adaptive};
  Spec.IncludeFixedInterval = true;
  Spec.Models = {ModelKind::UnweightedSet, ModelKind::WeightedSet};
  Spec.Analyzers = paperAnalyzers();
  Spec.Anchors = {AnchorKind::RightmostNoisy, AnchorKind::LeftmostNonNoisy};
  Spec.Resizes = {ResizeKind::Slide, ResizeKind::Move};
  return Spec;
}

SweepSpec opd::benchSweepSpec(const std::string &Name,
                              const std::vector<AnalyzerSpec> &Analyzers) {
  SweepSpec Spec;
  Spec.Analyzers = Analyzers;
  if (Name == "table2") {
    Spec.CWSizes = {500, 1000, 5000, 10000, 25000, 50000, 100000};
    Spec.IncludeFixedInterval = true;
  } else if (Name == "fig4") {
    Spec.CWSizes = {500, 1000, 5000, 10000, 25000, 50000, 100000};
    Spec.IncludeFixedInterval = true;
  } else if (Name == "fig5") {
    // CW = 1/2 MPL for each MPL of interest.
    Spec.CWSizes = {500, 5000, 25000, 50000};
  } else if (Name == "fig6") {
    Spec.CWSizes = {500, 5000, 25000, 50000};
    Spec.Models = {ModelKind::UnweightedSet};
  } else if (Name == "fig7") {
    // CW = 1/2 MPL for each standard MPL.
    Spec.CWSizes = {500, 2500, 5000, 12500, 25000, 50000};
    Spec.TWPolicies = {TWPolicyKind::Adaptive};
    Spec.Anchors = {AnchorKind::RightmostNoisy,
                    AnchorKind::LeftmostNonNoisy};
    Spec.Resizes = {ResizeKind::Slide, ResizeKind::Move};
  } else if (Name == "fig8") {
    Spec.CWSizes = {500, 5000, 25000, 50000, 100000};
  } else if (Name == "ablation13") {
    Spec.CWSizes = {500, 1000, 2500, 5000};
    Spec.IncludeFixedInterval = true;
  } else {
    std::fprintf(stderr, "benchSweepSpec: unknown sweep name '%s'\n",
                 Name.c_str());
    std::abort();
  }
  return Spec;
}

const std::vector<std::string> &opd::benchSweepNames() {
  static const std::vector<std::string> Names = {
      "table2", "fig4", "fig5", "fig6", "fig7", "fig8", "ablation13"};
  return Names;
}
