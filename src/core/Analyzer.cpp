//===- core/Analyzer.cpp - Similarity analyzers ------------------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "core/Analyzer.h"

#include "support/Format.h"

using namespace opd;

const char *opd::analyzerKindName(AnalyzerKind Kind) {
  switch (Kind) {
  case AnalyzerKind::Threshold:
    return "threshold";
  case AnalyzerKind::Average:
    return "average";
  case AnalyzerKind::Hysteresis:
    return "hysteresis";
  }
  return "unknown";
}

Analyzer::~Analyzer() = default;

std::string ThresholdAnalyzer::describe() const {
  return std::string("threshold ") + formatDouble(Threshold, 2);
}

std::string AverageAnalyzer::describe() const {
  return std::string("average d=") + formatDouble(Delta, 2);
}

std::string HysteresisAnalyzer::describe() const {
  return std::string("hysteresis ") + formatDouble(EnterThreshold, 2) +
         "/" + formatDouble(ExitThreshold, 2);
}

std::unique_ptr<Analyzer> opd::makeAnalyzer(AnalyzerKind Kind,
                                            double Param) {
  switch (Kind) {
  case AnalyzerKind::Threshold:
    return std::make_unique<ThresholdAnalyzer>(Param);
  case AnalyzerKind::Average:
    return std::make_unique<AverageAnalyzer>(Param);
  case AnalyzerKind::Hysteresis:
    return std::make_unique<HysteresisAnalyzer>(
        Param, Param >= 0.15 ? Param - 0.15 : 0.0);
  }
  return nullptr;
}
