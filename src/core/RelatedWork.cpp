//===- core/RelatedWork.cpp - Related-work detectors -------------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "core/RelatedWork.h"

#include "support/Format.h"
#include "support/Statistics.h"

#include <algorithm>

using namespace opd;

//===----------------------------------------------------------------------===//
// LuDetector
//===----------------------------------------------------------------------===//

PhaseState LuDetector::processBatch(const SiteIndex *Elements, size_t N) {
  assert(N > 0 && "empty batch");
  Consumed += N;

  double Mean = 0.0;
  for (size_t I = 0; I != N; ++I)
    Mean += static_cast<double>(Elements[I]);
  Mean /= static_cast<double>(N);

  PhaseState NewState;
  if (History.size() < 2) {
    // Not enough history to form an interval yet.
    NewState = PhaseState::Transition;
    OutCount = 0;
  } else {
    RunningStats Stats;
    for (double H : History)
      Stats.push(H);
    double Lo = Stats.mean() - Opts.Sigmas * Stats.stddev();
    double Hi = Stats.mean() + Opts.Sigmas * Stats.stddev();
    bool Out = Mean < Lo || Mean > Hi;
    OutCount = Out ? OutCount + 1 : 0;
    if (OutCount >= Opts.ConsecutiveOut) {
      // Sufficiently many consecutive out-of-interval windows: the phase
      // has ended; restart the history from the new behavior.
      NewState = PhaseState::Transition;
      History.clear();
      OutCount = 0;
    } else {
      NewState = PhaseState::InPhase;
    }
  }

  History.push_back(Mean);
  if (History.size() > Opts.HistoryLength)
    History.pop_front();
  State = NewState;
  return State;
}

void LuDetector::reset() {
  History.clear();
  OutCount = 0;
  Consumed = 0;
  State = PhaseState::Transition;
}

std::string LuDetector::describe() const {
  return "lu mean-interval w=" + std::to_string(Opts.SampleSize) +
         " h=" + std::to_string(Opts.HistoryLength) +
         " k=" + formatDouble(Opts.Sigmas, 1);
}

//===----------------------------------------------------------------------===//
// DasDetector
//===----------------------------------------------------------------------===//

PhaseState DasDetector::processBatch(const SiteIndex *Elements, size_t N) {
  assert(N > 0 && "empty batch");
  Consumed += N;

  std::fill(Current.begin(), Current.end(), 0);
  for (size_t I = 0; I != N; ++I) {
    assert(Elements[I] < Current.size() && "site out of range");
    ++Current[Elements[I]];
  }

  if (!HasTarget) {
    Target = Current;
    HasTarget = true;
    State = PhaseState::Transition;
    return State;
  }

  RunningPearson Pearson;
  for (size_t S = 0; S != Current.size(); ++S)
    Pearson.push(static_cast<double>(Current[S]),
                 static_cast<double>(Target[S]));
  double R = Pearson.correlation();

  if (R >= Opts.Threshold) {
    State = PhaseState::InPhase;
  } else {
    // Behavior no longer correlates with the phase's target vector: start
    // tracking the new behavior as the next candidate phase.
    Target = Current;
    State = PhaseState::Transition;
  }
  return State;
}

void DasDetector::reset() {
  std::fill(Current.begin(), Current.end(), 0);
  std::fill(Target.begin(), Target.end(), 0);
  HasTarget = false;
  Consumed = 0;
  State = PhaseState::Transition;
}

std::string DasDetector::describe() const {
  return "das pearson w=" + std::to_string(Opts.SampleSize) +
         " r>=" + formatDouble(Opts.Threshold, 2);
}
