//===- core/OfflineClustering.h - Offline interval clustering --*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The offline comparison point. The approaches the paper contrasts
/// itself with (Sherwood et al.'s basic-block-vector work) partition the
/// complete trace into fixed intervals, summarize each as a frequency
/// vector, and cluster the vectors with k-means — with the whole trace
/// available in hindsight. clusterTrace() implements that pipeline:
/// deterministic k-means++ seeding, Lloyd iterations, and phase
/// extraction as maximal runs of equally-labeled intervals.
///
/// Note what this detector *cannot* do, which the scoring metric
/// penalizes: it has no T state (every interval belongs to some
/// cluster), and its boundaries snap to interval edges — the
/// misalignment problem that motivates skipFactor = 1 online detection.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_CORE_OFFLINECLUSTERING_H
#define OPD_CORE_OFFLINECLUSTERING_H

#include "trace/BranchTrace.h"
#include "trace/StateSequence.h"

#include <cstdint>
#include <vector>

namespace opd {

struct OfflineClusteringOptions {
  /// Elements per interval (the extant 100K-instruction intervals,
  /// scaled to our traces).
  uint64_t IntervalLength = 10000;
  /// k for k-means.
  unsigned NumClusters = 6;
  /// Lloyd iteration cap (stops earlier on convergence).
  unsigned MaxIterations = 64;
  /// Seeding determinism.
  uint64_t Seed = 1;
};

struct OfflineClusteringResult {
  /// Cluster label of each interval (the final partial interval
  /// included).
  std::vector<unsigned> IntervalLabels;
  /// Maximal same-label runs, as phase intervals in element offsets.
  std::vector<PhaseInterval> Phases;
  /// All-P states with boundaries at label changes (what the offline
  /// approach would hand a client).
  StateSequence States;
  /// Number of clusters actually used (<= k; empty clusters collapse).
  unsigned NumClusters = 0;
};

/// Runs the offline pipeline over \p Trace.
OfflineClusteringResult clusterTrace(const BranchTrace &Trace,
                                     const OfflineClusteringOptions &Options);

} // namespace opd

#endif // OPD_CORE_OFFLINECLUSTERING_H
