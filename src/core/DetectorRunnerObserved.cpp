//===- core/DetectorRunnerObserved.cpp - Observed detector runs --------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
//
// The observed variant of runDetector lives in its own translation unit,
// and duplicates the run structure instead of sharing it, so that
// attaching the observability layer leaves the unobserved overload's
// translation unit — and therefore its generated code — untouched (the
// zero-cost property BenchPerf checks; compiling the events into the
// shared TU measurably perturbed the hot loop's inlining).
//
//===----------------------------------------------------------------------===//

#include "core/DetectorRunner.h"

#include <algorithm>

using namespace opd;

namespace {

/// The observed run: same structure as the unobserved overload, plus the
/// stream-level events and the detector's internal events (via the
/// processBatchObserved entry point).
DetectorRun runObserved(OnlineDetector &Detector, const BranchTrace &Trace,
                        DetectorObserver *Observer) {
  Detector.reset();
  Detector.setObserver(Observer);
  DetectorRun Run;
  const std::vector<SiteIndex> &Elements = Trace.elements();
  size_t Batch = Detector.batchSize();
  assert(Batch > 0 && "batch size must be positive");
  Observer->onRunBegin(Elements.size(), Batch);

  PhaseState Prev = PhaseState::Transition;
  std::vector<uint64_t> AnchoredStarts;
  for (uint64_t Offset = 0; Offset < Elements.size(); Offset += Batch) {
    size_t N = std::min<size_t>(Batch, Elements.size() - Offset);
    PhaseState S = Detector.processBatchObserved(&Elements[Offset], N);
    // One state per input element (the batch shares its state).
    Run.States.append(S, N);
    if (Prev == PhaseState::Transition && S == PhaseState::InPhase) {
      AnchoredStarts.push_back(Detector.lastPhaseStartEstimate());
      Observer->onPhaseBegin(Offset, AnchoredStarts.back());
    } else if (Prev == PhaseState::InPhase &&
               S == PhaseState::Transition) {
      Observer->onPhaseEnd(Offset);
    }
    Prev = S;
  }
  if (Prev == PhaseState::InPhase)
    Observer->onPhaseEnd(Elements.size());
  Observer->onRunEnd(Elements.size());
  Detector.setObserver(nullptr);

  Run.DetectedPhases = Run.States.phases();
  assert(AnchoredStarts.size() == Run.DetectedPhases.size() &&
         "one anchored start per detected phase");

  // Build the anchor-corrected phases: each start is pulled back to the
  // anchor estimate, clamped so the list stays sorted and disjoint.
  Run.AnchoredPhases.reserve(Run.DetectedPhases.size());
  uint64_t PrevEnd = 0;
  for (size_t I = 0; I != Run.DetectedPhases.size(); ++I) {
    PhaseInterval P = Run.DetectedPhases[I];
    uint64_t Anchor = I < AnchoredStarts.size() ? AnchoredStarts[I] : P.Begin;
    P.Begin = std::clamp(Anchor, PrevEnd, P.Begin);
    Run.AnchoredPhases.push_back(P);
    PrevEnd = P.End;
  }
  return Run;
}

} // namespace

DetectorRun opd::runDetector(OnlineDetector &Detector,
                             const BranchTrace &Trace,
                             DetectorObserver *Observer) {
  return Observer ? runObserved(Detector, Trace, Observer)
                  : runDetector(Detector, Trace);
}
