//===- core/RelatedWork.h - Related-work detectors --------------*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 6 observes that two related online detectors can be modeled in
/// the framework; we implement both as OnlineDetectors so the ablation
/// bench can compare them against the framework's instantiations:
///
///  * LuDetector (Lu et al., JILP 2004): the model computes the average
///    "address" (here: the profile-element site value) of each window of
///    SampleSize elements; the analyzer keeps the previous HistoryLength
///    window averages and declares a phase change when the current
///    average falls outside mean +/- Sigmas * stddev of that history for
///    ConsecutiveOut consecutive windows.
///
///  * DasDetector (Das et al., CGO 2006): the model builds the site
///    frequency vector of each window of SampleSize elements; the
///    analyzer computes Pearson's correlation coefficient between the
///    current vector and the target vector captured when the current
///    phase began, comparing it to a fixed threshold.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_CORE_RELATEDWORK_H
#define OPD_CORE_RELATEDWORK_H

#include "core/PhaseDetector.h"

#include <deque>
#include <vector>

namespace opd {

/// Lu et al.'s mean-value/interval-bound detector.
class LuDetector final : public OnlineDetector {
public:
  struct Options {
    /// Elements per sample window (4K in the original system).
    uint32_t SampleSize = 4096;
    /// Number of previous window means kept.
    uint32_t HistoryLength = 7;
    /// Width of the acceptance interval in standard deviations.
    double Sigmas = 2.0;
    /// Consecutive out-of-interval windows that end a phase.
    uint32_t ConsecutiveOut = 2;
  };

  explicit LuDetector(const Options &Opts) : Opts(Opts) {
    assert(Opts.SampleSize > 0 && "sample window must be nonempty");
    assert(Opts.HistoryLength >= 2 && "history must hold >= 2 windows");
  }

  PhaseState processBatch(const SiteIndex *Elements, size_t N) override;
  size_t batchSize() const override { return Opts.SampleSize; }
  void reset() override;
  uint64_t lastPhaseStartEstimate() const override { return Consumed; }
  std::string describe() const override;

private:
  Options Opts;
  std::deque<double> History;
  uint32_t OutCount = 0;
  uint64_t Consumed = 0;
  PhaseState State = PhaseState::Transition;
};

/// Das et al.'s Pearson-correlation detector.
class DasDetector final : public OnlineDetector {
public:
  struct Options {
    /// Elements per sample window.
    uint32_t SampleSize = 4096;
    /// Minimum Pearson's r to remain in phase.
    double Threshold = 0.9;
  };

  DasDetector(const Options &Opts, SiteIndex NumSites)
      : Opts(Opts), Current(NumSites, 0), Target(NumSites, 0) {
    assert(Opts.SampleSize > 0 && "sample window must be nonempty");
  }

  PhaseState processBatch(const SiteIndex *Elements, size_t N) override;
  size_t batchSize() const override { return Opts.SampleSize; }
  void reset() override;
  uint64_t lastPhaseStartEstimate() const override { return Consumed; }
  std::string describe() const override;

private:
  Options Opts;
  std::vector<uint32_t> Current;
  std::vector<uint32_t> Target;
  bool HasTarget = false;
  uint64_t Consumed = 0;
  PhaseState State = PhaseState::Transition;
};

} // namespace opd

#endif // OPD_CORE_RELATEDWORK_H
