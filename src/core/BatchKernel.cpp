//===- core/BatchKernel.cpp - SoA batch kernel primitives --------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
//
// The AVX2 implementations are compiled per-function with
// __attribute__((target("avx2"))) behind a runtime __builtin_cpu_supports
// dispatch, so one binary carries both paths and non-AVX2 hosts never
// execute a VEX instruction. -DOPD_DISABLE_SIMD=ON (or a non-x86 target,
// or an unknown compiler) compiles the AVX2 bodies out entirely and the
// dispatcher collapses to the portable loops.
//
// Exactness of the AVX2 min-sum sweep (the only primitive that computes
// rather than searches): the dispatcher admits it only when NCW < 2^32
// and NTW < 2^32. Each roster count is a uint32_t, so every product
// cw_i*NTW and tw_i*NCW is an exact 32x32->64 widening multiply
// (_mm256_mul_epu32 of an interleaved-pair lane by a <2^32 total), and
// the whole sum is bounded by sum_i cw_i*NTW = NCW*NTW < 2^64 — every
// per-lane partial sum is a subset of those non-negative terms, so no
// addition wraps and lane order cannot matter. Totals at or above 2^32
// (impossible for certificate-admitted configs, but the primitive must
// not silently diverge) take the portable loop, which wraps mod 2^64 in
// exactly the reference kernel's order-invariant way.
//
//===----------------------------------------------------------------------===//

#include "core/BatchKernel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) && !defined(OPD_DISABLE_SIMD) && \
    (defined(__GNUC__) || defined(__clang__))
#define OPD_BATCH_X86 1
#include <immintrin.h>
#else
#define OPD_BATCH_X86 0
#endif

using namespace opd;

namespace {

#if OPD_BATCH_X86

__attribute__((target("avx2"))) uint64_t
minSumAVX2(const uint32_t *Pairs, size_t N, uint64_t NCW, uint64_t NTW) {
  // One 256-bit load covers four interleaved (cw, tw) pairs: the cw
  // counts sit in the even 32-bit lanes — the operand form
  // _mm256_mul_epu32 consumes directly — and a 32-bit lane shift brings
  // the tw counts down for the mirror product. Both totals are < 2^32
  // (dispatcher guard), so the lane products are exact.
  const __m256i VNTW = _mm256_set1_epi64x(static_cast<long long>(NTW));
  const __m256i VNCW = _mm256_set1_epi64x(static_cast<long long>(NCW));
  __m256i Acc0 = _mm256_setzero_si256();
  __m256i Acc1 = _mm256_setzero_si256();
  size_t I = 0;
  if ((NCW * NTW) >> 63 == 0) {
    // Every product is at most NCW*NTW < 2^63, so the signed 64-bit lane
    // compare already orders them correctly — no sign-flip needed. This
    // covers every certificate-admitted configuration; two accumulators
    // split the loop-carried add dependency.
    for (; I + 8 <= N; I += 8) {
      __m256i V0 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i *>(Pairs + 2 * I));
      __m256i V1 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i *>(Pairs + 2 * I + 8));
      __m256i A0 = _mm256_mul_epu32(V0, VNTW);
      __m256i B0 = _mm256_mul_epu32(_mm256_srli_epi64(V0, 32), VNCW);
      __m256i A1 = _mm256_mul_epu32(V1, VNTW);
      __m256i B1 = _mm256_mul_epu32(_mm256_srli_epi64(V1, 32), VNCW);
      Acc0 = _mm256_add_epi64(
          Acc0, _mm256_blendv_epi8(A0, B0, _mm256_cmpgt_epi64(A0, B0)));
      Acc1 = _mm256_add_epi64(
          Acc1, _mm256_blendv_epi8(A1, B1, _mm256_cmpgt_epi64(A1, B1)));
    }
  } else {
    // Products may reach [2^63, 2^64): XORing both compare operands with
    // the sign bit maps unsigned order onto the signed lane compare.
    const __m256i SignFlip =
        _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ULL));
    for (; I + 4 <= N; I += 4) {
      __m256i V = _mm256_loadu_si256(
          reinterpret_cast<const __m256i *>(Pairs + 2 * I));
      __m256i A = _mm256_mul_epu32(V, VNTW);
      __m256i B = _mm256_mul_epu32(_mm256_srli_epi64(V, 32), VNCW);
      __m256i AGtB = _mm256_cmpgt_epi64(_mm256_xor_si256(A, SignFlip),
                                        _mm256_xor_si256(B, SignFlip));
      Acc0 = _mm256_add_epi64(Acc0, _mm256_blendv_epi8(A, B, AGtB));
    }
  }
  __m256i Acc = _mm256_add_epi64(Acc0, Acc1);
  __m128i Fold = _mm_add_epi64(_mm256_castsi256_si128(Acc),
                               _mm256_extracti128_si256(Acc, 1));
  uint64_t Sum = static_cast<uint64_t>(_mm_cvtsi128_si64(Fold)) +
                 static_cast<uint64_t>(_mm_extract_epi64(Fold, 1));
  for (; I != N; ++I)
    Sum += std::min(Pairs[2 * I] * NTW, Pairs[2 * I + 1] * NCW);
  return Sum;
}

__attribute__((target("avx2"))) uint64_t
rightmostNoisyAVX2(const uint32_t *Counts, const SiteIndex *Elements,
                   uint64_t N) {
  const __m256i Zero = _mm256_setzero_si256();
  uint64_t I = N;
  // Scalar over the partial block at the top, then whole blocks of 8
  // descending (the scan wants the highest zero-count element).
  uint64_t Aligned = N & ~static_cast<uint64_t>(7);
  while (I > Aligned) {
    if (Counts[Elements[I - 1]] == 0)
      return I;
    --I;
  }
  while (I != 0) {
    I -= 8;
    __m256i Idx = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(Elements + I));
    __m256i C = _mm256_i32gather_epi32(
        reinterpret_cast<const int *>(Counts), Idx, 4);
    unsigned Mask = static_cast<unsigned>(_mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpeq_epi32(C, Zero))));
    if (Mask != 0)
      return I + (32 - static_cast<unsigned>(__builtin_clz(Mask)));
  }
  return 0;
}

__attribute__((target("avx2"))) uint64_t
leftmostNonNoisyAVX2(const uint32_t *Counts, const SiteIndex *Elements,
                     uint64_t N) {
  const __m256i Zero = _mm256_setzero_si256();
  uint64_t I = 0;
  for (; I + 8 <= N; I += 8) {
    __m256i Idx = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(Elements + I));
    __m256i C = _mm256_i32gather_epi32(
        reinterpret_cast<const int *>(Counts), Idx, 4);
    unsigned NonZero = 0xFFu ^ static_cast<unsigned>(_mm256_movemask_ps(
                                  _mm256_castsi256_ps(
                                      _mm256_cmpeq_epi32(C, Zero))));
    if (NonZero != 0)
      return I + static_cast<unsigned>(__builtin_ctz(NonZero));
  }
  for (; I != N; ++I)
    if (Counts[Elements[I]] != 0)
      return I;
  return N;
}

bool cpuHasAVX2() { return __builtin_cpu_supports("avx2"); }

#else

bool cpuHasAVX2() { return false; }

#endif // OPD_BATCH_X86

BatchBackend detectBackend() {
  BatchBackend Detected =
      cpuHasAVX2() ? BatchBackend::AVX2 : BatchBackend::Portable;
  return batchBackendFromEnv(std::getenv("OPD_SIMD"), Detected);
}

std::atomic<BatchBackend> &backendSlot() {
  static std::atomic<BatchBackend> Slot{detectBackend()};
  return Slot;
}

} // namespace

const char *opd::batchBackendName(BatchBackend B) {
  return B == BatchBackend::AVX2 ? "avx2" : "portable";
}

bool opd::simdCompiledIn() { return OPD_BATCH_X86 != 0; }

bool opd::simdAvailable() { return cpuHasAVX2(); }

BatchBackend opd::batchBackendFromEnv(const char *Value,
                                      BatchBackend Detected) {
  if (Value == nullptr || *Value == '\0')
    return Detected;
  if (std::strcmp(Value, "off") == 0 || std::strcmp(Value, "portable") == 0 ||
      std::strcmp(Value, "0") == 0 || std::strcmp(Value, "scalar") == 0)
    return BatchBackend::Portable;
  return Detected;
}

BatchBackend opd::activeBatchBackend() {
  return backendSlot().load(std::memory_order_relaxed);
}

bool opd::setBatchBackend(BatchBackend B) {
  if (B == BatchBackend::AVX2 && !simdAvailable()) {
    backendSlot().store(BatchBackend::Portable, std::memory_order_relaxed);
    return false;
  }
  backendSlot().store(B, std::memory_order_relaxed);
  return true;
}

BatchLanePlan opd::batchLanePlan(ModelKind Model) {
  switch (Model) {
  case ModelKind::WeightedSet:
    return {/*CountLaneBits=*/32, /*ProductLaneBits=*/64};
  case ModelKind::UnweightedSet:
  case ModelKind::ManhattanBBV:
    return {/*CountLaneBits=*/32, /*ProductLaneBits=*/0};
  }
  return {};
}

uint64_t opd::batchMinSumPortable(const uint32_t *Pairs, size_t N,
                                  uint64_t NCW, uint64_t NTW) {
  uint64_t Sum = 0;
  for (size_t I = 0; I != N; ++I)
    Sum += std::min(Pairs[2 * I] * NTW, Pairs[2 * I + 1] * NCW);
  return Sum;
}

uint64_t opd::batchMinSum(const uint32_t *Pairs, size_t N, uint64_t NCW,
                          uint64_t NTW) {
#if OPD_BATCH_X86
  if (activeBatchBackend() == BatchBackend::AVX2 && (NCW >> 32) == 0 &&
      (NTW >> 32) == 0)
    return minSumAVX2(Pairs, N, NCW, NTW);
#endif
  return batchMinSumPortable(Pairs, N, NCW, NTW);
}

uint64_t opd::batchRightmostNoisyPortable(const uint32_t *Counts,
                                          const SiteIndex *Elements,
                                          uint64_t N) {
  for (uint64_t I = N; I != 0; --I)
    if (Counts[Elements[I - 1]] == 0)
      return I;
  return 0;
}

uint64_t opd::batchRightmostNoisy(const uint32_t *Counts,
                                  const SiteIndex *Elements, uint64_t N) {
#if OPD_BATCH_X86
  if (activeBatchBackend() == BatchBackend::AVX2)
    return rightmostNoisyAVX2(Counts, Elements, N);
#endif
  return batchRightmostNoisyPortable(Counts, Elements, N);
}

uint64_t opd::batchLeftmostNonNoisyPortable(const uint32_t *Counts,
                                            const SiteIndex *Elements,
                                            uint64_t N) {
  for (uint64_t I = 0; I != N; ++I)
    if (Counts[Elements[I]] != 0)
      return I;
  return N;
}

uint64_t opd::batchLeftmostNonNoisy(const uint32_t *Counts,
                                    const SiteIndex *Elements, uint64_t N) {
#if OPD_BATCH_X86
  if (activeBatchBackend() == BatchBackend::AVX2)
    return leftmostNonNoisyAVX2(Counts, Elements, N);
#endif
  return batchLeftmostNonNoisyPortable(Counts, Elements, N);
}
