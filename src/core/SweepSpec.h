//===- core/SweepSpec.h - Detector configuration cross products -*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SweepSpec describes one cross product of framework parameters (the
/// paper's evaluation enumerates over 10,000 such points) and
/// enumerateConfigs() expands it. The spec lives in core — not in the
/// sweep harness — so the static config-space analyzer
/// (analysis/ConfigAnalysis.h) can reason about it without dragging in
/// traces or baselines; harness/Sweep.h re-exports it for clients.
///
/// Two enumerators:
///
///  * enumerateConfigs() — the policy-aware expansion the reproduction
///    benches use: anchor/resize dimensions only multiply the Adaptive
///    policy, and the Fixed-Interval point is appended per (CW, factor,
///    model, analyzer) cell.
///  * enumerateCrossProduct() — the raw cross product with no special
///    cases: every dimension multiplies every policy, and Fixed Interval
///    is emitted even where it coincides with an enumerated (Constant,
///    skip == CW) point. This is the brute-force space the paper's
///    evaluation describes; ConfigAnalysis proves its redundancy away
///    instead of hand-special-casing it.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_CORE_SWEEPSPEC_H
#define OPD_CORE_SWEEPSPEC_H

#include "core/DetectorConfig.h"

#include <string>
#include <vector>

namespace opd {

/// One analyzer instantiation in a sweep.
struct AnalyzerSpec {
  AnalyzerKind Kind;
  double Param;
};

/// A cross product of framework parameters.
struct SweepSpec {
  std::vector<uint32_t> CWSizes;
  /// TW size = CW size * factor (the paper co-sizes the windows; factor 1
  /// everywhere in the reproduction, other factors serve the ablations).
  std::vector<uint32_t> TWFactors = {1};
  std::vector<uint32_t> SkipFactors = {1};
  std::vector<TWPolicyKind> TWPolicies = {TWPolicyKind::Constant,
                                          TWPolicyKind::Adaptive};
  /// Also enumerate the prior literature's Fixed Interval policy
  /// (Constant TW with skipFactor == CW size == TW size).
  bool IncludeFixedInterval = false;
  std::vector<ModelKind> Models = {ModelKind::UnweightedSet,
                                   ModelKind::WeightedSet};
  std::vector<AnalyzerSpec> Analyzers;
  std::vector<AnchorKind> Anchors = {AnchorKind::RightmostNoisy};
  std::vector<ResizeKind> Resizes = {ResizeKind::Slide};
};

/// The paper's analyzer set: thresholds .5/.6/.7/.8 and average deltas
/// .01/.05/.1/.2/.3/.4.
std::vector<AnalyzerSpec> paperAnalyzers();

/// A trimmed analyzer set for the slow full-cross-product benches:
/// thresholds .6/.8 and deltas .05/.2.
std::vector<AnalyzerSpec> reducedAnalyzers();

/// Expands the cross product with the policy-aware special cases (see
/// file comment).
std::vector<DetectorConfig> enumerateConfigs(const SweepSpec &Spec);

/// Expands the raw cross product with no special cases (see file
/// comment). A superset of enumerateConfigs() output containing the
/// provably redundant points ConfigAnalysis merges.
std::vector<DetectorConfig> enumerateCrossProduct(const SweepSpec &Spec);

/// The paper's full evaluation space as this reproduction frames it:
/// the seven CW sizes of Tables 1-2, TW factors {1, 2}, skip factors
/// {1, 10, 100, 250}, both window policies plus Fixed Interval, both
/// models, the complete analyzer set, and both anchor and resize
/// policies. enumerateCrossProduct() expands it to >10,000 points.
SweepSpec paperCrossSpec();

/// Named sweep specs of the reproduction benches, shared between the
/// bench binaries and the config_check linter so the checked spec is
/// the executed spec. Known names: "table2", "fig4", "fig5", "fig6",
/// "fig7", "fig8", "ablation13". \p Analyzers fills the analyzer
/// dimension (the benches pass their --full-dependent set). Aborts on
/// an unknown name; see benchSweepNames().
SweepSpec benchSweepSpec(const std::string &Name,
                         const std::vector<AnalyzerSpec> &Analyzers);

/// The names benchSweepSpec() accepts, in table/figure order.
const std::vector<std::string> &benchSweepNames();

} // namespace opd

#endif // OPD_CORE_SWEEPSPEC_H
