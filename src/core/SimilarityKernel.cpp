//===- core/SimilarityKernel.cpp - Window similarity kernels ----------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "core/SimilarityKernel.h"

#include <algorithm>

using namespace opd;

const char *opd::modelKindName(ModelKind Kind) {
  switch (Kind) {
  case ModelKind::UnweightedSet:
    return "unweighted";
  case ModelKind::WeightedSet:
    return "weighted";
  case ModelKind::ManhattanBBV:
    return "manhattan";
  }
  return "unknown";
}

const char *opd::kernelQuantityName(KernelQuantity Q) {
  switch (Q) {
  case KernelQuantity::CWCount:
    return "cw-count";
  case KernelQuantity::TWCount:
    return "tw-count";
  case KernelQuantity::CWTotal:
    return "cw-total";
  case KernelQuantity::TWTotal:
    return "tw-total";
  case KernelQuantity::CWDistinct:
    return "cw-distinct";
  case KernelQuantity::BothDistinct:
    return "both-distinct";
  case KernelQuantity::ProductCWTW:
    return "product-cw-tw";
  case KernelQuantity::ProductTWCW:
    return "product-tw-cw";
  case KernelQuantity::MinSum:
    return "min-sum";
  }
  return "unknown";
}

SimilarityKernel::~SimilarityKernel() = default;

void SimilarityKernel::reset() {
  // O(distinct sites touched): only sites on the touched list can hold a
  // nonzero count, so zeroing exactly those is a full reset.
  for (SiteIndex S : TouchedSites) {
    CWCounts[S] = 0;
    TWCounts[S] = 0;
    SiteTouched[S] = 0;
  }
  TouchedSites.clear();
  NCW = NTW = 0;
}

void SimilarityKernel::seedCountsForTest(const std::vector<uint32_t> &CW,
                                         const std::vector<uint32_t> &TW) {
  assert(CW.size() == CWCounts.size() && TW.size() == TWCounts.size() &&
         "seed vectors must cover every site");
  reset();
  for (SiteIndex S = 0, E = numSites(); S != E; ++S) {
    CWCounts[S] = CW[S];
    TWCounts[S] = TW[S];
    NCW += CW[S];
    NTW += TW[S];
    if (CW[S] != 0 || TW[S] != 0)
      touch(S);
  }
}

std::unique_ptr<SimilarityKernel> opd::makeKernel(ModelKind Kind,
                                                  SiteIndex NumSites) {
  switch (Kind) {
  case ModelKind::UnweightedSet:
    return std::make_unique<UnweightedSetKernel>(NumSites);
  case ModelKind::WeightedSet:
    return std::make_unique<WeightedSetKernel>(NumSites);
  case ModelKind::ManhattanBBV:
    return std::make_unique<ManhattanKernel>(NumSites);
  }
  return nullptr;
}

std::unique_ptr<SimilarityKernel>
opd::makeCheckedKernel(ModelKind Kind, SiteIndex NumSites,
                       KernelValueProbe &Probe) {
  CheckedKernelArith Arith(Probe);
  switch (Kind) {
  case ModelKind::UnweightedSet:
    return std::make_unique<UnweightedSetKernelT<CheckedKernelArith>>(
        NumSites, Arith);
  case ModelKind::WeightedSet:
    return std::make_unique<WeightedSetKernelT<CheckedKernelArith>>(
        NumSites, Arith);
  case ModelKind::ManhattanBBV:
    return std::make_unique<ManhattanKernelT<CheckedKernelArith>>(NumSites,
                                                                  Arith);
  }
  return nullptr;
}
