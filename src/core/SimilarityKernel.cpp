//===- core/SimilarityKernel.cpp - Window similarity kernels ----------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "core/SimilarityKernel.h"

#include <algorithm>

using namespace opd;

const char *opd::modelKindName(ModelKind Kind) {
  switch (Kind) {
  case ModelKind::UnweightedSet:
    return "unweighted";
  case ModelKind::WeightedSet:
    return "weighted";
  case ModelKind::ManhattanBBV:
    return "manhattan";
  }
  return "unknown";
}

SimilarityKernel::~SimilarityKernel() = default;

void SimilarityKernel::reset() {
  // O(distinct sites touched): only sites on the touched list can hold a
  // nonzero count, so zeroing exactly those is a full reset.
  for (SiteIndex S : TouchedSites) {
    CWCounts[S] = 0;
    TWCounts[S] = 0;
    SiteTouched[S] = 0;
  }
  TouchedSites.clear();
  NCW = NTW = 0;
}

//===----------------------------------------------------------------------===//
// UnweightedSetKernel
//===----------------------------------------------------------------------===//

void UnweightedSetKernel::reset() {
  SimilarityKernel::reset();
  CWDistinct = 0;
  BothDistinct = 0;
}

//===----------------------------------------------------------------------===//
// WeightedSetKernel
//===----------------------------------------------------------------------===//

void WeightedSetKernel::reset() {
  SimilarityKernel::reset();
  MinSum = 0;
  Dirty = false;
}

void WeightedSetKernel::recompute() {
  // term(S) == 0 for any untouched site (both counts zero), so summing
  // the touched list is exact. The sum is an integer, so the list's
  // insertion order cannot perturb the result — bit-identical to a full
  // ascending sweep.
  MinSum = 0;
  for (SiteIndex S : TouchedSites)
    MinSum += term(S);
  Dirty = false;
}

//===----------------------------------------------------------------------===//
// ManhattanKernel
//===----------------------------------------------------------------------===//

double ManhattanKernel::similarity() {
  if (NCW == 0 || NTW == 0)
    return 0.0;
  double Distance = 0.0;
  double InvCW = 1.0 / static_cast<double>(NCW);
  double InvTW = 1.0 / static_cast<double>(NTW);
  for (SiteIndex S = 0, E = numSites(); S != E; ++S) {
    double Diff = static_cast<double>(CWCounts[S]) * InvCW -
                  static_cast<double>(TWCounts[S]) * InvTW;
    Distance += Diff < 0 ? -Diff : Diff;
  }
  return 1.0 - Distance / 2.0;
}

std::unique_ptr<SimilarityKernel> opd::makeKernel(ModelKind Kind,
                                                  SiteIndex NumSites) {
  switch (Kind) {
  case ModelKind::UnweightedSet:
    return std::make_unique<UnweightedSetKernel>(NumSites);
  case ModelKind::WeightedSet:
    return std::make_unique<WeightedSetKernel>(NumSites);
  case ModelKind::ManhattanBBV:
    return std::make_unique<ManhattanKernel>(NumSites);
  }
  return nullptr;
}
