//===- core/SimilarityKernel.cpp - Window similarity kernels ----------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "core/SimilarityKernel.h"

#include <algorithm>

using namespace opd;

const char *opd::modelKindName(ModelKind Kind) {
  switch (Kind) {
  case ModelKind::UnweightedSet:
    return "unweighted";
  case ModelKind::WeightedSet:
    return "weighted";
  case ModelKind::ManhattanBBV:
    return "manhattan";
  }
  return "unknown";
}

SimilarityKernel::~SimilarityKernel() = default;

void SimilarityKernel::reset() {
  std::fill(CWCounts.begin(), CWCounts.end(), 0);
  std::fill(TWCounts.begin(), TWCounts.end(), 0);
  NCW = NTW = 0;
}

//===----------------------------------------------------------------------===//
// UnweightedSetKernel
//===----------------------------------------------------------------------===//

void UnweightedSetKernel::reset() {
  SimilarityKernel::reset();
  CWDistinct = 0;
  BothDistinct = 0;
}

void UnweightedSetKernel::cwAdd(SiteIndex S) {
  assert(S < CWCounts.size() && "site out of range");
  if (CWCounts[S]++ == 0) {
    ++CWDistinct;
    if (TWCounts[S] != 0)
      ++BothDistinct;
  }
  ++NCW;
}

void UnweightedSetKernel::cwRemove(SiteIndex S) {
  assert(S < CWCounts.size() && "site out of range");
  assert(CWCounts[S] != 0 && "removing a site not in the CW");
  if (--CWCounts[S] == 0) {
    --CWDistinct;
    if (TWCounts[S] != 0)
      --BothDistinct;
  }
  --NCW;
}

void UnweightedSetKernel::twAdd(SiteIndex S) {
  assert(S < TWCounts.size() && "site out of range");
  if (TWCounts[S]++ == 0 && CWCounts[S] != 0)
    ++BothDistinct;
  ++NTW;
}

void UnweightedSetKernel::twRemove(SiteIndex S) {
  assert(S < TWCounts.size() && "site out of range");
  assert(TWCounts[S] != 0 && "removing a site not in the TW");
  if (--TWCounts[S] == 0 && CWCounts[S] != 0)
    --BothDistinct;
  --NTW;
}

double UnweightedSetKernel::similarity() {
  if (CWDistinct == 0)
    return 0.0;
  return static_cast<double>(BothDistinct) /
         static_cast<double>(CWDistinct);
}

//===----------------------------------------------------------------------===//
// WeightedSetKernel
//===----------------------------------------------------------------------===//

void WeightedSetKernel::reset() {
  SimilarityKernel::reset();
  MinSum = 0;
  Dirty = false;
}

void WeightedSetKernel::cwAdd(SiteIndex S) {
  assert(S < CWCounts.size() && "site out of range");
  ++CWCounts[S];
  ++NCW;
  Dirty = true;
}

void WeightedSetKernel::cwRemove(SiteIndex S) {
  assert(CWCounts[S] != 0 && "removing a site not in the CW");
  --CWCounts[S];
  --NCW;
  Dirty = true;
}

void WeightedSetKernel::twAdd(SiteIndex S) {
  assert(S < TWCounts.size() && "site out of range");
  ++TWCounts[S];
  ++NTW;
  Dirty = true;
}

void WeightedSetKernel::twRemove(SiteIndex S) {
  assert(TWCounts[S] != 0 && "removing a site not in the TW");
  --TWCounts[S];
  --NTW;
  Dirty = true;
}

void WeightedSetKernel::cwReplace(SiteIndex In, SiteIndex Out) {
  assert(In < CWCounts.size() && Out < CWCounts.size() &&
         "site out of range");
  assert(CWCounts[Out] != 0 && "replacing a site not in the CW");
  if (In == Out)
    return;
  if (Dirty) {
    ++CWCounts[In];
    --CWCounts[Out];
    return;
  }
  uint64_t Before = term(In) + term(Out);
  ++CWCounts[In];
  --CWCounts[Out];
  MinSum += term(In) + term(Out) - Before;
}

void WeightedSetKernel::twReplace(SiteIndex In, SiteIndex Out) {
  assert(In < TWCounts.size() && Out < TWCounts.size() &&
         "site out of range");
  assert(TWCounts[Out] != 0 && "replacing a site not in the TW");
  if (In == Out)
    return;
  if (Dirty) {
    ++TWCounts[In];
    --TWCounts[Out];
    return;
  }
  uint64_t Before = term(In) + term(Out);
  ++TWCounts[In];
  --TWCounts[Out];
  MinSum += term(In) + term(Out) - Before;
}

void WeightedSetKernel::recompute() {
  MinSum = 0;
  for (SiteIndex S = 0, E = numSites(); S != E; ++S)
    MinSum += term(S);
  Dirty = false;
}

double WeightedSetKernel::similarity() {
  if (NCW == 0 || NTW == 0)
    return 0.0;
  if (Dirty)
    recompute();
  return static_cast<double>(MinSum) /
         (static_cast<double>(NCW) * static_cast<double>(NTW));
}

//===----------------------------------------------------------------------===//
// ManhattanKernel
//===----------------------------------------------------------------------===//

void ManhattanKernel::cwAdd(SiteIndex S) {
  assert(S < CWCounts.size() && "site out of range");
  ++CWCounts[S];
  ++NCW;
}

void ManhattanKernel::cwRemove(SiteIndex S) {
  assert(CWCounts[S] != 0 && "removing a site not in the CW");
  --CWCounts[S];
  --NCW;
}

void ManhattanKernel::twAdd(SiteIndex S) {
  assert(S < TWCounts.size() && "site out of range");
  ++TWCounts[S];
  ++NTW;
}

void ManhattanKernel::twRemove(SiteIndex S) {
  assert(TWCounts[S] != 0 && "removing a site not in the TW");
  --TWCounts[S];
  --NTW;
}

double ManhattanKernel::similarity() {
  if (NCW == 0 || NTW == 0)
    return 0.0;
  double Distance = 0.0;
  double InvCW = 1.0 / static_cast<double>(NCW);
  double InvTW = 1.0 / static_cast<double>(NTW);
  for (SiteIndex S = 0, E = numSites(); S != E; ++S) {
    double Diff = static_cast<double>(CWCounts[S]) * InvCW -
                  static_cast<double>(TWCounts[S]) * InvTW;
    Distance += Diff < 0 ? -Diff : Diff;
  }
  return 1.0 - Distance / 2.0;
}

std::unique_ptr<SimilarityKernel> opd::makeKernel(ModelKind Kind,
                                                  SiteIndex NumSites) {
  switch (Kind) {
  case ModelKind::UnweightedSet:
    return std::make_unique<UnweightedSetKernel>(NumSites);
  case ModelKind::WeightedSet:
    return std::make_unique<WeightedSetKernel>(NumSites);
  case ModelKind::ManhattanBBV:
    return std::make_unique<ManhattanKernel>(NumSites);
  }
  return nullptr;
}
