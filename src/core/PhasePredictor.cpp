//===- core/PhasePredictor.cpp - Next-phase prediction ----------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "core/PhasePredictor.h"

using namespace opd;

PhasePredictor::~PhasePredictor() = default;

std::optional<unsigned> MarkovPhasePredictor::predict() const {
  if (!Last)
    return std::nullopt;
  // Scan the successors of Last; EdgeCounts is ordered by (from, to), so
  // ties naturally resolve toward the smaller id.
  std::optional<unsigned> Best;
  uint64_t BestCount = 0;
  auto It = EdgeCounts.lower_bound({*Last, 0});
  for (; It != EdgeCounts.end() && It->first.first == *Last; ++It) {
    if (It->second > BestCount) {
      BestCount = It->second;
      Best = It->first.second;
    }
  }
  if (Best)
    return Best;
  return Last; // No successor history yet: fall back to last-value.
}

void MarkovPhasePredictor::observe(unsigned Id) {
  if (Last)
    ++EdgeCounts[{*Last, Id}];
  Last = Id;
}

void MarkovPhasePredictor::reset() {
  EdgeCounts.clear();
  Last.reset();
}

PredictionAccuracy opd::evaluatePredictor(
    PhasePredictor &Predictor,
    const std::vector<RecurringPhaseTracker::CompletedPhase> &Phases) {
  Predictor.reset();
  PredictionAccuracy Acc;
  for (const RecurringPhaseTracker::CompletedPhase &P : Phases) {
    if (std::optional<unsigned> Forecast = Predictor.predict()) {
      ++Acc.Predictions;
      Acc.Correct += *Forecast == P.Id;
    }
    Predictor.observe(P.Id);
  }
  return Acc;
}
