//===- core/DetectorRunner.cpp - Stream a trace through a detector -----------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "core/DetectorRunner.h"

#include <algorithm>

using namespace opd;

DetectorRun opd::runDetector(OnlineDetector &Detector,
                             const BranchTrace &Trace) {
  DetectorRun Run;
  runDetector(Detector, Trace, Run);
  return Run;
}

void opd::runDetector(OnlineDetector &Detector, const BranchTrace &Trace,
                      DetectorRun &Run) {
  Detector.reset();
  Run.clear();
  const std::vector<SiteIndex> &Elements = Trace.elements();
  size_t Batch = Detector.batchSize();
  assert(Batch > 0 && "batch size must be positive");

  // Size the output for the worst case (a state flip at every batch),
  // capped so degenerate skip=1 runs on huge traces don't commit tens of
  // megabytes up front — append() grows past the cap normally.
  size_t NumBatches = Elements.empty() ? 0 : (Elements.size() - 1) / Batch + 1;
  Run.States.reserveRuns(std::min<size_t>(NumBatches, 1 << 16));

  std::vector<uint64_t> AnchoredStarts;
  AnchoredStarts.reserve(std::min<size_t>(NumBatches / 2 + 1, 1 << 12));
  Detector.consumeTrace(Elements.data(), Elements.size(), Run.States,
                        AnchoredStarts);

  finalizeAnchoredPhases(Run, AnchoredStarts);
}

void opd::finalizeAnchoredPhases(DetectorRun &Run,
                                 const std::vector<uint64_t> &AnchoredStarts) {
  Run.States.phasesInto(Run.DetectedPhases);
  assert(AnchoredStarts.size() == Run.DetectedPhases.size() &&
         "one anchored start per detected phase");

  // Build the anchor-corrected phases: each start is pulled back to the
  // anchor estimate, clamped so the list stays sorted and disjoint.
  Run.AnchoredPhases.clear();
  Run.AnchoredPhases.reserve(Run.DetectedPhases.size());
  uint64_t PrevEnd = 0;
  for (size_t I = 0; I != Run.DetectedPhases.size(); ++I) {
    PhaseInterval P = Run.DetectedPhases[I];
    uint64_t Anchor = I < AnchoredStarts.size() ? AnchoredStarts[I] : P.Begin;
    P.Begin = std::clamp(Anchor, PrevEnd, P.Begin);
    Run.AnchoredPhases.push_back(P);
    PrevEnd = P.End;
  }
}
