//===- core/DetectorRunner.cpp - Stream a trace through a detector -----------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "core/DetectorRunner.h"

#include <algorithm>

using namespace opd;

DetectorRun opd::runDetector(OnlineDetector &Detector,
                             const BranchTrace &Trace) {
  Detector.reset();
  DetectorRun Run;
  const std::vector<SiteIndex> &Elements = Trace.elements();
  size_t Batch = Detector.batchSize();
  assert(Batch > 0 && "batch size must be positive");

  PhaseState Prev = PhaseState::Transition;
  std::vector<uint64_t> AnchoredStarts;
  for (uint64_t Offset = 0; Offset < Elements.size(); Offset += Batch) {
    size_t N = std::min<size_t>(Batch, Elements.size() - Offset);
    PhaseState S = Detector.processBatch(&Elements[Offset], N);
    // One state per input element (the batch shares its state).
    Run.States.append(S, N);
    if (Prev == PhaseState::Transition && S == PhaseState::InPhase)
      AnchoredStarts.push_back(Detector.lastPhaseStartEstimate());
    Prev = S;
  }

  Run.DetectedPhases = Run.States.phases();
  assert(AnchoredStarts.size() == Run.DetectedPhases.size() &&
         "one anchored start per detected phase");

  // Build the anchor-corrected phases: each start is pulled back to the
  // anchor estimate, clamped so the list stays sorted and disjoint.
  Run.AnchoredPhases.reserve(Run.DetectedPhases.size());
  uint64_t PrevEnd = 0;
  for (size_t I = 0; I != Run.DetectedPhases.size(); ++I) {
    PhaseInterval P = Run.DetectedPhases[I];
    uint64_t Anchor = I < AnchoredStarts.size() ? AnchoredStarts[I] : P.Begin;
    P.Begin = std::clamp(Anchor, PrevEnd, P.Begin);
    Run.AnchoredPhases.push_back(P);
    PrevEnd = P.End;
  }
  return Run;
}
