//===- core/SimilarityKernel.h - Window similarity kernels ------*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Similarity kernels maintain per-site occurrence counts for the trailing
/// window (TW) and current window (CW) and compute the similarity value
/// between them (the paper's model policies, Section 2):
///
///  * UnweightedSetKernel — asymmetric working-set similarity: the
///    fraction of *distinct* CW elements that also appear in the TW,
///    independent of frequency.
///  * WeightedSetKernel — symmetric weighted similarity: the sum over
///    elements of min(relative weight in CW, relative weight in TW).
///
/// Both kernels are incremental. The weighted kernel maintains the
/// integer sum  S = sum_s min(cw[s]*|TW|, tw[s]*|CW|)  exactly while the
/// window totals are stable (the replace operations) and falls back to a
/// recomputation over the touched sites after totals change (window
/// fill, flush, anchor, or adaptive TW growth). The online detector is
/// thus O(1) per element in steady state with a constant TW and
/// O(touched sites) per element only while an adaptive TW is growing.
///
/// All kernels track the distinct sites touched since the last reset()
/// (a flag array plus a touched list), so a phase flush — reset(), called
/// on every P->T transition — costs O(distinct sites touched) instead of
/// O(numSites), and the weighted recomputation sums over the touched
/// list only (an integer sum, so the iteration order cannot perturb the
/// result).
///
/// Every kernel arithmetic step routes through a compile-time *arithmetic
/// policy* (PlainKernelArith in production, CheckedKernelArith under
/// test). The incremental MinSum updates are written in a non-wrapping
/// gain/loss form: the replaced-in site's term only rises and the
/// replaced-out site's term only falls, so the gain is added and the loss
/// subtracted as two separately non-negative deltas, and no intermediate
/// ever exceeds the analysis bound NCW*NTW. analysis/KernelBounds.h
/// derives sound upper bounds for each KernelQuantity per DetectorConfig
/// and certifies exactly this no-wraparound property; CheckedKernelArith
/// is the runtime shadow that validates those certificates.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_CORE_SIMILARITYKERNEL_H
#define OPD_CORE_SIMILARITYKERNEL_H

#include "trace/ProfileElement.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

namespace opd {

/// The model policies. UnweightedSet and WeightedSet are the paper's
/// two models; ManhattanBBV is the frequency-vector distance used by the
/// basic-block-vector line of work the paper builds on (Sherwood et
/// al.), expressed as a similarity: 1 - (normalized L1 distance)/2.
enum class ModelKind : uint8_t {
  UnweightedSet, ///< Asymmetric working-set model.
  WeightedSet,   ///< Symmetric min-relative-weight model.
  ManhattanBBV,  ///< 1 - normalized Manhattan distance (extension).
};

/// Short mnemonic ("unweighted"/"weighted") for tables.
const char *modelKindName(ModelKind Kind);

/// Every distinct integer quantity the kernel dataflow computes. The
/// abstract interpreter (analysis/KernelBounds.h) derives a sound upper
/// bound per quantity and DetectorConfig; CheckedKernelArith observes the
/// runtime value of the same quantities so tests can compare the two.
enum class KernelQuantity : uint8_t {
  CWCount,      ///< Per-site occurrence count in the CW (uint32_t).
  TWCount,      ///< Per-site occurrence count in the TW (uint32_t).
  CWTotal,      ///< |CW|: total occurrences in the CW (uint64_t).
  TWTotal,      ///< |TW|: total occurrences in the TW (uint64_t).
  CWDistinct,   ///< Distinct sites present in the CW (unweighted model).
  BothDistinct, ///< Distinct sites present in both windows.
  ProductCWTW,  ///< cw[s]*|TW|, the left min() operand (uint64_t).
  ProductTWCW,  ///< tw[s]*|CW|, the right min() operand (uint64_t).
  MinSum,       ///< sum_s min(cw[s]*|TW|, tw[s]*|CW|) (uint64_t).
};

/// Number of KernelQuantity enumerators (array sizing).
constexpr unsigned NumKernelQuantities = 9;

/// Stable kebab-case mnemonic for \p Q ("cw-count", "product-cw-tw", ...),
/// shared by the certifier's reports and the probe's test output.
const char *kernelQuantityName(KernelQuantity Q);

/// Runtime witness for the kernel value-range analysis: records the
/// maximum observed value and the number of overflow events per
/// KernelQuantity. CheckedKernelArith feeds one of these; tests compare
/// the observed maxima against the certificates' predicted bounds (every
/// observed value must be <= the bound, and overflowCount must be zero
/// whenever the certificate claims no wraparound).
class KernelValueProbe {
public:
  KernelValueProbe() { reset(); }

  /// Records \p V as an observed value of \p Q.
  void observe(KernelQuantity Q, uint64_t V) {
    uint64_t &Max = ObservedMax[static_cast<unsigned>(Q)];
    if (V > Max)
      Max = V;
  }

  /// Records one overflow (wraparound) event on \p Q.
  void noteOverflow(KernelQuantity Q) {
    ++Overflows[static_cast<unsigned>(Q)];
  }

  /// Largest value observed for \p Q since the last reset().
  uint64_t observedMax(KernelQuantity Q) const {
    return ObservedMax[static_cast<unsigned>(Q)];
  }

  /// Number of overflow events recorded for \p Q since the last reset().
  uint64_t overflowCount(KernelQuantity Q) const {
    return Overflows[static_cast<unsigned>(Q)];
  }

  /// Sum of overflowCount over all quantities.
  uint64_t totalOverflows() const {
    uint64_t Total = 0;
    for (uint64_t N : Overflows)
      Total += N;
    return Total;
  }

  /// Zeroes all maxima and overflow counters.
  void reset() {
    ObservedMax.fill(0);
    Overflows.fill(0);
  }

private:
  std::array<uint64_t, NumKernelQuantities> ObservedMax;
  std::array<uint64_t, NumKernelQuantities> Overflows;
};

/// Production arithmetic policy: plain unsigned operations, no
/// observation. Every method is a trivial inline forwarder, so a kernel
/// instantiated with this policy compiles to exactly the arithmetic it
/// would contain without the policy layer.
struct PlainKernelArith {
  /// Distinguishes the policies at compile time (e.g. for tests).
  static constexpr bool Checked = false;

  /// Returns A * B.
  uint64_t mul(KernelQuantity, uint64_t A, uint64_t B) const {
    return A * B;
  }
  /// Returns A + B.
  uint64_t add(KernelQuantity, uint64_t A, uint64_t B) const {
    return A + B;
  }
  /// Returns A - B.
  uint64_t sub(KernelQuantity, uint64_t A, uint64_t B) const {
    return A - B;
  }
  /// Observes a post-increment uint32_t count value (no-op).
  void observeCount(KernelQuantity, uint32_t) const {}
  /// Observes a uint64_t quantity value (no-op).
  void observeValue(KernelQuantity, uint64_t) const {}
};

/// Shadow arithmetic policy: every operation is overflow-checked via the
/// compiler builtins (well-defined even when the mathematical result does
/// not fit) and every result is recorded in a KernelValueProbe. Used by
/// makeCheckedKernel / makeCheckedDetector / makeCheckedFastDetector to
/// validate KernelBounds certificates dynamically.
struct CheckedKernelArith {
  /// Records observations and overflow events into \p Probe.
  explicit CheckedKernelArith(KernelValueProbe &Probe) : Probe(&Probe) {}

  /// Distinguishes the policies at compile time (e.g. for tests).
  static constexpr bool Checked = true;

  /// Returns A * B mod 2^64; notes an overflow if the true product does
  /// not fit, otherwise observes the result.
  uint64_t mul(KernelQuantity Q, uint64_t A, uint64_t B) const {
    uint64_t R;
    if (__builtin_mul_overflow(A, B, &R)) {
      Probe->noteOverflow(Q);
      return R;
    }
    Probe->observe(Q, R);
    return R;
  }

  /// Returns A + B mod 2^64; notes an overflow if the true sum does not
  /// fit, otherwise observes the result.
  uint64_t add(KernelQuantity Q, uint64_t A, uint64_t B) const {
    uint64_t R;
    if (__builtin_add_overflow(A, B, &R)) {
      Probe->noteOverflow(Q);
      return R;
    }
    Probe->observe(Q, R);
    return R;
  }

  /// Returns A - B mod 2^64; notes an overflow if A < B (unsigned wrap).
  /// The result is not observed: a difference is never larger than a
  /// value the probe already saw.
  uint64_t sub(KernelQuantity Q, uint64_t A, uint64_t B) const {
    uint64_t R;
    if (__builtin_sub_overflow(A, B, &R))
      Probe->noteOverflow(Q);
    return R;
  }

  /// Observes a post-increment uint32_t count: a post-increment value of
  /// zero means the count wrapped past UINT32_MAX.
  void observeCount(KernelQuantity Q, uint32_t V) const {
    if (V == 0) {
      Probe->noteOverflow(Q);
      return;
    }
    Probe->observe(Q, V);
  }

  /// Observes a uint64_t quantity value.
  void observeValue(KernelQuantity Q, uint64_t V) const {
    Probe->observe(Q, V);
  }

private:
  KernelValueProbe *Probe;
};

/// Base class: occupancy counts plus the operations the window machinery
/// performs. All operations must keep counts consistent; similarity() may
/// be called at any time.
class SimilarityKernel {
public:
  explicit SimilarityKernel(SiteIndex NumSites)
      : CWCounts(NumSites, 0), TWCounts(NumSites, 0),
        SiteTouched(NumSites, 0) {}
  virtual ~SimilarityKernel();

  /// Zeroes all counts and derived state. Costs O(distinct sites touched
  /// since the last reset), not O(numSites): endPhase() calls this on
  /// every P->T transition, and on noisy traces with frequent flushes the
  /// windows only ever held a small fraction of the site space.
  virtual void reset();

  /// Adds/removes one occurrence of \p S to/from a window. These change
  /// the window totals.
  virtual void cwAdd(SiteIndex S) = 0;
  virtual void cwRemove(SiteIndex S) = 0;
  virtual void twAdd(SiteIndex S) = 0;
  virtual void twRemove(SiteIndex S) = 0;

  /// Totals-stable combined operations (remove \p Out, add \p In). The
  /// removal runs first so the window totals never exceed the window
  /// bound, even transiently — the KernelBounds certificates
  /// (analysis/KernelBounds.h) certify NCW/NTW against that invariant
  /// and the checked shadow arithmetic observes every intermediate. The
  /// weighted kernel overrides these with O(1) updates.
  virtual void cwReplace(SiteIndex In, SiteIndex Out) {
    cwRemove(Out);
    cwAdd(In);
  }
  virtual void twReplace(SiteIndex In, SiteIndex Out) {
    twRemove(Out);
    twAdd(In);
  }

  /// Moves one occurrence of \p S from the CW into the TW (the element
  /// crossing the window boundary). Changes both totals.
  virtual void moveCWToTW(SiteIndex S) {
    cwRemove(S);
    twAdd(S);
  }

  /// The similarity of the current window contents, in [0, 1]. An empty
  /// CW yields 0.
  virtual double similarity() = 0;

  /// Test hook: resets the kernel and installs \p CW / \p TW as the
  /// per-site occurrence counts directly, recomputing the totals and
  /// derived state. Boundary tests use this to reach count magnitudes
  /// (near UINT32_MAX) that streaming that many elements cannot. Both
  /// vectors must have numSites() entries.
  virtual void seedCountsForTest(const std::vector<uint32_t> &CW,
                                 const std::vector<uint32_t> &TW);

  /// True if \p S occurs in the CW (used by the anchor policies: a TW
  /// element absent from the CW is "noisy").
  bool inCW(SiteIndex S) const {
    assert(S < CWCounts.size() && "site out of range");
    return CWCounts[S] != 0;
  }

  /// Window totals (number of occurrences, not distinct sites).
  uint64_t cwTotal() const { return NCW; }
  uint64_t twTotal() const { return NTW; }

  /// Number of sites the kernel was sized for.
  SiteIndex numSites() const {
    return static_cast<SiteIndex>(CWCounts.size());
  }

protected:
  /// Records \p S as holding a (possibly) nonzero count until the next
  /// reset(). Every operation that adds an occurrence must call this;
  /// remove operations need not (a removed site was added first).
  void touch(SiteIndex S) {
    if (!SiteTouched[S]) {
      SiteTouched[S] = 1;
      TouchedSites.push_back(S);
    }
  }

  std::vector<uint32_t> CWCounts;
  std::vector<uint32_t> TWCounts;
  uint64_t NCW = 0;
  uint64_t NTW = 0;
  /// Flag per site: S appears in TouchedSites. Kept as a byte array so
  /// the hot-path check is one predictable load.
  std::vector<uint8_t> SiteTouched;
  /// The distinct sites touched since the last reset(); reset() zeroes
  /// exactly these instead of sweeping both O(numSites) count arrays.
  std::vector<SiteIndex> TouchedSites;
};

/// Asymmetric working-set similarity (unweighted model).
///
/// The per-element mutators are defined inline: the monomorphic fast-path
/// detectors (core/FastDetector.cpp) hold kernels by concrete final type,
/// so these inline straight into the per-element loop. Virtual callers
/// bind the same definitions through the vtable.
///
/// \tparam ArithT the arithmetic policy (PlainKernelArith in production).
template <typename ArithT = PlainKernelArith>
class UnweightedSetKernelT final : public SimilarityKernel {
public:
  /// \p A is the arithmetic policy instance (defaulted in production).
  explicit UnweightedSetKernelT(SiteIndex NumSites, ArithT A = ArithT())
      : SimilarityKernel(NumSites), Arith(A) {}

  void reset() override {
    SimilarityKernel::reset();
    CWDistinct = 0;
    BothDistinct = 0;
  }

  void cwAdd(SiteIndex S) override {
    assert(S < CWCounts.size() && "site out of range");
    touch(S);
    if (CWCounts[S]++ == 0) {
      ++CWDistinct;
      Arith.observeValue(KernelQuantity::CWDistinct, CWDistinct);
      if (TWCounts[S] != 0) {
        ++BothDistinct;
        Arith.observeValue(KernelQuantity::BothDistinct, BothDistinct);
      }
    }
    Arith.observeCount(KernelQuantity::CWCount, CWCounts[S]);
    ++NCW;
    Arith.observeValue(KernelQuantity::CWTotal, NCW);
  }

  void cwRemove(SiteIndex S) override {
    assert(S < CWCounts.size() && "site out of range");
    assert(CWCounts[S] != 0 && "removing a site not in the CW");
    if (--CWCounts[S] == 0) {
      --CWDistinct;
      if (TWCounts[S] != 0)
        --BothDistinct;
    }
    --NCW;
  }

  void twAdd(SiteIndex S) override {
    assert(S < TWCounts.size() && "site out of range");
    touch(S);
    if (TWCounts[S]++ == 0 && CWCounts[S] != 0) {
      ++BothDistinct;
      Arith.observeValue(KernelQuantity::BothDistinct, BothDistinct);
    }
    Arith.observeCount(KernelQuantity::TWCount, TWCounts[S]);
    ++NTW;
    Arith.observeValue(KernelQuantity::TWTotal, NTW);
  }

  void twRemove(SiteIndex S) override {
    assert(S < TWCounts.size() && "site out of range");
    assert(TWCounts[S] != 0 && "removing a site not in the TW");
    if (--TWCounts[S] == 0 && CWCounts[S] != 0)
      --BothDistinct;
    --NTW;
  }

  double similarity() override {
    if (CWDistinct == 0)
      return 0.0;
    return static_cast<double>(BothDistinct) /
           static_cast<double>(CWDistinct);
  }

  void seedCountsForTest(const std::vector<uint32_t> &CW,
                         const std::vector<uint32_t> &TW) override {
    SimilarityKernel::seedCountsForTest(CW, TW);
    CWDistinct = 0;
    BothDistinct = 0;
    for (SiteIndex S = 0, E = numSites(); S != E; ++S) {
      if (CWCounts[S] != 0) {
        ++CWDistinct;
        if (TWCounts[S] != 0)
          ++BothDistinct;
      }
    }
  }

private:
  ArithT Arith;
  /// Number of distinct sites present in the CW.
  uint64_t CWDistinct = 0;
  /// Number of distinct sites present in both windows.
  uint64_t BothDistinct = 0;
};

/// Symmetric min-relative-weight similarity (weighted model).
///
/// \tparam ArithT the arithmetic policy (PlainKernelArith in production).
template <typename ArithT = PlainKernelArith>
class WeightedSetKernelT final : public SimilarityKernel {
public:
  /// \p A is the arithmetic policy instance (defaulted in production).
  explicit WeightedSetKernelT(SiteIndex NumSites, ArithT A = ArithT())
      : SimilarityKernel(NumSites), Arith(A) {}

  void reset() override {
    SimilarityKernel::reset();
    MinSum = 0;
    Dirty = false;
  }

  void cwAdd(SiteIndex S) override {
    assert(S < CWCounts.size() && "site out of range");
    touch(S);
    ++CWCounts[S];
    Arith.observeCount(KernelQuantity::CWCount, CWCounts[S]);
    ++NCW;
    Arith.observeValue(KernelQuantity::CWTotal, NCW);
    Dirty = true;
  }

  void cwRemove(SiteIndex S) override {
    assert(CWCounts[S] != 0 && "removing a site not in the CW");
    --CWCounts[S];
    --NCW;
    Dirty = true;
  }

  void twAdd(SiteIndex S) override {
    assert(S < TWCounts.size() && "site out of range");
    touch(S);
    ++TWCounts[S];
    Arith.observeCount(KernelQuantity::TWCount, TWCounts[S]);
    ++NTW;
    Arith.observeValue(KernelQuantity::TWTotal, NTW);
    Dirty = true;
  }

  void twRemove(SiteIndex S) override {
    assert(TWCounts[S] != 0 && "removing a site not in the TW");
    --TWCounts[S];
    --NTW;
    Dirty = true;
  }

  void cwReplace(SiteIndex In, SiteIndex Out) override {
    assert(In < CWCounts.size() && Out < CWCounts.size() &&
           "site out of range");
    assert(CWCounts[Out] != 0 && "replacing a site not in the CW");
    if (In == Out)
      return;
    touch(In);
    if (Dirty) {
      ++CWCounts[In];
      --CWCounts[Out];
      return;
    }
    // Gain/loss form: raising cw[In] can only raise In's term, lowering
    // cw[Out] can only lower Out's term. Both deltas are non-negative,
    // and the loss is at most term(Out) — one of MinSum's summands — so
    // neither the intermediate differences nor the running sum can wrap
    // while the certified bound MinSum <= NCW*NTW holds.
    uint64_t TIn = term(In);
    uint64_t TOut = term(Out);
    ++CWCounts[In];
    Arith.observeCount(KernelQuantity::CWCount, CWCounts[In]);
    --CWCounts[Out];
    uint64_t Gain = Arith.sub(KernelQuantity::MinSum, term(In), TIn);
    uint64_t Loss = Arith.sub(KernelQuantity::MinSum, TOut, term(Out));
    MinSum = Arith.add(KernelQuantity::MinSum, MinSum, Gain);
    MinSum = Arith.sub(KernelQuantity::MinSum, MinSum, Loss);
  }

  void twReplace(SiteIndex In, SiteIndex Out) override {
    assert(In < TWCounts.size() && Out < TWCounts.size() &&
           "site out of range");
    assert(TWCounts[Out] != 0 && "replacing a site not in the TW");
    if (In == Out)
      return;
    touch(In);
    if (Dirty) {
      ++TWCounts[In];
      --TWCounts[Out];
      return;
    }
    // Same gain/loss argument as cwReplace, with the TW count moving.
    uint64_t TIn = term(In);
    uint64_t TOut = term(Out);
    ++TWCounts[In];
    Arith.observeCount(KernelQuantity::TWCount, TWCounts[In]);
    --TWCounts[Out];
    uint64_t Gain = Arith.sub(KernelQuantity::MinSum, term(In), TIn);
    uint64_t Loss = Arith.sub(KernelQuantity::MinSum, TOut, term(Out));
    MinSum = Arith.add(KernelQuantity::MinSum, MinSum, Gain);
    MinSum = Arith.sub(KernelQuantity::MinSum, MinSum, Loss);
  }

  double similarity() override {
    if (NCW == 0 || NTW == 0)
      return 0.0;
    if (Dirty)
      recompute();
    return static_cast<double>(MinSum) /
           (static_cast<double>(NCW) * static_cast<double>(NTW));
  }

  void seedCountsForTest(const std::vector<uint32_t> &CW,
                         const std::vector<uint32_t> &TW) override {
    SimilarityKernel::seedCountsForTest(CW, TW);
    MinSum = 0;
    Dirty = true;
  }

  /// Test hook: the integer min-sum under the current counts (recomputing
  /// if a total changed since the last replace). Boundary tests compare
  /// this against an independent wide-integer evaluation.
  uint64_t minSumForTest() {
    if (Dirty)
      recompute();
    return MinSum;
  }

private:
  /// min(cw[s]*NTW, tw[s]*NCW) under the current totals.
  uint64_t term(SiteIndex S) {
    return std::min(
        Arith.mul(KernelQuantity::ProductCWTW, CWCounts[S], NTW),
        Arith.mul(KernelQuantity::ProductTWCW, TWCounts[S], NCW));
  }

  void recompute() {
    // term(S) == 0 for any untouched site (both counts zero), so summing
    // the touched list is exact. The sum is an integer, so the list's
    // insertion order cannot perturb the result — bit-identical to a full
    // ascending sweep.
    MinSum = 0;
    for (SiteIndex S : TouchedSites)
      MinSum = Arith.add(KernelQuantity::MinSum, MinSum, term(S));
    Dirty = false;
  }

  ArithT Arith;
  /// Sum of term(s) over all sites; valid iff !Dirty.
  uint64_t MinSum = 0;
  /// Set whenever a total changed; similarity() recomputes lazily.
  bool Dirty = false;
};

/// Frequency-vector similarity via Manhattan (L1) distance between the
/// windows' relative-weight vectors: 1 - (1/2) * sum_s |cw_s/|CW| -
/// tw_s/|TW||, in [0, 1]. Equals the weighted-set similarity
/// mathematically (sum min = 1 - L1/2 for distributions) but is kept as
/// an independently implemented kernel: it recomputes from the counts on
/// every similarity() call, which makes it the brute-force
/// cross-check for WeightedSetKernel's incremental bookkeeping and the
/// cost model for a non-incremental implementation (bench_perf).
///
/// \tparam ArithT the arithmetic policy (PlainKernelArith in production).
template <typename ArithT = PlainKernelArith>
class ManhattanKernelT final : public SimilarityKernel {
public:
  /// \p A is the arithmetic policy instance (defaulted in production).
  explicit ManhattanKernelT(SiteIndex NumSites, ArithT A = ArithT())
      : SimilarityKernel(NumSites), Arith(A) {}

  void reset() override { SimilarityKernel::reset(); }

  void cwAdd(SiteIndex S) override {
    assert(S < CWCounts.size() && "site out of range");
    touch(S);
    ++CWCounts[S];
    Arith.observeCount(KernelQuantity::CWCount, CWCounts[S]);
    ++NCW;
    Arith.observeValue(KernelQuantity::CWTotal, NCW);
  }

  void cwRemove(SiteIndex S) override {
    assert(CWCounts[S] != 0 && "removing a site not in the CW");
    --CWCounts[S];
    --NCW;
  }

  void twAdd(SiteIndex S) override {
    assert(S < TWCounts.size() && "site out of range");
    touch(S);
    ++TWCounts[S];
    Arith.observeCount(KernelQuantity::TWCount, TWCounts[S]);
    ++NTW;
    Arith.observeValue(KernelQuantity::TWTotal, NTW);
  }

  void twRemove(SiteIndex S) override {
    assert(TWCounts[S] != 0 && "removing a site not in the TW");
    --TWCounts[S];
    --NTW;
  }

  double similarity() override {
    // Floating-point throughout: this kernel's decision path never forms
    // the uint64_t cross-products, so only counts and totals appear in
    // its value-range certificate.
    if (NCW == 0 || NTW == 0)
      return 0.0;
    double Distance = 0.0;
    double InvCW = 1.0 / static_cast<double>(NCW);
    double InvTW = 1.0 / static_cast<double>(NTW);
    for (SiteIndex S = 0, E = numSites(); S != E; ++S) {
      double Diff = static_cast<double>(CWCounts[S]) * InvCW -
                    static_cast<double>(TWCounts[S]) * InvTW;
      Distance += Diff < 0 ? -Diff : Diff;
    }
    return 1.0 - Distance / 2.0;
  }

private:
  ArithT Arith;
};

/// The production kernel types: plain arithmetic, unchanged layout and
/// codegen relative to the pre-policy implementations.
using UnweightedSetKernel = UnweightedSetKernelT<PlainKernelArith>;
/// \copydoc UnweightedSetKernel
using WeightedSetKernel = WeightedSetKernelT<PlainKernelArith>;
/// \copydoc UnweightedSetKernel
using ManhattanKernel = ManhattanKernelT<PlainKernelArith>;

/// Creates the kernel for \p Kind.
std::unique_ptr<SimilarityKernel> makeKernel(ModelKind Kind,
                                             SiteIndex NumSites);

/// Creates the CheckedKernelArith-instrumented kernel for \p Kind,
/// recording observations and overflow events into \p Probe (which must
/// outlive the kernel).
std::unique_ptr<SimilarityKernel>
makeCheckedKernel(ModelKind Kind, SiteIndex NumSites,
                  KernelValueProbe &Probe);

} // namespace opd

#endif // OPD_CORE_SIMILARITYKERNEL_H
