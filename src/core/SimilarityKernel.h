//===- core/SimilarityKernel.h - Window similarity kernels ------*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Similarity kernels maintain per-site occurrence counts for the trailing
/// window (TW) and current window (CW) and compute the similarity value
/// between them (the paper's model policies, Section 2):
///
///  * UnweightedSetKernel — asymmetric working-set similarity: the
///    fraction of *distinct* CW elements that also appear in the TW,
///    independent of frequency.
///  * WeightedSetKernel — symmetric weighted similarity: the sum over
///    elements of min(relative weight in CW, relative weight in TW).
///
/// Both kernels are incremental. The weighted kernel maintains the
/// integer sum  S = sum_s min(cw[s]*|TW|, tw[s]*|CW|)  exactly while the
/// window totals are stable (the replace operations) and falls back to a
/// recomputation over the touched sites after totals change (window
/// fill, flush, anchor, or adaptive TW growth). The online detector is
/// thus O(1) per element in steady state with a constant TW and
/// O(touched sites) per element only while an adaptive TW is growing.
///
/// All kernels track the distinct sites touched since the last reset()
/// (a flag array plus a touched list), so a phase flush — reset(), called
/// on every P->T transition — costs O(distinct sites touched) instead of
/// O(numSites), and the weighted recomputation sums over the touched
/// list only (an integer sum, so the iteration order cannot perturb the
/// result).
///
//===----------------------------------------------------------------------===//

#ifndef OPD_CORE_SIMILARITYKERNEL_H
#define OPD_CORE_SIMILARITYKERNEL_H

#include "trace/ProfileElement.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

namespace opd {

/// The model policies. UnweightedSet and WeightedSet are the paper's
/// two models; ManhattanBBV is the frequency-vector distance used by the
/// basic-block-vector line of work the paper builds on (Sherwood et
/// al.), expressed as a similarity: 1 - (normalized L1 distance)/2.
enum class ModelKind : uint8_t {
  UnweightedSet, ///< Asymmetric working-set model.
  WeightedSet,   ///< Symmetric min-relative-weight model.
  ManhattanBBV,  ///< 1 - normalized Manhattan distance (extension).
};

/// Short mnemonic ("unweighted"/"weighted") for tables.
const char *modelKindName(ModelKind Kind);

/// Base class: occupancy counts plus the operations the window machinery
/// performs. All operations must keep counts consistent; similarity() may
/// be called at any time.
class SimilarityKernel {
public:
  explicit SimilarityKernel(SiteIndex NumSites)
      : CWCounts(NumSites, 0), TWCounts(NumSites, 0),
        SiteTouched(NumSites, 0) {}
  virtual ~SimilarityKernel();

  /// Zeroes all counts and derived state. Costs O(distinct sites touched
  /// since the last reset), not O(numSites): endPhase() calls this on
  /// every P->T transition, and on noisy traces with frequent flushes the
  /// windows only ever held a small fraction of the site space.
  virtual void reset();

  /// Adds/removes one occurrence of \p S to/from a window. These change
  /// the window totals.
  virtual void cwAdd(SiteIndex S) = 0;
  virtual void cwRemove(SiteIndex S) = 0;
  virtual void twAdd(SiteIndex S) = 0;
  virtual void twRemove(SiteIndex S) = 0;

  /// Totals-stable combined operations (add \p In, remove \p Out). The
  /// weighted kernel overrides these with O(1) updates.
  virtual void cwReplace(SiteIndex In, SiteIndex Out) {
    cwAdd(In);
    cwRemove(Out);
  }
  virtual void twReplace(SiteIndex In, SiteIndex Out) {
    twAdd(In);
    twRemove(Out);
  }

  /// Moves one occurrence of \p S from the CW into the TW (the element
  /// crossing the window boundary). Changes both totals.
  virtual void moveCWToTW(SiteIndex S) {
    cwRemove(S);
    twAdd(S);
  }

  /// The similarity of the current window contents, in [0, 1]. An empty
  /// CW yields 0.
  virtual double similarity() = 0;

  /// True if \p S occurs in the CW (used by the anchor policies: a TW
  /// element absent from the CW is "noisy").
  bool inCW(SiteIndex S) const {
    assert(S < CWCounts.size() && "site out of range");
    return CWCounts[S] != 0;
  }

  /// Window totals (number of occurrences, not distinct sites).
  uint64_t cwTotal() const { return NCW; }
  uint64_t twTotal() const { return NTW; }

  /// Number of sites the kernel was sized for.
  SiteIndex numSites() const {
    return static_cast<SiteIndex>(CWCounts.size());
  }

protected:
  /// Records \p S as holding a (possibly) nonzero count until the next
  /// reset(). Every operation that adds an occurrence must call this;
  /// remove operations need not (a removed site was added first).
  void touch(SiteIndex S) {
    if (!SiteTouched[S]) {
      SiteTouched[S] = 1;
      TouchedSites.push_back(S);
    }
  }

  std::vector<uint32_t> CWCounts;
  std::vector<uint32_t> TWCounts;
  uint64_t NCW = 0;
  uint64_t NTW = 0;
  /// Flag per site: S appears in TouchedSites. Kept as a byte array so
  /// the hot-path check is one predictable load.
  std::vector<uint8_t> SiteTouched;
  /// The distinct sites touched since the last reset(); reset() zeroes
  /// exactly these instead of sweeping both O(numSites) count arrays.
  std::vector<SiteIndex> TouchedSites;
};

/// Asymmetric working-set similarity (unweighted model).
///
/// The per-element mutators are defined inline: the monomorphic fast-path
/// detectors (core/FastDetector.cpp) hold kernels by concrete final type,
/// so these inline straight into the per-element loop. Virtual callers
/// bind the same definitions through the vtable.
class UnweightedSetKernel final : public SimilarityKernel {
public:
  explicit UnweightedSetKernel(SiteIndex NumSites)
      : SimilarityKernel(NumSites) {}

  void reset() override;

  void cwAdd(SiteIndex S) override {
    assert(S < CWCounts.size() && "site out of range");
    touch(S);
    if (CWCounts[S]++ == 0) {
      ++CWDistinct;
      if (TWCounts[S] != 0)
        ++BothDistinct;
    }
    ++NCW;
  }

  void cwRemove(SiteIndex S) override {
    assert(S < CWCounts.size() && "site out of range");
    assert(CWCounts[S] != 0 && "removing a site not in the CW");
    if (--CWCounts[S] == 0) {
      --CWDistinct;
      if (TWCounts[S] != 0)
        --BothDistinct;
    }
    --NCW;
  }

  void twAdd(SiteIndex S) override {
    assert(S < TWCounts.size() && "site out of range");
    touch(S);
    if (TWCounts[S]++ == 0 && CWCounts[S] != 0)
      ++BothDistinct;
    ++NTW;
  }

  void twRemove(SiteIndex S) override {
    assert(S < TWCounts.size() && "site out of range");
    assert(TWCounts[S] != 0 && "removing a site not in the TW");
    if (--TWCounts[S] == 0 && CWCounts[S] != 0)
      --BothDistinct;
    --NTW;
  }

  double similarity() override {
    if (CWDistinct == 0)
      return 0.0;
    return static_cast<double>(BothDistinct) /
           static_cast<double>(CWDistinct);
  }

private:
  /// Number of distinct sites present in the CW.
  uint64_t CWDistinct = 0;
  /// Number of distinct sites present in both windows.
  uint64_t BothDistinct = 0;
};

/// Symmetric min-relative-weight similarity (weighted model).
class WeightedSetKernel final : public SimilarityKernel {
public:
  explicit WeightedSetKernel(SiteIndex NumSites)
      : SimilarityKernel(NumSites) {}

  void reset() override;

  void cwAdd(SiteIndex S) override {
    assert(S < CWCounts.size() && "site out of range");
    touch(S);
    ++CWCounts[S];
    ++NCW;
    Dirty = true;
  }

  void cwRemove(SiteIndex S) override {
    assert(CWCounts[S] != 0 && "removing a site not in the CW");
    --CWCounts[S];
    --NCW;
    Dirty = true;
  }

  void twAdd(SiteIndex S) override {
    assert(S < TWCounts.size() && "site out of range");
    touch(S);
    ++TWCounts[S];
    ++NTW;
    Dirty = true;
  }

  void twRemove(SiteIndex S) override {
    assert(TWCounts[S] != 0 && "removing a site not in the TW");
    --TWCounts[S];
    --NTW;
    Dirty = true;
  }

  void cwReplace(SiteIndex In, SiteIndex Out) override {
    assert(In < CWCounts.size() && Out < CWCounts.size() &&
           "site out of range");
    assert(CWCounts[Out] != 0 && "replacing a site not in the CW");
    if (In == Out)
      return;
    touch(In);
    if (Dirty) {
      ++CWCounts[In];
      --CWCounts[Out];
      return;
    }
    uint64_t Before = term(In) + term(Out);
    ++CWCounts[In];
    --CWCounts[Out];
    MinSum += term(In) + term(Out) - Before;
  }

  void twReplace(SiteIndex In, SiteIndex Out) override {
    assert(In < TWCounts.size() && Out < TWCounts.size() &&
           "site out of range");
    assert(TWCounts[Out] != 0 && "replacing a site not in the TW");
    if (In == Out)
      return;
    touch(In);
    if (Dirty) {
      ++TWCounts[In];
      --TWCounts[Out];
      return;
    }
    uint64_t Before = term(In) + term(Out);
    ++TWCounts[In];
    --TWCounts[Out];
    MinSum += term(In) + term(Out) - Before;
  }

  double similarity() override {
    if (NCW == 0 || NTW == 0)
      return 0.0;
    if (Dirty)
      recompute();
    return static_cast<double>(MinSum) /
           (static_cast<double>(NCW) * static_cast<double>(NTW));
  }

private:
  /// min(cw[s]*NTW, tw[s]*NCW) under the current totals.
  uint64_t term(SiteIndex S) const {
    return std::min(static_cast<uint64_t>(CWCounts[S]) * NTW,
                    static_cast<uint64_t>(TWCounts[S]) * NCW);
  }

  void recompute();

  /// Sum of term(s) over all sites; valid iff !Dirty.
  uint64_t MinSum = 0;
  /// Set whenever a total changed; similarity() recomputes lazily.
  bool Dirty = false;
};

/// Frequency-vector similarity via Manhattan (L1) distance between the
/// windows' relative-weight vectors: 1 - (1/2) * sum_s |cw_s/|CW| -
/// tw_s/|TW||, in [0, 1]. Equals the weighted-set similarity
/// mathematically (sum min = 1 - L1/2 for distributions) but is kept as
/// an independently implemented kernel: it recomputes from the counts on
/// every similarity() call, which makes it the brute-force
/// cross-check for WeightedSetKernel's incremental bookkeeping and the
/// cost model for a non-incremental implementation (bench_perf).
class ManhattanKernel final : public SimilarityKernel {
public:
  explicit ManhattanKernel(SiteIndex NumSites)
      : SimilarityKernel(NumSites) {}

  void reset() override { SimilarityKernel::reset(); }

  void cwAdd(SiteIndex S) override {
    assert(S < CWCounts.size() && "site out of range");
    touch(S);
    ++CWCounts[S];
    ++NCW;
  }

  void cwRemove(SiteIndex S) override {
    assert(CWCounts[S] != 0 && "removing a site not in the CW");
    --CWCounts[S];
    --NCW;
  }

  void twAdd(SiteIndex S) override {
    assert(S < TWCounts.size() && "site out of range");
    touch(S);
    ++TWCounts[S];
    ++NTW;
  }

  void twRemove(SiteIndex S) override {
    assert(TWCounts[S] != 0 && "removing a site not in the TW");
    --TWCounts[S];
    --NTW;
  }

  double similarity() override;
};

/// Creates the kernel for \p Kind.
std::unique_ptr<SimilarityKernel> makeKernel(ModelKind Kind,
                                             SiteIndex NumSites);

} // namespace opd

#endif // OPD_CORE_SIMILARITYKERNEL_H
