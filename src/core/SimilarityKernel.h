//===- core/SimilarityKernel.h - Window similarity kernels ------*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Similarity kernels maintain per-site occurrence counts for the trailing
/// window (TW) and current window (CW) and compute the similarity value
/// between them (the paper's model policies, Section 2):
///
///  * UnweightedSetKernel — asymmetric working-set similarity: the
///    fraction of *distinct* CW elements that also appear in the TW,
///    independent of frequency.
///  * WeightedSetKernel — symmetric weighted similarity: the sum over
///    elements of min(relative weight in CW, relative weight in TW).
///
/// Both kernels are incremental. The weighted kernel maintains the
/// integer sum  S = sum_s min(cw[s]*|TW|, tw[s]*|CW|)  exactly while the
/// window totals are stable (the replace operations) and falls back to a
/// full O(numSites) recomputation after totals change (window fill,
/// flush, anchor, or adaptive TW growth). The online detector is thus
/// O(1) per element in steady state with a constant TW and O(numSites)
/// per element only while an adaptive TW is growing.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_CORE_SIMILARITYKERNEL_H
#define OPD_CORE_SIMILARITYKERNEL_H

#include "trace/ProfileElement.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

namespace opd {

/// The model policies. UnweightedSet and WeightedSet are the paper's
/// two models; ManhattanBBV is the frequency-vector distance used by the
/// basic-block-vector line of work the paper builds on (Sherwood et
/// al.), expressed as a similarity: 1 - (normalized L1 distance)/2.
enum class ModelKind : uint8_t {
  UnweightedSet, ///< Asymmetric working-set model.
  WeightedSet,   ///< Symmetric min-relative-weight model.
  ManhattanBBV,  ///< 1 - normalized Manhattan distance (extension).
};

/// Short mnemonic ("unweighted"/"weighted") for tables.
const char *modelKindName(ModelKind Kind);

/// Base class: occupancy counts plus the operations the window machinery
/// performs. All operations must keep counts consistent; similarity() may
/// be called at any time.
class SimilarityKernel {
public:
  explicit SimilarityKernel(SiteIndex NumSites)
      : CWCounts(NumSites, 0), TWCounts(NumSites, 0) {}
  virtual ~SimilarityKernel();

  /// Zeroes all counts and derived state.
  virtual void reset();

  /// Adds/removes one occurrence of \p S to/from a window. These change
  /// the window totals.
  virtual void cwAdd(SiteIndex S) = 0;
  virtual void cwRemove(SiteIndex S) = 0;
  virtual void twAdd(SiteIndex S) = 0;
  virtual void twRemove(SiteIndex S) = 0;

  /// Totals-stable combined operations (add \p In, remove \p Out). The
  /// weighted kernel overrides these with O(1) updates.
  virtual void cwReplace(SiteIndex In, SiteIndex Out) {
    cwAdd(In);
    cwRemove(Out);
  }
  virtual void twReplace(SiteIndex In, SiteIndex Out) {
    twAdd(In);
    twRemove(Out);
  }

  /// Moves one occurrence of \p S from the CW into the TW (the element
  /// crossing the window boundary). Changes both totals.
  virtual void moveCWToTW(SiteIndex S) {
    cwRemove(S);
    twAdd(S);
  }

  /// The similarity of the current window contents, in [0, 1]. An empty
  /// CW yields 0.
  virtual double similarity() = 0;

  /// True if \p S occurs in the CW (used by the anchor policies: a TW
  /// element absent from the CW is "noisy").
  bool inCW(SiteIndex S) const {
    assert(S < CWCounts.size() && "site out of range");
    return CWCounts[S] != 0;
  }

  /// Window totals (number of occurrences, not distinct sites).
  uint64_t cwTotal() const { return NCW; }
  uint64_t twTotal() const { return NTW; }

  /// Number of sites the kernel was sized for.
  SiteIndex numSites() const {
    return static_cast<SiteIndex>(CWCounts.size());
  }

protected:
  std::vector<uint32_t> CWCounts;
  std::vector<uint32_t> TWCounts;
  uint64_t NCW = 0;
  uint64_t NTW = 0;
};

/// Asymmetric working-set similarity (unweighted model).
class UnweightedSetKernel final : public SimilarityKernel {
public:
  explicit UnweightedSetKernel(SiteIndex NumSites)
      : SimilarityKernel(NumSites) {}

  void reset() override;
  void cwAdd(SiteIndex S) override;
  void cwRemove(SiteIndex S) override;
  void twAdd(SiteIndex S) override;
  void twRemove(SiteIndex S) override;
  double similarity() override;

private:
  /// Number of distinct sites present in the CW.
  uint64_t CWDistinct = 0;
  /// Number of distinct sites present in both windows.
  uint64_t BothDistinct = 0;
};

/// Symmetric min-relative-weight similarity (weighted model).
class WeightedSetKernel final : public SimilarityKernel {
public:
  explicit WeightedSetKernel(SiteIndex NumSites)
      : SimilarityKernel(NumSites) {}

  void reset() override;
  void cwAdd(SiteIndex S) override;
  void cwRemove(SiteIndex S) override;
  void twAdd(SiteIndex S) override;
  void twRemove(SiteIndex S) override;
  void cwReplace(SiteIndex In, SiteIndex Out) override;
  void twReplace(SiteIndex In, SiteIndex Out) override;
  double similarity() override;

private:
  /// min(cw[s]*NTW, tw[s]*NCW) under the current totals.
  uint64_t term(SiteIndex S) const {
    return std::min(static_cast<uint64_t>(CWCounts[S]) * NTW,
                    static_cast<uint64_t>(TWCounts[S]) * NCW);
  }

  void recompute();

  /// Sum of term(s) over all sites; valid iff !Dirty.
  uint64_t MinSum = 0;
  /// Set whenever a total changed; similarity() recomputes lazily.
  bool Dirty = false;
};

/// Frequency-vector similarity via Manhattan (L1) distance between the
/// windows' relative-weight vectors: 1 - (1/2) * sum_s |cw_s/|CW| -
/// tw_s/|TW||, in [0, 1]. Equals the weighted-set similarity
/// mathematically (sum min = 1 - L1/2 for distributions) but is kept as
/// an independently implemented kernel: it recomputes from the counts on
/// every similarity() call, which makes it the brute-force
/// cross-check for WeightedSetKernel's incremental bookkeeping and the
/// cost model for a non-incremental implementation (bench_perf).
class ManhattanKernel final : public SimilarityKernel {
public:
  explicit ManhattanKernel(SiteIndex NumSites)
      : SimilarityKernel(NumSites) {}

  void reset() override { SimilarityKernel::reset(); }
  void cwAdd(SiteIndex S) override;
  void cwRemove(SiteIndex S) override;
  void twAdd(SiteIndex S) override;
  void twRemove(SiteIndex S) override;
  double similarity() override;
};

/// Creates the kernel for \p Kind.
std::unique_ptr<SimilarityKernel> makeKernel(ModelKind Kind,
                                             SiteIndex NumSites);

} // namespace opd

#endif // OPD_CORE_SIMILARITYKERNEL_H
