//===- lang/Lexer.cpp - Workload DSL lexer ---------------------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"

#include <cctype>
#include <unordered_map>

using namespace opd;

const char *opd::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::Integer:
    return "integer literal";
  case TokenKind::Float:
    return "float literal";
  case TokenKind::KwProgram:
    return "'program'";
  case TokenKind::KwMethod:
    return "'method'";
  case TokenKind::KwLoop:
    return "'loop'";
  case TokenKind::KwTimes:
    return "'times'";
  case TokenKind::KwBranch:
    return "'branch'";
  case TokenKind::KwFlip:
    return "'flip'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwWhen:
    return "'when'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwCall:
    return "'call'";
  case TokenKind::KwPick:
    return "'pick'";
  case TokenKind::KwWeight:
    return "'weight'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::Semicolon:
    return "';'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::LessEqual:
    return "'<='";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::GreaterEqual:
    return "'>='";
  case TokenKind::EqualEqual:
    return "'=='";
  case TokenKind::BangEqual:
    return "'!='";
  case TokenKind::EndOfFile:
    return "end of file";
  case TokenKind::Error:
    return "invalid token";
  }
  return "unknown token";
}

Lexer::Lexer(std::string Source) : Source(std::move(Source)) {}

bool Lexer::atEnd() const { return Pos >= Source.size(); }

char Lexer::peek() const { return atEnd() ? '\0' : Source[Pos]; }

char Lexer::advance() {
  char C = Source[Pos++];
  if (C == '\n') {
    ++Loc.Line;
    Loc.Col = 1;
  } else {
    ++Loc.Col;
  }
  return C;
}

void Lexer::skipTrivia() {
  while (!atEnd()) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && Pos + 1 < Source.size() && Source[Pos + 1] == '/') {
      while (!atEnd() && peek() != '\n')
        advance();
      continue;
    }
    return;
  }
}

Token Lexer::makeToken(TokenKind Kind, std::string Text,
                       SourceLoc TokenLoc) const {
  Token T;
  T.Kind = Kind;
  T.Text = std::move(Text);
  T.Loc = TokenLoc;
  return T;
}

Token Lexer::lexNumber(SourceLoc Start) {
  std::string Text;
  bool IsFloat = false;
  while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
    Text += advance();
  if (!atEnd() && peek() == '.' && Pos + 1 < Source.size() &&
      std::isdigit(static_cast<unsigned char>(Source[Pos + 1]))) {
    IsFloat = true;
    Text += advance();
    while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
      Text += advance();
  }
  int64_t Multiplier = 1;
  if (!atEnd() && (peek() == 'K' || peek() == 'k')) {
    Multiplier = 1000;
    advance();
  } else if (!atEnd() && (peek() == 'M' || peek() == 'm')) {
    Multiplier = 1000000;
    advance();
  }
  Token T;
  if (IsFloat) {
    T = makeToken(TokenKind::Float, Text, Start);
    T.FloatValue = std::stod(Text) * static_cast<double>(Multiplier);
  } else {
    T = makeToken(TokenKind::Integer, Text, Start);
    T.IntValue = std::stoll(Text) * Multiplier;
  }
  return T;
}

Token Lexer::lexIdentifier(SourceLoc Start) {
  static const std::unordered_map<std::string, TokenKind> Keywords = {
      {"program", TokenKind::KwProgram}, {"method", TokenKind::KwMethod},
      {"loop", TokenKind::KwLoop},       {"times", TokenKind::KwTimes},
      {"branch", TokenKind::KwBranch},   {"flip", TokenKind::KwFlip},
      {"if", TokenKind::KwIf},           {"when", TokenKind::KwWhen},
      {"else", TokenKind::KwElse},       {"call", TokenKind::KwCall},
      {"pick", TokenKind::KwPick},       {"weight", TokenKind::KwWeight},
  };
  std::string Text;
  while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                      peek() == '_'))
    Text += advance();
  auto It = Keywords.find(Text);
  if (It != Keywords.end())
    return makeToken(It->second, Text, Start);
  return makeToken(TokenKind::Identifier, Text, Start);
}

Token Lexer::next() {
  skipTrivia();
  SourceLoc Start = Loc;
  if (atEnd())
    return makeToken(TokenKind::EndOfFile, "", Start);

  char C = peek();
  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber(Start);
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
    return lexIdentifier(Start);

  advance();
  switch (C) {
  case '{':
    return makeToken(TokenKind::LBrace, "{", Start);
  case '}':
    return makeToken(TokenKind::RBrace, "}", Start);
  case '(':
    return makeToken(TokenKind::LParen, "(", Start);
  case ')':
    return makeToken(TokenKind::RParen, ")", Start);
  case ';':
    return makeToken(TokenKind::Semicolon, ";", Start);
  case ',':
    return makeToken(TokenKind::Comma, ",", Start);
  case '+':
    return makeToken(TokenKind::Plus, "+", Start);
  case '-':
    return makeToken(TokenKind::Minus, "-", Start);
  case '*':
    return makeToken(TokenKind::Star, "*", Start);
  case '/':
    return makeToken(TokenKind::Slash, "/", Start);
  case '%':
    return makeToken(TokenKind::Percent, "%", Start);
  case '<':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::LessEqual, "<=", Start);
    }
    return makeToken(TokenKind::Less, "<", Start);
  case '>':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::GreaterEqual, ">=", Start);
    }
    return makeToken(TokenKind::Greater, ">", Start);
  case '=':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::EqualEqual, "==", Start);
    }
    return makeToken(TokenKind::Error, "unexpected '='", Start);
  case '!':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::BangEqual, "!=", Start);
    }
    return makeToken(TokenKind::Error, "unexpected '!'", Start);
  default:
    return makeToken(TokenKind::Error,
                     std::string("unexpected character '") + C + "'", Start);
  }
}
