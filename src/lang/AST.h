//===- lang/AST.h - Workload DSL abstract syntax tree -----------*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST for JP, the workload language whose interpreted execution produces
/// the branch and call-loop traces that stand in for the paper's
/// instrumented Java runs. The grammar:
///
/// \code
///   program   := 'program' ident ';' method*
///   method    := 'method' ident '(' [ident (',' ident)*] ')' block
///   block     := '{' stmt* '}'
///   stmt      := loop | branch | if | when | call | pick | block
///   loop      := 'loop' [ident] 'times' expr block
///                // the optional ident binds the 0-based iteration index
///   branch    := 'branch' [ident] ['flip' number] ';'
///   if        := 'if' number block ['else' block]        // probabilistic
///   when      := 'when' '(' expr ')' block ['else' block]// deterministic
///   call      := 'call' ident '(' [expr (',' expr)*] ')' ';'
///   pick      := 'pick' '{' ('weight' integer block)+ '}'
///   expr      := additive [cmpop additive]
///   additive  := term (('+'|'-') term)*
///   term      := unary (('*'|'/'|'%') unary)*
///   unary     := '-' unary | primary
///   primary   := integer | ident | '(' expr ')'
/// \endcode
///
/// `branch`, `if`, and `when` each correspond to one static conditional
/// branch site; executing one emits one profile element whose taken bit is
/// the evaluated condition (for `branch`, true unless `flip p` makes it
/// taken with probability p). `pick` models an indirect jump and emits no
/// profile element. Integer literals accept K/M suffixes.
///
/// Nodes carry the annotations Sema computes: method indices, call
/// resolution, loop ids, per-method branch-site offsets, and parameter
/// slots.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_LANG_AST_H
#define OPD_LANG_AST_H

#include "lang/Lexer.h"
#include "support/Casting.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace opd {

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Base class of JP expressions. Expressions evaluate to int64 values in
/// the interpreter.
class Expr {
public:
  enum class Kind : uint8_t { IntLit, ParamRef, Binary, Unary };

  virtual ~Expr();

  Kind kind() const { return TheKind; }
  SourceLoc loc() const { return Loc; }

protected:
  Expr(Kind K, SourceLoc Loc) : TheKind(K), Loc(Loc) {}

private:
  Kind TheKind;
  SourceLoc Loc;
};

/// An integer literal (K/M suffixes already folded by the lexer).
class IntLitExpr : public Expr {
  int64_t Value;

public:
  IntLitExpr(int64_t Value, SourceLoc Loc)
      : Expr(Kind::IntLit, Loc), Value(Value) {}

  int64_t value() const { return Value; }

  static bool classof(const Expr *E) { return E->kind() == Kind::IntLit; }
};

/// A reference to a method parameter or an enclosing loop variable. Sema
/// resolves the reference to a value slot in the method's frame (slots
/// [0, numParams) hold parameters; loop variables get the later slots).
class ParamRefExpr : public Expr {
  std::string Name;
  uint32_t Slot = ~0u;

public:
  ParamRefExpr(std::string Name, SourceLoc Loc)
      : Expr(Kind::ParamRef, Loc), Name(std::move(Name)) {}

  const std::string &name() const { return Name; }
  uint32_t slot() const { return Slot; }
  void setSlot(uint32_t Index) { Slot = Index; }

  static bool classof(const Expr *E) { return E->kind() == Kind::ParamRef; }
};

/// Binary operators. Comparisons evaluate to 0/1.
enum class BinaryOp : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  Lt,
  Le,
  Gt,
  Ge,
  Eq,
  Ne,
};

/// A binary expression.
class BinaryExpr : public Expr {
  BinaryOp Op;
  std::unique_ptr<Expr> LHS, RHS;

public:
  BinaryExpr(BinaryOp Op, std::unique_ptr<Expr> LHS,
             std::unique_ptr<Expr> RHS, SourceLoc Loc)
      : Expr(Kind::Binary, Loc), Op(Op), LHS(std::move(LHS)),
        RHS(std::move(RHS)) {}

  BinaryOp op() const { return Op; }
  const Expr *lhs() const { return LHS.get(); }
  const Expr *rhs() const { return RHS.get(); }

  /// Mutable operand slots for AST transforms (lang/Transforms.h).
  std::unique_ptr<Expr> &lhsSlot() { return LHS; }
  std::unique_ptr<Expr> &rhsSlot() { return RHS; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Binary; }
};

/// Unary negation.
class UnaryExpr : public Expr {
  std::unique_ptr<Expr> Operand;

public:
  UnaryExpr(std::unique_ptr<Expr> Operand, SourceLoc Loc)
      : Expr(Kind::Unary, Loc), Operand(std::move(Operand)) {}

  const Expr *operand() const { return Operand.get(); }

  /// Mutable operand slot for AST transforms.
  std::unique_ptr<Expr> &operandSlot() { return Operand; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Unary; }
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

class BlockStmt;

/// Base class of JP statements.
class Stmt {
public:
  enum class Kind : uint8_t { Block, Loop, Branch, If, When, Call, Pick };

  virtual ~Stmt();

  Kind kind() const { return TheKind; }
  SourceLoc loc() const { return Loc; }

protected:
  Stmt(Kind K, SourceLoc Loc) : TheKind(K), Loc(Loc) {}

private:
  Kind TheKind;
  SourceLoc Loc;
};

/// A `{ ... }` statement list.
class BlockStmt : public Stmt {
  std::vector<std::unique_ptr<Stmt>> Stmts;

public:
  BlockStmt(std::vector<std::unique_ptr<Stmt>> Stmts, SourceLoc Loc)
      : Stmt(Kind::Block, Loc), Stmts(std::move(Stmts)) {}

  const std::vector<std::unique_ptr<Stmt>> &stmts() const { return Stmts; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Block; }
};

/// `loop [var] times <expr> { ... }`. The optional identifier names a
/// loop variable bound to the 0-based iteration index, visible in the
/// body. Each static loop gets a unique LoopId from Sema; the interpreter
/// reports loop enter/exit events under that id.
class LoopStmt : public Stmt {
  std::string VarName; // empty when the loop binds no variable
  std::unique_ptr<Expr> Count;
  std::unique_ptr<BlockStmt> Body;
  uint32_t LoopId = ~0u;
  uint32_t VarSlot = ~0u; // value slot of the loop variable, from Sema

public:
  LoopStmt(std::string VarName, std::unique_ptr<Expr> Count,
           std::unique_ptr<BlockStmt> Body, SourceLoc Loc)
      : Stmt(Kind::Loop, Loc), VarName(std::move(VarName)),
        Count(std::move(Count)), Body(std::move(Body)) {}

  const std::string &varName() const { return VarName; }
  bool hasVar() const { return !VarName.empty(); }
  const Expr *count() const { return Count.get(); }
  /// Mutable count slot for AST transforms.
  std::unique_ptr<Expr> &countSlot() { return Count; }
  const BlockStmt *body() const { return Body.get(); }
  uint32_t loopId() const { return LoopId; }
  void setLoopId(uint32_t Id) { LoopId = Id; }
  uint32_t varSlot() const { return VarSlot; }
  void setVarSlot(uint32_t Slot) { VarSlot = Slot; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Loop; }
};

/// `branch [label] [flip <p>];` — one conditional branch site. Without
/// `flip`, the branch is always taken; with `flip p`, it is taken with
/// probability p (the taken bit is part of the profile element identity,
/// so a flipping branch contributes two distinct elements).
class BranchStmt : public Stmt {
  std::string Label;
  double FlipProbability; // Probability the branch is taken; 1.0 = always.
  uint32_t SiteOffset = ~0u;

public:
  BranchStmt(std::string Label, double FlipProbability, SourceLoc Loc)
      : Stmt(Kind::Branch, Loc), Label(std::move(Label)),
        FlipProbability(FlipProbability) {}

  const std::string &label() const { return Label; }
  double flipProbability() const { return FlipProbability; }
  uint32_t siteOffset() const { return SiteOffset; }
  void setSiteOffset(uint32_t Offset) { SiteOffset = Offset; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Branch; }
};

/// `if <p> { ... } [else { ... }]` — probabilistic conditional; the
/// condition is an independent Bernoulli(p) draw each execution. Emits one
/// profile element (taken = then-arm chosen).
class IfStmt : public Stmt {
  double Probability;
  std::unique_ptr<BlockStmt> Then;
  std::unique_ptr<BlockStmt> Else; // may be null
  uint32_t SiteOffset = ~0u;

public:
  IfStmt(double Probability, std::unique_ptr<BlockStmt> Then,
         std::unique_ptr<BlockStmt> Else, SourceLoc Loc)
      : Stmt(Kind::If, Loc), Probability(Probability), Then(std::move(Then)),
        Else(std::move(Else)) {}

  double probability() const { return Probability; }
  const BlockStmt *thenBlock() const { return Then.get(); }
  const BlockStmt *elseBlock() const { return Else.get(); }
  uint32_t siteOffset() const { return SiteOffset; }
  void setSiteOffset(uint32_t Offset) { SiteOffset = Offset; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::If; }
};

/// `when (<expr>) { ... } [else { ... }]` — deterministic conditional on an
/// integer expression (nonzero = true). Emits one profile element.
class WhenStmt : public Stmt {
  std::unique_ptr<Expr> Cond;
  std::unique_ptr<BlockStmt> Then;
  std::unique_ptr<BlockStmt> Else; // may be null
  uint32_t SiteOffset = ~0u;

public:
  WhenStmt(std::unique_ptr<Expr> Cond, std::unique_ptr<BlockStmt> Then,
           std::unique_ptr<BlockStmt> Else, SourceLoc Loc)
      : Stmt(Kind::When, Loc), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}

  const Expr *cond() const { return Cond.get(); }
  /// Mutable condition slot for AST transforms.
  std::unique_ptr<Expr> &condSlot() { return Cond; }
  const BlockStmt *thenBlock() const { return Then.get(); }
  const BlockStmt *elseBlock() const { return Else.get(); }
  uint32_t siteOffset() const { return SiteOffset; }
  void setSiteOffset(uint32_t Offset) { SiteOffset = Offset; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::When; }
};

/// `call <name>(<args>);`. Sema resolves CalleeIndex.
class CallStmt : public Stmt {
  std::string Callee;
  std::vector<std::unique_ptr<Expr>> Args;
  uint32_t CalleeIndex = ~0u;

public:
  CallStmt(std::string Callee, std::vector<std::unique_ptr<Expr>> Args,
           SourceLoc Loc)
      : Stmt(Kind::Call, Loc), Callee(std::move(Callee)),
        Args(std::move(Args)) {}

  const std::string &callee() const { return Callee; }
  const std::vector<std::unique_ptr<Expr>> &args() const { return Args; }
  /// Mutable argument slots for AST transforms.
  std::vector<std::unique_ptr<Expr>> &argsSlot() { return Args; }
  uint32_t calleeIndex() const { return CalleeIndex; }
  void setCalleeIndex(uint32_t Index) { CalleeIndex = Index; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Call; }
};

/// `pick { weight <w> { ... } ... }` — weighted random selection of one
/// arm, modeling an indirect jump; emits no profile element.
class PickStmt : public Stmt {
public:
  struct Arm {
    uint64_t Weight;
    std::unique_ptr<BlockStmt> Body;
  };

  PickStmt(std::vector<Arm> Arms, SourceLoc Loc)
      : Stmt(Kind::Pick, Loc), Arms(std::move(Arms)) {}

  const std::vector<Arm> &arms() const { return Arms; }

  /// Sum of arm weights (nonzero after Sema).
  uint64_t totalWeight() const {
    uint64_t Total = 0;
    for (const Arm &A : Arms)
      Total += A.Weight;
    return Total;
  }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Pick; }

private:
  std::vector<Arm> Arms;
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

/// A JP method: name, parameter names, body. MethodIndex doubles as the
/// profile-element method id; NumSites is the number of branch sites in
/// the body (assigned contiguous bytecode offsets by Sema).
class MethodDecl {
  std::string Name;
  std::vector<std::string> Params;
  std::unique_ptr<BlockStmt> Body;
  SourceLoc Loc;
  uint32_t MethodIndex = ~0u;
  uint32_t NumSites = 0;
  uint32_t NumSlots = 0;

public:
  MethodDecl(std::string Name, std::vector<std::string> Params,
             std::unique_ptr<BlockStmt> Body, SourceLoc Loc)
      : Name(std::move(Name)), Params(std::move(Params)),
        Body(std::move(Body)), Loc(Loc) {}

  const std::string &name() const { return Name; }
  const std::vector<std::string> &params() const { return Params; }
  const BlockStmt *body() const { return Body.get(); }
  BlockStmt *body() { return Body.get(); }
  SourceLoc loc() const { return Loc; }
  uint32_t methodIndex() const { return MethodIndex; }
  void setMethodIndex(uint32_t Index) { MethodIndex = Index; }
  uint32_t numSites() const { return NumSites; }
  void setNumSites(uint32_t N) { NumSites = N; }

  /// Frame value slots: parameters plus the deepest nest of loop
  /// variables; valid after Sema.
  uint32_t numSlots() const { return NumSlots; }
  void setNumSlots(uint32_t N) { NumSlots = N; }
};

/// A parsed JP program. After Sema: methods are indexed, calls resolved,
/// loops numbered program-wide, and branch sites numbered per method.
class Program {
  std::string Name;
  std::vector<std::unique_ptr<MethodDecl>> Methods;
  uint32_t EntryIndex = ~0u;
  uint32_t NumLoops = 0;

public:
  explicit Program(std::string Name) : Name(std::move(Name)) {}

  const std::string &name() const { return Name; }

  void addMethod(std::unique_ptr<MethodDecl> M) {
    Methods.push_back(std::move(M));
  }

  const std::vector<std::unique_ptr<MethodDecl>> &methods() const {
    return Methods;
  }
  std::vector<std::unique_ptr<MethodDecl>> &methods() { return Methods; }

  /// Index of the `main` method; valid after Sema.
  uint32_t entryIndex() const { return EntryIndex; }
  void setEntryIndex(uint32_t Index) { EntryIndex = Index; }

  /// Number of static loops; valid after Sema.
  uint32_t numLoops() const { return NumLoops; }
  void setNumLoops(uint32_t N) { NumLoops = N; }
};

} // namespace opd

#endif // OPD_LANG_AST_H
