//===- lang/Diagnostics.h - Parse/sema diagnostics --------------*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Diagnostic accumulation for the JP front end. The library never prints;
/// tools render the collected diagnostics themselves.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_LANG_DIAGNOSTICS_H
#define OPD_LANG_DIAGNOSTICS_H

#include "lang/Lexer.h"

#include <string>
#include <vector>

namespace opd {

/// One error message anchored at a source location.
struct Diagnostic {
  SourceLoc Loc;
  std::string Message;

  /// Renders "line:col: error: message" (the conventional tool style).
  std::string render() const {
    return std::to_string(Loc.Line) + ":" + std::to_string(Loc.Col) +
           ": error: " + Message;
  }
};

/// Accumulates diagnostics across the front-end passes.
class DiagnosticEngine {
  std::vector<Diagnostic> Diags;

public:
  /// Records an error at \p Loc.
  void error(SourceLoc Loc, std::string Message) {
    Diags.push_back({Loc, std::move(Message)});
  }

  bool hasErrors() const { return !Diags.empty(); }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders all diagnostics, one per line.
  std::string renderAll() const {
    std::string Out;
    for (const Diagnostic &D : Diags) {
      Out += D.render();
      Out += '\n';
    }
    return Out;
  }
};

} // namespace opd

#endif // OPD_LANG_DIAGNOSTICS_H
