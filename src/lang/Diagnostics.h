//===- lang/Diagnostics.h - Parse/sema diagnostics --------------*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Diagnostic accumulation for the JP front end and the static analyses.
/// The library never prints; tools render the collected diagnostics
/// themselves.
///
/// The front end (Parser/Sema) only emits errors. The static analyzer
/// (analysis/Lint.h) additionally emits warnings and notes, each tagged
/// with a stable diagnostic code ("dead-method", "unbounded-loop", ...)
/// that tools key structured output and exit codes off.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_LANG_DIAGNOSTICS_H
#define OPD_LANG_DIAGNOSTICS_H

#include "lang/Lexer.h"

#include <string>
#include <vector>

namespace opd {

/// Diagnostic severity, ordered least to most severe.
enum class DiagSeverity : uint8_t {
  Note,    ///< Informational; never affects exit status.
  Warning, ///< Suspicious but not fatal.
  Error,   ///< The program is wrong (or the analysis proved a defect).
};

/// Severity name as rendered in diagnostics ("note", "warning", "error").
inline const char *severityName(DiagSeverity S) {
  switch (S) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "error";
}

/// One message anchored at a source location. Code is empty for front-end
/// diagnostics and a stable kebab-case identifier for analysis ones.
struct Diagnostic {
  SourceLoc Loc;
  std::string Message;
  DiagSeverity Severity = DiagSeverity::Error;
  std::string Code;

  /// Renders "line:col: severity: message [code]" (the conventional tool
  /// style; the [code] suffix only when a code is present).
  std::string render() const {
    std::string Out = std::to_string(Loc.Line) + ":" +
                      std::to_string(Loc.Col) + ": " +
                      severityName(Severity) + ": " + Message;
    if (!Code.empty())
      Out += " [" + Code + "]";
    return Out;
  }
};

/// Accumulates diagnostics across the front-end and analysis passes.
class DiagnosticEngine {
  std::vector<Diagnostic> Diags;

public:
  /// Records an error at \p Loc.
  void error(SourceLoc Loc, std::string Message) {
    Diags.push_back({Loc, std::move(Message), DiagSeverity::Error, {}});
  }

  /// Records a diagnostic of arbitrary severity with a stable code.
  void report(DiagSeverity Severity, SourceLoc Loc, std::string Code,
              std::string Message) {
    Diags.push_back(
        {Loc, std::move(Message), Severity, std::move(Code)});
  }

  /// True if any Error-severity diagnostic was recorded.
  bool hasErrors() const {
    for (const Diagnostic &D : Diags)
      if (D.Severity == DiagSeverity::Error)
        return true;
    return false;
  }

  /// The most severe diagnostic recorded, or nullopt-like Note when empty.
  DiagSeverity maxSeverity() const {
    DiagSeverity Max = DiagSeverity::Note;
    for (const Diagnostic &D : Diags)
      if (D.Severity > Max)
        Max = D.Severity;
    return Max;
  }

  bool empty() const { return Diags.empty(); }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders all diagnostics, one per line.
  std::string renderAll() const {
    std::string Out;
    for (const Diagnostic &D : Diags) {
      Out += D.render();
      Out += '\n';
    }
    return Out;
  }
};

} // namespace opd

#endif // OPD_LANG_DIAGNOSTICS_H
