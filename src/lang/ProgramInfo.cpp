//===- lang/ProgramInfo.cpp - Static construct descriptions ----------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "lang/ProgramInfo.h"

#include "support/Casting.h"

using namespace opd;

namespace {

/// Collects loop descriptions in loop-id order (Sema numbers loops in the
/// same walk order used here).
class LoopCollector {
public:
  LoopCollector(const std::string &MethodName,
                std::vector<std::string> &LoopNames)
      : MethodName(MethodName), LoopNames(LoopNames) {}

  void walkStmt(const Stmt &S) {
    switch (S.kind()) {
    case Stmt::Kind::Block:
      for (const std::unique_ptr<Stmt> &Child :
           cast<BlockStmt>(&S)->stmts())
        walkStmt(*Child);
      return;
    case Stmt::Kind::Loop: {
      const auto *Loop = cast<LoopStmt>(&S);
      assert(Loop->loopId() == LoopNames.size() &&
             "walk order diverged from Sema's loop numbering");
      std::string Name = MethodName + ".";
      if (Loop->hasVar())
        Name += Loop->varName();
      else
        Name += "loop@" + std::to_string(Loop->loc().Line);
      LoopNames.push_back(std::move(Name));
      walkStmt(*Loop->body());
      return;
    }
    case Stmt::Kind::If: {
      const auto *If = cast<IfStmt>(&S);
      walkStmt(*If->thenBlock());
      if (If->elseBlock())
        walkStmt(*If->elseBlock());
      return;
    }
    case Stmt::Kind::When: {
      const auto *When = cast<WhenStmt>(&S);
      walkStmt(*When->thenBlock());
      if (When->elseBlock())
        walkStmt(*When->elseBlock());
      return;
    }
    case Stmt::Kind::Pick:
      for (const PickStmt::Arm &Arm : cast<PickStmt>(&S)->arms())
        walkStmt(*Arm.Body);
      return;
    case Stmt::Kind::Branch:
    case Stmt::Kind::Call:
      return;
    }
  }

private:
  const std::string &MethodName;
  std::vector<std::string> &LoopNames;
};

} // namespace

ProgramInfo ProgramInfo::build(const Program &Prog) {
  ProgramInfo Info;
  Info.MethodNames.reserve(Prog.methods().size());
  for (const std::unique_ptr<MethodDecl> &M : Prog.methods())
    Info.MethodNames.push_back(M->name());
  for (const std::unique_ptr<MethodDecl> &M : Prog.methods()) {
    LoopCollector Collector(M->name(), Info.LoopNames);
    Collector.walkStmt(*M->body());
  }
  return Info;
}

std::string ProgramInfo::methodName(uint32_t Index) const {
  if (Index < MethodNames.size())
    return MethodNames[Index];
  return "method#" + std::to_string(Index);
}

std::string ProgramInfo::loopName(uint32_t LoopId) const {
  if (LoopId < LoopNames.size())
    return LoopNames[LoopId];
  return "loop#" + std::to_string(LoopId);
}
