//===- lang/Parser.cpp - Workload DSL parser --------------------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"

using namespace opd;

namespace {

/// Recursive-descent parser with single-token lookahead.
class Parser {
public:
  Parser(const std::string &Source, DiagnosticEngine &Diags)
      : Lex(Source), Diags(Diags) {
    Tok = Lex.next();
  }

  std::unique_ptr<Program> parseProgram();

private:
  // Token plumbing ---------------------------------------------------------

  void consume() { Tok = Lex.next(); }

  bool check(TokenKind Kind) const { return Tok.is(Kind); }

  bool accept(TokenKind Kind) {
    if (!check(Kind))
      return false;
    consume();
    return true;
  }

  /// Consumes a token of the given kind or emits "expected X, found Y".
  bool expect(TokenKind Kind) {
    if (accept(Kind))
      return true;
    error(std::string("expected ") + tokenKindName(Kind) + ", found " +
          describeCurrent());
    return false;
  }

  std::string describeCurrent() const {
    if (Tok.is(TokenKind::Error))
      return Tok.Text;
    if (Tok.is(TokenKind::Identifier))
      return "identifier '" + Tok.Text + "'";
    return tokenKindName(Tok.Kind);
  }

  void error(std::string Message) {
    if (!Failed)
      Diags.error(Tok.Loc, std::move(Message));
    Failed = true;
  }

  // Grammar productions ----------------------------------------------------

  std::unique_ptr<MethodDecl> parseMethod();
  std::unique_ptr<BlockStmt> parseBlock();
  std::unique_ptr<Stmt> parseStmt();
  std::unique_ptr<Stmt> parseLoop();
  std::unique_ptr<Stmt> parseBranch();
  std::unique_ptr<Stmt> parseIf();
  std::unique_ptr<Stmt> parseWhen();
  std::unique_ptr<Stmt> parseCall();
  std::unique_ptr<Stmt> parsePick();
  std::unique_ptr<Expr> parseExpr();
  std::unique_ptr<Expr> parseAdditive();
  std::unique_ptr<Expr> parseTerm();
  std::unique_ptr<Expr> parseUnary();
  std::unique_ptr<Expr> parsePrimary();

  /// Parses a probability literal in [0, 1] (integer or float token).
  bool parseProbability(double &P);

  Lexer Lex;
  DiagnosticEngine &Diags;
  Token Tok;
  bool Failed = false;
};

} // namespace

std::unique_ptr<Program> Parser::parseProgram() {
  if (!expect(TokenKind::KwProgram))
    return nullptr;
  if (!check(TokenKind::Identifier)) {
    error("expected program name");
    return nullptr;
  }
  auto Prog = std::make_unique<Program>(Tok.Text);
  consume();
  if (!expect(TokenKind::Semicolon))
    return nullptr;

  while (!check(TokenKind::EndOfFile)) {
    std::unique_ptr<MethodDecl> M = parseMethod();
    if (!M)
      return nullptr;
    Prog->addMethod(std::move(M));
  }
  if (Prog->methods().empty()) {
    error("program has no methods");
    return nullptr;
  }
  return Prog;
}

std::unique_ptr<MethodDecl> Parser::parseMethod() {
  SourceLoc Loc = Tok.Loc;
  if (!expect(TokenKind::KwMethod))
    return nullptr;
  if (!check(TokenKind::Identifier)) {
    error("expected method name");
    return nullptr;
  }
  std::string Name = Tok.Text;
  consume();
  if (!expect(TokenKind::LParen))
    return nullptr;
  std::vector<std::string> Params;
  if (!check(TokenKind::RParen)) {
    do {
      if (!check(TokenKind::Identifier)) {
        error("expected parameter name");
        return nullptr;
      }
      Params.push_back(Tok.Text);
      consume();
    } while (accept(TokenKind::Comma));
  }
  if (!expect(TokenKind::RParen))
    return nullptr;
  std::unique_ptr<BlockStmt> Body = parseBlock();
  if (!Body)
    return nullptr;
  return std::make_unique<MethodDecl>(std::move(Name), std::move(Params),
                                      std::move(Body), Loc);
}

std::unique_ptr<BlockStmt> Parser::parseBlock() {
  SourceLoc Loc = Tok.Loc;
  if (!expect(TokenKind::LBrace))
    return nullptr;
  std::vector<std::unique_ptr<Stmt>> Stmts;
  while (!check(TokenKind::RBrace)) {
    if (check(TokenKind::EndOfFile)) {
      error("unterminated block (missing '}')");
      return nullptr;
    }
    std::unique_ptr<Stmt> S = parseStmt();
    if (!S)
      return nullptr;
    Stmts.push_back(std::move(S));
  }
  consume(); // '}'
  return std::make_unique<BlockStmt>(std::move(Stmts), Loc);
}

std::unique_ptr<Stmt> Parser::parseStmt() {
  switch (Tok.Kind) {
  case TokenKind::KwLoop:
    return parseLoop();
  case TokenKind::KwBranch:
    return parseBranch();
  case TokenKind::KwIf:
    return parseIf();
  case TokenKind::KwWhen:
    return parseWhen();
  case TokenKind::KwCall:
    return parseCall();
  case TokenKind::KwPick:
    return parsePick();
  case TokenKind::LBrace:
    return parseBlock();
  default:
    error("expected a statement, found " + describeCurrent());
    return nullptr;
  }
}

std::unique_ptr<Stmt> Parser::parseLoop() {
  SourceLoc Loc = Tok.Loc;
  consume(); // 'loop'
  std::string Label;
  if (check(TokenKind::Identifier)) {
    Label = Tok.Text;
    consume();
  }
  if (!expect(TokenKind::KwTimes))
    return nullptr;
  std::unique_ptr<Expr> Count = parseExpr();
  if (!Count)
    return nullptr;
  std::unique_ptr<BlockStmt> Body = parseBlock();
  if (!Body)
    return nullptr;
  return std::make_unique<LoopStmt>(std::move(Label), std::move(Count),
                                    std::move(Body), Loc);
}

std::unique_ptr<Stmt> Parser::parseBranch() {
  SourceLoc Loc = Tok.Loc;
  consume(); // 'branch'
  std::string Label;
  if (check(TokenKind::Identifier)) {
    Label = Tok.Text;
    consume();
  }
  double Probability = 1.0;
  if (accept(TokenKind::KwFlip)) {
    if (!parseProbability(Probability))
      return nullptr;
  }
  if (!expect(TokenKind::Semicolon))
    return nullptr;
  return std::make_unique<BranchStmt>(std::move(Label), Probability, Loc);
}

std::unique_ptr<Stmt> Parser::parseIf() {
  SourceLoc Loc = Tok.Loc;
  consume(); // 'if'
  double Probability = 0.0;
  if (!parseProbability(Probability))
    return nullptr;
  std::unique_ptr<BlockStmt> Then = parseBlock();
  if (!Then)
    return nullptr;
  std::unique_ptr<BlockStmt> Else;
  if (accept(TokenKind::KwElse)) {
    Else = parseBlock();
    if (!Else)
      return nullptr;
  }
  return std::make_unique<IfStmt>(Probability, std::move(Then),
                                  std::move(Else), Loc);
}

std::unique_ptr<Stmt> Parser::parseWhen() {
  SourceLoc Loc = Tok.Loc;
  consume(); // 'when'
  if (!expect(TokenKind::LParen))
    return nullptr;
  std::unique_ptr<Expr> Cond = parseExpr();
  if (!Cond)
    return nullptr;
  if (!expect(TokenKind::RParen))
    return nullptr;
  std::unique_ptr<BlockStmt> Then = parseBlock();
  if (!Then)
    return nullptr;
  std::unique_ptr<BlockStmt> Else;
  if (accept(TokenKind::KwElse)) {
    Else = parseBlock();
    if (!Else)
      return nullptr;
  }
  return std::make_unique<WhenStmt>(std::move(Cond), std::move(Then),
                                    std::move(Else), Loc);
}

std::unique_ptr<Stmt> Parser::parseCall() {
  SourceLoc Loc = Tok.Loc;
  consume(); // 'call'
  if (!check(TokenKind::Identifier)) {
    error("expected callee name");
    return nullptr;
  }
  std::string Callee = Tok.Text;
  consume();
  if (!expect(TokenKind::LParen))
    return nullptr;
  std::vector<std::unique_ptr<Expr>> Args;
  if (!check(TokenKind::RParen)) {
    do {
      std::unique_ptr<Expr> Arg = parseExpr();
      if (!Arg)
        return nullptr;
      Args.push_back(std::move(Arg));
    } while (accept(TokenKind::Comma));
  }
  if (!expect(TokenKind::RParen) || !expect(TokenKind::Semicolon))
    return nullptr;
  return std::make_unique<CallStmt>(std::move(Callee), std::move(Args), Loc);
}

std::unique_ptr<Stmt> Parser::parsePick() {
  SourceLoc Loc = Tok.Loc;
  consume(); // 'pick'
  if (!expect(TokenKind::LBrace))
    return nullptr;
  std::vector<PickStmt::Arm> Arms;
  while (!check(TokenKind::RBrace)) {
    if (!expect(TokenKind::KwWeight))
      return nullptr;
    if (!check(TokenKind::Integer) || Tok.IntValue <= 0) {
      error("expected a positive integer weight");
      return nullptr;
    }
    uint64_t Weight = static_cast<uint64_t>(Tok.IntValue);
    consume();
    std::unique_ptr<BlockStmt> Body = parseBlock();
    if (!Body)
      return nullptr;
    Arms.push_back({Weight, std::move(Body)});
  }
  consume(); // '}'
  if (Arms.empty()) {
    error("'pick' requires at least one arm");
    return nullptr;
  }
  return std::make_unique<PickStmt>(std::move(Arms), Loc);
}

bool Parser::parseProbability(double &P) {
  if (check(TokenKind::Float)) {
    P = Tok.FloatValue;
  } else if (check(TokenKind::Integer)) {
    P = static_cast<double>(Tok.IntValue);
  } else {
    error("expected a probability literal, found " + describeCurrent());
    return false;
  }
  if (P < 0.0 || P > 1.0) {
    error("probability must be in [0, 1]");
    return false;
  }
  consume();
  return true;
}

std::unique_ptr<Expr> Parser::parseExpr() {
  std::unique_ptr<Expr> LHS = parseAdditive();
  if (!LHS)
    return nullptr;
  BinaryOp Op;
  switch (Tok.Kind) {
  case TokenKind::Less:
    Op = BinaryOp::Lt;
    break;
  case TokenKind::LessEqual:
    Op = BinaryOp::Le;
    break;
  case TokenKind::Greater:
    Op = BinaryOp::Gt;
    break;
  case TokenKind::GreaterEqual:
    Op = BinaryOp::Ge;
    break;
  case TokenKind::EqualEqual:
    Op = BinaryOp::Eq;
    break;
  case TokenKind::BangEqual:
    Op = BinaryOp::Ne;
    break;
  default:
    return LHS;
  }
  SourceLoc Loc = Tok.Loc;
  consume();
  std::unique_ptr<Expr> RHS = parseAdditive();
  if (!RHS)
    return nullptr;
  return std::make_unique<BinaryExpr>(Op, std::move(LHS), std::move(RHS),
                                      Loc);
}

std::unique_ptr<Expr> Parser::parseAdditive() {
  std::unique_ptr<Expr> LHS = parseTerm();
  if (!LHS)
    return nullptr;
  while (check(TokenKind::Plus) || check(TokenKind::Minus)) {
    BinaryOp Op =
        check(TokenKind::Plus) ? BinaryOp::Add : BinaryOp::Sub;
    SourceLoc Loc = Tok.Loc;
    consume();
    std::unique_ptr<Expr> RHS = parseTerm();
    if (!RHS)
      return nullptr;
    LHS = std::make_unique<BinaryExpr>(Op, std::move(LHS), std::move(RHS),
                                       Loc);
  }
  return LHS;
}

std::unique_ptr<Expr> Parser::parseTerm() {
  std::unique_ptr<Expr> LHS = parseUnary();
  if (!LHS)
    return nullptr;
  while (check(TokenKind::Star) || check(TokenKind::Slash) ||
         check(TokenKind::Percent)) {
    BinaryOp Op = check(TokenKind::Star)    ? BinaryOp::Mul
                  : check(TokenKind::Slash) ? BinaryOp::Div
                                            : BinaryOp::Rem;
    SourceLoc Loc = Tok.Loc;
    consume();
    std::unique_ptr<Expr> RHS = parseUnary();
    if (!RHS)
      return nullptr;
    LHS = std::make_unique<BinaryExpr>(Op, std::move(LHS), std::move(RHS),
                                       Loc);
  }
  return LHS;
}

std::unique_ptr<Expr> Parser::parseUnary() {
  if (check(TokenKind::Minus)) {
    SourceLoc Loc = Tok.Loc;
    consume();
    std::unique_ptr<Expr> Operand = parseUnary();
    if (!Operand)
      return nullptr;
    return std::make_unique<UnaryExpr>(std::move(Operand), Loc);
  }
  return parsePrimary();
}

std::unique_ptr<Expr> Parser::parsePrimary() {
  if (check(TokenKind::Integer)) {
    auto E = std::make_unique<IntLitExpr>(Tok.IntValue, Tok.Loc);
    consume();
    return E;
  }
  if (check(TokenKind::Identifier)) {
    auto E = std::make_unique<ParamRefExpr>(Tok.Text, Tok.Loc);
    consume();
    return E;
  }
  if (accept(TokenKind::LParen)) {
    std::unique_ptr<Expr> E = parseExpr();
    if (!E)
      return nullptr;
    if (!expect(TokenKind::RParen))
      return nullptr;
    return E;
  }
  error("expected an expression, found " + describeCurrent());
  return nullptr;
}

std::unique_ptr<Program> opd::parseProgram(const std::string &Source,
                                           DiagnosticEngine &Diags) {
  Parser P(Source, Diags);
  std::unique_ptr<Program> Prog = P.parseProgram();
  if (Diags.hasErrors())
    return nullptr;
  return Prog;
}
