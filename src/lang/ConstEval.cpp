//===- lang/ConstEval.cpp - Compile-time expression evaluation ---------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "lang/ConstEval.h"

#include "support/Casting.h"

using namespace opd;

std::optional<int64_t> opd::evaluateConstant(const Expr &E,
                                             const ConstEnv *Env) {
  switch (E.kind()) {
  case Expr::Kind::IntLit:
    return cast<IntLitExpr>(&E)->value();

  case Expr::Kind::ParamRef: {
    if (!Env)
      return std::nullopt;
    uint32_t Slot = cast<ParamRefExpr>(&E)->slot();
    if (Slot >= Env->size())
      return std::nullopt;
    return (*Env)[Slot];
  }

  case Expr::Kind::Unary: {
    std::optional<int64_t> V =
        evaluateConstant(*cast<UnaryExpr>(&E)->operand(), Env);
    if (!V)
      return std::nullopt;
    return -*V;
  }

  case Expr::Kind::Binary: {
    const auto *Bin = cast<BinaryExpr>(&E);
    std::optional<int64_t> L = evaluateConstant(*Bin->lhs(), Env);
    std::optional<int64_t> R = evaluateConstant(*Bin->rhs(), Env);
    if (!L || !R)
      return std::nullopt;
    int64_t A = *L, B = *R;
    switch (Bin->op()) {
    case BinaryOp::Add:
      return A + B;
    case BinaryOp::Sub:
      return A - B;
    case BinaryOp::Mul:
      return A * B;
    case BinaryOp::Div:
      // Keep /0 for the interpreter's DivByZero counter.
      if (B == 0)
        return std::nullopt;
      return A / B;
    case BinaryOp::Rem:
      if (B == 0)
        return std::nullopt;
      return A % B;
    case BinaryOp::Lt:
      return A < B;
    case BinaryOp::Le:
      return A <= B;
    case BinaryOp::Gt:
      return A > B;
    case BinaryOp::Ge:
      return A >= B;
    case BinaryOp::Eq:
      return A == B;
    case BinaryOp::Ne:
      return A != B;
    }
    return std::nullopt;
  }
  }
  return std::nullopt;
}
