//===- lang/Parser.h - Workload DSL parser ----------------------*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for JP (grammar in lang/AST.h). Parsing stops
/// at the first error; the resulting diagnostics carry source locations.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_LANG_PARSER_H
#define OPD_LANG_PARSER_H

#include "lang/AST.h"
#include "lang/Diagnostics.h"
#include "lang/Lexer.h"

#include <memory>
#include <string>

namespace opd {

/// Parses \p Source into a Program. Returns null on error, with the
/// failure recorded in \p Diags. The returned program has not been through
/// Sema yet (see lang/Sema.h).
std::unique_ptr<Program> parseProgram(const std::string &Source,
                                      DiagnosticEngine &Diags);

} // namespace opd

#endif // OPD_LANG_PARSER_H
