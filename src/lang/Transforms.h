//===- lang/Transforms.h - AST transformation passes ------------*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST-level transforms for JP programs. foldConstants() evaluates
/// constant subexpressions at compile time — workload sources lean on
/// arithmetic like `loop times sa * 40` or `8000 + o * 1700`, and
/// folding removes the interpreter's per-evaluation cost for the
/// parameter-free parts.
///
/// Folding is semantics-preserving with respect to the interpreter,
/// including its corner cases: division/remainder by a constant zero is
/// left unfolded so the runtime DivByZero accounting still fires.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_LANG_TRANSFORMS_H
#define OPD_LANG_TRANSFORMS_H

#include "lang/AST.h"

namespace opd {

/// Folds constant subexpressions of \p Prog in place. May run before or
/// after Sema (it introduces no names and removes no branch sites).
/// Returns the number of expressions replaced by literals.
unsigned foldConstants(Program &Prog);

} // namespace opd

#endif // OPD_LANG_TRANSFORMS_H
