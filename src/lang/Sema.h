//===- lang/Sema.h - Workload DSL semantic analysis -------------*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic analysis for JP. Sema checks name/arity errors and annotates
/// the AST with the identifiers the interpreter's instrumentation needs:
/// method indices (= profile-element method ids), program-wide loop ids,
/// per-method branch-site bytecode offsets, and parameter slots.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_LANG_SEMA_H
#define OPD_LANG_SEMA_H

#include "lang/AST.h"
#include "lang/Diagnostics.h"

#include <memory>
#include <string>

namespace opd {

/// Runs semantic analysis over \p Prog in place. Returns true on success;
/// on failure, diagnostics are recorded in \p Diags and the annotation
/// state of the program is unspecified.
bool analyzeProgram(Program &Prog, DiagnosticEngine &Diags);

/// Convenience front-end entry point: parse + analyze. Returns null on any
/// error.
std::unique_ptr<Program> compileProgram(const std::string &Source,
                                        DiagnosticEngine &Diags);

} // namespace opd

#endif // OPD_LANG_SEMA_H
