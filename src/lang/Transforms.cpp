//===- lang/Transforms.cpp - AST transformation passes -----------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "lang/Transforms.h"

#include "support/Casting.h"

using namespace opd;

namespace {

/// Bottom-up constant folder.
class ConstantFolder {
public:
  unsigned run(Program &Prog) {
    for (std::unique_ptr<MethodDecl> &M : Prog.methods())
      foldStmt(*M->body());
    return NumFolds;
  }

private:
  /// Folds within \p Slot's subtree, then replaces \p Slot with a
  /// literal if it evaluates to a constant.
  void foldExpr(std::unique_ptr<Expr> &Slot) {
    switch (Slot->kind()) {
    case Expr::Kind::IntLit:
    case Expr::Kind::ParamRef:
      return;
    case Expr::Kind::Unary: {
      auto *Unary = cast<UnaryExpr>(Slot.get());
      foldExpr(Unary->operandSlot());
      if (const auto *Lit = dyn_cast<IntLitExpr>(Unary->operand()))
        replace(Slot, -Lit->value());
      return;
    }
    case Expr::Kind::Binary: {
      auto *Bin = cast<BinaryExpr>(Slot.get());
      foldExpr(Bin->lhsSlot());
      foldExpr(Bin->rhsSlot());
      const auto *L = dyn_cast<IntLitExpr>(Bin->lhs());
      const auto *R = dyn_cast<IntLitExpr>(Bin->rhs());
      if (!L || !R)
        return;
      int64_t A = L->value(), B = R->value();
      switch (Bin->op()) {
      case BinaryOp::Add:
        replace(Slot, A + B);
        return;
      case BinaryOp::Sub:
        replace(Slot, A - B);
        return;
      case BinaryOp::Mul:
        replace(Slot, A * B);
        return;
      case BinaryOp::Div:
        if (B != 0) // Keep /0 for the interpreter's DivByZero counter.
          replace(Slot, A / B);
        return;
      case BinaryOp::Rem:
        if (B != 0)
          replace(Slot, A % B);
        return;
      case BinaryOp::Lt:
        replace(Slot, A < B);
        return;
      case BinaryOp::Le:
        replace(Slot, A <= B);
        return;
      case BinaryOp::Gt:
        replace(Slot, A > B);
        return;
      case BinaryOp::Ge:
        replace(Slot, A >= B);
        return;
      case BinaryOp::Eq:
        replace(Slot, A == B);
        return;
      case BinaryOp::Ne:
        replace(Slot, A != B);
        return;
      }
      return;
    }
    }
  }

  void replace(std::unique_ptr<Expr> &Slot, int64_t Value) {
    Slot = std::make_unique<IntLitExpr>(Value, Slot->loc());
    ++NumFolds;
  }

  void foldStmt(Stmt &S) {
    switch (S.kind()) {
    case Stmt::Kind::Block:
      for (const std::unique_ptr<Stmt> &Child :
           cast<BlockStmt>(&S)->stmts())
        foldStmt(*Child);
      return;
    case Stmt::Kind::Loop: {
      auto *Loop = cast<LoopStmt>(&S);
      foldExpr(Loop->countSlot());
      foldStmt(const_cast<BlockStmt &>(*Loop->body()));
      return;
    }
    case Stmt::Kind::When: {
      auto *When = cast<WhenStmt>(&S);
      foldExpr(When->condSlot());
      foldStmt(const_cast<BlockStmt &>(*When->thenBlock()));
      if (When->elseBlock())
        foldStmt(const_cast<BlockStmt &>(*When->elseBlock()));
      return;
    }
    case Stmt::Kind::If: {
      auto *If = cast<IfStmt>(&S);
      foldStmt(const_cast<BlockStmt &>(*If->thenBlock()));
      if (If->elseBlock())
        foldStmt(const_cast<BlockStmt &>(*If->elseBlock()));
      return;
    }
    case Stmt::Kind::Call: {
      for (std::unique_ptr<Expr> &Arg : cast<CallStmt>(&S)->argsSlot())
        foldExpr(Arg);
      return;
    }
    case Stmt::Kind::Pick: {
      for (const PickStmt::Arm &Arm : cast<PickStmt>(&S)->arms())
        foldStmt(*Arm.Body);
      return;
    }
    case Stmt::Kind::Branch:
      return;
    }
  }

  unsigned NumFolds = 0;
};

} // namespace

unsigned opd::foldConstants(Program &Prog) {
  return ConstantFolder().run(Prog);
}
