//===- lang/Transforms.cpp - AST transformation passes -----------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "lang/Transforms.h"

#include "lang/ConstEval.h"
#include "support/Casting.h"

using namespace opd;

namespace {

/// Bottom-up constant folder over the shared compile-time evaluator
/// (lang/ConstEval.h), which encodes the fold-eligibility rules once for
/// both this transform and the static analyses.
class ConstantFolder {
public:
  unsigned run(Program &Prog) {
    for (std::unique_ptr<MethodDecl> &M : Prog.methods())
      foldStmt(*M->body());
    return NumFolds;
  }

private:
  /// Folds within \p Slot's subtree, then replaces \p Slot with a
  /// literal if it evaluates to a constant.
  void foldExpr(std::unique_ptr<Expr> &Slot) {
    switch (Slot->kind()) {
    case Expr::Kind::IntLit:
    case Expr::Kind::ParamRef:
      return;
    case Expr::Kind::Unary:
      foldExpr(cast<UnaryExpr>(Slot.get())->operandSlot());
      break;
    case Expr::Kind::Binary: {
      auto *Bin = cast<BinaryExpr>(Slot.get());
      foldExpr(Bin->lhsSlot());
      foldExpr(Bin->rhsSlot());
      break;
    }
    }
    if (std::optional<int64_t> V = evaluateConstant(*Slot)) {
      Slot = std::make_unique<IntLitExpr>(*V, Slot->loc());
      ++NumFolds;
    }
  }

  void foldStmt(Stmt &S) {
    switch (S.kind()) {
    case Stmt::Kind::Block:
      for (const std::unique_ptr<Stmt> &Child :
           cast<BlockStmt>(&S)->stmts())
        foldStmt(*Child);
      return;
    case Stmt::Kind::Loop: {
      auto *Loop = cast<LoopStmt>(&S);
      foldExpr(Loop->countSlot());
      foldStmt(const_cast<BlockStmt &>(*Loop->body()));
      return;
    }
    case Stmt::Kind::When: {
      auto *When = cast<WhenStmt>(&S);
      foldExpr(When->condSlot());
      foldStmt(const_cast<BlockStmt &>(*When->thenBlock()));
      if (When->elseBlock())
        foldStmt(const_cast<BlockStmt &>(*When->elseBlock()));
      return;
    }
    case Stmt::Kind::If: {
      auto *If = cast<IfStmt>(&S);
      foldStmt(const_cast<BlockStmt &>(*If->thenBlock()));
      if (If->elseBlock())
        foldStmt(const_cast<BlockStmt &>(*If->elseBlock()));
      return;
    }
    case Stmt::Kind::Call: {
      for (std::unique_ptr<Expr> &Arg : cast<CallStmt>(&S)->argsSlot())
        foldExpr(Arg);
      return;
    }
    case Stmt::Kind::Pick: {
      for (const PickStmt::Arm &Arm : cast<PickStmt>(&S)->arms())
        foldStmt(*Arm.Body);
      return;
    }
    case Stmt::Kind::Branch:
      return;
    }
  }

  unsigned NumFolds = 0;
};

} // namespace

unsigned opd::foldConstants(Program &Prog) {
  return ConstantFolder().run(Prog);
}
