//===- lang/ConstEval.h - Compile-time expression evaluation ----*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compile-time evaluation of JP expressions, shared between the constant
/// folder (lang/Transforms.h) and the static analyses (src/analysis).
///
/// Evaluation mirrors the interpreter exactly, with one deliberate
/// exception: division/remainder by a constant zero does NOT evaluate
/// (the interpreter defines it as 0 but also bumps its DivByZero counter,
/// so folding it away would change observable run statistics).
///
/// Callers may supply a partial environment mapping value slots to known
/// constants; a ParamRefExpr whose slot has no known value makes the
/// whole expression non-constant.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_LANG_CONSTEVAL_H
#define OPD_LANG_CONSTEVAL_H

#include "lang/AST.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace opd {

/// A partial compile-time environment: the value of slot I is Slots[I],
/// and slots beyond the vector (or holding nullopt) are unknown.
using ConstEnv = std::vector<std::optional<int64_t>>;

/// Evaluates \p E at compile time under the (possibly empty) environment
/// \p Env. Returns nullopt if the expression references an unknown slot
/// or divides/takes remainder by a constant zero.
std::optional<int64_t> evaluateConstant(const Expr &E,
                                        const ConstEnv *Env = nullptr);

} // namespace opd

#endif // OPD_LANG_CONSTEVAL_H
