//===- lang/ProgramInfo.h - Static construct descriptions ------*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ProgramInfo maps the numeric identifiers the traces carry (method
/// indices, loop ids) back to human-readable source constructs, so tools
/// can attribute oracle phases to the loop or method that generated them
/// ("the phase is loop main.pass", "a recursive execution of
/// matchNetwork").
///
//===----------------------------------------------------------------------===//

#ifndef OPD_LANG_PROGRAMINFO_H
#define OPD_LANG_PROGRAMINFO_H

#include "lang/AST.h"

#include <string>
#include <vector>

namespace opd {

/// Descriptions of a compiled (Sema-checked) program's constructs.
class ProgramInfo {
  std::vector<std::string> MethodNames; ///< by method index
  std::vector<std::string> LoopNames;   ///< by loop id

public:
  /// Builds the tables from \p Prog (must have passed Sema).
  static ProgramInfo build(const Program &Prog);

  /// Name of method \p Index, or "method#<Index>" when out of range.
  std::string methodName(uint32_t Index) const;

  /// Description of loop \p LoopId as "<method>.<var>" (or
  /// "<method>.loop@<line>" for unnamed loops); "loop#<id>" when out of
  /// range.
  std::string loopName(uint32_t LoopId) const;

  /// Number of methods / loops described.
  size_t numMethods() const { return MethodNames.size(); }
  size_t numLoops() const { return LoopNames.size(); }
};

} // namespace opd

#endif // OPD_LANG_PROGRAMINFO_H
