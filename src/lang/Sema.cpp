//===- lang/Sema.cpp - Workload DSL semantic analysis ----------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "lang/Sema.h"

#include "lang/Parser.h"
#include "trace/ProfileElement.h"

#include <algorithm>
#include <unordered_map>

using namespace opd;

namespace {

/// AST walker that performs all checks and annotations in one pass per
/// method.
class SemaPass {
public:
  SemaPass(Program &Prog, DiagnosticEngine &Diags)
      : Prog(Prog), Diags(Diags) {}

  bool run();

private:
  void analyzeMethod(MethodDecl &M);
  void analyzeStmt(Stmt &S);
  void analyzeExpr(Expr &E);

  /// Assigns the next branch-site offset within the current method.
  uint32_t nextSiteOffset() {
    if (SiteCursor > ProfileElement::MaxOffset)
      Diags.error(CurrentMethod->loc(),
                  "method '" + CurrentMethod->name() +
                      "' has too many branch sites (max " +
                      std::to_string(ProfileElement::MaxOffset + 1) + ")");
    return SiteCursor++;
  }

  Program &Prog;
  DiagnosticEngine &Diags;
  std::unordered_map<std::string, uint32_t> MethodIndex;
  MethodDecl *CurrentMethod = nullptr;
  uint32_t SiteCursor = 0;
  uint32_t LoopCursor = 0;
  /// Active loop variables, innermost last: (name, frame slot).
  std::vector<std::pair<std::string, uint32_t>> LoopScopes;
  uint32_t MaxSlots = 0;
};

} // namespace

bool SemaPass::run() {
  // Pass 1: index methods and detect duplicates.
  for (size_t I = 0; I != Prog.methods().size(); ++I) {
    MethodDecl &M = *Prog.methods()[I];
    auto [It, Inserted] =
        MethodIndex.try_emplace(M.name(), static_cast<uint32_t>(I));
    if (!Inserted) {
      Diags.error(M.loc(), "duplicate method '" + M.name() + "'");
      continue;
    }
    M.setMethodIndex(static_cast<uint32_t>(I));
  }
  if (Prog.methods().size() > ProfileElement::MaxMethodId + 1)
    Diags.error(Prog.methods().front()->loc(),
                "program has too many methods (max " +
                    std::to_string(ProfileElement::MaxMethodId + 1) + ")");

  auto EntryIt = MethodIndex.find("main");
  if (EntryIt == MethodIndex.end()) {
    Diags.error(SourceLoc(), "program has no 'main' method");
  } else {
    Prog.setEntryIndex(EntryIt->second);
    const MethodDecl &Main = *Prog.methods()[EntryIt->second];
    if (!Main.params().empty())
      Diags.error(Main.loc(), "'main' must not take parameters");
  }
  if (Diags.hasErrors())
    return false;

  // Pass 2: walk bodies, resolving references and assigning identifiers.
  for (std::unique_ptr<MethodDecl> &M : Prog.methods())
    analyzeMethod(*M);
  Prog.setNumLoops(LoopCursor);
  return !Diags.hasErrors();
}

void SemaPass::analyzeMethod(MethodDecl &M) {
  CurrentMethod = &M;
  SiteCursor = 0;
  LoopScopes.clear();
  MaxSlots = static_cast<uint32_t>(M.params().size());
  // Reject duplicate parameter names.
  for (size_t I = 0; I != M.params().size(); ++I)
    for (size_t J = I + 1; J != M.params().size(); ++J)
      if (M.params()[I] == M.params()[J])
        Diags.error(M.loc(), "duplicate parameter '" + M.params()[I] +
                                 "' in method '" + M.name() + "'");
  analyzeStmt(*M.body());
  M.setNumSites(SiteCursor);
  M.setNumSlots(MaxSlots);
}

void SemaPass::analyzeStmt(Stmt &S) {
  switch (S.kind()) {
  case Stmt::Kind::Block: {
    for (const std::unique_ptr<Stmt> &Child : cast<BlockStmt>(&S)->stmts())
      analyzeStmt(*Child);
    return;
  }
  case Stmt::Kind::Loop: {
    auto *Loop = cast<LoopStmt>(&S);
    Loop->setLoopId(LoopCursor++);
    // The count is evaluated outside the loop variable's scope.
    analyzeExpr(const_cast<Expr &>(*Loop->count()));
    if (Loop->hasVar()) {
      uint32_t Slot = static_cast<uint32_t>(CurrentMethod->params().size() +
                                            LoopScopes.size());
      MaxSlots = std::max(MaxSlots, Slot + 1);
      Loop->setVarSlot(Slot);
      LoopScopes.emplace_back(Loop->varName(), Slot);
      analyzeStmt(const_cast<BlockStmt &>(*Loop->body()));
      LoopScopes.pop_back();
    } else {
      analyzeStmt(const_cast<BlockStmt &>(*Loop->body()));
    }
    return;
  }
  case Stmt::Kind::Branch: {
    cast<BranchStmt>(&S)->setSiteOffset(nextSiteOffset());
    return;
  }
  case Stmt::Kind::If: {
    auto *If = cast<IfStmt>(&S);
    If->setSiteOffset(nextSiteOffset());
    analyzeStmt(const_cast<BlockStmt &>(*If->thenBlock()));
    if (If->elseBlock())
      analyzeStmt(const_cast<BlockStmt &>(*If->elseBlock()));
    return;
  }
  case Stmt::Kind::When: {
    auto *When = cast<WhenStmt>(&S);
    When->setSiteOffset(nextSiteOffset());
    analyzeExpr(const_cast<Expr &>(*When->cond()));
    analyzeStmt(const_cast<BlockStmt &>(*When->thenBlock()));
    if (When->elseBlock())
      analyzeStmt(const_cast<BlockStmt &>(*When->elseBlock()));
    return;
  }
  case Stmt::Kind::Call: {
    auto *Call = cast<CallStmt>(&S);
    auto It = MethodIndex.find(Call->callee());
    if (It == MethodIndex.end()) {
      Diags.error(S.loc(), "call to undefined method '" + Call->callee() +
                               "'");
      return;
    }
    Call->setCalleeIndex(It->second);
    const MethodDecl &Callee = *Prog.methods()[It->second];
    if (Call->args().size() != Callee.params().size())
      Diags.error(S.loc(), "method '" + Call->callee() + "' expects " +
                               std::to_string(Callee.params().size()) +
                               " argument(s), got " +
                               std::to_string(Call->args().size()));
    for (const std::unique_ptr<Expr> &Arg : Call->args())
      analyzeExpr(*Arg);
    return;
  }
  case Stmt::Kind::Pick: {
    for (const PickStmt::Arm &Arm : cast<PickStmt>(&S)->arms())
      analyzeStmt(*Arm.Body);
    return;
  }
  }
}

void SemaPass::analyzeExpr(Expr &E) {
  switch (E.kind()) {
  case Expr::Kind::IntLit:
    return;
  case Expr::Kind::ParamRef: {
    auto *Ref = cast<ParamRefExpr>(&E);
    // Innermost loop variables shadow outer ones and parameters.
    for (auto It = LoopScopes.rbegin(); It != LoopScopes.rend(); ++It) {
      if (It->first == Ref->name()) {
        Ref->setSlot(It->second);
        return;
      }
    }
    const std::vector<std::string> &Params = CurrentMethod->params();
    for (size_t I = 0; I != Params.size(); ++I) {
      if (Params[I] == Ref->name()) {
        Ref->setSlot(static_cast<uint32_t>(I));
        return;
      }
    }
    Diags.error(E.loc(), "reference to unknown name '" + Ref->name() +
                             "' in method '" + CurrentMethod->name() + "'");
    return;
  }
  case Expr::Kind::Binary: {
    auto *Bin = cast<BinaryExpr>(&E);
    analyzeExpr(const_cast<Expr &>(*Bin->lhs()));
    analyzeExpr(const_cast<Expr &>(*Bin->rhs()));
    return;
  }
  case Expr::Kind::Unary:
    analyzeExpr(const_cast<Expr &>(*cast<UnaryExpr>(&E)->operand()));
    return;
  }
}

bool opd::analyzeProgram(Program &Prog, DiagnosticEngine &Diags) {
  return SemaPass(Prog, Diags).run();
}

std::unique_ptr<Program> opd::compileProgram(const std::string &Source,
                                             DiagnosticEngine &Diags) {
  std::unique_ptr<Program> Prog = parseProgram(Source, Diags);
  if (!Prog)
    return nullptr;
  if (!analyzeProgram(*Prog, Diags))
    return nullptr;
  return Prog;
}
