//===- lang/AST.cpp - Workload DSL abstract syntax tree --------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "lang/AST.h"

using namespace opd;

// Out-of-line virtual destructors anchor the vtables in this translation
// unit (see the LLVM coding standard on virtual method anchors).
Expr::~Expr() = default;
Stmt::~Stmt() = default;
