//===- lang/Printer.h - JP pretty printer -----------------------*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pretty printer for JP programs: emits source text that parses back to
/// a structurally identical program (printing is idempotent: printing,
/// reparsing, and printing again yields the same text). Used by tools for
/// dumping workload sources and by the round-trip tests.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_LANG_PRINTER_H
#define OPD_LANG_PRINTER_H

#include "lang/AST.h"

#include <string>

namespace opd {

/// Renders \p Prog as JP source.
std::string printProgram(const Program &Prog);

/// Renders a single expression (mainly for diagnostics and tests).
std::string printExpr(const Expr &E);

} // namespace opd

#endif // OPD_LANG_PRINTER_H
