//===- lang/Printer.cpp - JP pretty printer ----------------------------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "lang/Printer.h"

#include "support/Casting.h"

#include <cstdio>

using namespace opd;

namespace {

/// Renders a probability with enough digits to round-trip.
std::string printProbability(double P) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.6f", P);
  return Buf;
}

/// Parenthesized-when-needed expression printer. JP has two precedence
/// tiers below comparison; we print conservatively: nested binary
/// operands are parenthesized unless they are primaries.
class ExprPrinter {
public:
  static std::string print(const Expr &E) {
    switch (E.kind()) {
    case Expr::Kind::IntLit:
      return std::to_string(cast<IntLitExpr>(&E)->value());
    case Expr::Kind::ParamRef:
      return cast<ParamRefExpr>(&E)->name();
    case Expr::Kind::Unary:
      return "-" + printOperand(*cast<UnaryExpr>(&E)->operand());
    case Expr::Kind::Binary: {
      const auto *Bin = cast<BinaryExpr>(&E);
      return printOperand(*Bin->lhs()) + " " + opSpelling(Bin->op()) +
             " " + printOperand(*Bin->rhs());
    }
    }
    assert(false && "unhandled expression kind");
    return "";
  }

private:
  static std::string printOperand(const Expr &E) {
    if (E.kind() == Expr::Kind::Binary)
      return "(" + print(E) + ")";
    return print(E);
  }

  static const char *opSpelling(BinaryOp Op) {
    switch (Op) {
    case BinaryOp::Add:
      return "+";
    case BinaryOp::Sub:
      return "-";
    case BinaryOp::Mul:
      return "*";
    case BinaryOp::Div:
      return "/";
    case BinaryOp::Rem:
      return "%";
    case BinaryOp::Lt:
      return "<";
    case BinaryOp::Le:
      return "<=";
    case BinaryOp::Gt:
      return ">";
    case BinaryOp::Ge:
      return ">=";
    case BinaryOp::Eq:
      return "==";
    case BinaryOp::Ne:
      return "!=";
    }
    return "?";
  }
};

/// Indentation-tracking statement printer.
class StmtPrinter {
public:
  explicit StmtPrinter(std::string &Out) : Out(Out) {}

  void printBlock(const BlockStmt &B, unsigned Indent) {
    Out += "{\n";
    for (const std::unique_ptr<Stmt> &S : B.stmts())
      printStmt(*S, Indent + 1);
    indent(Indent);
    Out += "}";
  }

private:
  void indent(unsigned Level) { Out.append(2 * Level, ' '); }

  void printStmt(const Stmt &S, unsigned Indent) {
    indent(Indent);
    switch (S.kind()) {
    case Stmt::Kind::Block:
      printBlock(*cast<BlockStmt>(&S), Indent);
      Out += "\n";
      return;
    case Stmt::Kind::Loop: {
      const auto *Loop = cast<LoopStmt>(&S);
      Out += "loop ";
      if (Loop->hasVar())
        Out += Loop->varName() + " ";
      Out += "times " + ExprPrinter::print(*Loop->count()) + " ";
      printBlock(*Loop->body(), Indent);
      Out += "\n";
      return;
    }
    case Stmt::Kind::Branch: {
      const auto *Branch = cast<BranchStmt>(&S);
      Out += "branch";
      if (!Branch->label().empty())
        Out += " " + Branch->label();
      if (Branch->flipProbability() < 1.0)
        Out += " flip " + printProbability(Branch->flipProbability());
      Out += ";\n";
      return;
    }
    case Stmt::Kind::If: {
      const auto *If = cast<IfStmt>(&S);
      Out += "if " + printProbability(If->probability()) + " ";
      printBlock(*If->thenBlock(), Indent);
      if (If->elseBlock()) {
        Out += " else ";
        printBlock(*If->elseBlock(), Indent);
      }
      Out += "\n";
      return;
    }
    case Stmt::Kind::When: {
      const auto *When = cast<WhenStmt>(&S);
      Out += "when (" + ExprPrinter::print(*When->cond()) + ") ";
      printBlock(*When->thenBlock(), Indent);
      if (When->elseBlock()) {
        Out += " else ";
        printBlock(*When->elseBlock(), Indent);
      }
      Out += "\n";
      return;
    }
    case Stmt::Kind::Call: {
      const auto *Call = cast<CallStmt>(&S);
      Out += "call " + Call->callee() + "(";
      for (size_t I = 0; I != Call->args().size(); ++I) {
        if (I != 0)
          Out += ", ";
        Out += ExprPrinter::print(*Call->args()[I]);
      }
      Out += ");\n";
      return;
    }
    case Stmt::Kind::Pick: {
      const auto *Pick = cast<PickStmt>(&S);
      Out += "pick {\n";
      for (const PickStmt::Arm &Arm : Pick->arms()) {
        indent(Indent + 1);
        Out += "weight " + std::to_string(Arm.Weight) + " ";
        printBlock(*Arm.Body, Indent + 1);
        Out += "\n";
      }
      indent(Indent);
      Out += "}\n";
      return;
    }
    }
  }

  std::string &Out;
};

} // namespace

std::string opd::printExpr(const Expr &E) { return ExprPrinter::print(E); }

std::string opd::printProgram(const Program &Prog) {
  std::string Out = "program " + Prog.name() + ";\n\n";
  for (const std::unique_ptr<MethodDecl> &M : Prog.methods()) {
    Out += "method " + M->name() + "(";
    for (size_t I = 0; I != M->params().size(); ++I) {
      if (I != 0)
        Out += ", ";
      Out += M->params()[I];
    }
    Out += ") ";
    StmtPrinter Printer(Out);
    Printer.printBlock(*M->body(), 0);
    Out += "\n\n";
  }
  return Out;
}
