//===- lang/Lexer.h - Workload DSL lexer ------------------------*- C++ -*-===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lexer for the JP workload language. JP programs describe the repetition
/// structure (loops, calls, recursion, branch noise) of the synthetic
/// benchmarks that stand in for the paper's SPECjvm98 traces; see
/// lang/AST.h for the grammar.
///
//===----------------------------------------------------------------------===//

#ifndef OPD_LANG_LEXER_H
#define OPD_LANG_LEXER_H

#include <cstdint>
#include <string>

namespace opd {

/// Source position, 1-based, for diagnostics.
struct SourceLoc {
  uint32_t Line = 1;
  uint32_t Col = 1;
};

/// Token kinds of the JP language.
enum class TokenKind : uint8_t {
  // Literals and identifiers.
  Identifier,
  Integer,
  Float,
  // Keywords.
  KwProgram,
  KwMethod,
  KwLoop,
  KwTimes,
  KwBranch,
  KwFlip,
  KwIf,
  KwWhen,
  KwElse,
  KwCall,
  KwPick,
  KwWeight,
  // Punctuation and operators.
  LBrace,
  RBrace,
  LParen,
  RParen,
  Semicolon,
  Comma,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Less,
  LessEqual,
  Greater,
  GreaterEqual,
  EqualEqual,
  BangEqual,
  // Sentinels.
  EndOfFile,
  Error,
};

/// Human-readable token-kind name for diagnostics ("'{'", "identifier").
const char *tokenKindName(TokenKind Kind);

/// One lexed token. Text is the exact source spelling; IntValue/FloatValue
/// are populated for the literal kinds.
struct Token {
  TokenKind Kind = TokenKind::Error;
  std::string Text;
  SourceLoc Loc;
  int64_t IntValue = 0;
  double FloatValue = 0.0;

  bool is(TokenKind K) const { return Kind == K; }
};

/// Single-pass lexer over an in-memory JP source buffer. '//' comments run
/// to end of line. Integer literals accept a K/M suffix (x1000/x1000000)
/// to keep workload sources readable.
class Lexer {
public:
  explicit Lexer(std::string Source);

  /// Lexes and returns the next token. After EndOfFile, keeps returning
  /// EndOfFile. An Error token carries the offending text and a message in
  /// Text.
  Token next();

private:
  char peek() const;
  char advance();
  bool atEnd() const;
  void skipTrivia();
  Token makeToken(TokenKind Kind, std::string Text, SourceLoc Loc) const;
  Token lexNumber(SourceLoc Start);
  Token lexIdentifier(SourceLoc Start);

  std::string Source;
  size_t Pos = 0;
  SourceLoc Loc;
};

} // namespace opd

#endif // OPD_LANG_LEXER_H
