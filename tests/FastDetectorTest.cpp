//===- tests/FastDetectorTest.cpp - Fast-path differential tests --------------===//
//
// Part of the OPD project: a reproduction of "Online Phase Detection
// Algorithms" (CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The monomorphic fast-path detectors (core/FastDetector.h) are only
/// admissible because they are bit-identical to the reference
/// PhaseDetector. This suite is the guard: it streams a real workload
/// trace through both paths across the whole configuration shape space —
/// every model, TW policy, analyzer kind, anchor, resize, and the skip-
/// factor/window-size corner cases — and requires equal StateSequences,
/// detected phases, and anchored phases, run by run. It also holds the
/// sweep harness's two paths (fast arenas vs reference stats collection)
/// to equal scores, and arena reuse via reconfigure() to fresh-detector
/// output.
///
//===----------------------------------------------------------------------===//

#include "core/DetectorRunner.h"
#include "core/FastDetector.h"
#include "harness/Experiment.h"
#include "harness/Sweep.h"

#include <gtest/gtest.h>

#include <array>
#include <set>

using namespace opd;

namespace {

/// One small-scale workload shared by all differential tests.
const BenchmarkData &testBenchmark() {
  static const std::vector<BenchmarkData> Data =
      prepareBenchmarks({"jess"}, {1000, 10000}, /*Scale=*/0.1);
  return Data.front();
}

/// The shape-and-corner-case cross product: all three models, both TW
/// policies, all three analyzer kinds (two parameters each), both
/// anchors and resizes, a skip factor above the CW size (exercising the
/// flush seed clamp), and Fixed Interval.
std::vector<DetectorConfig> differentialConfigs() {
  SweepSpec Spec;
  Spec.CWSizes = {50, 400};
  Spec.TWFactors = {1, 2};
  Spec.SkipFactors = {1, 10, 500};
  Spec.IncludeFixedInterval = true;
  Spec.Models = {ModelKind::UnweightedSet, ModelKind::WeightedSet,
                 ModelKind::ManhattanBBV};
  Spec.Analyzers = {{AnalyzerKind::Threshold, 0.5},
                    {AnalyzerKind::Threshold, 0.8},
                    {AnalyzerKind::Average, 0.01},
                    {AnalyzerKind::Average, 0.3},
                    {AnalyzerKind::Hysteresis, 0.6},
                    {AnalyzerKind::Hysteresis, 0.1}};
  Spec.Anchors = {AnchorKind::RightmostNoisy, AnchorKind::LeftmostNonNoisy};
  Spec.Resizes = {ResizeKind::Slide, ResizeKind::Move};
  return enumerateCrossProduct(Spec);
}

void expectRunsEqual(const DetectorRun &Reference, const DetectorRun &Fast,
                     const DetectorConfig &Config) {
  std::string Desc = Config.describe();
  ASSERT_EQ(Reference.States.size(), Fast.States.size()) << Desc;
  const std::vector<StateRun> &RR = Reference.States.runs();
  const std::vector<StateRun> &FR = Fast.States.runs();
  ASSERT_EQ(RR.size(), FR.size()) << Desc;
  for (size_t I = 0; I != RR.size(); ++I) {
    ASSERT_EQ(RR[I].Begin, FR[I].Begin) << Desc << " run " << I;
    ASSERT_EQ(RR[I].Length, FR[I].Length) << Desc << " run " << I;
    ASSERT_EQ(RR[I].State, FR[I].State) << Desc << " run " << I;
  }
  ASSERT_EQ(Reference.DetectedPhases, Fast.DetectedPhases) << Desc;
  ASSERT_EQ(Reference.AnchoredPhases, Fast.AnchoredPhases) << Desc;
}

} // namespace

TEST(FastDetectorTest, ShapeIndexIsABijectionOverTheShapeSpace) {
  std::set<size_t> Seen;
  DetectorConfig C;
  for (ModelKind M : {ModelKind::UnweightedSet, ModelKind::WeightedSet,
                      ModelKind::ManhattanBBV})
    for (TWPolicyKind P : {TWPolicyKind::Constant, TWPolicyKind::Adaptive})
      for (AnalyzerKind A : {AnalyzerKind::Threshold, AnalyzerKind::Average,
                             AnalyzerKind::Hysteresis}) {
        C.Model = M;
        C.Window.TWPolicy = P;
        C.TheAnalyzer = A;
        size_t Index = fastShapeIndex(C);
        EXPECT_LT(Index, NumFastShapes);
        EXPECT_TRUE(Seen.insert(Index).second)
            << "duplicate shape index " << Index;
      }
  EXPECT_EQ(Seen.size(), NumFastShapes);
}

TEST(FastDetectorTest, DescribeMatchesReferenceWithFastSuffix) {
  const BenchmarkData &B = testBenchmark();
  for (const DetectorConfig &Config : differentialConfigs()) {
    std::unique_ptr<PhaseDetector> Reference =
        makeDetector(Config, B.Trace.numSites());
    std::unique_ptr<FastDetectorBase> Fast =
        makeFastDetector(Config, B.Trace.numSites());
    EXPECT_EQ(Fast->describe(), Reference->describe() + " [fast]");
    EXPECT_EQ(Fast->batchSize(), Reference->batchSize());
  }
}

// The load-bearing test: every configuration in the shape/corner-case
// cross product produces bit-identical output through both paths.
TEST(FastDetectorTest, BitIdenticalToReferenceAcrossTheConfigSpace) {
  const BenchmarkData &B = testBenchmark();
  std::vector<DetectorConfig> Configs = differentialConfigs();
  ASSERT_GT(Configs.size(), 500u);
  for (const DetectorConfig &Config : Configs) {
    std::unique_ptr<PhaseDetector> Reference =
        makeDetector(Config, B.Trace.numSites());
    std::unique_ptr<FastDetectorBase> Fast =
        makeFastDetector(Config, B.Trace.numSites());
    DetectorRun ReferenceRun = runDetector(*Reference, B.Trace);
    DetectorRun FastRun = runDetector(*Fast, B.Trace);
    expectRunsEqual(ReferenceRun, FastRun, Config);
  }
}

// Arena lifetime rule: a reconfigure()d instance must behave exactly
// like a freshly constructed one, across heterogeneous parameters and
// with state left over from a previous trace run.
TEST(FastDetectorTest, ReconfiguredArenaMatchesFreshDetectors) {
  const BenchmarkData &B = testBenchmark();
  std::array<std::unique_ptr<FastDetectorBase>, NumFastShapes> Arena;
  DetectorRun ArenaRun;
  for (const DetectorConfig &Config : differentialConfigs()) {
    std::unique_ptr<FastDetectorBase> &Slot =
        Arena[fastShapeIndex(Config)];
    if (Slot)
      Slot->reconfigure(Config);
    else
      Slot = makeFastDetector(Config, B.Trace.numSites());

    std::unique_ptr<FastDetectorBase> Fresh =
        makeFastDetector(Config, B.Trace.numSites());
    runDetector(*Slot, B.Trace, ArenaRun);
    DetectorRun FreshRun = runDetector(*Fresh, B.Trace);
    expectRunsEqual(FreshRun, ArenaRun, Config);
  }
}

// The sweep's two paths — fast detectors out of per-worker arenas
// (plain) and the reference detector with a CountingObserver
// (CollectStats) — must score identically, pruned or not.
TEST(FastDetectorTest, SweepFastPathMatchesReferenceStatsPath) {
  const BenchmarkData &B = testBenchmark();
  SweepSpec Spec;
  Spec.CWSizes = {250};
  Spec.SkipFactors = {1, 10};
  Spec.Models = {ModelKind::UnweightedSet, ModelKind::WeightedSet};
  Spec.Analyzers = {{AnalyzerKind::Threshold, 0.6},
                    {AnalyzerKind::Average, 0.05}};
  Spec.Anchors = {AnchorKind::RightmostNoisy, AnchorKind::LeftmostNonNoisy};
  Spec.Resizes = {ResizeKind::Slide, ResizeKind::Move};
  std::vector<DetectorConfig> Configs = enumerateConfigs(Spec);

  for (bool Prune : {false, true}) {
    SweepOptions FastOptions;
    FastOptions.ScoreAnchored = true;
    FastOptions.Prune = Prune;
    SweepOptions StatsOptions = FastOptions;
    StatsOptions.CollectStats = true;

    std::vector<RunScores> Fast =
        runSweep(B.Trace, B.Baselines, Configs, FastOptions);
    std::vector<RunScores> Reference =
        runSweep(B.Trace, B.Baselines, Configs, StatsOptions);

    ASSERT_EQ(Fast.size(), Reference.size());
    for (size_t I = 0; I != Fast.size(); ++I) {
      ASSERT_EQ(Fast[I].PerMPL.size(), Reference[I].PerMPL.size());
      for (size_t M = 0; M != Fast[I].PerMPL.size(); ++M) {
        EXPECT_EQ(Fast[I].PerMPL[M].Score, Reference[I].PerMPL[M].Score);
        EXPECT_EQ(Fast[I].PerMPL[M].Correlation,
                  Reference[I].PerMPL[M].Correlation);
        EXPECT_EQ(Fast[I].PerMPL[M].Sensitivity,
                  Reference[I].PerMPL[M].Sensitivity);
        EXPECT_EQ(Fast[I].PerMPL[M].FalsePositives,
                  Reference[I].PerMPL[M].FalsePositives);
      }
      ASSERT_EQ(Fast[I].AnchoredPerMPL.size(),
                Reference[I].AnchoredPerMPL.size());
      for (size_t M = 0; M != Fast[I].AnchoredPerMPL.size(); ++M)
        EXPECT_EQ(Fast[I].AnchoredPerMPL[M].Score,
                  Reference[I].AnchoredPerMPL[M].Score);
    }
  }
}

// consumeTrace()'s default batch loop and the fast override must agree
// on partial trailing batches (trace size not a multiple of skip).
TEST(FastDetectorTest, PartialTrailingBatchMatchesReference) {
  const BenchmarkData &B = testBenchmark();
  DetectorConfig Config;
  Config.Window.CWSize = 100;
  Config.Window.TWSize = 100;
  Config.Window.SkipFactor = 97; // Never divides the trace evenly.
  Config.Model = ModelKind::WeightedSet;
  Config.TheAnalyzer = AnalyzerKind::Threshold;
  Config.AnalyzerParam = 0.6;
  std::unique_ptr<PhaseDetector> Reference =
      makeDetector(Config, B.Trace.numSites());
  std::unique_ptr<FastDetectorBase> Fast =
      makeFastDetector(Config, B.Trace.numSites());
  DetectorRun ReferenceRun = runDetector(*Reference, B.Trace);
  DetectorRun FastRun = runDetector(*Fast, B.Trace);
  ASSERT_NE(B.Trace.size() % Config.Window.SkipFactor, 0u);
  expectRunsEqual(ReferenceRun, FastRun, Config);
}
